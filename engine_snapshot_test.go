package feww

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"feww/internal/workload"
)

func engineSnapWorkload(t testing.TB) *workload.Planted {
	t.Helper()
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 400, M: 4000, Heavy: 3, HeavyDeg: 60,
		NoiseEdges: 3000, Order: workload.Shuffled, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func engineSnapCfg() EngineConfig {
	return EngineConfig{
		Config: Config{N: 400, D: 60, Alpha: 2, Seed: 9},
		Shards: 4, BatchSize: 64, QueueDepth: 4,
	}
}

// TestEngineSnapshotContinuation checks the acceptance property at the
// sharded layer: checkpoint mid-stream, restore, feed the identical
// suffix, and the final state is byte-identical to an uninterrupted run —
// and so are the reported results.
func TestEngineSnapshotContinuation(t *testing.T) {
	inst := engineSnapWorkload(t)

	full, err := NewEngine(engineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	for _, u := range inst.Updates {
		full.ProcessEdge(u.A, u.B)
	}

	half, err := NewEngine(engineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(inst.Updates) / 2
	for _, u := range inst.Updates[:cut] {
		half.ProcessEdge(u.A, u.B)
	}
	var buf bytes.Buffer
	if err := half.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := half.SnapshotSize(), buf.Len(); got != want {
		t.Fatalf("SnapshotSize = %d, actual = %d", got, want)
	}
	half.Close()

	resumed, err := RestoreEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.EdgesProcessed() != int64(cut) {
		t.Fatalf("restored engine reports %d edges, want %d", resumed.EdgesProcessed(), cut)
	}
	if resumed.Shards() != full.Shards() {
		t.Fatalf("restored engine has %d shards, want %d", resumed.Shards(), full.Shards())
	}
	for _, u := range inst.Updates[cut:] {
		resumed.ProcessEdge(u.A, u.B)
	}

	var a, b bytes.Buffer
	if err := full.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed engine diverged from uninterrupted engine")
	}

	want := full.Results()
	got := resumed.Results()
	if len(want) == 0 {
		t.Fatal("uninterrupted engine found nothing")
	}
	if len(got) != len(want) {
		t.Fatalf("resumed engine found %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].A != want[i].A {
			t.Fatalf("result %d: vertex %d, want %d", i, got[i].A, want[i].A)
		}
		if err := inst.Verify(got[i].A, got[i].Witnesses); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineSnapshotOfClosedEngine: a closed engine is still queryable,
// so it must also still be snapshot-able (the shutdown checkpoint path).
func TestEngineSnapshotOfClosedEngine(t *testing.T) {
	inst := engineSnapWorkload(t)
	eng, err := NewEngine(engineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		eng.ProcessEdge(u.A, u.B)
	}
	eng.Close()
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.EdgesProcessed() != eng.EdgesProcessed() {
		t.Fatalf("edges %d, want %d", restored.EdgesProcessed(), eng.EdgesProcessed())
	}
}

func turnstileEngineSnapCfg() TurnstileEngineConfig {
	return TurnstileEngineConfig{
		TurnstileConfig: TurnstileConfig{N: 64, M: 128, D: 8, Alpha: 2, Seed: 13, ScaleFactor: 0.02},
		Shards:          4, BatchSize: 32, QueueDepth: 4,
	}
}

func TestTurnstileEngineSnapshotContinuation(t *testing.T) {
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: 64, M: 128, Heavy: 2, HeavyDeg: 8,
			NoiseEdges: 80, MaxNoise: 2, Order: workload.Shuffled, Seed: 3,
		},
		ChurnEdges: 200,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}

	full, err := NewTurnstileEngine(turnstileEngineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	full.ProcessUpdates(inst.Updates)

	half, err := NewTurnstileEngine(turnstileEngineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(inst.Updates) / 2
	half.ProcessUpdates(inst.Updates[:cut])
	var buf bytes.Buffer
	if err := half.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := half.SnapshotSize(), buf.Len(); got != want {
		t.Fatalf("SnapshotSize = %d, actual = %d", got, want)
	}
	half.Close()

	resumed, err := RestoreTurnstileEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.UpdatesProcessed() != int64(cut) {
		t.Fatalf("restored engine reports %d updates, want %d", resumed.UpdatesProcessed(), cut)
	}
	resumed.ProcessUpdates(inst.Updates[cut:])

	var a, b bytes.Buffer
	if err := full.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed turnstile engine diverged from uninterrupted engine")
	}

	nbFull, errFull := full.Result()
	nbRes, errRes := resumed.Result()
	if (errFull == nil) != (errRes == nil) {
		t.Fatalf("result disagreement: full err %v, resumed err %v", errFull, errRes)
	}
	if errFull == nil {
		if nbFull.A != nbRes.A {
			t.Fatalf("resumed found vertex %d, full found %d", nbRes.A, nbFull.A)
		}
		if err := inst.Verify(nbRes.A, nbRes.Witnesses); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRestoreEngineKindMismatch(t *testing.T) {
	eng, err := NewEngine(engineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreTurnstileEngine(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("turnstile restore of insert-only snapshot: got %v, want ErrBadSnapshot", err)
	}

	t.Run("corrupt", func(t *testing.T) {
		good := buf.Bytes()
		if _, err := RestoreEngine(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("empty: got %v", err)
		}
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := RestoreEngine(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("bad magic: got %v", err)
		}
		for _, frac := range []int{2, 3, 10} {
			if _, err := RestoreEngine(bytes.NewReader(good[:len(good)/frac])); err == nil {
				t.Fatalf("truncation to 1/%d accepted", frac)
			}
		}
	})

	// A header claiming absurd dimensions must fail as ErrBadSnapshot
	// before any allocation is attempted on its behalf.
	t.Run("hostile header", func(t *testing.T) {
		good := buf.Bytes()
		// u64 field order after magic+kind: N, D, Alpha, Seed,
		// ScaleFactor, Shards, BatchSize, QueueDepth, count.
		corrupt := func(fields map[int]uint64) []byte {
			bad := append([]byte(nil), good...)
			for idx, v := range fields {
				binary.LittleEndian.PutUint64(bad[8+1+8*idx:], v)
			}
			return bad
		}
		cases := map[string][]byte{
			"huge shards":     corrupt(map[int]uint64{0: 1 << 41, 5: 1 << 40}), // N raised so shards <= N passes
			"huge batch":      corrupt(map[int]uint64{6: 1 << 40}),
			"huge queue":      corrupt(map[int]uint64{7: 1 << 40}),
			"negative shards": corrupt(map[int]uint64{5: ^uint64(0)}),
			"negative count":  corrupt(map[int]uint64{8: ^uint64(0)}),
		}
		for name, bad := range cases {
			if _, err := RestoreEngine(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("%s: got %v, want ErrBadSnapshot", name, err)
			}
		}
	})
}

// TestRestoreRejectsContainerShardMismatch: a container header whose
// configuration does not derive the embedded shard snapshots must be
// rejected — otherwise an engine restored from it would run with a wrong
// local/global mapping (or universe bound) and panic in a worker
// goroutine later, at ingest time.
func TestRestoreRejectsContainerShardMismatch(t *testing.T) {
	eng, err := NewTurnstileEngine(turnstileEngineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var buf bytes.Buffer
	if err := eng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Container u64 field order after magic+kind: N, M, D, Alpha, Seed,
	// ScaleFactor, MaxSamplers, Shards, BatchSize, QueueDepth, count.
	// Inflate the container's M: every shard snapshot still says M=128,
	// so the cross-check must fire instead of restoring an engine that
	// would accept B up to the bogus bound.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(bad[8+1+8*1:], 1<<20)
	if _, err := RestoreTurnstileEngine(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("inflated container M: got %v, want ErrBadSnapshot", err)
	}

	// Same for the insert-only container: flip D.
	ieng, err := NewEngine(engineSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ieng.Close()
	buf.Reset()
	if err := ieng.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	bad = append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(bad[8+1+8*1:], 9999) // container D
	if _, err := RestoreEngine(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("altered container D: got %v, want ErrBadSnapshot", err)
	}
}
