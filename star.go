package feww

import (
	"feww/internal/core"
)

// StarConfig parameterises star detection on a general n-vertex graph.
type StarConfig struct {
	// N is the number of graph vertices.
	N int64
	// Alpha is the FEwW approximation factor used per guess (>= 1).
	Alpha int
	// Eps > 0 controls the (1+Eps) guess ladder on the maximum degree; the
	// final guarantee is a ((1+Eps) * Alpha)-approximation (Lemma 3.3).
	// Zero means 0.5.
	Eps float64
	// Seed makes the run reproducible.
	Seed uint64
}

// StarDetector solves Star Detection (paper Problem 2) on insertion-only
// general graph streams: it outputs a vertex together with at least
// Delta/((1+Eps)*Alpha) of its neighbours, where Delta is the maximum
// degree (Lemma 3.3, Corollary 3.4).  It is not safe for concurrent use —
// the sharded, concurrent, snapshot-capable form of the same algorithm is
// StarEngine (starengine.go), which fewwd serves over the network.
type StarDetector struct {
	inner *core.StarDetector
}

// NewStarDetector builds the (1+Eps) guess ladder, one insertion-only FEwW
// run per guess.
func NewStarDetector(cfg StarConfig) (*StarDetector, error) {
	eps := cfg.Eps
	if eps == 0 {
		eps = 0.5
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 2
	}
	seed := cfg.Seed
	factory := func(d int64) (core.Algorithm, error) {
		seed++
		return core.NewInsertOnly(core.InsertOnlyConfig{
			N: cfg.N, D: d, Alpha: alpha, Seed: seed,
		})
	}
	inner, err := core.NewStarDetector(cfg.N, eps, factory)
	if err != nil {
		return nil, err
	}
	return &StarDetector{inner: inner}, nil
}

// ProcessEdge feeds one undirected edge {u, v}.  The detector mirrors it
// into both orientations internally (the bipartite double cover of Lemma
// 3.3); feed each undirected edge exactly once.
func (sd *StarDetector) ProcessEdge(u, v int64) error { return sd.inner.ProcessEdge(u, v) }

// Result returns the largest star found: a vertex and a set of its genuine
// neighbours, or ErrNoWitness on an empty graph.
func (sd *StarDetector) Result() (Neighbourhood, error) { return sd.inner.Result() }

// SpaceWords reports the live state across the whole guess ladder.
func (sd *StarDetector) SpaceWords() int { return sd.inner.SpaceWords() }

// TurnstileStarConfig parameterises star detection on insertion-deletion
// general-graph streams.
type TurnstileStarConfig struct {
	// N is the number of graph vertices.
	N int64
	// Alpha is the FEwW approximation factor used per guess (>= 1).  Per
	// Corollary 5.5, alpha = sqrt(n) yields a semi-streaming algorithm;
	// smaller alpha buys a better ratio at polynomially more space.
	Alpha int
	// Eps > 0 controls the (1+Eps) guess ladder; zero means 0.5.
	Eps float64
	// Seed makes the run reproducible.
	Seed uint64
	// ScaleFactor scales the per-guess L0-sampler counts (see
	// TurnstileConfig.ScaleFactor).
	ScaleFactor float64
	// MaxSamplers caps the total sampler allocation across the whole
	// ladder (default 1 << 22).
	MaxSamplers int
}

// TurnstileStarDetector solves Star Detection on insertion-deletion
// streams (Corollary 5.5): each guess of the Lemma 3.3 ladder runs the
// insertion-deletion FEwW algorithm, so edges may be deleted again.  It is
// not safe for concurrent use.
type TurnstileStarDetector struct {
	inner *core.StarDetector
}

// NewTurnstileStarDetector builds the (1+Eps) guess ladder over
// InsertDelete instances.
func NewTurnstileStarDetector(cfg TurnstileStarConfig) (*TurnstileStarDetector, error) {
	eps := cfg.Eps
	if eps == 0 {
		eps = 0.5
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 2
	}
	maxSamplers := cfg.MaxSamplers
	if maxSamplers == 0 {
		maxSamplers = 1 << 22
	}
	seed := cfg.Seed
	factory := func(d int64) (core.Algorithm, error) {
		seed++
		return core.NewInsertDelete(core.InsertDeleteConfig{
			N: cfg.N, M: cfg.N, D: d, Alpha: alpha, Seed: seed,
			ScaleFactor: cfg.ScaleFactor, MaxSamplers: maxSamplers,
		})
	}
	inner, err := core.NewStarDetector(cfg.N, eps, factory)
	if err != nil {
		return nil, err
	}
	return &TurnstileStarDetector{inner: inner}, nil
}

// Insert feeds the insertion of the undirected edge {u, v}.
func (sd *TurnstileStarDetector) Insert(u, v int64) error { return sd.inner.ProcessUpdate(u, v, 1) }

// Delete feeds the deletion of the undirected edge {u, v}; the edge must
// currently exist.
func (sd *TurnstileStarDetector) Delete(u, v int64) error { return sd.inner.ProcessUpdate(u, v, -1) }

// Result returns the largest star of the final graph, or ErrNoWitness.
func (sd *TurnstileStarDetector) Result() (Neighbourhood, error) { return sd.inner.Result() }

// SpaceWords reports the live state across the whole guess ladder.
func (sd *TurnstileStarDetector) SpaceWords() int { return sd.inner.SpaceWords() }
