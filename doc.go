// Package feww is a Go implementation of the algorithms from
//
//	Christian Konrad, "Frequent Elements with Witnesses in Data Streams",
//	PODS 2021 (arXiv:1911.08832).
//
// # The problem
//
// Classical frequent-elements (heavy hitters) algorithms report which items
// are frequent, but nothing about the occurrences themselves: a router can
// learn which destination IP is being hammered, but not when the packets
// arrived or from where.  FEwW(n, d) fixes that.  The input is a bipartite
// graph G = (A, B, E): A-vertices are items (|A| = n), B-vertices are the
// satellite data that arrives with each occurrence (timestamps, source IPs,
// users, followers), and each occurrence is an edge.  Given the promise
// that some item has degree at least d, the algorithm outputs an item
// together with at least ceil(d/alpha) of its incident edges — witnesses
// that prove the item's frequency — for an approximation factor alpha >= 1.
//
// # Algorithms
//
// InsertOnly implements the paper's Algorithm 2 for insertion-only streams:
// alpha parallel degree-triggered reservoir samplers, using space
// O(n log n + n^(1/alpha) d log^2 n) and succeeding with probability at
// least 1 - 1/n (Theorem 3.2), which is optimal up to polylog factors
// (Theorems 4.1 and 4.8).
//
// InsertDelete implements Algorithm 3 for insertion-deletion (turnstile)
// streams: a vertex-sampling strategy for dense inputs and an edge-sampling
// strategy for sparse inputs, both built on L0 samplers, using space
// ~O(d n / alpha^2) for alpha <= sqrt(n) (Theorem 5.4), again optimal up
// to polylog factors (Theorem 6.4).
//
// StarDetector and TurnstileStarDetector lift the two algorithms to the
// Star Detection problem on general graphs — find a vertex of
// (approximately) maximum degree together with its neighbourhood — via a
// (1+eps) guess ladder (Lemma 3.3, Corollaries 3.4 and 5.5).
//
// Engine, TurnstileEngine, StarEngine and WindowEngine are four thin
// façades over one generic sharded runtime (runtime.go): the item
// universe is partitioned
// across P independent per-shard algorithm instances, each fed batches
// (ProcessEdges / ProcessUpdates / ProcessHalfEdges) by its own
// goroutine, so ingest scales with cores while each shard retains the
// single-instance guarantees on its slice of the universe; a fixed seed
// reproduces identical results regardless of scheduling or batch size.
// All engines are safe for concurrent producers and queriers.  Queries
// are barrier-free by default — each shard publishes an immutable result
// view after applying batches, so Best/Results/Usage read the latest
// published epoch without stalling ingest — while the Fresh variants
// quiesce the shards for strict read-your-writes consistency; see
// docs/ARCHITECTURE.md ("Query consistency") for the contract.  This is
// what the network service layer builds on.
//
// StarEngine is the star tier: Star Detection at sharded-engine speed.
// It partitions the Lemma 3.3 guess ladder by (star center, rung) — each
// shard holds the full (1+eps) ladder over its vertex slice — and
// consumes the bipartite double cover as directed half-edges, so star
// streams route and cluster exactly like flat FEwW streams.  Answers are
// rung-annotated (StarResult: center, neighbours, certifying guess), and
// the winning-rung merge order is associative, so a cluster of star
// members answers exactly like one full-universe StarEngine.
//
// WindowEngine is the sliding-window tier: frequent elements with
// witnesses over the last Window updates.  Each shard hosts a ladder of
// suffix InsertOnly instances started at bucket boundaries of the
// global stream (every accepted update is stamped with its arrival
// position engine-wide), queries serve the oldest instance still inside
// the window, and whole instances expire in O(1) as the stream
// advances — witnesses are never older than Window updates, and with
// Alpha = 1 the served set is exactly the items with >= D in-window
// occurrences.
//
// # Checkpointing
//
// Every layer snapshots and restores exactly.  InsertOnly and (via the
// engines) InsertDelete serialise their complete state — degree tables,
// reservoirs, witnesses, sketch cells and RNG streams — so a restored
// instance continues the very same random stream, and the snapshot bytes
// are precisely the "message" of the paper's communication protocols
// (see examples/partitioned).  Every engine's Snapshot / Restore pair
// (RestoreEngine, RestoreTurnstileEngine, RestoreStarEngine,
// RestoreWindowEngine) composes the per-shard snapshots into one
// FEWWENG1 container — written by the shared
// runtime, quiescing the queues first so nothing in flight is lost; see
// docs/ARCHITECTURE.md for the byte-level formats.
//
// # The service
//
// The feww/server package and cmd/fewwd expose any engine kind over HTTP
// (fewwd -algo insert|turnstile|star|window) — binary stream ingest,
// live witnessed-neighbourhood queries, stats and checkpoint/restore —
// and cmd/fewwload replays workload scenarios against it (including
// -scenario star and -scenario window with ground-truth verification).  One tier up, the
// feww/cluster package and cmd/fewwgate serve several fewwd nodes as one
// logical engine: contiguous ranges of the universe, scatter-gather
// queries with the engine's own merge rules (including the star tier's
// max-over-rungs), range rebalancing by shipping snapshots, and
// R-way replicated ranges with autonomous failover (fewwgate -replicas:
// a reconciler promotes, re-seeds and adopts spares with no operator in
// the loop) — the paper's state-as-message protocols operating across
// machines.  See docs/OPERATIONS.md for both runbooks.
//
// # Quick start
//
//	algo, err := feww.NewInsertOnly(feww.Config{N: 100000, D: 500, Alpha: 2})
//	if err != nil { ... }
//	for _, occ := range occurrences {
//	    algo.ProcessEdge(occ.Item, occ.Witness)
//	}
//	nb, err := algo.Result()
//	if err == nil {
//	    fmt.Println("frequent item", nb.A, "witnesses", nb.Witnesses)
//	}
//
// See examples/ for runnable programs covering the paper's three motivating
// applications (database logs, social networks, DoS detection),
// docs/ARCHITECTURE.md for the layer map and binary format
// specifications, and docs/OPERATIONS.md for running the service.
package feww
