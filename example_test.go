package feww_test

import (
	"bytes"
	"fmt"

	"feww"
)

// The basic loop: feed (item, witness) occurrences, read back a frequent
// item with proof.
func ExampleInsertOnly() {
	algo, err := feww.NewInsertOnly(feww.Config{N: 1000, D: 6, Alpha: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	// Item 7 appears six times, with witnesses 100..105 (e.g. timestamps).
	for t := int64(100); t < 106; t++ {
		algo.ProcessEdge(7, t)
	}
	algo.ProcessEdge(3, 200) // background noise

	nb, err := algo.Result()
	if err != nil {
		panic(err)
	}
	fmt.Println("item:", nb.A, "witnesses:", len(nb.Witnesses))
	// Output:
	// item: 7 witnesses: 3
}

// The sharded engine: the same problem, partitioned across concurrent
// shards and fed in batches.  A fixed seed reproduces the exact same
// output on every run.
func ExampleEngine() {
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: 1000, D: 6, Alpha: 2, Seed: 1},
		Shards: 4,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Items 7 and 8 each appear six times; they live in different shards.
	var batch []feww.Edge
	for t := int64(100); t < 106; t++ {
		batch = append(batch, feww.Edge{A: 7, B: t}, feww.Edge{A: 8, B: t})
	}
	eng.ProcessEdges(batch)
	eng.ProcessEdge(3, 200) // background noise

	// Queries are barrier-free against published shard views; Drain makes
	// everything fed so far visible (Close would too).
	eng.Drain()
	for _, nb := range eng.Results() {
		fmt.Println("item:", nb.A, "witnesses:", len(nb.Witnesses))
	}
	// Output:
	// item: 7 witnesses: 3
	// item: 8 witnesses: 3
}

// Deletions are first-class in the turnstile algorithm: an item whose
// occurrences are all retracted cannot be reported.
func ExampleInsertDelete() {
	algo, err := feww.NewInsertDelete(feww.TurnstileConfig{
		N: 50, M: 200, D: 8, Alpha: 2, Seed: 1, ScaleFactor: 0.1,
	})
	if err != nil {
		panic(err)
	}
	for b := int64(0); b < 8; b++ {
		algo.Insert(5, b) // item 5: eight live occurrences
		algo.Insert(9, b+100)
	}
	for b := int64(0); b < 8; b++ {
		algo.Delete(9, b+100) // item 9 fully retracted
	}
	nb, err := algo.Result()
	if err != nil {
		panic(err)
	}
	fmt.Println("item:", nb.A)
	// Output:
	// item: 5
}

// Snapshot/Restore moves a running computation between processes — or
// between the "parties" of the paper's communication protocols.
func ExampleInsertOnly_Snapshot() {
	first, err := feww.NewInsertOnly(feww.Config{N: 100, D: 4, Alpha: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	first.ProcessEdge(42, 1)
	first.ProcessEdge(42, 2)

	var message bytes.Buffer
	if err := first.Snapshot(&message); err != nil {
		panic(err)
	}

	second, err := feww.RestoreInsertOnly(&message)
	if err != nil {
		panic(err)
	}
	second.ProcessEdge(42, 3)
	second.ProcessEdge(42, 4)

	nb, err := second.Result()
	if err != nil {
		panic(err)
	}
	fmt.Println("item:", nb.A, "witnesses:", len(nb.Witnesses))
	// Output:
	// item: 42 witnesses: 2
}
