package feww

import (
	"sync"
	"testing"
)

// TestEngineConcurrentProducersAndQueries exercises the concurrent-use
// contract a network server relies on: several goroutines feeding batches
// while others query and snapshot, all racing against Close-free ingest.
// Run under -race this validates the lock discipline; the final count and
// per-shard totals validate that no edge was lost or double-counted.
func TestEngineConcurrentProducersAndQueries(t *testing.T) {
	const (
		producers = 4
		batches   = 50
		batchLen  = 100
	)
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: 1000, D: 100, Alpha: 2, Seed: 5},
		Shards: 4, BatchSize: 32, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				batch := make([]Edge, batchLen)
				for j := range batch {
					batch[j] = Edge{A: int64((p*batches*batchLen + i*batchLen + j) % 1000), B: int64(j)}
				}
				eng.ProcessEdges(batch)
			}
		}(p)
	}
	// Concurrent queriers: results may reflect any prefix, but must never
	// race or crash.
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < 20; i++ {
				eng.Best()
				eng.SpaceWords()
				eng.EdgesProcessed()
				eng.QueueDepths()
				if eng.Closed() {
					t.Error("Closed() = true while the engine is live")
					return
				}
			}
		}()
	}
	wg.Wait()
	qwg.Wait()
	eng.Close()

	if got, want := eng.EdgesProcessed(), int64(producers*batches*batchLen); got != want {
		t.Fatalf("EdgesProcessed = %d, want %d", got, want)
	}
}

// fanEl is the element type of the white-box fanout tests: routed by A,
// stamped with its reserved stream position.
type fanEl struct{ A, Pos int64 }

// TestFanoutConcurrentProducersShardOrder pins the ordering half of the
// reserve-then-enqueue contract at the fanout layer, below any façade:
// under many concurrent producers mixing add and addBatch with ragged
// batch sizes, every shard must receive its sub-stream in strictly
// increasing stamped position order, and the positions across all shards
// must be exactly {0, ..., total-1} — the atomic reservation defines one
// global order and every shard consumes its slice of it.  Run under
// -race this also validates the lane lock discipline.
func TestFanoutConcurrentProducersShardOrder(t *testing.T) {
	const (
		shards    = 4
		producers = 8
		perProd   = 300
		total     = producers * perProd
	)
	recv := make([][]int64, shards)
	apply := make([]func([]fanEl), shards)
	for i := range apply {
		apply[i] = func(batch []fanEl) {
			for _, el := range batch {
				recv[i] = append(recv[i], el.Pos)
			}
		}
	}
	f := newFanout("test", 7, 2, func(e fanEl) int64 { return e.A }, apply, make([]func(), shards))
	f.stamp = func(el *fanEl, pos int64) { el.Pos = pos }

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; {
				n := 1 + (i+p)%13 // ragged batch sizes, never aligned to batchSize
				if i+n > perProd {
					n = perProd - i
				}
				batch := make([]fanEl, n)
				for j := range batch {
					batch[j] = fanEl{A: int64((p + i + j) % 31)}
				}
				var err error
				if n == 1 && p%2 == 0 {
					err = f.add(batch[0])
				} else {
					err = f.addBatch(batch)
				}
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				i += n
			}
		}(p)
	}
	wg.Wait()
	f.close()
	// close waited out the workers, so recv is quiescent here.

	if got := f.count.Load(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	if !f.isClosed() {
		t.Fatal("isClosed() = false after close")
	}
	if err := f.addBatch([]fanEl{{A: 1}}); err != ErrClosed {
		t.Fatalf("addBatch after close = %v, want ErrClosed", err)
	}
	seen := make([]bool, total)
	for i, positions := range recv {
		prev := int64(-1)
		for _, pos := range positions {
			if pos <= prev {
				t.Fatalf("shard %d received position %d after %d: sub-stream out of global order", i, pos, prev)
			}
			prev = pos
			if pos < 0 || pos >= total {
				t.Fatalf("shard %d received position %d outside [0, %d)", i, pos, total)
			}
			if seen[pos] {
				t.Fatalf("position %d delivered twice", pos)
			}
			seen[pos] = true
		}
	}
	for pos, ok := range seen {
		if !ok {
			t.Fatalf("position %d never delivered: reservation order has a hole", pos)
		}
	}
}

// TestQueueDepthsCountBufferedElements pins the telemetry contract: the
// per-shard depths count elements wherever they are parked — in the
// producer-side fill buffers as well as in queued batches — so a lightly
// loaded engine reports the edges actually buffered instead of zero, and
// a drained engine reports zero everywhere.
func TestQueueDepthsCountBufferedElements(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: 100, D: 10, Alpha: 2, Seed: 3},
		Shards: 2, BatchSize: 64, QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	edges := []Edge{{A: 0, B: 0}, {A: 1, B: 1}, {A: 2, B: 2}, {A: 3, B: 3}, {A: 4, B: 4}}
	if err := eng.ProcessEdges(edges); err != nil {
		t.Fatal(err)
	}
	// BatchSize is 64, so all 5 edges are still in fill buffers: no batch
	// has been dispatched, yet the depths must see them.
	sum := 0
	for _, d := range eng.QueueDepths() {
		sum += d
	}
	if sum != len(edges) {
		t.Fatalf("QueueDepths sum = %d with %d edges parked in fill buffers, want %d", sum, len(edges), len(edges))
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, d := range eng.QueueDepths() {
		if d != 0 {
			t.Fatalf("QueueDepths[%d] = %d after Drain, want 0", i, d)
		}
	}
	if eng.Closed() {
		t.Fatal("Closed() = true before Close")
	}
	eng.Close()
	if !eng.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}
