package feww

import (
	"sync"
	"testing"
)

// TestEngineConcurrentProducersAndQueries exercises the concurrent-use
// contract a network server relies on: several goroutines feeding batches
// while others query and snapshot, all racing against Close-free ingest.
// Run under -race this validates the lock discipline; the final count and
// per-shard totals validate that no edge was lost or double-counted.
func TestEngineConcurrentProducersAndQueries(t *testing.T) {
	const (
		producers = 4
		batches   = 50
		batchLen  = 100
	)
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: 1000, D: 100, Alpha: 2, Seed: 5},
		Shards: 4, BatchSize: 32, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				batch := make([]Edge, batchLen)
				for j := range batch {
					batch[j] = Edge{A: int64((p*batches*batchLen + i*batchLen + j) % 1000), B: int64(j)}
				}
				eng.ProcessEdges(batch)
			}
		}(p)
	}
	// Concurrent queriers: results may reflect any prefix, but must never
	// race or crash.
	var qwg sync.WaitGroup
	for q := 0; q < 3; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < 20; i++ {
				eng.Best()
				eng.SpaceWords()
				eng.EdgesProcessed()
				eng.QueueDepths()
			}
		}()
	}
	wg.Wait()
	qwg.Wait()
	eng.Close()

	if got, want := eng.EdgesProcessed(), int64(producers*batches*batchLen); got != want {
		t.Fatalf("EdgesProcessed = %d, want %d", got, want)
	}
}
