package feww

import (
	"errors"
	"testing"
	"testing/quick"

	"feww/internal/stream"
	"feww/internal/workload"
)

func TestInsertOnlyEndToEnd(t *testing.T) {
	const n, d = 4096, 120
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: n, M: 4 * n, Heavy: 1, HeavyDeg: d,
		NoiseEdges: 2 * n, Order: workload.Shuffled, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewInsertOnly(Config{N: n, D: d, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		algo.ProcessEdge(u.A, u.B)
	}
	nb, err := algo.Result()
	if err != nil {
		t.Fatal(err)
	}
	if int64(nb.Size()) < algo.WitnessTarget() {
		t.Fatalf("got %d witnesses, want >= %d", nb.Size(), algo.WitnessTarget())
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
	if algo.SpaceWords() <= 0 {
		t.Fatal("SpaceWords not positive")
	}
}

func TestInsertOnlyNoPromiseReturnsErrNoWitness(t *testing.T) {
	algo, err := NewInsertOnly(Config{N: 100, D: 50, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex has degree 1 — far below the promise.
	for i := int64(0); i < 100; i++ {
		algo.ProcessEdge(i, i)
	}
	if _, err := algo.Result(); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
	// Best still reports the largest partial neighbourhood if any run
	// admitted a vertex.
	if nb, found := algo.Best(); found && nb.Size() < 1 {
		t.Fatal("Best returned an empty neighbourhood with found = true")
	}
}

func TestInsertOnlyRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{N: 0, D: 1, Alpha: 1},
		{N: 1, D: 0, Alpha: 1},
		{N: 1, D: 1, Alpha: 0},
		{N: 1, D: 1, Alpha: 1, ScaleFactor: -1},
	}
	for _, cfg := range bad {
		if _, err := NewInsertOnly(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestInsertDeleteEndToEnd(t *testing.T) {
	const n, m, d = 64, 256, 24
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: n, M: m, Heavy: 1, HeavyDeg: d,
			NoiseEdges: n, Order: workload.Shuffled, Seed: 4,
		},
		ChurnEdges: 2 * n,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewInsertDelete(TurnstileConfig{
		N: n, M: m, D: d, Alpha: 2, Seed: 2, ScaleFactor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		if u.Op == stream.Delete {
			algo.Delete(u.A, u.B)
		} else {
			algo.Insert(u.A, u.B)
		}
	}
	nb, err := algo.Result()
	if err != nil {
		t.Fatal(err)
	}
	if int64(nb.Size()) < algo.WitnessTarget() {
		t.Fatalf("got %d witnesses, want >= %d", nb.Size(), algo.WitnessTarget())
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteRejectsOversizedAllocation(t *testing.T) {
	_, err := NewInsertDelete(TurnstileConfig{
		N: 1 << 20, M: 1 << 20, D: 1 << 16, Alpha: 2, MaxSamplers: 100,
	})
	if err == nil {
		t.Fatal("oversized sampler allocation accepted")
	}
}

func TestStarDetectorEndToEnd(t *testing.T) {
	const vertices = 1000
	ups := workload.SocialGraph(7, vertices, 4)
	sd, err := NewStarDetector(StarConfig{N: vertices, Alpha: 2, Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	adj := make(map[int64]map[int64]bool)
	addEdge := func(u, v int64) {
		if adj[u] == nil {
			adj[u] = make(map[int64]bool)
		}
		adj[u][v] = true
	}
	for _, u := range ups {
		if err := sd.ProcessEdge(u.A, u.B); err != nil {
			t.Fatal(err)
		}
		addEdge(u.A, u.B)
		addEdge(u.B, u.A)
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Every reported neighbour must be a genuine neighbour.
	for _, w := range nb.Witnesses {
		if !adj[nb.A][w] {
			t.Fatalf("fabricated neighbour %d for vertex %d", w, nb.A)
		}
	}
	// The (1+eps)*alpha guarantee against the true max degree.
	var maxDeg int
	for _, nbs := range adj {
		if len(nbs) > maxDeg {
			maxDeg = len(nbs)
		}
	}
	if float64(nb.Size()) < float64(maxDeg)/(1.5*2)-1 {
		t.Fatalf("star size %d below guarantee Delta/((1+eps)*alpha) = %.1f", nb.Size(), float64(maxDeg)/3)
	}
}

// TestStarDetectorWitnessesDistinct guards against double-feeding: the
// detector mirrors each undirected edge internally, so a caller feeding
// each edge once must never see a duplicated neighbour in the output.
func TestStarDetectorWitnessesDistinct(t *testing.T) {
	ups := workload.SocialGraph(13, 500, 4)
	sd, err := NewStarDetector(StarConfig{N: 500, Alpha: 2, Eps: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if err := sd.ProcessEdge(u.A, u.B); err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, nb.Size())
	for _, w := range nb.Witnesses {
		if seen[w] {
			t.Fatalf("duplicate witness %d in star output", w)
		}
		seen[w] = true
	}
}

func TestStarDetectorDefaults(t *testing.T) {
	sd, err := NewStarDetector(StarConfig{N: 10}) // zero Alpha/Eps use defaults
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.ProcessEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if nb.Size() < 1 {
		t.Fatalf("single-edge graph gave star size %d", nb.Size())
	}
}

// TestNoFabricatedWitnessesProperty: for random small instances (any seed,
// any order), a reported witness is always a genuine edge and never
// duplicated — the core soundness invariant.
func TestNoFabricatedWitnessesProperty(t *testing.T) {
	check := func(seed uint64, orderPick uint8, alphaPick uint8) bool {
		alpha := int(alphaPick%3) + 1
		order := workload.Order(orderPick % 4)
		const n, d = 256, 24
		inst, err := workload.NewPlanted(workload.PlantedConfig{
			N: n, M: 4 * n, Heavy: 1, HeavyDeg: d,
			NoiseEdges: n, Order: order, Seed: seed,
		})
		if err != nil {
			return false
		}
		algo, err := NewInsertOnly(Config{N: n, D: d, Alpha: alpha, Seed: seed ^ 0xabc})
		if err != nil {
			return false
		}
		for _, u := range inst.Updates {
			algo.ProcessEdge(u.A, u.B)
		}
		nb, err := algo.Result()
		if err != nil {
			return true // failing to find is allowed; lying is not
		}
		return inst.Verify(nb.A, nb.Witnesses) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessTargetRounding(t *testing.T) {
	cases := []struct {
		d      int64
		alpha  int
		target int64
	}{
		{10, 2, 5}, {10, 3, 4}, {1, 1, 1}, {7, 7, 1}, {7, 2, 4},
	}
	for _, c := range cases {
		algo, err := NewInsertOnly(Config{N: 100, D: c.d, Alpha: c.alpha, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := algo.WitnessTarget(); got != c.target {
			t.Errorf("d=%d alpha=%d: target %d, want %d", c.d, c.alpha, got, c.target)
		}
	}
}
