package feww

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"feww/internal/stream"
)

// viewStride encodes the owning item into every witness (edge (a, j) is
// fed as witness a*viewStride + j), so a reader can verify that a served
// neighbourhood's witnesses all belong to its vertex.  A torn view —
// witnesses from two different publication points, or from another
// vertex's slice — would violate the encoding immediately.
const viewStride = int64(1) << 32

// TestPublishedQueriesNeverTornUnderIngest hammers the barrier-free query
// path while a producer feeds at full rate.  Run under -race this
// validates the publication discipline (atomic epoch pointers, deep-copied
// views); the invariant checks validate the semantics: every published
// neighbourhood is internally consistent, witnesses always match their
// vertex, sizes never exceed the target, and per-shard epochs only move
// forward.
func TestPublishedQueriesNeverTornUnderIngest(t *testing.T) {
	const (
		n       = 64
		d       = 512
		readers = 4
	)
	// Disable the idle-publication throttle so every batch republishes and
	// the readers exercise as many distinct epochs as possible.  Restored
	// after the engine is closed (worker goroutines joined), so there is
	// no concurrent access to the variable.
	prevInterval := publishMinInterval
	publishMinInterval = 0
	defer func() { publishMinInterval = prevInterval }()
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: n, D: d, Alpha: 2, Seed: 9},
		Shards: 4, BatchSize: 32, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	target := eng.WitnessTarget()

	var done atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		done.Store(true)
		t.Errorf(format, args...)
	}
	checkNb := func(nb Neighbourhood, full bool) {
		if nb.A < 0 || nb.A >= n {
			fail("published vertex %d outside the universe", nb.A)
			return
		}
		if full && int64(nb.Size()) != target {
			fail("full-target neighbourhood for %d has %d witnesses, want %d", nb.A, nb.Size(), target)
		}
		if int64(nb.Size()) > target {
			fail("neighbourhood for %d has %d witnesses, above the target %d", nb.A, nb.Size(), target)
		}
		seen := make(map[int64]bool, len(nb.Witnesses))
		for _, w := range nb.Witnesses {
			if w/viewStride != nb.A {
				fail("witness %d does not belong to vertex %d: torn view", w, nb.A)
			}
			if seen[w] {
				fail("duplicate witness %d for vertex %d", w, nb.A)
			}
			seen[w] = true
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prevEpochs := eng.ViewEpochs()
			var prevSpace int
			for !done.Load() {
				if nb, ok := eng.Best(); ok {
					checkNb(nb, false)
				}
				for _, nb := range eng.Results() {
					checkNb(nb, true)
				}
				if nb, err := eng.Result(); err == nil {
					checkNb(nb, true)
				}
				// Insertion-only state only grows, and each shard's view
				// pointer is replaced monotonically, so the summed space
				// must never shrink between two reads by the same reader.
				if sw := eng.SpaceWords(); sw < prevSpace {
					fail("SpaceWords went backwards: %d -> %d", prevSpace, sw)
				} else {
					prevSpace = sw
				}
				epochs := eng.ViewEpochs()
				for i := range epochs {
					if epochs[i] < prevEpochs[i] {
						fail("shard %d epoch went backwards: %d -> %d", i, prevEpochs[i], epochs[i])
					}
				}
				prevEpochs = epochs
			}
		}()
	}

	// Single producer: all n items reach full degree d, witnesses encoded.
	for j := int64(0); j < d && !done.Load(); j++ {
		batch := make([]Edge, 0, n)
		for a := int64(0); a < n; a++ {
			batch = append(batch, Edge{A: a, B: a*viewStride + j})
		}
		if err := eng.ProcessEdges(batch); err != nil {
			t.Errorf("ProcessEdges: %v", err)
			break
		}
	}
	done.Store(true)
	wg.Wait()

	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	// After a drain the published path is exact — identical to a barrier
	// read of the same state — and plenty of items must have been found
	// (every item is frequent; the reservoir samples a subset of them).
	results := eng.Results()
	if !reflect.DeepEqual(results, eng.ResultsFresh()) {
		t.Fatal("after drain: published Results differ from fresh Results")
	}
	if len(results) == 0 {
		t.Fatal("after drain: no published results on a satisfied promise")
	}
	for _, nb := range results {
		checkNb(nb, true)
	}
}

// TestPublishedMatchesFreshAfterDrain pins the consistency contract's
// rendezvous point: once Drain returns, the barrier-free path serves
// exactly what the barrier path serves.
func TestPublishedMatchesFreshAfterDrain(t *testing.T) {
	const n, d = 500, 40
	edges, _ := engineStream([]int64{5, 6, 17}, d, n)
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: n, D: d, Alpha: 2, Seed: 3},
		Shards: 4, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.ProcessEdges(edges); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	if got, want := eng.Results(), eng.ResultsFresh(); !reflect.DeepEqual(got, want) {
		t.Fatalf("published Results %v != fresh Results %v", got, want)
	}
	gotR, gotErr := eng.Result()
	wantR, wantErr := eng.ResultFresh()
	if gotErr != nil || wantErr != nil || !reflect.DeepEqual(gotR, wantR) {
		t.Fatalf("published Result (%v, %v) != fresh Result (%v, %v)", gotR, gotErr, wantR, wantErr)
	}
	gotNb, gotOK := eng.Best()
	wantNb, wantOK := eng.BestFresh()
	if gotOK != wantOK || !reflect.DeepEqual(gotNb, wantNb) {
		t.Fatalf("published Best (%v, %v) != fresh Best (%v, %v)", gotNb, gotOK, wantNb, wantOK)
	}
	if got, want := eng.SpaceWords(), eng.SpaceWordsFresh(); got != want {
		t.Fatalf("published SpaceWords %d != fresh %d", got, want)
	}
	gotW, gotB := eng.Usage()
	wantW, wantB := eng.UsageFresh()
	if gotW != wantW || gotB != wantB {
		t.Fatalf("published Usage (%d, %d) != fresh Usage (%d, %d)", gotW, gotB, wantW, wantB)
	}
}

// TestTurnstilePublishedMatchesFreshAfterDrain is the turnstile twin.
func TestTurnstilePublishedMatchesFreshAfterDrain(t *testing.T) {
	const n, m, d = 64, 1024, 16
	eng, err := NewTurnstileEngine(TurnstileEngineConfig{
		TurnstileConfig: TurnstileConfig{N: n, M: m, D: d, Alpha: 2, Seed: 2, ScaleFactor: 0.05},
		Shards:          4, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for j := int64(0); j < d; j++ {
		if err := eng.Insert(3, 3*16+j); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	gotNb, gotErr := eng.Result()
	wantNb, wantErr := eng.ResultFresh()
	if !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("published Result err %v != fresh err %v", gotErr, wantErr)
	}
	if gotErr == nil && !reflect.DeepEqual(gotNb, wantNb) {
		t.Fatalf("published Result %v != fresh Result %v", gotNb, wantNb)
	}
	gotW, gotB := eng.Usage()
	wantW, wantB := eng.UsageFresh()
	if gotW != wantW || gotB != wantB {
		t.Fatalf("published Usage (%d, %d) != fresh Usage (%d, %d)", gotW, gotB, wantW, wantB)
	}
}

// TestEngineValidatesUniverse: the engine boundary must reject, with an
// error and without feeding anything, the ids that used to panic the
// shard router (negative) or silently corrupt the residue mapping (>= N).
func TestEngineValidatesUniverse(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Config: Config{N: 10, D: 2, Alpha: 1, Seed: 1},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	for _, tc := range []struct{ a, b int64 }{
		{-1, 0},  // negative item: shard index -1 out of range
		{10, 0},  // item == N: wrong residue class
		{999, 0}, // far out
		{0, -5},  // negative witness
	} {
		if err := eng.ProcessEdge(tc.a, tc.b); !errors.Is(err, ErrOutOfUniverse) {
			t.Errorf("ProcessEdge(%d, %d) = %v, want ErrOutOfUniverse", tc.a, tc.b, err)
		}
	}
	// A batch with one bad edge is rejected whole: nothing is fed.
	err = eng.ProcessEdges([]Edge{{A: 1, B: 1}, {A: -3, B: 0}, {A: 2, B: 2}})
	if !errors.Is(err, ErrOutOfUniverse) {
		t.Fatalf("ProcessEdges with a negative id = %v, want ErrOutOfUniverse", err)
	}
	if got := eng.EdgesProcessed(); got != 0 {
		t.Fatalf("rejected batch fed %d edges, want 0", got)
	}
	// The engine remains fully usable afterwards.
	if err := eng.ProcessEdges([]Edge{{A: 1, B: 1}, {A: 1, B: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if nb, err := eng.Result(); err != nil || nb.A != 1 {
		t.Fatalf("Result after recovery = %v, %v; want item 1", nb, err)
	}
}

// TestTurnstileEngineValidatesUniverse mirrors the check for the
// turnstile boundary, including the op byte and the witness bound M.
func TestTurnstileEngineValidatesUniverse(t *testing.T) {
	eng, err := NewTurnstileEngine(TurnstileEngineConfig{
		TurnstileConfig: TurnstileConfig{N: 8, M: 16, D: 2, Alpha: 1, Seed: 1, ScaleFactor: 0.05},
		Shards:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := eng.Insert(-1, 0); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("Insert(-1, 0) = %v, want ErrOutOfUniverse", err)
	}
	if err := eng.Insert(8, 0); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("Insert(N, 0) = %v, want ErrOutOfUniverse", err)
	}
	if err := eng.Delete(0, 16); !errors.Is(err, ErrOutOfUniverse) {
		t.Errorf("Delete(0, M) = %v, want ErrOutOfUniverse", err)
	}
	bad := []Update{{Edge: Edge{A: 1, B: 1}, Op: stream.Insert}, {Edge: Edge{A: 1, B: 2}, Op: 7}}
	if err := eng.ProcessUpdates(bad); !errors.Is(err, ErrInvalidOp) {
		t.Errorf("ProcessUpdates with bad op = %v, want ErrInvalidOp", err)
	}
	if got := eng.UpdatesProcessed(); got != 0 {
		t.Fatalf("rejected updates fed %d elements, want 0", got)
	}
	// Close converts further feeding into ErrClosed, not a panic.
	eng.Close()
	if err := eng.Insert(1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Insert after Close = %v, want ErrClosed", err)
	}
	if err := eng.ProcessUpdates([]Update{{Edge: Edge{A: 1, B: 1}, Op: stream.Insert}}); !errors.Is(err, ErrClosed) {
		t.Errorf("ProcessUpdates after Close = %v, want ErrClosed", err)
	}
}
