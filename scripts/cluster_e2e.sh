#!/usr/bin/env bash
# End-to-end cluster exercise (also the CI cluster-e2e job), in four
# sections selectable by the first argument:
#
#   base  — 3 fewwd range members + fewwgate: planted workload through
#           the gateway (ground-truth verified), checkpoint, SIGKILL one
#           node, observe the degradation, restore from the checkpoint
#           file, assert fresh results reconverge byte-for-byte.
#   star  — 3 fewwd -algo star range members behind a gateway plus one
#           full-universe star node, the same planted star workload into
#           both (ground-truth verified), and the cluster's fresh /best
#           and /results byte-identical to the single node's (the
#           alpha=1 deterministic regime).
#   window — 3 fewwd -algo window range members (member windows of W/3
#           composing into one global window under round-robin routing)
#           behind a gateway plus one full-universe window node, the
#           identical rotating-heavy stream into both (verified against
#           a sliding-window recount), fresh /results byte-identical;
#           then checkpoint, SIGKILL a member, restore, slide the window
#           past the restore point, and assert byte-identity again.
#   chaos — a replicated gateway (-replicas 2, one spare) streaming a
#           large planted workload while published reads hammer it:
#           SIGKILL the follower mid-ingest (reconciler adopts the
#           spare), then SIGKILL the primary mid-ingest (reconciler
#           promotes), loader and hammer must see zero failures, and the
#           post-recovery fresh results must be byte-identical to a
#           single full-universe engine fed the identical stream.
#
# Usage: scripts/cluster_e2e.sh [base|star|window|chaos|all]   (default: all)
#
# Set E2E_ARTIFACTS to a directory to keep the node/gateway logs and the
# reconciler decision log (reconciler.json) after the run — CI uploads
# these as build artifacts.
set -euo pipefail

section="${1:-all}"
case "$section" in
base | star | window | chaos | all) ;;
*)
    echo "usage: $0 [base|star|window|chaos|all]" >&2
    exit 2
    ;;
esac

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bins="$workdir/bins"
mkdir -p "$bins"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    if [ -n "${E2E_ARTIFACTS:-}" ]; then
        mkdir -p "$E2E_ARTIFACTS"
        cp "$workdir"/*.log "$E2E_ARTIFACTS"/ 2>/dev/null || true
        cp "$workdir"/reconciler.json "$E2E_ARTIFACTS"/ 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bins" ./cmd/fewwd ./cmd/fewwgate ./cmd/fewwload

N=900 D=40 # universe 900 over three nodes of 300 (cluster.Split sizing)

wait_http() { # url code tries
    local url=$1 code=$2 tries=${3:-60}
    for _ in $(seq "$tries"); do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$url")" = "$code" ]; then
            return 0
        fi
        sleep 0.5
    done
    echo "timed out waiting for $url to return $code" >&2
    return 1
}

run_base() {
    GATE=http://127.0.0.1:9400

    echo "== base: booting 3 fewwd nodes + fewwgate"
    "$bins/fewwd" -addr 127.0.0.1:9401 -n 300 -d $D -seed 11 -checkpoint "$workdir/n0.ckpt" >"$workdir/n0.log" 2>&1 &
    "$bins/fewwd" -addr 127.0.0.1:9402 -n 300 -d $D -seed 12 -checkpoint "$workdir/n1.ckpt" >"$workdir/n1.log" 2>&1 &
    "$bins/fewwd" -addr 127.0.0.1:9403 -n 300 -d $D -seed 13 -checkpoint "$workdir/n2.ckpt" >"$workdir/n2.log" 2>&1 &
    victim=$!
    "$bins/fewwgate" -addr 127.0.0.1:9400 \
        -members http://127.0.0.1:9401,http://127.0.0.1:9402,http://127.0.0.1:9403 \
        -wait 30s >"$workdir/gate.log" 2>&1 &
    wait_http "$GATE/healthz" 200

    echo "== replaying a planted workload through the gateway (with ground-truth verify)"
    "$bins/fewwload" -gateway -addr "$GATE" -scenario planted \
        -n $N -d $D -heavy 3 -edges 20000 -reqsize 2000 -verify

    echo "== checkpointing the cluster"
    curl -fsS -X POST "$GATE/checkpoint" >/dev/null
    curl -fsS "$GATE/results?fresh=1" >"$workdir/before.json"
    [ -s "$workdir/before.json" ]

    echo "== killing node 2 (SIGKILL)"
    kill -9 "$victim"
    wait_http "$GATE/healthz" 503

    echo "== restoring node 2 from its checkpoint"
    "$bins/fewwd" -addr 127.0.0.1:9403 -restore "$workdir/n2.ckpt" \
        -checkpoint "$workdir/n2.ckpt" >"$workdir/n2-restored.log" 2>&1 &
    wait_http "$GATE/healthz" 200

    echo "== asserting fresh results reconverged byte-for-byte"
    curl -fsS "$GATE/results?fresh=1" >"$workdir/after.json"
    diff "$workdir/before.json" "$workdir/after.json"

    echo "PASS base: cluster served, survived a node kill, reconverged after restore"
}

run_star() {
    echo "== star tier: 3 fewwd -algo star members + gateway vs one full-universe star node"
    SGATE=http://127.0.0.1:9414
    SINGLE=http://127.0.0.1:9410
    # Seeds and shard counts deliberately differ everywhere: with alpha=1 the
    # star answers depend only on each center's half-edge sub-stream.
    "$bins/fewwd" -algo star -addr 127.0.0.1:9410 -n $N -alpha 1 -seed 21 -shards 2 >"$workdir/s-single.log" 2>&1 &
    "$bins/fewwd" -algo star -addr 127.0.0.1:9411 -n 300 -m $N -alpha 1 -seed 22 -shards 1 >"$workdir/s0.log" 2>&1 &
    "$bins/fewwd" -algo star -addr 127.0.0.1:9412 -n 300 -m $N -alpha 1 -seed 23 -shards 2 >"$workdir/s1.log" 2>&1 &
    "$bins/fewwd" -algo star -addr 127.0.0.1:9413 -n 300 -m $N -alpha 1 -seed 24 -shards 3 >"$workdir/s2.log" 2>&1 &
    "$bins/fewwgate" -addr 127.0.0.1:9414 \
        -members http://127.0.0.1:9411,http://127.0.0.1:9412,http://127.0.0.1:9413 \
        -wait 30s >"$workdir/sgate.log" 2>&1 &
    wait_http "$SINGLE/healthz" 200
    wait_http "$SGATE/healthz" 200

    echo "== replaying the same planted star workload into both (with ground-truth verify)"
    "$bins/fewwload" -addr "$SINGLE" -scenario star -n $N -d $D -edges 3000 -reqsize 500 -verify
    "$bins/fewwload" -gateway -addr "$SGATE" -scenario star -n $N -d $D -edges 3000 -reqsize 500 -verify

    echo "== asserting the star cluster answers byte-identically to the single node"
    for path in "best?fresh=1" "results?fresh=1"; do
        curl -fsS "$SINGLE/$path" >"$workdir/star-single.json"
        curl -fsS "$SGATE/$path" >"$workdir/star-cluster.json"
        diff "$workdir/star-single.json" "$workdir/star-cluster.json"
    done

    echo "PASS star: star tier matched a single engine byte-for-byte"
}

run_window() {
    echo "== window tier: 3 fewwd -algo window members + gateway vs one full-universe window node"
    WGATE=http://127.0.0.1:9434
    WSINGLE=http://127.0.0.1:9430
    WD=12 WW=240 WB=4 WE=12000
    # Member windows of 80 compose into the global window of 240 under the
    # gateway's strict round-robin range routing: 240 = 3 * 80, and 240 is
    # divisible by 3 ranges * 4 buckets, so member bucket boundaries land
    # on the same global positions as the single node's.  Seeds and shard
    # counts again deliberately differ: with alpha=1 the served window
    # depends only on the update sequence.
    "$bins/fewwd" -algo window -addr 127.0.0.1:9430 -n $N -d $WD -alpha 1 -window $WW -buckets $WB -seed 41 -shards 2 >"$workdir/w-single.log" 2>&1 &
    "$bins/fewwd" -algo window -addr 127.0.0.1:9431 -n 300 -d $WD -alpha 1 -window 80 -buckets $WB -seed 42 -shards 1 -checkpoint "$workdir/w0.ckpt" >"$workdir/w0.log" 2>&1 &
    "$bins/fewwd" -algo window -addr 127.0.0.1:9432 -n 300 -d $WD -alpha 1 -window 80 -buckets $WB -seed 43 -shards 2 -checkpoint "$workdir/w1.ckpt" >"$workdir/w1.log" 2>&1 &
    "$bins/fewwd" -algo window -addr 127.0.0.1:9433 -n 300 -d $WD -alpha 1 -window 80 -buckets $WB -seed 44 -shards 3 -checkpoint "$workdir/w2.ckpt" >"$workdir/w2.log" 2>&1 &
    wvictim=$!
    "$bins/fewwgate" -addr 127.0.0.1:9434 \
        -members http://127.0.0.1:9431,http://127.0.0.1:9432,http://127.0.0.1:9433 \
        -wait 30s >"$workdir/wgate.log" 2>&1 &
    wait_http "$WSINGLE/healthz" 200
    wait_http "$WGATE/healthz" 200

    echo "== replaying the same rotating-heavy stream into both (sliding-window recount verify)"
    # -ranges 3 composes the single node's stream exactly as the gateway
    # receives it (same seed, same round-robin interleave of three range
    # parts), which is what makes the byte-comparison below meaningful.
    "$bins/fewwload" -gateway -addr "$WGATE" -scenario window -d $WD -edges $WE -reqsize 2000 -seed 4 -verify
    "$bins/fewwload" -addr "$WSINGLE" -scenario window -d $WD -edges $WE -reqsize 2000 -seed 4 -ranges 3 -verify

    echo "== asserting the window cluster answers byte-identically to the single node"
    curl -fsS "$WSINGLE/results?fresh=1" >"$workdir/win-single.json"
    curl -fsS "$WGATE/results?fresh=1" >"$workdir/win-cluster.json"
    diff "$workdir/win-single.json" "$workdir/win-cluster.json"

    echo "== checkpointing mid-window, SIGKILL member 2, restoring from its checkpoint"
    curl -fsS -X POST "$WGATE/checkpoint" >/dev/null
    kill -9 "$wvictim"
    wait_http "$WGATE/healthz" 503
    "$bins/fewwd" -addr 127.0.0.1:9433 -restore "$workdir/w2.ckpt" \
        -checkpoint "$workdir/w2.ckpt" >"$workdir/w2-restored.log" 2>&1 &
    wait_http "$WGATE/healthz" 200

    echo "== sliding the window past the restore point on both targets"
    # A second stream (different seed) continues both engines; the ground
    # truth of this replay alone no longer covers the engines' history, so
    # only byte-identity is asserted here.
    "$bins/fewwload" -gateway -addr "$WGATE" -scenario window -d $WD -edges $WE -reqsize 2000 -seed 5 -verify=false
    "$bins/fewwload" -addr "$WSINGLE" -scenario window -d $WD -edges $WE -reqsize 2000 -seed 5 -ranges 3 -verify=false

    echo "== asserting byte-identity held through checkpoint, kill and restore"
    curl -fsS "$WSINGLE/results?fresh=1" >"$workdir/win-single2.json"
    curl -fsS "$WGATE/results?fresh=1" >"$workdir/win-cluster2.json"
    diff "$workdir/win-single2.json" "$workdir/win-cluster2.json"

    echo "PASS window: window tier matched a single engine byte-for-byte, through a member kill and restore"
}

# Chaos-section helpers.  All poll the replicated gateway at $CGATE.

published_elements() {
    # Top-level "elements" precedes the per-member blocks in /stats.
    curl -s "$CGATE/stats" | grep -o '"elements": [0-9]*' | head -1 | grep -o '[0-9]*' || echo 0
}

wait_elements() { # threshold
    for _ in $(seq 300); do
        # The loader finishing early is not a failure — the kill then
        # simply lands after the stream instead of inside it.
        if ! kill -0 "$loader" 2>/dev/null; then return 0; fi
        if [ "$(published_elements)" -ge "$1" ]; then return 0; fi
        sleep 0.1
    done
    echo "timed out waiting for $1 published elements" >&2
    return 1
}

wait_decision() { # action
    for _ in $(seq 150); do
        if curl -s "$CGATE/reconciler" | grep -q "\"action\": \"$1\""; then
            return 0
        fi
        sleep 0.2
    done
    echo "timed out waiting for a \"$1\" reconciler decision" >&2
    curl -s "$CGATE/reconciler" >&2 || true
    return 1
}

run_chaos() {
    echo "== chaos tier: replicated gateway (R=2 + spare) vs SIGKILL of follower then primary mid-ingest"
    CGATE=http://127.0.0.1:9424
    CREF=http://127.0.0.1:9420
    CN=100000 CE=600000
    # One full-universe range held by two replicas (A primary, B follower)
    # plus spare C; the reference holds the same universe alone.  Seeds and
    # shard counts differ everywhere — alpha=1 makes them irrelevant — and
    # with a single group every member sees the reference's exact stream
    # order, so fresh answers must match byte-for-byte.  A single planted
    # heavy vertex keeps the best answer a unique maximum (the generator
    # caps noise degrees at d/2): tie-breaks at the witness cap are
    # engine-internal order, which byte-diffing two engines cannot assume.
    "$bins/fewwd" -addr 127.0.0.1:9420 -n $CN -d $D -alpha 1 -seed 31 -shards 2 >"$workdir/c-ref.log" 2>&1 &
    "$bins/fewwd" -addr 127.0.0.1:9421 -n $CN -d $D -alpha 1 -seed 32 -shards 1 >"$workdir/c-a.log" 2>&1 &
    apid=$!
    "$bins/fewwd" -addr 127.0.0.1:9422 -n $CN -d $D -alpha 1 -seed 33 -shards 2 >"$workdir/c-b.log" 2>&1 &
    bpid=$!
    "$bins/fewwd" -addr 127.0.0.1:9423 -n $CN -d $D -alpha 1 -seed 34 -shards 3 >"$workdir/c-c.log" 2>&1 &
    "$bins/fewwgate" -addr 127.0.0.1:9424 \
        -members http://127.0.0.1:9421,http://127.0.0.1:9422,http://127.0.0.1:9423 \
        -replicas 2 -reconcile-interval 100ms -fail-after 2 -probe-timeout 2s \
        -wait 30s >"$workdir/c-gate.log" 2>&1 &
    wait_http "$CREF/healthz" 200
    wait_http "$CGATE/healthz" 200

    echo "== hammering published reads (must never fail across both failovers)"
    hammer_stop="$workdir/hammer.stop"
    hammer_fails="$workdir/hammer.fails"
    : >"$hammer_fails"
    (
        while [ ! -f "$hammer_stop" ]; do
            for path in best results stats; do
                code=$(curl -s -o /dev/null -w '%{http_code}' "$CGATE/$path" || true)
                if [ "$code" != "200" ]; then
                    echo "$path -> ${code:-000}" >>"$hammer_fails"
                fi
            done
            sleep 0.05
        done
    ) &
    hammer_pid=$!

    echo "== streaming a large planted workload through the gateway"
    "$bins/fewwload" -gateway -addr "$CGATE" -scenario planted \
        -n $CN -d $D -heavy 1 -edges $CE -reqsize 500 -verify >"$workdir/c-load.log" 2>&1 &
    loader=$!

    wait_elements 100000
    echo "== SIGKILL follower (127.0.0.1:9422) mid-ingest"
    kill -9 "$bpid"
    echo "== waiting for the reconciler to adopt the spare"
    wait_decision adopt-spare

    wait_elements 300000
    echo "== SIGKILL primary (127.0.0.1:9421) mid-ingest"
    kill -9 "$apid"
    echo "== waiting for the reconciler to promote a follower"
    wait_decision promote

    echo "== waiting for the loader (every request must have been accepted)"
    if ! wait "$loader"; then
        echo "loader failed through the failovers; its log:" >&2
        tail -30 "$workdir/c-load.log" >&2
        exit 1
    fi

    touch "$hammer_stop"
    wait "$hammer_pid" 2>/dev/null || true
    if [ -s "$hammer_fails" ]; then
        echo "published reads failed during failover:" >&2
        sort "$hammer_fails" | uniq -c >&2
        exit 1
    fi
    echo "== zero failed published reads across both failovers"

    echo "== replaying the identical workload into a single full-universe engine"
    "$bins/fewwload" -addr "$CREF" -scenario planted \
        -n $CN -d $D -heavy 1 -edges $CE -reqsize 500 -verify >"$workdir/c-refload.log" 2>&1

    echo "== asserting post-recovery fresh results are byte-identical to the reference"
    for path in "best?fresh=1" "results?fresh=1"; do
        curl -fsS "$CREF/$path" >"$workdir/chaos-ref.json"
        curl -fsS "$CGATE/$path" >"$workdir/chaos-cluster.json"
        diff "$workdir/chaos-ref.json" "$workdir/chaos-cluster.json"
    done

    curl -fsS "$CGATE/reconciler" >"$workdir/reconciler.json"
    echo "== reconciler decisions:"
    grep -o '"action": "[a-z-]*"' "$workdir/reconciler.json" | sort | uniq -c

    echo "PASS chaos: survived SIGKILL of follower and primary mid-ingest with zero failed published reads and byte-identical recovery"
}

if [ "$section" = base ] || [ "$section" = all ]; then run_base; fi
if [ "$section" = star ] || [ "$section" = all ]; then run_star; fi
if [ "$section" = window ] || [ "$section" = all ]; then run_window; fi
if [ "$section" = chaos ] || [ "$section" = all ]; then run_chaos; fi

echo "PASS: cluster e2e ($section) complete"
