#!/usr/bin/env bash
# End-to-end cluster exercise (also the CI cluster-e2e job):
#
#   1. boot three fewwd nodes and a fewwgate over them,
#   2. replay a planted workload through the gateway with fewwload
#      -gateway, verifying the served witnesses against the ground truth,
#   3. checkpoint the cluster, kill one node with SIGKILL,
#   4. observe the gateway report the degradation,
#   5. restart the node from its checkpoint file,
#   6. assert the cluster's fresh results reconverge byte-for-byte,
#   7. star tier: boot three fewwd -algo star range members behind a
#      gateway plus one full-universe star node, replay the same planted
#      star workload into both (ground-truth verified), and assert the
#      cluster's fresh /best and /results are byte-identical to the
#      single node's (the alpha=1 deterministic regime).
#
# Usage: scripts/cluster_e2e.sh   (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bins="$workdir/bins"
mkdir -p "$bins"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bins" ./cmd/fewwd ./cmd/fewwgate ./cmd/fewwload

GATE=http://127.0.0.1:9400
N=900 D=40   # universe 900 over three nodes of 300 (cluster.Split sizing)

wait_http() { # url code tries
    local url=$1 code=$2 tries=${3:-60}
    for _ in $(seq "$tries"); do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$url")" = "$code" ]; then
            return 0
        fi
        sleep 0.5
    done
    echo "timed out waiting for $url to return $code" >&2
    return 1
}

echo "== booting 3 fewwd nodes + fewwgate"
"$bins/fewwd" -addr 127.0.0.1:9401 -n 300 -d $D -seed 11 -checkpoint "$workdir/n0.ckpt" >"$workdir/n0.log" 2>&1 &
"$bins/fewwd" -addr 127.0.0.1:9402 -n 300 -d $D -seed 12 -checkpoint "$workdir/n1.ckpt" >"$workdir/n1.log" 2>&1 &
"$bins/fewwd" -addr 127.0.0.1:9403 -n 300 -d $D -seed 13 -checkpoint "$workdir/n2.ckpt" >"$workdir/n2.log" 2>&1 &
victim=$!
"$bins/fewwgate" -addr 127.0.0.1:9400 \
    -members http://127.0.0.1:9401,http://127.0.0.1:9402,http://127.0.0.1:9403 \
    -wait 30s >"$workdir/gate.log" 2>&1 &
wait_http "$GATE/healthz" 200

echo "== replaying a planted workload through the gateway (with ground-truth verify)"
"$bins/fewwload" -gateway -addr "$GATE" -scenario planted \
    -n $N -d $D -heavy 3 -edges 20000 -reqsize 2000 -verify

echo "== checkpointing the cluster"
curl -fsS -X POST "$GATE/checkpoint" >/dev/null
curl -fsS "$GATE/results?fresh=1" >"$workdir/before.json"
[ -s "$workdir/before.json" ]

echo "== killing node 2 (SIGKILL)"
kill -9 "$victim"
wait_http "$GATE/healthz" 503

echo "== restoring node 2 from its checkpoint"
"$bins/fewwd" -addr 127.0.0.1:9403 -restore "$workdir/n2.ckpt" \
    -checkpoint "$workdir/n2.ckpt" >"$workdir/n2-restored.log" 2>&1 &
wait_http "$GATE/healthz" 200

echo "== asserting fresh results reconverged byte-for-byte"
curl -fsS "$GATE/results?fresh=1" >"$workdir/after.json"
diff "$workdir/before.json" "$workdir/after.json"

echo "== star tier: 3 fewwd -algo star members + gateway vs one full-universe star node"
SGATE=http://127.0.0.1:9414
SINGLE=http://127.0.0.1:9410
# Seeds and shard counts deliberately differ everywhere: with alpha=1 the
# star answers depend only on each center's half-edge sub-stream.
"$bins/fewwd" -algo star -addr 127.0.0.1:9410 -n $N -alpha 1 -seed 21 -shards 2 >"$workdir/s-single.log" 2>&1 &
"$bins/fewwd" -algo star -addr 127.0.0.1:9411 -n 300 -m $N -alpha 1 -seed 22 -shards 1 >"$workdir/s0.log" 2>&1 &
"$bins/fewwd" -algo star -addr 127.0.0.1:9412 -n 300 -m $N -alpha 1 -seed 23 -shards 2 >"$workdir/s1.log" 2>&1 &
"$bins/fewwd" -algo star -addr 127.0.0.1:9413 -n 300 -m $N -alpha 1 -seed 24 -shards 3 >"$workdir/s2.log" 2>&1 &
"$bins/fewwgate" -addr 127.0.0.1:9414 \
    -members http://127.0.0.1:9411,http://127.0.0.1:9412,http://127.0.0.1:9413 \
    -wait 30s >"$workdir/sgate.log" 2>&1 &
wait_http "$SINGLE/healthz" 200
wait_http "$SGATE/healthz" 200

echo "== replaying the same planted star workload into both (with ground-truth verify)"
"$bins/fewwload" -addr "$SINGLE" -scenario star -n $N -d $D -edges 3000 -reqsize 500 -verify
"$bins/fewwload" -gateway -addr "$SGATE" -scenario star -n $N -d $D -edges 3000 -reqsize 500 -verify

echo "== asserting the star cluster answers byte-identically to the single node"
for path in "best?fresh=1" "results?fresh=1"; do
    curl -fsS "$SINGLE/$path" >"$workdir/star-single.json"
    curl -fsS "$SGATE/$path" >"$workdir/star-cluster.json"
    diff "$workdir/star-single.json" "$workdir/star-cluster.json"
done

echo "PASS: cluster served, survived a node kill, reconverged after restore, and the star tier matched a single engine byte-for-byte"
