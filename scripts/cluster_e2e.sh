#!/usr/bin/env bash
# End-to-end cluster exercise (also the CI cluster-e2e job):
#
#   1. boot three fewwd nodes and a fewwgate over them,
#   2. replay a planted workload through the gateway with fewwload
#      -gateway, verifying the served witnesses against the ground truth,
#   3. checkpoint the cluster, kill one node with SIGKILL,
#   4. observe the gateway report the degradation,
#   5. restart the node from its checkpoint file,
#   6. assert the cluster's fresh results reconverge byte-for-byte.
#
# Usage: scripts/cluster_e2e.sh   (from anywhere inside the repo)
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
bins="$workdir/bins"
mkdir -p "$bins"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$bins" ./cmd/fewwd ./cmd/fewwgate ./cmd/fewwload

GATE=http://127.0.0.1:9400
N=900 D=40   # universe 900 over three nodes of 300 (cluster.Split sizing)

wait_http() { # url code tries
    local url=$1 code=$2 tries=${3:-60}
    for _ in $(seq "$tries"); do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$url")" = "$code" ]; then
            return 0
        fi
        sleep 0.5
    done
    echo "timed out waiting for $url to return $code" >&2
    return 1
}

echo "== booting 3 fewwd nodes + fewwgate"
"$bins/fewwd" -addr 127.0.0.1:9401 -n 300 -d $D -seed 11 -checkpoint "$workdir/n0.ckpt" >"$workdir/n0.log" 2>&1 &
"$bins/fewwd" -addr 127.0.0.1:9402 -n 300 -d $D -seed 12 -checkpoint "$workdir/n1.ckpt" >"$workdir/n1.log" 2>&1 &
"$bins/fewwd" -addr 127.0.0.1:9403 -n 300 -d $D -seed 13 -checkpoint "$workdir/n2.ckpt" >"$workdir/n2.log" 2>&1 &
victim=$!
"$bins/fewwgate" -addr 127.0.0.1:9400 \
    -members http://127.0.0.1:9401,http://127.0.0.1:9402,http://127.0.0.1:9403 \
    -wait 30s >"$workdir/gate.log" 2>&1 &
wait_http "$GATE/healthz" 200

echo "== replaying a planted workload through the gateway (with ground-truth verify)"
"$bins/fewwload" -gateway -addr "$GATE" -scenario planted \
    -n $N -d $D -heavy 3 -edges 20000 -reqsize 2000 -verify

echo "== checkpointing the cluster"
curl -fsS -X POST "$GATE/checkpoint" >/dev/null
curl -fsS "$GATE/results?fresh=1" >"$workdir/before.json"
[ -s "$workdir/before.json" ]

echo "== killing node 2 (SIGKILL)"
kill -9 "$victim"
wait_http "$GATE/healthz" 503

echo "== restoring node 2 from its checkpoint"
"$bins/fewwd" -addr 127.0.0.1:9403 -restore "$workdir/n2.ckpt" \
    -checkpoint "$workdir/n2.ckpt" >"$workdir/n2-restored.log" 2>&1 &
wait_http "$GATE/healthz" 200

echo "== asserting fresh results reconverged byte-for-byte"
curl -fsS "$GATE/results?fresh=1" >"$workdir/after.json"
diff "$workdir/before.json" "$workdir/after.json"

echo "PASS: cluster served, survived a node kill, and reconverged after restore"
