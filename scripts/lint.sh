#!/usr/bin/env bash
# One-shot lint runner: gofmt -> go vet -> fewwvet -> staticcheck ->
# govulncheck, in increasing order of cost.  CI invokes the sections as
# named steps; locally `scripts/lint.sh` runs everything and
# `scripts/lint.sh fewwvet` (etc.) runs one section.
#
# The external tools are pinned so CI and local runs agree on the check
# set; they are resolved from PATH or GOPATH/bin and installed at the
# pinned version when missing.  On a machine that cannot install them
# (offline sandboxes), those sections warn and skip — set
# LINT_REQUIRE_TOOLS=1 (CI does) to make a missing tool a failure
# instead.
set -euo pipefail
cd "$(dirname "$0")/.."

STATICCHECK_PIN=2025.1.1
GOVULNCHECK_PIN=v1.1.4

# resolve_tool <binary> <module@version>: prints the path to the binary,
# installing it at the pinned version if needed; fails if unobtainable.
resolve_tool() {
    local name=$1 mod=$2 gobin
    if command -v "$name" >/dev/null 2>&1; then
        command -v "$name"
        return 0
    fi
    gobin=$(go env GOPATH)/bin
    if [ -x "$gobin/$name" ]; then
        echo "$gobin/$name"
        return 0
    fi
    echo "lint: installing $mod" >&2
    if GOBIN="$gobin" go install "$mod" >/dev/null 2>&1 && [ -x "$gobin/$name" ]; then
        echo "$gobin/$name"
        return 0
    fi
    return 1
}

# skip_or_fail <tool>: honoring LINT_REQUIRE_TOOLS, either warns or dies.
skip_or_fail() {
    if [ "${LINT_REQUIRE_TOOLS:-0}" = 1 ]; then
        echo "lint: $1 unavailable and LINT_REQUIRE_TOOLS=1" >&2
        exit 1
    fi
    echo "lint: $1 unavailable (offline?); skipping" >&2
}

run_gofmt() {
    echo "== gofmt"
    local out
    out=$(gofmt -l .)
    if [ -n "$out" ]; then
        echo "gofmt needed on:" >&2
        echo "$out" >&2
        return 1
    fi
}

run_vet() {
    echo "== go vet"
    go vet ./...
}

run_fewwvet() {
    echo "== fewwvet (project invariant analyzers)"
    go run ./cmd/fewwvet ./...
}

run_staticcheck() {
    echo "== staticcheck ($STATICCHECK_PIN, SA correctness checks)"
    local tool
    if tool=$(resolve_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_PIN"); then
        "$tool" -checks 'SA*' ./...
    else
        skip_or_fail staticcheck
    fi
}

run_govulncheck() {
    echo "== govulncheck ($GOVULNCHECK_PIN)"
    local tool
    if tool=$(resolve_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_PIN"); then
        "$tool" ./...
    else
        skip_or_fail govulncheck
    fi
}

case "${1:-all}" in
gofmt) run_gofmt ;;
vet) run_vet ;;
fewwvet) run_fewwvet ;;
staticcheck) run_staticcheck ;;
govulncheck) run_govulncheck ;;
all)
    run_gofmt
    run_vet
    run_fewwvet
    run_staticcheck
    run_govulncheck
    ;;
*)
    echo "usage: scripts/lint.sh [gofmt|vet|fewwvet|staticcheck|govulncheck|all]" >&2
    exit 2
    ;;
esac
