package server

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// TestClientShipSnapshot pins the snapshot-shipping primitive the
// cluster tier builds rebalance and replica re-seeding on: one call
// copies a donor's complete engine state into a destination node and
// returns the destination's post-restore health for verification.
func TestClientShipSnapshot(t *testing.T) {
	donorSrv, donorEng := newHealthServer(t, 80, 3)
	donorTS := httptest.NewServer(donorSrv.Handler())
	defer donorTS.Close()
	defer donorEng.Close()
	donor := &Client{Base: donorTS.URL}
	for b := int64(0); b < 5; b++ {
		if err := donorEng.ProcessEdge(7, 100+b); err != nil {
			t.Fatal(err)
		}
	}

	recipSrv, recipEng := newHealthServer(t, 2, 1) // placeholder, replaced wholesale
	recipTS := httptest.NewServer(recipSrv.Handler())
	defer recipTS.Close()
	defer recipEng.Close()
	recip := &Client{Base: recipTS.URL}

	h, size, err := donor.ShipSnapshot(recip)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("shipped %d bytes, want > 0", size)
	}
	if h.N != 80 || h.Elements != 5 || !h.Serving {
		t.Fatalf("post-ship health = %+v, want the donor's N=80, Elements=5, serving", h)
	}

	wantBest, err := donor.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	gotBest, err := recip.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBest, gotBest) {
		t.Fatalf("shipped best = %+v, donor best = %+v", gotBest, wantBest)
	}

	// Shipping into a dead destination reports the restore leg, and the
	// donor is untouched.
	recipTS.Close()
	if _, _, err := donor.ShipSnapshot(recip); err == nil {
		t.Fatal("shipping into a dead destination succeeded")
	} else if !strings.Contains(err.Error(), "restore into") {
		t.Fatalf("err = %v, want the restore leg named", err)
	}
	if h, err := donor.Health(); err != nil || h.Elements != 5 {
		t.Fatalf("failed ship disturbed the donor: %+v, %v", h, err)
	}
}
