//go:build race

package server

// raceDetectorEnabled mirrors the -race build tag so allocation gates
// can skip: the race runtime allocates for its own synchronisation
// bookkeeping, which AllocsPerRun cannot tell apart from hot-path
// regressions.
const raceDetectorEnabled = true
