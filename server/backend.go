package server

import (
	"bufio"
	"fmt"
	"io"

	"feww"
)

// Backend is the engine surface fewwd serves: either the insertion-only
// Engine or the TurnstileEngine behind one adapter interface.  Both
// engines are internally safe for concurrent use, so Backend methods may
// be called from any number of request handlers at once.
type Backend interface {
	// Kind is "insert-only" or "turnstile", reported by /stats.
	Kind() string
	// Ingest applies a batch of updates in order.  It validates every
	// update against the engine's universe before feeding anything, so a
	// rejected batch leaves the engine untouched.
	Ingest(ups []feww.Update) error
	// Best returns the largest neighbourhood collected so far (for the
	// turnstile engine: the Result neighbourhood, which is only available
	// once it reaches the witness target).
	Best() (feww.Neighbourhood, bool)
	// Results returns every full-target neighbourhood found.
	Results() []feww.Neighbourhood
	// Processed returns the number of stream elements accepted.
	Processed() int64
	// Shards, QueueDepths, WitnessTarget and Usage feed the /stats
	// endpoint; Usage reports space words and snapshot bytes under one
	// engine quiesce, so a stats poll stalls ingest once, not twice.
	Shards() int
	QueueDepths() []int
	WitnessTarget() int64
	Usage() (spaceWords, snapshotBytes int)
	// Snapshot serialises the engine state; Restore* round-trips it.
	Snapshot(w io.Writer) error
	// Close drains and stops the engine; the backend stays queryable.
	Close()
}

// NewInsertOnlyBackend wraps a sharded insertion-only engine.
func NewInsertOnlyBackend(e *feww.Engine) Backend { return &insertBackend{e} }

// NewTurnstileBackend wraps a sharded insertion-deletion engine.
func NewTurnstileBackend(e *feww.TurnstileEngine) Backend { return &turnstileBackend{e} }

type insertBackend struct {
	e *feww.Engine
}

func (b *insertBackend) Kind() string { return "insert-only" }

func (b *insertBackend) Ingest(ups []feww.Update) error {
	n := b.e.Config().N
	for i, u := range ups {
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d of %d: %v: insertion-only engine cannot apply deletions (run the service in turnstile mode)", i, len(ups), u)
		}
		if u.A < 0 || u.A >= n || u.B < 0 {
			return fmt.Errorf("update %d of %d: %v: item out of the engine's universe [0, %d)", i, len(ups), u, n)
		}
	}
	edges := make([]feww.Edge, len(ups))
	for i, u := range ups {
		edges[i] = u.Edge
	}
	b.e.ProcessEdges(edges)
	return nil
}

func (b *insertBackend) Best() (feww.Neighbourhood, bool)   { return b.e.Best() }
func (b *insertBackend) Results() []feww.Neighbourhood      { return b.e.Results() }
func (b *insertBackend) Processed() int64                   { return b.e.EdgesProcessed() }
func (b *insertBackend) Shards() int                        { return b.e.Shards() }
func (b *insertBackend) QueueDepths() []int                 { return b.e.QueueDepths() }
func (b *insertBackend) WitnessTarget() int64               { return b.e.WitnessTarget() }
func (b *insertBackend) Usage() (spaceWords, snapBytes int) { return b.e.Usage() }
func (b *insertBackend) Snapshot(w io.Writer) error         { return b.e.Snapshot(w) }
func (b *insertBackend) Close()                             { b.e.Close() }

type turnstileBackend struct {
	e *feww.TurnstileEngine
}

func (b *turnstileBackend) Kind() string { return "turnstile" }

func (b *turnstileBackend) Ingest(ups []feww.Update) error {
	cfg := b.e.Config()
	for i, u := range ups {
		if u.Op != feww.Insert && u.Op != feww.Delete {
			return fmt.Errorf("update %d of %d has invalid op %d", i, len(ups), u.Op)
		}
		if u.A < 0 || u.A >= cfg.N || u.B < 0 || u.B >= cfg.M {
			return fmt.Errorf("update %d of %d: %v: edge out of the engine's universe [0, %d) x [0, %d)", i, len(ups), u, cfg.N, cfg.M)
		}
	}
	b.e.ProcessUpdates(ups)
	return nil
}

// Best for the turnstile engine is its Result: the L0-sampler queries
// only certify neighbourhoods once they reach the witness target, so
// there is no meaningful "largest partial" to report.
func (b *turnstileBackend) Best() (feww.Neighbourhood, bool) {
	nb, err := b.e.Result()
	return nb, err == nil
}

func (b *turnstileBackend) Results() []feww.Neighbourhood {
	if nb, err := b.e.Result(); err == nil {
		return []feww.Neighbourhood{nb}
	}
	return nil
}

func (b *turnstileBackend) Processed() int64                   { return b.e.UpdatesProcessed() }
func (b *turnstileBackend) Shards() int                        { return b.e.Shards() }
func (b *turnstileBackend) QueueDepths() []int                 { return b.e.QueueDepths() }
func (b *turnstileBackend) WitnessTarget() int64               { return b.e.WitnessTarget() }
func (b *turnstileBackend) Usage() (spaceWords, snapBytes int) { return b.e.Usage() }
func (b *turnstileBackend) Snapshot(w io.Writer) error         { return b.e.Snapshot(w) }
func (b *turnstileBackend) Close()                             { b.e.Close() }

// RestoreBackend reads an engine snapshot — a checkpoint file, or the
// bytes of GET /snapshot — sniffs which engine kind it holds, and returns
// a running backend of that kind.  This is the paper's one-way protocol
// made operational: party i's memory state restored by party i+1.
func RestoreBackend(r io.Reader) (Backend, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(9)
	if err != nil {
		return nil, fmt.Errorf("%w: reading engine snapshot header: %v", feww.ErrBadSnapshot, err)
	}
	switch head[8] {
	case 1: // turnstile kind byte
		e, err := feww.RestoreTurnstileEngine(br)
		if err != nil {
			return nil, err
		}
		return NewTurnstileBackend(e), nil
	default:
		e, err := feww.RestoreEngine(br)
		if err != nil {
			return nil, err
		}
		return NewInsertOnlyBackend(e), nil
	}
}
