package server

import (
	"bufio"
	"fmt"
	"io"

	"feww"
)

// Backend is the engine surface fewwd serves: either the insertion-only
// Engine or the TurnstileEngine behind one adapter interface.  Both
// engines are internally safe for concurrent use, so Backend methods may
// be called from any number of request handlers at once.
//
// Queries take a fresh flag selecting the consistency: false reads the
// shards' latest published result epochs (barrier-free — never stalls
// ingest, never serialises with other queries, lags the accepted stream
// by the in-flight batches plus a short publication throttle), true
// takes the strict barrier and reflects every update accepted before
// the call.
type Backend interface {
	// Kind is "insert-only" or "turnstile", reported by /stats.
	Kind() string
	// Ingest applies a batch of updates in order.  The engine validates
	// every update against its universe before feeding anything, so a
	// rejected batch leaves the engine untouched; the error wraps
	// feww.ErrOutOfUniverse for out-of-range elements, feww.ErrInvalidOp
	// for a bad op, and feww.ErrClosed when the engine is shutting down.
	Ingest(ups []feww.Update) error
	// Flush hands buffered updates to the shard queues without waiting,
	// bounding how far the published epochs lag a completed request.
	Flush()
	// Best returns the largest neighbourhood collected so far (for the
	// turnstile engine: the Result neighbourhood, which is only available
	// once it reaches the witness target).
	Best(fresh bool) (feww.Neighbourhood, bool)
	// Results returns every full-target neighbourhood found.
	Results(fresh bool) []feww.Neighbourhood
	// Processed returns the number of stream elements accepted.
	Processed() int64
	// Shards, QueueDepths, ViewEpochs, WitnessTarget and Usage feed the
	// /stats endpoint; Usage reports space words and snapshot bytes (one
	// quiesce when fresh, a few atomic loads when not).
	Shards() int
	QueueDepths() []int
	ViewEpochs() []uint64
	WitnessTarget() int64
	Usage(fresh bool) (spaceWords, snapshotBytes int)
	// Universe reports the configured universe sizes: the item universe n
	// and, for the turnstile engine, the witness universe m (0 for the
	// insertion-only engine, whose witnesses are unbounded).  The /healthz
	// endpoint reports both so a cluster gateway can verify a member's
	// engine matches the range it is supposed to serve.
	Universe() (n, m int64)
	// Closed reports whether the engine has stopped accepting the stream
	// (Close has run); queries stay valid either way.
	Closed() bool
	// Snapshot serialises the engine state; Restore* round-trips it.
	Snapshot(w io.Writer) error
	// Close drains and stops the engine; the backend stays queryable.
	Close()
}

// NewInsertOnlyBackend wraps a sharded insertion-only engine.
func NewInsertOnlyBackend(e *feww.Engine) Backend { return &insertBackend{e} }

// NewTurnstileBackend wraps a sharded insertion-deletion engine.
func NewTurnstileBackend(e *feww.TurnstileEngine) Backend { return &turnstileBackend{e} }

type insertBackend struct {
	e *feww.Engine
}

func (b *insertBackend) Kind() string { return "insert-only" }

func (b *insertBackend) Ingest(ups []feww.Update) error {
	// The op check lives here (the edge type the engine feeds on has no
	// sign); universe validation is the engine's own boundary check, so a
	// hostile id can never reach the shard router no matter who calls.
	for i, u := range ups {
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d of %d: %v: insertion-only engine cannot apply deletions (run the service in turnstile mode)", i, len(ups), u)
		}
	}
	edges := make([]feww.Edge, len(ups))
	for i, u := range ups {
		edges[i] = u.Edge
	}
	return b.e.ProcessEdges(edges)
}

func (b *insertBackend) Flush() { b.e.Flush() }

func (b *insertBackend) Best(fresh bool) (feww.Neighbourhood, bool) {
	if fresh {
		return b.e.BestFresh()
	}
	return b.e.Best()
}

func (b *insertBackend) Results(fresh bool) []feww.Neighbourhood {
	if fresh {
		return b.e.ResultsFresh()
	}
	return b.e.Results()
}

func (b *insertBackend) Usage(fresh bool) (spaceWords, snapBytes int) {
	if fresh {
		return b.e.UsageFresh()
	}
	return b.e.Usage()
}

func (b *insertBackend) Processed() int64           { return b.e.EdgesProcessed() }
func (b *insertBackend) Shards() int                { return b.e.Shards() }
func (b *insertBackend) QueueDepths() []int         { return b.e.QueueDepths() }
func (b *insertBackend) ViewEpochs() []uint64       { return b.e.ViewEpochs() }
func (b *insertBackend) WitnessTarget() int64       { return b.e.WitnessTarget() }
func (b *insertBackend) Universe() (int64, int64)   { return b.e.Config().N, 0 }
func (b *insertBackend) Closed() bool               { return b.e.Closed() }
func (b *insertBackend) Snapshot(w io.Writer) error { return b.e.Snapshot(w) }
func (b *insertBackend) Close()                     { b.e.Close() }

type turnstileBackend struct {
	e *feww.TurnstileEngine
}

func (b *turnstileBackend) Kind() string { return "turnstile" }

// Ingest delegates validation entirely to the engine boundary: ops,
// items, and witnesses are all checked there before anything is fed.
func (b *turnstileBackend) Ingest(ups []feww.Update) error {
	return b.e.ProcessUpdates(ups)
}

func (b *turnstileBackend) Flush() { b.e.Flush() }

// Best for the turnstile engine is its Result: the L0-sampler queries
// only certify neighbourhoods once they reach the witness target, so
// there is no meaningful "largest partial" to report.
func (b *turnstileBackend) Best(fresh bool) (feww.Neighbourhood, bool) {
	nb, err := b.result(fresh)
	return nb, err == nil
}

func (b *turnstileBackend) Results(fresh bool) []feww.Neighbourhood {
	if nb, err := b.result(fresh); err == nil {
		return []feww.Neighbourhood{nb}
	}
	return nil
}

func (b *turnstileBackend) result(fresh bool) (feww.Neighbourhood, error) {
	if fresh {
		return b.e.ResultFresh()
	}
	return b.e.Result()
}

func (b *turnstileBackend) Usage(fresh bool) (spaceWords, snapBytes int) {
	if fresh {
		return b.e.UsageFresh()
	}
	return b.e.Usage()
}

func (b *turnstileBackend) Processed() int64           { return b.e.UpdatesProcessed() }
func (b *turnstileBackend) Shards() int                { return b.e.Shards() }
func (b *turnstileBackend) QueueDepths() []int         { return b.e.QueueDepths() }
func (b *turnstileBackend) ViewEpochs() []uint64       { return b.e.ViewEpochs() }
func (b *turnstileBackend) WitnessTarget() int64       { return b.e.WitnessTarget() }
func (b *turnstileBackend) Universe() (int64, int64)   { return b.e.Config().N, b.e.Config().M }
func (b *turnstileBackend) Closed() bool               { return b.e.Closed() }
func (b *turnstileBackend) Snapshot(w io.Writer) error { return b.e.Snapshot(w) }
func (b *turnstileBackend) Close()                     { b.e.Close() }

// RestoreBackend reads an engine snapshot — a checkpoint file, or the
// bytes of GET /snapshot — sniffs which engine kind it holds, and returns
// a running backend of that kind.  This is the paper's one-way protocol
// made operational: party i's memory state restored by party i+1.
func RestoreBackend(r io.Reader) (Backend, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(9)
	if err != nil {
		return nil, fmt.Errorf("%w: reading engine snapshot header: %v", feww.ErrBadSnapshot, err)
	}
	switch head[8] {
	case 1: // turnstile kind byte
		e, err := feww.RestoreTurnstileEngine(br)
		if err != nil {
			return nil, err
		}
		return NewTurnstileBackend(e), nil
	default:
		e, err := feww.RestoreEngine(br)
		if err != nil {
			return nil, err
		}
		return NewInsertOnlyBackend(e), nil
	}
}
