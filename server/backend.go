package server

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"feww"
)

// Backend is the engine surface fewwd serves: the insertion-only Engine,
// the TurnstileEngine, the StarEngine, or the sliding-window WindowEngine
// behind one adapter interface.
// All engines are façades over the same generic sharded runtime and are
// internally safe for concurrent use, so Backend methods may be called
// from any number of request handlers at once.
//
// Queries take a fresh flag selecting the consistency: false reads the
// shards' latest published result epochs (barrier-free — never stalls
// ingest, never serialises with other queries, lags the accepted stream
// by the in-flight batches plus a short publication throttle), true
// takes the strict barrier and reflects every update accepted before
// the call.
type Backend interface {
	// Kind is "insert-only", "turnstile", "star" or "window", reported by
	// /stats and /healthz (where the cluster gateway verifies it per
	// member).
	Kind() string
	// Ingest applies a batch of updates in order.  The engine validates
	// every update against its universe before feeding anything, so a
	// rejected batch leaves the engine untouched; the error wraps
	// feww.ErrOutOfUniverse for out-of-range elements, feww.ErrInvalidOp
	// for a bad op, and feww.ErrClosed when the engine is shutting down.
	// Star backends consume the stream as directed half-edges (the
	// double cover is materialised by the producer).
	Ingest(ups []feww.Update) error
	// Flush hands buffered updates to the shard queues without waiting,
	// bounding how far the published epochs lag a completed request.
	Flush()
	// Best returns the largest neighbourhood collected so far (for the
	// turnstile engine: the Result neighbourhood; for the star engine:
	// the best star, rung-annotated).
	Best(fresh bool) BestAnswer
	// Results returns every full-target neighbourhood found (for the
	// star engine: every center certified at the winning rung).
	Results(fresh bool) ResultsAnswer
	// Processed returns the number of stream elements accepted.
	Processed() int64
	// Shards, QueueDepths, ViewEpochs, WitnessTarget and Usage feed the
	// /stats endpoint; Usage reports space words and snapshot bytes (one
	// quiesce when fresh, a few atomic loads when not).
	Shards() int
	QueueDepths() []int
	ViewEpochs() []uint64
	WitnessTarget() int64
	Usage(fresh bool) (spaceWords, snapshotBytes int)
	// Universe reports the configured universe sizes: the item universe n
	// and the witness universe m (0 for the insertion-only engine, whose
	// witnesses are unbounded; the global vertex count for the star
	// engine).  The /healthz endpoint reports both so a cluster gateway
	// can verify a member's engine matches the range it is supposed to
	// serve.
	Universe() (n, m int64)
	// Closed reports whether the engine has stopped accepting the stream
	// (Close has run); queries stay valid either way.
	Closed() bool
	// Snapshot serialises the engine state; Restore* round-trips it.
	Snapshot(w io.Writer) error
	// Close drains and stops the engine; the backend stays queryable.
	Close()
}

// BestAnswer is a backend's /best reply.  WitnessTarget is the target
// the answer is judged against: the engine's static ceil(D/Alpha) for
// the flat engines; for the star engine the winning rung's target when
// Found, the ladder ceiling otherwise.  Rung and Guess annotate star
// answers with the certifying ladder position; Rung is -1 for the flat
// engines.
type BestAnswer struct {
	Neighbourhood feww.Neighbourhood
	Found         bool
	WitnessTarget int64
	Rung          int
	Guess         int64
}

// ResultsAnswer is a backend's /results reply; Rung and Guess are -1/0
// for the flat engines, the winning rung for the star engine.
type ResultsAnswer struct {
	Neighbourhoods []feww.Neighbourhood
	Rung           int
	Guess          int64
}

// engineOps is the surface every engine façade shares, courtesy of the
// generic runtime; commonBackend adapts it once so the per-kind backends
// carry only the methods that genuinely differ (kind, ingest validation,
// and the query merge shape).
type engineOps interface {
	Flush() error
	Shards() int
	QueueDepths() []int
	ViewEpochs() []uint64
	WitnessTarget() int64
	Usage() (int, int)
	UsageFresh() (int, int)
	Closed() bool
	Snapshot(w io.Writer) error
	Close()
}

type commonBackend struct {
	ops engineOps
}

func (b commonBackend) Flush()                     { b.ops.Flush() }
func (b commonBackend) Shards() int                { return b.ops.Shards() }
func (b commonBackend) QueueDepths() []int         { return b.ops.QueueDepths() }
func (b commonBackend) ViewEpochs() []uint64       { return b.ops.ViewEpochs() }
func (b commonBackend) WitnessTarget() int64       { return b.ops.WitnessTarget() }
func (b commonBackend) Closed() bool               { return b.ops.Closed() }
func (b commonBackend) Snapshot(w io.Writer) error { return b.ops.Snapshot(w) }
func (b commonBackend) Close()                     { b.ops.Close() }
func (b commonBackend) Usage(fresh bool) (int, int) {
	if fresh {
		return b.ops.UsageFresh()
	}
	return b.ops.Usage()
}

// NewInsertOnlyBackend wraps a sharded insertion-only engine.
func NewInsertOnlyBackend(e *feww.Engine) Backend {
	return &insertBackend{commonBackend{e}, e}
}

// NewTurnstileBackend wraps a sharded insertion-deletion engine.
func NewTurnstileBackend(e *feww.TurnstileEngine) Backend {
	return &turnstileBackend{commonBackend{e}, e}
}

// NewStarBackend wraps a sharded star-detection engine.
func NewStarBackend(e *feww.StarEngine) Backend {
	return &starBackend{commonBackend{e}, e}
}

// NewWindowBackend wraps a sharded sliding-window engine.
func NewWindowBackend(e *feww.WindowEngine) Backend {
	return &windowBackend{commonBackend{e}, e}
}

type insertBackend struct {
	commonBackend
	e *feww.Engine
}

func (b *insertBackend) Kind() string { return "insert-only" }

func (b *insertBackend) Ingest(ups []feww.Update) error {
	// The op check lives here (the edge type the engine feeds on has no
	// sign); universe validation is the engine's own boundary check, so a
	// hostile id can never reach the shard router no matter who calls.
	edges, err := insertEdges(ups, "insertion-only engine")
	if err != nil {
		return err
	}
	err = b.e.ProcessEdges(*edges)
	putEdgeBuf(edges)
	return err
}

func (b *insertBackend) Best(fresh bool) BestAnswer {
	var (
		nb feww.Neighbourhood
		ok bool
	)
	if fresh {
		nb, ok = b.e.BestFresh()
	} else {
		nb, ok = b.e.Best()
	}
	return BestAnswer{Neighbourhood: nb, Found: ok, WitnessTarget: b.e.WitnessTarget(), Rung: -1}
}

func (b *insertBackend) Results(fresh bool) ResultsAnswer {
	if fresh {
		return ResultsAnswer{Neighbourhoods: b.e.ResultsFresh(), Rung: -1}
	}
	return ResultsAnswer{Neighbourhoods: b.e.Results(), Rung: -1}
}

func (b *insertBackend) Processed() int64         { return b.e.EdgesProcessed() }
func (b *insertBackend) Universe() (int64, int64) { return b.e.Config().N, 0 }

type turnstileBackend struct {
	commonBackend
	e *feww.TurnstileEngine
}

func (b *turnstileBackend) Kind() string { return "turnstile" }

// Ingest delegates validation entirely to the engine boundary: ops,
// items, and witnesses are all checked there before anything is fed.
func (b *turnstileBackend) Ingest(ups []feww.Update) error {
	return b.e.ProcessUpdates(ups)
}

// Best for the turnstile engine is its Result: the L0-sampler queries
// only certify neighbourhoods once they reach the witness target, so
// there is no meaningful "largest partial" to report.
func (b *turnstileBackend) Best(fresh bool) BestAnswer {
	nb, err := b.result(fresh)
	return BestAnswer{Neighbourhood: nb, Found: err == nil, WitnessTarget: b.e.WitnessTarget(), Rung: -1}
}

func (b *turnstileBackend) Results(fresh bool) ResultsAnswer {
	out := ResultsAnswer{Rung: -1}
	if nb, err := b.result(fresh); err == nil {
		out.Neighbourhoods = []feww.Neighbourhood{nb}
	}
	return out
}

func (b *turnstileBackend) result(fresh bool) (feww.Neighbourhood, error) {
	if fresh {
		return b.e.ResultFresh()
	}
	return b.e.Result()
}

func (b *turnstileBackend) Processed() int64         { return b.e.UpdatesProcessed() }
func (b *turnstileBackend) Universe() (int64, int64) { return b.e.Config().N, b.e.Config().M }

type starBackend struct {
	commonBackend
	e *feww.StarEngine
}

func (b *starBackend) Kind() string { return "star" }

// Ingest feeds directed half-edges: the stream carries the double cover
// (both orientations of every undirected edge), so a cluster gateway can
// range-route it by center like any other stream.  Deletions are
// rejected here, as for the insert-only engine.
func (b *starBackend) Ingest(ups []feww.Update) error {
	edges, err := insertEdges(ups, "star engine")
	if err != nil {
		return err
	}
	err = b.e.ProcessHalfEdges(*edges)
	putEdgeBuf(edges)
	return err
}

func (b *starBackend) Best(fresh bool) BestAnswer {
	var (
		sr feww.StarResult
		ok bool
	)
	if fresh {
		sr, ok = b.e.BestFresh()
	} else {
		sr, ok = b.e.Best()
	}
	if !ok {
		return BestAnswer{WitnessTarget: b.e.WitnessTarget(), Rung: -1}
	}
	return BestAnswer{
		Neighbourhood: sr.Neighbourhood,
		Found:         true,
		WitnessTarget: sr.Target,
		Rung:          sr.Rung,
		Guess:         sr.Guess,
	}
}

func (b *starBackend) Results(fresh bool) ResultsAnswer {
	var res feww.StarResults
	if fresh {
		res = b.e.ResultsFresh()
	} else {
		res = b.e.Results()
	}
	return ResultsAnswer{Neighbourhoods: res.Neighbourhoods, Rung: res.Rung, Guess: res.Guess}
}

func (b *starBackend) Processed() int64         { return b.e.EdgesProcessed() }
func (b *starBackend) Universe() (int64, int64) { return b.e.Config().N, b.e.Config().M }

// Rungs reports the ladder length for the health probe; cluster members
// must agree on it for their rung indices to merge.
func (b *starBackend) Rungs() int { return len(b.e.Guesses()) }

type windowBackend struct {
	commonBackend
	e *feww.WindowEngine
}

func (b *windowBackend) Kind() string { return "window" }

// Ingest feeds the window engine like the insert-only one: deletions are
// rejected here (a sliding window forgets by aging out, not by explicit
// removal), and the engine's own boundary check guards the universe.
func (b *windowBackend) Ingest(ups []feww.Update) error {
	edges, err := insertEdges(ups, "sliding-window engine")
	if err != nil {
		return err
	}
	err = b.e.ProcessEdges(*edges)
	putEdgeBuf(edges)
	return err
}

func (b *windowBackend) Best(fresh bool) BestAnswer {
	var (
		nb feww.Neighbourhood
		ok bool
	)
	if fresh {
		nb, ok = b.e.BestFresh()
	} else {
		nb, ok = b.e.Best()
	}
	return BestAnswer{Neighbourhood: nb, Found: ok, WitnessTarget: b.e.WitnessTarget(), Rung: -1}
}

func (b *windowBackend) Results(fresh bool) ResultsAnswer {
	if fresh {
		return ResultsAnswer{Neighbourhoods: b.e.ResultsFresh(), Rung: -1}
	}
	return ResultsAnswer{Neighbourhoods: b.e.Results(), Rung: -1}
}

func (b *windowBackend) Processed() int64         { return b.e.EdgesProcessed() }
func (b *windowBackend) Universe() (int64, int64) { return b.e.Config().N, 0 }

// Window, WindowBuckets and WindowSpan surface the window geometry and
// position for the health probe and /stats (the windowProbe interface);
// cluster members must agree on the geometry for member windows to
// compose into one coherent global window.
func (b *windowBackend) Window() int64              { return b.e.Window() }
func (b *windowBackend) WindowBuckets() int64       { return b.e.Buckets() }
func (b *windowBackend) WindowSpan() (int64, int64) { return b.e.WindowSpan() }

// edgeBufPool recycles the []Edge conversion buffers of the insert-only
// and star ingest paths (mirroring the *[]E batch recycling inside the
// engine fanout), so a sustained ingest stream stops allocating a batch-
// sized slice per request chunk.  The engines copy batches into their own
// per-shard buffers before ProcessEdges/ProcessHalfEdges returns, which
// is what makes returning the buffer immediately afterwards safe.
var edgeBufPool = sync.Pool{New: func() any { buf := make([]feww.Edge, 0, 4096); return &buf }}

func putEdgeBuf(buf *[]feww.Edge) {
	*buf = (*buf)[:0]
	edgeBufPool.Put(buf)
}

// insertEdges strips the op sign off an insertion-only batch, rejecting
// deletions with a pointer at the turnstile mode.  The returned buffer
// comes from edgeBufPool; the caller hands it back with putEdgeBuf once
// the engine has consumed it.
func insertEdges(ups []feww.Update, engine string) (*[]feww.Edge, error) {
	for i, u := range ups {
		if u.Op != feww.Insert {
			return nil, fmt.Errorf("update %d of %d: %v: %s cannot apply deletions (run the service in turnstile mode)", i, len(ups), u, engine)
		}
	}
	bufp := edgeBufPool.Get().(*[]feww.Edge)
	edges := (*bufp)[:0]
	for _, u := range ups {
		edges = append(edges, u.Edge)
	}
	*bufp = edges
	return bufp, nil
}

// RestoreBackend reads an engine snapshot — a checkpoint file, or the
// bytes of GET /snapshot — sniffs which engine kind it holds, and returns
// a running backend of that kind.  This is the paper's one-way protocol
// made operational: party i's memory state restored by party i+1.
func RestoreBackend(r io.Reader) (Backend, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(9)
	if err != nil {
		return nil, fmt.Errorf("%w: reading engine snapshot header: %v", feww.ErrBadSnapshot, err)
	}
	switch head[8] {
	case 1: // turnstile kind byte
		e, err := feww.RestoreTurnstileEngine(br)
		if err != nil {
			return nil, err
		}
		return NewTurnstileBackend(e), nil
	case 2: // star kind byte
		e, err := feww.RestoreStarEngine(br)
		if err != nil {
			return nil, err
		}
		return NewStarBackend(e), nil
	case 3: // window kind byte
		e, err := feww.RestoreWindowEngine(br)
		if err != nil {
			return nil, err
		}
		return NewWindowBackend(e), nil
	default:
		e, err := feww.RestoreEngine(br)
		if err != nil {
			return nil, err
		}
		return NewInsertOnlyBackend(e), nil
	}
}
