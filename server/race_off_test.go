//go:build !race

package server

// raceDetectorEnabled mirrors the -race build tag; see race_on_test.go.
const raceDetectorEnabled = false
