package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"feww"
	"feww/internal/workload"
)

// TestCheckpointKillRestoreEquivalence is the acceptance scenario: serve
// a planted Zipf workload over HTTP, checkpoint mid-stream, kill the
// server, restore a fresh one from the checkpoint file, finish the
// stream, and verify that GET /best returns a valid witnessed
// neighbourhood identical to an uninterrupted in-process run with the
// same seed — and that the final engine states are byte-identical.
func TestCheckpointKillRestoreEquivalence(t *testing.T) {
	const (
		n     = 600
		total = 6000
		d     = 60
	)
	inst := workload.ZipfItems(17, n, total, 1.3, d)
	if len(inst.HeavyA) == 0 {
		t.Fatal("workload planted no heavy items")
	}
	engCfg := feww.EngineConfig{
		Config: feww.Config{N: n, D: d, Alpha: 2, Seed: 77},
		Shards: 4, BatchSize: 128,
	}

	// Uninterrupted in-process reference run.
	ref, err := feww.NewEngine(engCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, u := range inst.Updates {
		if err := ref.ProcessEdge(u.A, u.B); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	refBest, refFound := ref.Best()
	if !refFound {
		t.Fatal("reference run found nothing")
	}

	// Phase 1: serve, ingest the first half in several requests,
	// checkpoint, kill.
	ckpt := filepath.Join(t.TempDir(), "feww.ckpt")
	eng1, err := feww.NewEngine(engCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(NewInsertOnlyBackend(eng1), Config{CheckpointPath: ckpt})
	ts1 := httptest.NewServer(srv1.Handler())
	cl := &Client{Base: ts1.URL, HTTPClient: ts1.Client()}

	cut := len(inst.Updates) / 2
	const reqSize = 1000
	for lo := 0; lo < cut; lo += reqSize {
		hi := min(lo+reqSize, cut)
		if _, err := cl.Ingest(n, int64(total), inst.Updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := cl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck.Bytes <= 0 {
		t.Fatalf("checkpoint wrote %d bytes", ck.Bytes)
	}
	ts1.Close()
	eng1.Close() // the kill: engine gone, only the checkpoint file survives

	// Phase 2: restore from the checkpoint file, finish the stream.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	backend2, err := RestoreBackend(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	defer backend2.Close()
	if backend2.Processed() != int64(cut) {
		t.Fatalf("restored backend reports %d elements, want %d", backend2.Processed(), cut)
	}
	srv2 := New(backend2, Config{CheckpointPath: ckpt})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	cl2 := &Client{Base: ts2.URL, HTTPClient: ts2.Client()}

	for lo := cut; lo < len(inst.Updates); lo += reqSize {
		hi := min(lo+reqSize, len(inst.Updates))
		if _, err := cl2.Ingest(n, int64(total), inst.Updates[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	// The served result equals the uninterrupted run exactly (fetched on
	// the barrier path: the comparison needs the complete stream applied).
	best, err := cl2.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !best.Found {
		t.Fatal("restored server found nothing after the full stream")
	}
	if best.Neighbourhood.Vertex != refBest.A {
		t.Fatalf("served best vertex %d, reference %d", best.Neighbourhood.Vertex, refBest.A)
	}
	if !reflect.DeepEqual(best.Neighbourhood.Witnesses, refBest.Witnesses) {
		t.Fatal("served witnesses differ from the reference run")
	}
	if err := inst.Verify(best.Neighbourhood.Vertex, best.Neighbourhood.Witnesses); err != nil {
		t.Fatal(err)
	}

	// And the full engine states are byte-identical.
	var refSnap, gotSnap bytes.Buffer
	if err := ref.Snapshot(&refSnap); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Snapshot(&gotSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refSnap.Bytes(), gotSnap.Bytes()) {
		t.Fatal("restored-and-finished engine state differs from the uninterrupted run")
	}
}
