package server

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"feww"
	"feww/internal/stream"
)

// TestClientReusesConnections pins the regression the tuned
// DefaultTransport exists to prevent: a zero-HTTPClient Client must ride
// a keep-alive pool, so sequential requests to the same host reuse one
// TCP connection instead of redialing per call (which is what riding a
// per-call or pool-less client would do, and what the gateway's member
// fan-out cannot afford).
func TestClientReusesConnections(t *testing.T) {
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: 64, D: 4, Alpha: 2, Seed: 1},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	be := NewInsertOnlyBackend(eng)
	defer be.Close()
	srv := New(be, Config{})

	var dials atomic.Int64
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			dials.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	cl := &Client{Base: ts.URL}
	// A mix of bodyless GETs and an ingest POST: every request shape the
	// gateway issues against a member must reuse the pooled connection.
	for i := 0; i < 5; i++ {
		if _, err := cl.Stats(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Health(); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Ingest(64, 0, []feww.Update{stream.Ins(int64(i), int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("15 sequential requests dialed %d connections, want 1 (keep-alive pool not in use)", got)
	}
}
