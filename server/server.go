// Package server implements fewwd's HTTP layer: network ingest of the
// FEWW binary stream format into a sharded engine, live JSON queries
// while ingest continues, operational stats, and checkpoint/restore.
//
// The service view of the paper (conf_pods_Konrad21) is direct.  The
// engine is the streaming algorithm; POST /ingest delivers the stream in
// arbitrary-size framed chunks; GET /best and GET /results are the FEwW
// query — a frequent item together with witnesses proving its frequency;
// and GET /snapshot is the one-way communication protocol of §4 made
// operational: the complete memory state of party i, restored byte-exactly
// by party i+1 (or by the same host after a restart).
//
// Endpoints:
//
//	POST /ingest      body: FEWW binary stream (internal/stream format)
//	GET  /best        largest witnessed neighbourhood so far, as JSON
//	GET  /results     every full-target neighbourhood, as JSON
//	GET  /stats       per-shard queue depths, counters, snapshot size
//	POST /checkpoint  write a snapshot to the configured checkpoint path
//	GET  /snapshot    stream the snapshot bytes to the caller
//	GET  /            endpoint index
//
// All handlers are safe to call concurrently; the engine serialises
// internally.  Ingest is chunk-atomic: a request that fails validation
// mid-stream reports how many updates were accepted before the fault (the
// error carries the byte offset, courtesy of stream.ErrBadFormat).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"feww"
	"feww/internal/stream"
)

// ingestChunk is how many decoded updates are validated and handed to the
// engine at a time while an /ingest body is scanned.
const ingestChunk = 8192

// Config parameterises the HTTP layer (the engine itself is configured at
// construction and carried by the Backend).
type Config struct {
	// CheckpointPath is where POST /checkpoint writes the engine
	// snapshot (atomically: temp file + rename).  Empty disables the
	// endpoint.
	CheckpointPath string
	// MaxBodyBytes caps an /ingest request body; 0 means 1 GiB.
	MaxBodyBytes int64
}

// Server serves a Backend over HTTP.
type Server struct {
	backend Backend
	cfg     Config
	mux     *http.ServeMux
	start   time.Time

	ckptMu    sync.Mutex // serialises checkpoint file writes
	ckptCount int64
	ckptBytes int64
}

// New builds a server around a backend.  Call Handler to mount it.
func New(b Backend, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	s := &Server{backend: b, cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /best", s.handleBest)
	s.mux.HandleFunc("GET /results", s.handleResults)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Backend returns the engine adapter the server was built around.
func (s *Server) Backend() Backend { return s.backend }

// Checkpoint writes the engine snapshot to the configured path (temp file
// + rename, so a crash mid-write never corrupts the previous checkpoint)
// and returns the byte count.  It is what POST /checkpoint and the
// shutdown path of fewwd call.
func (s *Server) Checkpoint() (int64, error) {
	if s.cfg.CheckpointPath == "" {
		return 0, errors.New("server: no checkpoint path configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	dir := filepath.Dir(s.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".feww-checkpoint-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.backend.Snapshot(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	// Persist the data before the rename makes it the checkpoint: rename
	// metadata can hit disk before unsynced file contents, which would
	// replace a good checkpoint with a truncated one on power loss.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	size, err := tmp.Seek(0, 2)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.cfg.CheckpointPath); err != nil {
		return 0, err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.ckptCount++
	s.ckptBytes = size
	return size, nil
}

// NeighbourhoodJSON is the wire form of a witnessed neighbourhood.
type NeighbourhoodJSON struct {
	Vertex    int64   `json:"vertex"`
	Size      int     `json:"size"`
	Witnesses []int64 `json:"witnesses"`
}

func toJSON(nb feww.Neighbourhood) NeighbourhoodJSON {
	return NeighbourhoodJSON{Vertex: nb.A, Size: nb.Size(), Witnesses: nb.Witnesses}
}

// IngestResponse reports an /ingest outcome.  On a 400 it still carries
// how many updates of the request were accepted before the fault.
type IngestResponse struct {
	Accepted int64  `json:"accepted"`
	Total    int64  `json:"total"`
	Error    string `json:"error,omitempty"`
}

// BestResponse is the /best payload.
type BestResponse struct {
	Found         bool               `json:"found"`
	WitnessTarget int64              `json:"witness_target"`
	Neighbourhood *NeighbourhoodJSON `json:"neighbourhood,omitempty"`
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Engine          string  `json:"engine"`
	Shards          int     `json:"shards"`
	Elements        int64   `json:"elements"`
	QueueDepths     []int   `json:"queue_depths"`
	SpaceWords      int     `json:"space_words"`
	SnapshotBytes   int     `json:"snapshot_bytes"`
	WitnessTarget   int64   `json:"witness_target"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	Checkpoints     int64   `json:"checkpoints"`
	CheckpointBytes int64   `json:"checkpoint_bytes"`
}

// CheckpointResponse is the /checkpoint payload.
type CheckpointResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	sc, err := stream.NewScanner(body)
	if err != nil {
		s.ingestError(w, 0, err)
		return
	}
	var accepted int64
	batch := make([]feww.Update, 0, ingestChunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := s.backend.Ingest(batch); err != nil {
			return err
		}
		accepted += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		batch = append(batch, sc.Update())
		if len(batch) == ingestChunk {
			if err := flush(); err != nil {
				s.ingestError(w, accepted, err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.ingestError(w, accepted, err)
		return
	}
	if err := flush(); err != nil {
		s.ingestError(w, accepted, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted, Total: s.backend.Processed()})
}

func (s *Server) ingestError(w http.ResponseWriter, accepted int64, err error) {
	writeJSON(w, http.StatusBadRequest, IngestResponse{
		Accepted: accepted,
		Total:    s.backend.Processed(),
		Error:    err.Error(),
	})
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	resp := BestResponse{WitnessTarget: s.backend.WitnessTarget()}
	if nb, ok := s.backend.Best(); ok {
		j := toJSON(nb)
		resp.Found, resp.Neighbourhood = true, &j
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	nbs := s.backend.Results()
	out := make([]NeighbourhoodJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = toJSON(nb)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.ckptMu.Lock()
	ckptCount, ckptBytes := s.ckptCount, s.ckptBytes
	s.ckptMu.Unlock()
	spaceWords, snapshotBytes := s.backend.Usage()
	writeJSON(w, http.StatusOK, StatsResponse{
		Engine:          s.backend.Kind(),
		Shards:          s.backend.Shards(),
		Elements:        s.backend.Processed(),
		QueueDepths:     s.backend.QueueDepths(),
		SpaceWords:      spaceWords,
		SnapshotBytes:   snapshotBytes,
		WitnessTarget:   s.backend.WitnessTarget(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Checkpoints:     ckptCount,
		CheckpointBytes: ckptBytes,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	size, err := s.Checkpoint()
	if err != nil {
		code := http.StatusInternalServerError
		if s.cfg.CheckpointPath == "" {
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Path: s.cfg.CheckpointPath, Bytes: size})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Serialise into memory first: the engine quiesces once, the
	// Content-Length is exact even with concurrent ingest, and a
	// serialisation failure can still become a clean 500 instead of an
	// aborted chunked stream.
	var buf bytes.Buffer
	if err := s.backend.Snapshot(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"service":          "fewwd",
		"engine":           s.backend.Kind(),
		"POST /ingest":     "FEWW binary stream body",
		"GET /best":        "largest witnessed neighbourhood",
		"GET /results":     "all full-target neighbourhoods",
		"GET /stats":       "counters and queue depths",
		"POST /checkpoint": "write snapshot to the checkpoint path",
		"GET /snapshot":    "stream the snapshot bytes",
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status is already on the wire; an encode error here can only
	// mean the client went away.
	_ = enc.Encode(v)
}
