// Package server implements fewwd's HTTP layer: network ingest of the
// FEWW binary stream format into a sharded engine, live JSON queries
// while ingest continues, operational stats, and checkpoint/restore.
//
// The service view of the paper (conf_pods_Konrad21) is direct.  The
// engine is the streaming algorithm; POST /ingest delivers the stream in
// arbitrary-size framed chunks; GET /best and GET /results are the FEwW
// query — a frequent item together with witnesses proving its frequency;
// and GET /snapshot is the one-way communication protocol of §4 made
// operational: the complete memory state of party i, restored byte-exactly
// by party i+1 (or by the same host after a restart).
//
// Endpoints:
//
//	POST /ingest      body: FEWW binary stream, or several complete
//	                  streams concatenated back to back (framed ingest;
//	                  internal/stream format)
//	GET  /best        largest witnessed neighbourhood so far, as JSON
//	GET  /results     every full-target neighbourhood, as JSON
//	GET  /stats       per-shard queue depths, counters, snapshot size
//	GET  /healthz     readiness probe: serving flag + universe parameters
//	POST /checkpoint  write a snapshot to the configured checkpoint path
//	GET  /snapshot    stream the snapshot bytes to the caller
//	POST /restore     replace the engine with one restored from the body
//	GET  /            endpoint index
//
// The query endpoints (/best, /results, /stats) are barrier-free by
// default: they read the shards' latest published result epochs, so any
// number of concurrent clients can poll them without stalling ingest or
// each other.  Appending ?fresh=1 opts a request into the strict barrier
// — the engine quiesces and the answer reflects every update accepted
// before the request.  Published answers lag the accepted stream by at
// most the in-flight batches and are never torn: every served
// neighbourhood was genuinely held by the engine at a batch boundary.
//
// All handlers are safe to call concurrently; the engine serialises
// ingest internally.  Ingest is chunk-atomic: a request that fails
// validation mid-stream reports how many updates were accepted before the
// fault (the error carries the byte offset, courtesy of
// stream.ErrBadFormat).  An ingest that races engine shutdown gets HTTP
// 503, not a dead connection.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"feww"
	"feww/internal/stream"
)

// ingestChunk is how many decoded updates are validated and handed to the
// engine at a time while an /ingest body is scanned.
const ingestChunk = 8192

// chunkBufPool recycles the per-request decode buffers of handleIngest,
// so steady-state ingest allocates nothing per request on the decode
// side.  Buffers are fixed at ingestChunk capacity.
var chunkBufPool = sync.Pool{New: func() any { buf := make([]feww.Update, 0, ingestChunk); return &buf }}

// Config parameterises the HTTP layer (the engine itself is configured at
// construction and carried by the Backend).
type Config struct {
	// CheckpointPath is where POST /checkpoint writes the engine
	// snapshot (atomically: temp file + rename).  Empty disables the
	// endpoint.
	CheckpointPath string
	// MaxBodyBytes caps an /ingest request body; 0 means 1 GiB.
	MaxBodyBytes int64
}

// Server serves a Backend over HTTP.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// beMu guards backend, which POST /restore replaces wholesale.  Every
	// handler reads the current backend once through be(); an RLock per
	// request is uncontended except during the swap itself.
	beMu    sync.RWMutex
	backend Backend

	// ckptMu serialises checkpoint file writes only.  The counters are
	// atomics so /stats never waits behind a slow disk checkpoint.
	ckptMu    sync.Mutex
	ckptCount atomic.Int64
	ckptBytes atomic.Int64
}

// New builds a server around a backend.  Call Handler to mount it.
func New(b Backend, cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	s := &Server{backend: b, cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /ingest", s.handleIngest)
	s.mux.HandleFunc("GET /best", s.handleBest)
	s.mux.HandleFunc("GET /results", s.handleResults)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /restore", s.handleRestore)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Backend returns the engine adapter the server currently serves — the
// one it was built around, or the latest POST /restore replacement.
// Shutdown hooks must go through this accessor rather than hold the
// construction-time value, or they would checkpoint a stale engine.
func (s *Server) Backend() Backend {
	s.beMu.RLock()
	defer s.beMu.RUnlock()
	return s.backend
}

// be is the internal alias the handlers use.
func (s *Server) be() Backend { return s.Backend() }

// swapBackend installs a restored backend and returns the previous one.
func (s *Server) swapBackend(b Backend) Backend {
	s.beMu.Lock()
	defer s.beMu.Unlock()
	old := s.backend
	s.backend = b
	return old
}

// Checkpoint writes the engine snapshot to the configured path (temp file
// + rename, so a crash mid-write never corrupts the previous checkpoint)
// and returns the byte count.  It is what POST /checkpoint and the
// shutdown path of fewwd call.
func (s *Server) Checkpoint() (int64, error) {
	if s.cfg.CheckpointPath == "" {
		return 0, errors.New("server: no checkpoint path configured")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	dir := filepath.Dir(s.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".feww-checkpoint-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.be().Snapshot(tmp); err != nil {
		tmp.Close()
		return 0, err
	}
	// Persist the data before the rename makes it the checkpoint: rename
	// metadata can hit disk before unsynced file contents, which would
	// replace a good checkpoint with a truncated one on power loss.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	size, err := tmp.Seek(0, 2)
	if err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.cfg.CheckpointPath); err != nil {
		return 0, err
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.ckptCount.Add(1)
	s.ckptBytes.Store(size)
	return size, nil
}

// NeighbourhoodJSON is the wire form of a witnessed neighbourhood.  Rung
// is set by star backends only: the ladder index of the guess that
// certified this neighbourhood, which a cluster gateway needs to merge
// member answers (max over rungs); flat backends omit it.
type NeighbourhoodJSON struct {
	Vertex    int64   `json:"vertex"`
	Size      int     `json:"size"`
	Witnesses []int64 `json:"witnesses"`
	Rung      *int    `json:"rung,omitempty"`
}

func toJSON(nb feww.Neighbourhood) NeighbourhoodJSON {
	return NeighbourhoodJSON{Vertex: nb.A, Size: nb.Size(), Witnesses: nb.Witnesses}
}

// rungJSON annotates a neighbourhood with its star ladder rung; rung < 0
// (a flat engine's answer) leaves the field absent.
func rungJSON(nb feww.Neighbourhood, rung int) NeighbourhoodJSON {
	j := toJSON(nb)
	if rung >= 0 {
		r := rung
		j.Rung = &r
	}
	return j
}

// IngestResponse reports an /ingest outcome.  On a 400 it still carries
// how many updates of the request were accepted before the fault.
type IngestResponse struct {
	Accepted int64  `json:"accepted"`
	Total    int64  `json:"total"`
	Error    string `json:"error,omitempty"`
}

// BestResponse is the /best payload.  For star backends WitnessTarget is
// the winning rung's target (the size the answer certifies), and Guess
// the rung's degree guess Delta'; the rung index itself rides on the
// neighbourhood.  Flat backends report their static ceil(D/Alpha) target
// and omit Guess.
type BestResponse struct {
	Found         bool               `json:"found"`
	WitnessTarget int64              `json:"witness_target"`
	Guess         int64              `json:"guess,omitempty"`
	Neighbourhood *NeighbourhoodJSON `json:"neighbourhood,omitempty"`
}

// StatsResponse is the /stats payload.  Consistency reports which path
// served the numbers: "published" (barrier-free epoch reads, the default)
// or "fresh" (?fresh=1, exact at a barrier).  QueueDepths counts the
// elements buffered per shard — queued batches plus the producer-side
// fill buffer — so a lightly loaded server reports the edges actually
// parked instead of zero.  ViewEpochs is each shard's published epoch
// counter; an epoch that stops advancing under load means that shard is
// saturated and publication is coalescing.
type StatsResponse struct {
	Engine          string   `json:"engine"`
	Consistency     string   `json:"consistency"`
	Shards          int      `json:"shards"`
	Elements        int64    `json:"elements"`
	QueueDepths     []int    `json:"queue_depths"`
	ViewEpochs      []uint64 `json:"view_epochs"`
	SpaceWords      int      `json:"space_words"`
	SnapshotBytes   int      `json:"snapshot_bytes"`
	WitnessTarget   int64    `json:"witness_target"`
	UptimeSeconds   float64  `json:"uptime_seconds"`
	Checkpoints     int64    `json:"checkpoints"`
	CheckpointBytes int64    `json:"checkpoint_bytes"`
	// Window geometry and position, window backends only: the configured
	// window and bucket count, and the currently served span of stream
	// positions [window_start, window_end) — answers cover exactly the
	// updates the engine accepted inside that span.
	Window        int64 `json:"window,omitempty"`
	WindowBuckets int64 `json:"window_buckets,omitempty"`
	WindowStart   int64 `json:"window_start,omitempty"`
	WindowEnd     int64 `json:"window_end,omitempty"`
}

// windowProbe is the optional surface a sliding-window backend exposes on
// top of Backend: the configured geometry and the live span.  /stats and
// /healthz report it when present, exactly as the star backend's Rungs.
type windowProbe interface {
	Window() int64
	WindowBuckets() int64
	WindowSpan() (start, end int64)
}

// CheckpointResponse is the /checkpoint payload.
type CheckpointResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// The backend is pinned once per request: a concurrent /restore swap
	// must not split one request's chunks across two engines.
	be := s.be()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// The frame scanner accepts one stream *or* several complete streams
	// concatenated back to back (all declaring the same universe) — the
	// chunked wire format a cluster gateway emits while splitting an
	// inbound request on the fly.  A single-frame body behaves exactly as
	// before; every frame is validated as strictly as a standalone file.
	sc, err := stream.NewFrameScanner(body)
	if err != nil {
		s.ingestError(w, be, 0, err)
		return
	}
	var accepted int64
	bufp := chunkBufPool.Get().(*[]feww.Update)
	defer func() {
		*bufp = (*bufp)[:0]
		chunkBufPool.Put(bufp)
	}()
	batch := (*bufp)[:0]
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := be.Ingest(batch); err != nil {
			return err
		}
		accepted += int64(len(batch))
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		batch = append(batch, sc.Update())
		if len(batch) == ingestChunk {
			if err := flush(); err != nil {
				s.ingestError(w, be, accepted, err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		s.ingestError(w, be, accepted, err)
		return
	}
	if err := flush(); err != nil {
		s.ingestError(w, be, accepted, err)
		return
	}
	// Hand the sub-batch remainder to the shard queues so the published
	// epochs converge to everything this request accepted, instead of
	// parking up to one batch per shard until more traffic arrives.
	be.Flush()
	writeJSON(w, http.StatusOK, IngestResponse{Accepted: accepted, Total: be.Processed()})
}

func (s *Server) ingestError(w http.ResponseWriter, be Backend, accepted int64, err error) {
	// Chunks accepted before the fault were fed for real; flush them to
	// the shard queues so the published epochs converge to the reported
	// accepted count even if no further traffic arrives.
	be.Flush()
	// A shutdown race is the server's fault, not the client's: the stream
	// was well-formed, the engine just stopped accepting.  503 invites a
	// retry against the restarted instance; anything else is a 400.
	code := http.StatusBadRequest
	if errors.Is(err, feww.ErrClosed) {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, IngestResponse{
		Accepted: accepted,
		Total:    be.Processed(),
		Error:    err.Error(),
	})
}

// wantFresh reports whether the request opted into the strict barrier
// consistency with ?fresh=1 (any value strconv.ParseBool accepts).
func wantFresh(r *http.Request) bool {
	fresh, err := strconv.ParseBool(r.URL.Query().Get("fresh"))
	return err == nil && fresh
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	ans := s.be().Best(wantFresh(r))
	resp := BestResponse{WitnessTarget: ans.WitnessTarget, Guess: ans.Guess}
	if ans.Found {
		j := rungJSON(ans.Neighbourhood, ans.Rung)
		resp.Found, resp.Neighbourhood = true, &j
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	ans := s.be().Results(wantFresh(r))
	out := make([]NeighbourhoodJSON, len(ans.Neighbourhoods))
	for i, nb := range ans.Neighbourhoods {
		out[i] = rungJSON(nb, ans.Rung)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	be := s.be()
	fresh := wantFresh(r)
	consistency := "published"
	if fresh {
		consistency = "fresh"
	}
	spaceWords, snapshotBytes := be.Usage(fresh)
	resp := StatsResponse{
		Engine:          be.Kind(),
		Consistency:     consistency,
		Shards:          be.Shards(),
		Elements:        be.Processed(),
		QueueDepths:     be.QueueDepths(),
		ViewEpochs:      be.ViewEpochs(),
		SpaceWords:      spaceWords,
		SnapshotBytes:   snapshotBytes,
		WitnessTarget:   be.WitnessTarget(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Checkpoints:     s.ckptCount.Load(),
		CheckpointBytes: s.ckptBytes.Load(),
	}
	if wb, ok := be.(windowProbe); ok {
		resp.Window, resp.WindowBuckets = wb.Window(), wb.WindowBuckets()
		resp.WindowStart, resp.WindowEnd = wb.WindowSpan()
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /healthz payload: the readiness probe plus the
// engine parameters a cluster gateway needs to verify that this node
// matches the universe range it is supposed to serve.  Serving is false
// once the engine has been closed (shutdown in progress — queries still
// answer, ingest returns 503).
type HealthResponse struct {
	Service       string `json:"service"`
	Engine        string `json:"engine"`
	Serving       bool   `json:"serving"`
	N             int64  `json:"n"`
	M             int64  `json:"m,omitempty"`
	WitnessTarget int64  `json:"witness_target"`
	Shards        int    `json:"shards"`
	Elements      int64  `json:"elements"`
	// Rungs is the star backend's guess-ladder length (absent for the
	// flat engines).  Cluster members must agree on it, or their rung
	// indices would not be comparable in the gateway merge.
	Rungs int `json:"rungs,omitempty"`
	// Window and WindowBuckets are the sliding-window backend's geometry
	// (absent for the other kinds).  Cluster members must agree on both,
	// or their member-local windows would not compose into one coherent
	// global window.
	Window        int64 `json:"window,omitempty"`
	WindowBuckets int64 `json:"window_buckets,omitempty"`
}

func (s *Server) healthResponse() HealthResponse {
	be := s.be()
	n, m := be.Universe()
	h := HealthResponse{
		Service:       "fewwd",
		Engine:        be.Kind(),
		Serving:       !be.Closed(),
		N:             n,
		M:             m,
		WitnessTarget: be.WitnessTarget(),
		Shards:        be.Shards(),
		Elements:      be.Processed(),
	}
	if sb, ok := be.(interface{ Rungs() int }); ok {
		h.Rungs = sb.Rungs()
	}
	if wb, ok := be.(windowProbe); ok {
		h.Window, h.WindowBuckets = wb.Window(), wb.WindowBuckets()
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.healthResponse()
	code := http.StatusOK
	if !h.Serving {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleRestore replaces the serving engine with one restored from the
// snapshot bytes in the request body — the recipient half of a cluster
// rebalance: the donor's GET /snapshot (its complete memory state, the
// paper's one-way message) posted here brings this node to exactly the
// donor's state.  The swap is atomic with respect to other handlers;
// requests already running against the old engine finish against it (an
// in-flight ingest may then report 503 once the old engine closes, which
// invites the standard retry).  The engine kind, universe, seed and
// shard layout all come from the snapshot, exactly as fewwd -restore.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	backend, err := RestoreBackend(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		code := http.StatusBadRequest
		if errors.As(err, &tooLarge) {
			// The snapshot exceeds this node's -maxbody: the sender's
			// state is fine, this node's cap is too small.
			code = http.StatusRequestEntityTooLarge
		} else if !errors.Is(err, feww.ErrBadSnapshot) && !errors.Is(err, stream.ErrBadFormat) {
			code = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), code)
		return
	}
	old := s.swapBackend(backend)
	// Stop the replaced engine's shard goroutines; it stays queryable for
	// any handler that pinned it before the swap.
	old.Close()
	writeJSON(w, http.StatusOK, s.healthResponse())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	size, err := s.Checkpoint()
	if err != nil {
		code := http.StatusInternalServerError
		if s.cfg.CheckpointPath == "" {
			code = http.StatusBadRequest
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{Path: s.cfg.CheckpointPath, Bytes: size})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Serialise into memory first: the engine quiesces once, the
	// Content-Length is exact even with concurrent ingest, and a
	// serialisation failure can still become a clean 500 instead of an
	// aborted chunked stream.
	var buf bytes.Buffer
	if err := s.be().Snapshot(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"service":          "fewwd",
		"engine":           s.be().Kind(),
		"POST /ingest":     "FEWW binary stream body",
		"GET /best":        "largest witnessed neighbourhood (?fresh=1 for barrier consistency)",
		"GET /results":     "all full-target neighbourhoods (?fresh=1 for barrier consistency)",
		"GET /stats":       "counters, queue depths, view epochs (?fresh=1 for barrier consistency)",
		"GET /healthz":     "readiness probe with engine kind and universe parameters",
		"POST /checkpoint": "write snapshot to the checkpoint path",
		"GET /snapshot":    "stream the snapshot bytes",
		"POST /restore":    "replace the engine with one restored from the snapshot bytes in the body",
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status is already on the wire; an encode error here can only
	// mean the client went away.
	_ = enc.Encode(v)
}
