package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"feww"
	"feww/internal/stream"
	"feww/internal/workload"
)

func newInsertServer(t *testing.T, cfg feww.EngineConfig, checkpoint string) (*Server, *httptest.Server, *Client) {
	t.Helper()
	eng, err := feww.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(NewInsertOnlyBackend(eng), Config{CheckpointPath: checkpoint})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return srv, ts, &Client{Base: ts.URL, HTTPClient: ts.Client()}
}

func testEngineCfg() feww.EngineConfig {
	return feww.EngineConfig{
		Config: feww.Config{N: 500, D: 50, Alpha: 2, Seed: 4},
		Shards: 4, BatchSize: 64,
	}
}

func TestIngestAndQuery(t *testing.T) {
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 500, M: 5000, Heavy: 2, HeavyDeg: 50,
		NoiseEdges: 2000, Order: workload.Shuffled, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cl := newInsertServer(t, testEngineCfg(), "")

	resp, err := cl.Ingest(500, 5000, inst.Updates)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != int64(len(inst.Updates)) || resp.Total != int64(len(inst.Updates)) {
		t.Fatalf("ingest response %+v, want %d accepted", resp, len(inst.Updates))
	}

	// The assertions below demand every accepted update reflected, so they
	// use the ?fresh=1 barrier consistency; the published path is checked
	// for agreement right after.
	best, err := cl.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !best.Found {
		t.Fatal("no neighbourhood found after full ingest")
	}
	if err := inst.Verify(best.Neighbourhood.Vertex, best.Neighbourhood.Witnesses); err != nil {
		t.Fatal(err)
	}
	// The fresh read above took a barrier, so the published epochs now
	// cover the full stream and the default path must agree.
	published, err := cl.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !published.Found || published.Neighbourhood.Vertex != best.Neighbourhood.Vertex {
		t.Fatalf("published /best %+v disagrees with fresh %+v after quiesce", published, best)
	}

	results, err := cl.ResultsFresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results after full ingest")
	}
	for _, nb := range results {
		if int64(nb.Size) < best.WitnessTarget {
			t.Fatalf("result %+v below witness target %d", nb, best.WitnessTarget)
		}
		if err := inst.Verify(nb.Vertex, nb.Witnesses); err != nil {
			t.Fatal(err)
		}
	}

	stats, err := cl.StatsFresh()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine != "insert-only" || stats.Shards != 4 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.Consistency != "fresh" {
		t.Fatalf("stats.Consistency = %q, want fresh", stats.Consistency)
	}
	if stats.Elements != int64(len(inst.Updates)) {
		t.Fatalf("stats.Elements = %d, want %d", stats.Elements, len(inst.Updates))
	}
	if len(stats.QueueDepths) != 4 || len(stats.ViewEpochs) != 4 {
		t.Fatalf("stats.QueueDepths = %v, ViewEpochs = %v, want 4 entries each", stats.QueueDepths, stats.ViewEpochs)
	}
	if stats.SnapshotBytes <= 0 || stats.SpaceWords <= 0 {
		t.Fatalf("stats sizes not populated: %+v", stats)
	}
	pubStats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if pubStats.Consistency != "published" {
		t.Fatalf("stats.Consistency = %q, want published", pubStats.Consistency)
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	_, ts, cl := newInsertServer(t, testEngineCfg(), "")

	t.Run("garbage body", func(t *testing.T) {
		if _, err := cl.IngestStream(strings.NewReader("this is not FEWW")); err == nil {
			t.Fatal("garbage body accepted")
		}
	})
	t.Run("truncated body reports offset", func(t *testing.T) {
		var body bytes.Buffer
		if err := stream.WriteFile(&body, 500, 500, []feww.Update{stream.Ins(1, 2), stream.Ins(3, 4)}); err != nil {
			t.Fatal(err)
		}
		_, err := cl.IngestStream(bytes.NewReader(body.Bytes()[:body.Len()-1]))
		if err == nil {
			t.Fatal("truncated body accepted")
		}
		if !strings.Contains(err.Error(), "at byte") {
			t.Fatalf("rejection lacks byte offset: %v", err)
		}
	})
	t.Run("deletes rejected on insert-only", func(t *testing.T) {
		_, err := cl.Ingest(500, 500, []feww.Update{stream.Ins(1, 2), stream.Del(1, 2)})
		if err == nil {
			t.Fatal("deletion accepted by insertion-only engine")
		}
		if !strings.Contains(err.Error(), "turnstile") {
			t.Fatalf("rejection does not point at turnstile mode: %v", err)
		}
	})
	t.Run("out of universe", func(t *testing.T) {
		if _, err := cl.Ingest(1000, 1000, []feww.Update{stream.Ins(750, 2)}); err == nil {
			t.Fatal("item beyond engine N accepted")
		}
	})
	t.Run("rejected batch leaves engine untouched", func(t *testing.T) {
		before, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		cl.Ingest(500, 500, []feww.Update{stream.Ins(5, 5), stream.Del(5, 5)})
		after, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if after.Elements != before.Elements {
			t.Fatalf("rejected batch changed element count: %d -> %d", before.Elements, after.Elements)
		}
	})
	t.Run("get on ingest is 405", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/ingest")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /ingest: HTTP %d, want 405", resp.StatusCode)
		}
	})
}

func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feww.ckpt")
	_, _, cl := newInsertServer(t, testEngineCfg(), path)

	if _, err := cl.Ingest(500, 500, []feww.Update{stream.Ins(1, 2), stream.Ins(1, 3)}); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Path != path || resp.Bytes <= 0 {
		t.Fatalf("checkpoint response %+v", resp)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != resp.Bytes {
		t.Fatalf("checkpoint file is %d bytes, response says %d", fi.Size(), resp.Bytes)
	}

	// The file must restore to an engine with the same element count.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := RestoreBackend(f)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Kind() != "insert-only" || b.Processed() != 2 {
		t.Fatalf("restored backend kind=%s processed=%d", b.Kind(), b.Processed())
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoints != 1 || stats.CheckpointBytes != resp.Bytes {
		t.Fatalf("stats after checkpoint: %+v", stats)
	}
}

func TestCheckpointWithoutPathIs400(t *testing.T) {
	_, _, cl := newInsertServer(t, testEngineCfg(), "")
	if _, err := cl.Checkpoint(); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("got %v, want HTTP 400", err)
	}
}

// TestSnapshotEndpointRoundTrip: the /snapshot bytes restore into a
// backend whose own snapshot is byte-identical — party i to party i+1
// over HTTP.
func TestSnapshotEndpointRoundTrip(t *testing.T) {
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 500, M: 5000, Heavy: 1, HeavyDeg: 50,
		NoiseEdges: 1000, Order: workload.Shuffled, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, cl := newInsertServer(t, testEngineCfg(), "")
	if _, err := cl.Ingest(500, 5000, inst.Updates); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	n, err := cl.Snapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(snap.Len()) {
		t.Fatalf("Snapshot copied %d bytes, buffer has %d", n, snap.Len())
	}
	restored, err := RestoreBackend(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	var again bytes.Buffer
	if err := restored.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap.Bytes(), again.Bytes()) {
		t.Fatal("restored backend's snapshot differs from the transferred one")
	}
}

// TestIngestNegativeIDIs400: the FEWW wire format can carry a negative
// item id (uvarint round-trips the two's-complement bits), which used to
// reach the shard router and panic the handler via a negative modulo.
// The engine boundary must turn it into a clean 400 — with the accepted
// count — and the server must keep serving afterwards.
func TestIngestNegativeIDIs400(t *testing.T) {
	_, ts, cl := newInsertServer(t, testEngineCfg(), "")

	var body bytes.Buffer
	if err := stream.WriteFile(&body, 500, 500, []feww.Update{
		stream.Ins(1, 2),
		stream.Ins(-7, 3), // hostile: negative item id on the wire
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/octet-stream", &body)
	if err != nil {
		t.Fatalf("request died instead of returning a status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative-id stream: HTTP %d, want 400", resp.StatusCode)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Error == "" {
		t.Fatal("400 response carries no error message")
	}
	// Chunk atomicity: the bad update shares a chunk with the good one, so
	// the whole chunk is rejected and nothing was accepted.
	if ir.Accepted != 0 {
		t.Fatalf("accepted = %d, want 0 (rejected chunk must not feed)", ir.Accepted)
	}
	// The shard workers survived: a valid ingest and a query still work.
	if _, err := cl.Ingest(500, 500, []feww.Update{stream.Ins(1, 2), stream.Ins(1, 3)}); err != nil {
		t.Fatalf("server unusable after rejected stream: %v", err)
	}
	if _, err := cl.StatsFresh(); err != nil {
		t.Fatalf("stats unusable after rejected stream: %v", err)
	}
}

// TestIngestDuringShutdownIs503: an /ingest racing Backend.Close gets a
// 503 (retry against the restarted instance), not a panic-killed
// connection.
func TestIngestDuringShutdownIs503(t *testing.T) {
	eng, err := feww.NewEngine(testEngineCfg())
	if err != nil {
		t.Fatal(err)
	}
	backend := NewInsertOnlyBackend(eng)
	srv := New(backend, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{Base: ts.URL, HTTPClient: ts.Client()}

	backend.Close() // shutdown wins the race

	var body bytes.Buffer
	if err := stream.WriteFile(&body, 500, 500, []feww.Update{stream.Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/ingest", "application/octet-stream", &body)
	if err != nil {
		t.Fatalf("request died instead of returning a status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: HTTP %d, want 503", resp.StatusCode)
	}
	// Queries stay up on the final published epochs.
	if _, err := cl.Best(); err != nil {
		t.Fatalf("query after Close: %v", err)
	}
}

// TestStatsNotBlockedByCheckpoint: /stats must answer while a (slow)
// checkpoint holds the checkpoint mutex — the counters are atomics and
// the default usage path reads published epochs, so nothing on the stats
// path may wait behind the disk.
func TestStatsNotBlockedByCheckpoint(t *testing.T) {
	srv, ts, cl := newInsertServer(t, testEngineCfg(), "")
	_ = ts

	srv.ckptMu.Lock() // simulate a checkpoint stuck on a slow disk
	defer srv.ckptMu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, err := cl.Stats()
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/stats blocked behind the checkpoint lock")
	}
}

// TestTurnstileServer drives the turnstile backend end to end: churn
// stream over HTTP, deletions included, then a query.
func TestTurnstileServer(t *testing.T) {
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: 64, M: 128, Heavy: 2, HeavyDeg: 8,
			NoiseEdges: 80, MaxNoise: 2, Order: workload.Shuffled, Seed: 3,
		},
		ChurnEdges: 200,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
		TurnstileConfig: feww.TurnstileConfig{N: 64, M: 128, D: 8, Alpha: 2, Seed: 13, ScaleFactor: 0.02},
		Shards:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(NewTurnstileBackend(eng), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer eng.Close()
	cl := &Client{Base: ts.URL, HTTPClient: ts.Client()}

	if _, err := cl.Ingest(64, 128, inst.Updates); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine != "turnstile" || stats.Elements != int64(len(inst.Updates)) {
		t.Fatalf("stats %+v", stats)
	}
	best, err := cl.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	if best.Found {
		if err := inst.Verify(best.Neighbourhood.Vertex, best.Neighbourhood.Witnesses); err != nil {
			t.Fatal(err)
		}
	}
}
