package server

import (
	"bytes"
	"testing"

	"feww"
	"feww/internal/stream"
)

// TestRestoreBackendAllKinds pins the checkpoint/restore contract for
// every engine kind behind one dispatch point: a Backend snapshot fed to
// RestoreBackend yields a backend of the same kind that continues the
// stream byte-identically — same final snapshot bytes, same query
// surface — which is what a fewwd restart and a cluster rebalance both
// rely on.
func TestRestoreBackendAllKinds(t *testing.T) {
	ins := func(a, b int64) feww.Update { return stream.Ins(a, b) }
	del := func(a, b int64) feww.Update { return stream.Del(a, b) }

	// Each case feeds a prefix, snapshots, and then feeds a suffix to
	// both the original and the restored backend.
	cases := []struct {
		kind      string
		build     func(t *testing.T) Backend
		pre, post []feww.Update
	}{
		{
			kind: "insert-only",
			build: func(t *testing.T) Backend {
				eng, err := feww.NewEngine(feww.EngineConfig{
					Config: feww.Config{N: 100, D: 10, Alpha: 2, Seed: 5},
					Shards: 3, BatchSize: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
				return NewInsertOnlyBackend(eng)
			},
			pre:  []feww.Update{ins(3, 1), ins(3, 2), ins(7, 9), ins(3, 3)},
			post: []feww.Update{ins(3, 4), ins(3, 5), ins(3, 6), ins(3, 7), ins(3, 8), ins(3, 9), ins(3, 10)},
		},
		{
			kind: "turnstile",
			build: func(t *testing.T) Backend {
				eng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
					TurnstileConfig: feww.TurnstileConfig{N: 32, M: 128, D: 4, Alpha: 1, Seed: 6, ScaleFactor: 0.3},
					Shards:          2, BatchSize: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				return NewTurnstileBackend(eng)
			},
			pre:  []feww.Update{ins(5, 10), ins(5, 11), ins(8, 3), del(8, 3)},
			post: []feww.Update{ins(5, 12), ins(5, 13), del(5, 10), ins(5, 14)},
		},
		{
			kind: "star",
			build: func(t *testing.T) Backend {
				eng, err := feww.NewStarEngine(feww.StarEngineConfig{
					N: 48, Alpha: 1, Eps: 0.5, Seed: 7, Shards: 3, BatchSize: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				return NewStarBackend(eng)
			},
			// Directed half-edges: a star at 11, both orientations.
			pre: []feww.Update{
				ins(11, 20), ins(20, 11), ins(11, 21), ins(21, 11),
				ins(11, 22), ins(22, 11),
			},
			post: []feww.Update{
				ins(11, 23), ins(23, 11), ins(11, 24), ins(24, 11),
				ins(11, 25), ins(25, 11), ins(11, 26), ins(26, 11),
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			be := tc.build(t)
			defer be.Close()
			if err := be.Ingest(tc.pre); err != nil {
				t.Fatal(err)
			}

			var snap bytes.Buffer
			if err := be.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreBackend(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			defer restored.Close()
			if restored.Kind() != tc.kind {
				t.Fatalf("RestoreBackend dispatched to kind %q, want %q", restored.Kind(), tc.kind)
			}
			if restored.Processed() != be.Processed() {
				t.Fatalf("restored processed %d, want %d", restored.Processed(), be.Processed())
			}
			n1, m1 := be.Universe()
			n2, m2 := restored.Universe()
			if n1 != n2 || m1 != m2 {
				t.Fatalf("restored universe (%d, %d), want (%d, %d)", n2, m2, n1, m1)
			}

			for _, b := range []Backend{be, restored} {
				if err := b.Ingest(tc.post); err != nil {
					t.Fatal(err)
				}
			}
			var sa, sb bytes.Buffer
			if err := be.Snapshot(&sa); err != nil {
				t.Fatal(err)
			}
			if err := restored.Snapshot(&sb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
				t.Fatal("continuation snapshots are not byte-identical")
			}

			// The query surfaces agree too (fresh: both must reflect the
			// whole stream).
			ba, bb := be.Best(true), restored.Best(true)
			if ba.Found != bb.Found || ba.Rung != bb.Rung || ba.WitnessTarget != bb.WitnessTarget ||
				ba.Neighbourhood.A != bb.Neighbourhood.A || ba.Neighbourhood.Size() != bb.Neighbourhood.Size() {
				t.Fatalf("best answers diverged: %+v vs %+v", ba, bb)
			}
		})
	}
}
