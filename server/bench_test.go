package server

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"testing"

	"feww"
	"feww/internal/stream"
)

// benchEngineBackend builds an insert-only backend sized for the ingest
// benchmarks, plus a reusable batch of updates.
func benchEngineBackend(tb testing.TB, batch int) (Backend, []feww.Update) {
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: 1 << 16, D: 1000, Alpha: 2, Seed: 1},
		Shards: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { eng.Close() })
	ups := make([]feww.Update, batch)
	for i := range ups {
		ups[i] = stream.Ins(int64(i%(1<<16)), int64(i))
	}
	return NewInsertOnlyBackend(eng), ups
}

// BenchmarkServerIngest measures the backend ingest chain the /ingest
// handler drives per decoded chunk: Update validation, the
// []Update→[]Edge conversion (pooled — this benchmark is the before/after
// evidence for that), and the engine's ProcessEdges batch hand-off.
// Before the allocation purge this path measured 181 KB and 410 µs per
// 4096-update batch (one batch-sized []Edge per call at 65536 B, plus
// per-offer candidate structs and an idle-wait timer per worker nap);
// after pooling the conversion buffer, recycling reservoir offers and
// evicted witness buffers, and reusing the throttle timer it measures
// 147 KB and 381 µs.  The allocation *count* (~45/op) barely moves here
// because this Zipf stream keeps pushing fresh vertices over their
// sampling thresholds, so reservoir ramp-up — admissions growing their
// witness collections — never ends; TestServerIngestSteadyStateAllocs
// below separates that ramp from the steady state and pins the
// no-per-edge-allocations claim exactly.
func BenchmarkServerIngest(b *testing.B) {
	const batch = 4096
	be, ups := benchEngineBackend(b, batch)
	b.SetBytes(batch * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.Ingest(ups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerIngestHTTP measures the whole /ingest request path —
// body scan, chunked decode (pooled buffer), validation, conversion,
// engine hand-off — on a pre-encoded FEWW body, the shape a member
// receives from the gateway.
func BenchmarkServerIngestHTTP(b *testing.B) {
	const batch = 8192
	be, ups := benchEngineBackend(b, batch)
	srv := New(be, Config{})
	h := srv.Handler()
	var body bytes.Buffer
	if err := stream.WriteFile(&body, 1<<16, 0, ups); err != nil {
		b.Fatal(err)
	}
	raw := body.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/ingest", bytes.NewReader(raw))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// TestServerIngestSteadyStateAllocs is the allocation-regression gate for
// the server-side ingest hot path: once the conversion and decode pools
// are warm and the algorithm state has settled, feeding a batch through
// Backend.Ingest must not allocate per edge.  Steady state needs the
// stream's vertices past every run's sampling threshold with their
// witness collections full — a vertex at degree 2d is beyond d1 (no more
// reservoir offers) and beyond d1+d2 (no more witness appends) for every
// run — so the batch cycles a small vertex set and the warm-up drives
// each vertex's degree past 2d before measuring.  The budget of 8
// allocations per 4096-update batch (~0.002 per edge) absorbs incidental
// publication-path allocations (shard workers republish views when idle)
// while failing loudly if a per-batch or per-edge allocation sneaks back
// in.  Skipped under -race: the race runtime allocates for its own
// synchronisation bookkeeping (locks, conds, atomics on the producer
// path), which AllocsPerRun counts but is not a hot-path regression —
// the dedicated non-race CI step is the enforcing run.
func TestServerIngestSteadyStateAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race runtime allocations are counted by AllocsPerRun; the non-race run enforces this gate")
	}
	const (
		batch    = 4096
		vertices = 64
		d        = 1000
	)
	be, ups := benchEngineBackend(t, batch)
	for i := range ups {
		ups[i] = stream.Ins(int64(i%vertices), int64(i))
	}
	// Each batch adds batch/vertices to every vertex's degree; stop once
	// all are past 2d, with one extra batch of slack.
	for degree := 0; degree <= 2*d; degree += batch / vertices {
		if err := be.Ingest(ups); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := be.Ingest(ups); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Fatalf("steady-state Backend.Ingest allocates %.1f times per %d-update batch, want <= 8 (no per-edge allocations)", allocs, batch)
	}
}
