package server

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"feww"
)

func newHealthServer(t *testing.T, n, d int64) (*Server, *feww.Engine) {
	t.Helper()
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: d, Alpha: 1, Seed: 3},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(NewInsertOnlyBackend(eng), Config{}), eng
}

// TestHealthz covers the readiness probe: 200 with the engine parameters
// while serving, 503 with Serving false once the engine is closed.
func TestHealthz(t *testing.T) {
	srv, eng := newHealthServer(t, 50, 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &Client{Base: ts.URL}

	h, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	want := HealthResponse{
		Service: "fewwd", Engine: "insert-only", Serving: true,
		N: 50, M: 0, WitnessTarget: 4, Shards: 2, Elements: 0,
	}
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("healthz = %+v, want %+v", h, want)
	}

	eng.Close()
	h, err = cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Serving {
		t.Fatal("healthz still reports serving after Close")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestRestoreEndpoint ships one node's snapshot into another via POST
// /restore and checks the recipient serves the donor's state exactly —
// including its universe parameters, which a cluster gateway verifies.
func TestRestoreEndpoint(t *testing.T) {
	donorSrv, donorEng := newHealthServer(t, 80, 3)
	donorTS := httptest.NewServer(donorSrv.Handler())
	defer donorTS.Close()
	defer donorEng.Close()
	donor := &Client{Base: donorTS.URL}
	for b := int64(0); b < 5; b++ {
		if err := donorEng.ProcessEdge(7, 100+b); err != nil {
			t.Fatal(err)
		}
	}

	recipSrv, recipEng := newHealthServer(t, 2, 1) // placeholder engine, replaced by the restore
	recipTS := httptest.NewServer(recipSrv.Handler())
	defer recipTS.Close()
	defer recipEng.Close()
	recip := &Client{Base: recipTS.URL}

	var snap bytes.Buffer
	if _, err := donor.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	h, err := recip.Restore(snap.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 80 || h.Elements != 5 || !h.Serving {
		t.Fatalf("post-restore health = %+v, want the donor's N=80, Elements=5", h)
	}

	wantBest, err := donor.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	gotBest, err := recip.BestFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantBest, gotBest) {
		t.Fatalf("restored best = %+v, donor best = %+v", gotBest, wantBest)
	}

	// Garbage bytes must be refused without touching the serving engine.
	if _, err := recip.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("restoring garbage succeeded")
	}
	if h, err := recip.Health(); err != nil || h.N != 80 {
		t.Fatalf("failed restore disturbed the engine: %+v, %v", h, err)
	}
}

// refusingTransport fails the first `failures` round trips with a
// connection-refused dial error — the failure a restarting node produces
// before anything reaches its engine — then delegates.  Stubbing at the
// transport keeps the retry test deterministic: the stdlib transport has
// its own recovery for some socket-level failures, which would otherwise
// absorb the fault before the client's retry layer sees it.
type refusingTransport struct {
	failures int32
	calls    atomic.Int32
	inner    http.RoundTripper
}

func (f *refusingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: &os.SyscallError{Syscall: "connect", Err: syscall.ECONNREFUSED}}
	}
	return f.inner.RoundTrip(req)
}

// TestClientRetryConnRefused checks the single-retry contract: one
// connection-refused attempt is retried and served; two are a hard
// error; NoRetry surfaces the first.
func TestClientRetryConnRefused(t *testing.T) {
	srv, eng := newHealthServer(t, 50, 4)
	defer eng.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(failures int32, noRetry bool) (*Client, *refusingTransport) {
		tr := &refusingTransport{failures: failures, inner: http.DefaultTransport}
		return &Client{
			Base:       ts.URL,
			HTTPClient: &http.Client{Transport: tr},
			Timeout:    5 * time.Second,
			NoRetry:    noRetry,
		}, tr
	}

	cl, tr := mk(1, false)
	if _, err := cl.Health(); err != nil {
		t.Fatalf("health with one refused attempt: %v", err)
	}
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("client made %d attempts, want 2 (original + retry)", got)
	}

	// Exactly one retry: a second refusal is a hard error.
	cl, tr = mk(2, false)
	if _, err := cl.Health(); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("two refusals: err = %v, want ECONNREFUSED", err)
	}
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("client made %d attempts, want 2", got)
	}

	// NoRetry surfaces the first failure without a second attempt.
	cl, tr = mk(1, true)
	if _, err := cl.Health(); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("NoRetry: err = %v, want ECONNREFUSED", err)
	}
	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("NoRetry client made %d attempts, want 1", got)
	}

	// The policy itself: refused retries everywhere; reset only retries
	// idempotent requests — a reset can strike after the server applied
	// part of an /ingest, and replaying it would double-apply updates.
	reset := &net.OpError{Op: "write", Net: "tcp", Err: &os.SyscallError{Syscall: "write", Err: syscall.ECONNRESET}}
	refused := &net.OpError{Op: "dial", Net: "tcp", Err: &os.SyscallError{Syscall: "connect", Err: syscall.ECONNREFUSED}}
	for _, tc := range []struct {
		err        error
		idempotent bool
		want       bool
	}{
		{refused, true, true},
		{refused, false, true},
		{reset, true, true},
		{reset, false, false}, // the ingest case
	} {
		if got := retryable(tc.err, tc.idempotent); got != tc.want {
			t.Errorf("retryable(%v, idempotent=%t) = %t, want %t", tc.err, tc.idempotent, got, tc.want)
		}
	}
}
