package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"feww"
	"feww/internal/stream"
)

// Client talks to a fewwd instance.  It is what cmd/fewwload and the
// end-to-end tests drive; the zero HTTPClient means http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// Ingest encodes a batch of updates in the FEWW binary format and posts
// it to /ingest.  n and m declare the stream's universe sizes (they must
// fit inside the server engine's universe).
func (c *Client) Ingest(n, m int64, ups []feww.Update) (IngestResponse, error) {
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, m, ups); err != nil {
		return IngestResponse{}, err
	}
	return c.IngestStream(&body)
}

// IngestStream posts an already encoded FEWW binary stream to /ingest —
// e.g. a file produced by cmd/fewwgen, streamed without decoding.
func (c *Client) IngestStream(body io.Reader) (IngestResponse, error) {
	resp, err := c.http().Post(c.url("/ingest"), "application/octet-stream", body)
	if err != nil {
		return IngestResponse{}, err
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return IngestResponse{}, fmt.Errorf("ingest: decoding response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("ingest rejected (HTTP %d) after %d accepted updates: %s",
			resp.StatusCode, out.Accepted, out.Error)
	}
	return out, nil
}

// Best fetches /best: the published (barrier-free) consistency, which may
// lag the accepted stream by the in-flight batches.
func (c *Client) Best() (BestResponse, error) {
	var out BestResponse
	return out, c.getJSON("/best", &out)
}

// BestFresh fetches /best?fresh=1: the strict barrier consistency, exact
// with respect to every update accepted before the request.
func (c *Client) BestFresh() (BestResponse, error) {
	var out BestResponse
	return out, c.getJSON("/best?fresh=1", &out)
}

// Results fetches /results (published consistency).
func (c *Client) Results() ([]NeighbourhoodJSON, error) {
	var out []NeighbourhoodJSON
	return out, c.getJSON("/results", &out)
}

// ResultsFresh fetches /results?fresh=1 (barrier consistency).
func (c *Client) ResultsFresh() ([]NeighbourhoodJSON, error) {
	var out []NeighbourhoodJSON
	return out, c.getJSON("/results?fresh=1", &out)
}

// Stats fetches /stats (published consistency).
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	return out, c.getJSON("/stats", &out)
}

// StatsFresh fetches /stats?fresh=1 (barrier consistency).
func (c *Client) StatsFresh() (StatsResponse, error) {
	var out StatsResponse
	return out, c.getJSON("/stats?fresh=1", &out)
}

// Checkpoint asks the server to write its configured checkpoint file.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	resp, err := c.http().Post(c.url("/checkpoint"), "", nil)
	if err != nil {
		return CheckpointResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return CheckpointResponse{}, fmt.Errorf("checkpoint failed (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out CheckpointResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Snapshot streams /snapshot into w and returns the byte count — the
// engine's memory state crossing the network, as in the paper's one-way
// protocols.
func (c *Client) Snapshot(w io.Writer) (int64, error) {
	resp, err := c.http().Get(c.url("/snapshot"))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("snapshot failed (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return io.Copy(w, resp.Body)
}

func (c *Client) getJSON(path string, v any) error {
	resp, err := c.http().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
