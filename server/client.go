package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"

	"feww"
	"feww/internal/stream"
)

// DefaultTransport is the shared connection pool every zero-HTTPClient
// Client rides.  http.DefaultTransport keeps only two idle connections
// per host (DefaultMaxIdleConnsPerHost), so a gateway scatter-gathering
// over its members — several concurrent requests to the *same* member
// base URL per fan-out — would redial on almost every burst.  This
// transport keeps enough idle connections per host to cover a wide
// fan-out plus concurrent ingest streams, and enough in total for a
// many-member cluster.
var DefaultTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   30 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:     true,
	MaxIdleConns:          512,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

// defaultHTTPClient is what the zero Client uses instead of
// http.DefaultClient, so sequential and concurrent requests to the same
// host reuse pooled connections rather than redialing.
var defaultHTTPClient = &http.Client{Transport: DefaultTransport}

// Client talks to a fewwd instance (or to a fewwgate gateway, which
// mirrors the fewwd endpoints).  It is what cmd/fewwload, the cluster
// gateway's member fan-out, and the end-to-end tests drive; the zero
// HTTPClient means a shared client over DefaultTransport, whose
// keep-alive pool is tuned for scatter-gather fan-outs (see
// DefaultTransport).
//
// Timeout bounds each request end to end (connect, send, read): a member
// node that hangs mid-response fails the call instead of wedging the
// caller, which is what a scatter-gather fan-out needs.  Requests are
// retried once on connection refused (the dial failed; nothing reached
// the server), and idempotent requests — everything except /ingest —
// also on connection reset.  A reset can strike after the server
// applied part of an ingest, so replaying one could double-apply
// updates; refused cannot.  Retries need a replayable body, which every
// method provides except IngestStream with a non-seekable reader.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides the transport (nil = a shared client over
	// DefaultTransport).
	HTTPClient *http.Client
	// Timeout bounds each request end to end; 0 means no client-side
	// deadline (whatever the transport does).
	Timeout time.Duration
	// NoRetry disables the single automatic retry on connection
	// refused/reset.  The retry is safe — it only fires on errors raised
	// before or while the connection is being (re)established, with a
	// replayable body — but tests exercising failure paths want the
	// first error verbatim.
	NoRetry bool
}

func (c *Client) http() *http.Client {
	base := c.HTTPClient
	if base == nil {
		base = defaultHTTPClient
	}
	if c.Timeout <= 0 {
		return base
	}
	// A shallow copy shares the transport (and its connection pool) while
	// imposing this client's deadline.
	hc := *base
	hc.Timeout = c.Timeout
	return &hc
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// retryable reports whether err is a transport failure worth one more
// attempt.  Connection refused always qualifies: the dial failed, so
// nothing of the request reached an engine.  Connection reset can strike
// *after* the server processed part (or all) of the request, so it only
// qualifies when the request is idempotent — replaying /ingest after a
// reset could double-apply chunks the engine already accepted.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	return idempotent && errors.Is(err, syscall.ECONNRESET)
}

// do issues one request, retrying once per the retryable policy.
// makeBody returns a fresh body reader per attempt (nil makeBody means a
// bodyless request; a nil *return* means the body cannot be replayed, so
// the original error surfaces instead of a bogus empty-body request);
// contentType is set when non-empty.
func (c *Client) do(method, path, contentType string, idempotent bool, makeBody func() io.Reader) (*http.Response, error) {
	hc := c.http()
	attempt := func(body io.Reader) (*http.Response, error) {
		req, err := http.NewRequest(method, c.url(path), body)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		return hc.Do(req)
	}
	first := io.Reader(nil)
	if makeBody != nil {
		first = makeBody()
	}
	resp, err := attempt(first)
	if err != nil && !c.NoRetry && retryable(err, idempotent) {
		var replay io.Reader
		if makeBody != nil {
			if replay = makeBody(); replay == nil {
				return resp, err // non-replayable body: keep the real error
			}
		}
		resp, err = attempt(replay)
	}
	return resp, err
}

// Ingest encodes a batch of updates in the FEWW binary format and posts
// it to /ingest.  n and m declare the stream's universe sizes (they must
// fit inside the server engine's universe).
func (c *Client) Ingest(n, m int64, ups []feww.Update) (IngestResponse, error) {
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, m, ups); err != nil {
		return IngestResponse{}, err
	}
	return c.ingest(func() io.Reader { return bytes.NewReader(body.Bytes()) })
}

// IngestStream posts an already encoded FEWW binary stream to /ingest —
// e.g. a file produced by cmd/fewwgen, streamed without decoding.  The
// stream starts at the reader's current position.  A seekable body is
// replayed from that position if a refused connection triggers the
// retry; a non-seekable one cannot be, so the transport error surfaces
// as-is — use Ingest (or seek and re-call) when that matters.
func (c *Client) IngestStream(body io.Reader) (IngestResponse, error) {
	if rs, ok := body.(io.ReadSeeker); ok {
		if pos, err := rs.Seek(0, io.SeekCurrent); err == nil {
			first := true
			return c.ingest(func() io.Reader {
				if !first {
					if _, err := rs.Seek(pos, io.SeekStart); err != nil {
						return nil // rewind failed; do() surfaces the first error
					}
				}
				first = false
				return rs
			})
		}
		// A ReadSeeker whose position cannot be read cannot be replayed
		// reliably; fall through to the single-attempt path.
	}
	one := false
	return c.ingest(func() io.Reader {
		if one {
			return nil // replay impossible; do() surfaces the first error
		}
		one = true
		return body
	})
}

func (c *Client) ingest(makeBody func() io.Reader) (IngestResponse, error) {
	resp, err := c.do(http.MethodPost, "/ingest", "application/octet-stream", false, makeBody)
	if err != nil {
		return IngestResponse{}, err
	}
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return IngestResponse{}, fmt.Errorf("ingest: decoding response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("ingest rejected (HTTP %d) after %d accepted updates: %s",
			resp.StatusCode, out.Accepted, out.Error)
	}
	return out, nil
}

// Best fetches /best: the published (barrier-free) consistency, which may
// lag the accepted stream by the in-flight batches.
func (c *Client) Best() (BestResponse, error) {
	var out BestResponse
	return out, c.getJSON("/best", &out)
}

// BestFresh fetches /best?fresh=1: the strict barrier consistency, exact
// with respect to every update accepted before the request.
func (c *Client) BestFresh() (BestResponse, error) {
	var out BestResponse
	return out, c.getJSON("/best?fresh=1", &out)
}

// Results fetches /results (published consistency).
func (c *Client) Results() ([]NeighbourhoodJSON, error) {
	var out []NeighbourhoodJSON
	return out, c.getJSON("/results", &out)
}

// ResultsFresh fetches /results?fresh=1 (barrier consistency).
func (c *Client) ResultsFresh() ([]NeighbourhoodJSON, error) {
	var out []NeighbourhoodJSON
	return out, c.getJSON("/results?fresh=1", &out)
}

// Stats fetches /stats (published consistency).
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	return out, c.getJSON("/stats", &out)
}

// StatsFresh fetches /stats?fresh=1 (barrier consistency).
func (c *Client) StatsFresh() (StatsResponse, error) {
	var out StatsResponse
	return out, c.getJSON("/stats?fresh=1", &out)
}

// Health fetches /healthz.  The response decodes on HTTP 200 (serving)
// and 503 (draining: Serving false) alike; any other status is an error.
// It is the readiness probe a cluster gateway polls for each member.
func (c *Client) Health() (HealthResponse, error) {
	resp, err := c.do(http.MethodGet, "/healthz", "", true, nil)
	if err != nil {
		return HealthResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return HealthResponse{}, fmt.Errorf("GET /healthz: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return HealthResponse{}, fmt.Errorf("healthz: decoding response (HTTP %d): %w", resp.StatusCode, err)
	}
	return out, nil
}

// Checkpoint asks the server to write its configured checkpoint file.
func (c *Client) Checkpoint() (CheckpointResponse, error) {
	resp, err := c.do(http.MethodPost, "/checkpoint", "", true, nil)
	if err != nil {
		return CheckpointResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return CheckpointResponse{}, fmt.Errorf("checkpoint failed (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out CheckpointResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Snapshot streams /snapshot into w and returns the byte count — the
// engine's memory state crossing the network, as in the paper's one-way
// protocols.
func (c *Client) Snapshot(w io.Writer) (int64, error) {
	resp, err := c.do(http.MethodGet, "/snapshot", "", true, nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("snapshot failed (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return io.Copy(w, resp.Body)
}

// Restore posts snapshot bytes to /restore, replacing the server's
// engine with the snapshot's state — the shipping half of a cluster
// rebalance.  It returns the server's post-restore health, which carries
// the restored engine's kind and universe for verification.
func (c *Client) Restore(snapshot []byte) (HealthResponse, error) {
	resp, err := c.do(http.MethodPost, "/restore", "application/octet-stream", true,
		func() io.Reader { return bytes.NewReader(snapshot) })
	if err != nil {
		return HealthResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return HealthResponse{}, fmt.Errorf("restore failed (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out HealthResponse
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// ShipSnapshot copies this server's engine state into dst: GET
// /snapshot here, POST /restore there — the one whole-state message the
// paper's protocols are built on, and the primitive behind cluster
// rebalance and replica re-seeding.  The snapshot is buffered in memory
// so the restore body is replayable (a refused connection can be
// retried); the buffer is bounded by the donor's engine size.  It
// returns dst's post-restore health for verification plus the snapshot
// byte count.
func (c *Client) ShipSnapshot(dst *Client) (HealthResponse, int64, error) {
	var snap bytes.Buffer
	size, err := c.Snapshot(&snap)
	if err != nil {
		return HealthResponse{}, 0, fmt.Errorf("snapshot from %s: %w", c.Base, err)
	}
	h, err := dst.Restore(snap.Bytes())
	if err != nil {
		return HealthResponse{}, 0, fmt.Errorf("restore into %s: %w", dst.Base, err)
	}
	return h, size, nil
}

func (c *Client) getJSON(path string, v any) error {
	resp, err := c.do(http.MethodGet, path, "", true, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
