package feww

import (
	"sync"
	"sync/atomic"
	"time"

	"feww/internal/core"
)

// The runtime partitions the item universe [0, N) across P shards by
// residue: shard p owns every global item a with a % P == p, stored inside
// the shard's algorithm instance under the local id a / P.  The mapping is
// a bijection between the shard's slice of the universe and [0, ceil((N-p)/P)),
// so each shard runs the unmodified single-threaded algorithm on a smaller
// universe and the per-item degree promise transfers exactly: every edge of
// a global item lands in the one shard that owns it.  The shard type itself
// (rtShard) lives in runtime.go; this file holds the concurrency skeleton —
// published view epochs and the fanout worker machinery.

// publishedView is one result epoch of one shard: an immutable core.View
// built by the shard's worker from quiescent state, plus the epoch number
// (0 for the pre-stream view installed at construction, then incremented
// on every publication).  The worker is the only writer; any number of
// goroutines may Load and read it without further synchronisation, which
// is what makes the engines' default query path barrier-free.
type publishedView struct {
	core.View
	Epoch uint64
}

// shardCount resolves the configured shard count against the universe size:
// 0 means "one shard per available CPU", and the count is clamped to N so
// every shard owns at least one item.
func shardCount(requested int, n int64, defaultShards int) int {
	p := requested
	if p == 0 {
		p = defaultShards
	}
	if int64(p) > n {
		p = int(n)
	}
	return p
}

// msg is the unit of work on a worker queue: a batch buffer (recycled
// after application) and/or a barrier acknowledgement channel, which the
// worker closes once every earlier batch has been applied.  A barrier
// sends both halves in one message, so a flush+ack pass costs each shard
// queue a single send.
type msg[E any] struct {
	batch *[]E
	ack   chan<- struct{}
}

// lane is the producer-facing half of one shard: the fill buffer the
// routed sub-batches accumulate in, the element count handed to the
// shard queue but not yet applied, and the admission sequence that keeps
// the shard's sub-stream in exact global-position order under concurrent
// producers.
//
// nextBase is the reserved base position of the next sub-batch the lane
// will admit.  A producer that reserved [base, base+n) may touch the
// lane only once nextBase == base, and leaves nextBase = base+n behind —
// so sub-batches enter the fill buffer (and hence the shard queue) in
// exactly the order their positions were reserved, with no global lock
// anywhere on the path.  Every reservation visits every lane, including
// lanes it routes nothing to: skipping a lane would strand its admission
// sequence and deadlock the next producer.
type lane[E any] struct {
	mu       sync.Mutex
	seq      sync.Cond // signalled whenever nextBase advances
	nextBase int64     // base position of the next admissible reservation
	pending  *[]E      // fill buffer, owned by the mu holder
	queued   atomic.Int64
}

// take removes the fill buffer for hand-off to the shard queue (counting
// its elements into queued) and installs a fresh one, or returns nil if
// nothing is buffered.
//
//fewwvet:requires mu
func (ln *lane[E]) take(f *fanout[E]) *[]E {
	if len(*ln.pending) == 0 {
		return nil
	}
	batch := ln.pending
	ln.queued.Add(int64(len(*batch)))
	ln.pending = f.newBuf()
	return batch
}

// fanout is the concurrency skeleton under the generic runtime (and hence
// every engine façade — Engine, TurnstileEngine, StarEngine, WindowEngine):
// per-shard lanes (fill buffer + admission sequence), bounded FIFO batch
// queues, one worker goroutine per shard, an ack barrier, and buffer
// recycling through a sync.Pool (of *[]E, so recycling does not re-box the
// slice header).  Each worker drains its queue in FIFO order, so every
// shard consumes its sub-stream in exact global-position order and results
// are deterministic regardless of scheduling.
//
// The producer path is a two-phase reserve-then-enqueue pipeline with no
// global lock on it.  Phase 1: a producer reserves a contiguous position
// range for its batch with one atomic add on count, then stamps and
// partitions the batch into per-shard sub-batches outside any lock, in
// pooled per-call scratch buffers.  Phase 2: the sub-batches are admitted
// lane by lane in reserved-base order (see lane), so concurrent producers
// proceed in parallel through everything but the final per-shard append.
// Ingest order — and hence determinism — across concurrent producers is
// the order their reservations linearised in: the position assignment
// fully determines every shard's apply order and the window engine's
// arrival stamps.  A single producer is byte-identical to the historical
// global-lock behaviour.
//
// gate is the close/barrier rendezvous that remains: producers hold it
// shared for the duration of a feed call, close/drain/query take it
// exclusively, so a barrier observes no mid-flight reservations and close
// can never race a producer into a closed channel.  closed is read
// without any lock (atomic), so Closed()/health probes never contend with
// ingest.  Feeding a closed fanout returns ErrClosed.
//
// Queries come in two consistencies.  Barrier queries (query) take gate
// exclusively and quiesce the workers, so the callback may read shard
// state directly — every element fed before the call is applied.  The
// default barrier-free path instead reads each shard's published view:
// after applying batches, a worker rebuilds its immutable result view
// (via the publish hook) and installs it with an atomic store, so readers
// never touch any lock, never stall the workers, and never observe a
// half-applied batch.  Publication coalesces under backlog and is
// throttled when idle — the view is rebuilt only when the worker's queue
// momentarily empties and publishMinInterval has passed, or when a
// barrier demands it — so neither saturation nor a trickle of batches
// trades ingest throughput for view freshness.
type fanout[E any] struct {
	name      string // engine type, for error messages
	batchSize int
	item      func(E) int64 // global item id of an element, for routing
	apply     []func([]E)   // per shard: apply one batch (global ids)
	publish   []func()      // per shard: rebuild + atomically install the view
	chans     []chan msg[E]
	lanes     []lane[E]
	pool      sync.Pool // *[]E batch buffers
	scratch   sync.Pool // *routeScratch[E] per-call partition buffers
	wg        sync.WaitGroup
	gate      sync.RWMutex // shared by producers, exclusive for close/barrier
	count     atomic.Int64 // positions reserved so far
	closed    atomic.Bool  // set by close, read lock-free by isClosed

	// stamp, when set, is called during the lock-free partition phase for
	// every accepted element with its 0-based reserved stream position —
	// how the window engine attaches arrival positions without a second
	// pass.  reserve, when set, is called once per reservation with the
	// base position and length, before any element of the range is
	// stamped or routed — how the window engine advances its clock so a
	// worker never applies a position the clock has not covered.
	// publishOnAck makes workers republish at every barrier even when
	// they applied nothing since the last publication: an engine whose
	// views depend on global stream progress (the window engine's clock
	// advances with *other* shards' traffic) needs idle shards to refresh
	// too, or Drain would leave their published views behind the fresh
	// ones.  All three are set by a façade constructor before the fanout
	// is shared, never mutated after.
	stamp        func(el *E, pos int64)
	reserve      func(base, n int64)
	publishOnAck bool
}

// routeScratch holds one producer call's per-shard partition buffers.
// Pooled per fanout: a feed call Gets one, fills subs[i] with shard i's
// sub-batch, admits them, resets and Puts — so steady-state ingest
// allocates nothing on the routing path regardless of producer count.
type routeScratch[E any] struct {
	subs [][]E
}

// newFanout builds the skeleton and starts one worker per apply function.
// publish[i] is invoked by worker i alone, after it has applied batches
// and found its queue empty (and before acknowledging a barrier), so the
// hook may read shard i's state without synchronisation.
func newFanout[E any](name string, batchSize, queueDepth int, item func(E) int64, apply []func([]E), publish []func()) *fanout[E] {
	f := &fanout[E]{
		name:      name,
		batchSize: batchSize,
		item:      item,
		apply:     apply,
		publish:   publish,
		chans:     make([]chan msg[E], len(apply)),
		lanes:     make([]lane[E], len(apply)),
	}
	for i := range f.chans {
		f.chans[i] = make(chan msg[E], queueDepth)
		ln := &f.lanes[i]
		ln.seq.L = &ln.mu
		ln.pending = f.newBuf()
	}
	f.wg.Add(len(f.chans))
	for i := range f.chans {
		go f.run(i)
	}
	return f
}

// publishMinInterval throttles idle republication: between barriers a
// shard rebuilds its result view at most once per interval.  Rebuilding
// a view costs roughly one full query (for the turnstile engine, an L0
// recovery pass over every sampler), so publishing after *every* batch
// would make lightly-loaded ingest pay a query per batch; the throttle
// caps that at ~20 rebuilds per second per shard while keeping published
// staleness bounded by the interval.  Barrier publications (before acks,
// after close) are never throttled — Drain/Snapshot/Fresh reads stay
// exact.  A variable so the race tests can set it to zero and hammer the
// publication path.
var publishMinInterval = 50 * time.Millisecond

// run is the worker goroutine for shard i.  Between applying batches it
// republishes the shard's result view: when the queue is empty (the
// worker is about to idle) and the throttle window is open, before
// acknowledging a barrier (so a barrier implies the published view is
// exact), and once more after the queue closes (so the final view
// reflects the complete stream).  If the throttle defers a publication,
// the worker waits for more work with a deadline and publishes when the
// window closes, so the published view converges even if no further
// traffic arrives.  Under sustained backlog the queue never empties and
// publication is skipped — ingest throughput is never traded for view
// freshness.
func (f *fanout[E]) run(i int) {
	defer f.wg.Done()
	dirty := false
	var last time.Time // most recent publication
	var timer *time.Timer
	publish := func() {
		if f.publish[i] != nil {
			f.publish[i]()
		}
		dirty = false
		last = time.Now()
	}
	for {
		var m msg[E]
		var ok bool
		if dirty && len(f.chans[i]) == 0 {
			// A throttled publication is pending and no work is queued:
			// wait for more, but only until the throttle window closes.
			// The timer is reused across waits — time.After here would
			// allocate a fresh timer every time the worker goes idle,
			// which the ingest allocation gate counts against the hot
			// path.  After a Stop that loses the race with expiry the
			// channel holds a stale tick; drain it so the next Reset
			// starts clean.
			if timer == nil {
				timer = time.NewTimer(publishMinInterval - time.Since(last))
			} else {
				timer.Reset(publishMinInterval - time.Since(last))
			}
			select {
			case m, ok = <-f.chans[i]:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				publish()
				continue
			}
		} else {
			m, ok = <-f.chans[i]
		}
		if !ok {
			break
		}
		if m.batch != nil {
			f.apply[i](*m.batch)
			f.lanes[i].queued.Add(-int64(len(*m.batch)))
			*m.batch = (*m.batch)[:0]
			f.pool.Put(m.batch)
			dirty = true
		}
		if m.ack != nil {
			if dirty || f.publishOnAck {
				publish()
			}
			close(m.ack)
		}
		if dirty && len(f.chans[i]) == 0 && time.Since(last) >= publishMinInterval {
			publish()
		}
	}
	if dirty || f.publishOnAck {
		publish()
	}
}

// add routes one element; addBatch routes a slice (copying it into the
// per-shard fill buffers, so the caller keeps ownership).  Full buffers
// are handed to the owning worker.  Both return ErrClosed — without
// feeding anything — once close has run, so a server draining towards
// shutdown can turn an in-flight ingest into a clean error instead of a
// panic.
func (f *fanout[E]) add(el E) error {
	f.gate.RLock()
	defer f.gate.RUnlock()
	if f.closed.Load() {
		return ErrClosed
	}
	pos := f.count.Add(1) - 1
	if f.reserve != nil {
		f.reserve(pos, 1)
	}
	if f.stamp != nil {
		f.stamp(&el, pos)
	}
	target := int(f.item(el) % int64(len(f.chans)))
	// A one-element reservation still walks every lane: admission order
	// is positional, so a lane skipped here would never admit the next
	// producer's sub-batch.
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		for ln.nextBase != pos {
			ln.seq.Wait()
		}
		if i == target {
			*ln.pending = append(*ln.pending, el)
			if len(*ln.pending) >= f.batchSize {
				if batch := ln.take(f); batch != nil {
					f.chans[i] <- msg[E]{batch: batch}
				}
			}
		}
		ln.nextBase = pos + 1
		ln.mu.Unlock()
		ln.seq.Broadcast()
	}
	return nil
}

func (f *fanout[E]) addBatch(els []E) error {
	if len(els) == 0 {
		if f.closed.Load() {
			return ErrClosed
		}
		return nil
	}
	f.gate.RLock()
	defer f.gate.RUnlock()
	if f.closed.Load() {
		return ErrClosed
	}
	// Phase 1: reserve the position range, then stamp and partition into
	// the per-call scratch buffers — no lock anywhere, so concurrent
	// producers route in parallel.
	n := int64(len(els))
	base := f.count.Add(n) - n
	if f.reserve != nil {
		f.reserve(base, n)
	}
	sc := f.newScratch()
	p := int64(len(f.chans))
	if f.stamp == nil {
		// Kept as a separate loop: taking el's address for stamping (below)
		// makes the element addressable and costs every iteration a stack
		// spill, which is measurable at full ingest rate on the engines
		// that never stamp.
		for _, el := range els {
			i := int(f.item(el) % p)
			sc.subs[i] = append(sc.subs[i], el)
		}
	} else {
		for j, el := range els {
			// el is this iteration's copy: the caller's slice is never
			// written to, it keeps ownership as documented.
			f.stamp(&el, base+int64(j))
			i := int(f.item(el) % p)
			sc.subs[i] = append(sc.subs[i], el)
		}
	}
	// Phase 2: admit each sub-batch under its lane's sequence, ticket
	// ordered by the reserved base.
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		for ln.nextBase != base {
			ln.seq.Wait()
		}
		sub := sc.subs[i]
		for len(sub) > 0 {
			room := f.batchSize - len(*ln.pending)
			if room > len(sub) {
				room = len(sub)
			}
			*ln.pending = append(*ln.pending, sub[:room]...)
			sub = sub[room:]
			if len(*ln.pending) >= f.batchSize {
				if batch := ln.take(f); batch != nil {
					f.chans[i] <- msg[E]{batch: batch}
				}
			}
		}
		ln.nextBase = base + n
		ln.mu.Unlock()
		ln.seq.Broadcast()
	}
	f.putScratch(sc)
	return nil
}

// newScratch hands out a per-call partition scratch, its sub-batch
// buffers sized by earlier traffic.
func (f *fanout[E]) newScratch() *routeScratch[E] {
	if v := f.scratch.Get(); v != nil {
		return v.(*routeScratch[E])
	}
	return &routeScratch[E]{subs: make([][]E, len(f.chans))}
}

// putScratch resets the sub-batches (keeping their capacity) and ends
// the caller's ownership.
func (f *fanout[E]) putScratch(sc *routeScratch[E]) {
	for i := range sc.subs {
		sc.subs[i] = sc.subs[i][:0]
	}
	f.scratch.Put(sc)
}

func (f *fanout[E]) newBuf() *[]E {
	if v := f.pool.Get(); v != nil {
		return v.(*[]E)
	}
	buf := make([]E, 0, f.batchSize)
	return &buf
}

// flush hands every buffered element to its shard queue without waiting.
// It runs concurrently with producers (each lane briefly locked), so it
// cuts batches at whatever boundary it finds — results are batch-size
// independent, so the cut is invisible beyond published-view granularity.
func (f *fanout[E]) flush() error {
	f.gate.RLock()
	defer f.gate.RUnlock()
	if f.closed.Load() {
		return ErrClosed
	}
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		if batch := ln.take(f); batch != nil {
			f.chans[i] <- msg[E]{batch: batch}
		}
		ln.mu.Unlock()
	}
	return nil
}

// drain flushes and blocks until every worker has applied everything
// queued so far.  After Close it returns ErrClosed: the workers have
// drained and stopped, so there is nothing left to wait for.
func (f *fanout[E]) drain() error {
	f.gate.Lock()
	defer f.gate.Unlock()
	if f.closed.Load() {
		return ErrClosed
	}
	f.barrierLocked()
	return nil
}

// query runs fn after a barrier, holding gate exclusively throughout, so
// fn may read shard state directly: every element fed before the call is
// applied, the workers are idle on their queues, and no producer can slip
// new batches in while fn runs.
func (f *fanout[E]) query(fn func()) {
	f.gate.Lock()
	defer f.gate.Unlock()
	f.barrierLocked()
	fn()
}

// barrierLocked makes every element fed so far visible to the caller: it
// sends each worker its remaining fill buffer and an ack token in one
// message, then waits for all of them.  Each queue is FIFO with a single
// consumer, so an acked worker has applied every earlier batch; the ack
// also establishes the happens-before edge that lets the caller read
// shard state directly.  The caller holds gate exclusively, so no
// producer is mid-reservation; the lane locks are still taken around the
// buffer hand-off because lock-free telemetry reads (queueDepths) run
// without the gate.  After close the workers have drained and stopped,
// so reads are safe without a barrier.
func (f *fanout[E]) barrierLocked() {
	if f.closed.Load() {
		return
	}
	acks := make([]chan struct{}, len(f.chans))
	for i := range f.chans {
		ack := make(chan struct{})
		acks[i] = ack
		ln := &f.lanes[i]
		ln.mu.Lock()
		batch := ln.take(f)
		ln.mu.Unlock()
		f.chans[i] <- msg[E]{batch: batch, ack: ack}
	}
	for _, ack := range acks {
		<-ack
	}
}

// close flushes, stops the workers, and waits for them to drain.
// Idempotent.  Taking gate exclusively means no producer is past its
// closed check when the channels close, so a feed racing close gets a
// clean ErrClosed, never a send on a closed channel.
func (f *fanout[E]) close() {
	f.gate.Lock()
	defer f.gate.Unlock()
	if f.closed.Load() {
		return
	}
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		batch := ln.take(f)
		ln.mu.Unlock()
		if batch != nil {
			f.chans[i] <- msg[E]{batch: batch}
		}
		close(f.chans[i])
	}
	f.wg.Wait()
	f.closed.Store(true)
}

// isClosed reports whether close has run.  It is what the engines' Closed
// accessors — and through them the service health probe — read: a single
// atomic load, so liveness checks never contend with ingest.
func (f *fanout[E]) isClosed() bool {
	return f.closed.Load()
}

// restoreCount seeds the position counter and every lane's admission
// sequence after a snapshot restore, so the first post-restore
// reservation continues exactly where the snapshotted stream stopped.
// It must run before the fanout is shared with any producer.
func (f *fanout[E]) restoreCount(count int64) {
	f.count.Store(count)
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		ln.nextBase = count
		ln.mu.Unlock()
	}
}

// queueDepths samples the number of elements buffered per shard — both
// those sitting in batches on the shard queue and those still in the
// lane's fill buffer — a load signal for operational dashboards.  It
// takes no barrier and never touches gate: the numbers are instantaneous
// and may be stale by the time they are read.
func (f *fanout[E]) queueDepths() []int {
	depths := make([]int, len(f.chans))
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		buffered := len(*ln.pending)
		ln.mu.Unlock()
		depths[i] = buffered + int(ln.queued.Load())
	}
	return depths
}
