package feww

import (
	"sync"
	"sync/atomic"
	"time"

	"feww/internal/core"
)

// The runtime partitions the item universe [0, N) across P shards by
// residue: shard p owns every global item a with a % P == p, stored inside
// the shard's algorithm instance under the local id a / P.  The mapping is
// a bijection between the shard's slice of the universe and [0, ceil((N-p)/P)),
// so each shard runs the unmodified single-threaded algorithm on a smaller
// universe and the per-item degree promise transfers exactly: every edge of
// a global item lands in the one shard that owns it.  The shard type itself
// (rtShard) lives in runtime.go; this file holds the concurrency skeleton —
// published view epochs and the fanout worker machinery.

// publishedView is one result epoch of one shard: an immutable core.View
// built by the shard's worker from quiescent state, plus the epoch number
// (0 for the pre-stream view installed at construction, then incremented
// on every publication).  The worker is the only writer; any number of
// goroutines may Load and read it without further synchronisation, which
// is what makes the engines' default query path barrier-free.
type publishedView struct {
	core.View
	Epoch uint64
}

// shardCount resolves the configured shard count against the universe size:
// 0 means "one shard per available CPU", and the count is clamped to N so
// every shard owns at least one item.
func shardCount(requested int, n int64, defaultShards int) int {
	p := requested
	if p == 0 {
		p = defaultShards
	}
	if int64(p) > n {
		p = int(n)
	}
	return p
}

// msg is the unit of work on a worker queue: a batch buffer (recycled
// after application) and/or a barrier acknowledgement channel, which the
// worker closes once every earlier batch has been applied.
type msg[E any] struct {
	batch *[]E
	ack   chan<- struct{}
}

// fanout is the concurrency skeleton under the generic runtime (and hence
// every engine façade — Engine, TurnstileEngine, StarEngine): per-shard
// fill buffers, bounded FIFO batch queues, one worker goroutine
// per shard, an ack barrier, and buffer recycling through a sync.Pool (of
// *[]E, so recycling does not re-box the slice header).  Each worker
// drains its queue in FIFO order, so every shard consumes its sub-stream
// in exact arrival order and results are deterministic regardless of
// scheduling.
//
// The producer side is guarded by mu, so any number of goroutines may
// feed concurrently (a network server's handlers); ingest order — and
// hence determinism — across concurrent producers is whatever order they
// win the lock in.  Feeding a closed fanout returns ErrClosed.
//
// Queries come in two consistencies.  Barrier queries (query) take the
// lock and quiesce the workers, so the callback may read shard state
// directly — every element fed before the call is applied.  The default
// barrier-free path instead reads each shard's published view: after
// applying batches, a worker rebuilds its immutable result view (via the
// publish hook) and installs it with an atomic store, so readers never
// touch the lock, never stall the workers, and never observe a
// half-applied batch.  Publication coalesces under backlog and is
// throttled when idle — the view is rebuilt only when the worker's queue
// momentarily empties and publishMinInterval has passed, or when a
// barrier demands it — so neither saturation nor a trickle of batches
// trades ingest throughput for view freshness.
type fanout[E any] struct {
	name      string // engine type, for error messages
	batchSize int
	item      func(E) int64 // global item id of an element, for routing
	apply     []func([]E)   // per shard: apply one batch (global ids)
	publish   []func()      // per shard: rebuild + atomically install the view
	chans     []chan msg[E]
	pending   []*[]E // per-shard fill buffers, owned by the lock holder
	pool      sync.Pool
	wg        sync.WaitGroup
	mu        sync.Mutex   // guards pending, closed, and shard state reads
	count     atomic.Int64 // elements accepted so far
	closed    bool

	// stamp, when set, is called under mu for every accepted element with
	// its 0-based global stream position (the count before the element),
	// before routing — how the window engine attaches arrival positions
	// without a second pass.  publishOnAck makes workers republish at
	// every barrier even when they applied nothing since the last
	// publication: an engine whose views depend on global stream progress
	// (the window engine's clock advances with *other* shards' traffic)
	// needs idle shards to refresh too, or Drain would leave their
	// published views behind the fresh ones.  Both are set by a façade
	// constructor before the fanout is shared, never mutated after.
	stamp        func(el *E, pos int64)
	publishOnAck bool
}

// newFanout builds the skeleton and starts one worker per apply function.
// publish[i] is invoked by worker i alone, after it has applied batches
// and found its queue empty (and before acknowledging a barrier), so the
// hook may read shard i's state without synchronisation.
func newFanout[E any](name string, batchSize, queueDepth int, item func(E) int64, apply []func([]E), publish []func()) *fanout[E] {
	f := &fanout[E]{
		name:      name,
		batchSize: batchSize,
		item:      item,
		apply:     apply,
		publish:   publish,
		chans:     make([]chan msg[E], len(apply)),
		pending:   make([]*[]E, len(apply)),
	}
	for i := range f.chans {
		f.chans[i] = make(chan msg[E], queueDepth)
		f.pending[i] = f.newBuf()
	}
	f.wg.Add(len(f.chans))
	for i := range f.chans {
		go f.run(i)
	}
	return f
}

// publishMinInterval throttles idle republication: between barriers a
// shard rebuilds its result view at most once per interval.  Rebuilding
// a view costs roughly one full query (for the turnstile engine, an L0
// recovery pass over every sampler), so publishing after *every* batch
// would make lightly-loaded ingest pay a query per batch; the throttle
// caps that at ~20 rebuilds per second per shard while keeping published
// staleness bounded by the interval.  Barrier publications (before acks,
// after close) are never throttled — Drain/Snapshot/Fresh reads stay
// exact.  A variable so the race tests can set it to zero and hammer the
// publication path.
var publishMinInterval = 50 * time.Millisecond

// run is the worker goroutine for shard i.  Between applying batches it
// republishes the shard's result view: when the queue is empty (the
// worker is about to idle) and the throttle window is open, before
// acknowledging a barrier (so a barrier implies the published view is
// exact), and once more after the queue closes (so the final view
// reflects the complete stream).  If the throttle defers a publication,
// the worker waits for more work with a deadline and publishes when the
// window closes, so the published view converges even if no further
// traffic arrives.  Under sustained backlog the queue never empties and
// publication is skipped — ingest throughput is never traded for view
// freshness.
func (f *fanout[E]) run(i int) {
	defer f.wg.Done()
	dirty := false
	var last time.Time // most recent publication
	var timer *time.Timer
	publish := func() {
		if f.publish[i] != nil {
			f.publish[i]()
		}
		dirty = false
		last = time.Now()
	}
	for {
		var m msg[E]
		var ok bool
		if dirty && len(f.chans[i]) == 0 {
			// A throttled publication is pending and no work is queued:
			// wait for more, but only until the throttle window closes.
			// The timer is reused across waits — time.After here would
			// allocate a fresh timer every time the worker goes idle,
			// which the ingest allocation gate counts against the hot
			// path.  After a Stop that loses the race with expiry the
			// channel holds a stale tick; drain it so the next Reset
			// starts clean.
			if timer == nil {
				timer = time.NewTimer(publishMinInterval - time.Since(last))
			} else {
				timer.Reset(publishMinInterval - time.Since(last))
			}
			select {
			case m, ok = <-f.chans[i]:
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
				publish()
				continue
			}
		} else {
			m, ok = <-f.chans[i]
		}
		if !ok {
			break
		}
		if m.batch != nil {
			f.apply[i](*m.batch)
			*m.batch = (*m.batch)[:0]
			f.pool.Put(m.batch)
			dirty = true
		}
		if m.ack != nil {
			if dirty || f.publishOnAck {
				publish()
			}
			close(m.ack)
		}
		if dirty && len(f.chans[i]) == 0 && time.Since(last) >= publishMinInterval {
			publish()
		}
	}
	if dirty || f.publishOnAck {
		publish()
	}
}

// add routes one element; addBatch routes a slice (copying it into the
// per-shard buffers, so the caller keeps ownership).  Full buffers are
// handed to the owning worker.  Both return ErrClosed — without feeding
// anything — once close has run, so a server draining towards shutdown
// can turn an in-flight ingest into a clean error instead of a panic.
func (f *fanout[E]) add(el E) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	pos := f.count.Add(1) - 1
	if f.stamp != nil {
		f.stamp(&el, pos)
	}
	i := int(f.item(el) % int64(len(f.chans)))
	*f.pending[i] = append(*f.pending[i], el)
	if len(*f.pending[i]) >= f.batchSize {
		f.dispatch(i)
	}
	return nil
}

func (f *fanout[E]) addBatch(els []E) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	base := f.count.Add(int64(len(els))) - int64(len(els))
	p := int64(len(f.chans))
	if f.stamp == nil {
		// Kept as a separate loop: taking el's address for stamping (below)
		// makes the element addressable and costs every iteration a stack
		// spill, which is measurable at full ingest rate on the engines
		// that never stamp.
		for _, el := range els {
			i := int(f.item(el) % p)
			*f.pending[i] = append(*f.pending[i], el)
			if len(*f.pending[i]) >= f.batchSize {
				f.dispatch(i)
			}
		}
		return nil
	}
	for j, el := range els {
		// el is this iteration's copy: the caller's slice is never
		// written to, it keeps ownership as documented.
		f.stamp(&el, base+int64(j))
		i := int(f.item(el) % p)
		*f.pending[i] = append(*f.pending[i], el)
		if len(*f.pending[i]) >= f.batchSize {
			f.dispatch(i)
		}
	}
	return nil
}

// dispatch hands shard i's fill buffer to its queue and installs a fresh
// (usually recycled) buffer.
func (f *fanout[E]) dispatch(i int) {
	if len(*f.pending[i]) == 0 {
		return
	}
	f.chans[i] <- msg[E]{batch: f.pending[i]}
	f.pending[i] = f.newBuf()
}

func (f *fanout[E]) newBuf() *[]E {
	if v := f.pool.Get(); v != nil {
		return v.(*[]E)
	}
	buf := make([]E, 0, f.batchSize)
	return &buf
}

// flush hands every buffered element to its shard queue without waiting.
func (f *fanout[E]) flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.flushLocked()
	return nil
}

func (f *fanout[E]) flushLocked() {
	for i := range f.chans {
		f.dispatch(i)
	}
}

// drain flushes and blocks until every worker has applied everything
// queued so far.  After Close it returns ErrClosed: the workers have
// drained and stopped, so there is nothing left to wait for.
func (f *fanout[E]) drain() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.barrierLocked()
	return nil
}

// query runs fn after a barrier, holding the lock throughout, so fn may
// read shard state directly: every element fed before the call is applied,
// the workers are idle on their queues, and no producer can slip new
// batches in while fn runs.
func (f *fanout[E]) query(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.barrierLocked()
	fn()
}

// barrierLocked makes every element fed so far visible to the caller: it
// flushes the fill buffers, then sends each worker an ack token and waits
// for all of them.  Each queue is FIFO with a single consumer, so an
// acked worker has applied every earlier batch; the ack also establishes
// the happens-before edge that lets the caller read shard state directly.
// After close the workers have drained and stopped, so reads are safe
// without a barrier.
func (f *fanout[E]) barrierLocked() {
	if f.closed {
		return
	}
	f.flushLocked()
	acks := make([]chan struct{}, len(f.chans))
	for i, ch := range f.chans {
		ack := make(chan struct{})
		acks[i] = ack
		ch <- msg[E]{ack: ack}
	}
	for _, ack := range acks {
		<-ack
	}
}

// close flushes, stops the workers, and waits for them to drain.
// Idempotent.
func (f *fanout[E]) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.flushLocked()
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
	f.closed = true
}

// isClosed reports whether close has run.  It is what the engines' Closed
// accessors — and through them the service health probe — read.
func (f *fanout[E]) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// queueDepths samples the number of batches waiting in each shard queue —
// a load signal for operational dashboards.  It takes no barrier: the
// numbers are instantaneous and may be stale by the time they are read.
func (f *fanout[E]) queueDepths() []int {
	depths := make([]int, len(f.chans))
	for i, ch := range f.chans {
		depths[i] = len(ch)
	}
	return depths
}
