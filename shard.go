package feww

import (
	"sync"
	"sync/atomic"

	"feww/internal/core"
)

// The engine partitions the item universe [0, N) across P shards by
// residue: shard p owns every global item a with a % P == p, stored inside
// the shard's algorithm instance under the local id a / P.  The mapping is
// a bijection between the shard's slice of the universe and [0, ceil((N-p)/P)),
// so each shard runs the unmodified single-threaded algorithm on a smaller
// universe and the per-item degree promise transfers exactly: every edge of
// a global item lands in the one shard that owns it.

// shard is one partition of the insertion-only Engine; tShard is the
// turnstile counterpart.  They carry what the query-side merge needs: the
// residue class, the stride P, and the inner algorithm instance.
type shard struct {
	idx    int   // residue class this shard owns
	stride int64 // P, the total shard count
	inner  *core.InsertOnly
}

// local converts a global item id owned by this shard to its local id.
func (sh *shard) local(a int64) int64 { return a / sh.stride }

// global converts a shard-local item id back to the global id.
func (sh *shard) global(local int64) int64 { return local*sh.stride + int64(sh.idx) }

type tShard struct {
	idx    int
	stride int64
	inner  *core.InsertDelete
}

func (sh *tShard) local(a int64) int64 { return a / sh.stride }

func (sh *tShard) global(local int64) int64 { return local*sh.stride + int64(sh.idx) }

// shardCount resolves the configured shard count against the universe size:
// 0 means "one shard per available CPU", and the count is clamped to N so
// every shard owns at least one item.
func shardCount(requested int, n int64, defaultShards int) int {
	p := requested
	if p == 0 {
		p = defaultShards
	}
	if int64(p) > n {
		p = int(n)
	}
	return p
}

// msg is the unit of work on a worker queue: a batch buffer (recycled
// after application) and/or a barrier acknowledgement channel, which the
// worker closes once every earlier batch has been applied.
type msg[E any] struct {
	batch *[]E
	ack   chan<- struct{}
}

// fanout is the concurrency skeleton shared by Engine and TurnstileEngine:
// per-shard fill buffers, bounded FIFO batch queues, one worker goroutine
// per shard, an ack barrier, and buffer recycling through a sync.Pool (of
// *[]E, so recycling does not re-box the slice header).  Each worker
// drains its queue in FIFO order, so every shard consumes its sub-stream
// in exact arrival order and results are deterministic regardless of
// scheduling.
//
// The producer/query side is guarded by mu, so any number of goroutines
// may feed and query concurrently (a network server's handlers); ingest
// order — and hence determinism — across concurrent producers is whatever
// order they win the lock in.  Queries run under the same lock *after* a
// barrier, which is what makes reading shard state race-free: the workers
// are quiescent and the ack channel established the happens-before edge.
type fanout[E any] struct {
	name      string // engine type, for panic messages
	batchSize int
	item      func(E) int64 // global item id of an element, for routing
	apply     []func([]E)   // per shard: apply one batch (global ids)
	chans     []chan msg[E]
	pending   []*[]E // per-shard fill buffers, owned by the lock holder
	pool      sync.Pool
	wg        sync.WaitGroup
	mu        sync.Mutex   // guards pending, closed, and shard state reads
	count     atomic.Int64 // elements accepted so far
	closed    bool
}

// newFanout builds the skeleton and starts one worker per apply function.
func newFanout[E any](name string, batchSize, queueDepth int, item func(E) int64, apply []func([]E)) *fanout[E] {
	f := &fanout[E]{
		name:      name,
		batchSize: batchSize,
		item:      item,
		apply:     apply,
		chans:     make([]chan msg[E], len(apply)),
		pending:   make([]*[]E, len(apply)),
	}
	for i := range f.chans {
		f.chans[i] = make(chan msg[E], queueDepth)
		f.pending[i] = f.newBuf()
	}
	f.wg.Add(len(f.chans))
	for i := range f.chans {
		go f.run(i)
	}
	return f
}

// run is the worker goroutine for shard i.
func (f *fanout[E]) run(i int) {
	defer f.wg.Done()
	for m := range f.chans[i] {
		if m.batch != nil {
			f.apply[i](*m.batch)
			*m.batch = (*m.batch)[:0]
			f.pool.Put(m.batch)
		}
		if m.ack != nil {
			close(m.ack)
		}
	}
}

// add routes one element; addBatch routes a slice (copying it into the
// per-shard buffers, so the caller keeps ownership).  Full buffers are
// handed to the owning worker.
func (f *fanout[E]) add(el E) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mustBeOpen()
	f.count.Add(1)
	i := int(f.item(el) % int64(len(f.chans)))
	*f.pending[i] = append(*f.pending[i], el)
	if len(*f.pending[i]) >= f.batchSize {
		f.dispatch(i)
	}
}

func (f *fanout[E]) addBatch(els []E) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mustBeOpen()
	f.count.Add(int64(len(els)))
	p := int64(len(f.chans))
	for _, el := range els {
		i := int(f.item(el) % p)
		*f.pending[i] = append(*f.pending[i], el)
		if len(*f.pending[i]) >= f.batchSize {
			f.dispatch(i)
		}
	}
}

// dispatch hands shard i's fill buffer to its queue and installs a fresh
// (usually recycled) buffer.
func (f *fanout[E]) dispatch(i int) {
	if len(*f.pending[i]) == 0 {
		return
	}
	f.chans[i] <- msg[E]{batch: f.pending[i]}
	f.pending[i] = f.newBuf()
}

func (f *fanout[E]) newBuf() *[]E {
	if v := f.pool.Get(); v != nil {
		return v.(*[]E)
	}
	buf := make([]E, 0, f.batchSize)
	return &buf
}

// flush hands every buffered element to its shard queue without waiting.
func (f *fanout[E]) flush() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mustBeOpen()
	f.flushLocked()
}

func (f *fanout[E]) flushLocked() {
	for i := range f.chans {
		f.dispatch(i)
	}
}

// drain flushes and blocks until every worker has applied everything
// queued so far.
func (f *fanout[E]) drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mustBeOpen()
	f.barrierLocked()
}

// query runs fn after a barrier, holding the lock throughout, so fn may
// read shard state directly: every element fed before the call is applied,
// the workers are idle on their queues, and no producer can slip new
// batches in while fn runs.
func (f *fanout[E]) query(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.barrierLocked()
	fn()
}

// barrierLocked makes every element fed so far visible to the caller: it
// flushes the fill buffers, then sends each worker an ack token and waits
// for all of them.  Each queue is FIFO with a single consumer, so an
// acked worker has applied every earlier batch; the ack also establishes
// the happens-before edge that lets the caller read shard state directly.
// After close the workers have drained and stopped, so reads are safe
// without a barrier.
func (f *fanout[E]) barrierLocked() {
	if f.closed {
		return
	}
	f.flushLocked()
	acks := make([]chan struct{}, len(f.chans))
	for i, ch := range f.chans {
		ack := make(chan struct{})
		acks[i] = ack
		ch <- msg[E]{ack: ack}
	}
	for _, ack := range acks {
		<-ack
	}
}

// close flushes, stops the workers, and waits for them to drain.
// Idempotent.
func (f *fanout[E]) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.flushLocked()
	for _, ch := range f.chans {
		close(ch)
	}
	f.wg.Wait()
	f.closed = true
}

// queueDepths samples the number of batches waiting in each shard queue —
// a load signal for operational dashboards.  It takes no barrier: the
// numbers are instantaneous and may be stale by the time they are read.
func (f *fanout[E]) queueDepths() []int {
	depths := make([]int, len(f.chans))
	for i, ch := range f.chans {
		depths[i] = len(ch)
	}
	return depths
}

func (f *fanout[E]) mustBeOpen() {
	if f.closed {
		panic("feww: " + f.name + " used after Close")
	}
}
