// Sharded concurrent processing: the DoS-detection workload through the
// batched engine.
//
// examples/dosdetect feeds a router log to one single-threaded instance,
// one edge at a time.  This example replays the same kind of workload —
// several machines under simultaneous attack — through feww.Engine: the
// target-address universe is partitioned across shards, each shard runs an
// independent insertion-only instance on its own goroutine, and batches of
// packets move between them instead of single edges.  Results() merges the
// shard outputs, so every victim is reported no matter which shard owns it,
// and a fixed seed reproduces the exact same report on every run.
//
// Run with: go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"runtime"

	"feww"
	"feww/internal/workload"
)

func main() {
	cfg := workload.DoSConfig{
		Targets:    20000, // address space of potential victims
		Sources:    2000,  // distinct source IPs
		Window:     256,   // time slots in the log window
		Victims:    3,     // machines actually under attack
		AttackReqs: 3000,  // requests each victim receives
		Background: 80000, // benign traffic
		Seed:       11,
	}
	trace, err := workload.NewDoS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router log: %d packets, %d potential targets\n", len(trace.Updates), cfg.Targets)
	fmt.Printf("ground truth victims: %v\n", trace.HeavyA)

	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: cfg.Targets, D: cfg.AttackReqs, Alpha: 2, Seed: 1},
		Shards: shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Printf("engine: %d shards, batch hand-off\n\n", eng.Shards())

	// Replay the log in batches, as a capture loop draining a ring buffer
	// would; A = target IP, B encodes (source IP, time slot).
	const batch = 4096
	buf := make([]feww.Edge, 0, batch)
	for _, u := range trace.Updates {
		buf = append(buf, feww.Edge{A: u.A, B: u.B})
		if len(buf) == batch {
			if err := eng.ProcessEdges(buf); err != nil {
				log.Fatal(err) // id outside [0, Targets), or engine closed
			}
			buf = buf[:0]
		}
	}
	if err := eng.ProcessEdges(buf); err != nil {
		log.Fatal(err)
	}

	// Queries read published shard views without stalling ingest; Drain
	// first so the report covers the complete log.
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}
	results := eng.Results()
	if len(results) == 0 {
		log.Fatal("no attack detected")
	}
	for _, nb := range results {
		if err := trace.Verify(nb.A, nb.Witnesses); err != nil {
			log.Fatalf("reported witnesses are not genuine: %v", err)
		}
		src, slot := nb.Witnesses[0]/cfg.Window, nb.Witnesses[0]%cfg.Window
		fmt.Printf("ALERT: target %d under attack — %d distinct (source, time) witnesses, first: source IP #%d at slot %d\n",
			nb.A, nb.Size(), src, slot)
	}
	fmt.Printf("\n%d victims reported, %d edges ingested, %d words of state across %d shards\n",
		len(results), eng.EdgesProcessed(), eng.SpaceWords(), eng.Shards())
}
