// The service lifecycle end to end, in one process: fewwd's ingest,
// checkpoint, crash, restore and query paths, driven through real HTTP.
//
// A first server ingests half of a Zipf frequent-items stream, writes a
// checkpoint, and is killed.  A second server is restored from the
// checkpoint file — the paper's "party i sends its memory state to party
// i+1" — and receives the rest of the stream.  The witnessed
// neighbourhood it serves is then verified against the ground truth and
// against an uninterrupted in-process run: same seed, byte-identical
// state, so the restart is invisible in the answer.
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"feww"
	"feww/internal/workload"
	"feww/server"
)

const (
	nItems = 2000
	length = 20000
	thresh = 200
)

func main() {
	inst := workload.ZipfItems(7, nItems, length, 1.3, thresh)
	fmt.Printf("stream: %d occurrences over %d items; %d items reach frequency %d\n",
		len(inst.Updates), nItems, len(inst.HeavyA), thresh)

	engCfg := feww.EngineConfig{
		Config: feww.Config{N: nItems, D: thresh, Alpha: 2, Seed: 42},
		Shards: 4,
	}
	ckpt := filepath.Join(os.TempDir(), "feww-service-example.ckpt")
	defer os.Remove(ckpt)

	// ---- Phase 1: serve, ingest half the stream, checkpoint, crash.
	srv1, url1, stop1 := serve(engCfg, ckpt)
	cl := &server.Client{Base: url1}
	cut := len(inst.Updates) / 2
	if _, err := cl.Ingest(nItems, length, inst.Updates[:cut]); err != nil {
		log.Fatal(err)
	}
	ck, err := cl.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: ingested %d updates over HTTP, checkpointed %d bytes, killing the server\n",
		cut, ck.Bytes)
	stop1()
	srv1.Backend().Close() // the "crash": only the checkpoint file survives

	// ---- Phase 2: restore from the checkpoint, finish the stream.
	f, err := os.Open(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	backend, err := server.RestoreBackend(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	srv2 := server.New(backend, server.Config{CheckpointPath: ckpt})
	url2, stop2 := listen(srv2)
	defer stop2()
	defer backend.Close()
	cl = &server.Client{Base: url2}
	fmt.Printf("phase 2: restored engine with %d elements, finishing the stream\n", backend.Processed())
	if _, err := cl.Ingest(nItems, length, inst.Updates[cut:]); err != nil {
		log.Fatal(err)
	}

	// Fetch the answer on the ?fresh=1 barrier path: the verification
	// below needs every replayed update reflected, not just the published
	// epochs' view of them.
	best, err := cl.BestFresh()
	if err != nil {
		log.Fatal(err)
	}
	if !best.Found {
		log.Fatal("no neighbourhood found")
	}
	fmt.Printf("served result: item %d with %d witnesses (target %d)\n",
		best.Neighbourhood.Vertex, best.Neighbourhood.Size, best.WitnessTarget)
	if err := inst.Verify(best.Neighbourhood.Vertex, best.Neighbourhood.Witnesses); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: every served witness is a real occurrence from the stream")

	// ---- The restart was invisible: an uninterrupted run ends in the
	// byte-identical state.
	ref, err := feww.NewEngine(engCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	for _, u := range inst.Updates {
		if err := ref.ProcessEdge(u.A, u.B); err != nil {
			log.Fatal(err)
		}
	}
	var refSnap, srvSnap bytes.Buffer
	if err := ref.Snapshot(&refSnap); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Snapshot(&srvSnap); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(refSnap.Bytes(), srvSnap.Bytes()) {
		log.Fatal("state diverged from the uninterrupted run")
	}
	fmt.Printf("checkpoint/restore exact: served state == uninterrupted state (%d bytes)\n", srvSnap.Len())
}

// serve builds a fresh engine server; listen mounts any server on a
// loopback port.  Both return a stop function.
func serve(cfg feww.EngineConfig, ckpt string) (*server.Server, string, func()) {
	eng, err := feww.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s := server.New(server.NewInsertOnlyBackend(eng), server.Config{CheckpointPath: ckpt})
	url, stop := listen(s)
	return s, url, stop
}

func listen(s *server.Server) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }
}
