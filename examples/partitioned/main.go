// Partitioned processing: the paper's communication protocols, run for
// real.
//
// Every lower bound in the paper (Theorems 4.1, 4.8, 6.4) works the same
// way: the stream is split among p parties, party i runs the streaming
// algorithm on its share and sends the *memory state* to party i+1, and the
// message length lower-bounds the algorithm's space.  With Snapshot /
// RestoreInsertOnly that message is a concrete byte string, so this example
// processes a stream in three independent shards — as three processes or
// machines would — and prints the actual message sizes.
//
// Run with: go run ./examples/partitioned
package main

import (
	"bytes"
	"fmt"
	"log"

	"feww"
	"feww/internal/workload"
)

func main() {
	const (
		n       = 50000
		d       = 900
		parties = 3
	)
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: n, M: 4 * n, Heavy: 1, HeavyDeg: d,
		NoiseEdges: 3 * n, Order: workload.Shuffled, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d edges, split across %d parties\n", len(inst.Updates), parties)

	// Party 1 starts fresh; each later party restores its predecessor's
	// snapshot — no other information crosses the boundary.
	var message []byte
	share := (len(inst.Updates) + parties - 1) / parties
	for p := 0; p < parties; p++ {
		var algo *feww.InsertOnly
		if p == 0 {
			algo, err = feww.NewInsertOnly(feww.Config{N: n, D: d, Alpha: 2, Seed: 1})
		} else {
			algo, err = feww.RestoreInsertOnly(bytes.NewReader(message))
		}
		if err != nil {
			log.Fatalf("party %d: %v", p+1, err)
		}

		lo, hi := p*share, (p+1)*share
		if hi > len(inst.Updates) {
			hi = len(inst.Updates)
		}
		for _, u := range inst.Updates[lo:hi] {
			algo.ProcessEdge(u.A, u.B)
		}

		var buf bytes.Buffer
		if err := algo.Snapshot(&buf); err != nil {
			log.Fatalf("party %d: %v", p+1, err)
		}
		message = buf.Bytes()
		fmt.Printf("party %d processed edges [%d, %d) and sends %d bytes\n",
			p+1, lo, hi, len(message))

		if p == parties-1 {
			nb, err := algo.Result()
			if err != nil {
				log.Fatalf("party %d: %v", p+1, err)
			}
			if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nparty %d outputs: item %d with %d verified witnesses\n",
				p+1, nb.A, nb.Size())
			fmt.Printf("(Theorem 4.8: any such protocol must send Omega(d n^(1/(p-1)) / alpha^2) bits)\n")
		}
	}
}
