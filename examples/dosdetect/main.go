// DoS detection: the paper's third motivating example (§1).
//
// A router logs (target IP, source IP, timestamp) per forwarded packet.  A
// classical frequent-elements sketch can name the machine under attack; the
// witness version additionally reports *when* the attack traffic arrived
// and *from where* — the (source, time) pairs — which is what an operator
// needs for rate-limiting or forensics.
//
// Run with: go run ./examples/dosdetect
package main

import (
	"fmt"
	"log"

	"feww"
	"feww/internal/workload"
)

func main() {
	cfg := workload.DoSConfig{
		Targets:    5000,  // address space of potential victims
		Sources:    2000,  // distinct source IPs
		Window:     256,   // time slots in the log window
		Victims:    2,     // machines actually under attack
		AttackReqs: 3000,  // requests each victim receives
		Background: 40000, // benign traffic
		Seed:       11,
	}
	trace, err := workload.NewDoS(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router log: %d packets, %d potential targets\n", len(trace.Updates), cfg.Targets)
	fmt.Printf("ground truth victims: %v\n", trace.HeavyA)

	algo, err := feww.NewInsertOnly(feww.Config{
		N: cfg.Targets, D: cfg.AttackReqs, Alpha: 2, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range trace.Updates {
		// A = target IP; B encodes (source IP, time slot).
		algo.ProcessEdge(u.A, u.B)
	}

	nb, err := algo.Result()
	if err != nil {
		log.Fatalf("no attack detected: %v", err)
	}
	if err := trace.Verify(nb.A, nb.Witnesses); err != nil {
		log.Fatalf("reported witnesses are not genuine: %v", err)
	}

	fmt.Printf("\nALERT: target %d is receiving attack traffic\n", nb.A)
	fmt.Printf("evidence: %d distinct (source, time) pairs, e.g.:\n", nb.Size())
	for _, w := range nb.Witnesses[:5] {
		src, slot := w/cfg.Window, w%cfg.Window
		fmt.Printf("  source IP #%d at time slot %d\n", src, slot)
	}
	fmt.Printf("space: %d words for a %d-packet log\n", algo.SpaceWords(), len(trace.Updates))
}
