// Paper figures: reproduce the worked examples of Figures 1, 2 and 3 as
// executable constructions (experiments F1-F3), printing the same instances
// the paper draws and verifying every property its captions state.
//
// Run with: go run ./examples/paperfigures
package main

import (
	"fmt"
	"log"
	"os"

	"feww/internal/experiments"
)

func main() {
	cfg := experiments.Config{Seed: 1, Quick: true}
	for _, id := range []string{"F1", "F2", "F3"} {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		if err := tab.Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
