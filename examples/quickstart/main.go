// Quickstart: find a frequent element together with proof of its frequency.
//
// A classical heavy-hitters sketch would tell you *that* item 7 is hot; the
// witness version also hands you d/alpha of the actual occurrences.  Here
// the witness attached to each occurrence is its timestamp, so the output
// is "item X is frequent, and here are times it appeared".
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"feww"
	"feww/internal/xrand"
)

func main() {
	const (
		n     = 100000 // item universe
		d     = 400    // frequency threshold
		alpha = 2      // approximation: report >= d/alpha = 200 witnesses
	)

	algo, err := feww.NewInsertOnly(feww.Config{N: n, D: d, Alpha: alpha, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Synthesise a stream: uniform background traffic (no item repeats more
	// than a handful of times) plus one genuinely hot item, id 4242,
	// appearing d times.
	rng := xrand.New(7)
	timestamp := int64(0)
	emit := func(item int64) {
		algo.ProcessEdge(item, timestamp)
		timestamp++
	}
	for i := 0; i < 50000; i++ {
		emit(rng.Int64n(n))
		if i%125 == 0 {
			emit(4242)
		}
	}

	nb, err := algo.Result()
	if err != nil {
		log.Fatalf("no frequent element found: %v", err)
	}
	fmt.Printf("frequent item: %d\n", nb.A)
	fmt.Printf("witnesses (timestamps of occurrences): %d collected, target %d\n",
		nb.Size(), algo.WitnessTarget())
	fmt.Printf("first occurrences: %v ...\n", nb.Witnesses[:8])
	fmt.Printf("space used: %d words (stream length %d)\n", algo.SpaceWords(), timestamp)
}
