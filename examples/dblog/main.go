// Database log auditing: the paper's first motivating example (§1), in the
// turnstile (insertion-deletion) model.
//
// A database log records which user updated which entry at which commit.
// Entries whose log records are compacted away become deletions, so the
// stream is insert/delete — the regime where the paper proves a strong
// separation (Theorem 5.4 vs Theorem 6.4).  The algorithm reports a hot
// entry together with the (user, commit) records proving it is hot.
//
// Run with: go run ./examples/dblog
package main

import (
	"fmt"
	"log"

	"feww"
	"feww/internal/stream"
	"feww/internal/workload"
)

func main() {
	const (
		entries = 200 // DB entries
		users   = 64
		commits = 64
		hotRate = 40 // updates the hot entry receives
	)
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: entries, M: users * commits,
			Heavy: 1, HeavyDeg: hotRate,
			NoiseEdges: 400, Order: workload.Shuffled, Seed: 5,
		},
		ChurnEdges: 800, // log records written and later compacted away
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := stream.Summarize(inst.Updates)
	fmt.Printf("log: %d records (%d deletions), %d live at the end\n",
		len(inst.Updates), stats.Deletes, stats.LiveEdges)
	fmt.Printf("ground truth hot entry: %v\n", inst.HeavyA)

	algo, err := feww.NewInsertDelete(feww.TurnstileConfig{
		N: entries, M: users * commits, D: hotRate, Alpha: 2,
		Seed: 1, ScaleFactor: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range inst.Updates {
		if u.Op == stream.Delete {
			algo.Delete(u.A, u.B)
		} else {
			algo.Insert(u.A, u.B)
		}
	}

	nb, err := algo.Result()
	if err != nil {
		log.Fatalf("no hot entry found: %v", err)
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		log.Fatalf("reported witnesses are not genuine: %v", err)
	}

	fmt.Printf("\nhot entry: %d, %d certified update records:\n", nb.A, nb.Size())
	for _, w := range nb.Witnesses[:5] {
		user, commit := w/commits, w%commits
		fmt.Printf("  updated by user %d at commit %d\n", user, commit)
	}
	fmt.Printf("space: %d words\n", algo.SpaceWords())
}
