// Distinct heavy hitters over a raw (duplicated) log: the paper's DoS
// motivation [22] in its full form.
//
// An attack is a target requested by many *distinct* sources — raw request
// counts mislead, because one chatty benign client can outnumber a botnet.
// FEwW assumes a simple graph (each (target, source) edge once), but raw
// logs repeat.  This example deduplicates the multigraph log with a
// space-bounded Bloom filter before the FEwW algorithm, so every witness is
// a distinct attacking source, and uses a KMV sketch to confirm the scale
// of the distinct traffic.
//
// Run with: go run ./examples/distinctsources
package main

import (
	"fmt"
	"log"

	"feww"
	"feww/internal/distinct"
	"feww/internal/xrand"
)

func main() {
	const (
		targets  = 2000
		sources  = 5000
		nVictims = 1 // one machine under attack
		botnet   = 800
	)
	rng := xrand.New(42)

	// Raw log: a botnet of `botnet` distinct sources hits victim 77, each
	// source retrying ~5 times (duplicates!); meanwhile one benign client
	// polls target 12 thousands of times (a raw-count heavy hitter that
	// must NOT be reported), plus uniform background noise.
	type req struct{ target, source int64 }
	var raw []req
	for s := 0; s < botnet; s++ {
		for r := 0; r < 5; r++ {
			raw = append(raw, req{77, int64(s)})
		}
	}
	for i := 0; i < 5000; i++ {
		raw = append(raw, req{12, 999}) // one source, hammering
	}
	for i := 0; i < 30000; i++ {
		raw = append(raw, req{rng.Int64n(targets), rng.Int64n(sources)})
	}
	rng.Shuffle(len(raw), func(i, j int) { raw[i], raw[j] = raw[j], raw[i] })
	fmt.Printf("raw log: %d requests (with duplicates)\n", len(raw))

	// Dedup + detect + estimate, one pass.
	filter := distinct.NewBloomFilter(rng.Split(), sources, 60000, 0.01)
	algo, err := feww.NewInsertOnly(feww.Config{
		N: targets, D: botnet, Alpha: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	f0 := distinct.NewKMV(rng.Split(), 256)
	kept := 0
	for _, r := range raw {
		key := uint64(r.target)*sources + uint64(r.source)
		f0.Add(key)
		if !filter.Distinct(r.target, r.source) {
			continue // duplicate (target, source) pair — not a new witness
		}
		kept++
		algo.ProcessEdge(r.target, r.source)
	}
	fmt.Printf("after dedup: %d distinct (target, source) pairs (KMV estimate %.0f)\n",
		kept, f0.Estimate())

	nb, err := algo.Result()
	if err != nil {
		log.Fatalf("no distinct-heavy target found: %v", err)
	}
	fmt.Printf("\nALERT: target %d contacted by %d distinct sources\n", nb.A, nb.Size())
	fmt.Printf("first attacking sources: %v ...\n", nb.Witnesses[:8])
	fmt.Printf("note: target 12 received 5000 requests but from one source — correctly ignored\n")
	fmt.Printf("space: filter %d + algorithm %d words\n", filter.SpaceWords(), algo.SpaceWords())
}
