// Influencer detection: the paper's second motivating example (§1) and the
// Star Detection problem (Problem 2).
//
// Given a stream of friendship updates, find a node of (approximately)
// maximum degree together with its neighbours — the influencer *and* a
// certified sample of followers.  Lemma 3.3's (1+eps) guess ladder lifts
// the FEwW algorithm to general graphs without knowing the maximum degree
// in advance.
//
// Run with: go run ./examples/influencer
package main

import (
	"fmt"
	"log"
	"sort"

	"feww"
	"feww/internal/workload"
)

func main() {
	const vertices = 20000
	ups := workload.SocialGraph(3, vertices, 5) // preferential attachment
	fmt.Printf("friendship stream: %d edges over %d users\n", len(ups), vertices)

	sd, err := feww.NewStarDetector(feww.StarConfig{
		N: vertices, Alpha: 2, Eps: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range ups {
		// One call per undirected friendship; the detector mirrors the edge
		// into both orientations internally (Lemma 3.3's double cover).
		if err := sd.ProcessEdge(u.A, u.B); err != nil {
			log.Fatal(err)
		}
	}

	nb, err := sd.Result()
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for comparison.
	deg := make(map[int64]int64)
	for _, u := range ups {
		deg[u.A]++
		deg[u.B]++
	}
	var best int64
	for v, d := range deg {
		if d > deg[best] {
			best = v
		}
	}

	followers := append([]int64(nil), nb.Witnesses...)
	sort.Slice(followers, func(i, j int) bool { return followers[i] < followers[j] })
	show := followers
	if len(show) > 10 {
		show = show[:10]
	}
	fmt.Printf("\ndetected influencer: user %d with %d certified followers\n", nb.A, nb.Size())
	fmt.Printf("sample followers: %v ...\n", show)
	fmt.Printf("true max degree:  user %d with %d friends\n", best, deg[best])
	fmt.Printf("approximation:    %.2fx (guarantee: (1+0.5)*2 = 3x)\n",
		float64(deg[best])/float64(nb.Size()))
	fmt.Printf("space: %d words\n", sd.SpaceWords())
}
