package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"feww/server"
)

// ReconcilerConfig tunes the autonomous failover loop.
type ReconcilerConfig struct {
	// Interval between reconcile ticks (default 1s).
	Interval time.Duration
	// FailAfter is how many consecutive probe failures mark a replica
	// failed (default 3).  One means a single missed probe fails the
	// replica — fast failover, but a GC pause or dropped packet triggers
	// a needless re-seed.
	FailAfter int
	// ProbeTimeout bounds each health probe (default 2s).  Probes use
	// their own short deadline instead of the member timeout so a stalled
	// node is detected in seconds, not after a 30s request timeout.
	ProbeTimeout time.Duration
}

// Reconciler is the gateway's autonomous failover loop.  Each tick it
// probes every replica and spare, and per group:
//
//  1. marks replicas failed after FailAfter consecutive probe failures
//     (an ingest-stream write error marks them failed immediately,
//     without the reconciler — see Gateway.handleIngest);
//  2. if the primary is failed, promotes the live probe-healthy replica
//     holding the most elements — replicas are fanned-out copies, so the
//     element count only differs by windows a failed stream missed;
//  3. if no replica is live at all, promotes a probe-healthy failed
//     replica anyway ("promote-degraded"): a node resurrected from its
//     checkpoint is better than refusing writes forever, but windows
//     accepted after its checkpoint are lost, so the decision is logged
//     as lossy;
//  4. re-seeds failed-but-reachable replicas from the primary: the
//     primary's snapshot (the paper's state-as-message object) is shipped
//     into the replica under the group's exclusive ingest lock, so the
//     seed is an exact prefix of the accepted stream and the replica
//     rejoins the fan-out before the next window;
//  5. while the group is below strength, adopts a probe-healthy spare by
//     the same re-seed, and retires dead unreachable replicas back to the
//     spare pool once the group is whole again.
//
// Every action is recorded in the gateway's decision log (GET
// /reconciler) with a timestamp and cause, so a failover can be audited
// after the fact.
type Reconciler struct {
	g        *Gateway
	cfg      ReconcilerConfig
	stopOnce sync.Once
	stopc    chan struct{}
	donec    chan struct{}
}

// StartReconciler starts the failover loop and returns it.  If one is
// already running it is returned unchanged.
func (g *Gateway) StartReconciler(cfg ReconcilerConfig) *Reconciler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	g.reconMu.Lock()
	defer g.reconMu.Unlock()
	if g.recon != nil {
		return g.recon
	}
	r := &Reconciler{g: g, cfg: cfg, stopc: make(chan struct{}), donec: make(chan struct{})}
	g.recon = r
	go r.run()
	return r
}

// Stop halts the loop and waits for the in-flight tick to finish.  It
// is idempotent: repeated or concurrent Stops all wait for the same
// shutdown.
func (r *Reconciler) Stop() {
	r.stopOnce.Do(func() { close(r.stopc) })
	<-r.donec
	r.g.reconMu.Lock()
	if r.g.recon == r {
		r.g.recon = nil
	}
	r.g.reconMu.Unlock()
}

func (r *Reconciler) run() {
	defer close(r.donec)
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-ticker.C:
			r.tick()
		}
	}
}

// probeResult is one replica's health probe outcome for a tick.
type probeResult struct {
	ok  bool
	h   server.HealthResponse
	err error
}

// probe checks one node with the reconciler's own short deadline.  A
// fresh client per probe keeps the member client's longer timeout (and
// its in-flight requests) out of the detection path.
func (r *Reconciler) probe(base string) (server.HealthResponse, error) {
	cl := &server.Client{Base: base, Timeout: r.cfg.ProbeTimeout}
	h, err := cl.Health()
	if err != nil {
		return h, err
	}
	if !h.Serving {
		return h, fmt.Errorf("draining")
	}
	return h, nil
}

func (r *Reconciler) tick() {
	g := r.g

	// Probe everything concurrently first; decisions are taken
	// sequentially against the settled results.
	type target struct {
		gr  *group // nil for spares
		rep *replica
	}
	var targets []target
	for _, gr := range g.groups {
		reps, _ := gr.snapshot()
		for _, rep := range reps {
			targets = append(targets, target{gr: gr, rep: rep})
		}
	}
	for _, sp := range g.spareList() {
		targets = append(targets, target{rep: sp})
	}
	results := make([]probeResult, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t target) {
			defer wg.Done()
			h, err := r.probe(t.rep.client().Base)
			pr := probeResult{h: h, err: err}
			if err == nil {
				if t.gr != nil {
					pr.err = g.verifyMember(h, t.gr.rng)
					pr.ok = pr.err == nil
				} else {
					pr.ok = true
				}
			}
			results[i] = pr
		}(i, t)
	}
	wg.Wait()
	probes := make(map[*replica]probeResult, len(targets))
	for i, t := range targets {
		probes[t.rep] = results[i]
	}

	for _, gr := range g.groups {
		reps, _ := gr.snapshot()

		// 1. Probe bookkeeping: FailAfter consecutive failures fail the
		// replica.  (fails is reconciler-owned; ingest-path failures skip
		// it and CAS the state directly.)
		for _, rep := range reps {
			pr := probes[rep]
			if pr.ok {
				rep.fails = 0
				continue
			}
			rep.fails++
			if rep.fails >= r.cfg.FailAfter && rep.markFailed() {
				g.recordDecision("fail", gr, rep.client().Base,
					fmt.Sprintf("%d consecutive probe failures, last: %v", rep.fails, pr.err))
			}
		}

		// 2. Dead primary: promote the best live replica — max element
		// count, because a replica that missed windows (failed then
		// re-seeded mid-request) can only be behind, never ahead.
		prim := gr.primaryReplica()
		if !prim.live() {
			var best *replica
			var bestElems int64 = -1
			for _, rep := range reps {
				pr := probes[rep]
				if rep.live() && pr.ok && pr.h.Elements > bestElems {
					best, bestElems = rep, pr.h.Elements
				}
			}
			if best != nil {
				if gr.promote(best) {
					g.recordDecision("promote", gr, best.client().Base,
						fmt.Sprintf("primary %s failed; promoting replica with %d elements", prim.client().Base, bestElems))
					prim = best
				}
			} else {
				// 3. Nothing live: promote a reachable failed replica so the
				// range serves again — e.g. the dead node restarted from its
				// checkpoint.  Stale copies differ only by the windows each
				// missed, so the one holding the most elements loses the
				// least — the same rule as live promotion.  Anything past
				// that state is gone; say so in the log.
				var stale *replica
				var staleElems int64 = -1
				for _, rep := range reps {
					if pr := probes[rep]; pr.ok && pr.h.Elements > staleElems {
						stale, staleElems = rep, pr.h.Elements
					}
				}
				if stale != nil && gr.promote(stale) {
					stale.fails = 0
					stale.markLive()
					g.recordDecision("promote-degraded", gr, stale.client().Base,
						fmt.Sprintf("no live replica for range %s; promoting reachable stale replica with %d elements — windows since its last state are lost", gr.rng, staleElems))
					prim = stale
				}
			}
		}

		// 4. Re-seed failed-but-reachable replicas from a healthy live
		// primary.
		if prim.live() && probes[prim].ok {
			for _, rep := range reps {
				if rep == prim || rep.live() || !probes[rep].ok {
					continue
				}
				if size, err := r.reseed(gr, prim, rep, false); err != nil {
					g.recordDecision("reseed-failed", gr, rep.client().Base, err.Error())
				} else {
					g.recordDecision("reseed", gr, rep.client().Base,
						fmt.Sprintf("re-seeded from %s (%d snapshot bytes)", prim.client().Base, size))
				}
			}

			// 5. Below strength: adopt a probe-healthy spare.
			if gr.liveCount() < g.cfg.Replicas {
				for _, sp := range g.spareList() {
					if !probes[sp].ok || !g.takeSpare(sp) {
						continue
					}
					if size, err := r.reseed(gr, prim, sp, true); err != nil {
						g.addSpare(sp)
						g.recordDecision("adopt-failed", gr, sp.client().Base, err.Error())
					} else {
						g.recordDecision("adopt-spare", gr, sp.client().Base,
							fmt.Sprintf("seeded from %s (%d snapshot bytes)", prim.client().Base, size))
					}
					break
				}
			}
		}

		// Retire dead unreachable replicas once the group is back at
		// strength: their nodes may come back someday, and the spare pool
		// is where a returning node becomes adoptable capacity again.
		if gr.liveCount() >= g.cfg.Replicas {
			for _, rep := range reps {
				if rep.live() || probes[rep].ok {
					continue
				}
				if gr.remove(rep) {
					g.addSpare(rep)
					g.recordDecision("retire", gr, rep.client().Base, "failed and unreachable; retired to the spare pool")
				}
			}
		}
	}
}

// reseed ships the primary's snapshot into rep under the group's
// exclusive ingest lock: the lock waits out in-flight streaming requests
// (each holds it shared end to end), so the snapshot is an exact prefix
// of the accepted stream and — for adopt, where rep joins the group
// before the lock is released — no window can flow between the seed and
// the join.
func (r *Reconciler) reseed(gr *group, prim, rep *replica, adopt bool) (int64, error) {
	gr.ingestMu.Lock()
	defer gr.ingestMu.Unlock()
	h, size, err := prim.client().ShipSnapshot(rep.client())
	if err != nil {
		return 0, err
	}
	if err := r.g.verifyMember(h, gr.rng); err != nil {
		return 0, fmt.Errorf("restored state does not match range %s: %w", gr.rng, err)
	}
	if adopt {
		gr.add(rep)
	}
	rep.fails = 0
	rep.markLive()
	return size, nil
}

// ReplicaStatus is one replica's row in the /reconciler payload.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Primary bool   `json:"primary"`
	State   string `json:"state"`
}

// GroupStatus is one replica group's row in the /reconciler payload.
type GroupStatus struct {
	Group    int             `json:"group"`
	Range    Range           `json:"range"`
	Primary  string          `json:"primary"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// ReconcilerStatus is the GET /reconciler payload: the loop's tunables,
// the live membership picture, the spare pool, and the retained decision
// log.
type ReconcilerStatus struct {
	Running             bool          `json:"running"`
	IntervalSeconds     float64       `json:"interval_seconds,omitempty"`
	FailAfter           int           `json:"fail_after,omitempty"`
	ProbeTimeoutSeconds float64       `json:"probe_timeout_seconds,omitempty"`
	Replicas            int           `json:"replicas"`
	Groups              []GroupStatus `json:"groups"`
	Spares              []string      `json:"spares"`
	Decisions           []Decision    `json:"decisions"`
}

// Status reports the reconciler view of the cluster.  It is meaningful
// (groups, states, ingest-failure decisions) even when no reconciler
// loop is running.
func (g *Gateway) Status() ReconcilerStatus {
	st := ReconcilerStatus{Replicas: g.cfg.Replicas, Spares: []string{}, Decisions: g.Decisions()}
	g.reconMu.Lock()
	if r := g.recon; r != nil {
		st.Running = true
		st.IntervalSeconds = r.cfg.Interval.Seconds()
		st.FailAfter = r.cfg.FailAfter
		st.ProbeTimeoutSeconds = r.cfg.ProbeTimeout.Seconds()
	}
	g.reconMu.Unlock()
	for _, gr := range g.groups {
		reps, prim := gr.snapshot()
		gs := GroupStatus{Group: gr.idx, Range: gr.rng, Primary: prim.client().Base}
		for _, rep := range reps {
			gs.Replicas = append(gs.Replicas, ReplicaStatus{
				URL: rep.client().Base, Primary: rep == prim, State: stateName(rep.state.Load()),
			})
		}
		st.Groups = append(st.Groups, gs)
	}
	for _, sp := range g.spareList() {
		st.Spares = append(st.Spares, sp.client().Base)
	}
	return st
}

func (g *Gateway) handleReconciler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Status())
}
