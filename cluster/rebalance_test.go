package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"feww"
	"feww/server"
)

// postRebalance drives POST /rebalance and returns the decoded response
// (for wantCode 200) or nil.
func postRebalance(t *testing.T, gwURL string, req RebalanceRequest, wantCode int) *RebalanceResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(gwURL+"/rebalance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("rebalance: HTTP %d, want %d", resp.StatusCode, wantCode)
	}
	if wantCode != http.StatusOK {
		return nil
	}
	var out RebalanceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestClusterRebalanceAndNodeReplacement covers the two membership-change
// paths end to end against a single-engine reference:
//
//   - live rebalance ("ship"): mid-stream, range 1 moves to a brand-new
//     node by shipping the donor's snapshot through the gateway into the
//     recipient's POST /restore — the paper's state-as-message made
//     operational across nodes.  Fresh results must be unchanged by the
//     move, and after the rest of the stream lands on the new layout the
//     cluster must still match the single engine byte for byte.
//
//   - node replacement ("adopt"): a member is killed, the gateway reports
//     the degradation, a replacement is restored from the dead node's
//     checkpoint file, and adopting it reconverges the cluster to the
//     same fresh results as before the kill.
func TestClusterRebalanceAndNodeReplacement(t *testing.T) {
	const n, d = 300, 12
	ref, gw, nodes := startInsertCluster(t, n, 3, d)

	ups := interleavedInserts(map[int64]int{
		10: 20, 130: 30, 250: 14, 40: 13,
		7: 3, 90: 3, 140: 3, 205: 3, 280: 3,
	})
	cut := len(ups) / 2
	postStream(t, ref.ts.URL, n, 1<<20, ups[:cut])
	postStream(t, gw.URL, n, 1<<20, ups[:cut])
	before := get(t, gw.URL+"/results?fresh=1", http.StatusOK)

	// --- Live rebalance: move range 1 onto a fresh node. ---------------
	// The recipient starts with a placeholder engine; POST /restore
	// replaces it wholesale with the donor's state.
	placeholder, err := feww.NewEngine(feww.EngineConfig{Config: feww.Config{N: 1, D: 1, Alpha: 1, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	recipient := startNode(t, server.NewInsertOnlyBackend(placeholder), t.TempDir(), 50)
	resp := postRebalance(t, gw.URL, RebalanceRequest{Range: 1, Target: recipient.ts.URL}, http.StatusOK)
	if resp.SnapshotBytes <= 0 {
		t.Fatalf("ship rebalance moved %d snapshot bytes", resp.SnapshotBytes)
	}

	// The move must not change any answer...
	after := get(t, gw.URL+"/results?fresh=1", http.StatusOK)
	if !bytes.Equal(before, after) {
		t.Fatalf("rebalance changed fresh results\nbefore: %s\nafter:  %s", before, after)
	}
	// ...and the cluster must be fully served without the old node.
	nodes[1].close()
	get(t, gw.URL+"/healthz", http.StatusOK)

	// Finish the stream on the new layout; the cluster still matches the
	// single engine bit for bit.
	postStream(t, ref.ts.URL, n, 1<<20, ups[cut:])
	postStream(t, gw.URL, n, 1<<20, ups[cut:])
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
	// /best ties at the witness cap across the four heavies, where the
	// cross-member tie-break (smallest vertex id) legitimately differs
	// from the single engine's in-process shard order — byte-identity for
	// /best is pinned by the unique-best equivalence test.  Here it must
	// be the lowest-id heavy at full size.
	var best server.BestResponse
	if err := json.Unmarshal(get(t, gw.URL+"/best?fresh=1", http.StatusOK), &best); err != nil {
		t.Fatal(err)
	}
	if !best.Found || best.Neighbourhood.Vertex != 10 || best.Neighbourhood.Size != d {
		t.Fatalf("post-rebalance best = %+v, want vertex 10 at size %d", best.Neighbourhood, d)
	}

	// --- Node replacement: kill, restore from checkpoint, adopt. -------
	if _, err := http.Post(gw.URL+"/checkpoint", "", nil); err != nil {
		t.Fatal(err)
	}
	complete := get(t, gw.URL+"/results?fresh=1", http.StatusOK)

	nodes[0].close() // the kill: only the checkpoint file survives
	get(t, gw.URL+"/healthz", http.StatusServiceUnavailable)
	get(t, gw.URL+"/best?fresh=1", http.StatusBadGateway)

	f, err := os.Open(nodes[0].ckpt)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := server.RestoreBackend(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	replacement := startNode(t, restored, t.TempDir(), 60)

	// Adopting a node whose engine does not match the range is refused.
	tiny, err := feww.NewEngine(feww.EngineConfig{Config: feww.Config{N: 5, D: d, Alpha: 1, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	mismatched := startNode(t, server.NewInsertOnlyBackend(tiny), t.TempDir(), 61)
	postRebalance(t, gw.URL, RebalanceRequest{Range: 0, Target: mismatched.ts.URL, Mode: "adopt"}, http.StatusConflict)

	// Shipping onto a node that already serves ANOTHER range is refused
	// outright: restoring into it would destroy that range's state, and
	// with equal-length ranges no health check could tell afterwards.
	postRebalance(t, gw.URL, RebalanceRequest{Range: 0, Target: recipient.ts.URL}, http.StatusConflict)

	postRebalance(t, gw.URL, RebalanceRequest{Range: 0, Target: replacement.ts.URL, Mode: "adopt"}, http.StatusOK)
	get(t, gw.URL+"/healthz", http.StatusOK)

	reconverged := get(t, gw.URL+"/results?fresh=1", http.StatusOK)
	if !bytes.Equal(complete, reconverged) {
		t.Fatalf("kill + restore + adopt diverged\nbefore kill: %s\nafter:       %s", complete, reconverged)
	}
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
}
