package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"testing"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// The equivalence tests pin the cluster's central correctness claim: a
// gateway over k range members answers fresh queries byte-identically to
// one fewwd node running a single engine over the whole universe — at
// the raw HTTP level, same response bytes for the same stream bytes.
//
// Byte-identity across *different* partitions (the members run different
// seeds and shard counts than the reference on purpose) holds because the
// streams below keep every instance in the deterministic regime, where
// the answer depends only on each item's own sub-stream:
//
//   - Insert-only with alpha = 1: the reservoir size s = ceil(n ln n) is
//     at least the instance universe, so every candidate is admitted and
//     none evicted — no randomness touches the result, and an item's
//     witnesses are the first ceil(d/alpha) of its own sub-stream, which
//     ingest routing preserves per item no matter where range boundaries
//     fall.
//   - Turnstile with every vertex in the sampled set (small universes
//     clamp the vertex sample to everything) and the planted vertex
//     holding *exactly* d2 live witnesses: any battery that certifies it
//     must report all d2 of them, sorted — the same bytes under any seed.
//
// Outside this regime the reservoir and sampler randomness is
// partition-dependent and cluster answers are equivalent in distribution
// but not bitwise; docs/ARCHITECTURE.md states that boundary.

func ins(a, b int64) feww.Update { return feww.Update{Edge: feww.Edge{A: a, B: b}, Op: feww.Insert} }
func del(a, b int64) feww.Update { return feww.Update{Edge: feww.Edge{A: a, B: b}, Op: feww.Delete} }

// interleavedInserts builds an insertion stream: each vertex v receives
// degs[v] edges with distinct witnesses, emitted round-robin across the
// vertices in ascending id order — so every vertex's edges are spread
// through the whole stream and each /ingest request mixes all ranges.
func interleavedInserts(degs map[int64]int) []feww.Update {
	vs := make([]int64, 0, len(degs))
	for v := range degs {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	var out []feww.Update
	for k := 0; ; k++ {
		emitted := false
		for _, v := range vs {
			if k < degs[v] {
				out = append(out, ins(v, v*1009+int64(k)))
				emitted = true
			}
		}
		if !emitted {
			return out
		}
	}
}

// postStream sends one encoded FEWW stream to url's /ingest and fails the
// test on any error.
func postStream(t *testing.T, url string, n, m int64, ups []feww.Update) {
	t.Helper()
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, m, ups); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/ingest", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s/ingest: HTTP %d", url, resp.StatusCode)
	}
}

// freshEqual asserts that the reference node and the gateway return
// byte-identical bodies for path?fresh=1, returning the shared bytes.
func freshEqual(t *testing.T, ref, gw *httptestURL, path string) []byte {
	t.Helper()
	want := get(t, ref.url+path+"?fresh=1", http.StatusOK)
	got := get(t, gw.url+path+"?fresh=1", http.StatusOK)
	if !bytes.Equal(want, got) {
		t.Fatalf("%s?fresh=1 diverged\nsingle engine: %s\ncluster:       %s", path, want, got)
	}
	return got
}

// httptestURL lets freshEqual take either a node or a gateway server.
type httptestURL struct{ url string }

func TestClusterInsertOnlyEquivalence(t *testing.T) {
	const n, d = 300, 12

	t.Run("unique-best", func(t *testing.T) {
		ref, gw, _ := startInsertCluster(t, n, 3, d)
		// One vertex past the threshold (witnesses cap at d), two partial
		// collectors with distinct sizes, background noise in every range.
		ups := interleavedInserts(map[int64]int{
			25: 40, 130: 11, 270: 9,
			3: 2, 55: 2, 160: 2, 201: 2, 299: 2,
		})
		postStream(t, ref.ts.URL, n, 1<<20, ups)
		postStream(t, gw.URL, n, 1<<20, ups)

		body := freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
		var best server.BestResponse
		if err := json.Unmarshal(body, &best); err != nil {
			t.Fatal(err)
		}
		if !best.Found || best.Neighbourhood.Vertex != 25 || best.Neighbourhood.Size != d {
			t.Fatalf("best = %s, want vertex 25 at size %d", body, d)
		}
		freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
	})

	t.Run("multi-heavy-results", func(t *testing.T) {
		ref, gw, _ := startInsertCluster(t, n, 3, d)
		// Four vertices over the threshold spread across all three ranges:
		// the merged /results must carry all of them in global id order.
		ups := interleavedInserts(map[int64]int{
			10: 20, 40: 13, 110: 30, 250: 14,
			7: 3, 90: 3, 140: 3, 205: 3, 280: 3,
		})
		// Split the stream over several requests so the gateway's
		// range-splitting of mixed batches is exercised more than once.
		for lo := 0; lo < len(ups); lo += 29 {
			hi := min(lo+29, len(ups))
			postStream(t, ref.ts.URL, n, 1<<20, ups[lo:hi])
			postStream(t, gw.URL, n, 1<<20, ups[lo:hi])
		}

		body := freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
		var nbs []server.NeighbourhoodJSON
		if err := json.Unmarshal(body, &nbs); err != nil {
			t.Fatal(err)
		}
		if len(nbs) != 4 {
			t.Fatalf("results = %s, want the 4 planted heavy vertices", body)
		}
		for i, want := range []int64{10, 40, 110, 250} {
			if nbs[i].Vertex != want || nbs[i].Size != d {
				t.Errorf("results[%d] = vertex %d size %d, want vertex %d size %d",
					i, nbs[i].Vertex, nbs[i].Size, want, d)
			}
		}
	})
}

func TestClusterTurnstileEquivalence(t *testing.T) {
	const (
		n     = 48
		m     = 128
		d     = 4
		scale = 0.3
	)

	dir := t.TempDir()
	refEng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
		TurnstileConfig: feww.TurnstileConfig{N: n, M: m, D: d, Alpha: 1, Seed: 42, ScaleFactor: scale},
		Shards:          2, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := startNode(t, server.NewTurnstileBackend(refEng), dir, 99)

	ranges := Split(n, 3)
	urls := make([]string, len(ranges))
	for j, rng := range ranges {
		eng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
			TurnstileConfig: feww.TurnstileConfig{N: rng.Len(), M: m, D: d, Alpha: 1, Seed: uint64(7 + j), ScaleFactor: scale},
			Shards:          1, BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		urls[j] = startNode(t, server.NewTurnstileBackend(eng), dir, j).ts.URL
	}
	g, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)

	// The planted vertex holds exactly d live witnesses at the end, so any
	// instance that certifies it must report exactly this set (sorted).
	// Everything else stays strictly below d live witnesses, and the churn
	// pairs cancel inside the linear sketches.
	heavy, heavyWitnesses := int64(25), []int64{3, 50, 77, 120}
	var ups []feww.Update
	for k, b := range heavyWitnesses {
		ups = append(ups, ins(heavy, b))
		// Interleave noise between the heavy edges: three live witnesses
		// per noise vertex, spread across all ranges.
		for _, v := range []int64{1, 8, 17, 30, 40, 47} {
			if k < 3 {
				ups = append(ups, ins(v, (v*7+int64(k))%m))
			}
		}
	}
	// Churn: inserted then deleted, net zero in every sketch.
	for _, v := range []int64{5, 20, 36} {
		ups = append(ups, ins(v, v+60), ins(v, v+70))
	}
	for _, v := range []int64{5, 20, 36} {
		ups = append(ups, del(v, v+60), del(v, v+70))
	}

	postStream(t, ref.ts.URL, n, m, ups)
	postStream(t, gw.URL, n, m, ups)

	body := freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
	var best server.BestResponse
	if err := json.Unmarshal(body, &best); err != nil {
		t.Fatal(err)
	}
	if !best.Found || best.Neighbourhood.Vertex != heavy {
		t.Fatalf("best = %s, want the planted vertex %d", body, heavy)
	}
	if got := best.Neighbourhood.Witnesses; len(got) != len(heavyWitnesses) {
		t.Fatalf("best witnesses = %v, want exactly %v", got, heavyWitnesses)
	} else {
		for i := range got {
			if got[i] != heavyWitnesses[i] {
				t.Fatalf("best witnesses = %v, want exactly %v", got, heavyWitnesses)
			}
		}
	}
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
}
