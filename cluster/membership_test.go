package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"feww"
	"feww/server"
)

// Membership regression tests: a cluster must never merge answers across
// engine kinds.  Construction refuses a mixed member set outright, and a
// member whose kind is swapped out from under a running cluster (a
// foreign snapshot through POST /restore) is flagged by /healthz
// (not ready, 503) and by /stats (degraded, excluded from the sums) —
// merging an insert-only member's output with a turnstile or star
// member's would be silent garbage.

func newInsertNode(t *testing.T, dir string, idx int, n int64) *node {
	t.Helper()
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: 8, Alpha: 1, Seed: uint64(idx + 1)},
		Shards: 2, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return startNode(t, server.NewInsertOnlyBackend(eng), dir, idx)
}

func TestClusterRejectsMixedKinds(t *testing.T) {
	dir := t.TempDir()
	insertURL := newInsertNode(t, dir, 0, 50).ts.URL

	tEng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
		TurnstileConfig: feww.TurnstileConfig{N: 50, M: 200, D: 8, Alpha: 1, Seed: 2, ScaleFactor: 0.3},
		Shards:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	turnstileURL := startNode(t, server.NewTurnstileBackend(tEng), dir, 1).ts.URL

	sEng, err := feww.NewStarEngine(feww.StarEngineConfig{N: 50, Alpha: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	starURL := startNode(t, server.NewStarBackend(sEng), dir, 2).ts.URL

	for _, tc := range []struct {
		name    string
		members []string
	}{
		{"insert+turnstile", []string{insertURL, turnstileURL}},
		{"insert+star", []string{insertURL, starURL}},
		{"star+turnstile", []string{starURL, turnstileURL}},
	} {
		if _, err := New(Config{Members: tc.members}); err == nil {
			t.Errorf("%s: gateway accepted a mixed-kind cluster", tc.name)
		} else if !strings.Contains(err.Error(), "engine") {
			t.Errorf("%s: error does not name the kind mismatch: %v", tc.name, err)
		}
	}
}

func TestClusterFlagsKindSwappedMember(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	ranges := Split(n, 2)
	var urls []string
	var nodes []*node
	for j, rng := range ranges {
		nd := newInsertNode(t, dir, j, rng.Len())
		nodes = append(nodes, nd)
		urls = append(urls, nd.ts.URL)
	}
	g, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)

	// Healthy cluster first: /healthz 200, /stats not degraded.
	get(t, gw.URL+"/healthz", http.StatusOK)
	var st StatsResponse
	if err := json.Unmarshal(get(t, gw.URL+"/stats", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatalf("healthy cluster reports degraded: %+v", st)
	}

	// Swap member 1's engine for a *turnstile* engine over the same
	// universe slice via POST /restore — every universe parameter that
	// the old membership check looked at still matches; only the kind
	// differs.
	tEng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
		TurnstileConfig: feww.TurnstileConfig{N: ranges[1].Len(), M: 1 << 20, D: 8, Alpha: 1, Seed: 9, ScaleFactor: 0.05},
		Shards:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := tEng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	tEng.Close()
	cl := server.Client{Base: urls[1]}
	if _, err := cl.Restore(snap.Bytes()); err != nil {
		t.Fatal(err)
	}

	// /healthz: 503, the swapped member not ready, the error naming the
	// kind.
	var hz HealthzResponse
	if err := json.Unmarshal(get(t, gw.URL+"/healthz", http.StatusServiceUnavailable), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Serving {
		t.Fatal("cluster still reports serving with a kind-swapped member")
	}
	if m := hz.Members[1]; m.Ready || !strings.Contains(m.Error, "engine kind") {
		t.Fatalf("member 1 = %+v, want not-ready with a kind-mismatch error", m)
	}
	if !hz.Members[0].Ready {
		t.Fatalf("member 0 should stay ready: %+v", hz.Members[0])
	}

	// /stats: degraded, the swapped member excluded from the sums.
	if err := json.Unmarshal(get(t, gw.URL+"/stats", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Degraded {
		t.Fatal("stats not degraded with a kind-swapped member")
	}
	if m := st.PerMember[1]; !strings.Contains(m.Error, "engine kind") {
		t.Fatalf("stats member 1 = %+v, want a kind-mismatch error", m)
	}
}

// TestClusterQueriesRejectStarSwappedMember: the query path itself must
// refuse a star-annotated answer inside a flat cluster.  The star merge
// gives rung priority, so without the guard the swapped member's answer
// would dominate /best (and evict every legitimate list from /results)
// no matter how small it is — silent garbage until someone polls
// /healthz.
func TestClusterQueriesRejectStarSwappedMember(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	ranges := Split(n, 2)
	var urls []string
	for j, rng := range ranges {
		urls = append(urls, newInsertNode(t, dir, j, rng.Len()).ts.URL)
	}
	g, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)

	// Give member 0 a legitimate full-target answer.
	var legit []feww.Update
	for k := int64(0); k < 8; k++ {
		legit = append(legit, ins(2, 100+k))
	}
	postStream(t, urls[0], ranges[0].Len(), 1<<20, legit)

	// Swap member 1 for a star engine holding a found star answer.
	sEng, err := feww.NewStarEngine(feww.StarEngineConfig{
		N: ranges[1].Len(), Alpha: 1, Seed: 3, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sEng.ProcessHalfEdges([]feww.Edge{{A: 1, B: 5}, {A: 5, B: 1}, {A: 1, B: 7}, {A: 7, B: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := sEng.Drain(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := sEng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	sEng.Close()
	cl := server.Client{Base: urls[1]}
	if _, err := cl.Restore(snap.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Every query that would merge the star answer must 502 with a
	// kind-mismatch error instead of serving it.
	for _, path := range []string{"/best", "/best?fresh=1", "/results", "/results?fresh=1"} {
		body := get(t, gw.URL+path, http.StatusBadGateway)
		if !strings.Contains(string(body), "kind mismatch") {
			t.Fatalf("%s = %q, want a kind-mismatch rejection", path, body)
		}
	}
}
