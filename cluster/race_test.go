package cluster

import (
	"sync"
	"testing"
	"time"

	"feww"
	"feww/server"
)

// TestClusterScatterGatherRace hammers the gateway's barrier-free query
// path while a producer ingests through it, checking that merged answers
// are never torn: every served result list is sorted by global id with
// in-range vertices and exactly target-sized witness sets, and /best
// never exceeds the witness target.  Run under -race this also proves
// the fan-out machinery (member RLocks, shared response slices) is
// data-race free.
func TestClusterScatterGatherRace(t *testing.T) {
	const (
		n      = 300
		d      = 12
		rounds = 60
	)
	_, gw, _ := startInsertCluster(t, n, 3, d)
	cl := &server.Client{Base: gw.URL}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Producer: rounds of mixed batches; every vertex eventually crosses
	// the threshold, so results appear and grow while the readers poll.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for r := 0; r < rounds; r++ {
			ups := make([]feww.Update, 0, 2*n)
			for v := int64(0); v < n; v++ {
				ups = append(ups, ins(v, v*1009+int64(r)))
			}
			if _, err := cl.Ingest(n, 1<<20, ups); err != nil {
				t.Errorf("ingest round %d: %v", r, err)
				return
			}
		}
	}()

	reader := func(fresh bool) {
		defer wg.Done()
		rcl := &server.Client{Base: gw.URL}
		for {
			select {
			case <-stop:
				return
			default:
			}
			var (
				nbs []server.NeighbourhoodJSON
				bst server.BestResponse
				err error
			)
			if fresh {
				nbs, err = rcl.ResultsFresh()
			} else {
				nbs, err = rcl.Results()
			}
			if err != nil {
				t.Errorf("results: %v", err)
				return
			}
			for i, nb := range nbs {
				if nb.Vertex < 0 || nb.Vertex >= n {
					t.Errorf("torn view: vertex %d outside [0, %d)", nb.Vertex, n)
				}
				if i > 0 && nbs[i-1].Vertex >= nb.Vertex {
					t.Errorf("torn view: results out of order at %d: %d then %d", i, nbs[i-1].Vertex, nb.Vertex)
				}
				if nb.Size != d || len(nb.Witnesses) != d {
					t.Errorf("torn view: result for %d has %d witnesses, want %d", nb.Vertex, len(nb.Witnesses), d)
				}
			}
			if fresh {
				bst, err = rcl.BestFresh()
			} else {
				bst, err = rcl.Best()
			}
			if err != nil {
				t.Errorf("best: %v", err)
				return
			}
			if bst.Found && bst.Neighbourhood.Size > d {
				t.Errorf("torn view: best size %d exceeds target %d", bst.Neighbourhood.Size, d)
			}
			if _, err := rcl.Stats(); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go reader(false)
	}
	wg.Add(1)
	go reader(true) // one strict-barrier reader races the published ones

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("race test wedged")
	}
}
