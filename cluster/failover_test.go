package cluster

// The in-process version of the acceptance criterion: a replicated
// cluster (one range, two replicas, one spare) survives the death of
// ANY single member — follower, primary, or spare — with no operator
// action, for all three algorithm kinds.  Published reads hammer the
// gateway throughout and must never fail; ingest posted immediately
// after the kill must be fully accepted; and once the reconciler
// converges, fresh results are byte-identical to a single full-universe
// engine fed the same stream.  The multi-process SIGKILL variant runs in
// scripts/cluster_e2e.sh (chaos section).

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"feww"
	"feww/server"
)

// failoverKind describes one algorithm kind for the failover matrix: a
// full-universe backend constructor (every member holds the whole
// universe — one range, R copies) and a planted deterministic workload.
type failoverKind struct {
	name    string
	n       int64
	headerM int64 // m for the stream header (0 = derive)
	backend func(t *testing.T, seed uint64, shards int) server.Backend
	ups     []feww.Update
}

func insertFailoverKind() failoverKind {
	const n = 1000
	// Exactly one vertex reaches the witness target (padding adds at most
	// two witnesses per vertex, planted noise stays below d) — the best
	// answer must be a unique maximum, because tie-breaks at the cap are
	// an engine-internal order that range partitioning does not preserve.
	ups := interleavedInserts(map[int64]int{
		25: 20, 60: 5, 10: 3, 90: 2, 440: 2, 777: 2,
	})
	// Padding so each piece spans several streaming windows.
	for i := 0; i < 1500; i++ {
		ups = append(ups, ins(int64(i)%n, int64(100000+i)))
	}
	return failoverKind{
		name: "insert-only", n: n, headerM: 0, ups: ups,
		backend: func(t *testing.T, seed uint64, shards int) server.Backend {
			eng, err := feww.NewEngine(feww.EngineConfig{
				Config: feww.Config{N: n, D: 8, Alpha: 1, Seed: seed},
				Shards: shards, BatchSize: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			return server.NewInsertOnlyBackend(eng)
		},
	}
}

func turnstileFailoverKind() failoverKind {
	const (
		n     = 48
		m     = 128
		d     = 4
		scale = 0.3
	)
	// The planted regime of the turnstile equivalence test: one vertex at
	// exactly d live witnesses, noise strictly below d, churn cancelling
	// inside the sketches.
	heavy, heavyWitnesses := int64(25), []int64{3, 50, 77, 120}
	var ups []feww.Update
	for k, b := range heavyWitnesses {
		ups = append(ups, ins(heavy, b))
		for _, v := range []int64{1, 8, 17, 30, 40, 47} {
			if k < 3 {
				ups = append(ups, ins(v, (v*7+int64(k))%m))
			}
		}
	}
	for _, v := range []int64{5, 20, 36} {
		ups = append(ups, ins(v, v+60), ins(v, v+70))
	}
	for _, v := range []int64{5, 20, 36} {
		ups = append(ups, del(v, v+60), del(v, v+70))
	}
	return failoverKind{
		name: "turnstile", n: n, headerM: m, ups: ups,
		backend: func(t *testing.T, seed uint64, shards int) server.Backend {
			eng, err := feww.NewTurnstileEngine(feww.TurnstileEngineConfig{
				TurnstileConfig: feww.TurnstileConfig{N: n, M: m, D: d, Alpha: 1, Seed: seed, ScaleFactor: scale},
				Shards:          shards, BatchSize: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			return server.NewTurnstileBackend(eng)
		},
	}
}

func starFailoverKind() failoverKind {
	const n = 60
	// A planted star at 25 (degree 20, winning guess 18) plus background
	// structure — the star equivalence test's graph.
	neighbours := []int64{
		2, 41, 21, 58, 7, 33, 48, 11, 55, 17,
		39, 3, 29, 51, 9, 44, 23, 13, 36, 57,
	}
	var edges [][2]int64
	for _, v := range neighbours {
		edges = append(edges, [2]int64{25, v})
	}
	for _, v := range []int64{1, 12, 31} {
		edges = append(edges, [2]int64{50, v})
	}
	edges = append(edges, [2]int64{5, 45}, [2]int64{28, 59}, [2]int64{40, 8})
	return failoverKind{
		name: "star", n: n, headerM: n, ups: doubleCover(edges),
		backend: func(t *testing.T, seed uint64, shards int) server.Backend {
			eng, err := feww.NewStarEngine(feww.StarEngineConfig{
				N: n, Alpha: 1, Eps: 0.5, Seed: seed, Shards: shards, BatchSize: 16,
			})
			if err != nil {
				t.Fatal(err)
			}
			return server.NewStarBackend(eng)
		},
	}
}

// hammer issues published reads against the gateway in a loop until
// stopped, counting every transport error or non-200 — the "published
// reads never error during failover" clock.
type hammer struct {
	fails atomic.Int64
	reqs  atomic.Int64
	stopc chan struct{}
	wg    sync.WaitGroup
}

func startHammer(gwURL string) *hammer {
	h := &hammer{stopc: make(chan struct{})}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		cl := &http.Client{Timeout: 15 * time.Second}
		for {
			select {
			case <-h.stopc:
				return
			default:
			}
			for _, path := range []string{"/best", "/results", "/stats"} {
				resp, err := cl.Get(gwURL + path)
				h.reqs.Add(1)
				if err != nil {
					h.fails.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					h.fails.Add(1)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return h
}

func (h *hammer) stop() (reqs, fails int64) {
	close(h.stopc)
	h.wg.Wait()
	return h.reqs.Load(), h.fails.Load()
}

func TestFailoverMatrix(t *testing.T) {
	kinds := []failoverKind{insertFailoverKind(), turnstileFailoverKind(), starFailoverKind()}
	victims := []string{"follower", "primary", "spare"}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			if kind.name == "turnstile" && testing.Short() {
				// Turnstile snapshots at these parameters are tens of MB;
				// re-seeding ships them twice per case.  The full matrix runs
				// in the long mode (and in CI's named replication step).
				t.Skip("turnstile failover ships large snapshots; skipped in -short")
			}
			for _, victim := range victims {
				victim := victim
				t.Run("kill-"+victim, func(t *testing.T) {
					runFailoverCase(t, kind, victim)
				})
			}
		})
	}
}

func runFailoverCase(t *testing.T, kind failoverKind, victim string) {
	dir := t.TempDir()
	// Reference: a single full-universe engine fed the identical stream.
	ref := startNode(t, kind.backend(t, 42, 4), dir, 99)
	// The cluster: one group of two replicas (A primary, B follower) and
	// one spare C.  Seeds and shard counts differ everywhere: in the
	// alpha=1 regime results must not depend on them.
	a := startNode(t, kind.backend(t, 7, 1), dir, 0)
	b := startNode(t, kind.backend(t, 8, 2), dir, 1)
	c := startNode(t, kind.backend(t, 9, 3), dir, 2)
	g, err := New(Config{
		Members:      []string{a.ts.URL, b.ts.URL, c.ts.URL},
		Replicas:     2,
		ChunkUpdates: 64, // small windows: the kill lands between windows of one request
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)
	rec := g.StartReconciler(ReconcilerConfig{Interval: 25 * time.Millisecond, FailAfter: 2, ProbeTimeout: time.Second})
	defer rec.Stop()

	victimNode := map[string]*node{"follower": b, "primary": a, "spare": c}[victim]
	victimURL := victimNode.ts.URL

	hm := startHammer(gw.URL)

	third := len(kind.ups) / 3
	piece1, piece2, piece3 := kind.ups[:third], kind.ups[third:2*third], kind.ups[2*third:]

	// Piece 1 lands everywhere; then the victim dies.
	postStream(t, gw.URL, kind.n, kind.headerM, piece1)
	victimNode.close()

	// Piece 2 is posted immediately — before the reconciler can have
	// noticed — and must be fully accepted: a dead replica drops out of
	// the fan-out mid-request, it does not fail the request.
	code, out := postIngest(t, gw.URL, encodeUpdates(t, kind.n, kind.headerM, piece2))
	if code != http.StatusOK || out.Accepted != int64(len(piece2)) {
		t.Fatalf("ingest right after killing the %s: HTTP %d accepted %d (%s), want 200/%d",
			victim, code, out.Accepted, out.Error, len(piece2))
	}

	// Autonomous convergence: every group replica live again and the
	// primary not the victim.  For a killed spare nothing needs doing and
	// the predicate holds immediately.
	st := waitStatus(t, g, 15*time.Second, "group back at full strength", func(st ReconcilerStatus) bool {
		gs := st.Groups[0]
		if gs.Primary == victimURL {
			return false
		}
		if len(gs.Replicas) < 2 {
			return false
		}
		for _, rs := range gs.Replicas {
			if rs.State != "live" {
				return false
			}
		}
		return true
	})
	switch victim {
	case "follower", "primary":
		// The dead member must have been replaced by the spare, and for a
		// dead primary a follower promoted — all visible in the decision
		// log.
		want := map[string]bool{"adopt-spare": false}
		if victim == "primary" {
			want["promote"] = true
		}
		for _, dec := range st.Decisions {
			if _, ok := want[dec.Action]; ok {
				delete(want, dec.Action)
			}
		}
		for action := range want {
			t.Fatalf("no %q decision after killing the %s; decisions: %+v", action, victim, st.Decisions)
		}
	case "spare":
		if len(st.Spares) != 1 {
			t.Fatalf("spare pool = %v after killing the spare, want the (dead) spare still listed", st.Spares)
		}
	}

	// Piece 3 lands on the reconverged membership.
	postStream(t, gw.URL, kind.n, kind.headerM, piece3)

	if reqs, fails := hm.stop(); fails != 0 {
		t.Fatalf("%d of %d published reads failed during failover, want 0", fails, reqs)
	}

	// Feed the reference the same three pieces and require byte-identical
	// fresh answers: the failover lost nothing and invented nothing.
	postStream(t, ref.ts.URL, kind.n, kind.headerM, kind.ups[:third])
	postStream(t, ref.ts.URL, kind.n, kind.headerM, piece2)
	postStream(t, ref.ts.URL, kind.n, kind.headerM, piece3)
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
}
