package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// postIngest posts an encoded FEWW body to a gateway URL and decodes the
// IngestResponse regardless of status.
func postIngest(t *testing.T, url string, body []byte) (int, server.IngestResponse) {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	defer resp.Body.Close()
	var out server.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST /ingest: decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// elements sums the members' applied element counts via the gateway's
// fresh stats, i.e. what the cluster engines really hold.
func clusterElements(t *testing.T, gw string) int64 {
	t.Helper()
	var st StatsResponse
	if err := json.Unmarshal(get(t, gw+"/stats?fresh=1", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	return st.Elements
}

// startChunkedCluster boots k insert-only members and a gateway whose
// streaming window is tiny, so a short test stream spans many windows.
func startChunkedCluster(t *testing.T, n int64, k int, d int64, chunk int) (gw *httptest.Server, nodes []*node) {
	t.Helper()
	dir := t.TempDir()
	urls := make([]string, k)
	for j, rng := range Split(n, k) {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: rng.Len(), D: d, Alpha: 1, Seed: uint64(7 + j)},
			Shards: j + 1, BatchSize: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd := startNode(t, server.NewInsertOnlyBackend(eng), dir, j)
		nodes = append(nodes, nd)
		urls[j] = nd.ts.URL
	}
	g, err := New(Config{Members: urls, ChunkUpdates: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return serveGateway(t, g), nodes
}

// TestStreamingPartialAcceptOnMalformedUpdate pins the streaming
// boundary contract: a stream that goes invalid mid-body is rejected
// with HTTP 400, fully forwarded windows stay applied (Accepted reports
// exactly how many), and nothing at or past the invalid update's window
// is ever forwarded.
func TestStreamingPartialAcceptOnMalformedUpdate(t *testing.T) {
	const (
		n     = 90
		chunk = 10
		good  = 35 // 3 full windows forwarded, 5 updates dropped with the bad one
	)
	gw, _ := startChunkedCluster(t, n, 3, 5, chunk)

	ups := make([]feww.Update, 0, good+1+chunk)
	for i := 0; i < good; i++ {
		ups = append(ups, stream.Ins(int64(i%n), int64(i)))
	}
	ups = append(ups, stream.Ins(n+5, 0)) // out of universe: update #35, window 4
	for i := 0; i < chunk; i++ {
		ups = append(ups, stream.Ins(int64(i), 1000+int64(i)))
	}
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, 0, ups); err != nil {
		t.Fatal(err)
	}

	code, out := postIngest(t, gw.URL, body.Bytes())
	if code != http.StatusBadRequest {
		t.Fatalf("invalid stream: HTTP %d (%s), want 400", code, out.Error)
	}
	wantAccepted := int64(good / chunk * chunk) // only full windows were forwarded
	if out.Accepted != wantAccepted {
		t.Errorf("Accepted = %d, want %d (full windows before the invalid update)", out.Accepted, wantAccepted)
	}
	if got := clusterElements(t, gw.URL); got != wantAccepted {
		t.Errorf("members hold %d elements, want %d: updates at or past the invalid window must never be forwarded", got, wantAccepted)
	}
}

// TestStreamingAtomicRejectsWhole pins the ?atomic=1 contract the
// streaming default gave up: the same mid-body-invalid stream leaves
// every member untouched.
func TestStreamingAtomicRejectsWhole(t *testing.T) {
	const n = 90
	gw, _ := startChunkedCluster(t, n, 3, 5, 10)

	ups := make([]feww.Update, 0, 36)
	for i := 0; i < 35; i++ {
		ups = append(ups, stream.Ins(int64(i%n), int64(i)))
	}
	ups = append(ups, stream.Ins(n+5, 0))
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, 0, ups); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(gw.URL+"/ingest?atomic=1", "application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("atomic invalid stream: HTTP %d, want 400", resp.StatusCode)
	}
	if got := clusterElements(t, gw.URL); got != 0 {
		t.Errorf("members hold %d elements after an atomic reject, want 0", got)
	}
}

// TestStreamingMatchesAtomic feeds the same valid stream through the
// streaming and the atomic path into two identically-configured clusters
// and requires byte-identical fresh query answers and identical applied
// counts — the two ingest modes must be observationally equivalent for
// accepted streams.
func TestStreamingMatchesAtomic(t *testing.T) {
	const (
		n = 120
		d = 6
	)
	mk := func() *httptest.Server {
		gw, _ := startChunkedCluster(t, n, 3, d, 16)
		return gw
	}
	gwStream, gwAtomic := mk(), mk()

	ups := make([]feww.Update, 0, 700)
	for i := 0; i < 600; i++ {
		ups = append(ups, stream.Ins(int64((i*7)%n), int64(i)))
	}
	for i := 0; i < 100; i++ { // drive a few vertices over the threshold
		ups = append(ups, stream.Ins(int64(i%4)*31, int64(2000+i)))
	}
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, 0, ups); err != nil {
		t.Fatal(err)
	}

	if code, out := postIngest(t, gwStream.URL, body.Bytes()); code != http.StatusOK || out.Accepted != int64(len(ups)) {
		t.Fatalf("streaming ingest: HTTP %d accepted %d (%s)", code, out.Accepted, out.Error)
	}
	resp, err := http.Post(gwAtomic.URL+"/ingest?atomic=1", "application/octet-stream", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("atomic ingest: HTTP %d", resp.StatusCode)
	}

	for _, path := range []string{"/best?fresh=1", "/results?fresh=1"} {
		a := get(t, gwStream.URL+path, http.StatusOK)
		b := get(t, gwAtomic.URL+path, http.StatusOK)
		if !bytes.Equal(a, b) {
			t.Errorf("GET %s differs between streaming and atomic ingest:\nstreaming: %s\natomic:    %s", path, a, b)
		}
	}
	if a, b := clusterElements(t, gwStream.URL), clusterElements(t, gwAtomic.URL); a != b {
		t.Errorf("applied elements differ: streaming %d, atomic %d", a, b)
	}
}

// countingReader counts how many bytes the gateway has pulled from the
// request body, exposing how far ahead of the members it is reading.
type countingReader struct {
	r    io.Reader
	read atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.read.Add(int64(n))
	return n, err
}

// TestStreamingBackpressure pins the bounded-memory property: with one
// member refusing to consume its request body, the gateway's forward
// loop must block on the member's pipe and stop pulling the request
// body after a bounded prefix — it must not buffer the stream.
func TestStreamingBackpressure(t *testing.T) {
	const (
		n     = 100
		total = 8_000_000 // ~31 MiB encoded: far beyond kernel socket buffering
		chunk = 4096
	)
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: 10, Alpha: 1, Seed: 1},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	be := server.NewInsertOnlyBackend(eng)
	t.Cleanup(be.Close)
	srv := server.New(be, server.Config{})

	// The member stalls /ingest until released, consuming nothing; every
	// other endpoint (the gateway's construction probe) works normally.
	release := make(chan struct{})
	var releaseOnce sync.Once
	doRelease := func() { releaseOnce.Do(func() { close(release) }) }
	handler := srv.Handler()
	stalling := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/ingest" {
			<-release
		}
		handler.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(stalling)
	t.Cleanup(ts.Close)

	g, err := New(Config{Members: []string{ts.URL}, ChunkUpdates: chunk})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)

	ups := make([]feww.Update, total)
	for i := range ups {
		ups[i] = stream.Ins(int64(i%n), int64(i%1000))
	}
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, 0, ups); err != nil {
		t.Fatal(err)
	}
	encoded := int64(body.Len())
	cr := &countingReader{r: &body}

	done := make(chan error, 1)
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		req, err := http.NewRequest(http.MethodPost, gw.URL+"/ingest", io.Reader(cr))
		if err != nil {
			done <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			done <- fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
			return
		}
		done <- nil
	}()

	// Whatever the test's outcome, unwedge the member and wait for the
	// in-flight gateway request, or the servers' Close hangs on the
	// stalled connection.
	t.Cleanup(func() {
		doRelease()
		select {
		case <-finished:
		case <-time.After(30 * time.Second):
		}
	})

	// With the member stalled, the gateway's next frame write blocks once
	// the pipe and the member connection's kernel socket buffers are
	// full, and the pull of the request body stops.  Wait for it to
	// stabilise, then require that most of the body is still unread: a
	// buffering gateway reads the whole body before forwarding anything,
	// stalled member or not.  The bound is deliberately loose — kernel
	// autotuning can swallow several MiB — but far below the full body.
	var pulled, stable int64
	deadline := time.Now().Add(30 * time.Second)
	for stable < 5 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		if now := cr.read.Load(); now == pulled && now > 0 {
			stable++
		} else {
			pulled, stable = cr.read.Load(), 0
		}
	}
	if stable < 5 {
		t.Fatalf("gateway never stopped pulling the body while the member was stalled (%d of %d bytes)", pulled, encoded)
	}
	if pulled > encoded*2/3 {
		t.Fatalf("gateway pulled %d of the %d-byte body while the member was stalled: no backpressure", pulled, encoded)
	}
	doRelease()
	if err := <-done; err != nil {
		t.Fatalf("ingest after release: %v", err)
	}
	if got := clusterElements(t, gw.URL); got != total {
		t.Errorf("members hold %d elements, want %d", got, total)
	}
}
