package cluster

// Table-driven edge cases for the partition primitives: single-vertex
// ranges, degenerate universes, the ceil sizing rule's invariants, and
// the star-kind ranges-must-cover-m check under replication.

import (
	"strings"
	"testing"

	"feww"
	"feww/server"
)

func TestSplitEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int64
		k    int
		want []Range
	}{
		{name: "degenerate-universe", n: 1, k: 1, want: []Range{{0, 1}}},
		{name: "one-item-many-nodes", n: 1, k: 7, want: []Range{{0, 1}}},
		{name: "all-single-vertex", n: 4, k: 4, want: []Range{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{name: "k-clamped-to-n", n: 3, k: 9, want: []Range{{0, 1}, {1, 2}, {2, 3}}},
		{name: "one-node-whole-universe", n: 17, k: 1, want: []Range{{0, 17}}},
		{name: "remainder-to-first-ranges", n: 10, k: 4, want: []Range{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{name: "even-split", n: 12, k: 3, want: []Range{{0, 4}, {4, 8}, {8, 12}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Split(tc.n, tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("Split(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Split(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
				}
			}
		})
	}
}

// TestSplitInvariants checks the properties every partition must hold
// regardless of the exact sizes: full disjoint coverage of [0, n), no
// empty ranges, sizes within one of each other and non-increasing (the
// ceil rule), for a sweep of shapes including n == k and k > n.
func TestSplitInvariants(t *testing.T) {
	for _, tc := range []struct {
		n int64
		k int
	}{
		{1, 1}, {1, 5}, {2, 2}, {2, 3}, {5, 2}, {7, 3}, {100, 7}, {100, 100}, {101, 100}, {1 << 20, 13},
	} {
		got := Split(tc.n, tc.k)
		wantLen := tc.k
		if int64(tc.k) > tc.n {
			wantLen = int(tc.n)
		}
		if len(got) != wantLen {
			t.Fatalf("Split(%d, %d) has %d ranges, want %d", tc.n, tc.k, len(got), wantLen)
		}
		var covered int64
		for i, r := range got {
			if r.Len() < 1 {
				t.Fatalf("Split(%d, %d)[%d] = %s is empty", tc.n, tc.k, i, r)
			}
			if r.Lo != covered {
				t.Fatalf("Split(%d, %d)[%d] = %s leaves a gap at %d", tc.n, tc.k, i, r, covered)
			}
			if i > 0 && r.Len() > got[i-1].Len() {
				t.Fatalf("Split(%d, %d) sizes grow at %d: %v", tc.n, tc.k, i, got)
			}
			if got[0].Len()-r.Len() > 1 {
				t.Fatalf("Split(%d, %d) sizes differ by more than one: %v", tc.n, tc.k, got)
			}
			covered = r.Hi
		}
		if covered != tc.n {
			t.Fatalf("Split(%d, %d) covers [0, %d), want [0, %d)", tc.n, tc.k, covered, tc.n)
		}
	}
}

func TestSplitPanicsOnDegenerateArgs(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int64
		k    int
	}{
		{name: "zero-universe", n: 0, k: 3},
		{name: "negative-universe", n: -5, k: 3},
		{name: "zero-nodes", n: 10, k: 0},
		{name: "negative-nodes", n: 10, k: -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Split(%d, %d) did not panic", tc.n, tc.k)
				}
			}()
			Split(tc.n, tc.k)
		})
	}
}

func TestRangeContains(t *testing.T) {
	for _, tc := range []struct {
		r    Range
		a    int64
		want bool
	}{
		{Range{0, 1}, 0, true},   // single-vertex range holds its vertex
		{Range{0, 1}, 1, false},  // ...and nothing else
		{Range{0, 1}, -1, false}, // negative ids are never in range
		{Range{5, 9}, 5, true},   // inclusive low bound
		{Range{5, 9}, 8, true},
		{Range{5, 9}, 9, false}, // exclusive high bound
		{Range{5, 9}, 4, false},
	} {
		if got := tc.r.Contains(tc.a); got != tc.want {
			t.Errorf("%s.Contains(%d) = %v, want %v", tc.r, tc.a, got, tc.want)
		}
	}
	if got := (Range{3, 4}).Len(); got != 1 {
		t.Errorf("single-vertex range Len = %d, want 1", got)
	}
	if got := (Range{5, 9}).String(); got != "[5,9)" {
		t.Errorf("String = %q, want %q", got, "[5,9)")
	}
}

// TestReplicatedStarRangesMustCoverGraph: the star coverage check (range
// lengths must sum to the graph's vertex count) applies to the *group*
// partition, not the member count — four members as two replicated
// groups of 20 vertices each cover 40 of 60 and are refused.
func TestReplicatedStarRangesMustCoverGraph(t *testing.T) {
	dir := t.TempDir()
	var urls []string
	for j := 0; j < 4; j++ {
		eng, err := feww.NewStarEngine(feww.StarEngineConfig{
			N: 20, M: 60, Alpha: 1, Seed: uint64(j + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, startNode(t, server.NewStarBackend(eng), dir, j).ts.URL)
	}
	_, err := New(Config{Members: urls, Replicas: 2})
	if err == nil {
		t.Fatal("gateway accepted replicated star ranges that do not cover the graph")
	}
	if !strings.Contains(err.Error(), "cover") {
		t.Fatalf("err = %v, want a coverage error", err)
	}
}
