package cluster

// Client retry semantics under injected connection resets, via the fault
// proxy.  The contract under test is PR 4's: a conn-refused request is
// always retried once (the body is replayable), a conn-reset request is
// retried only when idempotent — /ingest never, because the server may
// have applied part of the stream before the cut and a blind replay
// would double-apply it.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"feww"
	"feww/server"
)

// hitCounter counts requests per path around a handler — the ground
// truth for "the server saw this request exactly once".
type hitCounter struct {
	h    http.Handler
	mu   sync.Mutex
	hits map[string]int
}

func (c *hitCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	if c.hits == nil {
		c.hits = make(map[string]int)
	}
	c.hits[r.URL.Path]++
	c.mu.Unlock()
	c.h.ServeHTTP(w, r)
}

func (c *hitCounter) count(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[path]
}

// startCountedNode boots one insert-only fewwd node with a request
// counter in front of its handler and a fault proxy in front of that.
func startCountedNode(t *testing.T, n int64) (*faultProxy, *hitCounter) {
	t.Helper()
	eng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: 8, Alpha: 1, Seed: 1},
		Shards: 2, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := server.NewInsertOnlyBackend(eng)
	srv := server.New(b, server.Config{CheckpointPath: t.TempDir() + "/node.ckpt"})
	hc := &hitCounter{h: srv.Handler()}
	ts := httptest.NewServer(hc)
	t.Cleanup(func() { ts.Close(); b.Close() })
	return newFaultProxy(t, ts.Listener.Addr().String()), hc
}

// bigBatch builds an update batch whose encoding comfortably exceeds the
// proxy's reset budget, so the cut lands mid-body.
func bigBatch(n int64, count int) []feww.Update {
	ups := make([]feww.Update, count)
	for i := range ups {
		ups[i] = ins(int64(i)%n, int64(i))
	}
	return ups
}

func TestClientIngestNeverRetriesOnReset(t *testing.T) {
	const n = 1000
	p, hc := startCountedNode(t, n)
	// Cut the connection a few KiB into the request: far enough that the
	// headers (and the start of the body) reached the server — the
	// request *was* delivered, its effect is unknown — then RST.
	p.resetClientToServerAfter(4096, false)
	cl := &server.Client{Base: p.URL(), Timeout: 5 * time.Second}
	_, err := cl.Ingest(n, 0, bigBatch(n, 20000))
	if err == nil {
		t.Fatal("ingest through a mid-body reset succeeded, want error")
	}
	if p.resetCount() == 0 {
		t.Fatal("proxy never reset the connection; the fault was not exercised")
	}
	// The whole point: the client must NOT have re-sent the stream.  The
	// server saw exactly one /ingest request — whatever prefix it
	// applied, it applied once.
	if got := hc.count("/ingest"); got != 1 {
		t.Fatalf("server saw %d /ingest requests after a reset, want exactly 1 (reset retry would double-apply)", got)
	}
}

func TestClientIdempotentGetRetriesOnReset(t *testing.T) {
	const n = 1000
	p, _ := startCountedNode(t, n)
	cl := &server.Client{Base: p.URL(), Timeout: 5 * time.Second}
	// Seed some state through the clean proxy first.
	if _, err := cl.Ingest(n, 0, bigBatch(n, 1000)); err != nil {
		t.Fatal(err)
	}
	// One transient reset: the first /best attempt dies, the automatic
	// retry (GETs are idempotent) goes through.
	p.resetClientToServerAfter(1, true)
	b, err := cl.Best()
	if err != nil {
		t.Fatalf("idempotent GET did not survive a single reset: %v", err)
	}
	if p.resetCount() != 1 {
		t.Fatalf("proxy reset %d connections, want 1 — the GET succeeded without the fault firing", p.resetCount())
	}
	_ = b
}

func TestClientNoRetryDisablesGetRetry(t *testing.T) {
	const n = 1000
	p, _ := startCountedNode(t, n)
	p.resetClientToServerAfter(1, true)
	cl := &server.Client{Base: p.URL(), Timeout: 5 * time.Second, NoRetry: true}
	if _, err := cl.Best(); err == nil {
		t.Fatal("NoRetry GET through a reset succeeded, want error")
	}
	if p.resetCount() != 1 {
		t.Fatalf("proxy reset %d connections, want 1", p.resetCount())
	}
}
