package cluster

// Replicated-group behaviour at the in-process level: synchronous
// fan-out correctness (every replica of a group byte-identical, accepted
// counts not double-counted), ingest surviving replica death mid-stream,
// published-read failover vs the fresh pin, reconciler re-seeding
// through the fault proxy, and the membership validation around replica
// groups.  The multi-process SIGKILL version of these guarantees lives
// in scripts/cluster_e2e.sh (chaos section).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// encodeUpdates builds one FEWW binary body.
func encodeUpdates(t *testing.T, n, m int64, ups []feww.Update) []byte {
	t.Helper()
	var body bytes.Buffer
	if err := stream.WriteFile(&body, n, m, ups); err != nil {
		t.Fatal(err)
	}
	return body.Bytes()
}

// startReplicatedInsertCluster boots a full-universe reference node plus
// groups x replicas insert-only members (consecutive runs of `replicas`
// URLs form a group, as the gateway defines them) and `spares` spare
// nodes, and a gateway over the lot.  Seeds and shard counts differ per
// replica: in the alpha=1 deterministic regime results must not depend
// on them, which is what makes replica byte-identity a meaningful check.
func startReplicatedInsertCluster(t *testing.T, n int64, groups, replicas int, d int64, spares int, tweak func(*Config)) (ref *node, g *Gateway, gw *httptest.Server, members [][]*node, spareNodes []*node) {
	t.Helper()
	dir := t.TempDir()
	refEng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: d, Alpha: 1, Seed: 42},
		Shards: 4, BatchSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref = startNode(t, server.NewInsertOnlyBackend(refEng), dir, 99)

	var urls []string
	for j, rng := range Split(n, groups) {
		var grp []*node
		for k := 0; k < replicas; k++ {
			eng, err := feww.NewEngine(feww.EngineConfig{
				Config: feww.Config{N: rng.Len(), D: d, Alpha: 1, Seed: uint64(7 + j*replicas + k)},
				Shards: k + 1, BatchSize: 16 + j,
			})
			if err != nil {
				t.Fatal(err)
			}
			nd := startNode(t, server.NewInsertOnlyBackend(eng), dir, j*replicas+k)
			grp = append(grp, nd)
			urls = append(urls, nd.ts.URL)
		}
		members = append(members, grp)
	}
	for s := 0; s < spares; s++ {
		// A spare's engine is a placeholder: adoption re-seeds it from the
		// group primary through /restore, so its size is arbitrary.
		nd := newInsertNode(t, dir, 200+s, n)
		spareNodes = append(spareNodes, nd)
		urls = append(urls, nd.ts.URL)
	}
	cfg := Config{Members: urls, Replicas: replicas}
	if tweak != nil {
		tweak(&cfg)
	}
	g, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ref, g, serveGateway(t, g), members, spareNodes
}

// waitStatus polls the gateway's reconciler status until pred holds.
func waitStatus(t *testing.T, g *Gateway, timeout time.Duration, what string, pred func(ReconcilerStatus) bool) ReconcilerStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := g.Status()
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			buf, _ := json.Marshal(st)
			t.Fatalf("reconciler did not reach %q within %v: %s", what, timeout, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicatedFanOutByteIdentity(t *testing.T) {
	const n, d = 200, 10
	ref, _, gw, members, _ := startReplicatedInsertCluster(t, n, 2, 2, d, 0, nil)
	ups := interleavedInserts(map[int64]int{
		25: 30, 130: 12, 170: 9,
		3: 2, 55: 2, 101: 2, 160: 2, 199: 2,
	})
	postStream(t, ref.ts.URL, n, 0, ups)

	code, out := postIngest(t, gw.URL, encodeUpdates(t, n, 0, ups))
	if code != http.StatusOK {
		t.Fatalf("replicated ingest: HTTP %d: %s", code, out.Error)
	}
	// Accepted counts each update once, no matter how many replicas the
	// windows fanned out to.
	if out.Accepted != int64(len(ups)) || out.Total != int64(len(ups)) {
		t.Fatalf("replicated ingest accepted %d/%d, want %d/%d (replication must not double-count)",
			out.Accepted, out.Total, len(ups), len(ups))
	}
	// Every replica of a group holds the identical accepted stream, so
	// its fresh answers are byte-identical to its peer's.
	for j, grp := range members {
		for _, path := range []string{"/best", "/results", "/stats"} {
			want := get(t, grp[0].ts.URL+path+"?fresh=1", http.StatusOK)
			got := get(t, grp[1].ts.URL+path+"?fresh=1", http.StatusOK)
			if path == "/stats" {
				// Stats carry per-process fields (uptime, shard counts);
				// compare the element count only.
				var a, b server.StatsResponse
				if err := json.Unmarshal(want, &a); err != nil {
					t.Fatal(err)
				}
				if err := json.Unmarshal(got, &b); err != nil {
					t.Fatal(err)
				}
				if a.Elements != b.Elements {
					t.Fatalf("group %d replicas diverged: %d vs %d elements", j, a.Elements, b.Elements)
				}
				continue
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("group %d replicas diverged on %s:\n%s\nvs\n%s", j, path, want, got)
			}
		}
	}
	// And the cluster as a whole matches the full-universe engine.
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
	// Published reads (any replica) agree too once ingest has drained.
	if got := clusterElements(t, gw.URL); got != int64(len(ups)) {
		t.Fatalf("cluster holds %d elements, want %d (primaries summed once)", got, len(ups))
	}
}

func TestReplicatedIngestSurvivesReplicaDeath(t *testing.T) {
	const n, d = 120, 8
	ref, g, gw, members, _ := startReplicatedInsertCluster(t, n, 2, 2, d, 0, nil)
	ups := interleavedInserts(map[int64]int{10: 12, 70: 9, 100: 5, 30: 2, 90: 2})
	postStream(t, ref.ts.URL, n, 0, ups)

	// Kill group 0's follower.  The fan-out to it fails, it is marked
	// failed, and the request still accepts every update.
	members[0][1].close()
	code, out := postIngest(t, gw.URL, encodeUpdates(t, n, 0, ups))
	if code != http.StatusOK {
		t.Fatalf("ingest with a dead follower: HTTP %d: %s", code, out.Error)
	}
	if out.Accepted != int64(len(ups)) {
		t.Fatalf("ingest with a dead follower accepted %d, want %d", out.Accepted, len(ups))
	}
	// The gateway noticed: the replica is failed in the status view and a
	// "fail" decision was recorded with the member's URL.
	st := g.Status()
	var failed int
	for _, gs := range st.Groups {
		for _, rs := range gs.Replicas {
			if rs.State == "failed" {
				failed++
				if rs.URL != members[0][1].ts.URL {
					t.Fatalf("failed replica is %s, want %s", rs.URL, members[0][1].ts.URL)
				}
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d replicas failed, want exactly 1", failed)
	}
	var sawFail bool
	for _, dec := range st.Decisions {
		if dec.Action == "fail" && dec.URL == members[0][1].ts.URL {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatalf("no 'fail' decision recorded for the dead follower; decisions: %+v", st.Decisions)
	}
	// The cluster stays in service — healthz still 200 (primaries fine),
	// published and fresh reads still answer, and results still match the
	// reference.
	get(t, gw.URL+"/healthz", http.StatusOK)
	get(t, gw.URL+"/best", http.StatusOK)
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
	freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
}

func TestReplicatedReadFailoverAndFreshPin(t *testing.T) {
	const n, d = 100, 8
	dir := t.TempDir()
	// One group, two replicas, each behind its own fault proxy so either
	// can be stalled independently of the other.
	var nodes []*node
	var proxies []*faultProxy
	var urls []string
	for k := 0; k < 2; k++ {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: n, D: d, Alpha: 1, Seed: uint64(k + 1)},
			Shards: k + 1, BatchSize: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd := startNode(t, server.NewInsertOnlyBackend(eng), dir, k)
		p := newFaultProxy(t, nd.ts.Listener.Addr().String())
		nodes = append(nodes, nd)
		proxies = append(proxies, p)
		urls = append(urls, p.URL())
	}
	// Short member timeout: a stalled replica costs one timeout, then the
	// read fails over.
	g, err := New(Config{Members: urls, Replicas: 2, MemberTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)
	ups := interleavedInserts(map[int64]int{20: 12, 60: 6, 80: 2})
	postStream(t, gw.URL, n, 0, ups)

	// Stall the follower: every published read must still answer (the
	// rotation will hand some reads to the stalled replica first; those
	// fail over to the primary).
	proxies[1].stall()
	for i := 0; i < 4; i++ {
		get(t, gw.URL+"/best", http.StatusOK)
		get(t, gw.URL+"/results", http.StatusOK)
	}
	proxies[1].pass()

	// Stall the primary: published reads keep answering from the
	// follower, but ?fresh=1 is pinned to the primary by contract — it
	// reports the failure instead of silently serving from a replica that
	// might be behind.
	proxies[0].stall()
	for i := 0; i < 4; i++ {
		get(t, gw.URL+"/best", http.StatusOK)
	}
	get(t, gw.URL+"/best?fresh=1", http.StatusBadGateway)
	proxies[0].pass()
	get(t, gw.URL+"/best?fresh=1", http.StatusOK)
}

func TestReconcilerReseedsFailedFollower(t *testing.T) {
	const n, d = 100, 8
	dir := t.TempDir()
	// Primary direct, follower behind a fault proxy that will cut one
	// ingest stream mid-body.
	prim := newInsertNode(t, dir, 0, n)
	folEng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: d, Alpha: 1, Seed: 5},
		Shards: 2, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	fol := startNode(t, server.NewInsertOnlyBackend(folEng), dir, 1)
	p := newFaultProxy(t, fol.ts.Listener.Addr().String())

	g, err := New(Config{Members: []string{prim.ts.URL, p.URL()}, Replicas: 2, ChunkUpdates: 64})
	if err != nil {
		t.Fatal(err)
	}
	gw := serveGateway(t, g)

	// Cut the follower's connection a couple of KiB into the next ingest
	// stream (once): the gateway must mark it failed and finish on the
	// primary alone.
	p.resetClientToServerAfter(2048, true)
	ups := interleavedInserts(map[int64]int{10: 12, 40: 9, 70: 6, 20: 3, 90: 3, 55: 2, 5: 2})
	// Pad the stream well past the reset budget so the cut lands
	// mid-body: distinct high witness ids that never displace the planted
	// structure under alpha=1.
	for i := 0; i < 5000; i++ {
		ups = append(ups, ins(int64(i)%n, int64(100000+i)))
	}
	code, out := postIngest(t, gw.URL, encodeUpdates(t, n, 0, ups))
	if code != http.StatusOK || out.Accepted != int64(len(ups)) {
		t.Fatalf("ingest through follower reset: HTTP %d accepted %d (%s), want 200/%d", code, out.Accepted, out.Error, len(ups))
	}
	if p.resetCount() != 1 {
		t.Fatalf("proxy reset %d streams, want 1 — the fault was not exercised", p.resetCount())
	}

	// The reconciler finds the follower failed-but-reachable and re-seeds
	// it from the primary (snapshot shipping through the now-clean
	// proxy).
	rec := g.StartReconciler(ReconcilerConfig{Interval: 25 * time.Millisecond, FailAfter: 2, ProbeTimeout: time.Second})
	defer rec.Stop()
	st := waitStatus(t, g, 10*time.Second, "all replicas live again", func(st ReconcilerStatus) bool {
		for _, gs := range st.Groups {
			for _, rs := range gs.Replicas {
				if rs.State != "live" {
					return false
				}
			}
		}
		return true
	})
	var sawReseed bool
	for _, dec := range st.Decisions {
		if dec.Action == "reseed" {
			sawReseed = true
		}
	}
	if !sawReseed {
		t.Fatalf("follower returned to live without a 'reseed' decision; decisions: %+v", st.Decisions)
	}

	// More traffic lands on both, and the follower is byte-identical to
	// the primary again — the re-seed really was an exact prefix.
	more := interleavedInserts(map[int64]int{10: 4, 80: 5, 33: 2})
	postStream(t, gw.URL, n, 0, more)
	for _, path := range []string{"/best", "/results"} {
		want := get(t, prim.ts.URL+path+"?fresh=1", http.StatusOK)
		got := get(t, fol.ts.URL+path+"?fresh=1", http.StatusOK)
		if !bytes.Equal(want, got) {
			t.Fatalf("re-seeded follower diverged on %s:\n%s\nvs\n%s", path, want, got)
		}
	}
}

func TestReplicatedMembershipValidation(t *testing.T) {
	const n = 60
	dir := t.TempDir()

	t.Run("too-few-members-for-replicas", func(t *testing.T) {
		nd := newInsertNode(t, dir, 0, n)
		_, err := New(Config{Members: []string{nd.ts.URL}, Replicas: 2})
		if err == nil || !strings.Contains(err.Error(), "replicas") {
			t.Fatalf("New with 1 member, 2 replicas: err = %v, want a replicas error", err)
		}
	})

	t.Run("unequal-replica-universes", func(t *testing.T) {
		a := newInsertNode(t, dir, 1, n)
		b := newInsertNode(t, dir, 2, n+10)
		_, err := New(Config{Members: []string{a.ts.URL, b.ts.URL}, Replicas: 2})
		if err == nil || !strings.Contains(err.Error(), "replica") {
			t.Fatalf("New with mismatched replica universes: err = %v, want a replica-sizing error", err)
		}
	})

	t.Run("dead-spare", func(t *testing.T) {
		a := newInsertNode(t, dir, 3, n)
		b := newInsertNode(t, dir, 4, n)
		sp := newInsertNode(t, dir, 5, n)
		sp.close()
		_, err := New(Config{Members: []string{a.ts.URL, b.ts.URL, sp.ts.URL}, Replicas: 2})
		if err == nil || !strings.Contains(err.Error(), "spare") {
			t.Fatalf("New with a dead spare: err = %v, want a spare error", err)
		}
	})
}

func TestRebalanceRefusedOnReplicatedGroup(t *testing.T) {
	const n, d = 80, 8
	_, _, gw, _, _ := startReplicatedInsertCluster(t, n, 1, 2, d, 0, nil)
	dir := t.TempDir()
	target := newInsertNode(t, dir, 9, n)
	// Replicated membership belongs to the reconciler; manual rebalance
	// of such a group is refused outright.
	postRebalance(t, gw.URL, RebalanceRequest{Range: 0, Target: target.ts.URL, Mode: "adopt"}, http.StatusConflict)
}
