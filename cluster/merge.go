package cluster

import (
	"sort"

	"feww/server"
)

// The merge rules mirror the engine's own cross-shard query merge
// (engine.go): ranges partition the universe, so no item can be reported
// by two members and concatenation is lossless.  The one genuinely new
// rule is the cross-member tie-break for /best — members are separate
// processes, so "lowest shard index" has no meaning across them; ties on
// size break toward the smaller global vertex id, which is deterministic
// and independent of response arrival order.

// mergeBest max-selects over per-member best responses whose vertex ids
// have already been remapped to global.  found is false only if no
// member reported a neighbourhood.
func mergeBest(target int64, bests []server.BestResponse) server.BestResponse {
	out := server.BestResponse{WitnessTarget: target}
	for _, b := range bests {
		if !b.Found || b.Neighbourhood == nil {
			continue
		}
		if out.Neighbourhood == nil ||
			b.Neighbourhood.Size > out.Neighbourhood.Size ||
			(b.Neighbourhood.Size == out.Neighbourhood.Size && b.Neighbourhood.Vertex < out.Neighbourhood.Vertex) {
			nb := *b.Neighbourhood
			out.Found, out.Neighbourhood = true, &nb
		}
	}
	return out
}

// mergeResults concatenates per-member result lists (vertex ids already
// global) and sorts by vertex id — the cluster-tier analogue of the
// engine's Results merge.  Ranges are disjoint, so there is nothing to
// deduplicate.
func mergeResults(lists [][]server.NeighbourhoodJSON) []server.NeighbourhoodJSON {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]server.NeighbourhoodJSON, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	return out
}

// remapBest and remapResults translate a member's range-local vertex ids
// back to global ids by adding the range's lower bound.
func remapBest(b server.BestResponse, lo int64) server.BestResponse {
	if b.Found && b.Neighbourhood != nil {
		nb := *b.Neighbourhood
		nb.Vertex += lo
		b.Neighbourhood = &nb
	}
	return b
}

func remapResults(nbs []server.NeighbourhoodJSON, lo int64) []server.NeighbourhoodJSON {
	for i := range nbs {
		nbs[i].Vertex += lo
	}
	return nbs
}
