package cluster

import (
	"sort"

	"feww/server"
)

// The merge rules mirror the engine's own cross-shard query merge
// (runtime.go / starengine.go): ranges partition the universe, so no
// item can be reported by two members and concatenation is lossless.
// Two rules are genuinely cluster-level:
//
//   - the cross-member tie-break for /best — members are separate
//     processes, so "lowest shard index" has no meaning across them;
//     ties on size break toward the smaller global vertex id, which is
//     deterministic and independent of response arrival order;
//   - the star rung order — star answers are rung-annotated, and a
//     higher rung (a larger certified degree guess) always beats a lower
//     one, exactly as the StarEngine merges its own shards, so merging
//     over members of merged shards equals merging over everything.

// respRung extracts the star ladder rung of a /best response; flat
// engines' responses carry no rung and sort lowest.
func respRung(b server.BestResponse) int {
	if b.Neighbourhood != nil && b.Neighbourhood.Rung != nil {
		return *b.Neighbourhood.Rung
	}
	return -1
}

// listRung extracts the star ladder rung of a /results list (uniform
// across the list by construction); empty and flat lists sort lowest.
func listRung(l []server.NeighbourhoodJSON) int {
	if len(l) > 0 && l[0].Rung != nil {
		return *l[0].Rung
	}
	return -1
}

// mergeBest selects over per-member best responses whose vertex ids have
// already been remapped to global: max rung first (star), then max size,
// then the smaller global vertex id.  A star winner's rung-specific
// witness target and guess ride along; flat winners keep the cluster
// target.  found is false only if no member reported a neighbourhood.
func mergeBest(target int64, bests []server.BestResponse) server.BestResponse {
	out := server.BestResponse{WitnessTarget: target}
	outRung := -1
	for _, b := range bests {
		if !b.Found || b.Neighbourhood == nil {
			continue
		}
		r := respRung(b)
		better := out.Neighbourhood == nil || r > outRung ||
			(r == outRung && (b.Neighbourhood.Size > out.Neighbourhood.Size ||
				(b.Neighbourhood.Size == out.Neighbourhood.Size && b.Neighbourhood.Vertex < out.Neighbourhood.Vertex)))
		if !better {
			continue
		}
		nb := *b.Neighbourhood
		out.Found, out.Neighbourhood = true, &nb
		outRung = r
		if r >= 0 {
			out.WitnessTarget, out.Guess = b.WitnessTarget, b.Guess
		}
	}
	return out
}

// mergeResults merges per-member result lists (vertex ids already
// global).  Flat lists all concatenate — ranges are disjoint, so there
// is nothing to deduplicate; star lists are filtered to the highest rung
// reported by any member first, the StarEngine's own cross-shard rule
// lifted one tier up.  The result is sorted by vertex id.
func mergeResults(lists [][]server.NeighbourhoodJSON) []server.NeighbourhoodJSON {
	maxRung := -1
	for _, l := range lists {
		if r := listRung(l); r > maxRung {
			maxRung = r
		}
	}
	total := 0
	for _, l := range lists {
		if listRung(l) == maxRung {
			total += len(l)
		}
	}
	out := make([]server.NeighbourhoodJSON, 0, total)
	for _, l := range lists {
		if listRung(l) == maxRung {
			out = append(out, l...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vertex < out[j].Vertex })
	return out
}

// remapBest and remapResults translate a member's range-local vertex ids
// back to global ids by adding the range's lower bound.  Star witnesses
// are global vertex ids already and stay untouched.
func remapBest(b server.BestResponse, lo int64) server.BestResponse {
	if b.Found && b.Neighbourhood != nil {
		nb := *b.Neighbourhood
		nb.Vertex += lo
		b.Neighbourhood = &nb
	}
	return b
}

func remapResults(nbs []server.NeighbourhoodJSON, lo int64) []server.NeighbourhoodJSON {
	for i := range nbs {
		nbs[i].Vertex += lo
	}
	return nbs
}
