package cluster

import (
	"log"
	"sync"
	"sync/atomic"
	"time"

	"feww/server"
)

// Replica states.  A replica is live while the gateway trusts its state
// to be the range's full accepted stream; it is failed from the moment a
// write to it could not be confirmed (an ingest-frame write error, or
// FailAfter consecutive reconciler probe failures).  A failed replica's
// state may be arbitrarily stale, so it only returns to live through a
// re-seed: a fresh snapshot of the primary shipped into it under the
// group's exclusive ingest lock (see Reconciler).
const (
	replicaLive int32 = iota
	replicaFailed
)

func stateName(s int32) string {
	if s == replicaFailed {
		return "failed"
	}
	return "live"
}

// replica is one node holding a copy of a range: the client currently
// pointing at it plus the live/failed state machine above.
type replica struct {
	// clMu guards the client pointer, which rebalance swaps at repoint.
	clMu sync.RWMutex
	cl   *server.Client

	state atomic.Int32

	// fails counts consecutive reconciler probe failures.  It is owned by
	// the reconciler goroutine and must not be touched elsewhere.
	fails int
}

func (r *replica) client() *server.Client {
	r.clMu.RLock()
	defer r.clMu.RUnlock()
	return r.cl
}

func (r *replica) setClient(cl *server.Client) {
	r.clMu.Lock()
	defer r.clMu.Unlock()
	r.cl = cl
}

func (r *replica) live() bool { return r.state.Load() == replicaLive }

// markFailed transitions live -> failed, reporting whether this call did
// the transition (so the caller can record the decision exactly once).
func (r *replica) markFailed() bool { return r.state.CompareAndSwap(replicaLive, replicaFailed) }

// markLive returns the replica to service.  Callers must have re-seeded
// it first (or be knowingly promoting stale state, see the reconciler's
// degraded path): a failed replica may have missed ingest windows.
func (r *replica) markLive() { r.state.Store(replicaLive) }

// group is the replica set serving one range.  Every ingest window fans
// out to all live replicas synchronously — the window is the epoch delta
// of the paper's one-way protocol, so replicas that saw every window are
// byte-identical engines — while published reads rotate across them and
// ?fresh=1 pins to the primary.
type group struct {
	idx int
	rng Range

	// ingestMu serialises ingest for the range against state shipping:
	// an ingest request holds it shared from *before* target selection
	// (ingestTargets) until every replica request of the group has
	// landed, while rebalance and reconciler re-seeds hold it exclusively
	// — so a shipped snapshot is an exact prefix of the accepted stream,
	// a re-seeded replica joins before the next window can flow, and a
	// re-seed can never slip between a request choosing its targets and
	// the replicas seeing it (which would revive a replica that then
	// silently misses the in-flight windows).  Queries do not take it.
	ingestMu sync.RWMutex

	// mu guards the replica set and the primary index.
	mu       sync.RWMutex
	replicas []*replica
	primary  int

	rr atomic.Uint64 // published-read rotation cursor
}

// snapshot returns a copy of the replica set and the current primary.
func (gr *group) snapshot() (reps []*replica, primary *replica) {
	gr.mu.RLock()
	defer gr.mu.RUnlock()
	return append([]*replica(nil), gr.replicas...), gr.replicas[gr.primary]
}

func (gr *group) primaryReplica() *replica {
	gr.mu.RLock()
	defer gr.mu.RUnlock()
	return gr.replicas[gr.primary]
}

// promote makes rep the group's primary, reporting whether rep is still
// a member of the group.
func (gr *group) promote(rep *replica) bool {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	for i, r := range gr.replicas {
		if r == rep {
			gr.primary = i
			return true
		}
	}
	return false
}

// add appends a (re-seeded) replica to the group.  Callers adopting a
// spare do this while holding ingestMu exclusively, so no window can
// flow between the seed snapshot and the replica joining the fan-out.
func (gr *group) add(rep *replica) {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	gr.replicas = append(gr.replicas, rep)
}

// remove drops rep from the group.  It refuses to remove the primary or
// the last replica; reports whether the removal happened.
func (gr *group) remove(rep *replica) bool {
	gr.mu.Lock()
	defer gr.mu.Unlock()
	if len(gr.replicas) <= 1 {
		return false
	}
	for i, r := range gr.replicas {
		if r != rep {
			continue
		}
		if i == gr.primary {
			return false
		}
		gr.replicas = append(gr.replicas[:i], gr.replicas[i+1:]...)
		if gr.primary > i {
			gr.primary--
		}
		return true
	}
	return false
}

// ingestTargets returns the replicas a write fans out to: every live
// replica or — when none is live — every replica, so the request fails
// with the members' real errors (and a resurrected node can keep
// absorbing traffic in the fully-degraded regime) rather than hitting an
// empty fan-out.
//
// Callers must hold ingestMu (shared) before selecting targets and keep
// it across the replica responses: a re-seed runs under the exclusive
// lock and can revive a replica between an unlocked selection and the
// request, silently missing in-flight windows.  fewwvet's lockorder
// analyzer enforces the acquire-before-select half at every call site.
//
//fewwvet:requires ingestMu
func (gr *group) ingestTargets() []*replica {
	reps, _ := gr.snapshot()
	live := make([]*replica, 0, len(reps))
	for _, r := range reps {
		if r.live() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return reps
	}
	return live
}

// readOrder returns the replicas a published read tries in order: the
// live replicas rotated by a per-group cursor — read load spreads across
// the replica set, which is the scale-out half of replication — then the
// failed ones as a last resort.
func (gr *group) readOrder() []*replica {
	reps, _ := gr.snapshot()
	var live, failed []*replica
	for _, r := range reps {
		if r.live() {
			live = append(live, r)
		} else {
			failed = append(failed, r)
		}
	}
	if len(live) > 1 {
		k := int(gr.rr.Add(1) % uint64(len(live)))
		live = append(live[k:], live[:k]...)
	}
	return append(live, failed...)
}

// liveCount returns how many of the group's replicas are live.
func (gr *group) liveCount() int {
	reps, _ := gr.snapshot()
	n := 0
	for _, r := range reps {
		if r.live() {
			n++
		}
	}
	return n
}

// Decision is one autonomous membership action the gateway took: a
// replica marked failed, a follower promoted to primary, a stale replica
// re-seeded, a spare adopted into a group, or an unreachable replica
// retired to the spare pool.  The last decisionCap decisions are served
// by GET /reconciler (and logged), so an operator can audit a failover
// after the fact without having been there.
type Decision struct {
	Time   time.Time `json:"time"`
	Action string    `json:"action"`
	Group  int       `json:"group"`
	Range  Range     `json:"range"`
	URL    string    `json:"url"`
	Detail string    `json:"detail,omitempty"`
}

const decisionCap = 256

func (g *Gateway) recordDecision(action string, gr *group, url, detail string) {
	d := Decision{Time: time.Now(), Action: action, Group: -1, URL: url, Detail: detail}
	if gr != nil {
		d.Group, d.Range = gr.idx, gr.rng
	}
	g.decMu.Lock()
	g.decisions = append(g.decisions, d)
	if len(g.decisions) > decisionCap {
		g.decisions = g.decisions[len(g.decisions)-decisionCap:]
	}
	g.decMu.Unlock()
	if gr != nil {
		log.Printf("fewwgate: decision %s: group %d %s %s: %s", action, d.Group, d.Range, url, detail)
	} else {
		log.Printf("fewwgate: decision %s: %s: %s", action, url, detail)
	}
}

// Decisions returns the retained decision log, oldest first.
func (g *Gateway) Decisions() []Decision {
	g.decMu.Lock()
	defer g.decMu.Unlock()
	return append([]Decision(nil), g.decisions...)
}

// spareList returns the current spare pool.
func (g *Gateway) spareList() []*replica {
	g.spareMu.Lock()
	defer g.spareMu.Unlock()
	return append([]*replica(nil), g.spares...)
}

// takeSpare removes rep from the spare pool, reporting whether it was
// still there (a concurrent taker may have won).
func (g *Gateway) takeSpare(rep *replica) bool {
	g.spareMu.Lock()
	defer g.spareMu.Unlock()
	for i, s := range g.spares {
		if s == rep {
			g.spares = append(g.spares[:i], g.spares[i+1:]...)
			return true
		}
	}
	return false
}

// addSpare returns a replica to the spare pool — either an adoption that
// failed mid-seed, or a dead group member retired in favour of a spare
// (if its node ever comes back, it is re-seedable capacity again).
func (g *Gateway) addSpare(rep *replica) {
	g.spareMu.Lock()
	defer g.spareMu.Unlock()
	g.spares = append(g.spares, rep)
}
