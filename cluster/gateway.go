package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// Config parameterises a Gateway.
type Config struct {
	// Members lists the fewwd base URLs in range order.  With Replicas R,
	// consecutive runs of R members form one replica group: members
	// [j*R, (j+1)*R) all serve copies of the j-th contiguous range, whose
	// length is discovered from the group's first member's /healthz at
	// construction (every replica must report the same universe).  Members
	// beyond the last full group are spares: idle nodes the reconciler
	// re-seeds into a group when a replica dies.
	Members []string
	// Replicas is the number of copies kept of each range (default 1, the
	// unreplicated layout of earlier versions).  Every ingest window fans
	// out to all live replicas of the owning group synchronously, so the
	// copies stay byte-identical; published reads rotate across them.
	Replicas int
	// MemberTimeout bounds each member request end to end (default 30s;
	// negative disables the deadline).  One slow node then fails its slice
	// of a scatter-gather instead of wedging the whole fan-out.
	MemberTimeout time.Duration
	// MaxBodyBytes caps an /ingest request body; 0 means 256 MiB.  The
	// streaming path holds only one decode window regardless of body
	// size, so the cap is a request-size sanity bound there; the
	// ?atomic=1 path buffers the request *decoded* — roughly 3-4x the
	// varint-encoded size — before anything is forwarded, which is why
	// the default stays smaller than a node's (1 GiB).  Producers using
	// atomic ingest should chunk large replays into multiple requests,
	// as cmd/fewwload does.
	MaxBodyBytes int64
	// ChunkUpdates is the streaming-ingest window: the gateway decodes,
	// validates, and splits this many updates at a time, then forwards
	// each replica's share as one frame into its already-open member
	// request (default 8192).  Larger windows amortise frame headers and
	// syscalls; smaller ones tighten the reject-before-forward boundary
	// and the gateway's resident window.
	ChunkUpdates int
}

// Gateway is the cluster front-end: one logical FEwW engine over the
// member nodes.  It is an http.Handler factory (Handler) mirroring the
// fewwd endpoint surface, plus a rebalance operation for moving ranges
// between nodes and an optional autonomous Reconciler.  All handlers are
// safe for concurrent use.
type Gateway struct {
	cfg    Config
	kind   string // members' engine kind: "insert-only", "turnstile", "star" or "window"
	n      int64  // total item universe: sum of group ranges
	m      int64  // witness universe (turnstile/star members; 0 otherwise)
	target int64  // the members' witness target, identical on every member
	rungs  int    // star guess-ladder length (0 for the flat kinds)

	// window geometry (window members only; 0 otherwise).  Every member
	// must agree on both: each node slides its own window over the share
	// of the stream routed to it, so under range-balanced traffic the
	// cluster serves one coherent global window of groups x window
	// updates — which only holds when the member windows are identical.
	window        int64
	windowBuckets int64

	groups []*group
	mux    *http.ServeMux
	start  time.Time

	// spare pool: reachable nodes not currently serving a range, adoptable
	// by the reconciler when a group loses a replica.
	spareMu sync.Mutex
	spares  []*replica

	// decision ring: the last decisionCap autonomous membership actions.
	decMu     sync.Mutex
	decisions []Decision

	// reconMu guards the reconciler pointer (GET /reconciler reads it).
	reconMu sync.Mutex
	recon   *Reconciler

	// rebalanceMu serialises rebalance operations gateway-wide: the
	// duplicate-target guard scans current membership, so two concurrent
	// moves of *different* ranges onto the same fresh node would both
	// pass it and the second restore would destroy the first range's
	// state.  Rebalances are rare admin operations; serialising them is
	// free.
	rebalanceMu sync.Mutex
}

// New builds a gateway over the configured members, probing each node's
// /healthz to discover its universe size and verify the cluster is
// coherent: every member must serve the same engine kind with the same
// witness target (and, for turnstile engines, the same witness universe
// m), and the replicas of one group must report the same universe size.
// Group j's range is [sum of earlier group sizes, + its own size).  A
// member that is down or draining fails construction — callers that want
// to wait for a bootstrapping cluster retry New (see cmd/fewwgate -wait).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: no members configured")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.MemberTimeout == 0 {
		cfg.MemberTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.ChunkUpdates <= 0 {
		cfg.ChunkUpdates = 8192
	}
	nGroups := len(cfg.Members) / cfg.Replicas
	if nGroups == 0 {
		return nil, fmt.Errorf("cluster: %d members cannot hold %d replicas of even one range", len(cfg.Members), cfg.Replicas)
	}
	g := &Gateway{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	lo := int64(0)
	for j := 0; j < nGroups; j++ {
		gr := &group{idx: j}
		var groupN int64
		for k := 0; k < cfg.Replicas; k++ {
			idx := j*cfg.Replicas + k
			url := cfg.Members[idx]
			cl := g.newClient(url)
			h, err := cl.Health()
			if err != nil {
				return nil, fmt.Errorf("cluster: member %d (%s): %w", idx, url, err)
			}
			if !h.Serving {
				return nil, fmt.Errorf("cluster: member %d (%s) is draining", idx, url)
			}
			if j == 0 && k == 0 {
				g.kind, g.m, g.target, g.rungs = h.Engine, h.M, h.WitnessTarget, h.Rungs
				g.window, g.windowBuckets = h.Window, h.WindowBuckets
			} else if h.Engine != g.kind || h.M != g.m || h.WitnessTarget != g.target || h.Rungs != g.rungs ||
				h.Window != g.window || h.WindowBuckets != g.windowBuckets {
				return nil, fmt.Errorf("cluster: member %d (%s) is incoherent: engine %s m %d target %d rungs %d window %d/%d, cluster has engine %s m %d target %d rungs %d window %d/%d",
					idx, url, h.Engine, h.M, h.WitnessTarget, h.Rungs, h.Window, h.WindowBuckets, g.kind, g.m, g.target, g.rungs, g.window, g.windowBuckets)
			}
			if k == 0 {
				groupN = h.N
				gr.rng = Range{Lo: lo, Hi: lo + groupN}
			} else if h.N != groupN {
				return nil, fmt.Errorf("cluster: member %d (%s): replica universe %d, range %d's other replicas hold %d — replicas of one range must be sized identically",
					idx, url, h.N, j, groupN)
			}
			gr.replicas = append(gr.replicas, &replica{cl: cl})
		}
		g.groups = append(g.groups, gr)
		lo += groupN
	}
	g.n = lo
	// Leftover members are spares.  They must be reachable and serving —
	// whatever engine they hold is a placeholder the first re-seed
	// replaces wholesale through POST /restore.
	for idx := nGroups * cfg.Replicas; idx < len(cfg.Members); idx++ {
		url := cfg.Members[idx]
		cl := g.newClient(url)
		h, err := cl.Health()
		if err != nil {
			return nil, fmt.Errorf("cluster: spare %s: %w", url, err)
		}
		if !h.Serving {
			return nil, fmt.Errorf("cluster: spare %s is draining", url)
		}
		g.spares = append(g.spares, &replica{cl: cl})
	}
	// A star cluster's ranges are slices of the vertex set whose total
	// must be exactly the graph the members' ladders (and witness
	// universes) were sized for — anything else silently mis-scopes the
	// double cover.
	if g.kind == "star" && g.n != g.m {
		return nil, fmt.Errorf("cluster: star member ranges cover %d vertices, engines are sized for a %d-vertex graph", g.n, g.m)
	}
	g.mux.HandleFunc("POST /ingest", g.handleIngest)
	g.mux.HandleFunc("GET /best", g.handleBest)
	g.mux.HandleFunc("GET /results", g.handleResults)
	g.mux.HandleFunc("GET /stats", g.handleStats)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /reconciler", g.handleReconciler)
	g.mux.HandleFunc("POST /checkpoint", g.handleCheckpoint)
	g.mux.HandleFunc("POST /rebalance", g.handleRebalance)
	g.mux.HandleFunc("GET /{$}", g.handleIndex)
	return g, nil
}

func (g *Gateway) newClient(url string) *server.Client {
	timeout := g.cfg.MemberTimeout
	if timeout < 0 {
		timeout = 0
	}
	return &server.Client{Base: url, Timeout: timeout}
}

// Handler returns the HTTP handler serving every gateway endpoint.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Universe returns the total item universe [0, n) and the witness
// universe m (0 for insert-only clusters).
func (g *Gateway) Universe() (n, m int64) { return g.n, g.m }

// Kind returns the members' engine kind.
func (g *Gateway) Kind() string { return g.kind }

// Replicas returns the configured copies per range.
func (g *Gateway) Replicas() int { return g.cfg.Replicas }

// Ranges returns the static range partition in group order.
func (g *Gateway) Ranges() []Range {
	out := make([]Range, len(g.groups))
	for i, gr := range g.groups {
		out[i] = gr.rng
	}
	return out
}

// groupFor returns the index of the group whose range holds global item
// a.  Ranges are contiguous and ascending, so this is a binary search
// over the lower bounds.
func (g *Gateway) groupFor(a int64) int {
	lo, hi := 0, len(g.groups)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.groups[mid].rng.Lo <= a {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// scatterGroups runs fn against every group concurrently and returns the
// per-group errors.
func (g *Gateway) scatterGroups(fn func(j int, gr *group) error) []error {
	errs := make([]error, len(g.groups))
	var wg sync.WaitGroup
	for j, gr := range g.groups {
		wg.Add(1)
		go func(j int, gr *group) {
			defer wg.Done()
			errs[j] = fn(j, gr)
		}(j, gr)
	}
	wg.Wait()
	return errs
}

// groupRead serves one group's slice of a read.  A published read tries
// the replicas in rotation order until one answers — a dead or stalled
// replica costs the caller one member timeout, not the response — while
// ?fresh=1 pins to the primary and does not fail over: fresh answers are
// the byte-identity contract, and only the primary is guaranteed to have
// every accepted window at the moment of the call.
func (g *Gateway) groupRead(gr *group, fresh bool, fn func(cl *server.Client) error) error {
	if fresh {
		return fn(gr.primaryReplica().client())
	}
	var firstErr error
	for _, rep := range gr.readOrder() {
		if err := fn(rep.client()); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return nil
	}
	return firstErr
}

// firstError joins per-group errors into one message naming the ranges
// at fault (by the URL of each group's current primary), or returns nil.
func (g *Gateway) firstError(errs []error) error {
	var msgs []string
	for j, err := range errs {
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("range %d (%s): %v", j, g.groupURL(j), err))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return errors.New(strings.Join(msgs, "; "))
}

// wantFresh mirrors the server's ?fresh=1 opt-in.
func wantFresh(r *http.Request) bool {
	fresh, err := strconv.ParseBool(r.URL.Query().Get("fresh"))
	return err == nil && fresh
}

// wantAtomic mirrors the ?atomic=1 opt-in to buffer-whole ingest.
func wantAtomic(r *http.Request) bool {
	atomic, err := strconv.ParseBool(r.URL.Query().Get("atomic"))
	return err == nil && atomic
}

// handleIngest accepts a FEWW binary stream over the full universe and
// splits it by range (items remapped to range-local ids, order
// preserved), fanning each range's share out to every live replica of
// the owning group.
//
// The default path is *streaming*: the gateway decodes one bounded
// window (Config.ChunkUpdates) at a time, validates it, and forwards
// each replica's share as one frame into that replica's already-open
// /ingest request — decode of window k+1 overlaps the members applying
// window k, and gateway memory stays one window regardless of body
// size.  The window is also the unit of replication: every live replica
// of a group receives the same frames in the same order, so replicas
// that saw every window hold byte-identical engine state (the window is
// the epoch delta of the paper's one-way protocol).  A replica whose
// stream dies mid-request is marked failed and dropped from the fan-out
// — the request continues on the survivors and still succeeds, which is
// what lets a loader stream through a node kill without retrying (and
// therefore without the double-apply a retry could cause).  Only when a
// group loses *all* its replicas does the request fail (HTTP 502), with
// Accepted reporting the partial progress.
//
// The all-or-nothing contract of PR 3 holds per window rather than per
// request: nothing from a window containing a malformed or
// out-of-universe update is forwarded (HTTP 400), but earlier windows
// were already applied, and the response's Accepted count says how
// much.
//
// ?atomic=1 restores the whole-request boundary: the entire request is
// decoded and validated before a single update is forwarded, so a
// rejected stream leaves every member untouched.  It costs the decoded
// buffer (roughly 3-4x the encoded size) and a serial decode-then-send.
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if wantAtomic(r) {
		g.ingestAtomic(w, body)
		return
	}
	g.ingestStreaming(w, body)
}

// replicaStream is the gateway side of one replica's in-flight streaming
// ingest: the pipe feeding the replica's request body, the frame writer
// encoding windows into it, and the replica's eventual response.
type replicaStream struct {
	rep    *replica
	pw     *io.PipeWriter
	fw     *stream.FrameWriter
	frames int
	broken bool // a frame write failed; the replica was marked failed
	resp   server.IngestResponse
	err    error
	done   chan struct{}
}

// groupIngest is one group's fan-out of a streaming ingest request.
type groupIngest struct {
	gr      *group
	streams []*replicaStream
}

// exhausted reports whether every replica stream of the group is broken.
func (gi *groupIngest) exhausted() bool {
	for _, rs := range gi.streams {
		if !rs.broken {
			return false
		}
	}
	return true
}

// failStream marks a replica stream broken after a write error, marks
// the replica failed (its state is now missing a window — only a re-seed
// may bring it back), and records the decision once.
func (g *Gateway) failStream(gi *groupIngest, rs *replicaStream, err error) {
	rs.broken = true
	rs.pw.CloseWithError(err)
	if rs.rep.markFailed() {
		g.recordDecision("fail", gi.gr, rs.rep.client().Base, "ingest stream: "+err.Error())
	}
}

func (g *Gateway) ingestStreaming(w http.ResponseWriter, body io.Reader) {
	sc, err := stream.NewScanner(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}
	headerM := g.m
	if headerM == 0 {
		headerM = sc.M()
	}

	// Open one streaming request per live replica before touching the
	// body.  The group's shared ingest lock is taken *before* target
	// selection and held (one reader hold per group, released in finish
	// once the group's responses are gathered) across the whole request:
	// a rebalance or reconciler re-seed takes the lock exclusively, so it
	// either completes before the targets are chosen or waits until every
	// stream has landed — never in between, where it could seed a failed
	// replica from the primary's pre-request state and mark it live while
	// this request's windows bypass it, silently diverging the copies.
	// A pipe write blocks until the replica's transport consumes it, so a
	// slow replica back-pressures the whole forward loop instead of
	// growing a gateway-side buffer; a dead replica closes its read end,
	// failing the next write immediately.
	gis := make([]*groupIngest, len(g.groups))
	for j, gr := range g.groups {
		gr.ingestMu.RLock()
		targets := gr.ingestTargets()
		gi := &groupIngest{gr: gr, streams: make([]*replicaStream, len(targets))}
		gis[j] = gi
		for k, rep := range targets {
			pr, pw := io.Pipe()
			rs := &replicaStream{rep: rep, pw: pw, fw: stream.NewFrameWriter(pw), done: make(chan struct{})}
			gi.streams[k] = rs
			go func(rs *replicaStream, pr *io.PipeReader) {
				defer close(rs.done)
				rs.resp, rs.err = rs.rep.client().IngestStream(pr)
				pr.CloseWithError(rs.err)
			}(rs, pr)
		}
	}

	// finish closes every replica stream — first writing one empty frame
	// to any replica that never received data, so its body decodes and a
	// dead replica surfaces even when no traffic reached its range — then
	// gathers the responses, releasing each group's ingest lock once its
	// last stream has landed.  Replicas of a group that answered received
	// identical frames, so their accepted counts agree; the group's
	// contribution is the max over its replicas (never the sum, which
	// would count replication as throughput).  A replica whose request
	// errored is marked failed; the group only fails the request when
	// every replica errored.
	finish := func() (server.IngestResponse, error) {
		var out server.IngestResponse
		groupErrs := make([]error, len(gis))
		for _, gi := range gis {
			for _, rs := range gi.streams {
				if !rs.broken && rs.frames == 0 {
					_ = rs.fw.WriteFrame(gi.gr.rng.Len(), headerM, nil)
				}
				rs.pw.Close()
			}
		}
		for j, gi := range gis {
			var accepted, total int64
			var errs []string
			ok := false
			for _, rs := range gi.streams {
				<-rs.done
				if rs.err != nil {
					if rs.rep.markFailed() {
						g.recordDecision("fail", gi.gr, rs.rep.client().Base, "ingest response: "+rs.err.Error())
					}
					errs = append(errs, fmt.Sprintf("%s: %v", rs.rep.client().Base, rs.err))
				} else {
					ok = true
				}
				accepted = max(accepted, rs.resp.Accepted)
				total = max(total, rs.resp.Total)
			}
			gi.gr.ingestMu.RUnlock()
			out.Accepted += accepted
			out.Total += total
			if !ok {
				groupErrs[j] = errors.New(strings.Join(errs, "; "))
			}
		}
		return out, g.firstError(groupErrs)
	}

	per := make([][]feww.Update, len(g.groups))
	flush := func() error {
		for j, ups := range per {
			if len(ups) == 0 {
				continue
			}
			gi := gis[j]
			for _, rs := range gi.streams {
				if rs.broken {
					continue
				}
				if err := rs.fw.WriteFrame(gi.gr.rng.Len(), headerM, ups); err != nil {
					g.failStream(gi, rs, err)
				} else {
					rs.frames++
				}
			}
			per[j] = ups[:0]
			if gi.exhausted() {
				return fmt.Errorf("range %d (%s): every replica failed mid-stream", j, gi.gr.rng)
			}
		}
		return nil
	}

	var (
		badReq  error // malformed or invalid stream: HTTP 400
		sendErr error // a whole group died mid-forward: HTTP 502
	)
	i, window := 0, 0
	for badReq == nil && sendErr == nil && sc.Scan() {
		u := sc.Update()
		if err := g.checkUpdate(i, u); err != nil {
			// Reject-before-forward holds per window: the window holding
			// the invalid update is dropped whole; nothing at or past it
			// is ever forwarded.
			badReq = err
			break
		}
		j := g.groupFor(u.A)
		u.A -= g.groups[j].rng.Lo
		per[j] = append(per[j], u)
		i++
		window++
		if window >= g.cfg.ChunkUpdates {
			sendErr = flush()
			window = 0
		}
	}
	if badReq == nil && sendErr == nil {
		if err := sc.Err(); err != nil {
			badReq = err
		} else {
			sendErr = flush()
		}
	}

	out, gatherErr := finish()
	switch {
	case badReq != nil:
		out.Error = badReq.Error()
		writeJSON(w, http.StatusBadRequest, out)
	case sendErr != nil || gatherErr != nil:
		// The replicas' own response errors name the root cause when they
		// exist; the pipe-write error is the fallback.
		if gatherErr != nil {
			out.Error = gatherErr.Error()
		} else {
			out.Error = sendErr.Error()
		}
		writeJSON(w, http.StatusBadGateway, out)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// ingestAtomic is the ?atomic=1 path: decode and validate the entire
// request, then fan the per-range sub-streams out concurrently to every
// live replica.  A rejected stream leaves every member untouched; a
// replica that fails is marked failed, and the request only errors when
// a whole group failed.
func (g *Gateway) ingestAtomic(w http.ResponseWriter, body io.Reader) {
	sc, err := stream.NewScanner(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}
	per := make([][]feww.Update, len(g.groups))
	i := 0
	for sc.Scan() {
		u := sc.Update()
		if err := g.checkUpdate(i, u); err != nil {
			writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
			return
		}
		j := g.groupFor(u.A)
		u.A -= g.groups[j].rng.Lo
		per[j] = append(per[j], u)
		i++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}

	// Forward every sub-stream concurrently.  Groups with no updates in
	// this request still get an empty stream: the response's Total then
	// reflects the whole cluster, and a dead replica surfaces here rather
	// than silently once traffic reaches its range.
	headerM := g.m
	if headerM == 0 {
		headerM = sc.M()
	}
	var out server.IngestResponse
	var outMu sync.Mutex
	groupErrs := g.scatterGroups(func(j int, gr *group) error {
		// As on the streaming path, the shared ingest lock is taken before
		// target selection and held until every replica request has landed,
		// so an exclusive-lock re-seed cannot slip between choosing the
		// targets and the replicas seeing the request.
		gr.ingestMu.RLock()
		defer gr.ingestMu.RUnlock()
		targets := gr.ingestTargets()
		resps := make([]server.IngestResponse, len(targets))
		errs := make([]error, len(targets))
		var wg sync.WaitGroup
		for k, rep := range targets {
			wg.Add(1)
			go func(k int, rep *replica) {
				defer wg.Done()
				resps[k], errs[k] = rep.client().Ingest(gr.rng.Len(), headerM, per[j])
			}(k, rep)
		}
		wg.Wait()
		var accepted, total int64
		var msgs []string
		ok := false
		for k, rep := range targets {
			if errs[k] != nil {
				if rep.markFailed() {
					g.recordDecision("fail", gr, rep.client().Base, "atomic ingest: "+errs[k].Error())
				}
				msgs = append(msgs, fmt.Sprintf("%s: %v", rep.client().Base, errs[k]))
			} else {
				ok = true
			}
			accepted = max(accepted, resps[k].Accepted)
			total = max(total, resps[k].Total)
		}
		outMu.Lock()
		out.Accepted += accepted
		out.Total += total
		outMu.Unlock()
		if !ok {
			return errors.New(strings.Join(msgs, "; "))
		}
		return nil
	})
	if err := g.firstError(groupErrs); err != nil {
		out.Error = err.Error()
		writeJSON(w, http.StatusBadGateway, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// checkUpdate validates one decoded update against the cluster universe
// and engine kind, mirroring the engine's own boundary checks so nothing
// invalid is ever forwarded.
func (g *Gateway) checkUpdate(i int, u feww.Update) error {
	if u.A < 0 || u.A >= g.n {
		return fmt.Errorf("%w: update %d: item %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.A, g.n)
	}
	if u.B < 0 {
		return fmt.Errorf("%w: update %d: witness %d is negative", feww.ErrOutOfUniverse, i, u.B)
	}
	switch g.kind {
	case "turnstile":
		if u.B >= g.m {
			return fmt.Errorf("%w: update %d: witness %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.B, g.m)
		}
	case "star":
		// Star streams are directed half-edges over the vertex set: both
		// endpoints are vertices, and deletions need the turnstile ladder
		// (not served by this cluster).
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d: %v: star cluster cannot apply deletions", i, u)
		}
		if u.B >= g.m {
			return fmt.Errorf("%w: update %d: neighbour %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.B, g.m)
		}
	case "window":
		// A sliding window forgets by aging out, never by explicit
		// removal; deletions need the turnstile ladder.
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d: %v: window cluster cannot apply deletions (run the members in turnstile mode)", i, u)
		}
	default:
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d: %v: insert-only cluster cannot apply deletions (run the members in turnstile mode)", i, u)
		}
	}
	return nil
}

// checkAnswerRung rejects a member answer whose star rung annotation
// contradicts the cluster's engine kind — the query-path half of the
// kind-swap guard.  /healthz catches a member whose engine was replaced
// by a foreign-kind snapshot, but only when polled; without this check a
// star answer arriving in a flat cluster would *dominate* the merge
// (rung priority) and a flat answer in a star cluster would corrupt the
// rung filter, silently, on every query until someone looks at healthz.
// Flat-kind swaps (insert-only vs turnstile) produce indistinguishable
// answer shapes and merge under the same rules; those remain
// healthz/stats territory.
func (g *Gateway) checkAnswerRung(rung int) error {
	if g.rungs == 0 && rung >= 0 {
		return errors.New("rung-annotated answer from a member of a non-star cluster: engine kind mismatch (check GET /healthz)")
	}
	if g.rungs > 0 && rung < 0 {
		return errors.New("answer without a star rung in a star cluster: engine kind mismatch (check GET /healthz)")
	}
	return nil
}

func (g *Gateway) handleBest(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	bests := make([]server.BestResponse, len(g.groups))
	errs := g.scatterGroups(func(j int, gr *group) error {
		return g.groupRead(gr, fresh, func(cl *server.Client) error {
			var (
				b   server.BestResponse
				err error
			)
			if fresh {
				b, err = cl.BestFresh()
			} else {
				b, err = cl.Best()
			}
			if err != nil {
				return err
			}
			if b.Found {
				if err := g.checkAnswerRung(respRung(b)); err != nil {
					return err
				}
			}
			bests[j] = remapBest(b, gr.rng.Lo)
			return nil
		})
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, mergeBest(g.target, bests))
}

func (g *Gateway) handleResults(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	lists := make([][]server.NeighbourhoodJSON, len(g.groups))
	errs := g.scatterGroups(func(j int, gr *group) error {
		return g.groupRead(gr, fresh, func(cl *server.Client) error {
			var (
				nbs []server.NeighbourhoodJSON
				err error
			)
			if fresh {
				nbs, err = cl.ResultsFresh()
			} else {
				nbs, err = cl.Results()
			}
			if err != nil {
				return err
			}
			if len(nbs) > 0 {
				if err := g.checkAnswerRung(listRung(nbs)); err != nil {
					return err
				}
			}
			lists[j] = remapResults(nbs, gr.rng.Lo)
			return nil
		})
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, mergeResults(lists))
}

// MemberStats is one replica's slice of the cluster /stats payload.
type MemberStats struct {
	URL   string `json:"url"`
	Range Range  `json:"range"`
	// Group is the replica group serving the range (-1 for spares), Role
	// "primary", "replica" or "spare", State the gateway's live/failed
	// judgement of the replica.
	Group int                   `json:"group"`
	Role  string                `json:"role"`
	State string                `json:"state"`
	Error string                `json:"error,omitempty"`
	Stats *server.StatsResponse `json:"stats,omitempty"`
}

// StatsResponse is the cluster /stats payload: the primaries' numbers
// summed (the same merge the engine applies across shards — replicas are
// copies, so summing them would double-count) plus the per-replica
// breakdown.  The summed field names match the node payload, so a client
// that understands fewwd /stats can read the aggregate.
type StatsResponse struct {
	Service       string        `json:"service"`
	Engine        string        `json:"engine"`
	Consistency   string        `json:"consistency"`
	Members       int           `json:"members"`
	Groups        int           `json:"groups"`
	Replicas      int           `json:"replicas"`
	Degraded      bool          `json:"degraded"`
	N             int64         `json:"n"`
	M             int64         `json:"m,omitempty"`
	WitnessTarget int64         `json:"witness_target"`
	Shards        int           `json:"shards"`
	Elements      int64         `json:"elements"`
	SpaceWords    int           `json:"space_words"`
	SnapshotBytes int           `json:"snapshot_bytes"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	PerMember     []MemberStats `json:"per_member"`
	Spares        []MemberStats `json:"spares,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	consistency := "published"
	if fresh {
		consistency = "fresh"
	}
	// Flatten the current membership, then fan the stats fetches out over
	// every replica at once.
	type slot struct {
		gr      *group
		rep     *replica
		primary bool
	}
	var slots []slot
	for _, gr := range g.groups {
		reps, prim := gr.snapshot()
		for _, rep := range reps {
			slots = append(slots, slot{gr: gr, rep: rep, primary: rep == prim})
		}
	}
	stats := make([]server.StatsResponse, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s slot) {
			defer wg.Done()
			if fresh {
				stats[i], errs[i] = s.rep.client().StatsFresh()
			} else {
				stats[i], errs[i] = s.rep.client().Stats()
			}
		}(i, s)
	}
	wg.Wait()

	out := StatsResponse{
		Service:       "fewwgate",
		Engine:        g.kind,
		Consistency:   consistency,
		Members:       len(slots),
		Groups:        len(g.groups),
		Replicas:      g.cfg.Replicas,
		N:             g.n,
		M:             g.m,
		WitnessTarget: g.target,
		UptimeSeconds: time.Since(g.start).Seconds(),
		PerMember:     make([]MemberStats, len(slots)),
	}
	for i, s := range slots {
		role := "replica"
		if s.primary {
			role = "primary"
		}
		ms := MemberStats{
			URL: s.rep.client().Base, Range: s.gr.rng, Group: s.gr.idx,
			Role: role, State: stateName(s.rep.state.Load()),
		}
		if errs[i] != nil {
			ms.Error = errs[i].Error()
			out.Degraded = true
		} else if st := stats[i]; st.Engine != g.kind {
			// A replica serving another engine kind (a foreign /restore
			// slipped in) must surface as degraded here too, not only on
			// the next /healthz poll — its numbers would corrupt the sums.
			ms.Error = fmt.Sprintf("engine kind %q, cluster is %q", st.Engine, g.kind)
			ms.Stats = &st
			out.Degraded = true
		} else {
			ms.Stats = &st
			if s.primary {
				out.Shards += st.Shards
				out.Elements += st.Elements
				out.SpaceWords += st.SpaceWords
				out.SnapshotBytes += st.SnapshotBytes
			}
		}
		out.PerMember[i] = ms
	}
	for _, rep := range g.spareList() {
		// Spares hold placeholder engines; they are listed, not verified,
		// and never count toward the sums or degrade the cluster.
		out.Spares = append(out.Spares, MemberStats{
			URL: rep.client().Base, Group: -1, Role: "spare", State: stateName(rep.state.Load()),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// MemberHealth is one replica's slice of the cluster /healthz payload.
// Ready means the replica answered the probe, is serving, and its engine
// matches the range and cluster parameters it is supposed to hold; State
// is the gateway's independent live/failed judgement (a stale replica
// awaiting re-seed probes Ready but is failed).
type MemberHealth struct {
	URL    string                 `json:"url"`
	Range  Range                  `json:"range"`
	Group  int                    `json:"group"`
	Role   string                 `json:"role"`
	State  string                 `json:"state"`
	Ready  bool                   `json:"ready"`
	Error  string                 `json:"error,omitempty"`
	Health *server.HealthResponse `json:"health,omitempty"`
}

// HealthzResponse is the cluster /healthz payload.  The top-level field
// names mirror the node payload (service, engine, serving, n, m,
// witness_target, shards), so server.Client.Health reads a gateway
// exactly as it reads a node — the cluster presents as one big fewwd.
// Serving requires every group's *primary* to be ready: with replication
// a dead follower degrades redundancy (visible per member below) without
// taking the cluster out of service.
type HealthzResponse struct {
	Service       string `json:"service"`
	Engine        string `json:"engine"`
	Serving       bool   `json:"serving"`
	N             int64  `json:"n"`
	M             int64  `json:"m,omitempty"`
	WitnessTarget int64  `json:"witness_target"`
	Shards        int    `json:"shards"`
	Elements      int64  `json:"elements"`
	Groups        int    `json:"groups"`
	Replicas      int    `json:"replicas"`
	// Window and WindowBuckets (window clusters only) report the *global*
	// window the cluster serves: each member slides its own window over
	// its range's share of the stream, so under range-balanced traffic
	// the cluster covers groups x member-window updates.  The field names
	// match the node payload, so a client reads a gateway exactly as it
	// reads one node.
	Window        int64          `json:"window,omitempty"`
	WindowBuckets int64          `json:"window_buckets,omitempty"`
	Members       []MemberHealth `json:"members"`
	Spares        []MemberHealth `json:"spares,omitempty"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := HealthzResponse{
		Service:       "fewwgate",
		Engine:        g.kind,
		Serving:       true,
		N:             g.n,
		M:             g.m,
		WitnessTarget: g.target,
		Groups:        len(g.groups),
		Replicas:      g.cfg.Replicas,
	}
	if g.window > 0 {
		out.Window = g.window * int64(len(g.groups))
		out.WindowBuckets = g.windowBuckets
	}
	// Spares join the same concurrent probe fan-out as the group members:
	// one dead spare then costs the response a single member timeout in
	// parallel with everything else, instead of stalling /healthz for a
	// full timeout per spare after the members have answered.
	type slot struct {
		gr      *group // nil for spares
		rep     *replica
		primary bool
	}
	var slots []slot
	for _, gr := range g.groups {
		reps, prim := gr.snapshot()
		for _, rep := range reps {
			slots = append(slots, slot{gr: gr, rep: rep, primary: rep == prim})
		}
	}
	for _, rep := range g.spareList() {
		slots = append(slots, slot{rep: rep})
	}
	healths := make([]server.HealthResponse, len(slots))
	errs := make([]error, len(slots))
	var wg sync.WaitGroup
	for i, s := range slots {
		wg.Add(1)
		go func(i int, s slot) {
			defer wg.Done()
			healths[i], errs[i] = s.rep.client().Health()
		}(i, s)
	}
	wg.Wait()
	for i, s := range slots {
		if s.gr == nil {
			mh := MemberHealth{URL: s.rep.client().Base, Group: -1, Role: "spare", State: stateName(s.rep.state.Load())}
			if errs[i] != nil {
				mh.Error = errs[i].Error()
			} else {
				h := healths[i]
				mh.Health = &h
				mh.Ready = h.Serving
			}
			out.Spares = append(out.Spares, mh)
			continue
		}
		role := "replica"
		if s.primary {
			role = "primary"
		}
		mh := MemberHealth{
			URL: s.rep.client().Base, Range: s.gr.rng, Group: s.gr.idx,
			Role: role, State: stateName(s.rep.state.Load()),
		}
		if errs[i] != nil {
			mh.Error = errs[i].Error()
		} else {
			h := healths[i]
			mh.Health = &h
			if !h.Serving {
				mh.Error = "draining"
			} else if err := g.verifyMember(h, s.gr.rng); err != nil {
				mh.Error = err.Error()
			} else {
				mh.Ready = true
				if s.primary {
					out.Elements += h.Elements
					out.Shards += h.Shards
				}
			}
		}
		if s.primary && !mh.Ready {
			out.Serving = false
		}
		out.Members = append(out.Members, mh)
	}
	code := http.StatusOK
	if !out.Serving {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// verifyMember checks that a member's reported engine matches the range
// and cluster parameters it serves — the guard that catches an operator
// pointing a range at a node sized for a different one, and a member
// whose engine kind was swapped out from under the cluster (e.g. a
// POST /restore of another kind's snapshot): merging answers across
// kinds would silently produce garbage, so a mismatched member is
// reported not-ready instead.
func (g *Gateway) verifyMember(h server.HealthResponse, rng Range) error {
	if h.Engine != g.kind {
		return fmt.Errorf("engine kind %q, cluster is %q", h.Engine, g.kind)
	}
	if h.N != rng.Len() {
		return fmt.Errorf("engine universe %d does not cover range %s (%d items)", h.N, rng, rng.Len())
	}
	if h.M != g.m {
		return fmt.Errorf("witness universe %d, cluster has %d", h.M, g.m)
	}
	if h.WitnessTarget != g.target {
		return fmt.Errorf("witness target %d, cluster has %d", h.WitnessTarget, g.target)
	}
	if h.Rungs != g.rungs {
		return fmt.Errorf("star ladder has %d rungs, cluster has %d", h.Rungs, g.rungs)
	}
	if h.Window != g.window || h.WindowBuckets != g.windowBuckets {
		return fmt.Errorf("window geometry %d/%d, cluster has %d/%d", h.Window, h.WindowBuckets, g.window, g.windowBuckets)
	}
	return nil
}

// groupURL returns the base URL of group j's current primary.
func (g *Gateway) groupURL(j int) string {
	return g.groups[j].primaryReplica().client().Base
}

// MemberCheckpoint is one replica's slice of the cluster /checkpoint
// payload.
type MemberCheckpoint struct {
	URL   string `json:"url"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// CheckpointResponse is the cluster /checkpoint payload.
type CheckpointResponse struct {
	Members    []MemberCheckpoint `json:"members"`
	TotalBytes int64              `json:"total_bytes"`
}

func (g *Gateway) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	// Checkpoints fan out to the live replicas only: a failed replica's
	// state is stale by definition, and checkpointing a dead node cannot
	// succeed — redundancy on disk comes from each live replica writing
	// its own file.
	var mu sync.Mutex
	var out CheckpointResponse
	errs := g.scatterGroups(func(j int, gr *group) error {
		// As on the ingest paths, the shared ingest lock is taken before
		// target selection and held across the replica requests: a re-seed
		// (exclusive lock) could otherwise revive a replica between
		// selection and the request, and its mid-seed checkpoint would
		// capture partial state.
		gr.ingestMu.RLock()
		defer gr.ingestMu.RUnlock()
		targets := gr.ingestTargets()
		var msgs []string
		for _, rep := range targets {
			resp, err := rep.client().Checkpoint()
			if err != nil {
				msgs = append(msgs, fmt.Sprintf("%s: %v", rep.client().Base, err))
				continue
			}
			mu.Lock()
			out.Members = append(out.Members, MemberCheckpoint{URL: rep.client().Base, Path: resp.Path, Bytes: resp.Bytes})
			out.TotalBytes += resp.Bytes
			mu.Unlock()
		}
		if len(msgs) > 0 {
			return errors.New(strings.Join(msgs, "; "))
		}
		return nil
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// RebalanceRequest asks the gateway to move a range to a different node.
// Rebalance is the manual membership tool for *unreplicated* groups; a
// replicated group's membership is owned by the reconciler (promote,
// re-seed, spare adoption), and a rebalance against one is refused.
//
// Mode "ship" (the default) is the live path: the donor currently
// serving the range streams its snapshot — the complete engine state,
// the paper's one-way message — through the gateway into the target's
// POST /restore, and the range is repointed once the target confirms
// the restored state.  Ingest for the range pauses for the duration;
// queries keep answering from the donor until the repoint.
//
// Mode "adopt" repoints the range without shipping anything: the target
// must already hold a matching engine, e.g. a replacement node started
// with -restore from the dead donor's checkpoint file.  This is the node
// replacement path when there is no live donor to ship from.
type RebalanceRequest struct {
	Range  int    `json:"range"`          // index into the range partition
	Target string `json:"target"`         // base URL of the receiving node
	Mode   string `json:"mode,omitempty"` // "ship" (default) or "adopt"
}

// RebalanceResponse reports a completed rebalance.
type RebalanceResponse struct {
	Range         Range  `json:"range"`
	From          string `json:"from"`
	To            string `json:"to"`
	Mode          string `json:"mode"`
	SnapshotBytes int64  `json:"snapshot_bytes,omitempty"`
	Elements      int64  `json:"elements"`
}

func (g *Gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req RebalanceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "rebalance: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Range < 0 || req.Range >= len(g.groups) {
		http.Error(w, fmt.Sprintf("rebalance: range %d not in [0, %d)", req.Range, len(g.groups)), http.StatusBadRequest)
		return
	}
	if req.Target == "" {
		http.Error(w, "rebalance: no target", http.StatusBadRequest)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "ship"
	}
	if mode != "ship" && mode != "adopt" {
		http.Error(w, fmt.Sprintf("rebalance: unknown mode %q (want ship or adopt)", req.Mode), http.StatusBadRequest)
		return
	}
	// One rebalance at a time, gateway-wide: the guard below reads the
	// current membership, which a concurrent rebalance could be changing.
	g.rebalanceMu.Lock()
	defer g.rebalanceMu.Unlock()

	gr := g.groups[req.Range]
	reps, _ := gr.snapshot()
	if len(reps) > 1 {
		http.Error(w, fmt.Sprintf("rebalance: range %d is served by %d replicas; replicated membership is reconciler-owned (see GET /reconciler)", req.Range, len(reps)), http.StatusConflict)
		return
	}
	rep := reps[0]

	// A target already serving a *different* range (or waiting as a
	// spare) must be refused: restoring into it would Close that node's
	// engine and destroy its state — and with equal-length ranges
	// verifyMember could not tell.  (Re-targeting the donor's own URL is
	// a harmless no-op repoint.)
	target := strings.TrimRight(req.Target, "/")
	for j, other := range g.groups {
		if j == req.Range {
			continue
		}
		others, _ := other.snapshot()
		for _, or := range others {
			if strings.TrimRight(or.client().Base, "/") == target {
				http.Error(w, fmt.Sprintf("rebalance: target %s already serves range %d (%s)", req.Target, j, other.rng), http.StatusConflict)
				return
			}
		}
	}
	for _, sp := range g.spareList() {
		if strings.TrimRight(sp.client().Base, "/") == target {
			http.Error(w, fmt.Sprintf("rebalance: target %s is a reconciler spare", req.Target), http.StatusConflict)
			return
		}
	}

	tcl := g.newClient(req.Target)

	// The exclusive ingest lock pauses writes for this range: no update
	// can land on the donor after the snapshot is cut, so the shipped
	// state is exactly the range's accepted stream.  Queries are not
	// blocked — they keep answering from the donor until the repoint.
	gr.ingestMu.Lock()
	defer gr.ingestMu.Unlock()

	donor := rep.client()
	out := RebalanceResponse{Range: gr.rng, From: donor.Base, To: req.Target, Mode: mode}
	var health server.HealthResponse
	switch mode {
	case "ship":
		// The snapshot is buffered in gateway memory rather than piped: a
		// replayable body is what lets the restore survive a refused
		// connection, and the size is bounded by the donor's body cap.
		// Rebalance is a rare admin operation; the transient buffer is the
		// simpler trade (ShipSnapshot makes the same one for re-seeds).
		var err error
		var size int64
		if health, size, err = donor.ShipSnapshot(tcl); err != nil {
			http.Error(w, fmt.Sprintf("rebalance: %v", err), http.StatusBadGateway)
			return
		}
		out.SnapshotBytes = size
	case "adopt":
		var err error
		if health, err = tcl.Health(); err != nil {
			http.Error(w, fmt.Sprintf("rebalance: target health: %v", err), http.StatusBadGateway)
			return
		}
		if !health.Serving {
			http.Error(w, "rebalance: target is draining", http.StatusBadGateway)
			return
		}
	}
	if err := g.verifyMember(health, gr.rng); err != nil {
		http.Error(w, fmt.Sprintf("rebalance: target %s does not match range %s: %v", req.Target, gr.rng, err), http.StatusConflict)
		return
	}
	out.Elements = health.Elements
	rep.setClient(tcl)
	rep.markLive()
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"service":          "fewwgate",
		"engine":           g.kind,
		"POST /ingest":     "FEWW binary stream body, split across ranges and fanned to every live replica (streamed in windows; ?atomic=1 to buffer and validate whole)",
		"GET /best":        "max-merged best neighbourhood (?fresh=1 for barrier consistency, pinned to primaries)",
		"GET /results":     "concatenated full-target neighbourhoods (?fresh=1 for barrier consistency, pinned to primaries)",
		"GET /stats":       "summed cluster stats with per-replica breakdown",
		"GET /healthz":     "cluster readiness: every range's primary serving",
		"GET /reconciler":  "replica states, spare pool, and the autonomous failover decision log",
		"POST /checkpoint": "fan out a checkpoint to every live replica",
		"POST /rebalance":  `{"range": i, "target": url, "mode": "ship"|"adopt"} — move an unreplicated range`,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
