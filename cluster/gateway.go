package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// Config parameterises a Gateway.
type Config struct {
	// Members lists the fewwd base URLs in range order: member j serves
	// the j-th contiguous range of the item universe, whose length is
	// discovered from the member's /healthz at construction.
	Members []string
	// MemberTimeout bounds each member request end to end (default 30s;
	// negative disables the deadline).  One slow node then fails its slice
	// of a scatter-gather instead of wedging the whole fan-out.
	MemberTimeout time.Duration
	// MaxBodyBytes caps an /ingest request body; 0 means 256 MiB.  The
	// streaming path holds only one decode window regardless of body
	// size, so the cap is a request-size sanity bound there; the
	// ?atomic=1 path buffers the request *decoded* — roughly 3-4x the
	// varint-encoded size — before anything is forwarded, which is why
	// the default stays smaller than a node's (1 GiB).  Producers using
	// atomic ingest should chunk large replays into multiple requests,
	// as cmd/fewwload does.
	MaxBodyBytes int64
	// ChunkUpdates is the streaming-ingest window: the gateway decodes,
	// validates, and splits this many updates at a time, then forwards
	// each member's share as one frame into its already-open member
	// request (default 8192).  Larger windows amortise frame headers and
	// syscalls; smaller ones tighten the reject-before-forward boundary
	// and the gateway's resident window.
	ChunkUpdates int
}

// member is one node of the cluster: an immutable range plus the client
// currently serving it.
type member struct {
	rng Range
	// ingestMu serialises ingest for the range against rebalance: ingest
	// holds it shared, rebalance exclusively — so no update can land on a
	// donor after its snapshot is cut.  Queries do not take it: they keep
	// answering from whichever node currently serves the range (the donor,
	// until the repoint), so a rebalance shipping a large snapshot never
	// blocks reads.
	ingestMu sync.RWMutex
	// clMu guards the client pointer, which rebalance swaps at repoint.
	clMu sync.RWMutex
	cl   *server.Client
}

// client returns the client currently serving the member's range.
func (m *member) client() *server.Client {
	m.clMu.RLock()
	defer m.clMu.RUnlock()
	return m.cl
}

// setClient repoints the range to a new node.
func (m *member) setClient(cl *server.Client) {
	m.clMu.Lock()
	defer m.clMu.Unlock()
	m.cl = cl
}

// Gateway is the cluster front-end: one logical FEwW engine over the
// member nodes.  It is an http.Handler factory (Handler) mirroring the
// fewwd endpoint surface, plus a rebalance operation for moving ranges
// between nodes.  All handlers are safe for concurrent use.
type Gateway struct {
	cfg    Config
	kind   string // members' engine kind: "insert-only", "turnstile" or "star"
	n      int64  // total item universe: sum of member ranges
	m      int64  // witness universe (turnstile/star members; 0 otherwise)
	target int64  // the members' witness target, identical on every member
	rungs  int    // star guess-ladder length (0 for the flat kinds)

	members []*member
	mux     *http.ServeMux
	start   time.Time

	// rebalanceMu serialises rebalance operations gateway-wide: the
	// duplicate-target guard scans current membership, so two concurrent
	// moves of *different* ranges onto the same fresh node would both
	// pass it and the second restore would destroy the first range's
	// state.  Rebalances are rare admin operations; serialising them is
	// free.
	rebalanceMu sync.Mutex
}

// New builds a gateway over the configured members, probing each node's
// /healthz to discover its universe size and verify the cluster is
// coherent: every member must serve the same engine kind with the same
// witness target (and, for turnstile engines, the same witness universe
// m).  Member j's range is [sum of earlier sizes, + its own size).  A
// member that is down or draining fails construction — callers that want
// to wait for a bootstrapping cluster retry New (see cmd/fewwgate -wait).
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Members) == 0 {
		return nil, errors.New("cluster: no members configured")
	}
	if cfg.MemberTimeout == 0 {
		cfg.MemberTimeout = 30 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.ChunkUpdates <= 0 {
		cfg.ChunkUpdates = 8192
	}
	g := &Gateway{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	lo := int64(0)
	for j, url := range cfg.Members {
		cl := g.newClient(url)
		h, err := cl.Health()
		if err != nil {
			return nil, fmt.Errorf("cluster: member %d (%s): %w", j, url, err)
		}
		if !h.Serving {
			return nil, fmt.Errorf("cluster: member %d (%s) is draining", j, url)
		}
		if j == 0 {
			g.kind, g.m, g.target, g.rungs = h.Engine, h.M, h.WitnessTarget, h.Rungs
		} else if h.Engine != g.kind || h.M != g.m || h.WitnessTarget != g.target || h.Rungs != g.rungs {
			return nil, fmt.Errorf("cluster: member %d (%s) is incoherent: engine %s m %d target %d rungs %d, cluster has engine %s m %d target %d rungs %d",
				j, url, h.Engine, h.M, h.WitnessTarget, h.Rungs, g.kind, g.m, g.target, g.rungs)
		}
		g.members = append(g.members, &member{rng: Range{Lo: lo, Hi: lo + h.N}, cl: cl})
		lo += h.N
	}
	g.n = lo
	// A star cluster's ranges are slices of the vertex set whose total
	// must be exactly the graph the members' ladders (and witness
	// universes) were sized for — anything else silently mis-scopes the
	// double cover.
	if g.kind == "star" && g.n != g.m {
		return nil, fmt.Errorf("cluster: star member ranges cover %d vertices, engines are sized for a %d-vertex graph", g.n, g.m)
	}
	g.mux.HandleFunc("POST /ingest", g.handleIngest)
	g.mux.HandleFunc("GET /best", g.handleBest)
	g.mux.HandleFunc("GET /results", g.handleResults)
	g.mux.HandleFunc("GET /stats", g.handleStats)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("POST /checkpoint", g.handleCheckpoint)
	g.mux.HandleFunc("POST /rebalance", g.handleRebalance)
	g.mux.HandleFunc("GET /{$}", g.handleIndex)
	return g, nil
}

func (g *Gateway) newClient(url string) *server.Client {
	timeout := g.cfg.MemberTimeout
	if timeout < 0 {
		timeout = 0
	}
	return &server.Client{Base: url, Timeout: timeout}
}

// Handler returns the HTTP handler serving every gateway endpoint.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Universe returns the total item universe [0, n) and the witness
// universe m (0 for insert-only clusters).
func (g *Gateway) Universe() (n, m int64) { return g.n, g.m }

// Kind returns the members' engine kind.
func (g *Gateway) Kind() string { return g.kind }

// Ranges returns the static range partition in member order.
func (g *Gateway) Ranges() []Range {
	out := make([]Range, len(g.members))
	for i, m := range g.members {
		out[i] = m.rng
	}
	return out
}

// memberFor returns the index of the member whose range holds global
// item a.  Ranges are contiguous and ascending, so this is a binary
// search over the lower bounds.
func (g *Gateway) memberFor(a int64) int {
	lo, hi := 0, len(g.members)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.members[mid].rng.Lo <= a {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// scatter runs fn against every member concurrently with the client
// currently serving its range, and returns the per-member errors.  It
// takes no locks beyond the client-pointer read, so queries proceed even
// while a rebalance is shipping that member's state.
func (g *Gateway) scatter(fn func(i int, rng Range, cl *server.Client) error) []error {
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			errs[i] = fn(i, m.rng, m.client())
		}(i, m)
	}
	wg.Wait()
	return errs
}

// firstError joins per-member errors into one message naming the members
// at fault (by the URL currently serving each range), or returns nil.
func (g *Gateway) firstError(errs []error) error {
	var msgs []string
	for i, err := range errs {
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("member %d (%s): %v", i, g.memberURL(i), err))
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	msg := msgs[0]
	for _, m := range msgs[1:] {
		msg += "; " + m
	}
	return errors.New(msg)
}

// wantFresh mirrors the server's ?fresh=1 opt-in.
func wantFresh(r *http.Request) bool {
	fresh, err := strconv.ParseBool(r.URL.Query().Get("fresh"))
	return err == nil && fresh
}

// wantAtomic mirrors the ?atomic=1 opt-in to buffer-whole ingest.
func wantAtomic(r *http.Request) bool {
	atomic, err := strconv.ParseBool(r.URL.Query().Get("atomic"))
	return err == nil && atomic
}

// handleIngest accepts a FEWW binary stream over the full universe and
// splits it by member range (items remapped to range-local ids, order
// preserved).
//
// The default path is *streaming*: the gateway decodes one bounded
// window (Config.ChunkUpdates) at a time, validates it, and forwards
// each member's share as one frame into that member's already-open
// /ingest request — decode of window k+1 overlaps the members applying
// window k, and gateway memory stays one window regardless of body
// size.  The all-or-nothing contract of PR 3 then holds per window
// rather than per request: nothing from a window containing a malformed
// or out-of-universe update is forwarded (HTTP 400), but earlier
// windows were already applied, and the response's Accepted count says
// how much.  A member failing mid-stream stops the forward loop (HTTP
// 502), again with Accepted reporting the partial progress — ranges are
// independent engines; there is no cross-range state to un-apply.
//
// ?atomic=1 restores the whole-request boundary: the entire request is
// decoded and validated before a single update is forwarded, so a
// rejected stream leaves every member untouched.  It costs the decoded
// buffer (roughly 3-4x the encoded size) and a serial decode-then-send.
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if wantAtomic(r) {
		g.ingestAtomic(w, body)
		return
	}
	g.ingestStreaming(w, body)
}

// memberStream is the gateway side of one member's in-flight streaming
// ingest: the pipe feeding the member's request body, the frame writer
// encoding windows into it, and the member's eventual response.
type memberStream struct {
	pw     *io.PipeWriter
	fw     *stream.FrameWriter
	frames int
	resp   server.IngestResponse
	err    error
	done   chan struct{}
}

func (g *Gateway) ingestStreaming(w http.ResponseWriter, body io.Reader) {
	sc, err := stream.NewScanner(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}
	headerM := g.m
	if headerM == 0 {
		headerM = sc.M()
	}

	// Open one streaming request per member before touching the body.  A
	// pipe write blocks until the member's transport consumes it, so a
	// slow member back-pressures the whole forward loop instead of
	// growing a gateway-side buffer; a dead member closes its read end,
	// failing the next write immediately.
	streams := make([]*memberStream, len(g.members))
	for j := range g.members {
		pr, pw := io.Pipe()
		ms := &memberStream{pw: pw, fw: stream.NewFrameWriter(pw), done: make(chan struct{})}
		streams[j] = ms
		go func(m *member, ms *memberStream, pr *io.PipeReader) {
			defer close(ms.done)
			// The shared ingest lock spans the member's whole request,
			// ordering it against any concurrent rebalance of the range
			// exactly as the atomic path does: the stream lands on the
			// donor before the snapshot is cut, or on the new node after
			// the repoint — never in between.
			m.ingestMu.RLock()
			defer m.ingestMu.RUnlock()
			ms.resp, ms.err = m.client().IngestStream(pr)
			pr.CloseWithError(ms.err)
		}(g.members[j], ms, pr)
	}

	// finish closes every member stream — first writing one empty frame
	// to any member that never received data, so its body decodes and a
	// dead member surfaces even when no traffic reached its range — then
	// gathers the responses into cluster-wide totals.
	finish := func() (server.IngestResponse, error) {
		var out server.IngestResponse
		errs := make([]error, len(streams))
		for j, ms := range streams {
			if ms.frames == 0 {
				_ = ms.fw.WriteFrame(g.members[j].rng.Len(), headerM, nil)
			}
			ms.pw.Close()
		}
		for j, ms := range streams {
			<-ms.done
			errs[j] = ms.err
			out.Accepted += ms.resp.Accepted
			out.Total += ms.resp.Total
		}
		return out, g.firstError(errs)
	}

	per := make([][]feww.Update, len(g.members))
	flush := func() (int, error) {
		for j, ups := range per {
			if len(ups) == 0 {
				continue
			}
			ms := streams[j]
			if err := ms.fw.WriteFrame(g.members[j].rng.Len(), headerM, ups); err != nil {
				return j, err
			}
			ms.frames++
			per[j] = ups[:0]
		}
		return 0, nil
	}

	var (
		badReq  error // malformed or invalid stream: HTTP 400
		sendErr error // a member request died mid-forward: HTTP 502
	)
	i, window := 0, 0
	for badReq == nil && sendErr == nil && sc.Scan() {
		u := sc.Update()
		if err := g.checkUpdate(i, u); err != nil {
			// Reject-before-forward holds per window: the window holding
			// the invalid update is dropped whole; nothing at or past it
			// is ever forwarded.
			badReq = err
			break
		}
		j := g.memberFor(u.A)
		u.A -= g.members[j].rng.Lo
		per[j] = append(per[j], u)
		i++
		window++
		if window >= g.cfg.ChunkUpdates {
			if fj, err := flush(); err != nil {
				sendErr = fmt.Errorf("member %d (%s): writing frame: %v", fj, g.memberURL(fj), err)
			}
			window = 0
		}
	}
	if badReq == nil && sendErr == nil {
		if err := sc.Err(); err != nil {
			badReq = err
		} else if fj, err := flush(); err != nil {
			sendErr = fmt.Errorf("member %d (%s): writing frame: %v", fj, g.memberURL(fj), err)
		}
	}

	out, gatherErr := finish()
	switch {
	case badReq != nil:
		out.Error = badReq.Error()
		writeJSON(w, http.StatusBadRequest, out)
	case sendErr != nil || gatherErr != nil:
		// The member's own response error names the root cause when it
		// exists; the pipe-write error is the fallback.
		if gatherErr != nil {
			out.Error = gatherErr.Error()
		} else {
			out.Error = sendErr.Error()
		}
		writeJSON(w, http.StatusBadGateway, out)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// ingestAtomic is the ?atomic=1 path: decode and validate the entire
// request, then fan the per-member sub-streams out concurrently.  A
// rejected stream leaves every member untouched.
func (g *Gateway) ingestAtomic(w http.ResponseWriter, body io.Reader) {
	sc, err := stream.NewScanner(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}
	per := make([][]feww.Update, len(g.members))
	i := 0
	for sc.Scan() {
		u := sc.Update()
		if err := g.checkUpdate(i, u); err != nil {
			writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
			return
		}
		j := g.memberFor(u.A)
		u.A -= g.members[j].rng.Lo
		per[j] = append(per[j], u)
		i++
	}
	if err := sc.Err(); err != nil {
		writeJSON(w, http.StatusBadRequest, server.IngestResponse{Error: err.Error()})
		return
	}

	// Forward every sub-stream concurrently.  Members with no updates in
	// this request still get an empty stream: the response's Total then
	// reflects the whole cluster, and a dead member surfaces here rather
	// than silently once traffic reaches its range.
	headerM := g.m
	if headerM == 0 {
		headerM = sc.M()
	}
	resps := make([]server.IngestResponse, len(g.members))
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	for j, m := range g.members {
		wg.Add(1)
		go func(j int, m *member) {
			defer wg.Done()
			// The shared ingest lock orders this request against any
			// concurrent rebalance of the range: either it lands on the
			// donor before the snapshot is cut, or on the new node after
			// the repoint — never in between.
			m.ingestMu.RLock()
			defer m.ingestMu.RUnlock()
			resps[j], errs[j] = m.client().Ingest(m.rng.Len(), headerM, per[j])
		}(j, m)
	}
	wg.Wait()
	var out server.IngestResponse
	for _, resp := range resps {
		out.Accepted += resp.Accepted
		out.Total += resp.Total
	}
	if err := g.firstError(errs); err != nil {
		out.Error = err.Error()
		writeJSON(w, http.StatusBadGateway, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// checkUpdate validates one decoded update against the cluster universe
// and engine kind, mirroring the engine's own boundary checks so nothing
// invalid is ever forwarded.
func (g *Gateway) checkUpdate(i int, u feww.Update) error {
	if u.A < 0 || u.A >= g.n {
		return fmt.Errorf("%w: update %d: item %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.A, g.n)
	}
	if u.B < 0 {
		return fmt.Errorf("%w: update %d: witness %d is negative", feww.ErrOutOfUniverse, i, u.B)
	}
	switch g.kind {
	case "turnstile":
		if u.B >= g.m {
			return fmt.Errorf("%w: update %d: witness %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.B, g.m)
		}
	case "star":
		// Star streams are directed half-edges over the vertex set: both
		// endpoints are vertices, and deletions need the turnstile ladder
		// (not served by this cluster).
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d: %v: star cluster cannot apply deletions", i, u)
		}
		if u.B >= g.m {
			return fmt.Errorf("%w: update %d: neighbour %d not in [0, %d)", feww.ErrOutOfUniverse, i, u.B, g.m)
		}
	default:
		if u.Op != feww.Insert {
			return fmt.Errorf("update %d: %v: insert-only cluster cannot apply deletions (run the members in turnstile mode)", i, u)
		}
	}
	return nil
}

// checkAnswerRung rejects a member answer whose star rung annotation
// contradicts the cluster's engine kind — the query-path half of the
// kind-swap guard.  /healthz catches a member whose engine was replaced
// by a foreign-kind snapshot, but only when polled; without this check a
// star answer arriving in a flat cluster would *dominate* the merge
// (rung priority) and a flat answer in a star cluster would corrupt the
// rung filter, silently, on every query until someone looks at healthz.
// Flat-kind swaps (insert-only vs turnstile) produce indistinguishable
// answer shapes and merge under the same rules; those remain
// healthz/stats territory.
func (g *Gateway) checkAnswerRung(rung int) error {
	if g.rungs == 0 && rung >= 0 {
		return errors.New("rung-annotated answer from a member of a non-star cluster: engine kind mismatch (check GET /healthz)")
	}
	if g.rungs > 0 && rung < 0 {
		return errors.New("answer without a star rung in a star cluster: engine kind mismatch (check GET /healthz)")
	}
	return nil
}

func (g *Gateway) handleBest(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	bests := make([]server.BestResponse, len(g.members))
	errs := g.scatter(func(j int, rng Range, cl *server.Client) error {
		var (
			b   server.BestResponse
			err error
		)
		if fresh {
			b, err = cl.BestFresh()
		} else {
			b, err = cl.Best()
		}
		if err != nil {
			return err
		}
		if b.Found {
			if err := g.checkAnswerRung(respRung(b)); err != nil {
				return err
			}
		}
		bests[j] = remapBest(b, rng.Lo)
		return nil
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, mergeBest(g.target, bests))
}

func (g *Gateway) handleResults(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	lists := make([][]server.NeighbourhoodJSON, len(g.members))
	errs := g.scatter(func(j int, rng Range, cl *server.Client) error {
		var (
			nbs []server.NeighbourhoodJSON
			err error
		)
		if fresh {
			nbs, err = cl.ResultsFresh()
		} else {
			nbs, err = cl.Results()
		}
		if err != nil {
			return err
		}
		if len(nbs) > 0 {
			if err := g.checkAnswerRung(listRung(nbs)); err != nil {
				return err
			}
		}
		lists[j] = remapResults(nbs, rng.Lo)
		return nil
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, mergeResults(lists))
}

// MemberStats is one member's slice of the cluster /stats payload.
type MemberStats struct {
	URL   string                `json:"url"`
	Range Range                 `json:"range"`
	Error string                `json:"error,omitempty"`
	Stats *server.StatsResponse `json:"stats,omitempty"`
}

// StatsResponse is the cluster /stats payload: the members' numbers
// summed (the same merge the engine applies across shards) plus the
// per-member breakdown.  The summed field names match the node payload,
// so a client that understands fewwd /stats can read the aggregate.
type StatsResponse struct {
	Service       string        `json:"service"`
	Engine        string        `json:"engine"`
	Consistency   string        `json:"consistency"`
	Members       int           `json:"members"`
	Degraded      bool          `json:"degraded"`
	N             int64         `json:"n"`
	M             int64         `json:"m,omitempty"`
	WitnessTarget int64         `json:"witness_target"`
	Shards        int           `json:"shards"`
	Elements      int64         `json:"elements"`
	SpaceWords    int           `json:"space_words"`
	SnapshotBytes int           `json:"snapshot_bytes"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	PerMember     []MemberStats `json:"per_member"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	fresh := wantFresh(r)
	consistency := "published"
	if fresh {
		consistency = "fresh"
	}
	stats := make([]server.StatsResponse, len(g.members))
	errs := g.scatter(func(j int, _ Range, cl *server.Client) error {
		var err error
		if fresh {
			stats[j], err = cl.StatsFresh()
		} else {
			stats[j], err = cl.Stats()
		}
		return err
	})
	out := StatsResponse{
		Service:       "fewwgate",
		Engine:        g.kind,
		Consistency:   consistency,
		Members:       len(g.members),
		N:             g.n,
		M:             g.m,
		WitnessTarget: g.target,
		UptimeSeconds: time.Since(g.start).Seconds(),
		PerMember:     make([]MemberStats, len(g.members)),
	}
	for j, m := range g.members {
		ms := MemberStats{URL: g.memberURL(j), Range: m.rng}
		if errs[j] != nil {
			ms.Error = errs[j].Error()
			out.Degraded = true
		} else if st := stats[j]; st.Engine != g.kind {
			// A member serving another engine kind (a foreign /restore
			// slipped in) must surface as degraded here too, not only on
			// the next /healthz poll — its numbers would corrupt the sums.
			ms.Error = fmt.Sprintf("engine kind %q, cluster is %q", st.Engine, g.kind)
			ms.Stats = &st
			out.Degraded = true
		} else {
			ms.Stats = &st
			out.Shards += st.Shards
			out.Elements += st.Elements
			out.SpaceWords += st.SpaceWords
			out.SnapshotBytes += st.SnapshotBytes
		}
		out.PerMember[j] = ms
	}
	writeJSON(w, http.StatusOK, out)
}

// MemberHealth is one member's slice of the cluster /healthz payload.
// Ready means the member answered, is serving, and its engine matches
// the range and cluster parameters it is supposed to hold.
type MemberHealth struct {
	URL    string                 `json:"url"`
	Range  Range                  `json:"range"`
	Ready  bool                   `json:"ready"`
	Error  string                 `json:"error,omitempty"`
	Health *server.HealthResponse `json:"health,omitempty"`
}

// HealthzResponse is the cluster /healthz payload.  The top-level field
// names mirror the node payload (service, engine, serving, n, m,
// witness_target, shards), so server.Client.Health reads a gateway
// exactly as it reads a node — the cluster presents as one big fewwd.
type HealthzResponse struct {
	Service       string         `json:"service"`
	Engine        string         `json:"engine"`
	Serving       bool           `json:"serving"`
	N             int64          `json:"n"`
	M             int64          `json:"m,omitempty"`
	WitnessTarget int64          `json:"witness_target"`
	Shards        int            `json:"shards"`
	Elements      int64          `json:"elements"`
	Members       []MemberHealth `json:"members"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := HealthzResponse{
		Service:       "fewwgate",
		Engine:        g.kind,
		Serving:       true,
		N:             g.n,
		M:             g.m,
		WitnessTarget: g.target,
		Members:       make([]MemberHealth, len(g.members)),
	}
	healths := make([]server.HealthResponse, len(g.members))
	errs := g.scatter(func(j int, _ Range, cl *server.Client) error {
		var err error
		healths[j], err = cl.Health()
		return err
	})
	for j, m := range g.members {
		mh := MemberHealth{URL: g.memberURL(j), Range: m.rng}
		if errs[j] != nil {
			mh.Error = errs[j].Error()
		} else {
			h := healths[j]
			mh.Health = &h
			if !h.Serving {
				mh.Error = "draining"
			} else if err := g.verifyMember(h, m.rng); err != nil {
				mh.Error = err.Error()
			} else {
				mh.Ready = true
				out.Elements += h.Elements
				out.Shards += h.Shards
			}
		}
		if !mh.Ready {
			out.Serving = false
		}
		out.Members[j] = mh
	}
	code := http.StatusOK
	if !out.Serving {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// verifyMember checks that a member's reported engine matches the range
// and cluster parameters it serves — the guard that catches an operator
// pointing a range at a node sized for a different one, and a member
// whose engine kind was swapped out from under the cluster (e.g. a
// POST /restore of another kind's snapshot): merging answers across
// kinds would silently produce garbage, so a mismatched member is
// reported not-ready instead.
func (g *Gateway) verifyMember(h server.HealthResponse, rng Range) error {
	if h.Engine != g.kind {
		return fmt.Errorf("engine kind %q, cluster is %q", h.Engine, g.kind)
	}
	if h.N != rng.Len() {
		return fmt.Errorf("engine universe %d does not cover range %s (%d items)", h.N, rng, rng.Len())
	}
	if h.M != g.m {
		return fmt.Errorf("witness universe %d, cluster has %d", h.M, g.m)
	}
	if h.WitnessTarget != g.target {
		return fmt.Errorf("witness target %d, cluster has %d", h.WitnessTarget, g.target)
	}
	if h.Rungs != g.rungs {
		return fmt.Errorf("star ladder has %d rungs, cluster has %d", h.Rungs, g.rungs)
	}
	return nil
}

// memberURL returns the base URL currently serving member j (rebalance
// may have moved it off the bootstrap URL).
func (g *Gateway) memberURL(j int) string {
	return g.members[j].client().Base
}

// MemberCheckpoint is one member's slice of the cluster /checkpoint
// payload.
type MemberCheckpoint struct {
	URL   string `json:"url"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// CheckpointResponse is the cluster /checkpoint payload.
type CheckpointResponse struct {
	Members    []MemberCheckpoint `json:"members"`
	TotalBytes int64              `json:"total_bytes"`
}

func (g *Gateway) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	resps := make([]server.CheckpointResponse, len(g.members))
	errs := g.scatter(func(j int, _ Range, cl *server.Client) error {
		var err error
		resps[j], err = cl.Checkpoint()
		return err
	})
	if err := g.firstError(errs); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out := CheckpointResponse{Members: make([]MemberCheckpoint, len(g.members))}
	for j, resp := range resps {
		out.Members[j] = MemberCheckpoint{URL: g.memberURL(j), Path: resp.Path, Bytes: resp.Bytes}
		out.TotalBytes += resp.Bytes
	}
	writeJSON(w, http.StatusOK, out)
}

// RebalanceRequest asks the gateway to move a range to a different node.
//
// Mode "ship" (the default) is the live path: the donor currently
// serving the range streams its snapshot — the complete engine state,
// the paper's one-way message — through the gateway into the target's
// POST /restore, and the range is repointed once the target confirms
// the restored state.  Ingest for the range pauses for the duration;
// queries keep answering from the donor until the repoint.
//
// Mode "adopt" repoints the range without shipping anything: the target
// must already hold a matching engine, e.g. a replacement node started
// with -restore from the dead donor's checkpoint file.  This is the node
// replacement path when there is no live donor to ship from.
type RebalanceRequest struct {
	Range  int    `json:"range"`          // index into the range partition
	Target string `json:"target"`         // base URL of the receiving node
	Mode   string `json:"mode,omitempty"` // "ship" (default) or "adopt"
}

// RebalanceResponse reports a completed rebalance.
type RebalanceResponse struct {
	Range         Range  `json:"range"`
	From          string `json:"from"`
	To            string `json:"to"`
	Mode          string `json:"mode"`
	SnapshotBytes int64  `json:"snapshot_bytes,omitempty"`
	Elements      int64  `json:"elements"`
}

func (g *Gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req RebalanceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "rebalance: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Range < 0 || req.Range >= len(g.members) {
		http.Error(w, fmt.Sprintf("rebalance: range %d not in [0, %d)", req.Range, len(g.members)), http.StatusBadRequest)
		return
	}
	if req.Target == "" {
		http.Error(w, "rebalance: no target", http.StatusBadRequest)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "ship"
	}
	if mode != "ship" && mode != "adopt" {
		http.Error(w, fmt.Sprintf("rebalance: unknown mode %q (want ship or adopt)", req.Mode), http.StatusBadRequest)
		return
	}
	// One rebalance at a time, gateway-wide: the guard below reads the
	// current membership, which a concurrent rebalance could be changing.
	g.rebalanceMu.Lock()
	defer g.rebalanceMu.Unlock()

	// A target already serving a *different* range must be refused:
	// restoring into it would Close that range's engine and destroy its
	// state — and with equal-length ranges verifyMember could not tell.
	// (Re-targeting the donor's own URL is a harmless no-op repoint.)
	target := strings.TrimRight(req.Target, "/")
	for j := range g.members {
		if j != req.Range && strings.TrimRight(g.memberURL(j), "/") == target {
			http.Error(w, fmt.Sprintf("rebalance: target %s already serves range %d (%s)", req.Target, j, g.members[j].rng), http.StatusConflict)
			return
		}
	}

	m := g.members[req.Range]
	tcl := g.newClient(req.Target)

	// The exclusive ingest lock pauses writes for this range: no update
	// can land on the donor after the snapshot is cut, so the shipped
	// state is exactly the range's accepted stream.  Queries are not
	// blocked — they keep answering from the donor until the repoint.
	m.ingestMu.Lock()
	defer m.ingestMu.Unlock()

	donor := m.client()
	out := RebalanceResponse{Range: m.rng, From: donor.Base, To: req.Target, Mode: mode}
	var health server.HealthResponse
	switch mode {
	case "ship":
		// The snapshot is buffered in gateway memory rather than piped:
		// a replayable body is what lets Restore survive a refused
		// connection, and the size is bounded by the donor's body cap.
		// Rebalance is a rare admin operation; the transient buffer is
		// the simpler trade.
		var snap bytes.Buffer
		size, err := donor.Snapshot(&snap)
		if err != nil {
			http.Error(w, fmt.Sprintf("rebalance: donor snapshot: %v", err), http.StatusBadGateway)
			return
		}
		out.SnapshotBytes = size
		if health, err = tcl.Restore(snap.Bytes()); err != nil {
			http.Error(w, fmt.Sprintf("rebalance: target restore: %v", err), http.StatusBadGateway)
			return
		}
	case "adopt":
		var err error
		if health, err = tcl.Health(); err != nil {
			http.Error(w, fmt.Sprintf("rebalance: target health: %v", err), http.StatusBadGateway)
			return
		}
		if !health.Serving {
			http.Error(w, "rebalance: target is draining", http.StatusBadGateway)
			return
		}
	}
	if err := g.verifyMember(health, m.rng); err != nil {
		http.Error(w, fmt.Sprintf("rebalance: target %s does not match range %s: %v", req.Target, m.rng, err), http.StatusConflict)
		return
	}
	out.Elements = health.Elements
	m.setClient(tcl)
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"service":          "fewwgate",
		"engine":           g.kind,
		"POST /ingest":     "FEWW binary stream body, split across member ranges (streamed in windows; ?atomic=1 to buffer and validate whole)",
		"GET /best":        "max-merged best neighbourhood (?fresh=1 for barrier consistency)",
		"GET /results":     "concatenated full-target neighbourhoods (?fresh=1 for barrier consistency)",
		"GET /stats":       "summed cluster stats with per-member breakdown",
		"GET /healthz":     "cluster readiness: every member serving its range",
		"POST /checkpoint": "fan out a checkpoint to every member",
		"POST /rebalance":  `{"range": i, "target": url, "mode": "ship"|"adopt"} — move a range`,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
