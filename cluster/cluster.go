// Package cluster turns N independent fewwd nodes into one logical FEwW
// engine: a scatter-gather gateway over a static contiguous partition of
// the item universe.
//
// The paper (conf_pods_Konrad21) proves its algorithms admit one-way
// communication protocols: the complete memory state of a party is a
// message the next party can resume from.  PR 2 made that operational on
// one node (GET /snapshot, checkpoint/restore); this package uses the
// same property across nodes.  FEwW state over a sub-universe is
// self-contained, so the A-universe [0, n) can be cut into contiguous
// ranges, each served by its own fewwd whose engine covers exactly that
// range (items remapped to range-local ids), and
//
//   - ingest is routing: a mixed batch splits by item id into per-range
//     sub-batches, each preserving the stream order of its items;
//   - queries are merging: ranges are disjoint, so /results is a pure
//     concatenation (sorted by global id), /best a max-select, and space
//     and usage numbers sum — exactly the merge the engine already
//     performs across its in-process shards, lifted one tier up;
//   - rebalance is messaging: moving a range to a new node ships the
//     donor's snapshot bytes into the recipient's restore path, and the
//     gateway repoints the range when the recipient confirms the state;
//   - replication is fan-out: with Config.Replicas = R each range is one
//     group of R identical members, every ingest window forwarded to all
//     live replicas, so the window is the unit of replication as well as
//     of validation.  A reconciler loop (StartReconciler) probes members,
//     promotes a follower when a primary dies, re-seeds failed replicas
//     and adopts spares by snapshot shipping, and records every action in
//     a decision log served at GET /reconciler — no operator in the loop.
//
// The gateway mirrors the fewwd endpoint surface (ingest, best, results,
// stats, healthz, checkpoint), so clients — including server.Client and
// cmd/fewwload — talk to a cluster exactly as they talk to a node.  The
// ?fresh=1 consistency opt-in fans out to the members' strict-barrier
// path, pinned to each group's primary so its byte-identity contract
// holds under replication; the default reads the members' barrier-free
// published views, rotating across a group's live replicas and failing
// over between them, so published reads keep answering through a
// member's death.
package cluster

import "fmt"

// Range is a contiguous slice [Lo, Hi) of the cluster's item universe,
// served by one member node.  The member's engine covers [0, Hi-Lo); the
// gateway translates between global and range-local ids at the boundary.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

// Len returns the number of items in the range.
func (r Range) Len() int64 { return r.Hi - r.Lo }

// Contains reports whether global item a falls in the range.
func (r Range) Contains(a int64) bool { return a >= r.Lo && a < r.Hi }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// Split cuts [0, n) into k contiguous ranges whose lengths are
// ceil((n-j)/k) for j = 0..k-1 — the same sizing rule the engine applies
// to its in-process shards, so the first n mod k ranges are one item
// longer and every range is non-empty whenever k <= n.  Node j of a
// bootstrap should therefore run with -n equal to Split(n, k)[j].Len().
func Split(n int64, k int) []Range {
	if n < 1 || k < 1 {
		panic("cluster: Split with n < 1 or k < 1")
	}
	if int64(k) > n {
		k = int(n)
	}
	out := make([]Range, k)
	lo := int64(0)
	for j := range out {
		length := (n - int64(j) + int64(k) - 1) / int64(k)
		out[j] = Range{Lo: lo, Hi: lo + length}
		lo += length
	}
	return out
}
