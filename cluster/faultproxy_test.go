package cluster

// The fault-injection harness: an in-process TCP proxy that sits between
// a client (usually the gateway) and one member node and injects the
// failures a real network serves up — connection resets mid-request,
// latency, stalls, and blackholes — on demand and deterministically.
// The replication, reconciler, and client-retry tests drive it; future
// chaos tests can reuse it as-is.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Proxy forwarding modes.  The mode is consulted before every forwarded
// chunk, not per connection, so already-open (pooled, keep-alive)
// connections feel a mode change on their next byte.
const (
	proxyPass      = iota // forward everything
	proxyLatency          // sleep latency before each chunk
	proxyStall            // hold every chunk (and stop reading: backpressure) until the mode changes
	proxyBlackhole        // swallow chunks silently: data vanishes, responses never come
)

// faultProxy is a TCP proxy wrapping one backend address.
type faultProxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	mode    int
	latency time.Duration
	// Connection-reset injection on the client->server direction: after
	// budget more bytes are forwarded, the client connection is reset
	// (RST, via SetLinger(0)) — the budget boundary is exact, so a test
	// can cut a request body at a chosen byte.  -1 means disarmed.
	budget  int64
	armWith int64 // re-arm value for the next connection (-1 when once-only)
	resets  int
	closed  bool
	conns   []net.Conn
}

// newFaultProxy starts a proxy in front of target ("host:port").
func newFaultProxy(t *testing.T, target string) *faultProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &faultProxy{ln: ln, target: target, budget: -1, armWith: -1}
	t.Cleanup(p.Close)
	go p.acceptLoop()
	return p
}

// URL returns the proxy's HTTP base URL.
func (p *faultProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *faultProxy) setMode(mode int, latency time.Duration) {
	p.mu.Lock()
	p.mode, p.latency = mode, latency
	p.mu.Unlock()
}

func (p *faultProxy) pass()                      { p.setMode(proxyPass, 0) }
func (p *faultProxy) stall()                     { p.setMode(proxyStall, 0) }
func (p *faultProxy) blackhole()                 { p.setMode(proxyBlackhole, 0) }
func (p *faultProxy) slow(latency time.Duration) { p.setMode(proxyLatency, latency) }

// resetClientToServerAfter arms reset injection: each connection
// forwards at most n more client->server bytes, then is reset.  With
// once, only the first reset fires and later connections pass — the
// shape of a transient network blip.
func (p *faultProxy) resetClientToServerAfter(n int64, once bool) {
	p.mu.Lock()
	p.budget = n
	if once {
		p.armWith = -1
	} else {
		p.armWith = n
	}
	p.mu.Unlock()
}

// resetCount reports how many connections the proxy has reset.
func (p *faultProxy) resetCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.resets
}

func (p *faultProxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (p *faultProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		serverC, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			serverC.Close()
			return
		}
		p.conns = append(p.conns, client, serverC)
		p.mu.Unlock()
		go p.pump(client, serverC, client, true)
		go p.pump(client, serverC, serverC, false)
	}
}

// pump copies one direction (src is client when c2s) chunk by chunk,
// consulting the mode before each forward.
func (p *faultProxy) pump(client, serverC, src net.Conn, c2s bool) {
	dst := serverC
	if !c2s {
		dst = client
	}
	buf := make([]byte, 1024)
	for {
		n, err := src.Read(buf)
		if n > 0 && !p.deliver(client, dst, buf[:n], c2s) {
			return
		}
		if err != nil {
			// Propagate the half-close so the peer sees EOF rather than a
			// wedged connection.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}

// deliver forwards one chunk under the current mode, reporting whether
// the pump should continue.
func (p *faultProxy) deliver(client, dst net.Conn, chunk []byte, c2s bool) bool {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return false
		}
		mode, latency := p.mode, p.latency
		p.mu.Unlock()
		switch mode {
		case proxyStall:
			// Hold the chunk; holding also stops reads from src, so the
			// sender's writes eventually block — real backpressure.
			time.Sleep(2 * time.Millisecond)
			continue
		case proxyBlackhole:
			return true // swallowed
		case proxyLatency:
			time.Sleep(latency)
		}
		break
	}
	if c2s {
		p.mu.Lock()
		if p.budget >= 0 {
			if int64(len(chunk)) >= p.budget {
				// Budget exhausted inside this chunk: forward exactly the
				// remaining bytes, then reset the client connection.  The
				// partial forward makes the cut byte-exact; the RST (linger 0)
				// is what a killed process or middlebox produces.
				keep := chunk[:p.budget]
				p.resets++
				p.budget = p.armWith
				p.mu.Unlock()
				if len(keep) > 0 {
					dst.Write(keep)
				}
				if tc, ok := client.(*net.TCPConn); ok {
					tc.SetLinger(0)
				}
				client.Close()
				dst.Close()
				return false
			}
			p.budget -= int64(len(chunk))
		}
		p.mu.Unlock()
	}
	_, err := dst.Write(chunk)
	return err == nil
}

// --- harness self-tests -------------------------------------------------

// echoBackend answers every request with its body length.
func echoBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, "got %d", n)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func proxyClient(timeout time.Duration) *http.Client {
	// A private transport per test: the shared pool must not hand a test
	// a connection opened under another test's fault mode.
	return &http.Client{Timeout: timeout, Transport: &http.Transport{}}
}

func TestFaultProxyPassThrough(t *testing.T) {
	ts := echoBackend(t)
	p := newFaultProxy(t, ts.Listener.Addr().String())
	cl := proxyClient(5 * time.Second)
	resp, err := cl.Post(p.URL()+"/x", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "got 5" {
		t.Fatalf("pass-through echoed %q, want %q", body, "got 5")
	}
}

func TestFaultProxyLatency(t *testing.T) {
	ts := echoBackend(t)
	p := newFaultProxy(t, ts.Listener.Addr().String())
	p.slow(50 * time.Millisecond)
	cl := proxyClient(5 * time.Second)
	start := time.Now()
	resp, err := cl.Get(p.URL() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Request and response chunks each pay the latency at least once.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("latency mode round trip took %v, want >= 100ms", d)
	}
}

func TestFaultProxyStallThenRelease(t *testing.T) {
	ts := echoBackend(t)
	p := newFaultProxy(t, ts.Listener.Addr().String())
	p.stall()
	done := make(chan error, 1)
	cl := proxyClient(10 * time.Second)
	go func() {
		resp, err := cl.Get(p.URL() + "/x")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request finished during stall (err=%v)", err)
	case <-time.After(150 * time.Millisecond):
	}
	p.pass()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("request failed after stall release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still stuck after stall release")
	}
}

func TestFaultProxyBlackhole(t *testing.T) {
	ts := echoBackend(t)
	p := newFaultProxy(t, ts.Listener.Addr().String())
	p.blackhole()
	cl := proxyClient(200 * time.Millisecond)
	if _, err := cl.Get(p.URL() + "/x"); err == nil {
		t.Fatal("blackholed request succeeded, want timeout")
	}
}

func TestFaultProxyReset(t *testing.T) {
	ts := echoBackend(t)
	p := newFaultProxy(t, ts.Listener.Addr().String())
	p.resetClientToServerAfter(64, true) // cut inside the request
	cl := proxyClient(5 * time.Second)
	big := strings.Repeat("x", 1<<16)
	if _, err := cl.Post(p.URL()+"/x", "text/plain", strings.NewReader(big)); err == nil {
		t.Fatal("reset-injected POST succeeded, want connection error")
	}
	if got := p.resetCount(); got != 1 {
		t.Fatalf("resetCount = %d, want 1", got)
	}
	// once: the retry path is clean.
	resp, err := cl.Post(p.URL()+"/x", "text/plain", strings.NewReader("ok"))
	if err != nil {
		t.Fatalf("post-reset request failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := p.resetCount(); got != 1 {
		t.Fatalf("resetCount after once-reset = %d, want 1", got)
	}
}
