package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"feww"
	"feww/internal/stream"
	"feww/server"
)

// The star equivalence test pins the acceptance criterion of the unified
// runtime: a cluster of fewwd star members answers fresh star queries
// byte-identically to a single full-universe StarEngine — at the raw
// HTTP level, same response bytes for the same stream bytes.
//
// The deterministic regime mirrors the insert-only one: alpha = 1 puts
// every rung's reservoir in the all-candidates regime, so rung r
// certifies exactly the centers of degree >= guess_r with the first
// guess_r of their neighbours in sub-stream arrival order — a function
// of each center's own half-edge sub-stream only, which range routing
// preserves.  The ladder is derived from the global vertex count M on
// every member, so rung indices are comparable across any partition.

// startStarCluster boots one full-universe star reference node plus k
// range members and a gateway.  Per-member seeds and shard counts
// deliberately differ from the reference.
func startStarCluster(t *testing.T, n int64, k int) (ref *node, gw *httptest.Server, nodes []*node) {
	t.Helper()
	dir := t.TempDir()
	refEng, err := feww.NewStarEngine(feww.StarEngineConfig{
		N: n, Alpha: 1, Eps: 0.5, Seed: 42, Shards: 4, BatchSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref = startNode(t, server.NewStarBackend(refEng), dir, 99)

	urls := make([]string, k)
	for j, rng := range Split(n, k) {
		eng, err := feww.NewStarEngine(feww.StarEngineConfig{
			N: rng.Len(), M: n, Alpha: 1, Eps: 0.5, Seed: uint64(7 + j),
			Shards: j + 1, BatchSize: 16 + j,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd := startNode(t, server.NewStarBackend(eng), dir, j)
		nodes = append(nodes, nd)
		urls[j] = nd.ts.URL
	}
	g, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	return ref, serveGateway(t, g), nodes
}

// doubleCover expands undirected edges into the directed half-edge
// stream the star tier consumes, both orientations back to back.
func doubleCover(edges [][2]int64) []feww.Update {
	var out []feww.Update
	for _, e := range edges {
		out = append(out, ins(e[0], e[1]), ins(e[1], e[0]))
	}
	return out
}

func TestClusterStarEquivalence(t *testing.T) {
	const n = 60
	ref, gw, _ := startStarCluster(t, n, 3)

	// A planted star at vertex 25 with 20 neighbours spread over all
	// three ranges; lower-degree structure elsewhere.  Ladder over 60
	// with eps 0.5 is 1,2,3,4,6,8,12,18,27,41 — the winning guess is 18
	// (rung 7), certified by the first 18 of 25's neighbours in arrival
	// order.
	var edges [][2]int64
	neighbours := []int64{
		2, 41, 21, 58, 7, 33, 48, 11, 55, 17,
		39, 3, 29, 51, 9, 44, 23, 13, 36, 57,
	}
	for _, v := range neighbours {
		edges = append(edges, [2]int64{25, v})
	}
	// Background: a small star at 50 (degree 4 incl. mirror edges) and
	// scattered single edges in every range.
	for _, v := range []int64{1, 12, 31} {
		edges = append(edges, [2]int64{50, v})
	}
	edges = append(edges, [2]int64{5, 45}, [2]int64{28, 59}, [2]int64{40, 8})

	ups := doubleCover(edges)
	// Several requests so the gateway splits mixed batches repeatedly.
	for lo := 0; lo < len(ups); lo += 13 {
		hi := min(lo+13, len(ups))
		postStream(t, ref.ts.URL, n, n, ups[lo:hi])
		postStream(t, gw.URL, n, n, ups[lo:hi])
	}

	body := freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/best")
	var best server.BestResponse
	if err := json.Unmarshal(body, &best); err != nil {
		t.Fatal(err)
	}
	if !best.Found || best.Neighbourhood.Vertex != 25 {
		t.Fatalf("best = %s, want the planted center 25", body)
	}
	if best.Guess != 18 || best.WitnessTarget != 18 || best.Neighbourhood.Size != 18 {
		t.Fatalf("best = %s, want guess/target/size 18 (winning rung of degree 20)", body)
	}
	if best.Neighbourhood.Rung == nil {
		t.Fatalf("best = %s, want a rung-annotated star answer", body)
	}
	for i, w := range best.Neighbourhood.Witnesses {
		if w != neighbours[i] {
			t.Fatalf("witnesses = %v, want the first 18 planted neighbours in order", best.Neighbourhood.Witnesses)
		}
	}

	body = freshEqual(t, &httptestURL{ref.ts.URL}, &httptestURL{gw.URL}, "/results")
	var nbs []server.NeighbourhoodJSON
	if err := json.Unmarshal(body, &nbs); err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 1 || nbs[0].Vertex != 25 {
		t.Fatalf("results = %s, want exactly the winning-rung center 25", body)
	}

	// The gateway must also refuse a deletion for the star tier.
	var body2 bytes.Buffer
	if err := stream.WriteFile(&body2, n, n, []feww.Update{del(25, 2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(gw.URL+"/ingest", "application/octet-stream", &body2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("star gateway accepted a deletion: HTTP %d", resp.StatusCode)
	}
}

// TestClusterStarRangesMustCoverGraph: star members whose ranges do not
// sum to the graph's vertex count are refused at construction.
func TestClusterStarRangesMustCoverGraph(t *testing.T) {
	dir := t.TempDir()
	var urls []string
	for j, nLocal := range []int64{20, 20} { // covers 40 of a 60-vertex graph
		eng, err := feww.NewStarEngine(feww.StarEngineConfig{
			N: nLocal, M: 60, Alpha: 1, Seed: uint64(j + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		urls = append(urls, startNode(t, server.NewStarBackend(eng), dir, j).ts.URL)
	}
	if _, err := New(Config{Members: urls}); err == nil {
		t.Fatal("gateway accepted star ranges that do not cover the graph")
	}
}
