package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"feww"
	"feww/server"
)

func TestSplit(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		k    int
		want []Range
	}{
		{n: 9, k: 3, want: []Range{{0, 3}, {3, 6}, {6, 9}}},
		{n: 10, k: 3, want: []Range{{0, 4}, {4, 7}, {7, 10}}},
		{n: 11, k: 3, want: []Range{{0, 4}, {4, 8}, {8, 11}}},
		{n: 5, k: 1, want: []Range{{0, 5}}},
		{n: 2, k: 5, want: []Range{{0, 1}, {1, 2}}}, // k clamped to n
	} {
		got := Split(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("Split(%d, %d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Split(%d, %d)[%d] = %v, want %v", tc.n, tc.k, i, got[i], tc.want[i])
			}
		}
		// The split always covers [0, n) exactly.
		if got[0].Lo != 0 || got[len(got)-1].Hi != tc.n {
			t.Errorf("Split(%d, %d) does not cover the universe: %v", tc.n, tc.k, got)
		}
	}
}

func TestGroupFor(t *testing.T) {
	g := &Gateway{}
	for i, rng := range []Range{{0, 4}, {4, 7}, {7, 10}} {
		g.groups = append(g.groups, &group{idx: i, rng: rng})
	}
	for a, want := range map[int64]int{0: 0, 3: 0, 4: 1, 6: 1, 7: 2, 9: 2} {
		if got := g.groupFor(a); got != want {
			t.Errorf("groupFor(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestMergeBestTieBreak(t *testing.T) {
	nb := func(v int64, size int) server.BestResponse {
		ws := make([]int64, size)
		return server.BestResponse{Found: true, Neighbourhood: &server.NeighbourhoodJSON{Vertex: v, Size: size, Witnesses: ws}}
	}
	// Larger size wins regardless of order.
	got := mergeBest(5, []server.BestResponse{nb(1, 3), nb(9, 7), nb(4, 6)})
	if got.Neighbourhood.Vertex != 9 {
		t.Errorf("size merge picked vertex %d, want 9", got.Neighbourhood.Vertex)
	}
	// Ties break toward the smaller vertex id, independent of position.
	got = mergeBest(5, []server.BestResponse{nb(8, 4), nb(2, 4), nb(5, 4)})
	if got.Neighbourhood.Vertex != 2 {
		t.Errorf("tie merge picked vertex %d, want 2", got.Neighbourhood.Vertex)
	}
	if got.WitnessTarget != 5 {
		t.Errorf("merge dropped the witness target: %d", got.WitnessTarget)
	}
	// Nothing found anywhere.
	got = mergeBest(5, []server.BestResponse{{}, {}})
	if got.Found {
		t.Error("merge of empty bests reports found")
	}
}

// node is one in-process fewwd member: engine + server + listener.
type node struct {
	backend server.Backend
	srv     *server.Server
	ts      *httptest.Server
	ckpt    string
}

func (nd *node) close() {
	nd.ts.Close()
	nd.backend.Close()
}

// startNode serves a backend over an httptest listener with a checkpoint
// path under dir.
func startNode(t *testing.T, b server.Backend, dir string, idx int) *node {
	t.Helper()
	ckpt := filepath.Join(dir, "node"+strconv.Itoa(idx)+".ckpt")
	srv := server.New(b, server.Config{CheckpointPath: ckpt})
	ts := httptest.NewServer(srv.Handler())
	nd := &node{backend: b, srv: srv, ts: ts, ckpt: ckpt}
	t.Cleanup(nd.close)
	return nd
}

// startInsertCluster boots one full-universe reference node plus k range
// members and a gateway over them, all insert-only.  Per-member seeds and
// shard counts deliberately differ from the reference: in the
// deterministic regime (alpha = 1) the results must not depend on them.
func startInsertCluster(t *testing.T, n int64, k int, d int64) (ref *node, gw *httptest.Server, nodes []*node) {
	t.Helper()
	dir := t.TempDir()
	refEng, err := feww.NewEngine(feww.EngineConfig{
		Config: feww.Config{N: n, D: d, Alpha: 1, Seed: 42},
		Shards: 4, BatchSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref = startNode(t, server.NewInsertOnlyBackend(refEng), dir, 99)

	urls := make([]string, k)
	for j, rng := range Split(n, k) {
		eng, err := feww.NewEngine(feww.EngineConfig{
			Config: feww.Config{N: rng.Len(), D: d, Alpha: 1, Seed: uint64(7 + j)},
			Shards: j + 1, BatchSize: 16 + j,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd := startNode(t, server.NewInsertOnlyBackend(eng), dir, j)
		nodes = append(nodes, nd)
		urls[j] = nd.ts.URL
	}
	g, err := New(Config{Members: urls})
	if err != nil {
		t.Fatal(err)
	}
	return ref, serveGateway(t, g), nodes
}

// serveGateway mounts a gateway on an httptest listener.
func serveGateway(t *testing.T, g *Gateway) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// get fetches a URL and returns the raw body, failing the test on a
// transport error or unexpected status.
func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: HTTP %d (want %d): %s", url, resp.StatusCode, wantCode, body)
	}
	return body
}
