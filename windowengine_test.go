package feww

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"feww/internal/core"
)

// windowStream renders an item sequence the classical frequent-elements
// way: occurrence t of the whole stream becomes edge (item, t), so
// witnesses are arrival positions and in-window witnesses are verifiable
// by value.
func windowStream(items []int64, from int64) []Edge {
	edges := make([]Edge, len(items))
	for i, a := range items {
		edges[i] = Edge{A: a, B: from + int64(i)}
	}
	return edges
}

func repeatItems(n int, items ...int64) []int64 {
	out := make([]int64, 0, n*len(items))
	for i := 0; i < n; i++ {
		out = append(out, items...)
	}
	return out
}

// TestWindowEngineServesRecency is the subsystem's reason to exist: a
// heavy item stops occurring, the stream moves on, and the engine stops
// reporting it — with every reported witness inside the served window.
// Alpha = 1 keeps the assertions exact rather than w.h.p.
func TestWindowEngineServesRecency(t *testing.T) {
	eng, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: 16, D: 4, Alpha: 1, Seed: 5},
		Window: 32, Buckets: 4,
		Shards: 4, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Phase 1: item 3 heavy.
	if err := eng.ProcessEdges(windowStream(repeatItems(8, 3), 0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	results := eng.ResultsFresh()
	if len(results) != 1 || results[0].A != 3 {
		t.Fatalf("phase 1 results = %+v, want item 3", results)
	}

	// Phase 2: the stream moves on to item 7 for more than a full window;
	// item 3 must age out entirely even though its shard sees no traffic.
	if err := eng.ProcessEdges(windowStream(repeatItems(40, 7), 8)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	results = eng.ResultsFresh()
	if len(results) != 1 || results[0].A != 7 {
		t.Fatalf("phase 2 results = %+v, want only item 7 (item 3 aged out)", results)
	}
	start, end := eng.WindowSpan()
	if end != 48 {
		t.Fatalf("WindowSpan end = %d, want 48", end)
	}
	if end-start > eng.Window() || start%8 != 0 { // width = ceil(32/4) = 8
		t.Fatalf("WindowSpan = [%d, %d), want a bucket-aligned span of at most %d", start, end, eng.Window())
	}
	for _, nb := range results {
		for _, b := range nb.Witnesses {
			if b < start || b >= end {
				t.Fatalf("witness %d of item %d outside served span [%d, %d)", b, nb.A, start, end)
			}
		}
	}
}

// TestWindowEnginePublishedMatchesFreshAfterDrain pins the consistency
// rendezvous for the window kind, in the configuration that needs the
// barrier republication hook: a shard whose items stopped arriving must
// still age out in its *published* view, because the clock it ages
// against is advanced by other shards' traffic.
func TestWindowEnginePublishedMatchesFreshAfterDrain(t *testing.T) {
	eng, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: 8, D: 3, Alpha: 1, Seed: 11},
		Window: 16, Buckets: 4,
		Shards: 4, BatchSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Items 0 and 1 live on different shards.  Make 0 heavy, then push the
	// window past it with item-1 traffic only: shard 0 goes idle while its
	// state expires.
	if err := eng.ProcessEdges(windowStream(repeatItems(4, 0), 0)); err != nil {
		t.Fatal(err)
	}
	if err := eng.ProcessEdges(windowStream(repeatItems(20, 1), 4)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	if got, want := eng.Results(), eng.ResultsFresh(); !reflect.DeepEqual(got, want) {
		t.Fatalf("published Results %v != fresh Results %v", got, want)
	}
	gotR, gotErr := eng.Result()
	wantR, wantErr := eng.ResultFresh()
	if !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("published Result err %v != fresh err %v", gotErr, wantErr)
	}
	if gotErr == nil && !reflect.DeepEqual(gotR, wantR) {
		t.Fatalf("published Result %v != fresh Result %v", gotR, wantR)
	}
	gotNb, gotOK := eng.Best()
	wantNb, wantOK := eng.BestFresh()
	if gotOK != wantOK || !reflect.DeepEqual(gotNb, wantNb) {
		t.Fatalf("published Best (%v, %v) != fresh Best (%v, %v)", gotNb, gotOK, wantNb, wantOK)
	}
	if got, want := eng.SpaceWords(), eng.SpaceWordsFresh(); got != want {
		t.Fatalf("published SpaceWords %d != fresh %d", got, want)
	}
	gotW, gotB := eng.Usage()
	wantW, wantB := eng.UsageFresh()
	if gotW != wantW || gotB != wantB {
		t.Fatalf("published Usage (%d, %d) != fresh Usage (%d, %d)", gotW, gotB, wantW, wantB)
	}
	// The expiry must actually have happened: item 0 gone everywhere.
	for _, nb := range eng.Results() {
		if nb.A == 0 {
			t.Fatalf("item 0 still published after the window moved past it: %+v", nb)
		}
	}
}

// TestWindowEngineSnapshotRoundTrip pins the kind-3 container contract:
// snapshot mid-window, restore, feed both engines the identical suffix,
// and the states — judged by their next snapshots — must be
// byte-identical, with positions and bucket boundaries continuing
// exactly where the snapshot stopped.
func TestWindowEngineSnapshotRoundTrip(t *testing.T) {
	cfg := WindowEngineConfig{
		Config: Config{N: 24, D: 3, Alpha: 2, Seed: 17},
		Window: 40, Buckets: 5,
		Shards: 3, BatchSize: 8,
	}
	eng, err := NewWindowEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	prefix := repeatItems(9, 2, 5, 2, 9, 2, 11)
	if err := eng.ProcessEdges(windowStream(prefix, 0)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if got, want := snap.Len(), eng.SnapshotSize(); got != want {
		t.Fatalf("snapshot wrote %d bytes, SnapshotSize says %d", got, want)
	}

	restored, err := RestoreWindowEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.EdgesProcessed(); got != int64(len(prefix)) {
		t.Fatalf("restored EdgesProcessed = %d, want %d", got, len(prefix))
	}
	if restored.Config() != eng.Config() {
		t.Fatalf("restored config %+v != original %+v", restored.Config(), eng.Config())
	}

	// Continue both with the same suffix — long enough to cross bucket
	// boundaries and expire pre-snapshot state.
	suffix := windowStream(repeatItems(12, 7, 13, 7), int64(len(prefix)))
	if err := eng.ProcessEdges(suffix); err != nil {
		t.Fatal(err)
	}
	if err := restored.ProcessEdges(suffix); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := eng.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("post-suffix snapshots diverge: %d vs %d bytes", a.Len(), b.Len())
	}
	if got, want := eng.ResultsFresh(), restored.ResultsFresh(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-suffix results diverge: %v vs %v", got, want)
	}

	// Kind dispatch: the other restore entry points must reject kind 3,
	// and the window restore must reject other kinds.
	if _, err := RestoreEngine(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreEngine on a window snapshot = %v, want ErrBadSnapshot", err)
	}
	insert, err := NewEngine(EngineConfig{Config: Config{N: 4, D: 2, Alpha: 1, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer insert.Close()
	var insSnap bytes.Buffer
	if err := insert.Snapshot(&insSnap); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreWindowEngine(bytes.NewReader(insSnap.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("RestoreWindowEngine on an insert snapshot = %v, want ErrBadSnapshot", err)
	}
}

// TestWindowEngineValidatesUniverse mirrors the boundary checks of the
// other kinds: bad ids rejected whole, engine usable afterwards, Close
// turns feeding into ErrClosed.
func TestWindowEngineValidatesUniverse(t *testing.T) {
	eng, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: 10, D: 2, Alpha: 1, Seed: 1},
		Window: 8, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.Buckets(); got != 8 {
		t.Fatalf("defaulted Buckets = %d, want 8", got)
	}

	for _, tc := range []struct{ a, b int64 }{{-1, 0}, {10, 0}, {0, -5}} {
		if err := eng.ProcessEdge(tc.a, tc.b); !errors.Is(err, ErrOutOfUniverse) {
			t.Errorf("ProcessEdge(%d, %d) = %v, want ErrOutOfUniverse", tc.a, tc.b, err)
		}
	}
	if err := eng.ProcessEdges([]Edge{{A: 1, B: 1}, {A: -3, B: 0}}); !errors.Is(err, ErrOutOfUniverse) {
		t.Fatalf("batch with bad edge = %v, want ErrOutOfUniverse", err)
	}
	if got := eng.EdgesProcessed(); got != 0 {
		t.Fatalf("rejected batch fed %d edges, want 0", got)
	}
	if _, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: 4, D: 1, Alpha: 1}, Window: 0,
	}); err == nil {
		t.Fatal("NewWindowEngine accepted Window = 0")
	}
	if _, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: 4, D: 1, Alpha: 1}, Window: 4, Buckets: 9,
	}); err == nil {
		t.Fatal("NewWindowEngine accepted Buckets > Window")
	}
	eng.Close()
	if err := eng.ProcessEdge(1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("ProcessEdge after Close = %v, want ErrClosed", err)
	}
}

// TestWindowPublishedQueriesNeverTornUnderIngest is the window twin of
// the engine torn-view race test: readers hammer the barrier-free path
// while a producer pushes several windows' worth of encoded traffic
// through, so views are built, republished and *expired* concurrently
// with the reads.  Run under -race this validates the publication
// discipline; the invariant checks validate that nothing torn, alien or
// over-target is ever served.  Unlike the insert-only twin, space may
// legitimately shrink (buckets expire), so only epoch monotonicity is
// asserted on the counters.
func TestWindowPublishedQueriesNeverTornUnderIngest(t *testing.T) {
	const (
		n       = 64
		rounds  = 512
		readers = 4
	)
	prevInterval := publishMinInterval
	publishMinInterval = 0
	defer func() { publishMinInterval = prevInterval }()
	// Alpha = 1 makes the in-window promise exact: the window spans 8
	// rounds, its guaranteed suffix (Window - width + 1 updates) at least
	// 7, so every item is promised once D <= 7.
	eng, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: n, D: 6, Alpha: 1, Seed: 9},
		Window: 8 * n, Buckets: 8,
		Shards: 4, BatchSize: 32, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	target := eng.WitnessTarget()

	var done atomic.Bool
	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		done.Store(true)
		t.Errorf(format, args...)
	}
	checkNb := func(nb Neighbourhood, full bool) {
		if nb.A < 0 || nb.A >= n {
			fail("published item %d outside the universe", nb.A)
			return
		}
		if full && int64(nb.Size()) != target {
			fail("full-target neighbourhood for %d has %d witnesses, want %d", nb.A, nb.Size(), target)
		}
		if int64(nb.Size()) > target {
			fail("neighbourhood for %d has %d witnesses, above the target %d", nb.A, nb.Size(), target)
		}
		seen := make(map[int64]bool, len(nb.Witnesses))
		for _, w := range nb.Witnesses {
			if w/viewStride != nb.A {
				fail("witness %d does not belong to item %d: torn view", w, nb.A)
			}
			if seen[w] {
				fail("duplicate witness %d for item %d", w, nb.A)
			}
			seen[w] = true
		}
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prevEpochs := eng.ViewEpochs()
			for !done.Load() {
				if nb, ok := eng.Best(); ok {
					checkNb(nb, false)
				}
				for _, nb := range eng.Results() {
					checkNb(nb, true)
				}
				if nb, err := eng.Result(); err == nil {
					checkNb(nb, true)
				}
				if _, end := eng.WindowSpan(); end < 0 {
					fail("negative window end %d", end)
				}
				epochs := eng.ViewEpochs()
				for i := range epochs {
					if epochs[i] < prevEpochs[i] {
						fail("shard %d epoch went backwards: %d -> %d", i, prevEpochs[i], epochs[i])
					}
				}
				prevEpochs = epochs
			}
		}()
	}

	// Single producer: each round feeds every item once, witnesses encode
	// their item and round; the stream is several windows long, so early
	// buckets expire while the readers run.
	for j := int64(0); j < rounds && !done.Load(); j++ {
		batch := make([]Edge, 0, n)
		for a := int64(0); a < n; a++ {
			batch = append(batch, Edge{A: a, B: a*viewStride + j})
		}
		if err := eng.ProcessEdges(batch); err != nil {
			t.Errorf("ProcessEdges: %v", err)
			break
		}
	}
	done.Store(true)
	wg.Wait()

	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	results := eng.Results()
	if !reflect.DeepEqual(results, eng.ResultsFresh()) {
		t.Fatal("after drain: published Results differ from fresh Results")
	}
	if len(results) == 0 {
		t.Fatal("after drain: no published results on a satisfied in-window promise")
	}
	for _, nb := range results {
		checkNb(nb, true)
	}
}

// TestWindowEngineConcurrentProducersStamping pins what "determinism
// across concurrent producers" means after the reserve-then-enqueue
// rework: N goroutines feed the window engine at once, and the engine
// must assign every accepted update a unique, dense arrival position —
// {0, ..., total-1} with no hole and no duplicate — and then serve a set
// that passes the exact sliding-window recount over those positions.
// The interleaving is whatever the atomic reservations linearised into,
// not known in advance; the contract is that the engine commits to ONE
// such order consistently, so the recount built from the observed stamps
// agrees exactly with what the engine serves.  Run under -race this also
// exercises the lock-free stamp path.
func TestWindowEngineConcurrentProducersStamping(t *testing.T) {
	const (
		producers = 4
		perItems  = 8  // items owned per producer
		rounds    = 32 // each producer feeds its items once per round
		n         = producers * perItems
		total     = producers * perItems * rounds
	)
	eng, err := NewWindowEngine(WindowEngineConfig{
		Config: Config{N: n, D: 5, Alpha: 1, Seed: 23},
		Window: 256, Buckets: 4,
		Shards: 4, BatchSize: 16, QueueDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Wrap the stamp hook before any producer starts: record which edge
	// got which arrival position.  Stamping happens lock-free on the
	// producer path, so the recording map needs its own lock.
	var (
		mu      sync.Mutex
		posEdge = make(map[int64]Edge, total)
		stamped = eng.rt.f.stamp
	)
	eng.rt.f.stamp = func(u *core.WindowUpdate, pos int64) {
		stamped(u, pos)
		mu.Lock()
		if prev, dup := posEdge[pos]; dup {
			t.Errorf("position %d stamped twice: %+v and A=%d B=%d", pos, prev, u.A, u.B)
		}
		posEdge[pos] = Edge{A: u.A, B: u.B}
		mu.Unlock()
	}

	// Producer p owns items [p*perItems, (p+1)*perItems) and feeds each
	// once per round with a globally unique witness, so the recount can
	// match served witnesses back to recorded updates by value.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				batch := make([]Edge, perItems)
				for j := range batch {
					a := int64(p*perItems + j)
					batch[j] = Edge{A: a, B: int64(p*1_000_000 + r*perItems + j)}
				}
				if err := eng.ProcessEdges(batch); err != nil {
					t.Errorf("producer %d round %d: %v", p, r, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	// Positions must be dense and unique: exactly {0, ..., total-1}.
	if len(posEdge) != total {
		t.Fatalf("recorded %d distinct positions, want %d", len(posEdge), total)
	}
	for pos := int64(0); pos < total; pos++ {
		if _, ok := posEdge[pos]; !ok {
			t.Fatalf("no update stamped with position %d: positions not dense", pos)
		}
	}

	// Exact sliding-window recount over the recorded positions: with
	// Alpha = 1 the engine must serve exactly the items with >= D
	// occurrences in the served span, and every witness must be the B of
	// an in-span update of that item.
	start, end := eng.WindowSpan()
	if end != total {
		t.Fatalf("WindowSpan end = %d, want %d", end, total)
	}
	counts := make(map[int64]int64, n)
	inSpan := make(map[Edge]bool, end-start)
	for pos := start; pos < end; pos++ {
		e := posEdge[pos]
		counts[e.A]++
		inSpan[e] = true
	}
	want := make(map[int64]bool)
	for a, c := range counts {
		if c >= 5 { // D
			want[a] = true
		}
	}
	served := eng.ResultsFresh()
	got := make(map[int64]bool, len(served))
	for _, nb := range served {
		got[nb.A] = true
		for _, b := range nb.Witnesses {
			if !inSpan[Edge{A: nb.A, B: b}] {
				t.Errorf("witness %d of item %d is not an in-span update of that item", b, nb.A)
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("served set %v does not match the exact recount %v over span [%d, %d)", got, want, start, end)
	}
}
