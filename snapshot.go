package feww

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"feww/internal/core"
	"feww/internal/xrand"
)

// Engine-level checkpointing composes the per-shard core snapshots into
// one container.  The container records the resolved engine configuration
// (so a restored engine re-creates the identical partitioning and queue
// tuning), the producer-side element counter, and each shard's
// length-prefixed core snapshot in shard order.  The serialisation loop
// itself is the generic runtime's (runtime.go): a snapshot is taken after
// an internal barrier, so the queues are empty at the instant of
// serialisation and nothing in flight can be lost — every element the
// engine accepted is inside some shard's state.  This file contributes
// the kind-specific headers and their decode/validate halves.
//
// Layout (all fixed-width fields little-endian uint64 unless noted):
//
//	magic   [8]byte "FEWWENG1"
//	kind    byte    0 = insertion-only Engine, 1 = TurnstileEngine,
//	                2 = StarEngine, 3 = WindowEngine
//	header  kind-specific configuration + element count (see below)
//	shards  Shards times: byte length, then that shard's core snapshot
var engineSnapMagic = [8]byte{'F', 'E', 'W', 'W', 'E', 'N', 'G', '1'}

const (
	engineKindInsertOnly = 0
	engineKindTurnstile  = 1
	engineKindStar       = 2
	engineKindWindow     = 3

	// Container header sizes: magic + kind byte + the fixed uint64 fields
	// each Snapshot writes before the per-shard payloads.  Usage and
	// UsageFresh must agree with Snapshot on these.
	engineSnapHeaderBytes    = 8 + 1 + 9*8
	turnstileSnapHeaderBytes = 8 + 1 + 11*8
	starSnapHeaderBytes      = 8 + 1 + 10*8
	windowSnapHeaderBytes    = 8 + 1 + 11*8
)

// Snapshot writes the engine's complete state to w: resolved
// configuration, the ingest counter, and every shard's core snapshot.
// The engine quiesces first (flush + barrier), so the snapshot reflects
// exactly the edges fed before the call; concurrent producers block until
// serialisation finishes.  Restoring with RestoreEngine and feeding the
// same stream suffix reproduces the uninterrupted run exactly.
func (e *Engine) Snapshot(w io.Writer) error {
	return e.rt.snapshot(w, engineKindInsertOnly, []uint64{
		uint64(e.cfg.N),
		uint64(e.cfg.D),
		uint64(e.cfg.Alpha),
		e.cfg.Seed,
		math.Float64bits(e.cfg.ScaleFactor),
		uint64(e.cfg.Shards),
		uint64(e.cfg.BatchSize),
		uint64(e.cfg.QueueDepth),
	})
}

// SnapshotSize returns the exact byte length Snapshot would write, under
// the same quiesce Snapshot itself takes.
func (e *Engine) SnapshotSize() int {
	_, size := e.UsageFresh()
	return size
}

// UsageFresh reports SpaceWords and SnapshotSize together under a single
// quiesce — exact at the barrier, at the cost of stalling ingest once.
// Periodic stats polls should prefer the barrier-free Usage.
func (e *Engine) UsageFresh() (spaceWords, snapshotBytes int) { return e.rt.usage(true) }

// RestoreEngine reads a snapshot written by (*Engine).Snapshot and returns
// a running engine that continues exactly where the snapshotted one
// stopped, including its shard partitioning and batch/queue tuning.  It
// fails with ErrBadSnapshot if the bytes hold another engine kind's
// snapshot (use RestoreTurnstileEngine / RestoreStarEngine) or are
// corrupt.
func RestoreEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	kind, err := readEngineSnapKind(br)
	if err != nil {
		return nil, err
	}
	if kind != engineKindInsertOnly {
		return nil, fmt.Errorf("%w: snapshot holds engine kind %d, not an insertion-only Engine", ErrBadSnapshot, kind)
	}
	dec := &wordDecoder{r: br}
	cfg := EngineConfig{
		Config: Config{
			N:     int64(dec.u64()),
			D:     int64(dec.u64()),
			Alpha: int(dec.u64()),
			Seed:  dec.u64(),
		},
	}
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	cfg.Shards = int(dec.u64())
	cfg.BatchSize = int(dec.u64())
	cfg.QueueDepth = int(dec.u64())
	count := int64(dec.u64())
	if dec.err != nil {
		return nil, dec.err
	}
	if err := validateEngineSnapHeader(cfg.N, cfg.Shards, cfg.BatchSize, cfg.QueueDepth, count); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertOnly, cfg.Shards)
	for i := range inners {
		if inners[i], err = restoreShard(dec, core.RestoreInsertOnly, i); err != nil {
			return nil, err
		}
		// The shard snapshot carries its own config; it must be exactly
		// what NewEngine would derive from the container's, or the
		// local/global id mapping (and the universe checks above the
		// engine) are wrong for this shard.
		if got, want := inners[i].Config(), cfg.shardConfig(i, p, seeds.Uint64()); got != want {
			return nil, fmt.Errorf("%w: shard %d config %+v does not match container derivation %+v",
				ErrBadSnapshot, i, got, want)
		}
	}
	eng := newEngineFromInners(cfg, inners)
	eng.rt.f.restoreCount(count)
	return eng, nil
}

// Snapshot writes the turnstile engine's complete state to w; the same
// quiescing and exactness guarantees as (*Engine).Snapshot apply.
func (e *TurnstileEngine) Snapshot(w io.Writer) error {
	return e.rt.snapshot(w, engineKindTurnstile, []uint64{
		uint64(e.cfg.N),
		uint64(e.cfg.M),
		uint64(e.cfg.D),
		uint64(e.cfg.Alpha),
		e.cfg.Seed,
		math.Float64bits(e.cfg.ScaleFactor),
		uint64(e.cfg.MaxSamplers),
		uint64(e.cfg.Shards),
		uint64(e.cfg.BatchSize),
		uint64(e.cfg.QueueDepth),
	})
}

// SnapshotSize returns the exact byte length Snapshot would write, under
// the same quiesce Snapshot itself takes.
func (e *TurnstileEngine) SnapshotSize() int {
	_, size := e.UsageFresh()
	return size
}

// UsageFresh reports SpaceWords and SnapshotSize together under a single
// quiesce; see (*Engine).UsageFresh.
func (e *TurnstileEngine) UsageFresh() (spaceWords, snapshotBytes int) { return e.rt.usage(true) }

// RestoreTurnstileEngine reads a snapshot written by
// (*TurnstileEngine).Snapshot and returns a running engine that continues
// exactly where the snapshotted one stopped.
func RestoreTurnstileEngine(r io.Reader) (*TurnstileEngine, error) {
	br := bufio.NewReader(r)
	kind, err := readEngineSnapKind(br)
	if err != nil {
		return nil, err
	}
	if kind != engineKindTurnstile {
		return nil, fmt.Errorf("%w: snapshot holds engine kind %d, not a TurnstileEngine", ErrBadSnapshot, kind)
	}
	dec := &wordDecoder{r: br}
	cfg := TurnstileEngineConfig{
		TurnstileConfig: TurnstileConfig{
			N:     int64(dec.u64()),
			M:     int64(dec.u64()),
			D:     int64(dec.u64()),
			Alpha: int(dec.u64()),
			Seed:  dec.u64(),
		},
	}
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	cfg.MaxSamplers = int(dec.u64())
	cfg.Shards = int(dec.u64())
	cfg.BatchSize = int(dec.u64())
	cfg.QueueDepth = int(dec.u64())
	count := int64(dec.u64())
	if dec.err != nil {
		return nil, dec.err
	}
	if err := validateEngineSnapHeader(cfg.N, cfg.Shards, cfg.BatchSize, cfg.QueueDepth, count); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertDelete, cfg.Shards)
	for i := range inners {
		if inners[i], err = restoreShard(dec, core.RestoreInsertDelete, i); err != nil {
			return nil, err
		}
		if got, want := inners[i].Config(), cfg.shardConfig(i, p, seeds.Uint64()); got != want {
			return nil, fmt.Errorf("%w: shard %d config %+v does not match container derivation %+v",
				ErrBadSnapshot, i, got, want)
		}
	}
	eng := newTurnstileFromInners(cfg, inners)
	eng.rt.f.restoreCount(count)
	return eng, nil
}

// readEngineSnapKind consumes and checks the container magic, returning
// the engine kind byte.
func readEngineSnapKind(br *bufio.Reader) (byte, error) {
	var head [9]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if [8]byte(head[:8]) != engineSnapMagic {
		return 0, fmt.Errorf("%w: bad engine magic %q", ErrBadSnapshot, head[:8])
	}
	kind := head[8]
	switch kind {
	case engineKindInsertOnly, engineKindTurnstile, engineKindStar, engineKindWindow:
	default:
		return 0, fmt.Errorf("%w: unknown engine kind %d", ErrBadSnapshot, kind)
	}
	return kind, nil
}

// Upper bounds a snapshot header may claim before any allocation is made
// on its behalf.  Far above anything an engine can be configured to, far
// below anything that could OOM the restoring process — a corrupt header
// must fail as ErrBadSnapshot, not as a makeslice panic.
const (
	maxSnapShards     = 1 << 20
	maxSnapBatchSize  = 1 << 24
	maxSnapQueueDepth = 1 << 16
)

// validateEngineSnapHeader sanity-checks the decoded header before any
// shard is reconstructed.
func validateEngineSnapHeader(n int64, shards, batchSize, queueDepth int, count int64) error {
	switch {
	case n < 1:
		return fmt.Errorf("%w: N = %d", ErrBadSnapshot, n)
	case shards < 1 || int64(shards) > n || shards > maxSnapShards:
		return fmt.Errorf("%w: %d shards with N = %d", ErrBadSnapshot, shards, n)
	case batchSize < 1 || batchSize > maxSnapBatchSize:
		return fmt.Errorf("%w: batch size %d", ErrBadSnapshot, batchSize)
	case queueDepth < 1 || queueDepth > maxSnapQueueDepth:
		return fmt.Errorf("%w: queue depth %d", ErrBadSnapshot, queueDepth)
	case count < 0:
		return fmt.Errorf("%w: element count %d", ErrBadSnapshot, count)
	}
	return nil
}

// restoreShard reads one length-prefixed shard snapshot and restores it
// with the given core restore function, verifying the declared length is
// consumed exactly.
func restoreShard[T any](dec *wordDecoder, restore func(io.Reader) (T, error), idx int) (T, error) {
	var zero T
	size := int64(dec.u64())
	if dec.err != nil {
		return zero, dec.err
	}
	if size < 0 {
		return zero, fmt.Errorf("%w: shard %d snapshot length %d", ErrBadSnapshot, idx, size)
	}
	lr := io.LimitReader(dec.r, size)
	inner, err := restore(lr)
	if err != nil {
		return zero, fmt.Errorf("shard %d: %w", idx, err)
	}
	if left, _ := io.Copy(io.Discard, lr); left != 0 {
		return zero, fmt.Errorf("%w: shard %d snapshot has %d trailing bytes", ErrBadSnapshot, idx, left)
	}
	return inner, nil
}

// wordEncoder / wordDecoder mirror the little-endian fixed-width helpers
// of internal/core for the engine container's own fields.
type wordEncoder struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (e *wordEncoder) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *wordEncoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.bytes(e.buf[:])
}

type wordDecoder struct {
	r   io.Reader
	buf [8]byte
	err error
}

func (d *wordDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if _, err := io.ReadFull(d.r, d.buf[:]); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:])
}
