package feww

import (
	"errors"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

// TestTurnstileStarDetector builds a small general graph, deletes part of
// it, and checks the detector reports a genuine star of the *final* graph
// (Corollary 5.5 behaviour).
func TestTurnstileStarDetector(t *testing.T) {
	const n = 48
	sd, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: n, Alpha: 2, Eps: 0.5, Seed: 3, ScaleFactor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}

	adj := make(map[int64]map[int64]bool)
	setEdge := func(u, v int64, on bool) {
		for _, p := range [][2]int64{{u, v}, {v, u}} {
			if adj[p[0]] == nil {
				adj[p[0]] = make(map[int64]bool)
			}
			if on {
				adj[p[0]][p[1]] = true
			} else {
				delete(adj[p[0]], p[1])
			}
		}
	}

	// A hub (vertex 0) connected to 1..24, plus a decoy hub (vertex 40)
	// connected to 25..39 whose edges are later deleted.
	for v := int64(1); v <= 24; v++ {
		if err := sd.Insert(0, v); err != nil {
			t.Fatal(err)
		}
		setEdge(0, v, true)
	}
	for v := int64(25); v < 40; v++ {
		if err := sd.Insert(40, v); err != nil {
			t.Fatal(err)
		}
		setEdge(40, v, true)
	}
	for v := int64(25); v < 40; v++ {
		if err := sd.Delete(40, v); err != nil {
			t.Fatal(err)
		}
		setEdge(40, v, false)
	}

	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nb.Witnesses {
		if !adj[nb.A][w] {
			t.Fatalf("reported neighbour %d of %d was deleted or never existed", w, nb.A)
		}
	}
	// Delta = 24 (the hub); the (1+eps)*alpha = 3 guarantee demands >= 8.
	if nb.Size() < 8 {
		t.Fatalf("star size %d below Delta/((1+eps)alpha) = 8", nb.Size())
	}
}

func TestTurnstileStarDetectorChurnWorkload(t *testing.T) {
	const n = 20
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			// Bipartite planted instance reused as a general graph on
			// [0, 2n): A-vertices keep ids, B-vertices are shifted by n.
			N: n, M: n, Heavy: 1, HeavyDeg: 10,
			NoiseEdges: 15, Order: workload.Shuffled, Seed: 6,
		},
		ChurnEdges: 30,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: 2 * n, Alpha: 2, Seed: 9, ScaleFactor: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		var err error
		if u.Op == stream.Delete {
			err = sd.Delete(u.A, u.B+n)
		} else {
			err = sd.Insert(u.A, u.B+n)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if nb.Size() < 1 {
		t.Fatal("empty star")
	}
	// Every witness must be a live neighbour in the final graph.
	live := make(map[stream.Edge]bool)
	for e := range inst.Truth {
		live[stream.Edge{A: e.A, B: e.B + n}] = true
		live[stream.Edge{A: e.B + n, B: e.A}] = true
	}
	for _, w := range nb.Witnesses {
		if !live[stream.Edge{A: nb.A, B: w}] {
			t.Fatalf("witness %d of %d not live in final graph", w, nb.A)
		}
	}
}

func TestTurnstileStarDetectorRejectsOversized(t *testing.T) {
	_, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: 1 << 20, Alpha: 1, MaxSamplers: 10,
	})
	if err == nil {
		t.Fatal("oversized ladder accepted")
	}
}

func TestStarDetectorEmptyGraph(t *testing.T) {
	sd, err := NewStarDetector(StarConfig{N: 10, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Result(); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
}
