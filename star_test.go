package feww

import (
	"errors"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

// TestTurnstileStarDetector builds a small general graph, deletes part of
// it, and checks the detector reports a genuine star of the *final* graph
// (Corollary 5.5 behaviour).
func TestTurnstileStarDetector(t *testing.T) {
	const n = 48
	sd, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: n, Alpha: 2, Eps: 0.5, Seed: 3, ScaleFactor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}

	adj := make(map[int64]map[int64]bool)
	setEdge := func(u, v int64, on bool) {
		for _, p := range [][2]int64{{u, v}, {v, u}} {
			if adj[p[0]] == nil {
				adj[p[0]] = make(map[int64]bool)
			}
			if on {
				adj[p[0]][p[1]] = true
			} else {
				delete(adj[p[0]], p[1])
			}
		}
	}

	// A hub (vertex 0) connected to 1..24, plus a decoy hub (vertex 40)
	// connected to 25..39 whose edges are later deleted.
	for v := int64(1); v <= 24; v++ {
		if err := sd.Insert(0, v); err != nil {
			t.Fatal(err)
		}
		setEdge(0, v, true)
	}
	for v := int64(25); v < 40; v++ {
		if err := sd.Insert(40, v); err != nil {
			t.Fatal(err)
		}
		setEdge(40, v, true)
	}
	for v := int64(25); v < 40; v++ {
		if err := sd.Delete(40, v); err != nil {
			t.Fatal(err)
		}
		setEdge(40, v, false)
	}

	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nb.Witnesses {
		if !adj[nb.A][w] {
			t.Fatalf("reported neighbour %d of %d was deleted or never existed", w, nb.A)
		}
	}
	// Delta = 24 (the hub); the (1+eps)*alpha = 3 guarantee demands >= 8.
	if nb.Size() < 8 {
		t.Fatalf("star size %d below Delta/((1+eps)alpha) = 8", nb.Size())
	}
}

func TestTurnstileStarDetectorChurnWorkload(t *testing.T) {
	const n = 20
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			// Bipartite planted instance reused as a general graph on
			// [0, 2n): A-vertices keep ids, B-vertices are shifted by n.
			N: n, M: n, Heavy: 1, HeavyDeg: 10,
			NoiseEdges: 15, Order: workload.Shuffled, Seed: 6,
		},
		ChurnEdges: 30,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: 2 * n, Alpha: 2, Seed: 9, ScaleFactor: 0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		var err error
		if u.Op == stream.Delete {
			err = sd.Delete(u.A, u.B+n)
		} else {
			err = sd.Insert(u.A, u.B+n)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if nb.Size() < 1 {
		t.Fatal("empty star")
	}
	// Every witness must be a live neighbour in the final graph.
	live := make(map[stream.Edge]bool)
	for e := range inst.Truth {
		live[stream.Edge{A: e.A, B: e.B + n}] = true
		live[stream.Edge{A: e.B + n, B: e.A}] = true
	}
	for _, w := range nb.Witnesses {
		if !live[stream.Edge{A: nb.A, B: w}] {
			t.Fatalf("witness %d of %d not live in final graph", w, nb.A)
		}
	}
}

// TestStarEngineOnGeneratedWorkload closes the loop between the workload
// generator and the sharded star tier: the fewwgen -kind star stream (a
// directed double cover with a planted max-degree star) fed to a
// StarEngine must certify the planted center with genuine neighbours —
// the same check cmd/fewwload -scenario star performs over HTTP.
func TestStarEngineOnGeneratedWorkload(t *testing.T) {
	const n, deg = 150, 24
	inst, err := workload.NewStarGraph(workload.StarGraphConfig{
		Vertices: n, Degree: deg, NoiseEdges: 100, MaxNoise: 8, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewStarEngine(StarEngineConfig{
		N: n, Alpha: 1, Eps: 0.5, Seed: 4, Shards: 3, BatchSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	edges := make([]Edge, len(inst.Updates))
	for i, u := range inst.Updates {
		edges[i] = u.Edge
	}
	if err := eng.ProcessHalfEdges(edges); err != nil {
		t.Fatal(err)
	}

	best, ok := eng.BestFresh()
	if !ok {
		t.Fatal("no star certified on a planted instance")
	}
	// Noise degrees are capped at 8 < every guess above 8, so the top
	// certified rung belongs to the planted center alone (alpha = 1).
	if best.A != inst.HeavyA[0] {
		t.Fatalf("best center %d, want the planted %d", best.A, inst.HeavyA[0])
	}
	if int64(best.Size()) < deg/2 {
		t.Fatalf("star size %d below the (1+eps) guarantee %d", best.Size(), deg/2)
	}
	if err := inst.Verify(best.A, best.Witnesses); err != nil {
		t.Fatal(err)
	}
}

// TestTurnstileStarDetectorOnStarChurnWorkload drives the generator's
// turnstile variant (fewwgen -kind starchurn) through the
// insertion-deletion ladder: churned edges must not survive into the
// answer.
func TestTurnstileStarDetectorOnStarChurnWorkload(t *testing.T) {
	const n, deg = 40, 12
	inst, err := workload.NewStarGraph(workload.StarGraphConfig{
		Vertices: n, Degree: deg, NoiseEdges: 20, MaxNoise: 4, Churn: 25, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: n, Alpha: 2, Seed: 2, ScaleFactor: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The generator's stream is the double cover already; the detector
	// mirrors internally, so feed each undirected edge once (the first
	// orientation of each adjacent pair).
	for i := 0; i < len(inst.Updates); i += 2 {
		u := inst.Updates[i]
		var err error
		if u.Op == stream.Delete {
			err = sd.Delete(u.A, u.B)
		} else {
			err = sd.Insert(u.A, u.B)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
}

func TestTurnstileStarDetectorRejectsOversized(t *testing.T) {
	_, err := NewTurnstileStarDetector(TurnstileStarConfig{
		N: 1 << 20, Alpha: 1, MaxSamplers: 10,
	})
	if err == nil {
		t.Fatal("oversized ladder accepted")
	}
}

func TestStarDetectorEmptyGraph(t *testing.T) {
	sd, err := NewStarDetector(StarConfig{N: 10, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Result(); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
}
