// The sharded engines lift the single-threaded FEwW algorithms to a
// concurrent, batched ingest pipeline.  The paper's one-way communication
// protocols already prove the state is partition-friendly — a Snapshot is a
// complete, self-contained message — and a per-item partition is even
// stronger: every edge of an item lands in exactly one shard, so each shard
// is an ordinary single-threaded instance over a slice of the universe, the
// degree-d promise transfers verbatim, and merging shard outputs is a
// concatenation (Results) plus a max-select (Best).  The hot path is a
// two-phase reserve-then-enqueue pipeline: a producer claims a contiguous
// position range with one atomic add, partitions its batch into per-shard
// sub-batches outside any lock, then admits each sub-batch under a
// per-shard sequence ordered by the reserved base — so concurrent
// producers (a network server's handlers, a gateway's replica fan-out)
// route in parallel and contend only on the brief per-shard appends,
// while each shard still consumes its sub-stream in exact global-position
// order.
//
// Queries are barrier-free by default: each shard worker publishes an
// immutable result view (a core.View inside a publishedView epoch) through
// an atomic pointer, so Best/Results/Result/SpaceWords/Usage merge the
// latest published epochs without touching the ingest path or quiescing
// any worker — a read-heavy workload neither stalls ingest nor serialises
// with other queries.  The Fresh variants keep the strict barrier
// semantics: they quiesce the shards and reflect every element fed before
// the call.
//
// All of that machinery lives once, in the generic runtime (runtime.go);
// this file defines the two flat-engine façades — Engine for
// insertion-only streams, TurnstileEngine for insertion-deletion streams —
// each contributing its boundary validation and per-shard core algorithm.
// StarEngine, the third façade, lives in starengine.go.

package feww

import (
	"errors"
	"fmt"
	"runtime"

	"feww/internal/core"
	"feww/internal/stream"
	"feww/internal/xrand"
)

// ErrClosed is returned by the feed path (ProcessEdge, ProcessEdges,
// Insert, Delete, ProcessUpdates, Flush, Drain) once Close has run.  The
// engine stays fully queryable after Close; only feeding is refused.
var ErrClosed = errors.New("feww: engine used after Close")

// ErrOutOfUniverse is wrapped by the feed path when an element lies
// outside the engine's configured universe — a negative or too-large item
// id, a negative witness, or (turnstile) a witness at or beyond M.  The
// offending batch is rejected whole, before any element reaches a shard,
// so the engine state is untouched.
var ErrOutOfUniverse = errors.New("feww: element outside the engine's universe")

// ErrInvalidOp is wrapped by the turnstile feed path when an update's Op
// is neither Insert nor Delete.  Like ErrOutOfUniverse it rejects the
// batch whole with the engine state untouched.
var ErrInvalidOp = errors.New("feww: update op is neither Insert nor Delete")

const (
	defaultBatchSize  = 512
	defaultQueueDepth = 8
)

// resolveShardParams applies the shared Shards/BatchSize/QueueDepth
// defaults and clamps, mutating the fields into the exact parameters the
// runtime will run with (the form Snapshot persists).
func resolveShardParams(name string, n int64, shards, batchSize, queueDepth *int) error {
	if n < 1 {
		return fmt.Errorf("feww: %s config: N = %d, want >= 1", name, n)
	}
	*shards = shardCount(*shards, n, runtime.GOMAXPROCS(0))
	if *shards < 1 {
		return fmt.Errorf("feww: %s config: Shards = %d, want >= 1", name, *shards)
	}
	if *batchSize <= 0 {
		*batchSize = defaultBatchSize
	}
	if *queueDepth <= 0 {
		*queueDepth = defaultQueueDepth
	}
	return nil
}

// EngineConfig parameterises the sharded insertion-only engine.  The
// embedded Config describes the global problem (full universe size N,
// threshold D, Alpha, master Seed); the engine derives per-shard universes
// and statistically independent per-shard seeds from it.
type EngineConfig struct {
	Config

	// Shards is the number of partitions P, each served by its own
	// goroutine.  0 means runtime.GOMAXPROCS(0).  The count is clamped to N
	// so every shard owns at least one item.
	Shards int
	// BatchSize is the number of edges buffered per shard before hand-off
	// (default 512).  Larger batches amortise queue traffic; results are
	// identical for any batch size.
	BatchSize int
	// QueueDepth is the per-shard queue capacity in batches (default 8);
	// it bounds how far the producer may run ahead of a slow shard.
	QueueDepth int
}

// resolve applies defaults and clamps.
func (cfg *EngineConfig) resolve() error {
	return resolveShardParams("Engine", cfg.N, &cfg.Shards, &cfg.BatchSize, &cfg.QueueDepth)
}

// Engine is a sharded, batched front-end to the insertion-only FEwW
// algorithm.  Items are partitioned across P independent InsertOnly
// instances, each fed in stream order by its own goroutine, so ingest
// scales with cores while every per-shard guarantee of Theorem 3.2 is
// preserved on the shard's sub-universe.  A fixed seed yields identical
// results across executions regardless of scheduling or batch size.
//
// Engine is safe for concurrent use: any number of goroutines may feed
// (ProcessEdge, ProcessEdges, Flush) and query (Result, Results, Best,
// SpaceWords, ...) at once — the use case being a network server whose
// handlers ingest and answer queries concurrently.  Determinism holds
// whenever the edges reach the engine in a fixed order, i.e. with a
// single producer; concurrent producers are interleaved in the order
// their batches' atomic position reservations linearised — an order the
// engine applies consistently across every shard, even though it is not
// known in advance.
//
// Queries default to the published consistency: they merge the shards'
// latest published result epochs without any locking, so they cost
// nanoseconds, scale with readers, and never stall ingest — at the price
// of lagging the accepted stream.  Work handed to the shards becomes
// visible within a short publication throttle (tens of milliseconds; see
// shard.go), but edges parked in a partial producer-side fill buffer are
// not dispatched until the batch fills, Flush is called, or a barrier
// runs — a producer that stops mid-batch must Flush (as the HTTP server
// does per request) or published queries will not see the tail.  Every
// published value was genuinely held by the engine at a batch boundary
// (a prefix of each shard's sub-stream); nothing torn or fabricated is
// ever visible.  The Fresh variants (ResultFresh, ResultsFresh,
// BestFresh, SpaceWordsFresh, UsageFresh) opt into the strict barrier:
// they quiesce the shards and reflect every element fed before the call.
// After Drain or Close the two consistencies coincide.  Queries of either
// kind remain valid after Close.
type Engine struct {
	cfg EngineConfig
	rt  *engineRuntime[Edge]
}

// NewEngine constructs a sharded engine and starts its shard goroutines.
// Shard p owns items {a in [0, N) : a % P == p} as an InsertOnly instance
// over a universe of size ceil((N-p)/P) with a seed derived from cfg.Seed.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertOnly, cfg.Shards)
	for i := range inners {
		inner, err := core.NewInsertOnly(cfg.shardConfig(i, p, seeds.Uint64()))
		if err != nil {
			return nil, fmt.Errorf("feww: Engine shard %d: %w", i, err)
		}
		inners[i] = inner
	}
	return newEngineFromInners(cfg, inners), nil
}

// shardConfig derives shard i's InsertOnly configuration from the
// resolved engine configuration; snapshot restore verifies shard
// snapshots against exactly this derivation.
func (cfg *EngineConfig) shardConfig(i int, p int64, seed uint64) core.InsertOnlyConfig {
	return core.InsertOnlyConfig{
		N:           shardUniverse(cfg.N, p, i),
		D:           cfg.D,
		Alpha:       cfg.Alpha,
		Seed:        seed,
		ScaleFactor: cfg.ScaleFactor,
	}
}

// newEngineFromInners assembles the engine around existing per-shard
// algorithm instances — freshly constructed by NewEngine, or restored
// from a snapshot by RestoreEngine — and starts the shard goroutines.
func newEngineFromInners(cfg EngineConfig, inners []*core.InsertOnly) *Engine {
	algos := make([]shardAlgo[Edge], len(inners))
	for i, inner := range inners {
		algos[i] = insertOnlyAlgo{inner}
	}
	return &Engine{
		cfg: cfg,
		rt: newRuntime("Engine", cfg.BatchSize, cfg.QueueDepth, engineSnapHeaderBytes,
			func(e Edge) int64 { return e.A },
			func(e *Edge, a int64) { e.A = a },
			algos),
	}
}

// Shards returns the number of partitions in use.
func (e *Engine) Shards() int { return len(e.rt.shards) }

// Config returns the resolved configuration the engine runs with:
// defaults applied, shard count clamped.  It is also the configuration a
// snapshot persists.
func (e *Engine) Config() EngineConfig { return e.cfg }

// checkEdge validates one occurrence against the engine's universe.  A
// negative item would make the shard router's modulo negative (an
// out-of-range shard index); an item >= N would silently land in the
// wrong residue class and corrupt the local/global id mapping.  Both are
// rejected here, before anything is buffered.
func (e *Engine) checkEdge(i, total int, a, b int64) error {
	if a < 0 || a >= e.cfg.N {
		return fmt.Errorf("%w: edge %d of %d: item %d not in [0, %d)", ErrOutOfUniverse, i, total, a, e.cfg.N)
	}
	if b < 0 {
		return fmt.Errorf("%w: edge %d of %d: witness %d is negative", ErrOutOfUniverse, i, total, b)
	}
	return nil
}

// ProcessEdge feeds one occurrence: item a in [0, N) arrived with witness
// b.  The edge is buffered and handed to its shard once a full batch
// accumulates (or on Flush/Close/any barrier query).  It returns an error
// wrapping ErrOutOfUniverse for an edge outside the configured universe
// and ErrClosed after Close; in both cases nothing is fed.
func (e *Engine) ProcessEdge(a, b int64) error {
	if err := e.checkEdge(0, 1, a, b); err != nil {
		return err
	}
	return e.rt.f.add(Edge{A: a, B: b})
}

// ProcessEdges feeds a batch of occurrences in order.  The slice is copied
// into per-shard buffers; the caller keeps ownership of edges.  The whole
// batch is validated first and rejected atomically — on error the engine
// state is exactly as before the call.
func (e *Engine) ProcessEdges(edges []Edge) error {
	for i, ed := range edges {
		if err := e.checkEdge(i, len(edges), ed.A, ed.B); err != nil {
			return err
		}
	}
	return e.rt.f.addBatch(edges)
}

// Flush hands every buffered edge to its shard queue without waiting for
// the shards to apply them.  The published views catch up as soon as the
// workers drain the handed-off batches.
func (e *Engine) Flush() error { return e.rt.f.flush() }

// Drain flushes and blocks until every shard has applied everything queued
// so far; afterwards all previously fed edges are reflected in queries of
// both consistencies (the workers republish before acknowledging).
func (e *Engine) Drain() error { return e.rt.f.drain() }

// Close flushes buffered edges, waits for the shards to apply them, and
// stops the shard goroutines.  The engine stays queryable after Close
// (the final published epochs reflect the complete stream); feeding
// further edges returns ErrClosed.  Close is idempotent.
func (e *Engine) Close() { e.rt.f.close() }

// Closed reports whether Close has run — i.e. whether the engine still
// accepts the stream.  Queries remain valid either way; the service
// health probe exposes this as its serving flag.
func (e *Engine) Closed() bool { return e.rt.f.isClosed() }

// Result returns a frequent item with at least ceil(D/Alpha) witnesses
// from the latest published epochs, or ErrNoWitness if no shard has
// published one.  The choice is deterministic: the smallest-id frequent
// item of the lowest-index shard holding one — the same selection
// ResultFresh makes, so the two consistencies agree on quiescent state.
func (e *Engine) Result() (Neighbourhood, error) { return e.rt.result(false) }

// ResultFresh is Result under the strict barrier: it quiesces the shards
// first, so the answer reflects every edge fed before the call.
func (e *Engine) ResultFresh() (Neighbourhood, error) { return e.rt.result(true) }

// Results returns every distinct frequent element in the latest published
// epochs, sorted by global item id.  The per-item partition guarantees no
// item is reported by two shards, so the merge is a pure concatenation.
// The call is barrier-free: it never blocks ingest or other queries.
// The returned neighbourhoods stay valid forever, but their witness
// slices are shared with the published view (and with other callers on
// the same epoch) — treat them as read-only.
func (e *Engine) Results() []Neighbourhood { return e.rt.results(false) }

// ResultsFresh is Results under the strict barrier.
func (e *Engine) ResultsFresh() []Neighbourhood { return e.rt.results(true) }

// Best max-selects the largest neighbourhood across the latest published
// epochs, even if below the ceil(D/Alpha) target; found is false only if
// no shard has published anything.  Ties break toward the lower shard
// index.  Barrier-free; see Results.
func (e *Engine) Best() (Neighbourhood, bool) { return e.rt.best(false) }

// BestFresh is Best under the strict barrier.
func (e *Engine) BestFresh() (Neighbourhood, bool) { return e.rt.best(true) }

// WitnessTarget returns ceil(D/Alpha), the guaranteed output size.
func (e *Engine) WitnessTarget() int64 { return e.rt.witnessTarget() }

// EdgesProcessed returns the number of edges fed to the engine.  The
// counter is maintained on the producer side, so no shard synchronisation
// is needed: polling it mid-stream is free.
func (e *Engine) EdgesProcessed() int64 { return e.rt.f.count.Load() }

// QueueDepths samples the number of elements buffered for each shard:
// both the batches handed to the shard queue and not yet applied, and
// the elements still accumulating in the shard's producer-side fill
// buffer — so light load reads as the handful of edges actually parked,
// not zero.  A persistently large depth (approaching the configured
// QueueDepth × BatchSize) marks the shard as the ingest bottleneck —
// typically an item-skew hot spot.  The numbers are instantaneous: no
// barrier is taken, so they may be stale by the time they are read.
func (e *Engine) QueueDepths() []int { return e.rt.f.queueDepths() }

// ViewEpochs reports each shard's published epoch number — 0 before the
// first publication, then incremented every time the shard's worker
// republishes its view.  Monotonically non-decreasing per shard; a shard
// whose epoch stops advancing under load is applying batches without ever
// idling (publication coalesces under backlog).
func (e *Engine) ViewEpochs() []uint64 { return e.rt.viewEpochs() }

// SpaceWords reports the state size summed over the latest published
// epochs.  Sharding pays the O(n log n) degree-table term once in total
// (each shard tracks only its own items) while the n^(1/Alpha) reservoir
// term is paid per shard on a universe P times smaller.
func (e *Engine) SpaceWords() int { return e.rt.spaceWords(false) }

// SpaceWordsFresh is SpaceWords under the strict barrier.
func (e *Engine) SpaceWordsFresh() int { return e.rt.spaceWords(true) }

// Usage reports SpaceWords and SnapshotSize from the latest published
// epochs — what a periodic stats poll should call, since it costs a few
// atomic loads and never quiesces the shards.
func (e *Engine) Usage() (spaceWords, snapshotBytes int) { return e.rt.usage(false) }

// TurnstileEngineConfig parameterises the sharded insertion-deletion
// engine.  MaxSamplers in the embedded config caps each shard separately.
type TurnstileEngineConfig struct {
	TurnstileConfig

	// Shards, BatchSize, QueueDepth behave exactly as in EngineConfig.
	Shards     int
	BatchSize  int
	QueueDepth int
}

// resolve applies defaults and clamps, mirroring EngineConfig.resolve.
func (cfg *TurnstileEngineConfig) resolve() error {
	return resolveShardParams("TurnstileEngine", cfg.N, &cfg.Shards, &cfg.BatchSize, &cfg.QueueDepth)
}

// TurnstileEngine is the sharded front-end to the insertion-deletion FEwW
// algorithm: the same per-item partition and batched hand-off as Engine,
// with per-shard InsertDelete instances.  The same concurrency,
// determinism, and consistency contracts apply: safe for any number of
// goroutines, deterministic whenever a single producer fixes the update
// order, queries barrier-free against published epochs by default with
// Fresh variants for the strict barrier.
type TurnstileEngine struct {
	cfg TurnstileEngineConfig
	rt  *engineRuntime[Update]
}

// NewTurnstileEngine constructs a sharded turnstile engine and starts its
// shard goroutines.  All samplers of all shards are allocated up front, as
// the underlying algorithm requires.
func NewTurnstileEngine(cfg TurnstileEngineConfig) (*TurnstileEngine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertDelete, cfg.Shards)
	for i := range inners {
		inner, err := core.NewInsertDelete(cfg.shardConfig(i, p, seeds.Uint64()))
		if err != nil {
			return nil, fmt.Errorf("feww: TurnstileEngine shard %d: %w", i, err)
		}
		inners[i] = inner
	}
	return newTurnstileFromInners(cfg, inners), nil
}

// shardConfig derives shard i's InsertDelete configuration; see
// (*EngineConfig).shardConfig.
func (cfg *TurnstileEngineConfig) shardConfig(i int, p int64, seed uint64) core.InsertDeleteConfig {
	return core.InsertDeleteConfig{
		N:           shardUniverse(cfg.N, p, i),
		M:           cfg.M,
		D:           cfg.D,
		Alpha:       cfg.Alpha,
		Seed:        seed,
		ScaleFactor: cfg.ScaleFactor,
		MaxSamplers: cfg.MaxSamplers,
	}
}

// newTurnstileFromInners assembles the engine around existing per-shard
// instances and starts the shard goroutines.
func newTurnstileFromInners(cfg TurnstileEngineConfig, inners []*core.InsertDelete) *TurnstileEngine {
	algos := make([]shardAlgo[Update], len(inners))
	for i, inner := range inners {
		algos[i] = turnstileAlgo{inner}
	}
	return &TurnstileEngine{
		cfg: cfg,
		rt: newRuntime("TurnstileEngine", cfg.BatchSize, cfg.QueueDepth, turnstileSnapHeaderBytes,
			func(u Update) int64 { return u.A },
			func(u *Update, a int64) { u.A = a },
			algos),
	}
}

// Shards returns the number of partitions in use.
func (e *TurnstileEngine) Shards() int { return len(e.rt.shards) }

// Config returns the resolved configuration the engine runs with; see
// (*Engine).Config.
func (e *TurnstileEngine) Config() TurnstileEngineConfig { return e.cfg }

// checkUpdate validates one signed update against the engine's universe
// and the turnstile op set; see (*Engine).checkEdge for why out-of-range
// items must be stopped before the shard router.
func (e *TurnstileEngine) checkUpdate(i, total int, u Update) error {
	if u.Op != stream.Insert && u.Op != stream.Delete {
		return fmt.Errorf("%w: update %d of %d: op %d", ErrInvalidOp, i, total, u.Op)
	}
	if u.A < 0 || u.A >= e.cfg.N {
		return fmt.Errorf("%w: update %d of %d: item %d not in [0, %d)", ErrOutOfUniverse, i, total, u.A, e.cfg.N)
	}
	if u.B < 0 || u.B >= e.cfg.M {
		return fmt.Errorf("%w: update %d of %d: witness %d not in [0, %d)", ErrOutOfUniverse, i, total, u.B, e.cfg.M)
	}
	return nil
}

// Insert feeds the insertion of edge (a, b).  It returns an error wrapping
// ErrOutOfUniverse for an edge outside [0, N) x [0, M) and ErrClosed after
// Close; in both cases nothing is fed.
func (e *TurnstileEngine) Insert(a, b int64) error {
	u := Update{Edge: Edge{A: a, B: b}, Op: stream.Insert}
	if err := e.checkUpdate(0, 1, u); err != nil {
		return err
	}
	return e.rt.f.add(u)
}

// Delete feeds the deletion of edge (a, b); the edge must currently exist
// (simple-graph turnstile promise).  Errors as Insert.
func (e *TurnstileEngine) Delete(a, b int64) error {
	u := Update{Edge: Edge{A: a, B: b}, Op: stream.Delete}
	if err := e.checkUpdate(0, 1, u); err != nil {
		return err
	}
	return e.rt.f.add(u)
}

// ProcessUpdates feeds a batch of signed updates in order.  The slice is
// copied into per-shard buffers; the caller keeps ownership of ups.  The
// whole batch is validated first and rejected atomically on error.
func (e *TurnstileEngine) ProcessUpdates(ups []Update) error {
	for i, u := range ups {
		if err := e.checkUpdate(i, len(ups), u); err != nil {
			return err
		}
	}
	return e.rt.f.addBatch(ups)
}

// Flush hands every buffered update to its shard queue without waiting.
func (e *TurnstileEngine) Flush() error { return e.rt.f.flush() }

// Drain flushes and blocks until every shard has applied everything queued.
func (e *TurnstileEngine) Drain() error { return e.rt.f.drain() }

// Close flushes, waits for the shards to drain, and stops them.  The
// engine stays queryable after Close; feeding further updates returns
// ErrClosed.  Close is idempotent.
func (e *TurnstileEngine) Close() { e.rt.f.close() }

// Closed reports whether Close has run; see (*Engine).Closed.
func (e *TurnstileEngine) Closed() bool { return e.rt.f.isClosed() }

// Result returns a frequent item of the final graph with at least
// ceil(D/Alpha) live witnesses from the latest published epochs, or
// ErrNoWitness if no shard has published one.  Shards are consulted in
// index order.  Barrier-free; see (*Engine).Results for the contract.
func (e *TurnstileEngine) Result() (Neighbourhood, error) { return e.rt.result(false) }

// ResultFresh is Result under the strict barrier: it quiesces the shards
// first, so the answer reflects every update fed before the call.
func (e *TurnstileEngine) ResultFresh() (Neighbourhood, error) { return e.rt.result(true) }

// WitnessTarget returns ceil(D/Alpha).
func (e *TurnstileEngine) WitnessTarget() int64 { return e.rt.witnessTarget() }

// UpdatesProcessed returns the number of updates fed to the engine.  The
// counter is maintained on the producer side, so polling it is free.
func (e *TurnstileEngine) UpdatesProcessed() int64 { return e.rt.f.count.Load() }

// QueueDepths samples the number of elements buffered per shard (queued
// batches plus the fill buffer); see (*Engine).QueueDepths.
func (e *TurnstileEngine) QueueDepths() []int { return e.rt.f.queueDepths() }

// ViewEpochs reports each shard's published epoch number; see
// (*Engine).ViewEpochs.
func (e *TurnstileEngine) ViewEpochs() []uint64 { return e.rt.viewEpochs() }

// SpaceWords reports the state size summed over the latest published
// epochs; barrier-free.
func (e *TurnstileEngine) SpaceWords() int { return e.rt.spaceWords(false) }

// SpaceWordsFresh is SpaceWords under the strict barrier.
func (e *TurnstileEngine) SpaceWordsFresh() int { return e.rt.spaceWords(true) }

// Usage reports SpaceWords and SnapshotSize from the latest published
// epochs; see (*Engine).Usage.
func (e *TurnstileEngine) Usage() (spaceWords, snapshotBytes int) { return e.rt.usage(false) }
