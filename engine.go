// The sharded engine lifts the single-threaded FEwW algorithms to a
// concurrent, batched ingest pipeline.  The paper's one-way communication
// protocols already prove the state is partition-friendly — a Snapshot is a
// complete, self-contained message — and a per-item partition is even
// stronger: every edge of an item lands in exactly one shard, so each shard
// is an ordinary single-threaded instance over a slice of the universe, the
// degree-d promise transfers verbatim, and merging shard outputs is a
// concatenation (Results) plus a max-select (Best).  The hot path appends
// edges to per-shard buffers and hands full batches to single-consumer
// FIFO queues; a single producer-side mutex (one uncontended acquisition
// per call, amortised to nothing on the batch path) makes the whole
// front-end safe for concurrent producers and queriers, which is what a
// network server on top of the engine needs.

package feww

import (
	"fmt"
	"runtime"
	"sort"

	"feww/internal/core"
	"feww/internal/stream"
	"feww/internal/xrand"
)

const (
	defaultBatchSize  = 512
	defaultQueueDepth = 8
)

// EngineConfig parameterises the sharded insertion-only engine.  The
// embedded Config describes the global problem (full universe size N,
// threshold D, Alpha, master Seed); the engine derives per-shard universes
// and statistically independent per-shard seeds from it.
type EngineConfig struct {
	Config

	// Shards is the number of partitions P, each served by its own
	// goroutine.  0 means runtime.GOMAXPROCS(0).  The count is clamped to N
	// so every shard owns at least one item.
	Shards int
	// BatchSize is the number of edges buffered per shard before hand-off
	// (default 512).  Larger batches amortise queue traffic; results are
	// identical for any batch size.
	BatchSize int
	// QueueDepth is the per-shard queue capacity in batches (default 8);
	// it bounds how far the producer may run ahead of a slow shard.
	QueueDepth int
}

// Engine is a sharded, batched front-end to the insertion-only FEwW
// algorithm.  Items are partitioned across P independent InsertOnly
// instances, each fed in stream order by its own goroutine, so ingest
// scales with cores while every per-shard guarantee of Theorem 3.2 is
// preserved on the shard's sub-universe.  A fixed seed yields identical
// results across executions regardless of scheduling or batch size.
//
// Engine is safe for concurrent use: any number of goroutines may feed
// (ProcessEdge, ProcessEdges, Flush) and query (Result, Results, Best,
// SpaceWords, ...) at once — the use case being a network server whose
// handlers ingest and answer queries concurrently.  Determinism holds
// whenever the edges reach the engine in a fixed order, i.e. with a
// single producer; concurrent producers get whatever interleaving they
// win the internal lock in.  Queries drain all queued work first and
// remain valid after Close.
type Engine struct {
	cfg    EngineConfig
	shards []*shard
	f      *fanout[Edge]
}

// resolve applies defaults and clamps; it mutates the config into the
// exact parameters the engine will run with (the form Snapshot persists).
func (cfg *EngineConfig) resolve() error {
	if cfg.N < 1 {
		return fmt.Errorf("feww: Engine config: N = %d, want >= 1", cfg.N)
	}
	cfg.Shards = shardCount(cfg.Shards, cfg.N, runtime.GOMAXPROCS(0))
	if cfg.Shards < 1 {
		return fmt.Errorf("feww: Engine config: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	return nil
}

// NewEngine constructs a sharded engine and starts its shard goroutines.
// Shard p owns items {a in [0, N) : a % P == p} as an InsertOnly instance
// over a universe of size ceil((N-p)/P) with a seed derived from cfg.Seed.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertOnly, cfg.Shards)
	for i := range inners {
		inner, err := core.NewInsertOnly(core.InsertOnlyConfig{
			N:           (cfg.N - int64(i) + p - 1) / p,
			D:           cfg.D,
			Alpha:       cfg.Alpha,
			Seed:        seeds.Uint64(),
			ScaleFactor: cfg.ScaleFactor,
		})
		if err != nil {
			return nil, fmt.Errorf("feww: Engine shard %d: %w", i, err)
		}
		inners[i] = inner
	}
	return newEngineFromInners(cfg, inners), nil
}

// newEngineFromInners assembles the engine around existing per-shard
// algorithm instances — freshly constructed by NewEngine, or restored
// from a snapshot by RestoreEngine — and starts the shard goroutines.
func newEngineFromInners(cfg EngineConfig, inners []*core.InsertOnly) *Engine {
	p := int64(cfg.Shards)
	shards := make([]*shard, cfg.Shards)
	apply := make([]func([]Edge), cfg.Shards)
	for i, inner := range inners {
		sh := &shard{idx: i, stride: p, inner: inner}
		shards[i] = sh
		// The worker remaps the batch to local ids in place (it owns the
		// buffer) and feeds the batched path of the inner algorithm.
		apply[i] = func(batch []stream.Edge) {
			for j := range batch {
				batch[j].A = sh.local(batch[j].A)
			}
			sh.inner.ProcessEdges(batch)
		}
	}
	return &Engine{
		cfg:    cfg,
		shards: shards,
		f: newFanout("Engine", cfg.BatchSize, cfg.QueueDepth,
			func(e Edge) int64 { return e.A }, apply),
	}
}

// Shards returns the number of partitions in use.
func (e *Engine) Shards() int { return len(e.shards) }

// Config returns the resolved configuration the engine runs with:
// defaults applied, shard count clamped.  It is also the configuration a
// snapshot persists.
func (e *Engine) Config() EngineConfig { return e.cfg }

// ProcessEdge feeds one occurrence: item a in [0, N) arrived with witness
// b.  The edge is buffered and handed to its shard once a full batch
// accumulates (or on Flush/Close/any query).
func (e *Engine) ProcessEdge(a, b int64) { e.f.add(Edge{A: a, B: b}) }

// ProcessEdges feeds a batch of occurrences in order.  The slice is copied
// into per-shard buffers; the caller keeps ownership of edges.
func (e *Engine) ProcessEdges(edges []Edge) { e.f.addBatch(edges) }

// Flush hands every buffered edge to its shard queue without waiting for
// the shards to apply them.
func (e *Engine) Flush() { e.f.flush() }

// Drain flushes and blocks until every shard has applied everything queued
// so far; afterwards all previously fed edges are reflected in queries.
func (e *Engine) Drain() { e.f.drain() }

// Close flushes buffered edges, waits for the shards to apply them, and
// stops the shard goroutines.  The engine stays queryable after Close;
// feeding further edges panics.  Close is idempotent.
func (e *Engine) Close() { e.f.close() }

// Result returns a frequent item with at least ceil(D/Alpha) witnesses, or
// ErrNoWitness if no shard found one.  Shards are consulted in index order,
// so the choice is deterministic for a fixed seed.
func (e *Engine) Result() (Neighbourhood, error) {
	nb, err := Neighbourhood{}, error(ErrNoWitness)
	e.f.query(func() {
		for _, sh := range e.shards {
			if got, gotErr := sh.inner.Result(); gotErr == nil {
				got.A = sh.global(got.A)
				nb, err = got, nil
				return
			}
		}
	})
	return nb, err
}

// Results returns every distinct frequent element found across all shards,
// sorted by global item id.  The per-item partition guarantees no item is
// reported by two shards, so the merge is a pure concatenation; witnesses
// are returned exactly as the owning shard collected them.
func (e *Engine) Results() []Neighbourhood {
	var out []Neighbourhood
	e.f.query(func() {
		for _, sh := range e.shards {
			for _, nb := range sh.inner.Results() {
				nb.A = sh.global(nb.A)
				out = append(out, nb)
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].A < out[j].A })
	return out
}

// Best max-selects the largest neighbourhood collected by any shard, even
// if below the ceil(D/Alpha) target; found is false only if nothing was
// collected at all.  Ties break toward the lower shard index.
func (e *Engine) Best() (Neighbourhood, bool) {
	var best Neighbourhood
	found := false
	e.f.query(func() {
		for _, sh := range e.shards {
			if nb, ok := sh.inner.Best(); ok && (!found || nb.Size() > best.Size()) {
				nb.A = sh.global(nb.A)
				best, found = nb, true
			}
		}
	})
	return best, found
}

// WitnessTarget returns ceil(D/Alpha), the guaranteed output size.
func (e *Engine) WitnessTarget() int64 { return e.shards[0].inner.WitnessTarget() }

// EdgesProcessed returns the number of edges fed to the engine.  The
// counter is maintained on the producer side, so no shard synchronisation
// is needed: polling it mid-stream is free.
func (e *Engine) EdgesProcessed() int64 { return e.f.count.Load() }

// QueueDepths samples the number of batches waiting in each shard queue.
// A persistently full queue (== the configured QueueDepth) marks the
// shard as the ingest bottleneck — typically an item-skew hot spot.  The
// numbers are instantaneous: no barrier is taken, so they may be stale by
// the time they are read.
func (e *Engine) QueueDepths() []int { return e.f.queueDepths() }

// SpaceWords reports the live state summed across all shards.  Sharding
// pays the O(n log n) degree-table term once in total (each shard tracks
// only its own items) while the n^(1/Alpha) reservoir term is paid per
// shard on a universe P times smaller.
func (e *Engine) SpaceWords() int {
	words := 0
	e.f.query(func() {
		for _, sh := range e.shards {
			words += sh.inner.SpaceWords()
		}
	})
	return words
}

// TurnstileEngineConfig parameterises the sharded insertion-deletion
// engine.  MaxSamplers in the embedded config caps each shard separately.
type TurnstileEngineConfig struct {
	TurnstileConfig

	// Shards, BatchSize, QueueDepth behave exactly as in EngineConfig.
	Shards     int
	BatchSize  int
	QueueDepth int
}

// TurnstileEngine is the sharded front-end to the insertion-deletion FEwW
// algorithm: the same per-item partition and batched hand-off as Engine,
// with per-shard InsertDelete instances.  The same concurrency and
// determinism guarantees apply: safe for any number of goroutines, and
// deterministic whenever a single producer fixes the update order.
type TurnstileEngine struct {
	cfg    TurnstileEngineConfig
	shards []*tShard
	f      *fanout[Update]
}

// resolve applies defaults and clamps, mirroring EngineConfig.resolve.
func (cfg *TurnstileEngineConfig) resolve() error {
	if cfg.N < 1 {
		return fmt.Errorf("feww: TurnstileEngine config: N = %d, want >= 1", cfg.N)
	}
	cfg.Shards = shardCount(cfg.Shards, cfg.N, runtime.GOMAXPROCS(0))
	if cfg.Shards < 1 {
		return fmt.Errorf("feww: TurnstileEngine config: Shards = %d, want >= 1", cfg.Shards)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	return nil
}

// NewTurnstileEngine constructs a sharded turnstile engine and starts its
// shard goroutines.  All samplers of all shards are allocated up front, as
// the underlying algorithm requires.
func NewTurnstileEngine(cfg TurnstileEngineConfig) (*TurnstileEngine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	inners := make([]*core.InsertDelete, cfg.Shards)
	for i := range inners {
		inner, err := core.NewInsertDelete(core.InsertDeleteConfig{
			N:           (cfg.N - int64(i) + p - 1) / p,
			M:           cfg.M,
			D:           cfg.D,
			Alpha:       cfg.Alpha,
			Seed:        seeds.Uint64(),
			ScaleFactor: cfg.ScaleFactor,
			MaxSamplers: cfg.MaxSamplers,
		})
		if err != nil {
			return nil, fmt.Errorf("feww: TurnstileEngine shard %d: %w", i, err)
		}
		inners[i] = inner
	}
	return newTurnstileFromInners(cfg, inners), nil
}

// newTurnstileFromInners assembles the engine around existing per-shard
// instances and starts the shard goroutines.
func newTurnstileFromInners(cfg TurnstileEngineConfig, inners []*core.InsertDelete) *TurnstileEngine {
	p := int64(cfg.Shards)
	shards := make([]*tShard, cfg.Shards)
	apply := make([]func([]Update), cfg.Shards)
	for i, inner := range inners {
		sh := &tShard{idx: i, stride: p, inner: inner}
		shards[i] = sh
		apply[i] = func(batch []stream.Update) {
			for j := range batch {
				batch[j].A = sh.local(batch[j].A)
			}
			sh.inner.ApplyUpdates(batch)
		}
	}
	return &TurnstileEngine{
		cfg:    cfg,
		shards: shards,
		f: newFanout("TurnstileEngine", cfg.BatchSize, cfg.QueueDepth,
			func(u Update) int64 { return u.A }, apply),
	}
}

// Shards returns the number of partitions in use.
func (e *TurnstileEngine) Shards() int { return len(e.shards) }

// Config returns the resolved configuration the engine runs with; see
// (*Engine).Config.
func (e *TurnstileEngine) Config() TurnstileEngineConfig { return e.cfg }

// Insert feeds the insertion of edge (a, b).
func (e *TurnstileEngine) Insert(a, b int64) {
	e.f.add(Update{Edge: Edge{A: a, B: b}, Op: stream.Insert})
}

// Delete feeds the deletion of edge (a, b); the edge must currently exist
// (simple-graph turnstile promise).
func (e *TurnstileEngine) Delete(a, b int64) {
	e.f.add(Update{Edge: Edge{A: a, B: b}, Op: stream.Delete})
}

// ProcessUpdates feeds a batch of signed updates in order.  The slice is
// copied into per-shard buffers; the caller keeps ownership of ups.
func (e *TurnstileEngine) ProcessUpdates(ups []Update) { e.f.addBatch(ups) }

// Flush hands every buffered update to its shard queue without waiting.
func (e *TurnstileEngine) Flush() { e.f.flush() }

// Drain flushes and blocks until every shard has applied everything queued.
func (e *TurnstileEngine) Drain() { e.f.drain() }

// Close flushes, waits for the shards to drain, and stops them.  The
// engine stays queryable after Close; feeding further updates panics.
func (e *TurnstileEngine) Close() { e.f.close() }

// Result returns a frequent item of the final graph with at least
// ceil(D/Alpha) live witnesses, or ErrNoWitness if no shard found one.
// Shards are consulted in index order.
func (e *TurnstileEngine) Result() (Neighbourhood, error) {
	nb, err := Neighbourhood{}, error(ErrNoWitness)
	e.f.query(func() {
		for _, sh := range e.shards {
			if got, gotErr := sh.inner.Result(); gotErr == nil {
				got.A = sh.global(got.A)
				nb, err = got, nil
				return
			}
		}
	})
	return nb, err
}

// WitnessTarget returns ceil(D/Alpha).
func (e *TurnstileEngine) WitnessTarget() int64 { return e.shards[0].inner.WitnessTarget() }

// UpdatesProcessed returns the number of updates fed to the engine.  The
// counter is maintained on the producer side, so polling it is free.
func (e *TurnstileEngine) UpdatesProcessed() int64 { return e.f.count.Load() }

// QueueDepths samples the number of batches waiting in each shard queue;
// see (*Engine).QueueDepths.
func (e *TurnstileEngine) QueueDepths() []int { return e.f.queueDepths() }

// SpaceWords reports the live state summed across all shards.
func (e *TurnstileEngine) SpaceWords() int {
	words := 0
	e.f.query(func() {
		for _, sh := range e.shards {
			words += sh.inner.SpaceWords()
		}
	})
	return words
}
