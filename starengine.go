// StarEngine is the third façade over the generic sharded runtime
// (runtime.go): Star Detection (paper Problem 2, Lemma 3.3) served at
// sharded-engine speed.  Where the single-threaded StarDetector in
// star.go runs one guess ladder over the whole graph, StarEngine
// partitions the ladder by (star center, rung): each shard owns a residue
// class of the vertex universe and holds the complete (1+eps) guess
// ladder over its slice (a core.StarShard — one InsertOnly instance per
// rung).  Every directed half-edge of a center lands in the one shard
// owning it, so each rung's per-shard instance is an ordinary
// insertion-only FEwW run and the Lemma 3.3 guarantee transfers verbatim;
// the cross-shard merge is a max over rung indices with the flat engines'
// deterministic tie-breaks below it.
//
// The double cover is materialised in the stream: StarEngine consumes
// directed half-edges (a, b) — "center candidate a gained neighbour b" —
// and an undirected edge {u, v} must be fed as both (u, v) and (v, u),
// exactly once each.  ProcessEdge does that for full-universe engines;
// stream producers (cmd/fewwgen -kind star) write both orientations so a
// cluster gateway can range-route the half-edges like any other stream,
// each to the member owning its center.  N is therefore the engine's
// center slice (the full vertex set on a single node, one contiguous
// range on a cluster member) while M is always the global vertex count:
// witnesses stay global vertex ids, and the guess ladder is derived from
// M, so rung indices are comparable across shards, engines and cluster
// members no matter how the centers are partitioned.

package feww

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"feww/internal/core"
	"feww/internal/xrand"
)

// StarEngineConfig parameterises the sharded star-detection engine.
type StarEngineConfig struct {
	// N is the number of star-center vertices this engine owns: the full
	// graph on a single node, or the length of this member's contiguous
	// vertex range in a cluster.  Half-edge centers must lie in [0, N).
	N int64
	// M is the total number of graph vertices — the witness universe and
	// the ceiling of the (1+eps) guess ladder.  0 means N (the single-node
	// case).  Cluster members of one graph share M while splitting N.
	M int64
	// Alpha is the per-guess FEwW approximation factor (0 means 2); the
	// final guarantee is a ((1+Eps) * Alpha)-approximation of the maximum
	// degree (Lemma 3.3, Corollary 3.4).
	Alpha int
	// Eps controls the ladder density; 0 means 0.5.  It must be finite
	// and at least core.MinStarEps (1e-4): the ladder has
	// ~log_{1+Eps}(M) rungs, so smaller values make its derivation and
	// memory unbounded for no measurable ratio gain.
	Eps float64
	// Seed makes the run reproducible; per-shard and per-rung seeds are
	// derived from it.
	Seed uint64
	// ScaleFactor scales every rung's reservoir (see Config.ScaleFactor).
	ScaleFactor float64

	// Shards, BatchSize, QueueDepth behave exactly as in EngineConfig.
	Shards     int
	BatchSize  int
	QueueDepth int
}

// resolve applies defaults and clamps; the resolved form is what
// Snapshot persists.
func (cfg *StarEngineConfig) resolve() error {
	if cfg.M == 0 {
		cfg.M = cfg.N
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 2
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.5
	}
	if cfg.Alpha < 1 {
		return fmt.Errorf("feww: StarEngine config: Alpha = %d, want >= 1", cfg.Alpha)
	}
	if cfg.Eps < 0 {
		return fmt.Errorf("feww: StarEngine config: Eps = %f, want > 0", cfg.Eps)
	}
	if cfg.N < 1 || cfg.M < cfg.N {
		return fmt.Errorf("feww: StarEngine config: N = %d with M = %d, want 1 <= N <= M", cfg.N, cfg.M)
	}
	return resolveShardParams("StarEngine", cfg.N, &cfg.Shards, &cfg.BatchSize, &cfg.QueueDepth)
}

// shardConfig derives shard i's StarShard configuration; snapshot restore
// verifies shard snapshots against exactly this derivation.
func (cfg *StarEngineConfig) shardConfig(i int, p int64, guesses []int64, seed uint64) core.StarShardConfig {
	return core.StarShardConfig{
		N:           shardUniverse(cfg.N, p, i),
		Guesses:     guesses,
		Alpha:       cfg.Alpha,
		Seed:        seed,
		ScaleFactor: cfg.ScaleFactor,
	}
}

// StarResult is a star answer: a center vertex with a set of its genuine
// neighbours, certified by the highest successful rung of the guess
// ladder.  If the graph's maximum degree is Delta, the engine guarantees
// (w.h.p., per rung) Size >= Delta / ((1+Eps) * Alpha).
type StarResult struct {
	Neighbourhood
	// Rung is the ladder index of the certifying guess, Guess its degree
	// guess Delta' = ceil((1+Eps)^Rung), and Target = ceil(Guess/Alpha)
	// the certified neighbourhood size.
	Rung   int
	Guess  int64
	Target int64
}

// StarResults is every center certified at the winning (highest
// successful) rung, sorted by global vertex id — the star analogue of the
// flat engines' Results.  Rung is -1 with no neighbourhoods on an engine
// that has not certified anything yet.
type StarResults struct {
	Rung           int
	Guess          int64
	Target         int64
	Neighbourhoods []Neighbourhood
}

// StarEngine is the sharded, batched star-detection engine.  It carries
// the runtime's full contract — safe for any number of concurrent
// producers and queriers, deterministic under a fixed seed and single
// producer, barrier-free published queries with Fresh variants, exact
// Snapshot/Restore — inherited from the same implementation Engine and
// TurnstileEngine run on.
type StarEngine struct {
	cfg     StarEngineConfig
	guesses []int64
	rt      *engineRuntime[Edge]
}

// NewStarEngine constructs a sharded star engine and starts its shard
// goroutines.  Shard p owns centers {a in [0, N) : a % P == p}, each as a
// full guess ladder over a universe of size ceil((N-p)/P).
func NewStarEngine(cfg StarEngineConfig) (*StarEngine, error) {
	if err := cfg.resolve(); err != nil {
		return nil, err
	}
	guesses, err := core.StarGuesses(cfg.M, cfg.Eps)
	if err != nil {
		return nil, fmt.Errorf("feww: StarEngine config: %w", err)
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	shards := make([]*core.StarShard, cfg.Shards)
	for i := range shards {
		ss, err := core.NewStarShard(cfg.shardConfig(i, p, guesses, seeds.Uint64()))
		if err != nil {
			return nil, fmt.Errorf("feww: StarEngine shard %d: %w", i, err)
		}
		shards[i] = ss
	}
	return newStarFromShards(cfg, guesses, shards), nil
}

// newStarFromShards assembles the engine around existing per-shard
// ladders (fresh or restored) and starts the shard goroutines.
func newStarFromShards(cfg StarEngineConfig, guesses []int64, shards []*core.StarShard) *StarEngine {
	algos := make([]shardAlgo[Edge], len(shards))
	for i, ss := range shards {
		algos[i] = starAlgo{ss}
	}
	return &StarEngine{
		cfg:     cfg,
		guesses: guesses,
		rt: newRuntime("StarEngine", cfg.BatchSize, cfg.QueueDepth, starSnapHeaderBytes,
			func(e Edge) int64 { return e.A },
			func(e *Edge, a int64) { e.A = a },
			algos),
	}
}

// Shards returns the number of partitions in use.
func (e *StarEngine) Shards() int { return len(e.rt.shards) }

// Config returns the resolved configuration the engine runs with; it is
// also the configuration a snapshot persists.
func (e *StarEngine) Config() StarEngineConfig { return e.cfg }

// Guesses returns the (1+Eps) ladder, identical on every shard.
func (e *StarEngine) Guesses() []int64 { return e.guesses }

// checkHalfEdge validates one directed half-edge: the center must lie in
// this engine's slice [0, N), the neighbour in the global vertex set
// [0, M).
func (e *StarEngine) checkHalfEdge(i, total int, a, b int64) error {
	if a < 0 || a >= e.cfg.N {
		return fmt.Errorf("%w: half-edge %d of %d: center %d not in [0, %d)", ErrOutOfUniverse, i, total, a, e.cfg.N)
	}
	if b < 0 || b >= e.cfg.M {
		return fmt.Errorf("%w: half-edge %d of %d: neighbour %d not in [0, %d)", ErrOutOfUniverse, i, total, b, e.cfg.M)
	}
	return nil
}

// ProcessHalfEdge feeds one directed half-edge: center a in [0, N) gained
// neighbour b in [0, M).  Undirected inputs must arrive as both
// orientations exactly once each (the double cover of Lemma 3.3); use
// ProcessEdge to feed both at once on a full-universe engine.  Errors as
// (*Engine).ProcessEdge.
func (e *StarEngine) ProcessHalfEdge(a, b int64) error {
	if err := e.checkHalfEdge(0, 1, a, b); err != nil {
		return err
	}
	return e.rt.f.add(Edge{A: a, B: b})
}

// ProcessHalfEdges feeds a batch of directed half-edges in order.  The
// slice is copied into per-shard buffers; the caller keeps ownership.
// The whole batch is validated first and rejected atomically.
func (e *StarEngine) ProcessHalfEdges(edges []Edge) error {
	for i, ed := range edges {
		if err := e.checkHalfEdge(i, len(edges), ed.A, ed.B); err != nil {
			return err
		}
	}
	return e.rt.f.addBatch(edges)
}

// ProcessEdge feeds one undirected edge {u, v} by feeding both
// orientations — the convenience entry point for a full-universe engine
// (N == M).  On a range member (N < M) a neighbour outside the member's
// center slice cannot be mirrored locally and the call errors; feed
// pre-mirrored half-edges instead, as the cluster gateway does.
func (e *StarEngine) ProcessEdge(u, v int64) error {
	if err := e.checkHalfEdge(0, 2, u, v); err != nil {
		return err
	}
	if err := e.checkHalfEdge(1, 2, v, u); err != nil {
		return err
	}
	return e.rt.f.addBatch([]Edge{{A: u, B: v}, {A: v, B: u}})
}

// Flush hands every buffered half-edge to its shard queue without
// waiting; see (*Engine).Flush.
func (e *StarEngine) Flush() error { return e.rt.f.flush() }

// Drain flushes and blocks until every shard has applied everything
// queued so far; afterwards published and fresh queries coincide.
func (e *StarEngine) Drain() error { return e.rt.f.drain() }

// Close flushes, waits for the shards to drain, and stops them.  The
// engine stays queryable; feeding returns ErrClosed.  Idempotent.
func (e *StarEngine) Close() { e.rt.f.close() }

// Closed reports whether Close has run; see (*Engine).Closed.
func (e *StarEngine) Closed() bool { return e.rt.f.isClosed() }

// starBetter reports whether (rung, size, vertex) beats the current best
// under the star merge order: higher rung first, then larger
// neighbourhood, then the smaller global vertex id.  The order is total
// and associative, so merging over shards, then over cluster members,
// gives the same winner as merging over everything at once — the property
// the cluster tier's byte-identity rests on.
func starBetter(rung int, nb Neighbourhood, bestRung int, best Neighbourhood) bool {
	if rung != bestRung {
		return rung > bestRung
	}
	if nb.Size() != best.Size() {
		return nb.Size() > best.Size()
	}
	return nb.A < best.A
}

// best merges the shard views under the star order.
func (e *StarEngine) best(fresh bool) (StarResult, bool) {
	var out StarResult
	found := false
	e.rt.forEachView(fresh, shardAlgo[Edge].QueryBest, func(sh *rtShard[Edge], v *core.View) {
		if !v.BestOK {
			return
		}
		nb := v.Best
		nb.A = sh.global(nb.A)
		if !found || starBetter(v.Rung, nb, out.Rung, out.Neighbourhood) {
			out = StarResult{Neighbourhood: nb, Rung: v.Rung, Guess: v.Guess, Target: v.Target}
			found = true
		}
	})
	return out, found
}

// Best returns the best star found so far — the smallest-id center
// certified at the highest successful rung — from the latest published
// epochs; found is false only if no shard has certified anything.
// Barrier-free; see (*Engine).Results for the consistency contract.
func (e *StarEngine) Best() (StarResult, bool) { return e.best(false) }

// BestFresh is Best under the strict barrier: it quiesces the shards
// first, so the answer reflects every half-edge fed before the call.
func (e *StarEngine) BestFresh() (StarResult, bool) { return e.best(true) }

// results merges the shard views: the winning rung is the maximum across
// shards, and every shard at that rung contributes its certified centers.
func (e *StarEngine) resultsAt(fresh bool) StarResults {
	out := StarResults{Rung: -1}
	type shardView struct {
		sh *rtShard[Edge]
		v  core.View
	}
	var winners []shardView
	e.rt.forEachView(fresh, shardAlgo[Edge].QueryResults, func(sh *rtShard[Edge], v *core.View) {
		if v.Rung < 0 {
			return
		}
		if v.Rung > out.Rung {
			out.Rung, out.Guess, out.Target = v.Rung, v.Guess, v.Target
			winners = winners[:0]
		}
		if v.Rung == out.Rung {
			winners = append(winners, shardView{sh, *v})
		}
	})
	for _, w := range winners {
		for _, nb := range w.v.Results {
			nb.A = w.sh.global(nb.A)
			out.Neighbourhoods = append(out.Neighbourhoods, nb)
		}
	}
	sort.Slice(out.Neighbourhoods, func(i, j int) bool {
		return out.Neighbourhoods[i].A < out.Neighbourhoods[j].A
	})
	return out
}

// Results returns every center certified at the winning rung, sorted by
// global vertex id, from the latest published epochs.  Barrier-free; the
// witness slices are shared with the published views — treat them as
// read-only.
func (e *StarEngine) Results() StarResults { return e.resultsAt(false) }

// ResultsFresh is Results under the strict barrier.
func (e *StarEngine) ResultsFresh() StarResults { return e.resultsAt(true) }

// WitnessTarget returns the topmost rung's target — the static ceiling
// ceil(maxGuess/Alpha) on any answer's certified size, identical on
// every member of a cluster over the same graph (the coherence value the
// health probe reports).  The target actually certified by an answer is
// its StarResult.Target.
func (e *StarEngine) WitnessTarget() int64 { return e.rt.witnessTarget() }

// EdgesProcessed returns the number of directed half-edges fed to the
// engine (two per undirected input edge).
func (e *StarEngine) EdgesProcessed() int64 { return e.rt.f.count.Load() }

// QueueDepths samples the number of elements buffered per shard (queued
// batches plus the fill buffer); see (*Engine).QueueDepths.
func (e *StarEngine) QueueDepths() []int { return e.rt.f.queueDepths() }

// ViewEpochs reports each shard's published epoch number; see
// (*Engine).ViewEpochs.
func (e *StarEngine) ViewEpochs() []uint64 { return e.rt.viewEpochs() }

// SpaceWords reports the state size summed over the latest published
// epochs — every rung of every shard; barrier-free.
func (e *StarEngine) SpaceWords() int { return e.rt.spaceWords(false) }

// SpaceWordsFresh is SpaceWords under the strict barrier.
func (e *StarEngine) SpaceWordsFresh() int { return e.rt.spaceWords(true) }

// Usage reports SpaceWords and SnapshotSize from the latest published
// epochs; see (*Engine).Usage.
func (e *StarEngine) Usage() (spaceWords, snapshotBytes int) { return e.rt.usage(false) }

// UsageFresh reports both under a single quiesce; see (*Engine).UsageFresh.
func (e *StarEngine) UsageFresh() (spaceWords, snapshotBytes int) { return e.rt.usage(true) }

// Snapshot writes the engine's complete state in the FEWWENG1 container
// (kind byte 2); the same quiescing and exactness guarantees as
// (*Engine).Snapshot apply.
func (e *StarEngine) Snapshot(w io.Writer) error {
	return e.rt.snapshot(w, engineKindStar, []uint64{
		uint64(e.cfg.N),
		uint64(e.cfg.M),
		uint64(e.cfg.Alpha),
		math.Float64bits(e.cfg.Eps),
		e.cfg.Seed,
		math.Float64bits(e.cfg.ScaleFactor),
		uint64(e.cfg.Shards),
		uint64(e.cfg.BatchSize),
		uint64(e.cfg.QueueDepth),
	})
}

// SnapshotSize returns the exact byte length Snapshot would write, under
// the same quiesce Snapshot itself takes.
func (e *StarEngine) SnapshotSize() int {
	_, size := e.UsageFresh()
	return size
}

// RestoreStarEngine reads a snapshot written by (*StarEngine).Snapshot
// and returns a running engine that continues exactly where the
// snapshotted one stopped, including its ladder, shard partitioning and
// batch/queue tuning.
func RestoreStarEngine(r io.Reader) (*StarEngine, error) {
	br := bufio.NewReader(r)
	kind, err := readEngineSnapKind(br)
	if err != nil {
		return nil, err
	}
	if kind != engineKindStar {
		return nil, fmt.Errorf("%w: snapshot holds engine kind %d, not a StarEngine", ErrBadSnapshot, kind)
	}
	dec := &wordDecoder{r: br}
	cfg := StarEngineConfig{
		N:     int64(dec.u64()),
		M:     int64(dec.u64()),
		Alpha: int(dec.u64()),
	}
	cfg.Eps = math.Float64frombits(dec.u64())
	cfg.Seed = dec.u64()
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	cfg.Shards = int(dec.u64())
	cfg.BatchSize = int(dec.u64())
	cfg.QueueDepth = int(dec.u64())
	count := int64(dec.u64())
	if dec.err != nil {
		return nil, dec.err
	}
	if err := validateEngineSnapHeader(cfg.N, cfg.Shards, cfg.BatchSize, cfg.QueueDepth, count); err != nil {
		return nil, err
	}
	if cfg.Alpha < 1 || cfg.Eps <= 0 || cfg.M < cfg.N {
		return nil, fmt.Errorf("%w: star header alpha %d eps %f m %d n %d", ErrBadSnapshot, cfg.Alpha, cfg.Eps, cfg.M, cfg.N)
	}
	guesses, err := core.StarGuesses(cfg.M, cfg.Eps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	p := int64(cfg.Shards)
	seeds := xrand.New(cfg.Seed)
	shards := make([]*core.StarShard, cfg.Shards)
	for i := range shards {
		want := cfg.shardConfig(i, p, guesses, seeds.Uint64())
		// RestoreStarShard cross-checks every rung snapshot against the
		// derived ladder configuration, so no separate comparison is
		// needed here.
		restore := func(r io.Reader) (*core.StarShard, error) { return core.RestoreStarShard(r, want) }
		if shards[i], err = restoreShard(dec, restore, i); err != nil {
			return nil, err
		}
	}
	eng := newStarFromShards(cfg, guesses, shards)
	eng.rt.f.restoreCount(count)
	return eng, nil
}
