package workload

import (
	"testing"

	"feww/internal/stream"
)

func TestPlantedValidStream(t *testing.T) {
	for _, order := range []Order{Shuffled, HeavyFirst, HeavyLast, Interleaved} {
		t.Run(order.String(), func(t *testing.T) {
			p, err := NewPlanted(PlantedConfig{
				N: 100, M: 500, Heavy: 2, HeavyDeg: 20,
				NoiseEdges: 300, Order: order, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if i, err := stream.Validate(p.Updates, 100, 500); err != nil {
				t.Fatalf("invalid stream at %d: %v", i, err)
			}
		})
	}
}

func TestPlantedGroundTruth(t *testing.T) {
	p, err := NewPlanted(PlantedConfig{
		N: 100, M: 500, Heavy: 2, HeavyDeg: 20,
		NoiseEdges: 300, Order: Shuffled, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	live := stream.Materialize(p.Updates)
	if len(live) != len(p.Truth) {
		t.Fatalf("truth has %d edges, stream materialises %d", len(p.Truth), len(live))
	}
	for e := range live {
		if !p.Truth[e] {
			t.Fatalf("edge %v live but not in truth", e)
		}
	}
	// Planted vertices have exactly HeavyDeg; no noise vertex reaches it.
	deg := stream.Degrees(p.Updates)
	heavySet := map[int64]bool{}
	for _, a := range p.HeavyA {
		heavySet[a] = true
		if deg[a] != 20 {
			t.Fatalf("heavy vertex %d has degree %d, want 20", a, deg[a])
		}
	}
	for a, d := range deg {
		if !heavySet[a] && d >= 20 {
			t.Fatalf("noise vertex %d reached degree %d", a, d)
		}
	}
}

func TestPlantedVerifyCatchesFabrication(t *testing.T) {
	p, err := NewPlanted(PlantedConfig{
		N: 50, M: 100, Heavy: 1, HeavyDeg: 10, NoiseEdges: 0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := p.HeavyA[0]
	var realB int64 = -1
	for e := range p.Truth {
		if e.A == a {
			realB = e.B
			break
		}
	}
	if err := p.Verify(a, []int64{realB}); err != nil {
		t.Fatalf("genuine witness rejected: %v", err)
	}
	if err := p.Verify(a, []int64{realB, realB}); err == nil {
		t.Fatal("duplicate witness accepted")
	}
	// Find a non-edge.
	for b := int64(0); b < 100; b++ {
		if !p.Truth[stream.Edge{A: a, B: b}] {
			if err := p.Verify(a, []int64{b}); err == nil {
				t.Fatal("fabricated witness accepted")
			}
			break
		}
	}
}

func TestPlantedConfigValidation(t *testing.T) {
	bad := []PlantedConfig{
		{N: 0, M: 1, Heavy: 1, HeavyDeg: 1},
		{N: 10, M: 10, Heavy: 0, HeavyDeg: 1},
		{N: 10, M: 10, Heavy: 11, HeavyDeg: 1},
		{N: 10, M: 10, Heavy: 1, HeavyDeg: 11},
		{N: 10, M: 10, Heavy: 1, HeavyDeg: 4, MaxNoise: 9},
	}
	for i, cfg := range bad {
		if _, err := NewPlanted(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestZipfItems(t *testing.T) {
	p := ZipfItems(4, 200, 5000, 1.5, 100)
	if i, err := stream.Validate(p.Updates, 200, 5000); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
	if len(p.HeavyA) == 0 {
		t.Fatal("no item reached the threshold; raise skew or lower d")
	}
	deg := stream.Degrees(p.Updates)
	for _, a := range p.HeavyA {
		if deg[a] < 100 {
			t.Fatalf("heavy item %d has frequency %d < 100", a, deg[a])
		}
	}
}

func TestDoS(t *testing.T) {
	p, err := NewDoS(DoSConfig{
		Targets: 50, Sources: 100, Window: 10,
		Victims: 1, AttackReqs: 40, Background: 200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if i, err := stream.Validate(p.Updates, 50, 1000); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
	if len(p.HeavyA) != 1 {
		t.Fatalf("victims = %d", len(p.HeavyA))
	}
}

func TestDoSRejectsOversizedAttack(t *testing.T) {
	_, err := NewDoS(DoSConfig{Targets: 5, Sources: 2, Window: 2, Victims: 1, AttackReqs: 5})
	if err == nil {
		t.Fatal("attack larger than the witness universe accepted")
	}
}

func TestDBLog(t *testing.T) {
	p, err := NewDBLog(DBLogConfig{
		Entries: 100, Users: 20, Commits: 50,
		Hot: 2, HotRate: 30, ColdOps: 100, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if i, err := stream.Validate(p.Updates, 100, 1000); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
}

func TestSocialGraph(t *testing.T) {
	ups := SocialGraph(7, 100, 3)
	deg := make(map[int64]int)
	seen := make(map[stream.Edge]bool)
	for _, u := range ups {
		if u.Op != stream.Insert {
			t.Fatal("social graph emitted a deletion")
		}
		if u.A == u.B {
			t.Fatal("self loop")
		}
		if seen[u.Edge] {
			t.Fatalf("duplicate edge %v", u.Edge)
		}
		seen[u.Edge] = true
		deg[u.A]++
		deg[u.B]++
	}
	// Preferential attachment must produce skew: max degree well above the
	// mean.
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 2*mean {
		t.Fatalf("no skew: max degree %d vs mean %.1f", maxDeg, mean)
	}
}

func TestChurnFinalGraphMatchesBase(t *testing.T) {
	p, err := NewChurn(ChurnConfig{
		Planted: PlantedConfig{
			N: 60, M: 200, Heavy: 1, HeavyDeg: 20,
			NoiseEdges: 50, Order: Shuffled, Seed: 8,
		},
		ChurnEdges: 500,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if i, err := stream.Validate(p.Updates, 60, 200); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
	live := stream.Materialize(p.Updates)
	if len(live) != len(p.Truth) {
		t.Fatalf("final graph has %d edges, truth %d", len(live), len(p.Truth))
	}
	for e := range live {
		if !p.Truth[e] {
			t.Fatalf("edge %v live but not in truth", e)
		}
	}
}

func TestEmptyAfterChurn(t *testing.T) {
	ups := EmptyAfterChurn(10, 30, 50, 200)
	if i, err := stream.Validate(ups, 30, 50); err != nil {
		t.Fatalf("invalid at %d: %v", i, err)
	}
	if live := stream.Materialize(ups); len(live) != 0 {
		t.Fatalf("final graph not empty: %d edges", len(live))
	}
	if len(ups) != 400 {
		t.Fatalf("stream length %d, want 400", len(ups))
	}
}
