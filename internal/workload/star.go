package workload

import (
	"fmt"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// StarGraphConfig describes a general n-vertex graph with one planted
// maximum-degree star — the Star Detection workload (paper Problem 2).
// The generated stream is the bipartite double cover materialised: every
// undirected edge {u, v} appears as the two directed half-edges (u, v)
// and (v, u), back to back, which is exactly what the star tier (the
// StarEngine, fewwd -algo star, and a fewwgate star cluster) consumes —
// half-edges route by their center like any other FEwW stream.
type StarGraphConfig struct {
	// Vertices is the vertex universe size n; the stream declares
	// |A| = |B| = n.
	Vertices int64
	// Degree is the planted center's exact degree Delta — the unique
	// maximum degree of the final graph.
	Degree int64
	// NoiseEdges is the number of undirected background edges.
	NoiseEdges int
	// MaxNoise caps every non-center vertex's final degree
	// (0 = Degree/2); it must stay below Degree so the planted center is
	// the unique maximum.
	MaxNoise int64
	// Churn adds this many extra undirected edges that are inserted and
	// later deleted again — net zero in the final graph.  A non-zero
	// Churn makes the stream a turnstile stream (Corollary 5.5 territory:
	// TurnstileStarDetector); zero keeps it insertion-only, servable by
	// the star engine tier.
	Churn int
	// Seed makes the instance reproducible.
	Seed uint64
}

// NewStarGraph generates a planted-star general-graph instance.  The
// returned Planted carries the ground truth in directed half-edge form:
// HeavyA holds the planted center, and Truth contains both orientations
// of every final live edge, so Verify(center, witnesses) checks served
// star witnesses exactly like the bipartite scenarios.
func NewStarGraph(cfg StarGraphConfig) (*Planted, error) {
	if cfg.Vertices < 3 {
		return nil, fmt.Errorf("workload: star: Vertices=%d, want >= 3", cfg.Vertices)
	}
	if cfg.Degree < 1 || cfg.Degree >= cfg.Vertices {
		return nil, fmt.Errorf("workload: star: Degree=%d with Vertices=%d", cfg.Degree, cfg.Vertices)
	}
	maxNoise := cfg.MaxNoise
	if maxNoise == 0 {
		maxNoise = cfg.Degree / 2
	}
	if maxNoise >= cfg.Degree {
		return nil, fmt.Errorf("workload: star: MaxNoise=%d must stay below Degree=%d", maxNoise, cfg.Degree)
	}

	rng := xrand.New(cfg.Seed)
	p := &Planted{Truth: make(map[stream.Edge]bool)}

	// The center and its Degree distinct neighbours.
	center := rng.Int64n(cfg.Vertices)
	p.HeavyA = []int64{center}
	deg := make(map[int64]int64) // final undirected degree per vertex
	var undirected [][2]int64
	addEdge := func(u, v int64) {
		undirected = append(undirected, [2]int64{u, v})
		p.Truth[stream.Edge{A: u, B: v}] = true
		p.Truth[stream.Edge{A: v, B: u}] = true
		deg[u]++
		deg[v]++
	}
	for _, w := range rng.Subset(int(cfg.Vertices-1), int(cfg.Degree)) {
		// Map [0, n-1) onto [0, n) \ {center}.
		v := int64(w)
		if v >= center {
			v++
		}
		addEdge(center, v)
	}

	// Noise: uniform undirected edges between non-center vertices, under
	// the degree cap and without duplicates, so no vertex approaches the
	// planted maximum.
	attempts := 0
	planted := len(undirected)
	for len(undirected)-planted < cfg.NoiseEdges && attempts < 20*cfg.NoiseEdges+100 {
		attempts++
		u, v := rng.Int64n(cfg.Vertices), rng.Int64n(cfg.Vertices)
		if u == v || u == center || v == center {
			continue
		}
		if deg[u] >= maxNoise || deg[v] >= maxNoise {
			continue
		}
		if p.Truth[stream.Edge{A: u, B: v}] {
			continue
		}
		addEdge(u, v)
	}

	// Churn: extra edges between non-center vertices, inserted now and
	// deleted at the tail — absent from Truth (they are not live at the
	// end) and invisible to the final degrees.
	var churn [][2]int64
	attempts = 0
	for len(churn) < cfg.Churn && attempts < 20*cfg.Churn+100 {
		attempts++
		u, v := rng.Int64n(cfg.Vertices), rng.Int64n(cfg.Vertices)
		if u == v || u == center || v == center {
			continue
		}
		if p.Truth[stream.Edge{A: u, B: v}] || p.Truth[stream.Edge{A: v, B: u}] {
			continue
		}
		// Mark as used so churn edges stay distinct; unmarked again below.
		p.Truth[stream.Edge{A: u, B: v}] = true
		p.Truth[stream.Edge{A: v, B: u}] = true
		churn = append(churn, [2]int64{u, v})
	}
	for _, e := range churn {
		delete(p.Truth, stream.Edge{A: e[0], B: e[1]})
		delete(p.Truth, stream.Edge{A: e[1], B: e[0]})
	}

	// Arrival order: live and churn insertions shuffled together (each
	// undirected edge's two orientations kept adjacent), churn deletions
	// at the tail in random order.
	inserts := make([][2]int64, 0, len(undirected)+len(churn))
	inserts = append(inserts, undirected...)
	inserts = append(inserts, churn...)
	rng.Shuffle(len(inserts), func(i, j int) { inserts[i], inserts[j] = inserts[j], inserts[i] })
	for _, e := range inserts {
		p.Updates = append(p.Updates, stream.Ins(e[0], e[1]), stream.Ins(e[1], e[0]))
	}
	rng.Shuffle(len(churn), func(i, j int) { churn[i], churn[j] = churn[j], churn[i] })
	for _, e := range churn {
		p.Updates = append(p.Updates, stream.Del(e[0], e[1]), stream.Del(e[1], e[0]))
	}
	return p, nil
}
