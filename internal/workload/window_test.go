package workload

import (
	"math"
	"reflect"
	"testing"

	"feww/internal/stream"
)

// TestWindowZipfTopKFrequencies is the statistical check on the zipfian
// generator: with one phase, the empirical frequencies of the k most
// frequent items must match the theoretical Zipf(s) rank probabilities
// p(r) = (r+1)^-s / H_{N,s} within tolerance.  The seed is fixed, so the
// test is deterministic; the tolerance (10% relative) sits far above the
// sampling noise at this stream length and far below the ~13% gap
// between adjacent rank probabilities.
func TestWindowZipfTopKFrequencies(t *testing.T) {
	const (
		n     = 500
		total = 200000
		skew  = 1.2
		topK  = 10
	)
	items, err := WindowZipfItems(WindowZipfConfig{N: n, Total: total, Phases: 1, Skew: skew, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int64)
	for _, a := range items {
		counts[a]++
	}
	freqs := make([]int64, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	// Selection sort of the top K; the map is small.
	for i := 0; i < topK; i++ {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += math.Pow(float64(i), -skew)
	}
	for r := 0; r < topK; r++ {
		want := float64(total) * math.Pow(float64(r+1), -skew) / h
		got := float64(freqs[r])
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("rank %d: observed frequency %.0f, Zipf(%.1f) predicts %.0f (relative error %.1f%%)",
				r, got, skew, want, 100*rel)
		}
	}
}

// TestWindowZipfRotatesHeavyHead pins the generator's reason to exist:
// with two phases, the most frequent item of the first half differs from
// the most frequent item of the second half.
func TestWindowZipfRotatesHeavyHead(t *testing.T) {
	items, err := WindowZipfItems(WindowZipfConfig{N: 200, Total: 40000, Phases: 2, Skew: 1.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := func(part []int64) int64 {
		counts := make(map[int64]int64)
		var best int64
		var bestC int64 = -1
		for _, a := range part {
			counts[a]++
			if counts[a] > bestC {
				best, bestC = a, counts[a]
			}
		}
		return best
	}
	first, second := top(items[:len(items)/2]), top(items[len(items)/2:])
	if first == second {
		t.Fatalf("heavy head did not rotate: item %d tops both phases", first)
	}
}

// TestWindowZipfDeterministic pins the generator byte-for-byte: same
// config, same sequence — and the exact sequence for one config, so an
// accidental change to the sampling order (which would silently shift
// every recorded experiment) fails loudly.
func TestWindowZipfDeterministic(t *testing.T) {
	cfg := WindowZipfConfig{N: 32, Total: 12, Phases: 2, Skew: 1.2, Seed: 42}
	a, err := WindowZipfItems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WindowZipfItems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different sequences:\n%v\n%v", a, b)
	}
	want := []int64{22, 20, 28, 23, 30, 8, 9, 18, 19, 9, 11, 16}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("pinned sequence changed:\ngot  %v\nwant %v", a, want)
	}
}

// TestWindowBurstStraddlesBoundaries checks the adversarial placement:
// every burst is a run of at least BurstLen occurrences of its item
// crossing a bucket boundary of the declared window geometry.
func TestWindowBurstStraddlesBoundaries(t *testing.T) {
	cfg := WindowBurstConfig{N: 100, Window: 60, Buckets: 6, Bursts: 5, BurstLen: 8, Seed: 11}
	items, burstItems, err := WindowBurstItems(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(burstItems) != cfg.Bursts {
		t.Fatalf("%d burst items, want %d", len(burstItems), cfg.Bursts)
	}
	width := (cfg.Window + cfg.Buckets - 1) / cfg.Buckets
	for _, item := range burstItems {
		found := false
		for s := 0; s < len(items); {
			if items[s] != item {
				s++
				continue
			}
			e := s
			for e < len(items) && items[e] == item {
				e++
			}
			// An interior boundary: some multiple of width strictly inside
			// the run, so part of the burst ages out before the rest.
			if int64(e-s) >= cfg.BurstLen {
				first := (int64(s)/width + 1) * width
				if first < int64(e) {
					found = true
				}
			}
			s = e
		}
		if !found {
			t.Errorf("burst item %d has no >= %d-run crossing a width-%d boundary", item, cfg.BurstLen, width)
		}
	}
}

// TestComposeWindowStream checks the round-robin contract: position p
// carries part p%R's next item offset into range p%R, the witness IS the
// position, and unequal or out-of-range parts are rejected.
func TestComposeWindowStream(t *testing.T) {
	parts := [][]int64{{0, 1, 2}, {3, 0, 1}, {2, 2, 0}}
	p, err := ComposeWindowStream(4, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Updates) != 9 {
		t.Fatalf("%d updates, want 9", len(p.Updates))
	}
	for t0, u := range p.Updates {
		r := t0 % 3
		want := int64(r)*4 + parts[r][t0/3]
		if u.A != want || u.B != int64(t0) || u.Op != stream.Insert {
			t.Fatalf("position %d: update %+v, want insert (%d, %d)", t0, u, want, t0)
		}
		if !p.Truth[stream.Edge{A: u.A, B: u.B}] {
			t.Fatalf("position %d: edge (%d, %d) missing from truth", t0, u.A, u.B)
		}
	}
	if _, err := ComposeWindowStream(4, [][]int64{{0, 1}, {2}}); err == nil {
		t.Fatal("unequal part lengths accepted")
	}
	if _, err := ComposeWindowStream(2, [][]int64{{0, 2}}); err == nil {
		t.Fatal("out-of-range item accepted")
	}
	counts := WindowRecount(p.Updates, 6)
	if got := int64(len(counts)); got > 3 {
		t.Fatalf("recount over 3 positions counted %d items", got)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != 3 {
		t.Fatalf("recount total %d, want 3", sum)
	}
}
