package workload

import (
	"fmt"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// The sliding-window generators.  A whole-stream frequent-elements
// instance has one static heavy head; a windowed one must *move* the
// head, or a window engine and a whole-stream engine would be
// indistinguishable.  Both generators here produce item sequences;
// ComposeWindowStream renders a sequence (or a round-robin interleave of
// several, for range-partitioned clusters) into the paper's graph view —
// occurrence t becomes edge (item, t) — so served witnesses are arrival
// positions, checkable against the stream itself.

// WindowZipfConfig describes a rotating-heavy zipfian item stream: Zipf
// ranks over the universe, with the rank-to-item mapping reshuffled every
// phase so the heavy head moves.  A whole-stream engine keeps reporting
// the early phases' heavy items long after traffic moved on; a sliding
// window tracks the current phase — the recency contrast the windowed
// experiment measures.
type WindowZipfConfig struct {
	N      int64   // item universe [0, N)
	Total  int     // stream length
	Phases int     // rank-reshuffle count (0 = 1: a static zipf stream)
	Skew   float64 // Zipf exponent (> 1; 0 = 1.2)
	Seed   uint64
}

// WindowZipfItems generates the rotating-heavy item sequence.
func WindowZipfItems(cfg WindowZipfConfig) ([]int64, error) {
	if cfg.N < 1 || cfg.Total < 0 {
		return nil, fmt.Errorf("workload: window zipf: N=%d Total=%d", cfg.N, cfg.Total)
	}
	phases := cfg.Phases
	if phases <= 0 {
		phases = 1
	}
	skew := cfg.Skew
	if skew == 0 {
		skew = 1.2
	}
	rng := xrand.New(cfg.Seed)
	zipf := xrand.NewZipf(rng, skew, int(cfg.N))
	items := make([]int64, cfg.Total)
	perm := rng.Perm(int(cfg.N))
	phaseLen := (cfg.Total + phases - 1) / phases
	if phaseLen == 0 {
		phaseLen = 1
	}
	for t := range items {
		if t > 0 && t%phaseLen == 0 {
			perm = rng.Perm(int(cfg.N))
		}
		items[t] = int64(perm[zipf.Next()])
	}
	return items, nil
}

// WindowBurstConfig describes the adversarial input for whole-bucket
// expiry: each heavy item's occurrences arrive as one dense burst placed
// to *straddle* a bucket boundary of the consumer's window geometry —
// half the burst lands in a sub-window about to age out, half in the
// next.  An implementation that mishandles the boundary either drops a
// still-in-window burst early or keeps reporting one that fully expired.
type WindowBurstConfig struct {
	N        int64 // item universe [0, N); burst items are drawn from it
	Window   int64 // the consumer's window length (>= 1)
	Buckets  int64 // the consumer's bucket count (1 <= Buckets <= Window)
	Bursts   int   // number of bursts (>= 1)
	BurstLen int64 // occurrences per burst (the heavy promise; >= 2)
	Seed     uint64
}

// WindowBurstItems generates the burst sequence and returns it with the
// burst items in arrival order.  Between bursts, uniform background noise
// pads the stream to the next bucket boundary minus half a burst, so
// every burst crosses a boundary; consecutive bursts get distinct items.
func WindowBurstItems(cfg WindowBurstConfig) (items, burstItems []int64, err error) {
	if cfg.N < 2 || cfg.Window < 1 || cfg.Buckets < 1 || cfg.Buckets > cfg.Window {
		return nil, nil, fmt.Errorf("workload: window burst: bad universe/geometry %+v", cfg)
	}
	if cfg.Bursts < 1 || cfg.BurstLen < 2 {
		return nil, nil, fmt.Errorf("workload: window burst: Bursts=%d BurstLen=%d", cfg.Bursts, cfg.BurstLen)
	}
	width := (cfg.Window + cfg.Buckets - 1) / cfg.Buckets
	rng := xrand.New(cfg.Seed)
	prev := int64(-1)
	for b := 0; b < cfg.Bursts; b++ {
		item := rng.Int64n(cfg.N)
		for item == prev {
			item = rng.Int64n(cfg.N)
		}
		prev = item
		// Pad with noise so the burst's midpoint lands on a bucket
		// boundary strictly ahead of the current position.
		pos := int64(len(items))
		boundary := ((pos+cfg.BurstLen/2)/width + 1) * width
		for int64(len(items)) < boundary-cfg.BurstLen/2 {
			noise := rng.Int64n(cfg.N)
			if noise == item {
				continue
			}
			items = append(items, noise)
		}
		for i := int64(0); i < cfg.BurstLen; i++ {
			items = append(items, item)
		}
		burstItems = append(burstItems, item)
	}
	return items, burstItems, nil
}

// ComposeWindowStream renders item sequences into one positional stream
// with ground truth.  With one part, the stream is simply occurrence t of
// part 0 becoming edge (item, t).  With R > 1 parts — the range-
// partitioned cluster form — part r's items must lie in [0, rangeWidth)
// and are offset to the contiguous range [r*rangeWidth, (r+1)*rangeWidth);
// the parts are interleaved strictly round-robin, so global position p
// carries part p%R's next item.  Under that discipline a gateway routing
// by range delivers every R-th update to each member, which is what makes
// member-local windows of length W/R compose into one global window of
// length W (see cluster.Gateway).  Parts must have equal length.
//
// The returned Truth holds every (item, position) pair, so Verify checks
// that served witnesses are genuine arrival positions of the item.
func ComposeWindowStream(rangeWidth int64, parts [][]int64) (*Planted, error) {
	if len(parts) == 0 || rangeWidth < 1 {
		return nil, fmt.Errorf("workload: compose window stream: %d parts, range width %d", len(parts), rangeWidth)
	}
	for r, part := range parts {
		if len(part) != len(parts[0]) {
			return nil, fmt.Errorf("workload: compose window stream: part %d has %d items, part 0 has %d — round-robin interleave needs equal lengths", r, len(part), len(parts[0]))
		}
	}
	total := len(parts) * len(parts[0])
	p := &Planted{
		Updates: make([]stream.Update, 0, total),
		Truth:   make(map[stream.Edge]bool, total),
	}
	for t := 0; t < total; t++ {
		r := t % len(parts)
		a := parts[r][t/len(parts)]
		if a < 0 || a >= rangeWidth {
			return nil, fmt.Errorf("workload: compose window stream: part %d item %d not in [0, %d)", r, a, rangeWidth)
		}
		e := stream.Edge{A: int64(r)*rangeWidth + a, B: int64(t)}
		p.Updates = append(p.Updates, stream.Update{Edge: e, Op: stream.Insert})
		p.Truth[e] = true
	}
	return p, nil
}

// WindowRecount is the ground truth a sliding-window engine is judged
// against: the exact frequency of every item among the updates at
// positions [start, len(updates)).  The caller derives start from the
// engine's geometry — 0 while the stream is shorter than the window, the
// bucket-aligned window start otherwise (see core.WindowStart).
func WindowRecount(updates []stream.Update, start int64) map[int64]int64 {
	counts := make(map[int64]int64)
	for t := start; t < int64(len(updates)); t++ {
		counts[updates[t].A]++
	}
	return counts
}

// NewWindowZipf renders a single-range rotating-heavy zipfian stream
// (fewwgen's windowzipf kind).
func NewWindowZipf(cfg WindowZipfConfig) (*Planted, error) {
	items, err := WindowZipfItems(cfg)
	if err != nil {
		return nil, err
	}
	return ComposeWindowStream(cfg.N, [][]int64{items})
}

// NewWindowBurst renders a single-range boundary-straddling burst stream
// (fewwgen's windowburst kind); the burst items ride in HeavyA.
func NewWindowBurst(cfg WindowBurstConfig) (*Planted, error) {
	items, burstItems, err := WindowBurstItems(cfg)
	if err != nil {
		return nil, err
	}
	p, err := ComposeWindowStream(cfg.N, [][]int64{items})
	if err != nil {
		return nil, err
	}
	p.HeavyA = burstItems
	return p, nil
}
