package workload

import (
	"fmt"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// ChurnConfig describes an insertion-deletion workload: a planted instance
// whose noise is additionally inserted-then-deleted ("churned"), so the
// final graph keeps the planted structure while the stream is dominated by
// updates that cancel.  This is the adversarial regime for sketch-based
// algorithms — an insertion-only sampler would be overwhelmed by the
// churned edges, while the L0-based Algorithm 3 is oblivious to them.
type ChurnConfig struct {
	Planted    PlantedConfig
	ChurnEdges int  // extra edges inserted and later deleted
	DeleteSome bool // also delete a fraction of the noise edges
	Seed       uint64
}

// NewChurn generates an insertion-deletion instance.  The returned Truth
// reflects the final (post-deletion) graph.
func NewChurn(cfg ChurnConfig) (*Planted, error) {
	base, err := NewPlanted(cfg.Planted)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0xc0ffee)

	// Build churn edges disjoint from the base truth.
	churn := make([]stream.Edge, 0, cfg.ChurnEdges)
	used := make(map[stream.Edge]bool, cfg.ChurnEdges)
	attempts := 0
	for len(churn) < cfg.ChurnEdges && attempts < 20*cfg.ChurnEdges+100 {
		attempts++
		e := stream.Edge{A: rng.Int64n(cfg.Planted.N), B: rng.Int64n(cfg.Planted.M)}
		if base.Truth[e] || used[e] {
			continue
		}
		used[e] = true
		churn = append(churn, e)
	}

	// Interleave: base inserts and churn inserts shuffled together, then
	// churn deletes shuffled through the tail.
	ups := make([]stream.Update, 0, len(base.Updates)+2*len(churn))
	ups = append(ups, base.Updates...)
	for _, e := range churn {
		ups = append(ups, stream.Update{Edge: e, Op: stream.Insert})
	}
	rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	dels := make([]stream.Update, 0, len(churn))
	for _, e := range churn {
		dels = append(dels, stream.Update{Edge: e, Op: stream.Delete})
	}
	rng.Shuffle(len(dels), func(i, j int) { dels[i], dels[j] = dels[j], dels[i] })
	ups = append(ups, dels...)

	base.Updates = ups
	return base, nil
}

// DenseConfig generates the dense regime of Lemma 5.2: at least n/x
// A-vertices of degree >= d/alpha.  Every one of the Dense vertices gets
// exactly Deg distinct neighbours.
type DenseConfig struct {
	N, M  int64
	Dense int   // number of vertices given degree Deg
	Deg   int64 // their common degree
	Seed  uint64
}

// NewDense generates a dense instance (insertions only; pair with churn
// via NewChurn if deletions are wanted).  All Dense vertices are "heavy".
func NewDense(cfg DenseConfig) (*Planted, error) {
	if cfg.Dense < 1 || int64(cfg.Dense) > cfg.N || cfg.Deg < 1 || cfg.Deg > cfg.M {
		return nil, fmt.Errorf("workload: dense: bad config %+v", cfg)
	}
	rng := xrand.New(cfg.Seed)
	p := &Planted{Truth: make(map[stream.Edge]bool)}
	for _, v := range rng.Subset(int(cfg.N), cfg.Dense) {
		a := int64(v)
		p.HeavyA = append(p.HeavyA, a)
		for _, b := range rng.Subset(int(cfg.M), int(cfg.Deg)) {
			e := stream.Edge{A: a, B: int64(b)}
			p.Truth[e] = true
			p.Updates = append(p.Updates, stream.Update{Edge: e, Op: stream.Insert})
		}
	}
	rng.Shuffle(len(p.Updates), func(i, j int) { p.Updates[i], p.Updates[j] = p.Updates[j], p.Updates[i] })
	return p, nil
}

// EmptyAfterChurn generates a stream that inserts edges and then deletes
// every one of them — the failure-injection case where the final graph is
// empty and any algorithm must report failure rather than fabricate a
// witness.
func EmptyAfterChurn(seed uint64, n, m int64, edges int) []stream.Update {
	rng := xrand.New(seed)
	used := make(map[stream.Edge]bool, edges)
	ins := make([]stream.Update, 0, edges)
	for len(ins) < edges {
		e := stream.Edge{A: rng.Int64n(n), B: rng.Int64n(m)}
		if used[e] {
			continue
		}
		used[e] = true
		ins = append(ins, stream.Update{Edge: e, Op: stream.Insert})
	}
	out := make([]stream.Update, 0, 2*edges)
	out = append(out, ins...)
	dels := make([]stream.Update, len(ins))
	for i, u := range ins {
		dels[i] = stream.Update{Edge: u.Edge, Op: stream.Delete}
	}
	rng.Shuffle(len(dels), func(i, j int) { dels[i], dels[j] = dels[j], dels[i] })
	return append(out, dels...)
}
