package workload

import (
	"testing"

	"feww/internal/stream"
)

func TestStarGraphInsertOnly(t *testing.T) {
	const n, deg = 200, 30
	inst, err := NewStarGraph(StarGraphConfig{
		Vertices: n, Degree: deg, NoiseEdges: 150, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.HeavyA) != 1 {
		t.Fatalf("HeavyA = %v, want exactly the planted center", inst.HeavyA)
	}
	center := inst.HeavyA[0]

	// The stream is a valid insertion-only simple-graph stream over the
	// doubled universe |A| = |B| = n.
	if i, err := stream.Validate(inst.Updates, n, n); err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
	st := stream.Summarize(inst.Updates)
	if st.Deletes != 0 {
		t.Fatalf("insert-only variant carries %d deletes", st.Deletes)
	}
	// Each undirected edge appears as both orientations, so the directed
	// A-degree equals the undirected degree.
	v, d := stream.MaxDegree(inst.Updates)
	if v != center || d != deg {
		t.Fatalf("max degree = vertex %d at %d, want planted center %d at %d", v, d, center, deg)
	}
	// Every noise vertex stays below the default cap deg/2.
	for vtx, dd := range stream.Degrees(inst.Updates) {
		if vtx != center && dd >= deg/2+1 {
			t.Fatalf("noise vertex %d reached degree %d (cap %d)", vtx, dd, deg/2)
		}
	}
	// Ground truth carries both orientations of every live edge.
	count := 0
	for e := range inst.Truth {
		count++
		if !inst.Truth[stream.Edge{A: e.B, B: e.A}] {
			t.Fatalf("truth is not symmetric: %v present, mirror absent", e)
		}
	}
	if count != st.LiveEdges {
		t.Fatalf("truth has %d directed edges, stream materialises %d", count, st.LiveEdges)
	}
}

func TestStarGraphChurnVariant(t *testing.T) {
	const n, deg = 120, 20
	inst, err := NewStarGraph(StarGraphConfig{
		Vertices: n, Degree: deg, NoiseEdges: 60, Churn: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	center := inst.HeavyA[0]
	if i, err := stream.Validate(inst.Updates, n, n); err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
	st := stream.Summarize(inst.Updates)
	if st.Deletes == 0 {
		t.Fatal("churn variant carries no deletes")
	}
	if st.Deletes != 2*40 {
		t.Fatalf("churn variant has %d deletes, want %d (both orientations of every churn edge)", st.Deletes, 2*40)
	}
	// The churn cancels: final degrees are as if it never happened.
	v, d := stream.MaxDegree(inst.Updates)
	if v != center || d != deg {
		t.Fatalf("max final degree = vertex %d at %d, want center %d at %d", v, d, center, deg)
	}
	// No churn edge survives into the ground truth.
	live := stream.Materialize(inst.Updates)
	if len(live) != len(inst.Truth) {
		t.Fatalf("truth has %d directed edges, stream materialises %d", len(inst.Truth), len(live))
	}
	for e := range live {
		if !inst.Truth[e] {
			t.Fatalf("live edge %v missing from truth", e)
		}
	}
}
