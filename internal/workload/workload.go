// Package workload generates the synthetic input streams used by the
// experiments.  The paper's motivating applications (§1) — database logs,
// social-network friendship streams, router traffic logs — share one
// structural signature: a handful of genuinely heavy A-vertices hiding in a
// long Zipf-like tail of light ones.  Every generator here produces that
// signature with tunable parameters and a known ground truth, so the
// experiments can verify reported witnesses against reality.
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// Order controls the arrival order of the generated edges — the failure-
// injection axis for the insertion-only algorithm (a reservoir-based
// algorithm must work for every order).
type Order int

const (
	// Shuffled delivers edges in uniform random order.
	Shuffled Order = iota
	// HeavyFirst delivers all edges of planted heavy vertices first.
	HeavyFirst
	// HeavyLast delivers all edges of planted heavy vertices last.
	HeavyLast
	// Interleaved round-robins heavy edges between noise edges.
	Interleaved
)

func (o Order) String() string {
	switch o {
	case Shuffled:
		return "shuffled"
	case HeavyFirst:
		return "heavy-first"
	case HeavyLast:
		return "heavy-last"
	case Interleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// PlantedConfig describes a bipartite graph with planted heavy vertices.
type PlantedConfig struct {
	N          int64   // |A|
	M          int64   // |B|
	Heavy      int     // number of planted heavy A-vertices (>= 1)
	HeavyDeg   int64   // exact degree of every planted vertex (the d promise)
	NoiseEdges int     // edges of background noise
	NoiseSkew  float64 // Zipf exponent for noise A-vertex choice (> 1)
	MaxNoise   int64   // cap on any noise vertex's degree (0 = HeavyDeg/2)
	Order      Order
	Seed       uint64
}

// Planted is a generated instance with ground truth attached.
type Planted struct {
	Updates []stream.Update
	HeavyA  []int64              // the planted heavy vertex ids
	Truth   map[stream.Edge]bool // final live edge set
}

// NewPlanted generates a planted-star instance.  Heavy vertices are chosen
// uniformly from A; each is given exactly HeavyDeg distinct B-neighbours.
// Noise edges pick their A-endpoint from a Zipf distribution over the
// remaining vertices and a uniform B-endpoint, rejecting duplicates and
// vertices that would exceed MaxNoise (keeping the ground truth clean: no
// noise vertex reaches the promise threshold).
func NewPlanted(cfg PlantedConfig) (*Planted, error) {
	if cfg.N < 1 || cfg.M < 1 {
		return nil, fmt.Errorf("workload: planted: N=%d M=%d, want >= 1", cfg.N, cfg.M)
	}
	if cfg.Heavy < 1 || int64(cfg.Heavy) > cfg.N {
		return nil, fmt.Errorf("workload: planted: Heavy=%d with N=%d", cfg.Heavy, cfg.N)
	}
	if cfg.HeavyDeg < 1 || cfg.HeavyDeg > cfg.M {
		return nil, fmt.Errorf("workload: planted: HeavyDeg=%d with M=%d", cfg.HeavyDeg, cfg.M)
	}
	maxNoise := cfg.MaxNoise
	if maxNoise == 0 {
		maxNoise = cfg.HeavyDeg / 2
	}
	if maxNoise >= cfg.HeavyDeg {
		return nil, fmt.Errorf("workload: planted: MaxNoise=%d must stay below HeavyDeg=%d", maxNoise, cfg.HeavyDeg)
	}
	skew := cfg.NoiseSkew
	if skew == 0 {
		skew = 1.2
	}

	rng := xrand.New(cfg.Seed)
	p := &Planted{Truth: make(map[stream.Edge]bool)}

	// Choose the heavy vertices.
	for _, v := range rng.Subset(int(cfg.N), cfg.Heavy) {
		p.HeavyA = append(p.HeavyA, int64(v))
	}
	heavySet := make(map[int64]bool, cfg.Heavy)
	for _, v := range p.HeavyA {
		heavySet[v] = true
	}

	var heavyEdges, noiseEdges []stream.Edge
	for _, a := range p.HeavyA {
		for _, b := range rng.Subset(int(cfg.M), int(cfg.HeavyDeg)) {
			e := stream.Edge{A: a, B: int64(b)}
			heavyEdges = append(heavyEdges, e)
			p.Truth[e] = true
		}
	}

	// Noise: Zipf over the A id space, skipping heavy vertices and degree
	// caps; uniform B, rejecting duplicate edges.
	zipf := xrand.NewZipf(rng, skew, int(cfg.N))
	perm := rng.Perm(int(cfg.N)) // decouple Zipf rank from vertex id
	noiseDeg := make(map[int64]int64)
	attempts := 0
	for len(noiseEdges) < cfg.NoiseEdges && attempts < 20*cfg.NoiseEdges+100 {
		attempts++
		a := int64(perm[zipf.Next()])
		if heavySet[a] || noiseDeg[a] >= maxNoise {
			continue
		}
		e := stream.Edge{A: a, B: rng.Int64n(cfg.M)}
		if p.Truth[e] {
			continue
		}
		p.Truth[e] = true
		noiseDeg[a]++
		noiseEdges = append(noiseEdges, e)
	}

	p.Updates = arrange(rng, heavyEdges, noiseEdges, cfg.Order)
	return p, nil
}

// arrange lays out heavy and noise edges per the requested order.
func arrange(rng *xrand.RNG, heavy, noise []stream.Edge, order Order) []stream.Update {
	out := make([]stream.Update, 0, len(heavy)+len(noise))
	switch order {
	case HeavyFirst:
		out = append(out, stream.Inserts(heavy)...)
		out = append(out, stream.Inserts(noise)...)
	case HeavyLast:
		out = append(out, stream.Inserts(noise)...)
		out = append(out, stream.Inserts(heavy)...)
	case Interleaved:
		hi, ni := 0, 0
		for hi < len(heavy) || ni < len(noise) {
			if hi < len(heavy) {
				out = append(out, stream.Ins(heavy[hi].A, heavy[hi].B))
				hi++
			}
			if ni < len(noise) {
				out = append(out, stream.Ins(noise[ni].A, noise[ni].B))
				ni++
			}
		}
	default: // Shuffled
		out = append(out, stream.Inserts(heavy)...)
		out = append(out, stream.Inserts(noise)...)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

// Verify checks a reported neighbourhood against the ground truth: the
// witnesses must be distinct and every (A, witness) edge must be live.
func (p *Planted) Verify(a int64, witnesses []int64) error {
	seen := make(map[int64]struct{}, len(witnesses))
	for _, b := range witnesses {
		if _, dup := seen[b]; dup {
			return fmt.Errorf("workload: duplicate witness %d for vertex %d", b, a)
		}
		seen[b] = struct{}{}
		if !p.Truth[stream.Edge{A: a, B: b}] {
			return fmt.Errorf("workload: fabricated witness: edge (%d,%d) not in graph", a, b)
		}
	}
	return nil
}
