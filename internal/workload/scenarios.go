package workload

import (
	"fmt"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// ZipfItems generates a classical frequent-elements item stream rendered in
// the paper's graph view: each occurrence of item a at time t becomes the
// edge (a, t) — the witness of an item is the timestamp it arrived with.
// Items are drawn Zipf(skew) over [0, n); the stream has length total.
// The returned instance's heavy list holds the items whose final frequency
// is at least d.
func ZipfItems(seed uint64, n int64, total int, skew float64, d int64) *Planted {
	rng := xrand.New(seed)
	zipf := xrand.NewZipf(rng, skew, int(n))
	perm := rng.Perm(int(n))
	p := &Planted{Truth: make(map[stream.Edge]bool, total)}
	freq := make(map[int64]int64)
	for t := 0; t < total; t++ {
		a := int64(perm[zipf.Next()])
		e := stream.Edge{A: a, B: int64(t)}
		p.Updates = append(p.Updates, stream.Update{Edge: e, Op: stream.Insert})
		p.Truth[e] = true
		freq[a]++
	}
	for a, f := range freq {
		if f >= d {
			p.HeavyA = append(p.HeavyA, a)
		}
	}
	return p
}

// DoSConfig describes a router-log / DNS-attack trace in the style of the
// paper's third motivating example [22]: target IPs are A-vertices, the
// (source IP, timestamp) pairs are B-vertices, and an attack is a target
// receiving requests from many distinct sources.
type DoSConfig struct {
	Targets    int64 // |A|: number of target IPs
	Sources    int64 // number of distinct source IPs
	Window     int64 // number of time slots; |B| = Sources * Window
	Victims    int   // number of attacked targets
	AttackReqs int64 // requests each victim receives (distinct sources x times)
	Background int   // benign requests
	Seed       uint64
}

// BWidth returns |B| for a DoS config.
func (c DoSConfig) BWidth() int64 { return c.Sources * c.Window }

// NewDoS generates a DoS trace.  Victim targets receive AttackReqs requests
// from distinct (source, time) pairs; background traffic is Zipf over
// targets with duplicate (target, source, time) triples rejected.
func NewDoS(cfg DoSConfig) (*Planted, error) {
	if cfg.Targets < 1 || cfg.Sources < 1 || cfg.Window < 1 {
		return nil, fmt.Errorf("workload: dos: bad universe %+v", cfg)
	}
	if cfg.AttackReqs > cfg.BWidth() {
		return nil, fmt.Errorf("workload: dos: AttackReqs=%d exceeds source*time universe %d", cfg.AttackReqs, cfg.BWidth())
	}
	return NewPlanted(PlantedConfig{
		N:          cfg.Targets,
		M:          cfg.BWidth(),
		Heavy:      cfg.Victims,
		HeavyDeg:   cfg.AttackReqs,
		NoiseEdges: cfg.Background,
		NoiseSkew:  1.1,
		// Keep benign traffic clearly below the alpha = 2 reporting
		// threshold AttackReqs/2, so only genuine victims can be output.
		MaxNoise: cfg.AttackReqs / 3,
		Order:    Shuffled,
		Seed:     cfg.Seed,
	})
}

// SocialGraph generates a general (non-bipartite) friendship stream by
// preferential attachment: vertices arrive one at a time, each connecting
// to attach earlier vertices chosen proportionally to their current degree
// — producing the influencer-with-followers skew of the paper's second
// motivating example.  Returned updates are undirected edges {u, v} encoded
// with A = u, B = v, u != v; callers (Star Detection) feed both
// orientations.
func SocialGraph(seed uint64, vertices, attach int) []stream.Update {
	if vertices < 2 {
		panic("workload: SocialGraph with vertices < 2")
	}
	rng := xrand.New(seed)
	// endpoint multiset: picking a uniform element = degree-proportional pick.
	endpoints := []int64{0, 1}
	ups := []stream.Update{stream.Ins(0, 1)}
	present := map[stream.Edge]bool{{A: 0, B: 1}: true}
	for v := int64(2); v < int64(vertices); v++ {
		links := attach
		if int64(links) >= v {
			links = int(v)
		}
		chosen := make(map[int64]bool, links)
		for len(chosen) < links {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v || chosen[u] {
				// fall back to uniform to guarantee progress on tiny graphs
				u = rng.Int64n(v)
				if u == v || chosen[u] {
					continue
				}
			}
			chosen[u] = true
			e := stream.Edge{A: v, B: u}
			if present[e] {
				continue
			}
			present[e] = true
			ups = append(ups, stream.Ins(v, u))
			endpoints = append(endpoints, v, u)
		}
	}
	rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	return ups
}

// DBLogConfig describes a database update log (the paper's first motivating
// example): entries are A-vertices, users are combined with a commit
// sequence number into B-vertices, and a hot entry is one updated many
// times.
type DBLogConfig struct {
	Entries  int64 // |A|
	Users    int64
	Commits  int64 // commit sequence space; |B| = Users * Commits
	Hot      int   // number of hot entries
	HotRate  int64 // updates each hot entry receives
	ColdOps  int   // background updates
	Seed     uint64
	Ordering Order
}

// NewDBLog generates a database-log instance.
func NewDBLog(cfg DBLogConfig) (*Planted, error) {
	if cfg.Entries < 1 || cfg.Users < 1 || cfg.Commits < 1 {
		return nil, fmt.Errorf("workload: dblog: bad universe %+v", cfg)
	}
	return NewPlanted(PlantedConfig{
		N:          cfg.Entries,
		M:          cfg.Users * cfg.Commits,
		Heavy:      cfg.Hot,
		HeavyDeg:   cfg.HotRate,
		NoiseEdges: cfg.ColdOps,
		NoiseSkew:  1.3,
		// Keep cold entries clearly below the alpha = 2 reporting
		// threshold HotRate/2, so only genuinely hot entries are output.
		MaxNoise: cfg.HotRate / 3,
		Order:    cfg.Ordering,
		Seed:     cfg.Seed,
	})
}
