package hashing

import (
	"testing"

	"feww/internal/xrand"
)

func TestFingerprintClone(t *testing.T) {
	rng := xrand.New(1)
	f := NewFingerprint(rng)
	f.Update(5, 3)
	cp := f.Clone()
	if !cp.Matches(5, 3) {
		t.Fatal("clone lost state")
	}
	// Mutating the clone must not affect the original (peeling decoders
	// rely on this).
	cp.Update(5, -3)
	if !cp.Zero() {
		t.Fatal("clone did not cancel to zero")
	}
	if !f.Matches(5, 3) {
		t.Fatal("original mutated through clone")
	}
}

func TestSpaceWordsAccessors(t *testing.T) {
	rng := xrand.New(2)
	if got := NewFingerprint(rng).SpaceWords(); got != 2 {
		t.Fatalf("Fingerprint.SpaceWords = %d, want 2", got)
	}
	if got := NewPoly(rng, 5).SpaceWords(); got != 5 {
		t.Fatalf("Poly.SpaceWords = %d, want 5", got)
	}
}

func TestHashRangePowerOfTwoFastPath(t *testing.T) {
	rng := xrand.New(3)
	h := NewPoly(rng, 2)
	for _, m := range []uint64{1, 2, 64, 1 << 20, 3, 1000} {
		for x := uint64(0); x < 200; x++ {
			if v := h.HashRange(x, m); v >= m {
				t.Fatalf("HashRange(%d, %d) = %d out of range", x, m, v)
			}
		}
	}
}

func TestNewMultiplyShiftPanics(t *testing.T) {
	for _, bits := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rangeBits %d accepted", bits)
				}
			}()
			NewMultiplyShift(xrand.New(1), bits)
		}()
	}
}

func TestMultiplyShiftBucketSpread(t *testing.T) {
	ms := NewMultiplyShift(xrand.New(4), 10)
	seen := make(map[uint64]bool)
	for x := uint64(0); x < 4096; x++ {
		v := ms.Hash(x)
		if v >= 1<<10 {
			t.Fatalf("Hash(%d) = %d out of 2^10 range", x, v)
		}
		seen[v] = true
	}
	// A decent multiplier spreads 4096 keys over most of the 1024 buckets.
	if len(seen) < 512 {
		t.Fatalf("only %d of 1024 buckets hit", len(seen))
	}
}

func TestNewPolyPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k = 0 accepted")
		}
	}()
	NewPoly(xrand.New(1), 0)
}

func TestModArithmeticIdentities(t *testing.T) {
	// (p-1) + 1 == 0, 0 - x == p - x, inverse round trips.
	p := MersennePrime61
	if AddMod61(p-1, 1) != 0 {
		t.Fatal("AddMod61 wrap failed")
	}
	if SubMod61(0, 5) != p-5 {
		t.Fatal("SubMod61 wrap failed")
	}
	for _, x := range []uint64{1, 2, 12345, p - 1} {
		if MulMod61(x, InvMod61(x)) != 1 {
			t.Fatalf("InvMod61(%d) not an inverse", x)
		}
	}
	if PowMod61(3, 0) != 1 || PowMod61(3, 1) != 3 || PowMod61(3, 4) != 81 {
		t.Fatal("PowMod61 small cases failed")
	}
}
