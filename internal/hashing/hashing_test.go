package hashing

import (
	"math/big"
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func TestMulMod61AgainstBigInt(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime61)
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		got := MulMod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubMod61(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		sum := AddMod61(a, b)
		if sum >= MersennePrime61 {
			return false
		}
		// (a + b) - b == a
		return SubMod61(sum, b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowInvMod61(t *testing.T) {
	f := func(a uint64) bool {
		a = a%(MersennePrime61-1) + 1 // non-zero
		return MulMod61(a, InvMod61(a)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if PowMod61(3, 0) != 1 {
		t.Error("x^0 != 1")
	}
	if PowMod61(2, 61) != MulMod61(PowMod61(2, 60), 2) {
		t.Error("PowMod61 inconsistent")
	}
}

func TestPolyHashRange(t *testing.T) {
	rng := xrand.New(1)
	h := NewPoly(rng, 3)
	f := func(x, m uint64) bool {
		if m == 0 {
			m = 1
		}
		m = m%100000 + 1
		return h.HashRange(x, m) < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolyHashSpread(t *testing.T) {
	rng := xrand.New(2)
	h := NewPoly(rng, 2)
	const buckets = 16
	counts := make([]int, buckets)
	for x := uint64(0); x < 16000; x++ {
		counts[h.HashRange(x, buckets)]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("bucket %d badly skewed: %d/16000", i, c)
		}
	}
}

func TestPolyDifferentInstancesDiffer(t *testing.T) {
	rng := xrand.New(3)
	h1, h2 := NewPoly(rng, 2), NewPoly(rng, 2)
	same := 0
	for x := uint64(0); x < 100; x++ {
		if h1.Hash(x) == h2.Hash(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("independent hash functions agree on %d/100 points", same)
	}
}

func TestSignBalance(t *testing.T) {
	rng := xrand.New(4)
	h := NewPoly(rng, 4)
	pos := 0
	for x := uint64(0); x < 10000; x++ {
		s := h.Sign(x)
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		if s == 1 {
			pos++
		}
	}
	if pos < 4500 || pos > 5500 {
		t.Fatalf("sign hash unbalanced: %d/10000 positive", pos)
	}
}

func TestFingerprintSingleton(t *testing.T) {
	rng := xrand.New(5)
	fp := NewFingerprint(rng)
	if !fp.Zero() {
		t.Fatal("fresh fingerprint not zero")
	}
	fp.Update(42, 3)
	if !fp.Matches(42, 3) {
		t.Fatal("fingerprint does not match its own singleton")
	}
	if fp.Matches(42, 2) || fp.Matches(41, 3) {
		t.Fatal("fingerprint matched a wrong singleton")
	}
}

func TestFingerprintCancellation(t *testing.T) {
	rng := xrand.New(6)
	fp := NewFingerprint(rng)
	updates := [][2]int64{{10, 5}, {20, -2}, {30, 7}}
	for _, u := range updates {
		fp.Update(uint64(u[0]), u[1])
	}
	for _, u := range updates {
		fp.Update(uint64(u[0]), -u[1])
	}
	if !fp.Zero() {
		t.Fatal("fingerprint not zero after full cancellation")
	}
}

func TestFingerprintRejectsNonSingleton(t *testing.T) {
	rng := xrand.New(7)
	rejected := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		fp := NewFingerprint(rng)
		fp.Update(uint64(i), 1)
		fp.Update(uint64(i+1000), 1)
		// A two-element vector must not look like any plausible singleton.
		looksSingleton := fp.Matches(uint64(i), 2) || fp.Matches(uint64(i+1000), 2) ||
			fp.Matches(uint64(i)+500, 2)
		if !looksSingleton {
			rejected++
		}
	}
	if rejected < trials-2 {
		t.Fatalf("fingerprint accepted non-singletons: only %d/%d rejected", rejected, trials)
	}
}

func TestFingerprintNegativeCounts(t *testing.T) {
	rng := xrand.New(8)
	fp := NewFingerprint(rng)
	fp.Update(7, -4)
	if !fp.Matches(7, -4) {
		t.Fatal("fingerprint does not handle negative counts")
	}
}

func TestMultiplyShiftRange(t *testing.T) {
	rng := xrand.New(9)
	ms := NewMultiplyShift(rng, 10)
	for x := uint64(0); x < 10000; x++ {
		if ms.Hash(x) >= 1024 {
			t.Fatalf("MultiplyShift out of range: %d", ms.Hash(x))
		}
	}
}

func TestNewPolyPanics(t *testing.T) {
	rng := xrand.New(10)
	defer func() {
		if recover() == nil {
			t.Error("NewPoly(rng, 0) did not panic")
		}
	}()
	NewPoly(rng, 0)
}
