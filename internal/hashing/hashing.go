// Package hashing provides the k-wise independent hash families and
// polynomial fingerprints that the L0 samplers (paper §5, Jowhari et al.
// [26]) and the sketch baselines (CountMin, CountSketch) are built on.
//
// All arithmetic is over the Mersenne prime field F_p with p = 2^61 - 1,
// which admits fast modular reduction without division.
package hashing

import (
	"math/bits"

	"feww/internal/xrand"
)

// MersennePrime61 is the field modulus p = 2^61 - 1.
const MersennePrime61 uint64 = (1 << 61) - 1

// reduce61 reduces a 128-bit product (hi, lo) modulo 2^61 - 1.
func reduce61(hi, lo uint64) uint64 {
	// x = hi*2^64 + lo.  2^64 ≡ 2^3 (mod 2^61-1), so fold three times to be
	// safe, then do a final conditional subtraction.
	r := (lo & MersennePrime61) + (lo >> 61) + (hi << 3 & MersennePrime61) + (hi >> 58)
	r = (r & MersennePrime61) + (r >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// MulMod61 returns a*b mod 2^61-1 for a, b < 2^61-1.
func MulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return reduce61(hi, lo)
}

// AddMod61 returns a+b mod 2^61-1 for a, b < 2^61-1.
func AddMod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// SubMod61 returns a-b mod 2^61-1 for a, b < 2^61-1.
func SubMod61(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + MersennePrime61 - b
}

// PowMod61 returns base^exp mod 2^61-1 by square-and-multiply.
func PowMod61(base, exp uint64) uint64 {
	result := uint64(1)
	base %= MersennePrime61
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod61(result, base)
		}
		base = MulMod61(base, base)
		exp >>= 1
	}
	return result
}

// InvMod61 returns the multiplicative inverse of a mod 2^61-1 (a != 0).
// p is prime, so a^(p-2) = a^{-1}.
func InvMod61(a uint64) uint64 {
	return PowMod61(a, MersennePrime61-2)
}

// Poly is a degree-(k-1) polynomial over F_p, giving a k-wise independent
// hash family: h(x) = c_{k-1} x^{k-1} + ... + c_1 x + c_0 mod p.
type Poly struct {
	coeffs []uint64
}

// NewPoly draws a uniform member of the k-wise independent family.
// k must be >= 1; k = 2 gives the pairwise-independent family used by the
// L0 sampler's level assignment.
func NewPoly(rng *xrand.RNG, k int) *Poly {
	if k < 1 {
		panic("hashing: NewPoly with k < 1")
	}
	c := make([]uint64, k)
	for i := range c {
		c[i] = rng.Uint64n(MersennePrime61)
	}
	// Guarantee the polynomial is non-constant when k >= 2 so the family
	// retains full pairwise independence over distinct points.
	if k >= 2 && c[k-1] == 0 {
		c[k-1] = 1
	}
	return &Poly{coeffs: c}
}

// Hash evaluates the polynomial at x (Horner's rule), returning a value in
// [0, p).
func (h *Poly) Hash(x uint64) uint64 {
	x %= MersennePrime61
	acc := uint64(0)
	for i := len(h.coeffs) - 1; i >= 0; i-- {
		acc = AddMod61(MulMod61(acc, x), h.coeffs[i])
	}
	return acc
}

// HashRange maps x into [0, m) by multiply-high on the field hash, which
// avoids the modulo bias of h(x) % m for m far below p.
func (h *Poly) HashRange(x, m uint64) uint64 {
	if m == 0 {
		panic("hashing: HashRange with m == 0")
	}
	hi, _ := bits.Mul64(h.Hash(x)<<3, m) // spread the 61-bit hash over 64 bits
	return hi
}

// Sign returns ±1 from one hash bit — the 4-wise independent sign hash used
// by CountSketch.
func (h *Poly) Sign(x uint64) int64 {
	if h.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// SpaceWords reports the words of state held by the hash function.
func (h *Poly) SpaceWords() int { return len(h.coeffs) }

// Fingerprint maintains the polynomial fingerprint F = sum_i c_i * r^i mod p
// of an integer vector c under turnstile updates.  It is the third component
// of the 1-sparse recovery test in the L0 sampler: a claimed singleton
// (index i, count c) is accepted only if F == c * r^i mod p, which fails for
// non-singletons with probability <= universe/p.
type Fingerprint struct {
	r   uint64
	acc uint64
}

// NewFingerprint draws a random evaluation point r in [1, p).
func NewFingerprint(rng *xrand.RNG) *Fingerprint {
	return &Fingerprint{r: 1 + rng.Uint64n(MersennePrime61-1)}
}

// Update applies c_i += delta for index i >= 0.
func (f *Fingerprint) Update(i uint64, delta int64) {
	term := MulMod61(modDelta(delta), PowMod61(f.r, i))
	f.acc = AddMod61(f.acc, term)
}

// Matches reports whether the fingerprint is consistent with the vector
// being exactly {i: count} (a single non-zero coordinate).
func (f *Fingerprint) Matches(i uint64, count int64) bool {
	want := MulMod61(modDelta(count), PowMod61(f.r, i))
	return f.acc == want
}

// Zero reports whether the fingerprint is consistent with the zero vector.
func (f *Fingerprint) Zero() bool { return f.acc == 0 }

// Acc returns the accumulator — the fingerprint's only mutable state (the
// evaluation point r is fixed at construction, so checkpointing a
// fingerprint needs nothing else when the constructor is replayed from the
// same RNG).
func (f *Fingerprint) Acc() uint64 { return f.acc }

// SetAcc overwrites the accumulator; used by snapshot restore after the
// construction RNG has re-derived the evaluation point.
func (f *Fingerprint) SetAcc(acc uint64) { f.acc = acc }

// Clone returns an independent copy (same evaluation point and state),
// used by peeling decoders that subtract recovered coordinates from a
// scratch copy.
func (f *Fingerprint) Clone() *Fingerprint {
	cp := *f
	return &cp
}

// SpaceWords reports the words of state held by the fingerprint.
func (f *Fingerprint) SpaceWords() int { return 2 }

// modDelta maps a signed delta into F_p.
func modDelta(d int64) uint64 {
	if d >= 0 {
		return uint64(d) % MersennePrime61
	}
	return SubMod61(0, uint64(-d)%MersennePrime61)
}

// MultiplyShift is the classic 2-approximately-universal multiply-shift
// hash into [0, 2^bits).  It is faster than Poly and used where speed
// matters more than full pairwise independence (bucket spreading in
// benchmarks).
type MultiplyShift struct {
	a    uint64
	bits uint
}

// NewMultiplyShift draws a random odd multiplier for a 2^bits range.
func NewMultiplyShift(rng *xrand.RNG, rangeBits uint) MultiplyShift {
	if rangeBits == 0 || rangeBits > 64 {
		panic("hashing: NewMultiplyShift with rangeBits out of (0, 64]")
	}
	return MultiplyShift{a: rng.Uint64() | 1, bits: rangeBits}
}

// Hash maps x into [0, 2^bits).
func (m MultiplyShift) Hash(x uint64) uint64 {
	return (m.a * x) >> (64 - m.bits)
}
