package stream

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func sampleUpdates(seed uint64, count int) []Update {
	rng := xrand.New(seed)
	ups := make([]Update, count)
	for i := range ups {
		ups[i] = Ins(rng.Int64n(1000), rng.Int64n(5000))
		if rng.Coin(0.3) {
			ups[i].Op = Delete
		}
	}
	return ups
}

func TestScannerMatchesReadFile(t *testing.T) {
	ups := sampleUpdates(1, 500)
	var buf bytes.Buffer
	if err := WriteFile(&buf, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.N() != 1000 || sc.M() != 5000 || sc.Total() != 500 {
		t.Fatalf("header n=%d m=%d total=%d", sc.N(), sc.M(), sc.Total())
	}
	var got []Update
	for sc.Scan() {
		got = append(got, sc.Update())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("scanned %d updates, want %d", len(got), len(ups))
	}
	for i := range got {
		if got[i] != ups[i] {
			t.Fatalf("update %d: %v, want %v", i, got[i], ups[i])
		}
	}
}

func TestScannerEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, 10, 10, nil); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Scan() {
		t.Fatal("Scan true on empty stream")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestScannerTruncated(t *testing.T) {
	ups := sampleUpdates(2, 100)
	var buf bytes.Buffer
	if err := WriteFile(&buf, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), ErrBadFormat) {
		t.Fatalf("Err = %v, want ErrBadFormat", sc.Err())
	}
}

func TestScannerRejectsBadHeader(t *testing.T) {
	if _, err := NewScanner(bytes.NewReader([]byte("nope"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v", err)
	}
	if _, err := NewScanner(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v", err)
	}
}

func TestAppenderRoundTrip(t *testing.T) {
	ups := sampleUpdates(3, 250)
	var buf bytes.Buffer
	ap, err := NewAppender(&buf, 1000, 5000, int64(len(ups)))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if err := ap.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	// The appender's output must be byte-identical to WriteFile's.
	var ref bytes.Buffer
	if err := WriteFile(&ref, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ref.Bytes()) {
		t.Fatal("Appender output differs from WriteFile")
	}
}

func TestAppenderCountEnforcement(t *testing.T) {
	var buf bytes.Buffer
	ap, err := NewAppender(&buf, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err == nil {
		t.Fatal("Close accepted 0 of 1 declared updates")
	}
	ap2, err := NewAppender(&buf, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap2.Append(Ins(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ap2.Append(Ins(2, 2)); err == nil {
		t.Fatal("Append beyond declared count accepted")
	}
	if _, err := NewAppender(&buf, 10, 10, -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

// TestScannerAppenderProperty: any update sequence round-trips through
// Appender -> Scanner unchanged.
func TestScannerAppenderProperty(t *testing.T) {
	check := func(seed uint64, sz uint16) bool {
		count := int(sz % 300)
		ups := sampleUpdates(seed, count)
		var buf bytes.Buffer
		ap, err := NewAppender(&buf, 1000, 5000, int64(count))
		if err != nil {
			return false
		}
		for _, u := range ups {
			if ap.Append(u) != nil {
				return false
			}
		}
		if ap.Close() != nil {
			return false
		}
		sc, err := NewScanner(&buf)
		if err != nil {
			return false
		}
		i := 0
		for sc.Scan() {
			if i >= count || sc.Update() != ups[i] {
				return false
			}
			i++
		}
		return sc.Err() == nil && i == count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
