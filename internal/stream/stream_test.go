package stream

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func TestValidateAccepts(t *testing.T) {
	ups := []Update{Ins(0, 0), Ins(1, 2), Del(0, 0), Ins(0, 0)}
	if i, err := Validate(ups, 2, 3); err != nil {
		t.Fatalf("valid stream rejected at %d: %v", i, err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		ups  []Update
		want error
	}{
		{"out of range A", []Update{Ins(5, 0)}, ErrVertexRange},
		{"out of range B", []Update{Ins(0, 9)}, ErrVertexRange},
		{"negative A", []Update{Ins(-1, 0)}, ErrVertexRange},
		{"double insert", []Update{Ins(0, 0), Ins(0, 0)}, ErrDoubleInsert},
		{"delete missing", []Update{Del(0, 0)}, ErrDeleteMissing},
		{"delete twice", []Update{Ins(0, 0), Del(0, 0), Del(0, 0)}, ErrDeleteMissing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Validate(tc.ups, 2, 3); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestMaterializeAndDegrees(t *testing.T) {
	ups := []Update{Ins(0, 0), Ins(0, 1), Ins(1, 0), Del(0, 1)}
	live := Materialize(ups)
	if len(live) != 2 {
		t.Fatalf("live edges = %d, want 2", len(live))
	}
	if _, ok := live[Edge{0, 1}]; ok {
		t.Fatal("deleted edge still live")
	}
	deg := Degrees(ups)
	if deg[0] != 1 || deg[1] != 1 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestDegreesDropsZero(t *testing.T) {
	ups := []Update{Ins(0, 0), Del(0, 0)}
	if deg := Degrees(ups); len(deg) != 0 {
		t.Fatalf("zero-degree vertex retained: %v", deg)
	}
}

func TestMaxDegree(t *testing.T) {
	ups := []Update{Ins(0, 0), Ins(1, 0), Ins(1, 1), Ins(2, 2)}
	v, d := MaxDegree(ups)
	if v != 1 || d != 2 {
		t.Fatalf("MaxDegree = (%d, %d), want (1, 2)", v, d)
	}
	if v, d := MaxDegree(nil); v != -1 || d != 0 {
		t.Fatalf("MaxDegree(empty) = (%d, %d)", v, d)
	}
}

func TestSummarize(t *testing.T) {
	ups := []Update{Ins(0, 0), Ins(0, 1), Ins(1, 0), Del(0, 0)}
	st := Summarize(ups)
	want := Stats{Updates: 4, Inserts: 3, Deletes: 1, LiveEdges: 2, ActiveA: 2, MaxDegreeA: 1}
	if st != want {
		t.Fatalf("Summarize = %+v, want %+v", st, want)
	}
}

func TestDegreeHistogramAndCountAtLeast(t *testing.T) {
	ups := []Update{Ins(0, 0), Ins(0, 1), Ins(0, 2), Ins(1, 0), Ins(2, 0), Ins(2, 1)}
	hist := DegreeHistogram(ups)
	if hist[1] != 1 || hist[2] != 1 || hist[3] != 1 {
		t.Fatalf("histogram = %v", hist)
	}
	if CountAtLeast(ups, 2) != 2 {
		t.Fatalf("CountAtLeast(2) = %d, want 2", CountAtLeast(ups, 2))
	}
	if CountAtLeast(ups, 4) != 0 {
		t.Fatalf("CountAtLeast(4) = %d, want 0", CountAtLeast(ups, 4))
	}
}

func TestEdgeKeyRoundTrip(t *testing.T) {
	f := func(aRaw, bRaw uint32, mRaw uint16) bool {
		m := int64(mRaw) + 1
		e := Edge{A: int64(aRaw), B: int64(bRaw) % m}
		return EdgeFromKey(e.Key(m), m) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(99)
	ups := make([]Update, 0, 500)
	for i := 0; i < 500; i++ {
		u := Ins(rng.Int64n(1000), rng.Int64n(5000))
		if rng.Coin(0.3) {
			u.Op = Delete
		}
		ups = append(ups, u)
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	n, m, got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 || m != 5000 {
		t.Fatalf("header = (%d, %d)", n, m)
	}
	if len(got) != len(ups) {
		t.Fatalf("decoded %d updates, want %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: got %v, want %v", i, got[i], ups[i])
		}
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, got, err := ReadFile(&buf); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, _, err := ReadFile(bytes.NewReader([]byte("NOPE----"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage accepted: %v", err)
	}
	if _, _, _, err := ReadFile(bytes.NewReader([]byte{'F', 'E'})); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated magic accepted: %v", err)
	}
}

func TestUpdateString(t *testing.T) {
	if s := Ins(1, 2).String(); s != "+(1,2)" {
		t.Errorf("Ins string = %q", s)
	}
	if s := Del(1, 2).String(); s != "-(1,2)" {
		t.Errorf("Del string = %q", s)
	}
}

func TestInserts(t *testing.T) {
	edges := []Edge{{1, 2}, {3, 4}}
	ups := Inserts(edges)
	for i, u := range ups {
		if u.Op != Insert || u.Edge != edges[i] {
			t.Fatalf("Inserts[%d] = %v", i, u)
		}
	}
}
