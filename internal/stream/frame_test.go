package stream

import (
	"bytes"
	"errors"
	"testing"
)

// scanAll drains a scanner, returning the updates and the terminal error.
func scanAll(sc *Scanner) ([]Update, error) {
	var got []Update
	for sc.Scan() {
		got = append(got, sc.Update())
	}
	return got, sc.Err()
}

func TestFrameWriterMatchesWriteFile(t *testing.T) {
	ups := sampleUpdates(3, 257)
	var whole, framed bytes.Buffer
	if err := WriteFile(&whole, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	if err := NewFrameWriter(&framed).WriteFrame(1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), framed.Bytes()) {
		t.Fatalf("WriteFrame diverged from WriteFile: %d vs %d bytes", framed.Len(), whole.Len())
	}
}

func TestFrameScannerConcatenatedFrames(t *testing.T) {
	ups := sampleUpdates(4, 1000)
	var body bytes.Buffer
	fw := NewFrameWriter(&body)
	// Uneven chunking, including an empty frame in the middle.
	for _, span := range [][2]int{{0, 400}, {400, 400}, {999, 999}, {400, 1000}} {
		if err := fw.WriteFrame(1000, 5000, ups[span[0]:span[1]]); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := NewFrameScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scanAll(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("scanned %d updates across frames, want %d", len(got), len(ups))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: got %v want %v", i, got[i], ups[i])
		}
	}
	if sc.Total() != int64(len(ups)) {
		t.Fatalf("Total = %d after all frames, want %d", sc.Total(), len(ups))
	}
	if sc.N() != 1000 || sc.M() != 5000 {
		t.Fatalf("universe n=%d m=%d", sc.N(), sc.M())
	}
}

func TestFrameScannerSingleFrameMatchesScanner(t *testing.T) {
	ups := sampleUpdates(5, 300)
	var body bytes.Buffer
	if err := WriteFile(&body, 1000, 5000, ups); err != nil {
		t.Fatal(err)
	}
	plain, err := NewScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	framed, err := NewFrameScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, errA := scanAll(plain)
	b, errB := scanAll(framed)
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v, %v", errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("plain scanned %d, framed %d", len(a), len(b))
	}
}

func TestFrameScannerRejectsUniverseChange(t *testing.T) {
	var body bytes.Buffer
	fw := NewFrameWriter(&body)
	if err := fw.WriteFrame(1000, 5000, []Update{Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(999, 5000, []Update{Ins(3, 4)}); err != nil {
		t.Fatal(err)
	}
	sc, err := NewFrameScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scanAll(sc)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("universe change across frames: err = %v, want ErrBadFormat", err)
	}
	if len(got) != 1 {
		t.Fatalf("scanned %d updates before the bad frame, want 1", len(got))
	}
}

func TestFrameScannerRejectsTruncatedLaterFrame(t *testing.T) {
	var body bytes.Buffer
	fw := NewFrameWriter(&body)
	if err := fw.WriteFrame(1000, 5000, []Update{Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(1000, 5000, []Update{Ins(3, 4), Ins(5, 6)}); err != nil {
		t.Fatal(err)
	}
	sc, err := NewFrameScanner(bytes.NewReader(body.Bytes()[:body.Len()-1]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scanAll(sc); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("truncated second frame: err = %v, want ErrBadFormat", err)
	}
}

func TestFrameScannerRejectsGarbageBetweenFrames(t *testing.T) {
	var body bytes.Buffer
	fw := NewFrameWriter(&body)
	if err := fw.WriteFrame(1000, 5000, []Update{Ins(1, 2)}); err != nil {
		t.Fatal(err)
	}
	body.WriteString("garbage")
	sc, err := NewFrameScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scanAll(sc); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage between frames: err = %v, want ErrBadFormat", err)
	}
}

func TestPlainScannerStillRejectsSecondFrame(t *testing.T) {
	var body bytes.Buffer
	fw := NewFrameWriter(&body)
	for i := 0; i < 2; i++ {
		if err := fw.WriteFrame(1000, 5000, []Update{Ins(1, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := NewScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scanAll(sc); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("NewScanner accepted a concatenated frame: err = %v", err)
	}
}

func TestFrameScannerEmptyOnlyFrame(t *testing.T) {
	var body bytes.Buffer
	if err := NewFrameWriter(&body).WriteFrame(1000, 5000, nil); err != nil {
		t.Fatal(err)
	}
	sc, err := NewFrameScanner(bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := scanAll(sc)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty frame: got %d updates, err %v", len(got), err)
	}
}
