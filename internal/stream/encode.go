package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary stream file format (used by cmd/fewwgen and cmd/fewwrun):
//
//	magic   [4]byte  "FEWW"
//	version uvarint  (currently 1)
//	n       uvarint  |A|
//	m       uvarint  |B|
//	count   uvarint  number of updates
//	count times:
//	    op    byte    0 = insert, 1 = delete
//	    a     uvarint
//	    b     uvarint

var fileMagic = [4]byte{'F', 'E', 'W', 'W'}

const fileVersion = 1

// ErrBadFormat is returned when decoding a malformed stream file.
var ErrBadFormat = errors.New("stream: bad file format")

// WriteFile encodes a stream with its universe sizes to w.
func WriteFile(w io.Writer, n, m int64, ups []Update) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	for _, v := range []uint64{fileVersion, uint64(n), uint64(m), uint64(len(ups))} {
		if err := writeUvarint(v); err != nil {
			return err
		}
	}
	for _, u := range ups {
		op := byte(0)
		if u.Op == Delete {
			op = 1
		}
		if err := bw.WriteByte(op); err != nil {
			return err
		}
		if err := writeUvarint(uint64(u.A)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(u.B)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile decodes a stream file written by WriteFile.
func ReadFile(r io.Reader) (n, m int64, ups []Update, err error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err = io.ReadFull(br, magic[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != fileMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != fileVersion {
		return 0, 0, nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	hdr := make([]uint64, 3)
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	n, m = int64(hdr[0]), int64(hdr[1])
	count := hdr[2]
	ups = make([]Update, 0, count)
	for i := uint64(0); i < count; i++ {
		op, err := br.ReadByte()
		if err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		b, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		u := Ins(int64(a), int64(b))
		if op == 1 {
			u.Op = Delete
		} else if op != 0 {
			return 0, 0, nil, fmt.Errorf("%w: bad op byte %d", ErrBadFormat, op)
		}
		ups = append(ups, u)
	}
	return n, m, ups, nil
}
