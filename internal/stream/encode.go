package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary stream file format (used by cmd/fewwgen and cmd/fewwrun):
//
//	magic   [4]byte  "FEWW"
//	version uvarint  (currently 1)
//	n       uvarint  |A|
//	m       uvarint  |B|
//	count   uvarint  number of updates
//	count times:
//	    op    byte    0 = insert, 1 = delete
//	    a     uvarint
//	    b     uvarint

var fileMagic = [4]byte{'F', 'E', 'W', 'W'}

const fileVersion = 1

// ErrBadFormat is returned when decoding a malformed stream file.
var ErrBadFormat = errors.New("stream: bad file format")

// WriteFile encodes a stream with its universe sizes to w.
func WriteFile(w io.Writer, n, m int64, ups []Update) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	for _, v := range []uint64{fileVersion, uint64(n), uint64(m), uint64(len(ups))} {
		if err := writeUvarint(v); err != nil {
			return err
		}
	}
	for _, u := range ups {
		op := byte(0)
		if u.Op == Delete {
			op = 1
		}
		if err := bw.WriteByte(op); err != nil {
			return err
		}
		if err := writeUvarint(uint64(u.A)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(u.B)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FrameWriter encodes FEWW frames — complete stream files, written back
// to back — reusing one internal buffer across frames, so a long-lived
// forwarding path (the cluster gateway's chunked split-forward loop) pays
// no per-frame allocation once the buffer has grown to the chunk size.
// Each frame is handed to the underlying writer as a single Write, which
// keeps io.Pipe hand-offs at one per frame.  A FrameWriter is not safe
// for concurrent use.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter emitting frames to w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// WriteFrame encodes one complete frame (header plus the updates) and
// writes it to the underlying writer.  The result is byte-identical to
// WriteFile with the same arguments; a sequence of WriteFrame calls is
// what NewFrameScanner consumes.
func (fw *FrameWriter) WriteFrame(n, m int64, ups []Update) error {
	buf := append(fw.buf[:0], fileMagic[:]...)
	for _, v := range []uint64{fileVersion, uint64(n), uint64(m), uint64(len(ups))} {
		buf = binary.AppendUvarint(buf, v)
	}
	for _, u := range ups {
		op := byte(0)
		if u.Op == Delete {
			op = 1
		}
		buf = append(buf, op)
		buf = binary.AppendUvarint(buf, uint64(u.A))
		buf = binary.AppendUvarint(buf, uint64(u.B))
	}
	fw.buf = buf
	_, err := fw.w.Write(buf)
	return err
}

// maxPreallocUpdates caps the slice capacity ReadFile trusts the header
// with.  A header is attacker-controlled input on a network ingest path,
// and its count field can claim 2^64-1 updates; beyond the cap the slice
// grows by append, so an over-count costs an error, not an allocation.
const maxPreallocUpdates = 1 << 20

// offsetReader counts consumed bytes so that decode errors can report
// exactly where the input went wrong — the difference between "bad
// upload" and "bad upload at byte 1048571 of a 1 GiB replay".
type offsetReader struct {
	br  *bufio.Reader
	off int64
}

func (r *offsetReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

func (r *offsetReader) Read(p []byte) (int, error) {
	nr, err := r.br.Read(p)
	r.off += int64(nr)
	return nr, err
}

// readHeader validates the magic/version prefix and returns the declared
// universe sizes and update count.
func readHeader(or *offsetReader) (n, m int64, count uint64, err error) {
	var magic [4]byte
	if _, err = io.ReadFull(or, magic[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: reading magic at byte %d: %v", ErrBadFormat, or.off, err)
	}
	if magic != fileMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	version, err := binary.ReadUvarint(or)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%w: reading version at byte %d: %v", ErrBadFormat, or.off, err)
	}
	if version != fileVersion {
		return 0, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	hdr := make([]uint64, 3)
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(or); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: reading header field %d at byte %d: %v", ErrBadFormat, i, or.off, err)
		}
	}
	return int64(hdr[0]), int64(hdr[1]), hdr[2], nil
}

// readUpdate decodes the i-th of count updates, reporting truncation with
// the byte offset it happened at.
func readUpdate(or *offsetReader, i, count uint64) (Update, error) {
	fail := func(what string, err error) (Update, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Update{}, fmt.Errorf("%w: truncated in %s of update %d of %d at byte %d: %v",
			ErrBadFormat, what, i, count, or.off, err)
	}
	op, err := or.ReadByte()
	if err != nil {
		return fail("op", err)
	}
	a, err := binary.ReadUvarint(or)
	if err != nil {
		return fail("item", err)
	}
	b, err := binary.ReadUvarint(or)
	if err != nil {
		return fail("witness", err)
	}
	u := Ins(int64(a), int64(b))
	if op == 1 {
		u.Op = Delete
	} else if op != 0 {
		return Update{}, fmt.Errorf("%w: bad op byte %d in update %d of %d at byte %d",
			ErrBadFormat, op, i, count, or.off)
	}
	return u, nil
}

// ReadFile decodes a stream file written by WriteFile.  Malformed input —
// truncated data, a count field exceeding the updates actually present, a
// bad op byte, or trailing bytes after the declared count — is rejected
// with an error wrapping ErrBadFormat that carries the byte offset of the
// fault.
func ReadFile(r io.Reader) (n, m int64, ups []Update, err error) {
	or := &offsetReader{br: bufio.NewReader(r)}
	n, m, count, err := readHeader(or)
	if err != nil {
		return 0, 0, nil, err
	}
	ups = make([]Update, 0, int(min(count, maxPreallocUpdates)))
	for i := uint64(0); i < count; i++ {
		u, err := readUpdate(or, i, count)
		if err != nil {
			return 0, 0, nil, err
		}
		ups = append(ups, u)
	}
	if _, err := or.ReadByte(); err == nil {
		return 0, 0, nil, fmt.Errorf("%w: trailing data after the %d declared updates at byte %d",
			ErrBadFormat, count, or.off-1)
	} else if err != io.EOF {
		return 0, 0, nil, fmt.Errorf("%w: at byte %d: %v", ErrBadFormat, or.off, err)
	}
	return n, m, ups, nil
}
