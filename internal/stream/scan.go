package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Scanner reads a stream file incrementally, one update at a time, so
// arbitrarily large files can be replayed in constant memory — the whole
// point of a streaming algorithm.  Usage mirrors bufio.Scanner:
//
//	sc, err := stream.NewScanner(f)
//	for sc.Scan() {
//	    u := sc.Update()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	current  Update
	err      error
	or       *offsetReader
	n, m     int64
	total    uint64 // updates declared in the current frame's header
	read     uint64 // updates read from the current frame
	declared uint64 // updates declared across all frames seen so far
	frame    int    // index of the current frame (0-based)
	frames   bool   // accept concatenated frames after the first
	eofCheck bool   // trailing-data probe already done
}

// NewScanner validates the header of a stream file and positions the
// scanner before the first update.  Header errors wrap ErrBadFormat with
// the byte offset of the fault.  The input must be exactly one frame:
// bytes after the declared update count are rejected (see NewFrameScanner
// for the multi-frame ingest variant).
func NewScanner(r io.Reader) (*Scanner, error) {
	return newScanner(r, false)
}

// NewFrameScanner is NewScanner for framed input: one or more complete
// FEWW streams concatenated back to back, scanned as one logical sequence
// of updates.  Every frame must declare the same universe sizes as the
// first — frames are a transport chunking, not a way to smuggle a second
// stream — and each frame is validated exactly as a standalone file
// (truncation, over-counts and bad ops are still errors with byte
// offsets).  A single-frame body behaves identically to NewScanner except
// that trailing data starting with a valid header is consumed as the next
// frame instead of rejected.  This is the wire format the cluster gateway
// streams to members: per-chunk frames written while the inbound request
// is still being parsed.
func NewFrameScanner(r io.Reader) (*Scanner, error) {
	return newScanner(r, true)
}

func newScanner(r io.Reader, frames bool) (*Scanner, error) {
	or := &offsetReader{br: bufio.NewReader(r)}
	n, m, total, err := readHeader(or)
	if err != nil {
		return nil, err
	}
	return &Scanner{or: or, n: n, m: m, total: total, declared: total, frames: frames}, nil
}

// N returns |A| from the header.
func (s *Scanner) N() int64 { return s.n }

// M returns |B| from the header.
func (s *Scanner) M() int64 { return s.m }

// Total returns the number of updates declared by the headers seen so
// far — for a single-frame stream, exactly the header's count; for a
// frame scanner, the running sum over the frames consumed.
func (s *Scanner) Total() int64 { return int64(s.declared) }

// Scan advances to the next update; it returns false at the end of the
// stream or on error (distinguish with Err).  A stream that ends before
// the declared count — an over-count header or a truncated transfer — is
// an error wrapping ErrBadFormat with the byte offset it was detected at,
// and so is input continuing past the declared count (checked by a
// one-byte probe once the count is reached).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.read == s.total {
		if !s.frames {
			s.checkTrailing()
			return false
		}
		if !s.nextFrame() {
			return false
		}
	}
	u, err := readUpdate(s.or, s.read, s.total)
	if err != nil {
		s.err = err
		return false
	}
	s.current = u
	s.read++
	return true
}

// nextFrame advances a frame scanner past the current frame's declared
// count: a clean EOF ends the stream, anything else must be the next
// frame's header, declaring the same universe sizes.  It returns false at
// the end of input or on error (recorded in s.err).
func (s *Scanner) nextFrame() bool {
	if _, err := s.or.br.Peek(1); err == io.EOF {
		return false
	} else if err != nil {
		s.err = fmt.Errorf("%w: at byte %d: %v", ErrBadFormat, s.or.off, err)
		return false
	}
	frameStart := s.or.off
	n, m, total, err := readHeader(s.or)
	if err != nil {
		s.err = err
		return false
	}
	if n != s.n || m != s.m {
		s.err = fmt.Errorf("%w: frame %d at byte %d declares universe n=%d m=%d, frame 0 declared n=%d m=%d",
			ErrBadFormat, s.frame+1, frameStart, n, m, s.n, s.m)
		return false
	}
	s.frame++
	s.total = total
	s.read = 0
	s.declared += total
	return true
}

// checkTrailing rejects bytes following the declared update count, the
// same way ReadFile does — a concatenated second stream or an
// under-counting header must not be silently dropped on the ingest path.
func (s *Scanner) checkTrailing() {
	if s.eofCheck {
		return
	}
	s.eofCheck = true
	if _, err := s.or.ReadByte(); err == nil {
		s.err = fmt.Errorf("%w: trailing data after the %d declared updates at byte %d",
			ErrBadFormat, s.total, s.or.off-1)
	} else if err != io.EOF {
		s.err = fmt.Errorf("%w: at byte %d: %v", ErrBadFormat, s.or.off, err)
	}
}

// Update returns the update read by the last successful Scan.
func (s *Scanner) Update() Update { return s.current }

// Offset returns the number of input bytes consumed so far — the resume
// point when replaying a partially ingested file.
func (s *Scanner) Offset() int64 { return s.or.off }

// Err returns the first error encountered, or nil at a clean end of
// stream.  A stream shorter than its header declares is an error.
func (s *Scanner) Err() error {
	if s.err != nil {
		return s.err
	}
	return nil
}

// Appender writes a stream file incrementally.  Because the on-disk header
// carries an update count, the total must be declared up front; Close
// verifies the declared and written counts agree.
type Appender struct {
	bw       *bufio.Writer
	declared uint64
	written  uint64
	buf      [binary.MaxVarintLen64]byte
	err      error
}

// NewAppender writes the header and returns an appender expecting exactly
// count updates.
func NewAppender(w io.Writer, n, m int64, count int64) (*Appender, error) {
	if count < 0 {
		return nil, fmt.Errorf("stream: NewAppender with count = %d", count)
	}
	a := &Appender{bw: bufio.NewWriter(w), declared: uint64(count)}
	if _, err := a.bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	for _, v := range []uint64{fileVersion, uint64(n), uint64(m), uint64(count)} {
		a.uvarint(v)
	}
	return a, a.err
}

func (a *Appender) uvarint(v uint64) {
	if a.err != nil {
		return
	}
	k := binary.PutUvarint(a.buf[:], v)
	_, a.err = a.bw.Write(a.buf[:k])
}

// Append writes one update.
func (a *Appender) Append(u Update) error {
	if a.err != nil {
		return a.err
	}
	if a.written == a.declared {
		a.err = fmt.Errorf("stream: Append beyond the declared count %d", a.declared)
		return a.err
	}
	op := byte(0)
	if u.Op == Delete {
		op = 1
	}
	if a.err = a.bw.WriteByte(op); a.err != nil {
		return a.err
	}
	a.uvarint(uint64(u.A))
	a.uvarint(uint64(u.B))
	if a.err == nil {
		a.written++
	}
	return a.err
}

// Close flushes and verifies that exactly the declared number of updates
// was written.
func (a *Appender) Close() error {
	if a.err != nil {
		return a.err
	}
	if a.written != a.declared {
		return fmt.Errorf("stream: Appender closed after %d of %d declared updates", a.written, a.declared)
	}
	return a.bw.Flush()
}
