package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Scanner reads a stream file incrementally, one update at a time, so
// arbitrarily large files can be replayed in constant memory — the whole
// point of a streaming algorithm.  Usage mirrors bufio.Scanner:
//
//	sc, err := stream.NewScanner(f)
//	for sc.Scan() {
//	    u := sc.Update()
//	    ...
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	br      *bufio.Reader
	n, m    int64
	total   uint64 // updates declared in the header
	read    uint64
	current Update
	err     error
}

// NewScanner validates the header of a stream file and positions the
// scanner before the first update.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	hdr := make([]uint64, 3)
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return &Scanner{br: br, n: int64(hdr[0]), m: int64(hdr[1]), total: hdr[2]}, nil
}

// N returns |A| from the header.
func (s *Scanner) N() int64 { return s.n }

// M returns |B| from the header.
func (s *Scanner) M() int64 { return s.m }

// Total returns the number of updates the header declares.
func (s *Scanner) Total() int64 { return int64(s.total) }

// Scan advances to the next update; it returns false at the end of the
// stream or on error (distinguish with Err).
func (s *Scanner) Scan() bool {
	if s.err != nil || s.read == s.total {
		return false
	}
	op, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return false
	}
	a, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return false
	}
	b, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		return false
	}
	switch op {
	case 0:
		s.current = Ins(int64(a), int64(b))
	case 1:
		s.current = Del(int64(a), int64(b))
	default:
		s.err = fmt.Errorf("%w: bad op byte %d", ErrBadFormat, op)
		return false
	}
	s.read++
	return true
}

// Update returns the update read by the last successful Scan.
func (s *Scanner) Update() Update { return s.current }

// Err returns the first error encountered, or nil at a clean end of
// stream.  A stream shorter than its header declares is an error.
func (s *Scanner) Err() error {
	if s.err != nil {
		return s.err
	}
	return nil
}

// Appender writes a stream file incrementally.  Because the on-disk header
// carries an update count, the total must be declared up front; Close
// verifies the declared and written counts agree.
type Appender struct {
	bw       *bufio.Writer
	declared uint64
	written  uint64
	buf      [binary.MaxVarintLen64]byte
	err      error
}

// NewAppender writes the header and returns an appender expecting exactly
// count updates.
func NewAppender(w io.Writer, n, m int64, count int64) (*Appender, error) {
	if count < 0 {
		return nil, fmt.Errorf("stream: NewAppender with count = %d", count)
	}
	a := &Appender{bw: bufio.NewWriter(w), declared: uint64(count)}
	if _, err := a.bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	for _, v := range []uint64{fileVersion, uint64(n), uint64(m), uint64(count)} {
		a.uvarint(v)
	}
	return a, a.err
}

func (a *Appender) uvarint(v uint64) {
	if a.err != nil {
		return
	}
	k := binary.PutUvarint(a.buf[:], v)
	_, a.err = a.bw.Write(a.buf[:k])
}

// Append writes one update.
func (a *Appender) Append(u Update) error {
	if a.err != nil {
		return a.err
	}
	if a.written == a.declared {
		a.err = fmt.Errorf("stream: Append beyond the declared count %d", a.declared)
		return a.err
	}
	op := byte(0)
	if u.Op == Delete {
		op = 1
	}
	if a.err = a.bw.WriteByte(op); a.err != nil {
		return a.err
	}
	a.uvarint(uint64(u.A))
	a.uvarint(uint64(u.B))
	if a.err == nil {
		a.written++
	}
	return a.err
}

// Close flushes and verifies that exactly the declared number of updates
// was written.
func (a *Appender) Close() error {
	if a.err != nil {
		return a.err
	}
	if a.written != a.declared {
		return fmt.Errorf("stream: Appender closed after %d of %d declared updates", a.written, a.declared)
	}
	return a.bw.Flush()
}
