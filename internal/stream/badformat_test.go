package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func encodedStream(t *testing.T, ups []Update) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFile(&buf, 100, 100, ups); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFileTruncationOffsets: every truncation point is rejected with
// ErrBadFormat, and the mid-body ones name a byte offset (the header is
// 4 bytes of magic + 4 one-byte varints here, so the body starts at 8).
func TestReadFileTruncationOffsets(t *testing.T) {
	good := encodedStream(t, []Update{Ins(1, 2), Del(1, 2), Ins(3, 4)})
	for cut := 0; cut < len(good); cut++ {
		_, _, _, err := ReadFile(bytes.NewReader(good[:cut]))
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("cut at %d: got %v, want ErrBadFormat", cut, err)
		}
		if cut >= 8 && !strings.Contains(err.Error(), "at byte") {
			t.Fatalf("cut at %d: error lacks byte offset: %v", cut, err)
		}
	}
}

// TestReadFileOverCount: a header declaring more updates than the body
// holds is a truncation error naming which update was cut off.
func TestReadFileOverCount(t *testing.T) {
	good := encodedStream(t, []Update{Ins(1, 2), Ins(3, 4)})
	// The count varint is the byte right before the first update's op
	// byte: magic(4) + version(1) + n(1) + m(1) -> index 7.
	bad := append([]byte(nil), good...)
	bad[7] = 9 // declare 9 updates, provide 2
	_, _, _, err := ReadFile(bytes.NewReader(bad))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat", err)
	}
	if !strings.Contains(err.Error(), "update 2 of 9") {
		t.Fatalf("error does not locate the missing update: %v", err)
	}
}

// TestReadFileHostileCount: a count field claiming 2^40 updates must fail
// cleanly on the missing data instead of pre-allocating terabytes.
func TestReadFileHostileCount(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("FEWW"))
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{1, 100, 100, 1 << 40} {
		k := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:k])
	}
	buf.Write([]byte{0, 1, 2}) // a single real update
	_, _, _, err := ReadFile(&buf)
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat", err)
	}
}

func TestReadFileTrailingData(t *testing.T) {
	good := encodedStream(t, []Update{Ins(1, 2)})
	bad := append(append([]byte(nil), good...), 0x00)
	_, _, _, err := ReadFile(bytes.NewReader(bad))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat", err)
	}
	if !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("error does not mention trailing data: %v", err)
	}
}

func TestReadFileBadOpOffset(t *testing.T) {
	good := encodedStream(t, []Update{Ins(1, 2), Ins(3, 4)})
	bad := append([]byte(nil), good...)
	bad[11] = 7 // second update's op byte (header 8 + op,a,b)
	_, _, _, err := ReadFile(bytes.NewReader(bad))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("got %v, want ErrBadFormat", err)
	}
	if !strings.Contains(err.Error(), "bad op byte 7") || !strings.Contains(err.Error(), "at byte") {
		t.Fatalf("error lacks op/offset context: %v", err)
	}
}

// TestScannerTrailingData: input continuing past the declared count —
// e.g. two concatenated frames in one request body — is an error, not a
// silent drop.
func TestScannerTrailingData(t *testing.T) {
	good := encodedStream(t, []Update{Ins(1, 2)})
	bad := append(append([]byte(nil), good...), good...) // two frames back to back
	sc, err := NewScanner(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for sc.Scan() {
		seen++
	}
	if seen != 1 {
		t.Fatalf("scanned %d updates, want 1", seen)
	}
	if !errors.Is(sc.Err(), ErrBadFormat) || !strings.Contains(sc.Err().Error(), "trailing data") {
		t.Fatalf("Err = %v, want ErrBadFormat trailing-data", sc.Err())
	}
}

// TestScannerOffsetAndTruncation: the scanner reports consumed bytes and
// rejects a mid-update truncation with offset context.
func TestScannerOffsetAndTruncation(t *testing.T) {
	ups := []Update{Ins(1, 2), Del(1, 2), Ins(3, 4)}
	good := encodedStream(t, ups)

	sc, err := NewScanner(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if got, want := sc.Offset(), int64(len(good)); got != want {
		t.Fatalf("Offset = %d, want %d", got, want)
	}

	sc, err = NewScanner(bytes.NewReader(good[:len(good)-1]))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if !errors.Is(sc.Err(), ErrBadFormat) {
		t.Fatalf("Err = %v, want ErrBadFormat", sc.Err())
	}
	if !strings.Contains(sc.Err().Error(), "update 2 of 3") {
		t.Fatalf("error does not locate the truncated update: %v", sc.Err())
	}
}
