// Package stream defines the edge-stream model from the paper (§2): the
// input is a bipartite graph G = (A, B, E) with |A| = n and |B| = m =
// poly(n), delivered either as an arbitrary-order sequence of edge
// insertions (insertion-only model) or as an arbitrary sequence of edge
// insertions and deletions (insertion-deletion model) under the simple-graph
// promise that every edge multiplicity stays in {0, 1}.
package stream

import (
	"errors"
	"fmt"
)

// Edge is an edge between an A-vertex and a B-vertex of the bipartite
// input graph.  In the frequent-elements view, A is the item that may be
// frequent and B is the witness (timestamp, source IP, follower, user, ...).
type Edge struct {
	A int64 // item / left vertex, in [0, n)
	B int64 // witness / right vertex, in [0, m)
}

// Op distinguishes insertions from deletions in the turnstile model.
type Op int8

const (
	// Insert adds the edge (multiplicity 0 -> 1).
	Insert Op = 1
	// Delete removes the edge (multiplicity 1 -> 0).
	Delete Op = -1
)

// Update is one stream element: an edge plus its sign.
type Update struct {
	Edge
	Op Op
}

// Ins is shorthand for an insertion update.
func Ins(a, b int64) Update { return Update{Edge: Edge{A: a, B: b}, Op: Insert} }

// Del is shorthand for a deletion update.
func Del(a, b int64) Update { return Update{Edge: Edge{A: a, B: b}, Op: Delete} }

// Inserts converts a slice of edges into insertion updates.
func Inserts(edges []Edge) []Update {
	ups := make([]Update, len(edges))
	for i, e := range edges {
		ups[i] = Update{Edge: e, Op: Insert}
	}
	return ups
}

// Key packs an edge into a single uint64 for hashing/sampling over the
// edge universe [0, n*m).  Callers must ensure 0 <= A < n and 0 <= B < m.
func (e Edge) Key(m int64) uint64 { return uint64(e.A)*uint64(m) + uint64(e.B) }

// EdgeFromKey is the inverse of Key.
func EdgeFromKey(key uint64, m int64) Edge {
	return Edge{A: int64(key / uint64(m)), B: int64(key % uint64(m))}
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.A, e.B) }

func (u Update) String() string {
	if u.Op == Delete {
		return "-" + u.Edge.String()
	}
	return "+" + u.Edge.String()
}

// Errors reported by Validate.
var (
	ErrVertexRange   = errors.New("stream: vertex id out of range")
	ErrDoubleInsert  = errors.New("stream: edge inserted while already present")
	ErrDeleteMissing = errors.New("stream: edge deleted while absent")
)

// Validate checks that a stream is a valid simple-graph turnstile stream
// over A = [0, n), B = [0, m): every vertex id in range, no duplicate
// insertion of a live edge, and no deletion of an absent edge.  It returns
// the index of the first offending update alongside the error.
func Validate(ups []Update, n, m int64) (int, error) {
	live := make(map[Edge]struct{})
	for i, u := range ups {
		if u.A < 0 || u.A >= n || u.B < 0 || u.B >= m {
			return i, fmt.Errorf("%w: update %d = %v with n=%d m=%d", ErrVertexRange, i, u, n, m)
		}
		_, present := live[u.Edge]
		switch u.Op {
		case Insert:
			if present {
				return i, fmt.Errorf("%w: update %d = %v", ErrDoubleInsert, i, u)
			}
			live[u.Edge] = struct{}{}
		case Delete:
			if !present {
				return i, fmt.Errorf("%w: update %d = %v", ErrDeleteMissing, i, u)
			}
			delete(live, u.Edge)
		default:
			return i, fmt.Errorf("stream: update %d has invalid op %d", i, u.Op)
		}
	}
	return -1, nil
}

// Materialize replays a stream and returns the final live edge set.
// It assumes (but does not check) stream validity.
func Materialize(ups []Update) map[Edge]struct{} {
	live := make(map[Edge]struct{})
	for _, u := range ups {
		if u.Op == Insert {
			live[u.Edge] = struct{}{}
		} else {
			delete(live, u.Edge)
		}
	}
	return live
}

// Degrees replays a stream and returns the final degree of every A-vertex
// with non-zero degree.
func Degrees(ups []Update) map[int64]int64 {
	deg := make(map[int64]int64)
	for _, u := range ups {
		deg[u.A] += int64(u.Op)
		if deg[u.A] == 0 {
			delete(deg, u.A)
		}
	}
	return deg
}

// MaxDegree returns the A-vertex of maximum final degree and that degree.
// Ties break toward the smaller vertex id; an empty graph yields (-1, 0).
func MaxDegree(ups []Update) (vertex int64, degree int64) {
	deg := Degrees(ups)
	vertex, degree = -1, 0
	for v, d := range deg {
		if d > degree || (d == degree && vertex != -1 && v < vertex) {
			vertex, degree = v, d
		}
	}
	return vertex, degree
}

// Stats summarises a stream for experiment reporting.
type Stats struct {
	Updates    int   // stream length
	Inserts    int   // number of insertions
	Deletes    int   // number of deletions
	LiveEdges  int   // |E| after replay
	ActiveA    int   // A-vertices with non-zero final degree
	MaxDegreeA int64 // maximum final A-degree (Δ in the paper)
}

// Summarize computes Stats in one replay pass.
func Summarize(ups []Update) Stats {
	var st Stats
	st.Updates = len(ups)
	deg := make(map[int64]int64)
	live := 0
	for _, u := range ups {
		if u.Op == Insert {
			st.Inserts++
			live++
		} else {
			st.Deletes++
			live--
		}
		deg[u.A] += int64(u.Op)
		if deg[u.A] == 0 {
			delete(deg, u.A)
		}
	}
	st.LiveEdges = live
	st.ActiveA = len(deg)
	for _, d := range deg {
		if d > st.MaxDegreeA {
			st.MaxDegreeA = d
		}
	}
	return st
}

// DegreeHistogram returns counts[i] = number of A-vertices with final
// degree exactly i, for i in [0, maxDeg]; vertices of degree 0 are omitted.
func DegreeHistogram(ups []Update) []int {
	deg := Degrees(ups)
	maxDeg := int64(0)
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for _, d := range deg {
		hist[d]++
	}
	return hist
}

// CountAtLeast returns the number of A-vertices with final degree >= t —
// the n_i quantities in the proof of Theorem 3.2.
func CountAtLeast(ups []Update, t int64) int {
	count := 0
	for _, d := range Degrees(ups) {
		if d >= t {
			count++
		}
	}
	return count
}
