// Package benchstat holds the small latency-accounting helpers shared by
// the load-generation commands (cmd/fewwbench, cmd/fewwload): a bounded
// latency sampler and quantile extraction.
package benchstat

import (
	"sort"
	"time"
)

// maxSamples bounds the retained latencies per Sampler.
const maxSamples = 1 << 16

// Sampler counts every observation but retains only a bounded, evenly
// strided subset for quantile estimates.  A barrier-free query path can
// serve millions of queries per second; retaining every latency would
// cost hundreds of MB and a giant sort.  Once the buffer fills, every
// other retained sample is dropped and the stride doubles, keeping
// memory flat while the kept samples stay evenly spaced over the run.
// Not safe for concurrent use — give each client goroutine its own.
type Sampler struct {
	count  int64
	stride int64
	lats   []time.Duration
}

// Observe records one latency observation.
func (s *Sampler) Observe(d time.Duration) {
	s.count++
	if s.stride == 0 {
		s.stride = 1
	}
	if s.count%s.stride != 0 {
		return
	}
	s.lats = append(s.lats, d)
	if len(s.lats) >= maxSamples {
		kept := s.lats[:0]
		for i := 1; i < len(s.lats); i += 2 {
			kept = append(kept, s.lats[i])
		}
		s.lats = kept
		s.stride *= 2
	}
}

// Count returns the total number of observations (not just retained ones).
func (s *Sampler) Count() int64 { return s.count }

// Merge combines the retained samples of several per-client samplers into
// one sorted slice, returning it with the total observation count.
func Merge(samplers []Sampler) (sorted []time.Duration, total int64) {
	for i := range samplers {
		sorted = append(sorted, samplers[i].lats...)
		total += samplers[i].count
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted, total
}

// Quantile returns the q-quantile of a sorted duration slice (0 when
// empty).
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// QuantileMicros is Quantile in microseconds, for JSON reports.
func QuantileMicros(sorted []time.Duration, q float64) float64 {
	return float64(Quantile(sorted, q).Nanoseconds()) / 1e3
}
