// Package distinct provides duplicate suppression and distinct-count
// estimation for edge streams.
//
// The paper's FEwW model assumes a *simple* bipartite graph: every edge
// (item, witness) arrives at most once, so witness counts are distinct
// counts.  Real logs repeat — the same source hits the same target twice —
// and the paper's DoS motivation [22] explicitly asks for *distinct*
// frequent elements.  This package bridges the gap:
//
//   - Filter deduplicates an edge stream (exactly, or space-bounded via a
//     Bloom filter, per the multi-stage Bloom filter line of work the
//     paper cites [11]) so the FEwW algorithms see each edge once;
//   - KMV estimates the number of distinct elements (F0) of a stream,
//     useful for choosing the threshold d before a second pass.
package distinct

import (
	"fmt"
	"math"

	"feww/internal/hashing"
	"feww/internal/xrand"
)

// Bloom is a classic Bloom filter over uint64 keys with k independent
// polynomial hash functions.
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	hs   []*hashing.Poly
	n    int64 // keys added
}

// NewBloom returns a filter with m bits (rounded up to a multiple of 64)
// and k hash functions.  For a target false-positive rate p at n keys, use
// m ~= -n ln p / (ln 2)^2 and k ~= (m/n) ln 2.
func NewBloom(rng *xrand.RNG, m uint64, k int) *Bloom {
	if m < 64 {
		m = 64
	}
	if k < 1 {
		k = 1
	}
	words := (m + 63) / 64
	b := &Bloom{bits: make([]uint64, words), m: words * 64}
	for i := 0; i < k; i++ {
		b.hs = append(b.hs, hashing.NewPoly(rng.Split(), 3))
	}
	return b
}

// BloomSizing returns (bits, hashes) for a target false-positive rate p at
// capacity n keys.
func BloomSizing(n int64, p float64) (m uint64, k int) {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	ln2 := math.Ln2
	mf := -float64(n) * math.Log(p) / (ln2 * ln2)
	kf := mf / float64(n) * ln2
	m = uint64(math.Ceil(mf))
	k = int(math.Round(kf))
	if k < 1 {
		k = 1
	}
	return m, k
}

// Add inserts a key.
func (b *Bloom) Add(key uint64) {
	b.n++
	for _, h := range b.hs {
		i := h.HashRange(key, b.m)
		b.bits[i/64] |= 1 << (i % 64)
	}
}

// MayContain reports whether key was possibly added.  False negatives never
// occur; false positives occur at the designed rate.
func (b *Bloom) MayContain(key uint64) bool {
	for _, h := range b.hs {
		i := h.HashRange(key, b.m)
		if b.bits[i/64]&(1<<(i%64)) == 0 {
			return false
		}
	}
	return true
}

// AddIfNew inserts the key and reports whether it was (probably) new —
// the test-and-set used for stream deduplication.
func (b *Bloom) AddIfNew(key uint64) bool {
	fresh := false
	for _, h := range b.hs {
		i := h.HashRange(key, b.m)
		if b.bits[i/64]&(1<<(i%64)) == 0 {
			fresh = true
		}
		b.bits[i/64] |= 1 << (i % 64)
	}
	if fresh {
		b.n++
	}
	return fresh
}

// EstimatedFPRate returns the filter's current theoretical false-positive
// rate (1 - e^{-kn/m})^k given the keys added so far.
func (b *Bloom) EstimatedFPRate() float64 {
	k := float64(len(b.hs))
	return math.Pow(1-math.Exp(-k*float64(b.n)/float64(b.m)), k)
}

// Added returns the number of (distinct) keys added.
func (b *Bloom) Added() int64 { return b.n }

// SpaceWords reports the bit array plus hash coefficients.
func (b *Bloom) SpaceWords() int {
	words := len(b.bits)
	for _, h := range b.hs {
		words += h.SpaceWords()
	}
	return words
}

// Filter deduplicates an edge stream so a downstream FEwW algorithm sees a
// simple graph.  Mode is chosen at construction: exact (a hash set, O(E)
// space, zero error) or bloom (space-bounded; a false positive silently
// drops a first occurrence, trading a small witness undercount for space —
// acceptable because FEwW's guarantee is itself approximate).
type Filter struct {
	exact map[uint64]struct{}
	bloom *Bloom
	m     int64 // B-universe width for edge keying
}

// NewExactFilter returns a zero-error deduplicator for edges over
// [0,n) x [0,m).
func NewExactFilter(m int64) *Filter {
	return &Filter{exact: make(map[uint64]struct{}), m: m}
}

// NewBloomFilter returns a space-bounded deduplicator sized for capacity
// distinct edges at the given false-positive rate.
func NewBloomFilter(rng *xrand.RNG, m int64, capacity int64, fpRate float64) *Filter {
	bits, k := BloomSizing(capacity, fpRate)
	return &Filter{bloom: NewBloom(rng, bits, k), m: m}
}

// Distinct reports whether edge (a, b) is new, recording it.  With a Bloom
// filter backing, a false positive makes a genuinely new edge report
// false (rate EstimatedFPRate); true is always correct.
func (f *Filter) Distinct(a, b int64) bool {
	key := uint64(a)*uint64(f.m) + uint64(b)
	if f.exact != nil {
		if _, dup := f.exact[key]; dup {
			return false
		}
		f.exact[key] = struct{}{}
		return true
	}
	return f.bloom.AddIfNew(key)
}

// SpaceWords reports the live state of the filter.
func (f *Filter) SpaceWords() int {
	if f.exact != nil {
		return 2 * len(f.exact)
	}
	return f.bloom.SpaceWords()
}

// KMV is the k-minimum-values distinct-count (F0) estimator: it keeps the
// k smallest hash values seen; with the k-th smallest at fraction v of the
// hash range, the estimate is (k-1)/v.  Standard error ~ 1/sqrt(k-2).
type KMV struct {
	k    int
	h    *hashing.Poly
	mins []uint64 // max-heap-free: kept sorted ascending, len <= k
	seen map[uint64]struct{}
}

// NewKMV returns an estimator keeping k minima (k >= 3 for finite
// variance).
func NewKMV(rng *xrand.RNG, k int) *KMV {
	if k < 3 {
		panic(fmt.Sprintf("distinct: NewKMV with k = %d, want >= 3", k))
	}
	return &KMV{
		k:    k,
		h:    hashing.NewPoly(rng.Split(), 2),
		seen: make(map[uint64]struct{}, k),
	}
}

// Add observes a key (duplicates are free).
func (s *KMV) Add(key uint64) {
	hv := s.h.Hash(key)
	if len(s.mins) == s.k && hv >= s.mins[s.k-1] {
		return
	}
	if _, dup := s.seen[hv]; dup {
		return
	}
	// Insert hv into the sorted minima.
	pos := len(s.mins)
	for pos > 0 && s.mins[pos-1] > hv {
		pos--
	}
	s.mins = append(s.mins, 0)
	copy(s.mins[pos+1:], s.mins[pos:])
	s.mins[pos] = hv
	s.seen[hv] = struct{}{}
	if len(s.mins) > s.k {
		evicted := s.mins[s.k]
		s.mins = s.mins[:s.k]
		delete(s.seen, evicted)
	}
}

// Estimate returns the estimated number of distinct keys added.
func (s *KMV) Estimate() float64 {
	if len(s.mins) < s.k {
		return float64(len(s.mins)) // exact below capacity
	}
	// Hash range is [0, 2^61-1) (Mersenne-prime field).
	v := float64(s.mins[s.k-1]) / float64(hashing.MersennePrime61)
	if v == 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / v
}

// SpaceWords reports the minima plus hash coefficients.
func (s *KMV) SpaceWords() int {
	return len(s.mins) + 2*len(s.seen) + s.h.SpaceWords()
}
