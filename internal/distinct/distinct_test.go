package distinct

import (
	"math"
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := xrand.New(1)
	m, k := BloomSizing(1000, 0.01)
	b := NewBloom(rng, m, k)
	for i := uint64(0); i < 1000; i++ {
		b.Add(i * 2654435761)
	}
	for i := uint64(0); i < 1000; i++ {
		if !b.MayContain(i * 2654435761) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	rng := xrand.New(2)
	const n = 5000
	m, k := BloomSizing(n, 0.01)
	b := NewBloom(rng, m, k)
	for i := uint64(0); i < n; i++ {
		b.Add(i)
	}
	fp := 0
	const probes = 20000
	for i := uint64(n); i < n+probes; i++ {
		if b.MayContain(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // designed 1%, allow 3x
		t.Fatalf("false-positive rate %.4f, designed 0.01", rate)
	}
	if est := b.EstimatedFPRate(); est > 0.02 {
		t.Fatalf("EstimatedFPRate = %.4f, want ~0.01", est)
	}
}

func TestBloomAddIfNew(t *testing.T) {
	rng := xrand.New(3)
	b := NewBloom(rng, 1<<14, 4)
	if !b.AddIfNew(42) {
		t.Fatal("first insertion reported as duplicate")
	}
	if b.AddIfNew(42) {
		t.Fatal("second insertion reported as new")
	}
	if b.Added() != 1 {
		t.Fatalf("Added = %d, want 1", b.Added())
	}
}

func TestBloomSizing(t *testing.T) {
	m, k := BloomSizing(1000, 0.01)
	// Textbook: m ~ 9.59 bits/key, k ~ 7.
	if m < 9000 || m > 11000 {
		t.Fatalf("m = %d, want ~9600", m)
	}
	if k < 6 || k > 8 {
		t.Fatalf("k = %d, want ~7", k)
	}
	// Degenerate inputs fall back to sane defaults.
	if m, k = BloomSizing(0, -1); m == 0 || k < 1 {
		t.Fatalf("degenerate sizing m=%d k=%d", m, k)
	}
}

func TestExactFilter(t *testing.T) {
	f := NewExactFilter(100)
	if !f.Distinct(1, 2) {
		t.Fatal("first edge not distinct")
	}
	if f.Distinct(1, 2) {
		t.Fatal("duplicate edge reported distinct")
	}
	if !f.Distinct(2, 1) {
		t.Fatal("(2,1) confused with (1,2)")
	}
	if f.SpaceWords() != 4 {
		t.Fatalf("SpaceWords = %d, want 4", f.SpaceWords())
	}
}

// TestBloomFilterDedup: over a random multigraph stream, the Bloom-backed
// filter never passes a duplicate, and drops only a small fraction of
// first occurrences (false positives).
func TestBloomFilterDedup(t *testing.T) {
	rng := xrand.New(5)
	f := NewBloomFilter(rng, 1000, 5000, 0.01)
	type edge struct{ a, b int64 }
	passed := make(map[edge]bool)
	firsts, dropped := 0, 0
	seen := make(map[edge]bool)
	for i := 0; i < 20000; i++ {
		e := edge{rng.Int64n(200), rng.Int64n(25)} // dense: many duplicates
		isFirst := !seen[e]
		seen[e] = true
		if f.Distinct(e.a, e.b) {
			if passed[e] {
				t.Fatalf("duplicate edge %v passed the filter", e)
			}
			passed[e] = true
		} else if isFirst {
			dropped++
		}
		if isFirst {
			firsts++
		}
	}
	if rate := float64(dropped) / float64(firsts); rate > 0.05 {
		t.Fatalf("dropped %.2f%% of first occurrences, want < 5%%", 100*rate)
	}
}

func TestKMVExactBelowCapacity(t *testing.T) {
	rng := xrand.New(7)
	s := NewKMV(rng, 64)
	for i := uint64(0); i < 40; i++ {
		s.Add(i)
		s.Add(i) // duplicates are free
	}
	if got := s.Estimate(); got != 40 {
		t.Fatalf("Estimate = %v, want exactly 40 below capacity", got)
	}
}

func TestKMVAccuracy(t *testing.T) {
	rng := xrand.New(8)
	const k, truth = 256, 50000
	s := NewKMV(rng, k)
	for i := uint64(0); i < truth; i++ {
		s.Add(i)
		if i%3 == 0 {
			s.Add(i) // sprinkle duplicates
		}
	}
	got := s.Estimate()
	relErr := math.Abs(got-truth) / truth
	// Standard error ~ 1/sqrt(k-2) ~ 6.3%; allow 4 sigma.
	if relErr > 0.25 {
		t.Fatalf("Estimate = %.0f for %d distinct (rel err %.2f)", got, truth, relErr)
	}
}

func TestKMVPanicsOnTinyK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKMV(xrand.New(1), 2)
}

// TestKMVOrderInvariance: the estimate depends only on the key set, not
// the arrival order or duplicate pattern.
func TestKMVOrderInvariance(t *testing.T) {
	check := func(seed uint64) bool {
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i) * 11400714819323198485
		}
		a := NewKMV(xrand.New(9), 32)
		for _, k := range keys {
			a.Add(k)
		}
		b := NewKMV(xrand.New(9), 32) // same hash (same seed)
		rng := xrand.New(seed)
		perm := rng.Perm(len(keys))
		for _, i := range perm {
			b.Add(keys[i])
			b.Add(keys[perm[0]]) // extra duplicates
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceWordsPositive(t *testing.T) {
	rng := xrand.New(11)
	b := NewBloom(rng, 1<<10, 3)
	if b.SpaceWords() <= 0 {
		t.Fatal("bloom SpaceWords not positive")
	}
	s := NewKMV(rng, 8)
	s.Add(1)
	if s.SpaceWords() <= 0 {
		t.Fatal("kmv SpaceWords not positive")
	}
}

func BenchmarkBloomAddIfNew(b *testing.B) {
	rng := xrand.New(1)
	f := NewBloom(rng, 1<<20, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddIfNew(uint64(i))
	}
}

func BenchmarkKMVAdd(b *testing.B) {
	s := NewKMV(xrand.New(1), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i))
	}
}
