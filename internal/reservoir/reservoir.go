// Package reservoir implements Vitter's Algorithm R reservoir sampling
// [38], the primitive underlying the Deg-Res-Sampling subroutine
// (Algorithm 1 in the paper): at any moment the reservoir holds a uniform
// random size-s sample of the items offered so far (or all of them, if
// fewer than s were offered).
package reservoir

import "feww/internal/xrand"

// Reservoir maintains a uniform random sample of size at most s over the
// items offered to it.  The zero value is not usable; construct with New.
type Reservoir[T any] struct {
	items []T
	s     int
	seen  int64 // the counter x in Algorithm 1
	rng   *xrand.RNG
}

// New returns a reservoir of capacity s drawing randomness from rng.
func New[T any](rng *xrand.RNG, s int) *Reservoir[T] {
	if s <= 0 {
		panic("reservoir: New with s <= 0")
	}
	return &Reservoir[T]{items: make([]T, 0, min(s, 1024)), s: s, rng: rng}
}

// Offer presents an item to the reservoir.  It returns whether the item was
// admitted and, if admission evicted a previous occupant, that occupant.
// This mirrors lines 6-12 of Algorithm 1: the x-th offered item is admitted
// with probability s/x, replacing a uniform random occupant.
func (r *Reservoir[T]) Offer(item T) (admitted bool, evicted T, didEvict bool) {
	r.seen++
	if len(r.items) < r.s {
		r.items = append(r.items, item)
		return true, evicted, false
	}
	if !r.rng.Coin(float64(r.s) / float64(r.seen)) {
		return false, evicted, false
	}
	victim := r.rng.Intn(r.s)
	evicted = r.items[victim]
	r.items[victim] = item
	return true, evicted, true
}

// OfferBatch offers every item in order, invoking onAdmit for each admitted
// item and onEvict for each occupant an admission displaced (either callback
// may be nil).  The reservoir state and random stream afterwards are
// identical to calling Offer once per item; the batched form exists so the
// engine's ingest path hands over a slice instead of paying one call per
// stream element.
func (r *Reservoir[T]) OfferBatch(items []T, onAdmit func(T), onEvict func(T)) {
	for _, item := range items {
		admitted, evicted, didEvict := r.Offer(item)
		if didEvict && onEvict != nil {
			onEvict(evicted)
		}
		if admitted && onAdmit != nil {
			onAdmit(item)
		}
	}
}

// Items returns the current sample.  The returned slice is the reservoir's
// backing store; callers must not modify it.
func (r *Reservoir[T]) Items() []T { return r.items }

// Len returns the current number of sampled items.
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Cap returns the reservoir capacity s.
func (r *Reservoir[T]) Cap() int { return r.s }

// Seen returns how many items have been offered so far.
func (r *Reservoir[T]) Seen() int64 { return r.seen }

// RNG exposes the reservoir's generator so checkpointing code can persist
// its state alongside the sample.
func (r *Reservoir[T]) RNG() *xrand.RNG { return r.rng }

// Restore reconstructs a reservoir from checkpointed state: the sampled
// items, the offered-item counter, and the generator to draw future
// randomness from.  It panics on inconsistent state (len(items) > s or a
// seen counter below the sample size), mirroring New's contract.
func Restore[T any](rng *xrand.RNG, s int, items []T, seen int64) *Reservoir[T] {
	if s <= 0 {
		panic("reservoir: Restore with s <= 0")
	}
	if len(items) > s {
		panic("reservoir: Restore with more items than capacity")
	}
	if seen < int64(len(items)) {
		panic("reservoir: Restore with seen < len(items)")
	}
	return &Reservoir[T]{items: items, s: s, seen: seen, rng: rng}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
