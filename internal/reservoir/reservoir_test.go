package reservoir

import (
	"math"
	"testing"

	"feww/internal/xrand"
)

func TestStoresAllWhenUnderCapacity(t *testing.T) {
	r := New[int](xrand.New(1), 10)
	for i := 0; i < 7; i++ {
		admitted, _, evicted := r.Offer(i)
		if !admitted || evicted {
			t.Fatalf("item %d: admitted=%v evicted=%v", i, admitted, evicted)
		}
	}
	if r.Len() != 7 {
		t.Fatalf("Len = %d, want 7", r.Len())
	}
	seen := make(map[int]bool)
	for _, v := range r.Items() {
		seen[v] = true
	}
	for i := 0; i < 7; i++ {
		if !seen[i] {
			t.Fatalf("item %d missing", i)
		}
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	r := New[int](xrand.New(2), 5)
	for i := 0; i < 1000; i++ {
		r.Offer(i)
		if r.Len() > 5 {
			t.Fatalf("reservoir overflowed to %d", r.Len())
		}
	}
	if r.Seen() != 1000 {
		t.Fatalf("Seen = %d", r.Seen())
	}
}

func TestEvictionBookkeeping(t *testing.T) {
	r := New[int](xrand.New(3), 3)
	live := make(map[int]bool)
	for i := 0; i < 500; i++ {
		admitted, evicted, didEvict := r.Offer(i)
		if didEvict && !admitted {
			t.Fatal("evicted without admitting")
		}
		if didEvict {
			if !live[evicted] {
				t.Fatalf("evicted %d which was not live", evicted)
			}
			delete(live, evicted)
		}
		if admitted {
			live[i] = true
		}
	}
	if len(live) != r.Len() {
		t.Fatalf("bookkeeping mismatch: %d live vs %d in reservoir", len(live), r.Len())
	}
	for _, v := range r.Items() {
		if !live[v] {
			t.Fatalf("reservoir holds %d not in live set", v)
		}
	}
}

// TestUniformity checks the defining property: after offering N items to a
// size-s reservoir, every item is present with probability s/N.
func TestUniformity(t *testing.T) {
	const n, s, trials = 40, 8, 20000
	counts := make([]int, n)
	rng := xrand.New(4)
	for trial := 0; trial < trials; trial++ {
		r := New[int](rng.Split(), s)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(trials) * s / n
	sigma := math.Sqrt(want * (1 - float64(s)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("item %d sampled %d times, want ~%.0f (±%.0f)", i, c, want, 6*sigma)
		}
	}
}

func TestSizeOneReservoir(t *testing.T) {
	// A size-1 reservoir over N items keeps each with probability 1/N.
	const n, trials = 10, 30000
	counts := make([]int, n)
	rng := xrand.New(5)
	for trial := 0; trial < trials; trial++ {
		r := New[int](rng.Split(), 1)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		counts[r.Items()[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("item %d kept %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with s=0 did not panic")
		}
	}()
	New[int](xrand.New(6), 0)
}

// TestOfferBatchMatchesOffer checks the batched entry point: identical
// final state and random stream as per-item Offer, with the admit/evict
// callbacks reporting exactly the per-item outcomes.
func TestOfferBatchMatchesOffer(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}

	seq := New[int](xrand.New(9), 8)
	var seqAdmits, seqEvicts []int
	for _, it := range items {
		admitted, evicted, didEvict := seq.Offer(it)
		if admitted {
			seqAdmits = append(seqAdmits, it)
		}
		if didEvict {
			seqEvicts = append(seqEvicts, evicted)
		}
	}

	bat := New[int](xrand.New(9), 8)
	var batAdmits, batEvicts []int
	bat.OfferBatch(items,
		func(it int) { batAdmits = append(batAdmits, it) },
		func(ev int) { batEvicts = append(batEvicts, ev) })

	if len(batAdmits) != len(seqAdmits) || len(batEvicts) != len(seqEvicts) {
		t.Fatalf("callback counts diverged: %d/%d admits, %d/%d evicts",
			len(batAdmits), len(seqAdmits), len(batEvicts), len(seqEvicts))
	}
	for i := range seqAdmits {
		if batAdmits[i] != seqAdmits[i] {
			t.Fatalf("admit %d: batched %d, sequential %d", i, batAdmits[i], seqAdmits[i])
		}
	}
	for i := range seqEvicts {
		if batEvicts[i] != seqEvicts[i] {
			t.Fatalf("evict %d: batched %d, sequential %d", i, batEvicts[i], seqEvicts[i])
		}
	}
	if bat.Seen() != seq.Seen() || bat.Len() != seq.Len() {
		t.Fatalf("state diverged: seen %d/%d, len %d/%d", bat.Seen(), seq.Seen(), bat.Len(), seq.Len())
	}
	for i, v := range seq.Items() {
		if bat.Items()[i] != v {
			t.Fatalf("sample diverged at %d: %d vs %d", i, bat.Items()[i], v)
		}
	}
	// Nil callbacks are allowed.
	bat.OfferBatch(items[:10], nil, nil)
}
