package reservoir

import (
	"testing"

	"feww/internal/xrand"
)

func TestRestoreRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	r := New[int](rng, 3)
	for i := 0; i < 10; i++ {
		r.Offer(i)
	}
	items := append([]int(nil), r.Items()...)
	seen := r.Seen()
	state := r.RNG().State()

	rng2 := xrand.New(0)
	rng2.SetState(state)
	r2 := Restore(rng2, 3, items, seen)

	if r2.Seen() != seen || r2.Len() != len(items) || r2.Cap() != 3 {
		t.Fatalf("restored reservoir: seen=%d len=%d cap=%d", r2.Seen(), r2.Len(), r2.Cap())
	}
	// Continuing both reservoirs with identical offers keeps them in
	// lockstep (same RNG stream).
	for i := 10; i < 200; i++ {
		a1, _, _ := r.Offer(i)
		a2, _, _ := r2.Offer(i)
		if a1 != a2 {
			t.Fatalf("offer %d: admitted %v vs %v", i, a1, a2)
		}
	}
	for i, v := range r.Items() {
		if r2.Items()[i] != v {
			t.Fatalf("items diverged: %v vs %v", r.Items(), r2.Items())
		}
	}
}

func TestRestorePanicsOnBadState(t *testing.T) {
	cases := []struct {
		name  string
		s     int
		items []int
		seen  int64
	}{
		{"zero capacity", 0, nil, 0},
		{"overfull", 2, []int{1, 2, 3}, 3},
		{"seen below items", 3, []int{1, 2}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Restore(xrand.New(1), c.s, c.items, c.seen)
		})
	}
}

func TestRNGAccessor(t *testing.T) {
	rng := xrand.New(5)
	r := New[string](rng, 2)
	if r.RNG() != rng {
		t.Fatal("RNG() does not return the construction generator")
	}
}
