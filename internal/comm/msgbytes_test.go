package comm

import (
	"testing"

	"feww/internal/xrand"
)

// TestMessageBytesRecorded: the protocol simulations built on InsertOnly
// report the serialised message size alongside the word count — the
// concrete bit-string the lower bounds constrain.  Bytes must be positive
// and at least as large as the semantic word count would suggest is
// plausible (a word is 8 bytes, but the snapshot also carries headers and
// RNG state, so we only check consistency bounds).
func TestMessageBytesRecorded(t *testing.T) {
	rng := xrand.New(1)
	inst, err := NewSetDisjointness(rng, 3, 600, 80, true)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := SolveSetDisjointness(inst, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMsgBytes <= 0 {
		t.Fatal("MaxMsgBytes not recorded")
	}
	if stats.MaxMsgWords <= 0 {
		t.Fatal("MaxMsgWords not recorded")
	}
	// A snapshot serialises at least the degree table the word count
	// includes, so bytes cannot be tiny relative to words.
	if stats.MaxMsgBytes < stats.MaxMsgWords {
		t.Fatalf("bytes %d below words %d — snapshot incomplete?", stats.MaxMsgBytes, stats.MaxMsgWords)
	}

	bvl, err := NewBitVectorLearning(xrand.New(2), 3, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveBitVectorLearning(bvl, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMsgBytes <= 0 {
		t.Fatal("BVL MaxMsgBytes not recorded")
	}
}
