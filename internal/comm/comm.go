// Package comm implements the one-way communication problems that drive
// the paper's lower bounds, together with the reductions that turn a FEwW
// streaming algorithm into a protocol for each problem:
//
//   - Set-Disjointness_p (Problem 3) and the reduction of Theorem 4.1
//     (insertion-only, the Omega(n/alpha^2) bound);
//   - Bit-Vector-Learning(p, n, k) (Problem 4) and the reduction of
//     Theorem 4.8 (insertion-only, the Omega(d n^{1/(p-1)} / alpha^2)
//     bound), including the exact worked instances of Figures 1 and 2;
//   - Augmented-Matrix-Row-Index(n, m, k) (Problem 5) and the protocol of
//     Lemma 6.3 (insertion-deletion, the Omega~(d n / alpha^2) bound),
//     including the exact worked instance of Figure 3;
//   - Baranyai's theorem (Theorem 4.4), the hypergraph 1-factorisation used
//     in the Bit-Vector-Learning information bound, as an executable
//     construction.
//
// The "parties" are simulated in-process: each party runs the streaming
// algorithm over its own edge set and hands the live memory state to the
// next party, exactly as in the paper's reductions.  Message size is
// measured as the algorithm's accounted space in words — the quantity the
// lower bounds constrain.
package comm

// ProtocolStats records what a simulated protocol did, for the experiment
// tables.
type ProtocolStats struct {
	Parties      int
	MaxMsgWords  int // maximum memory-state size handed between parties, in words
	MaxMsgBytes  int // the same message as serialised bytes (core.Snapshot), 0 if unsupported
	TotalEdges   int // edges streamed across all parties
	Correct      bool
	OutputDetail string
}
