package comm

import (
	"testing"

	"feww/internal/xrand"
)

func TestSetDisjointnessGeneration(t *testing.T) {
	rng := xrand.New(1)
	for _, intersect := range []bool{false, true} {
		inst, err := NewSetDisjointness(rng, 4, 200, 20, intersect)
		if err != nil {
			t.Fatal(err)
		}
		if len(inst.Sets) != 4 {
			t.Fatalf("parties = %d", len(inst.Sets))
		}
		// Count pairwise intersections.
		counts := make(map[int]int)
		for _, set := range inst.Sets {
			seen := make(map[int]bool)
			for _, e := range set {
				if e < 0 || e >= 200 {
					t.Fatalf("element %d out of universe", e)
				}
				if seen[e] {
					t.Fatalf("duplicate element %d within a set", e)
				}
				seen[e] = true
				counts[e]++
			}
		}
		inAll := 0
		for _, c := range counts {
			if c > 1 && c < 4 {
				t.Fatalf("element shared by %d < p parties: promise violated", c)
			}
			if c == 4 {
				inAll++
			}
		}
		if intersect && inAll != 1 {
			t.Fatalf("intersecting instance has %d common elements, want 1", inAll)
		}
		if !intersect && inAll != 0 {
			t.Fatalf("disjoint instance has %d common elements", inAll)
		}
	}
}

func TestSolveSetDisjointness(t *testing.T) {
	rng := xrand.New(2)
	const trials = 10
	for _, intersect := range []bool{false, true} {
		wrong := 0
		for trial := 0; trial < trials; trial++ {
			inst, err := NewSetDisjointness(rng, 3, 150, 15, intersect)
			if err != nil {
				t.Fatal(err)
			}
			ans, stats, err := SolveSetDisjointness(inst, 4, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if ans != intersect {
				wrong++
			}
			if stats.MaxMsgWords <= 0 {
				t.Fatal("no message size recorded")
			}
		}
		if wrong > 1 {
			t.Fatalf("intersect=%v: %d/%d wrong answers", intersect, wrong, trials)
		}
	}
}

func TestBVLFigure1Instance(t *testing.T) {
	inst := Figure1Instance()
	// The concatenated strings quoted in the Figure 1 caption.
	want := map[int]string{
		0: "1001011011",
		1: "01000",
		2: "01011",
		3: "011110101000011",
	}
	for j, w := range want {
		got := ""
		for _, b := range inst.Z(j) {
			got += string('0' + b)
		}
		if got != w {
			t.Fatalf("Z_%d = %s, want %s", j+1, got, w)
		}
	}
	if inst.RequiredBits() != 6 {
		t.Fatalf("RequiredBits = %d; the caption requires at least 6 positions", inst.RequiredBits())
	}
	if lv := inst.Level(3); lv != 3 {
		t.Fatalf("index 4 participates in %d levels, want 3", lv)
	}
	if lv := inst.Level(1); lv != 1 {
		t.Fatalf("index 2 participates in %d levels, want 1", lv)
	}
}

func TestBVLFigure2Encoding(t *testing.T) {
	// Figure 2: reading the B_1-slots Alice connects a4 to, left-to-right,
	// spells Y^4_1 = 01111.
	inst := Figure1Instance()
	edges := inst.PartyEdges(0) // Alice
	var bits []byte
	for _, e := range edges {
		if e[0] == 3 { // vertex a4
			_, pos, bit := inst.DecodeWitness(e[1])
			for len(bits) <= pos {
				bits = append(bits, 0)
			}
			bits[pos] = bit
		}
	}
	got := ""
	for _, b := range bits {
		got += string('0' + b)
	}
	if got != "01111" {
		t.Fatalf("decoded a4 bits = %s, want 01111", got)
	}
	// Alice's slots all live in the first 2k B-columns.
	for _, e := range edges {
		if e[1] < 0 || e[1] >= int64(2*inst.K) {
			t.Fatalf("Alice edge column %d outside [0, 2k)", e[1])
		}
	}
}

func TestBVLGeneratedInstanceShape(t *testing.T) {
	rng := xrand.New(3)
	inst, err := NewBitVectorLearning(rng, 3, 25, 8) // r = 5
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.X[0]) != 25 || len(inst.X[1]) != 5 || len(inst.X[2]) != 1 {
		t.Fatalf("level sizes = %d/%d/%d, want 25/5/1", len(inst.X[0]), len(inst.X[1]), len(inst.X[2]))
	}
	// Nesting.
	in := func(xs []int, v int) bool {
		for _, x := range xs {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := 1; i < 3; i++ {
		for _, v := range inst.X[i] {
			if !in(inst.X[i-1], v) {
				t.Fatalf("X_%d element %d not in X_%d", i+1, v, i)
			}
		}
	}
	// Z-length = k * level count.
	deep := inst.X[2][0]
	if got := len(inst.Z(deep)); got != 3*8 {
		t.Fatalf("deep Z length = %d, want 24", got)
	}
}

func TestBVLRejectsNonPower(t *testing.T) {
	rng := xrand.New(4)
	if _, err := NewBitVectorLearning(rng, 3, 24, 8); err == nil {
		t.Fatal("n=24 accepted for p=3 (not a perfect square)")
	}
}

func TestSolveBitVectorLearning(t *testing.T) {
	rng := xrand.New(5)
	const trials = 10
	good := 0
	for trial := 0; trial < trials; trial++ {
		inst, err := NewBitVectorLearning(rng, 3, 49, 10) // r = 7
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveBitVectorLearning(inst, 100+uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if res.AllCorrect && res.EnoughBits {
			good++
		} else if len(res.LearnedBits) > 0 && !res.AllCorrect {
			t.Fatalf("trial %d: learned an incorrect bit — witnesses must be genuine", trial)
		}
	}
	if good < trials-2 {
		t.Fatalf("protocol succeeded only %d/%d times", good, trials)
	}
}

func TestSolveBVLFigure1(t *testing.T) {
	// The figure's instance is tiny; run the full reduction end to end.
	inst := Figure1Instance()
	succeeded := false
	for seed := uint64(0); seed < 5 && !succeeded; seed++ {
		res, err := SolveBitVectorLearning(inst, seed)
		if err != nil {
			t.Fatal(err)
		}
		succeeded = res.AllCorrect && res.EnoughBits
	}
	if !succeeded {
		t.Fatal("reduction failed on the Figure 1 instance across 5 seeds")
	}
}
