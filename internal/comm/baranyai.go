package comm

import (
	"fmt"
	"math/big"
	"sort"

	"feww/internal/maxflow"
)

// Baranyai's theorem (Theorem 4.4 in the paper, [7]): for k | n, the set of
// all k-subsets of [n] can be partitioned into C(n,k)*k/n classes, each of
// which is itself a partition of [n] into n/k blocks (a "1-factor" of the
// complete k-uniform hypergraph).  The paper uses this purely inside the
// Bit-Vector-Learning information bound, to split the conditional mutual
// information across factors; here it is made executable so the gadget can
// be inspected and tested.
//
// Factorise uses the round-robin circle method for k = 2 (the classic
// 1-factorisation of K_n) and, for the general case, the constructive form
// of Baranyai's own proof: elements of [n] are added one at a time, and an
// integral maximum flow rounds the fractional assignment of the new element
// to the partial blocks of each class.  The flow step is guaranteed to
// saturate by the theorem itself, so the construction never backtracks.

// Binomial returns C(n, k).  It panics if the value overflows int64.
func Binomial(n, k int) int {
	v := new(big.Int).Binomial(int64(n), int64(k))
	if !v.IsInt64() {
		panic("comm: Binomial overflow")
	}
	return int(v.Int64())
}

// Factorise returns a Baranyai 1-factorisation of the complete k-uniform
// hypergraph on [0, n): a slice of C(n,k)*k/n classes, each class a slice
// of n/k pairwise-disjoint k-subsets covering [0, n).  Requires k | n.
func Factorise(n, k int) ([][][]int, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("comm: baranyai: bad parameters n=%d k=%d", n, k)
	}
	if n%k != 0 {
		return nil, fmt.Errorf("comm: baranyai: k=%d does not divide n=%d", k, n)
	}
	switch {
	case k == n:
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return [][][]int{{all}}, nil
	case k == 1:
		class := make([][]int, n)
		for i := range class {
			class[i] = []int{i}
		}
		return [][][]int{class}, nil
	case k == 2:
		return roundRobin(n), nil
	default:
		return flowFactorise(n, k)
	}
}

// roundRobin is the circle method: fix vertex n-1 and rotate the rest,
// producing the n-1 perfect matchings of K_n (n even).
func roundRobin(n int) [][][]int {
	rounds := make([][][]int, 0, n-1)
	ring := make([]int, n-1)
	for i := range ring {
		ring[i] = i
	}
	for r := 0; r < n-1; r++ {
		match := [][]int{{ring[0], n - 1}}
		for i := 1; i <= (n-2)/2; i++ {
			a, b := ring[i], ring[len(ring)-i]
			if a > b {
				a, b = b, a
			}
			match = append(match, []int{a, b})
		}
		rounds = append(rounds, match)
		last := ring[len(ring)-1]
		copy(ring[1:], ring[:len(ring)-1])
		ring[0] = last
	}
	return rounds
}

// flowFactorise is the constructive proof of Baranyai's theorem.
//
// Invariant after processing elements 0..i-1: each of the M = C(n,k)*k/n
// classes holds n/k "partial blocks" (disjoint subsets of the processed
// prefix, some possibly empty) that partition {0, ..., i-1}, and every
// nonempty subset A of the prefix with |A| <= k occurs as a partial block
// in exactly C(n-i, k-|A|) classes — the number of k-subsets of [n] whose
// intersection with the prefix is exactly A.
//
// To add element i, each class must place i into exactly one of its blocks
// of size < k.  A bipartite flow network — classes on the left (supply 1),
// distinct block contents A on the right (demand C(n-i-1, k-|A|-1), the
// required multiplicity of A ∪ {i} at the next stage) — has a fractional
// feasible solution (send (k-|A|)/(n-i) along each class-block pair, per
// the proof), so an integral one exists and the Dinic solve saturates.
func flowFactorise(n, k int) ([][][]int, error) {
	numClasses := Binomial(n, k) * k / n
	blocksPerClass := n / k

	// classes[c] holds blocksPerClass partial blocks.
	classes := make([][][]int, numClasses)
	for c := range classes {
		classes[c] = make([][]int, blocksPerClass)
		for b := range classes[c] {
			classes[c][b] = []int{}
		}
	}

	for i := 0; i < n; i++ {
		// Collect the distinct extendable block contents across all classes.
		type rightNode struct {
			node   int
			demand int64
		}
		right := make(map[string]*rightNode)
		keys := make([]string, 0)

		g := maxflow.New()
		s := g.AddNode()
		classNode := g.AddNodes(numClasses)

		// Per class, one arc to each distinct extendable content.
		type classArc struct {
			class int
			key   string
			arcID int
		}
		var classArcs []classArc
		for c := range classes {
			seen := make(map[string]bool)
			for _, blk := range classes[c] {
				if len(blk) >= k {
					continue
				}
				key := blockKey(blk)
				if seen[key] {
					continue // identical empty slots: capacity 1 suffices
				}
				seen[key] = true
				rn, ok := right[key]
				if !ok {
					rn = &rightNode{
						node:   g.AddNode(),
						demand: int64(Binomial(n-i-1, k-len(blk)-1)),
					}
					right[key] = rn
					keys = append(keys, key)
				}
				id := g.AddArc(classNode+c, rn.node, 1)
				classArcs = append(classArcs, classArc{class: c, key: key, arcID: id})
			}
		}
		t := g.AddNode()
		for c := 0; c < numClasses; c++ {
			g.AddArc(s, classNode+c, 1)
		}
		for _, key := range keys {
			rn := right[key]
			g.AddArc(rn.node, t, rn.demand)
		}

		if got := g.Solve(s, t); got != int64(numClasses) {
			// Cannot happen when the invariant holds; guard against bugs.
			return nil, fmt.Errorf("comm: baranyai: flow %d < %d classes at element %d (n=%d k=%d)", got, numClasses, i, n, k)
		}

		// Apply the integral assignment: element i joins the chosen block.
		for _, ca := range classArcs {
			if g.Flow(ca.arcID) != 1 {
				continue
			}
			placed := false
			for b, blk := range classes[ca.class] {
				if len(blk) < k && blockKey(blk) == ca.key {
					classes[ca.class][b] = append(blk, i)
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("comm: baranyai: internal error placing element %d", i)
			}
		}
	}
	return classes, nil
}

// blockKey canonicalises a partial block's contents (blocks are built in
// increasing element order, so no sort is needed, but sort defensively).
func blockKey(blk []int) string {
	if !sort.IntsAreSorted(blk) {
		blk = append([]int(nil), blk...)
		sort.Ints(blk)
	}
	buf := make([]byte, 0, 3*len(blk))
	for _, e := range blk {
		buf = append(buf, byte(e), byte(e>>8), ',')
	}
	return string(buf)
}

func enumerateSubsets(n, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v <= n-(k-len(cur)); v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func maskOf(s []int) uint64 {
	var m uint64
	for _, e := range s {
		m |= 1 << uint(e)
	}
	return m
}

// VerifyFactorisation checks the Theorem 4.4 properties: the class count
// is C(n,k)*k/n, every class is a partition of [0, n) into n/k blocks of
// size k, and every k-subset appears exactly once overall.
func VerifyFactorisation(n, k int, classes [][][]int) error {
	if n%k != 0 {
		return fmt.Errorf("k does not divide n")
	}
	wantClasses := Binomial(n, k) * k / n
	if len(classes) != wantClasses {
		return fmt.Errorf("got %d classes, want %d", len(classes), wantClasses)
	}
	seen := make(map[uint64]bool)
	for ci, class := range classes {
		if len(class) != n/k {
			return fmt.Errorf("class %d has %d blocks, want %d", ci, len(class), n/k)
		}
		var cover uint64
		for _, block := range class {
			if len(block) != k {
				return fmt.Errorf("class %d has a block of size %d, want %d", ci, len(block), k)
			}
			m := maskOf(block)
			if cover&m != 0 {
				return fmt.Errorf("class %d has overlapping blocks", ci)
			}
			cover |= m
			if seen[m] {
				return fmt.Errorf("block %v appears twice", block)
			}
			seen[m] = true
		}
		if cover != (uint64(1)<<uint(n))-1 {
			return fmt.Errorf("class %d does not cover [0, %d)", ci, n)
		}
	}
	if len(seen) != Binomial(n, k) {
		return fmt.Errorf("got %d distinct blocks, want %d", len(seen), Binomial(n, k))
	}
	return nil
}
