package comm

import (
	"fmt"
	"math"

	"feww/internal/core"
	"feww/internal/xrand"
)

// BitVectorLearning is an instance of the p-party Bit-Vector-Learning
// problem (Problem 4): nested index sets X_1 = [n] ⊇ X_2 ⊇ ... ⊇ X_p with
// |X_i| = n^{1-(i-1)/(p-1)}, and for every level i and index j in X_i a
// uniform k-bit string Y_i^j.  Z_j is the concatenation of j's strings over
// the levels containing j; party p must output an index I and at least
// ceil(1.01k) correct bits of Z_I.
type BitVectorLearning struct {
	P, N, K int
	X       [][]int    // X[i] = level-(i+1) index set, ascending
	Y       [][][]byte // Y[i][j] = k bits of Y_{i+1}^j, nil if j not in X[i]
}

// Level returns the number of levels index j participates in (the sets are
// nested, so participation is a prefix of levels).
func (b *BitVectorLearning) Level(j int) int {
	lv := 0
	for i := 0; i < b.P; i++ {
		if b.Y[i][j] != nil {
			lv = i + 1
		}
	}
	return lv
}

// Z returns the concatenated string Z_j.
func (b *BitVectorLearning) Z(j int) []byte {
	var out []byte
	for i := 0; i < b.P; i++ {
		out = append(out, b.Y[i][j]...)
	}
	return out
}

// RequiredBits returns ceil(1.01 k), the number of bits party p must emit.
func (b *BitVectorLearning) RequiredBits() int {
	return int(math.Ceil(1.01 * float64(b.K)))
}

// NewBitVectorLearning generates a uniform instance.  n must satisfy
// n^{1/(p-1)} integral (the paper's simplifying divisibility condition);
// pass n = r^(p-1) for an integer ratio r >= 2.
func NewBitVectorLearning(rng *xrand.RNG, p, n, k int) (*BitVectorLearning, error) {
	if p < 2 || n < 2 || k < 1 {
		return nil, fmt.Errorf("comm: bvl: bad parameters p=%d n=%d k=%d", p, n, k)
	}
	r := int(math.Round(math.Pow(float64(n), 1/float64(p-1))))
	if pow(r, p-1) != n {
		return nil, fmt.Errorf("comm: bvl: n = %d is not a perfect (p-1)=%d power", n, p-1)
	}
	inst := &BitVectorLearning{P: p, N: n, K: k}
	inst.X = make([][]int, p)
	inst.Y = make([][][]byte, p)
	cur := make([]int, n)
	for j := range cur {
		cur[j] = j
	}
	size := n
	for i := 0; i < p; i++ {
		inst.X[i] = append([]int(nil), cur...)
		inst.Y[i] = make([][]byte, n)
		for _, j := range cur {
			bits := make([]byte, k)
			for t := range bits {
				bits[t] = byte(rng.Uint64() & 1)
			}
			inst.Y[i][j] = bits
		}
		if i == p-1 {
			break
		}
		// X_{i+1} is a uniform subset of X_i of size size/r.
		size /= r
		pick := rng.Subset(len(cur), size)
		next := make([]int, size)
		for t, idx := range pick {
			next[t] = cur[idx]
		}
		cur = next
	}
	return inst, nil
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// Figure1Instance constructs the exact Bit-Vector-Learning(3, 4, 5)
// instance of Figure 1 (Alice, Bob, Charlie), using 0-based indices:
// paper index j corresponds to slot j-1.
func Figure1Instance() *BitVectorLearning {
	parse := func(s string) []byte {
		out := make([]byte, len(s))
		for i := range s {
			out[i] = s[i] - '0'
		}
		return out
	}
	inst := &BitVectorLearning{P: 3, N: 4, K: 5}
	inst.X = [][]int{{0, 1, 2, 3}, {0, 3}, {3}}
	inst.Y = [][][]byte{
		{parse("10010"), parse("01000"), parse("01011"), parse("01111")}, // Alice
		{parse("11011"), nil, nil, parse("01010")},                       // Bob
		{nil, nil, nil, parse("00011")},                                  // Charlie
	}
	return inst
}

// PartyEdges returns party i's edge set (0-based party index) under the
// Theorem 4.8 reduction: for each index ℓ in X_i and bit position j in
// [0, k), the edge (ℓ, 2k*i + 2*j + Y_i^ℓ[j]).  B-vertex ids live in
// [0, 2kp); reading the chosen B-slots of a vertex left-to-right spells its
// bit string, exactly as Figure 2 illustrates.
func (b *BitVectorLearning) PartyEdges(i int) [][2]int64 {
	var edges [][2]int64
	for _, l := range b.X[i] {
		bits := b.Y[i][l]
		for j := 0; j < b.K; j++ {
			col := int64(2*b.K*i + 2*j + int(bits[j]))
			edges = append(edges, [2]int64{int64(l), col})
		}
	}
	return edges
}

// DecodeWitness maps a B-vertex id back to (level, bitPos, bitValue) —
// the inverse of the PartyEdges encoding.
func (b *BitVectorLearning) DecodeWitness(col int64) (level, bitPos int, bit byte) {
	level = int(col) / (2 * b.K)
	rem := int(col) % (2 * b.K)
	return level, rem / 2, byte(rem % 2)
}

// BVLResult is the outcome of the Theorem 4.8 protocol simulation.
type BVLResult struct {
	Index        int           // the index I output by party p
	LearnedBits  map[int]byte  // position in Z_I -> learned bit value
	AllCorrect   bool          // every learned bit matches Z_I
	EnoughBits   bool          // at least ceil(1.01 k) bits learned
	Stats        ProtocolStats //
	RunSucceeded []bool        // per-Deg-Res-run success, for diagnostics
	_            [0]func()     // prevent unkeyed literals
}

// SolveBitVectorLearning runs the Theorem 4.8 reduction: the p parties
// stream their reduction edges through one FEwW(n, d = k*p) algorithm with
// alpha = p-1 (so the output has ceil(kp/(p-1)) >= 1.01k witnesses for
// p <= 100) and party p decodes the returned neighbourhood into bits of
// Z_I.  Every A-vertex in X_p has degree exactly k*p, satisfying the
// promise.
func SolveBitVectorLearning(inst *BitVectorLearning, seed uint64) (*BVLResult, error) {
	p := inst.P
	if p < 2 || p > 100 {
		return nil, fmt.Errorf("comm: bvl reduction supports 2 <= p <= 100, got %d", p)
	}
	alpha := p - 1
	d := int64(inst.K * p)
	algo, err := core.NewInsertOnly(core.InsertOnlyConfig{
		N:     int64(inst.N),
		D:     d,
		Alpha: alpha,
		Seed:  seed,
	})
	if err != nil {
		return nil, err
	}
	res := &BVLResult{LearnedBits: make(map[int]byte)}
	res.Stats.Parties = p
	for i := 0; i < p; i++ {
		for _, e := range inst.PartyEdges(i) {
			algo.ProcessEdge(e[0], e[1])
			res.Stats.TotalEdges++
		}
		if w := algo.SpaceWords(); w > res.Stats.MaxMsgWords {
			res.Stats.MaxMsgWords = w
		}
		if b := algo.SnapshotSize(); b > res.Stats.MaxMsgBytes {
			res.Stats.MaxMsgBytes = b
		}
	}
	res.RunSucceeded = algo.RunSucceeded()
	nb, resErr := algo.Result()
	if resErr != nil {
		return res, nil // protocol failed this time; caller counts it
	}
	res.Index = int(nb.A)
	truth := inst.Z(res.Index)
	res.AllCorrect = true
	for _, col := range nb.Witnesses {
		level, bitPos, bit := inst.DecodeWitness(col)
		pos := level*inst.K + bitPos // position within Z_I (levels are nested prefixes)
		res.LearnedBits[pos] = bit
		if pos >= len(truth) || truth[pos] != bit {
			res.AllCorrect = false
		}
	}
	res.EnoughBits = len(res.LearnedBits) >= inst.RequiredBits()
	res.Stats.Correct = res.AllCorrect && res.EnoughBits
	res.Stats.OutputDetail = fmt.Sprintf("index=%d learned=%d/%d", res.Index, len(res.LearnedBits), inst.RequiredBits())
	return res, nil
}
