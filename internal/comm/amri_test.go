package comm

import (
	"testing"

	"feww/internal/xrand"
)

func TestFigure3Instance(t *testing.T) {
	inst := Figure3Instance()
	if inst.N != 4 || inst.M != 6 || inst.K != 2 {
		t.Fatalf("dimensions = (%d, %d, %d)", inst.N, inst.M, inst.K)
	}
	if inst.J != 2 {
		t.Fatalf("J = %d, want row 3 (0-based 2)", inst.J)
	}
	if inst.Known[inst.J] != nil {
		t.Fatal("Bob knows positions in his own row")
	}
	for i, known := range inst.Known {
		if i == inst.J {
			continue
		}
		if len(known) != inst.M-inst.K {
			t.Fatalf("row %d: Bob knows %d positions, want %d", i, len(known), inst.M-inst.K)
		}
	}
	// Row 3 of the figure (0-based row 2) is 000010.
	want := []byte{0, 0, 0, 0, 1, 0}
	for j, b := range want {
		if inst.X[2][j] != b {
			t.Fatalf("X[2] = %v, want %v", inst.X[2], want)
		}
	}
}

func TestNewAMRIShape(t *testing.T) {
	rng := xrand.New(1)
	inst, err := NewAMRI(rng, 10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst.J < 0 || inst.J >= 10 {
		t.Fatalf("J = %d", inst.J)
	}
	for i := 0; i < 10; i++ {
		if i == inst.J {
			if inst.Known[i] != nil {
				t.Fatal("row J has known positions")
			}
			continue
		}
		if len(inst.Known[i]) != 5 {
			t.Fatalf("row %d: %d known positions, want 5", i, len(inst.Known[i]))
		}
		for _, pos := range inst.Known[i] {
			if pos < 0 || pos >= 8 {
				t.Fatalf("position %d out of range", pos)
			}
		}
	}
}

func TestSolveAMRI(t *testing.T) {
	// AMRI(n, 2d, d/alpha - 1) with n = 12, d = 8, alpha = 2 => m = 16,
	// k = 3.  The Lemma 6.3 protocol must reconstruct row J exactly.
	rng := xrand.New(2)
	const trials = 4
	wrong := 0
	for trial := 0; trial < trials; trial++ {
		inst, err := NewAMRI(rng, 12, 16, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveAMRI(inst, 2, 500+uint64(trial), 0.05, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			wrong++
			t.Logf("trial %d: got  %v", trial, res.Row)
			t.Logf("trial %d: want %v (ones=%d zeros=%d)", trial, inst.X[inst.J], res.OnesFound, res.ZerosFnd)
		}
		if res.Stats.MaxMsgWords <= 0 {
			t.Fatal("no message size recorded")
		}
	}
	if wrong > 1 {
		t.Fatalf("row reconstruction failed %d/%d trials", wrong, trials)
	}
}

func TestSolveAMRIValidation(t *testing.T) {
	rng := xrand.New(3)
	inst, err := NewAMRI(rng, 8, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	// m = 10 => d = 5; alpha = 2 => want k = d/alpha - 1 = 1, not 2.
	if _, err := SolveAMRI(inst, 2, 1, 0.05, 1); err == nil {
		t.Fatal("mismatched k accepted")
	}
	odd, err := NewAMRI(rng, 8, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveAMRI(odd, 2, 1, 0.05, 1); err == nil {
		t.Fatal("odd m accepted")
	}
}

func TestBaranyaiSmallCases(t *testing.T) {
	cases := [][2]int{{4, 2}, {6, 2}, {8, 2}, {6, 3}, {4, 4}, {5, 1}, {8, 4}, {6, 1}}
	for _, c := range cases {
		n, k := c[0], c[1]
		classes, err := Factorise(n, k)
		if err != nil {
			t.Fatalf("Factorise(%d, %d): %v", n, k, err)
		}
		if err := VerifyFactorisation(n, k, classes); err != nil {
			t.Fatalf("Factorise(%d, %d) invalid: %v", n, k, err)
		}
	}
}

func TestBaranyaiNineChooseThree(t *testing.T) {
	if testing.Short() {
		t.Skip("backtracking case skipped in -short mode")
	}
	classes, err := Factorise(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFactorisation(9, 3, classes); err != nil {
		t.Fatal(err)
	}
}

func TestBaranyaiRejectsNonDivisor(t *testing.T) {
	if _, err := Factorise(7, 2); err == nil {
		t.Fatal("k=2 does not divide n=7 but was accepted")
	}
	if _, err := Factorise(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Factorise(4, 5); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]int{
		{4, 2}: 6, {6, 3}: 20, {8, 4}: 70, {9, 3}: 84, {5, 0}: 1, {5, 5}: 1,
	}
	for in, want := range cases {
		if got := Binomial(in[0], in[1]); got != want {
			t.Errorf("Binomial(%d, %d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}
