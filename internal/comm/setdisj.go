package comm

import (
	"fmt"

	"feww/internal/core"
	"feww/internal/xrand"
)

// SetDisjointness is an instance of the p-party one-way Set-Disjointness
// problem (Problem 3): p subsets of a universe of size n that are either
// pairwise disjoint or uniquely intersecting.
type SetDisjointness struct {
	N          int
	Sets       [][]int // Sets[i] = party i's subset of [0, N)
	Intersects bool    // ground truth
}

// NewSetDisjointness generates an instance with p parties over [0, n),
// giving each party setSize elements.  If intersect, all sets share exactly
// one common element; otherwise they are pairwise disjoint.  Requires
// p*setSize <= n (disjoint support must fit).
func NewSetDisjointness(rng *xrand.RNG, p, n, setSize int, intersect bool) (*SetDisjointness, error) {
	if p < 2 {
		return nil, fmt.Errorf("comm: setdisj: p = %d, want >= 2", p)
	}
	if p*setSize+1 > n {
		return nil, fmt.Errorf("comm: setdisj: p*setSize+1 = %d exceeds n = %d", p*setSize+1, n)
	}
	// Draw p*setSize distinct elements to deal out, plus one spare that
	// becomes the unique common element in the intersecting case.
	pool := rng.Subset(n, p*setSize+1)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	common := pool[p*setSize]
	inst := &SetDisjointness{N: n, Intersects: intersect}
	inst.Sets = make([][]int, p)
	for i := 0; i < p; i++ {
		inst.Sets[i] = append([]int(nil), pool[i*setSize:(i+1)*setSize]...)
		if intersect {
			inst.Sets[i][rng.Intn(setSize)] = common
		}
	}
	return inst, nil
}

// SolveSetDisjointness runs the Theorem 4.1 reduction: for block size k,
// set d = k*p, and translate party i's set S_i into the edges
// {(u, b) : u in S_i, b in [(i-1)*k, i*k)}.  If the sets are pairwise
// disjoint every A-vertex has degree exactly k; if they uniquely intersect
// the common element has degree d = k*p.  An algorithm with approximation
// alpha = p-1 (< p/1.01 for p <= 100) outputs ceil(kp/(p-1)) >= k+1
// witnesses exactly when the sets intersect — witnesses are genuine edges,
// so a disjoint instance can never produce more than k.
//
// The parties share one algorithm instance sequentially, mirroring the
// memory-state handoff; MaxMsgWords records the largest state handed over.
func SolveSetDisjointness(inst *SetDisjointness, k int, seed uint64) (answerIntersects bool, stats ProtocolStats, err error) {
	p := len(inst.Sets)
	if p > 100 {
		return false, stats, fmt.Errorf("comm: setdisj reduction supports p <= 100, got %d", p)
	}
	alpha := p - 1
	if alpha < 1 {
		alpha = 1
	}
	d := int64(k * p)
	algo, err := core.NewInsertOnly(core.InsertOnlyConfig{
		N:     int64(inst.N),
		D:     d,
		Alpha: alpha,
		Seed:  seed,
	})
	if err != nil {
		return false, stats, err
	}
	stats.Parties = p
	for i, set := range inst.Sets {
		for _, u := range set {
			for b := i * k; b < (i+1)*k; b++ {
				algo.ProcessEdge(int64(u), int64(b))
				stats.TotalEdges++
			}
		}
		if w := algo.SpaceWords(); w > stats.MaxMsgWords {
			stats.MaxMsgWords = w
		}
		if b := algo.SnapshotSize(); b > stats.MaxMsgBytes {
			stats.MaxMsgBytes = b
		}
	}
	nb, resErr := algo.Result()
	answerIntersects = resErr == nil && nb.Size() >= k+1
	stats.Correct = answerIntersects == inst.Intersects
	stats.OutputDetail = fmt.Sprintf("witnesses=%d threshold=%d", nb.Size(), k+1)
	return answerIntersects, stats, nil
}
