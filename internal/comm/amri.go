package comm

import (
	"fmt"
	"math"

	"feww/internal/core"
	"feww/internal/xrand"
)

// AugmentedMatrixRowIndex is an instance of the two-party
// Augmented-Matrix-Row-Index(n, m, k) problem (Problem 5): Alice holds a
// uniform binary n x m matrix X; Bob holds a uniform row index J and, for
// every other row i, a uniform set of m-k positions of row i together with
// X's values there.  Bob must output the entire row X_J.
type AugmentedMatrixRowIndex struct {
	N, M, K int
	X       [][]byte // the matrix, X[i][j] in {0, 1}
	J       int      // Bob's row index
	Known   [][]int  // Known[i] = sorted positions of row i Bob knows; nil for i = J
}

// NewAMRI generates a uniform instance.
func NewAMRI(rng *xrand.RNG, n, m, k int) (*AugmentedMatrixRowIndex, error) {
	if n < 2 || m < 1 || k < 0 || k > m {
		return nil, fmt.Errorf("comm: amri: bad parameters n=%d m=%d k=%d", n, m, k)
	}
	inst := &AugmentedMatrixRowIndex{N: n, M: m, K: k, J: rng.Intn(n)}
	inst.X = make([][]byte, n)
	inst.Known = make([][]int, n)
	for i := 0; i < n; i++ {
		inst.X[i] = make([]byte, m)
		for j := range inst.X[i] {
			inst.X[i][j] = byte(rng.Uint64() & 1)
		}
		if i != inst.J {
			inst.Known[i] = rng.Subset(m, m-k)
		}
	}
	return inst, nil
}

// Figure3Instance constructs the exact Augmented-Matrix-Row-Index(4, 6, 2)
// instance of Figure 3: Bob must output row 3 (0-based row 2) and knows 4
// random positions in every other row.
func Figure3Instance() *AugmentedMatrixRowIndex {
	parseRow := func(s string) []byte {
		out := make([]byte, len(s))
		for i := range s {
			out[i] = s[i] - '0'
		}
		return out
	}
	return &AugmentedMatrixRowIndex{
		N: 4, M: 6, K: 2,
		X: [][]byte{
			parseRow("011100"),
			parseRow("110010"),
			parseRow("000010"),
			parseRow("101010"),
		},
		J: 2,
		Known: [][]int{
			// Bob's visible entries in Figure 3: rows 1, 2 and 4 (0-based
			// 0, 1, 3) each reveal four positions.
			{0, 1, 2, 4},
			{0, 1, 3, 5},
			nil,
			{1, 2, 3, 4},
		},
	}
}

// AMRIResult is the outcome of the Lemma 6.3 protocol simulation.
type AMRIResult struct {
	Row       []byte // Bob's reconstruction of X_J
	Correct   bool
	OnesFound int // distinct 1-positions learned from the direct runs
	ZerosFnd  int // distinct 0-positions learned from the inverted runs
	Stats     ProtocolStats
}

// SolveAMRI runs the Lemma 6.3 protocol for Augmented-Matrix-Row-Index
// (n, 2d, d/alpha - 1) instances using an insertion-deletion FEwW(n, d)
// algorithm with approximation alpha:
//
// For each of reps = ceil(c * alpha * ln n) repetitions, Alice and Bob use
// public randomness to permute the columns of every row independently;
// Alice streams an edge for every permuted 1 of X, then Bob deletes the
// edges at his known 1-positions.  After deletions, every row except J has
// at most k = d/alpha - 1 live edges, so any reported neighbourhood is
// rooted at J, and each repetition reveals ceil(d/alpha) uniformly-spread
// 1-positions of row J.  A simultaneous inverted run reveals 0-positions.
// Decision rule (paper, end of Lemma 6.3): if the direct runs surfaced at
// least d distinct 1s, row J is 1 exactly at those positions; otherwise the
// inverted runs w.h.p. surfaced every 0, and row J is 0 exactly there.
//
// idScale scales the insertion-deletion algorithm's sampler counts (see
// core.InsertDeleteConfig.ScaleFactor); repScale scales the repetition
// count c.
func SolveAMRI(inst *AugmentedMatrixRowIndex, alpha int, seed uint64, idScale, repScale float64) (*AMRIResult, error) {
	if inst.M%2 != 0 {
		return nil, fmt.Errorf("comm: amri: m = %d must be 2d", inst.M)
	}
	d := int64(inst.M / 2)
	wantK := int(d)/alpha - 1
	if inst.K != wantK {
		return nil, fmt.Errorf("comm: amri: k = %d, want d/alpha - 1 = %d", inst.K, wantK)
	}
	if repScale <= 0 {
		repScale = 1
	}
	reps := int(math.Ceil(2 * repScale * float64(alpha) * math.Log(float64(inst.N)+2)))
	if reps < 1 {
		reps = 1
	}
	rng := xrand.New(seed)

	res := &AMRIResult{Stats: ProtocolStats{Parties: 2}}
	ones := make(map[int]bool)
	zeros := make(map[int]bool)

	for rep := 0; rep < reps; rep++ {
		// Public randomness: a fresh permutation per row, shared by both
		// runs of this repetition.
		perms := make([][]int, inst.N)
		for i := range perms {
			perms[i] = rng.Perm(inst.M)
		}
		for _, inverted := range []bool{false, true} {
			found, words, edges, err := amriRound(inst, alpha, d, perms, inverted, rng.Uint64(), idScale)
			if err != nil {
				return nil, err
			}
			res.Stats.TotalEdges += edges
			if words > res.Stats.MaxMsgWords {
				res.Stats.MaxMsgWords = words
			}
			for pos := range found {
				if inverted {
					zeros[pos] = true
				} else {
					ones[pos] = true
				}
			}
		}
	}

	res.OnesFound, res.ZerosFnd = len(ones), len(zeros)
	res.Row = make([]byte, inst.M)
	if len(ones) >= int(d) {
		for pos := range ones {
			res.Row[pos] = 1
		}
	} else {
		for j := range res.Row {
			res.Row[j] = 1
		}
		for pos := range zeros {
			res.Row[pos] = 0
		}
	}
	res.Correct = true
	for j := range res.Row {
		if res.Row[j] != inst.X[inst.J][j] {
			res.Correct = false
			break
		}
	}
	res.Stats.Correct = res.Correct
	res.Stats.OutputDetail = fmt.Sprintf("ones=%d zeros=%d reps=%d", res.OnesFound, res.ZerosFnd, reps)
	return res, nil
}

// amriRound executes one (direct or bit-inverted) repetition: Alice's
// insertions, Bob's deletions, and the decode of the resulting
// neighbourhood back through the row-J permutation.  It returns the set of
// row-J positions learned (positions where the matrix bit equals 1 in the
// direct run, 0 in the inverted run).
func amriRound(inst *AugmentedMatrixRowIndex, alpha int, d int64, perms [][]int, inverted bool, seed uint64, idScale float64) (map[int]bool, int, int, error) {
	bit := func(i, j int) byte {
		b := inst.X[i][j]
		if inverted {
			return 1 - b
		}
		return b
	}
	algo, err := core.NewInsertDelete(core.InsertDeleteConfig{
		N:           int64(inst.N),
		M:           int64(inst.M),
		D:           d,
		Alpha:       alpha,
		Seed:        seed,
		ScaleFactor: idScale,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	edges := 0
	// Alice: insert an edge (i, perm_i(j)) for every (permuted) 1.
	for i := 0; i < inst.N; i++ {
		for j := 0; j < inst.M; j++ {
			if bit(i, j) == 1 {
				algo.Update(int64(i), int64(perms[i][j]), +1)
				edges++
			}
		}
	}
	aliceWords := algo.SpaceWords() // the message Alice hands to Bob
	// Bob: delete the edges at his known 1-positions (of the possibly
	// inverted matrix).
	for i := 0; i < inst.N; i++ {
		for _, j := range inst.Known[i] {
			if bit(i, j) == 1 {
				algo.Update(int64(i), int64(perms[i][j]), -1)
				edges++
			}
		}
	}
	found := make(map[int]bool)
	nb, resErr := algo.Result()
	if resErr == nil && nb.A == int64(inst.J) {
		inv := make([]int, inst.M)
		for j, pj := range perms[inst.J] {
			inv[pj] = j
		}
		for _, col := range nb.Witnesses {
			found[inv[col]] = true
		}
	}
	return found, aliceWords, edges, nil
}
