package comm

import (
	"testing"
)

// TestBaranyaiFlowLargerCases exercises the flow-based construction on
// parameters far beyond what backtracking search could handle: C(12,3) =
// 220 triples into 55 classes, C(10,5) = 252 blocks into 126 classes,
// C(12,4) = 495 blocks into 165 classes.
func TestBaranyaiFlowLargerCases(t *testing.T) {
	cases := [][2]int{{12, 3}, {10, 5}, {12, 4}, {15, 3}, {12, 6}}
	for _, c := range cases {
		n, k := c[0], c[1]
		classes, err := Factorise(n, k)
		if err != nil {
			t.Fatalf("Factorise(%d, %d): %v", n, k, err)
		}
		if err := VerifyFactorisation(n, k, classes); err != nil {
			t.Fatalf("Factorise(%d, %d) invalid: %v", n, k, err)
		}
	}
}

// TestBaranyaiFlowMatchesRoundRobin checks that the general flow
// construction also solves the k = 2 case the circle method handles (the
// factorisations need not be equal, only both valid).
func TestBaranyaiFlowMatchesRoundRobin(t *testing.T) {
	for _, n := range []int{4, 6, 8, 10} {
		viaFlow, err := flowFactorise(n, 2)
		if err != nil {
			t.Fatalf("flowFactorise(%d, 2): %v", n, err)
		}
		if err := VerifyFactorisation(n, 2, viaFlow); err != nil {
			t.Fatalf("flowFactorise(%d, 2) invalid: %v", n, err)
		}
		viaRR := roundRobin(n)
		if err := VerifyFactorisation(n, 2, viaRR); err != nil {
			t.Fatalf("roundRobin(%d) invalid: %v", n, err)
		}
		if len(viaFlow) != len(viaRR) {
			t.Fatalf("n=%d: flow gives %d classes, round-robin %d", n, len(viaFlow), len(viaRR))
		}
	}
}

// TestBaranyaiBlocksSorted checks the construction emits blocks with
// elements in increasing order (elements are added 0..n-1), which callers
// rely on for deterministic output.
func TestBaranyaiBlocksSorted(t *testing.T) {
	classes, err := Factorise(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range classes {
		for _, blk := range class {
			for i := 1; i < len(blk); i++ {
				if blk[i-1] >= blk[i] {
					t.Fatalf("block %v not strictly increasing", blk)
				}
			}
		}
	}
}

func TestEnumerateSubsets(t *testing.T) {
	subs := enumerateSubsets(5, 3)
	if len(subs) != Binomial(5, 3) {
		t.Fatalf("got %d subsets, want %d", len(subs), Binomial(5, 3))
	}
	seen := make(map[uint64]bool)
	for _, s := range subs {
		m := maskOf(s)
		if seen[m] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[m] = true
	}
}

func BenchmarkBaranyai9x3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Factorise(9, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaranyai12x4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Factorise(12, 4); err != nil {
			b.Fatal(err)
		}
	}
}
