// Package viewimmut checks the published-view immutability contract
// (docs/ANALYSIS.md §viewimmut): everything reachable from a core.View
// shares no memory with live algorithm state, and nothing reachable from
// a published view is ever written again.
//
// The contract has two failure modes, both seen in past PRs:
//
//   - Aliasing live buffers into a view.  DegRes recycles evicted witness
//     buffers in place (see core.Process), so View/Neighbourhood fields
//     must be built from deep copies — `Witnesses: cand.witnesses` would
//     be silently rewritten by later stream elements (the PR 6 class).
//     The analyzer flags View.Best / View.Results / Neighbourhood.Witnesses
//     values that alias existing memory: field selectors, indexings and
//     slicings of them, and locals bound to any of those.  Call results,
//     fresh composites, make+copy locals, and elements of fresh slices
//     pass.
//
//   - Writing through a loaded view.  Any goroutine may hold a pointer
//     obtained from an atomic.Pointer Load; writes through it (or through
//     slices reached from it) tear views out from under readers.  The
//     analyzer taints Load results of atomic.Pointer types carrying a
//     core.View, and flags assignments through the pointer — and, for
//     struct values copied out of a tainted view, assignments that reach
//     through a slice or map element (a copied Neighbourhood still shares
//     its Witnesses backing array; writing nb.A detaches nothing needs, but
//     writing nb.Witnesses[i] rewrites the published data).
//
// The analysis is per-function and does not follow values across calls;
// the clean idioms (core.View's expose/copy discipline, the runtime's
// read-only epoch loads) pass without annotations.
package viewimmut

import (
	"go/ast"
	"go/types"

	"feww/internal/analysis"
)

const corePath = "feww/internal/core"

// Analyzer is the viewimmut checker.
var Analyzer = &analysis.Analyzer{
	Name: "viewimmut",
	Doc:  "flags live buffers aliased into core.View/Neighbourhood and writes through published views",
	Run:  run,
}

// invariantFields names the deep-copy-only fields per type.
var invariantFields = map[string]map[string]bool{
	"View":          {"Best": true, "Results": true},
	"Neighbourhood": {"Witnesses": true},
}

func run(pass *analysis.Pass) error {
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		checkAliasing(pass, fd)
		checkLoadWrites(pass, fd)
	})
	return nil
}

// viewTypeName returns "View" or "Neighbourhood" when t is that core
// type (behind pointers/aliases), else "".
func viewTypeName(t types.Type) string {
	for _, name := range []string{"View", "Neighbourhood"} {
		if analysis.IsNamed(t, corePath, name) {
			return name
		}
	}
	return ""
}

// checkAliasing flags invariant fields built from aliasing expressions,
// in composite literals and in direct field assignments.
func checkAliasing(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tn := viewTypeName(pass.TypesInfo.TypeOf(n))
			if tn == "" {
				return true
			}
			fields := invariantFields[tn]
			st, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Struct)
			for i, elt := range n.Elts {
				var name string
				var value ast.Expr
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					if id, isID := kv.Key.(*ast.Ident); isID {
						name, value = id.Name, kv.Value
					}
				} else if ok && i < st.NumFields() {
					name, value = st.Field(i).Name(), elt
				}
				if fields[name] && !fresh(pass, fd, value) {
					pass.Reportf(value.Pos(),
						"%s.%s aliases live memory (%s); deep-copy before building a view",
						tn, name, analysis.ExprString(value))
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				tn := viewTypeName(pass.TypesInfo.TypeOf(sel.X))
				if tn == "" || !invariantFields[tn][sel.Sel.Name] {
					continue
				}
				// Multi-value RHS (a call) is fresh by definition.
				if len(n.Rhs) != len(n.Lhs) {
					continue
				}
				if !fresh(pass, fd, n.Rhs[i]) {
					pass.Reportf(n.Rhs[i].Pos(),
						"%s.%s aliases live memory (%s); deep-copy before building a view",
						tn, sel.Sel.Name, analysis.ExprString(n.Rhs[i]))
				}
			}
		}
		return true
	})
}

// fresh reports whether e plausibly owns its memory: a call result, a
// composite literal, nil, or a local whose every binding in fd is fresh.
// Selectors, index expressions, and slicings of non-fresh values alias
// existing objects.  Parameters and captured variables are treated as
// fresh — their provenance is the caller's concern — so the analysis
// stays precise on the real bug class: aliasing another object's field.
func fresh(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.CallExpr, *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.UnaryExpr:
		return fresh(pass, fd, e.X)
	case *ast.ParenExpr:
		return fresh(pass, fd, e.X)
	case *ast.SliceExpr:
		return fresh(pass, fd, e.X)
	case *ast.IndexExpr:
		// An element of a fresh slice is as caller-owned as the slice:
		// results[0] where results came from a deep-copying call.
		return fresh(pass, fd, e.X)
	case *ast.SelectorExpr:
		// Selecting through a package name is not field aliasing.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
				return true
			}
		}
		return false
	case *ast.StarExpr:
		return false
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return true
		}
		bindings := bindingsOf(pass, fd, obj)
		if len(bindings) == 0 {
			return true // parameter, captured, or package-level: caller's concern
		}
		for _, b := range bindings {
			if !fresh(pass, fd, b) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// bindingsOf collects every expression assigned to obj inside fd.  A
// multi-value binding (x, err := f()) counts as fresh and contributes no
// expression.
func bindingsOf(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
				out = append(out, as.Rhs[i])
			}
		}
		return true
	})
	return out
}

// taint levels for load-derived values.
const (
	taintPtr     = 1 // pointer into a published view: no writes at all
	taintShallow = 2 // struct copied out of one: no writes through slices
)

// checkLoadWrites implements the mutation-after-Load half.
func checkLoadWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	taint := make(map[types.Object]int)

	// isLoad reports whether e is a Load() call on an atomic.Pointer
	// whose pointee carries a core.View.
	isLoad := func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		recv, name := analysis.ReceiverOf(call)
		if name != "Load" || recv == nil {
			return false
		}
		t := pass.TypesInfo.TypeOf(recv)
		if !analysis.IsNamed(t, "sync/atomic", "Pointer") {
			return false
		}
		return carriesView(pass.TypesInfo.TypeOf(call))
	}

	// rootedInTaint returns the taint level of the value e derives from
	// (walking selectors/indexes/derefs down to a tainted object or Load
	// call), or 0.
	var rootedInTaint func(e ast.Expr) int
	rootedInTaint = func(e ast.Expr) int {
		switch e := e.(type) {
		case *ast.Ident:
			return taint[pass.TypesInfo.Uses[e]]
		case *ast.SelectorExpr:
			return rootedInTaint(e.X)
		case *ast.IndexExpr:
			return rootedInTaint(e.X)
		case *ast.StarExpr:
			return rootedInTaint(e.X)
		case *ast.ParenExpr:
			return rootedInTaint(e.X)
		case *ast.SliceExpr:
			return rootedInTaint(e.X)
		case *ast.CallExpr:
			if isLoad(e) {
				return taintPtr
			}
		}
		return 0
	}

	// Pass 1: propagate taint through single-value bindings.
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				rhs := n.Rhs[i]
				if isLoad(rhs) {
					taint[obj] = taintPtr
				} else if lvl := rootedInTaint(rhs); lvl != 0 {
					// A pointer stays a pointer; a struct value copied out
					// of a tainted view is shallow (its slices still alias).
					if _, isPtr := pass.TypesInfo.TypeOf(rhs).Underlying().(*types.Pointer); isPtr {
						taint[obj] = taintPtr
					} else {
						taint[obj] = taintShallow
					}
				}
			}
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok {
				if lvl := rootedInTaint(n.X); lvl != 0 {
					if obj := pass.TypesInfo.Defs[v]; obj != nil {
						taint[obj] = taintShallow
					}
				}
			}
		}
		return true
	})

	// Pass 2: flag writes.
	flagLHS := func(lhs ast.Expr) {
		lvl := rootedInTaint(lhs)
		if lvl == 0 {
			return
		}
		if lvl == taintPtr {
			// Only *paths through* the pointer are writes into the view;
			// reassigning the pointer variable itself is harmless.
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				return
			}
			pass.Reportf(lhs.Pos(),
				"write through published view pointer (%s); views are immutable after Store",
				analysis.ExprString(lhs))
			return
		}
		// Shallow: flag writes reaching through an index (shared backing
		// array) or an explicit deref, not scalar fields of the copy.
		if pathThroughIndex(lhs) {
			pass.Reportf(lhs.Pos(),
				"write into slice shared with a published view (%s); the copy shares its backing array",
				analysis.ExprString(lhs))
		}
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagLHS(lhs)
			}
		case *ast.IncDecStmt:
			flagLHS(n.X)
		}
		return true
	})
}

// pathThroughIndex reports whether the access path of lhs (above its
// root identifier) passes through an index expression or dereference.
func pathThroughIndex(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			return true
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return false
		}
	}
}

// carriesView reports whether t — typically the *T a Load returned —
// is, points at, or has a field of type core.View or core.Neighbourhood
// (embedded views like the runtime's publishedView count).
func carriesView(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if viewTypeName(t) != "" {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if viewTypeName(ft) != "" {
			return true
		}
		if sl, ok := ft.Underlying().(*types.Slice); ok && viewTypeName(sl.Elem()) != "" {
			return true
		}
	}
	return false
}
