package viewimmut_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/viewimmut"
)

func TestViewImmut(t *testing.T) {
	analysistest.Run(t, viewimmut.Analyzer, "viewtest")
}
