// Package viewtest seeds viewimmut violations against the real
// core.View types: aliasing live buffers into views, and writing through
// loaded views.  Clean idioms (make+copy, call results, elements of
// fresh slices, scalar writes on copies) must pass unflagged.
package viewtest

import (
	"sync/atomic"

	"feww/internal/core"
)

type cand struct {
	a         int64
	witnesses []int64
}

type rt struct {
	res  []cand
	best core.Neighbourhood
}

// aliasWitnesses hands a live reservoir buffer to a view.
func aliasWitnesses(c *cand) core.Neighbourhood {
	return core.Neighbourhood{A: c.a, Witnesses: c.witnesses} // want "aliases live memory"
}

// aliasBest assigns a live field into a view's Best.
func aliasBest(r *rt) core.View {
	var v core.View
	v.Best = r.best // want "aliases live memory"
	v.BestOK = true
	return v
}

// aliasViaLocal launders the alias through a local binding.
func aliasViaLocal(c *cand) core.Neighbourhood {
	w := c.witnesses
	return core.Neighbourhood{A: c.a, Witnesses: w} // want "aliases live memory"
}

// deepCopy is the canonical clean idiom: make+copy owns the memory.
func deepCopy(c *cand) core.Neighbourhood {
	w := make([]int64, len(c.witnesses))
	copy(w, c.witnesses)
	return core.Neighbourhood{A: c.a, Witnesses: w}
}

// expose mirrors core's deep-copying accessor.
func expose(c *cand) core.Neighbourhood {
	return deepCopy(c)
}

// fromCalls builds a view from call results and elements of fresh
// slices — all caller-owned, none flagged.
func fromCalls(r *rt) core.View {
	results := collect(r)
	var v core.View
	v.Results = results
	v.Best = results[0]
	v.BestOK = true
	return v
}

func collect(r *rt) []core.Neighbourhood {
	out := make([]core.Neighbourhood, 0, len(r.res))
	for i := range r.res {
		out = append(out, expose(&r.res[i]))
	}
	return out
}

// suppressed shows the escape hatch: a deliberate alias with a reason.
func suppressed(r *rt) core.Neighbourhood {
	//fewwvet:ignore viewimmut buffer is retired after the final window, never recycled
	return core.Neighbourhood{A: r.res[0].a, Witnesses: r.res[0].witnesses}
}

type published struct {
	view core.View
}

type shard struct {
	p atomic.Pointer[published]
}

// readView only reads through the loaded pointer.
func readView(s *shard) int64 {
	v := s.p.Load()
	return v.view.Best.A
}

// writeThroughLoad mutates the published pointee.
func writeThroughLoad(s *shard) {
	v := s.p.Load()
	v.view.Rung = 3 // want "write through published view pointer"
}

// shallowCopyWrites: scalar writes on a copied value detach nothing and
// pass; writes through the copy's shared backing array are flagged.
func shallowCopyWrites(s *shard) int64 {
	v := s.p.Load()
	nb := v.view.Best
	nb.A = 7
	nb.Witnesses[0] = 9 // want "shares its backing array"
	return nb.A
}
