// Window-engine idioms for the view checker: serving from the oldest
// live suffix instance of a bucket ladder.  Bucket expiry retires whole
// instances and their reservoirs get recycled, so a served view must own
// every witness list it carries — and aging must go through a fresh
// publication, never through a view some reader already loaded.
package viewtest

import (
	"sync/atomic"

	"feww/internal/core"
)

type instance struct {
	start int64 // bucket boundary the instance opened at
	items []cand
}

type windowShard struct {
	ladder []instance // oldest first; expiry drops the head
	pub    atomic.Pointer[windowPub]
}

type windowPub struct {
	view    core.View
	horizon int64
}

// serveOldest aliases the serving instance's reservoir into the view;
// the next expiry recycles that buffer under the reader.
func serveOldest(w *windowShard) core.Neighbourhood {
	c := &w.ladder[0].items[0]
	return core.Neighbourhood{A: c.a, Witnesses: c.witnesses} // want "aliases live memory"
}

// serveOldestCopy is the clean serve: the witness list is copied out, so
// recycling the instance cannot rewrite a published answer.
func serveOldestCopy(w *windowShard) core.Neighbourhood {
	c := &w.ladder[0].items[0]
	ws := make([]int64, len(c.witnesses))
	copy(ws, c.witnesses)
	return core.Neighbourhood{A: c.a, Witnesses: ws}
}

// expireThroughView ages a bucket out by zeroing witnesses through the
// published pointer instead of publishing a rebuilt view.
func expireThroughView(w *windowShard) {
	v := w.pub.Load()
	v.view.Best.Witnesses[0] = 0 // want "write through published view pointer"
}

// advanceHorizon republishes cleanly after expiry: a fresh pub built
// from deep copies, loaded values read but never written.
func advanceHorizon(w *windowShard, horizon int64) *windowPub {
	old := w.pub.Load()
	ws := make([]int64, len(old.view.Best.Witnesses))
	copy(ws, old.view.Best.Witnesses)
	next := &windowPub{horizon: horizon}
	next.view.Best = core.Neighbourhood{A: old.view.Best.A, Witnesses: ws}
	next.view.BestOK = old.view.BestOK
	return next
}
