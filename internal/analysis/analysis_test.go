package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"feww/internal/analysis"
	"feww/internal/analysis/load"
)

// directiveSrc seeds one suppressed line, one unsuppressed line, and one
// malformed directive (bare, no analyzer or reason).
const directiveSrc = `package p

func f() int {
	x := 1 //fewwvet:ignore fake deliberate exception with a reason
	_ = x
	y := 2
	return y
}

//fewwvet:ignore
func g() {}
`

// parse builds a load.Package by hand; the directive machinery only
// needs syntax, so no typechecking is involved.
func parse(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	return &load.Package{ImportPath: "p", Fset: fset, Files: []*ast.File{f}}
}

// fake reports one finding on every short-var assignment it sees.
var fake = &analysis.Analyzer{
	Name: "fake",
	Doc:  "reports every := statement",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					pass.Reportf(as.Pos(), "assignment")
				}
				return true
			})
		}
		return nil
	},
}

func TestIgnoreDirectives(t *testing.T) {
	pkg := parse(t, directiveSrc)
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{fake})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var malformed, suppressedLine, keptLine bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "malformed ignore directive"):
			malformed = true
		case d.Analyzer == "fake" && d.Pos.Line == 4:
			suppressedLine = true
		case d.Analyzer == "fake" && d.Pos.Line == 6:
			keptLine = true
		}
	}
	if !malformed {
		t.Errorf("bare //fewwvet:ignore not reported as malformed; got %v", diags)
	}
	if suppressedLine {
		t.Errorf("well-formed ignore did not suppress the line-4 finding; got %v", diags)
	}
	if !keptLine {
		t.Errorf("unsuppressed line-6 finding missing; got %v", diags)
	}
}

// requiresSrc exercises the requires-directive parser.
const requiresSrc = `package p

// doc text.
//
//fewwvet:requires mu
//fewwvet:requires other
func f() {}

func g() {}
`

func TestRequires(t *testing.T) {
	pkg := parse(t, requiresSrc)
	var got [][]string
	for _, decl := range pkg.Files[0].Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			got = append(got, analysis.Requires(fd))
		}
	}
	if len(got) != 2 || len(got[0]) != 2 || got[0][0] != "mu" || got[0][1] != "other" {
		t.Errorf("Requires on f: got %v, want [mu other]", got[0])
	}
	if len(got[1]) != 0 {
		t.Errorf("Requires on g: got %v, want none", got[1])
	}
}
