// Package analysistest runs a fewwvet analyzer over a seeded testdata
// package and checks its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the module's own
// framework.  A testdata package lives in testdata/src/<name> beside the
// analyzer's test, is invisible to the go tool (testdata directories are
// never built), and type-checks against the real module packages through
// the export-data importer, so seeded violations exercise the analyzer
// on the genuine types (core.View, atomic.Pointer, server.Client, ...).
//
// Expectations are trailing comments of the form
//
//	x = bad() // want "regexp"
//	y = worse() // want "first" "second"
//
// Each diagnostic the analyzer reports must match an unconsumed want
// pattern on its line, and every want pattern must be consumed; either
// mismatch fails the test with the full finding list.  Suppression via
// //fewwvet:ignore is active, so a testdata file can also prove the
// escape hatch works (a suppressed line simply carries no want).
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"feww/internal/analysis"
	"feww/internal/analysis/load"
)

// want is one expectation: a compiled pattern at a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> (relative to the calling test's package
// directory), applies the analyzer, and reports mismatches between its
// findings and the package's // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	p, err := load.Dir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, p)
	diags, err := analysis.Run(p, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	for _, d := range diags {
		if !match(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected finding: %s", pkg, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no finding matched want %q", pkg, filepath.Base(w.file), w.line, w.re)
		}
	}
}

// match consumes the first unconsumed want on the diagnostic's line that
// matches its message.
func match(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts every // want expectation from the package's
// comments.
func collectWants(t *testing.T, p *load.Package) []*want {
	t.Helper()
	var wants []*want
	addFile := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(strings.TrimSpace(text), "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				specs := wantRE.FindAllStringSubmatch(text[idx:], -1)
				if len(specs) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, m := range specs {
					re, err := regexp.Compile(unquote(m[1]))
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, f := range p.Files {
		addFile(f)
	}
	return wants
}

// unquote undoes the \" escapes the want grammar allows inside patterns.
func unquote(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && s[i+1] == '"' {
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Findings formats diagnostics for failure messages.
func Findings(diags []analysis.Diagnostic) string {
	var lines []string
	for _, d := range diags {
		lines = append(lines, fmt.Sprintf("  %s", d))
	}
	return strings.Join(lines, "\n")
}
