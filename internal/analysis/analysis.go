// Package analysis is the miniature go/analysis framework under
// cmd/fewwvet.  The module cannot depend on golang.org/x/tools, so this
// package supplies the three pieces fewwvet needs from it: an Analyzer /
// Pass API for writing type-aware checkers, a runner that executes
// analyzers over a loaded package (internal/analysis/load) and filters
// suppressed findings, and the comment-directive conventions the
// analyzers and the suppression mechanism share:
//
//	//fewwvet:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line (or the line above it) suppresses those analyzers'
// findings there — the reason is mandatory, a bare ignore is itself
// reported — and
//
//	//fewwvet:requires <lockfield>
//
// on a method declaration declares a lock-ordering contract the
// lockorder analyzer enforces at every call site (see that package).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"feww/internal/analysis/load"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is the one-paragraph description -list prints.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	diags []Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over pkg and returns the surviving
// diagnostics sorted by position: findings suppressed by a well-formed
// ignore directive are dropped, and malformed directives (no analyzer
// name, or no reason) are reported as findings themselves so a bare
// "//fewwvet:ignore" cannot silently disable checking.
func Run(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores, bad := ignoreIndex(pkg)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			TypesSizes: pkg.Sizes,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range pass.diags {
			if !ignores.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreKey addresses one source line of one file.
type ignoreKey struct {
	file string
	line int
}

type ignoreSet map[ignoreKey]map[string]bool

// suppressed reports whether d is covered by an ignore directive on its
// own line or on the line directly above.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := s[ignoreKey{d.Pos.Filename, line}]; names[d.Analyzer] {
			return true
		}
	}
	return false
}

const (
	ignorePrefix   = "//fewwvet:ignore"
	requiresPrefix = "//fewwvet:requires"
)

// ignoreIndex scans every comment of the package for ignore directives,
// returning the per-line suppression index plus diagnostics for
// malformed directives.
func ignoreIndex(pkg *load.Package) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "fewwvet",
						Message:  "malformed ignore directive: want //fewwvet:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := ignoreKey{pos.Filename, pos.Line}
				if set[key] == nil {
					set[key] = make(map[string]bool)
				}
				for _, name := range strings.Split(fields[0], ",") {
					set[key][name] = true
				}
			}
		}
	}
	return set, bad
}

// Requires returns the lock fields a //fewwvet:requires directive on
// decl declares (empty when the declaration carries none).
func Requires(decl *ast.FuncDecl) []string {
	if decl.Doc == nil {
		return nil
	}
	var fields []string
	for _, c := range decl.Doc.List {
		if !strings.HasPrefix(c.Text, requiresPrefix) {
			continue
		}
		fields = append(fields, strings.Fields(strings.TrimPrefix(c.Text, requiresPrefix))...)
	}
	return fields
}

// Named unwraps pointers and aliases down to the named type beneath t,
// or nil when there is none.
func Named(t types.Type) *types.Named {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// IsNamed reports whether t (possibly behind pointers or aliases, and
// possibly an instantiated generic) is the named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverOf returns the method call's receiver expression and the
// method name for a call of the form <recv>.<name>(...), or nil.
func ReceiverOf(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// ExprString renders e the way the parser saw it — the canonical form
// the analyzers use to compare "the same lock / buffer expression".
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	case *ast.TypeAssertExpr:
		return ExprString(e.X) + ".(type)"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// RootIdent returns the identifier at the base of a selector / index /
// dereference chain (x in x.f[i].g), or nil for more complex roots.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// FuncDecls visits every function declaration with a body in the pass.
func (p *Pass) FuncDecls(fn func(*ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
