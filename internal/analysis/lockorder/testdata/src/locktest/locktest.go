// Package locktest seeds lockorder violations against a miniature
// replica group: calls to a //fewwvet:requires method without the lock,
// a release before the call, and a misdeclared requirement.  Locked
// callers (shared or exclusive, with deferred releases) must pass.
package locktest

import "sync"

type group struct {
	mu   sync.RWMutex
	reps []int
}

// targets mirrors the cluster's ingestTargets contract.
//
//fewwvet:requires mu
func (g *group) targets() []int {
	return g.reps
}

// lockedShared is the canonical caller: RLock before selection, held
// across use, deferred release.
func lockedShared(g *group) []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.targets()
}

// lockedExclusive also satisfies the contract.
func lockedExclusive(g *group) []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.targets()
}

// unlocked never takes the lock.
func unlocked(g *group) []int {
	return g.targets() // want "without g.mu held"
}

// releasedTooEarly drops the lock before selecting.
func releasedTooEarly(g *group) []int {
	g.mu.RLock()
	g.mu.RUnlock()
	return g.targets() // want "without g.mu held"
}

// aliased spells the receiver differently from the acquisition; the
// analyzer is textual, so this needs (and demonstrates) the escape
// hatch.
func aliased(g *group) []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	h := g
	//fewwvet:ignore lockorder h aliases g, which is read-locked above
	return h.targets()
}

type bare struct{ n int }

// misdeclared requirements are themselves findings.
//
//fewwvet:requires lock
func (b *bare) touch() { b.n++ } // want "no such field"
