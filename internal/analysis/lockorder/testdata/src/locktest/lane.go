// The PR 10 lane idioms: the fanout's per-shard fill buffers moved from
// one global mutex to a lock per lane, with the buffer hand-off factored
// into a //fewwvet:requires method.  The canonical callers — admission,
// flush and barrier all lock the lane around the take — must pass; a
// telemetry path that reads the buffer without the lane lock is a
// finding.
package locktest

import "sync"

type lane struct {
	mu      sync.Mutex
	pending []int
}

// take mirrors the fanout's buffer hand-off: swap the fill buffer out
// under the lane lock.
//
//fewwvet:requires mu
func (ln *lane) take() []int {
	batch := ln.pending
	ln.pending = nil
	return batch
}

// admit is the producer path: lock, wait-free here, take on overflow.
func admit(ln *lane, el int) []int {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	ln.pending = append(ln.pending, el)
	if len(ln.pending) >= 8 {
		return ln.take()
	}
	return nil
}

// flushLanes is the barrier idiom: every lane locked around its own
// take, releases interleaved with the hand-off.
func flushLanes(lanes []*lane, dispatch func([]int)) {
	for _, ln := range lanes {
		ln.mu.Lock()
		batch := ln.take()
		ln.mu.Unlock()
		if batch != nil {
			dispatch(batch)
		}
	}
}

// peek reads the fill buffer without the lane lock: a racing producer
// may be appending to it.
func peek(ln *lane) []int {
	return ln.take() // want "without ln.mu held"
}
