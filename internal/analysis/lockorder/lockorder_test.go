package lockorder_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locktest")
}
