// Package lockorder enforces declared lock-before-call orderings
// (docs/ANALYSIS.md §lockorder).  A method that must only run under a
// lock declares it in its doc comment:
//
//	//fewwvet:requires ingestMu
//	func (gr *group) ingestTargets() []*replica { ... }
//
// and the analyzer requires every call site to acquire that lock on the
// same receiver — `gr.ingestMu.Lock()` or `.RLock()` — textually before
// the call inside the enclosing function, with no non-deferred release
// in between.  This is the mechanical form of the PR 7 review fix: the
// cluster's ingest paths must take the group's shared ingest lock
// *before* selecting fan-out targets and hold it across the replica
// responses, or an exclusive-lock re-seed can revive a replica between
// target selection and the request and silently miss in-flight windows
// (the classic TOCTOU).  The analyzer proves the acquire-before-select
// half on every path that exists in the source; that the lock spans the
// responses remains a review obligation, documented at the declaration.
//
// The check is intra-package and textual about receivers: acquisition
// and call must spell the receiver the same way (`gr`, `gi.gr`).  An
// aliased receiver (`x := gi.gr; ... x.ingestTargets()` locked through
// `gi.gr`) is a false positive — rewrite to one spelling, or suppress
// with //fewwvet:ignore and a reason.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"feww/internal/analysis"
)

// Analyzer is the lockorder checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "requires //fewwvet:requires locks to be held on the path to every call site",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	required := collectRequirements(pass)
	if len(required) == 0 {
		return nil
	}
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		checkCalls(pass, fd, required)
	})
	return nil
}

// collectRequirements maps declared functions to their required lock
// field names, validating that the receiver type actually has the field.
func collectRequirements(pass *analysis.Pass) map[*types.Func][]string {
	out := make(map[*types.Func][]string)
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		locks := analysis.Requires(fd)
		if len(locks) == 0 {
			return
		}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return
		}
		if recv := fn.Signature().Recv(); recv != nil {
			for _, lock := range locks {
				if !hasField(recv.Type(), lock) {
					pass.Reportf(fd.Pos(),
						"//fewwvet:requires %s: receiver type %s has no such field",
						lock, recv.Type())
				}
			}
		}
		out[fn] = locks
	})
	return out
}

// hasField reports whether the (possibly pointer) struct type has a
// field with the given name.
func hasField(t types.Type, name string) bool {
	n := analysis.Named(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// checkCalls verifies every call to a lock-requiring function inside fd.
func checkCalls(pass *analysis.Pass, fd *ast.FuncDecl, required map[*types.Func][]string) {
	self, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	deferredReleases := deferredNodes(fd)
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass, call)
		locks, ok := required[callee]
		if !ok || callee == self {
			return true
		}
		recv, _ := analysis.ReceiverOf(call)
		base := ""
		if recv != nil {
			base = analysis.ExprString(recv)
		}
		for _, lock := range locks {
			if !heldAt(pass, fd, base, lock, call.Pos(), deferredReleases) {
				target := lock
				if base != "" {
					target = base + "." + lock
				}
				pass.Reportf(call.Pos(),
					"call to %s without %s held on the path (acquire %s.Lock or .RLock before selecting targets; see //fewwvet:requires on the declaration)",
					callee.Name(), target, target)
			}
		}
		return true
	})
}

// heldAt reports whether some acquisition of base.lock precedes pos in
// fd with no non-deferred release in between.
func heldAt(pass *analysis.Pass, fd *ast.FuncDecl, base, lock string, pos token.Pos, deferred map[ast.Node]bool) bool {
	want := lock
	if base != "" {
		want = base + "." + lock
	}
	var acquisitions, releases []int
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name := analysis.ReceiverOf(call)
		if recv == nil || analysis.ExprString(recv) != want {
			return true
		}
		switch name {
		case "Lock", "RLock":
			acquisitions = append(acquisitions, int(call.Pos()))
		case "Unlock", "RUnlock":
			if !deferred[call] {
				releases = append(releases, int(call.Pos()))
			}
		}
		return true
	})
	p := int(pos)
	for _, a := range acquisitions {
		if a >= p {
			continue
		}
		held := true
		for _, r := range releases {
			if a < r && r < p {
				held = false
				break
			}
		}
		if held {
			return true
		}
	}
	return false
}

// calleeOf resolves the called function object, if any.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// deferredNodes marks nodes inside defer statements, so deferred
// Unlocks (which run at exit) do not count as releases on the path.
func deferredNodes(fd *ast.FuncDecl) map[ast.Node]bool {
	marked := make(map[ast.Node]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if m != nil {
				marked[m] = true
			}
			return true
		})
		return true
	})
	return marked
}
