// Window-engine idioms for the pool checker: the edge-to-update
// conversion buffers of the window ingest path (recycled as *[]T so the
// slice header is not re-boxed per batch) and per-bucket scratch
// buffers whose ownership ends when the bucket rotates.
package pooltest

import "sync"

type winUpdate struct {
	a, pos int64
}

var winBufPool = sync.Pool{New: func() any {
	return new([]winUpdate)
}}

// convertBatch is the clean ProcessEdges idiom: get, fill, hand the
// contents onward by copy, reset and Put — no use after the Put.
func convertBatch(items []int64, feed func([]winUpdate)) {
	buf := winBufPool.Get().(*[]winUpdate)
	ups := (*buf)[:0]
	for i, a := range items {
		ups = append(ups, winUpdate{a: a, pos: int64(i)})
	}
	feed(ups)
	*buf = ups[:0]
	winBufPool.Put(buf)
}

// rotateKeepsScratch reuses a bucket's scratch buffer after its
// ownership ended with the rotation Put.
func rotateKeepsScratch() int {
	scratch := winBufPool.Get().(*[]winUpdate)
	winBufPool.Put(scratch)
	return cap(*scratch) // want "used after Put"
}

// doubleRotate puts the same bucket buffer back twice — two rotations
// racing for one scratch buffer.
func doubleRotate() {
	scratch := winBufPool.Get().(*[]winUpdate)
	winBufPool.Put(scratch)
	winBufPool.Put(scratch) // want "double Put"
}

// rotateRebound is the clean rotation: the next bucket re-Gets, opening
// a new ownership window for the same variable.
func rotateRebound() int {
	scratch := winBufPool.Get().(*[]winUpdate)
	winBufPool.Put(scratch)
	scratch = winBufPool.Get().(*[]winUpdate)
	n := cap(*scratch)
	winBufPool.Put(scratch)
	return n
}
