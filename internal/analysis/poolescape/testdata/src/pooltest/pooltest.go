// Package pooltest seeds poolescape violations: use after Put, double
// Put, and escape to package state.  The PR 6 idioms — get-wrappers,
// put-wrappers, the deferred reset-and-Put, rebinding after Put — must
// pass unflagged.
package pooltest

import "sync"

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

var sticky *[]byte

// newBuf is the get-wrapper idiom: returning the pooled buffer hands
// ownership to the caller.
func newBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putBuf is the put-wrapper idiom: reset, then return to the pool.
func putBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// escape parks a pooled buffer in package state: a second long-lived
// owner.
func escape() {
	sticky = bufPool.Get().(*[]byte) // want "package-level"
}

// useAfterPut reads a buffer whose ownership already ended.
func useAfterPut() int {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	return len(*buf) // want "used after Put"
}

// wrapperUseAfter: a put-wrapper call kills the buffer just like Put.
func wrapperUseAfter() int {
	buf := newBuf()
	putBuf(buf)
	return len(*buf) // want "used after Put"
}

// doublePut returns the same buffer twice.
func doublePut() {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	bufPool.Put(buf) // want "double Put"
}

// deferred is the canonical reset-and-Put at function exit; every
// textual use precedes the dynamic Put.
func deferred() int {
	buf := newBuf()
	defer func() {
		*buf = (*buf)[:0]
		bufPool.Put(buf)
	}()
	*buf = append(*buf, 1)
	return len(*buf)
}

// rebound: a fresh Get after the Put starts a new ownership window.
func rebound() int {
	buf := bufPool.Get().(*[]byte)
	bufPool.Put(buf)
	buf = bufPool.Get().(*[]byte)
	n := len(*buf)
	bufPool.Put(buf)
	return n
}
