// The PR 10 routing idioms: a pooled per-call partition scratch (the
// reserve-then-enqueue producer path fills per-shard sub-batches in it,
// admits them, and returns it) must pass unflagged, while parking the
// scratch in package state or touching it after the put-wrapper are
// findings like any other pooled buffer's.
package pooltest

import "sync"

// routeScratch mirrors the fanout's per-call partition buffers: one
// sub-batch slice per shard, recycled whole.
type routeScratch struct {
	subs [][]int
}

var scratchPool = sync.Pool{New: func() any {
	return &routeScratch{subs: make([][]int, 4)}
}}

var stickyScratch *routeScratch

// getScratch is the get-wrapper: ownership passes to the caller.
func getScratch() *routeScratch {
	return scratchPool.Get().(*routeScratch)
}

// putScratch is the put-wrapper: reset every sub-batch (keeping its
// capacity), then return the scratch whole.
func putScratch(sc *routeScratch) {
	for i := range sc.subs {
		sc.subs[i] = sc.subs[i][:0]
	}
	scratchPool.Put(sc)
}

// route is the canonical producer path: get, partition, hand off, put.
// Every use precedes the put, so nothing is flagged.
func route(els []int, dispatch func(int, []int)) {
	sc := getScratch()
	for _, el := range els {
		i := el % len(sc.subs)
		sc.subs[i] = append(sc.subs[i], el)
	}
	for i, sub := range sc.subs {
		if len(sub) > 0 {
			dispatch(i, sub)
		}
	}
	putScratch(sc)
}

// routeEscape parks the scratch in package state: the pool and the
// package would own it at once.
func routeEscape() {
	stickyScratch = scratchPool.Get().(*routeScratch) // want "package-level"
}

// routeUseAfterPut reads a sub-batch after the wrapper returned the
// scratch: the next producer may already be filling it.
func routeUseAfterPut() int {
	sc := getScratch()
	sc.subs[0] = append(sc.subs[0], 7)
	putScratch(sc)
	return len(sc.subs) // want "used after Put"
}

// routeDoublePut returns the same scratch twice.
func routeDoublePut() {
	sc := getScratch()
	putScratch(sc)
	putScratch(sc) // want "double Put"
}
