package poolescape_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, poolescape.Analyzer, "pooltest")
}
