// Package poolescape checks the sync.Pool buffer discipline of the hot
// ingest paths (docs/ANALYSIS.md §poolescape).  The PR 6 pools — the
// fanout's *[]E batch buffers, the server's chunk and edge-conversion
// buffers — are only sound because a pooled buffer has exactly one owner
// at a time: Get hands it to the caller, Put ends the ownership, and
// nothing touches it in between the Put and the next Get.  The analyzer
// enforces, per function and in source order:
//
//   - no use after Put: once a buffer expression is passed to
//     (*sync.Pool).Put — or to a put-wrapper, any function in the package
//     that forwards a parameter to Put, like the server's putEdgeBuf —
//     every later use of that expression is flagged until the expression
//     (or its root variable) is rebound;
//
//   - no double Put: a second Put of the same expression without a
//     rebinding in between is flagged;
//
//   - no escape to package state: assigning a Get result (direct, or via
//     a get-wrapper such as the fanout's newBuf) to a package-level
//     variable gives the buffer a second long-lived owner and is flagged.
//     Returning a pooled buffer is the Get-wrapper idiom and stays legal;
//     the wrapper's caller inherits the obligation.
//
// Statements inside defer are exempt from the kill/use tracking: the
// canonical `defer func() { *buf = (*buf)[:0]; pool.Put(buf) }()` reset
// runs at function exit, after every textual use.  The analysis is
// linear in source order and does not model loops; a use that precedes
// its Put textually but follows it dynamically needs a human, not this
// checker.
package poolescape

import (
	"go/ast"
	"go/types"
	"strings"

	"feww/internal/analysis"
)

// Analyzer is the poolescape checker.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "flags sync.Pool buffers used after Put, double-Put, or stored into package state",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	putWrappers, getWrappers := classifyWrappers(pass)
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		checkFunc(pass, fd, putWrappers, getWrappers)
	})
	return nil
}

// isPool reports whether t is sync.Pool (behind pointers).
func isPool(t types.Type) bool { return analysis.IsNamed(t, "sync", "Pool") }

// calleeOf resolves the called function object, if any.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// classifyWrappers finds the package's put-wrappers (functions that
// forward a parameter to (*sync.Pool).Put; the map carries the parameter
// index) and get-wrappers (functions whose body calls (*sync.Pool).Get
// and that return a value).
func classifyWrappers(pass *analysis.Pass) (map[*types.Func]int, map[*types.Func]bool) {
	puts := make(map[*types.Func]int)
	gets := make(map[*types.Func]bool)
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return
		}
		params := make(map[types.Object]int)
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = len(params)
				}
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name := analysis.ReceiverOf(call)
			if recv == nil || !isPool(pass.TypesInfo.TypeOf(recv)) {
				return true
			}
			switch name {
			case "Put":
				if len(call.Args) == 1 {
					if root := analysis.RootIdent(call.Args[0]); root != nil {
						if idx, ok := params[pass.TypesInfo.Uses[root]]; ok {
							puts[fn] = idx
						}
					}
				}
			case "Get":
				if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
					gets[fn] = true
				}
			}
			return true
		})
	})
	return puts, gets
}

// event kinds collected in source order.
type eventKind int

const (
	evKill   eventKind = iota // Put of a buffer expression
	evRebind                  // assignment to the expression or its root
	evUse                     // any other appearance of the expression
)

type event struct {
	kind eventKind
	pos  int // source offset for ordering
	node ast.Node
}

// checkFunc runs the per-function discipline checks.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, putWrappers map[*types.Func]int, getWrappers map[*types.Func]bool) {
	deferred := deferredNodes(fd)

	// poolDerived tracks locals bound to Get results or get-wrapper
	// results, for the escape rule.
	poolDerived := make(map[types.Object]bool)
	isDerived := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CallExpr:
			if recv, name := analysis.ReceiverOf(e); recv != nil && name == "Get" && isPool(pass.TypesInfo.TypeOf(recv)) {
				return true
			}
			return getWrappers[calleeOf(pass, e)]
		case *ast.TypeAssertExpr:
			return isDerivedExprCall(pass, e.X, getWrappers)
		case *ast.Ident:
			return poolDerived[pass.TypesInfo.Uses[e]]
		}
		return false
	}

	// kills maps a buffer expression string to its kill events.
	kills := make(map[string][]*ast.CallExpr)

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isDerived(n.Rhs[i]) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						poolDerived[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						if obj.Parent() == pass.Pkg.Scope() {
							pass.Reportf(lhs.Pos(),
								"pooled buffer stored into package-level %s; pool buffers must not outlive their request",
								analysis.ExprString(lhs))
							continue
						}
						poolDerived[obj] = true
					}
					continue
				}
				if root := analysis.RootIdent(lhs); root != nil {
					obj := pass.TypesInfo.Uses[root]
					if obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(lhs.Pos(),
							"pooled buffer stored into package-level %s; pool buffers must not outlive their request",
							analysis.ExprString(lhs))
					}
				}
			}
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			if expr, ok := putArgument(pass, n, putWrappers); ok {
				kills[analysis.ExprString(expr)] = append(kills[analysis.ExprString(expr)], n)
			}
		}
		return true
	})

	if len(kills) == 0 {
		return
	}

	// For each killed expression, order kills / rebinds / uses by
	// position and flag uses and re-kills in a dead window.
	for exprStr, killCalls := range kills {
		var events []event
		for _, kc := range killCalls {
			events = append(events, event{evKill, int(kc.Pos()), kc})
		}
		root := exprStr
		if i := strings.IndexAny(exprStr, ".["); i > 0 {
			root = exprStr[:i]
		}
		isKill := make(map[ast.Node]bool, len(killCalls))
		for _, kc := range killCalls {
			isKill[kc] = true
		}
		ast.Inspect(fd, func(n ast.Node) bool {
			if deferred[n] {
				return false
			}
			if isKill[n] {
				return false // the Put's own argument is not a use
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					ls := normalize(analysis.ExprString(lhs))
					if ls == exprStr || ls == root {
						events = append(events, event{evRebind, int(lhs.Pos()), lhs})
					}
				}
			case *ast.RangeStmt:
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					if lhs == nil {
						continue
					}
					ls := normalize(analysis.ExprString(lhs))
					if ls == exprStr || ls == root {
						events = append(events, event{evRebind, int(lhs.Pos()), lhs})
					}
				}
			case ast.Expr:
				if matchesUse(normalize(analysis.ExprString(n)), exprStr) {
					events = append(events, event{evUse, int(n.Pos()), n})
					return false // do not double-count sub-expressions
				}
			}
			return true
		})
		flagWindow(pass, exprStr, events)
	}
}

// flagWindow walks the position-sorted events and reports uses and
// double-Puts inside a kill window.
func flagWindow(pass *analysis.Pass, exprStr string, events []event) {
	// Insertion sort by position (event counts are tiny).
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	var killed *ast.CallExpr
	for _, ev := range events {
		switch ev.kind {
		case evKill:
			call := ev.node.(*ast.CallExpr)
			if killed != nil {
				pass.Reportf(call.Pos(), "double Put of pooled buffer %s (first Put at %s)",
					exprStr, pass.Fset.Position(killed.Pos()))
				continue
			}
			killed = call
		case evRebind:
			killed = nil
		case evUse:
			if killed != nil && ev.pos > int(killed.End()) {
				pass.Reportf(ev.node.Pos(), "pooled buffer %s used after Put (Put at %s)",
					exprStr, pass.Fset.Position(killed.Pos()))
			}
		}
	}
}

// putArgument returns the buffer expression a call kills: the argument
// of (*sync.Pool).Put, or the pooled parameter of a put-wrapper call.
func putArgument(pass *analysis.Pass, call *ast.CallExpr, putWrappers map[*types.Func]int) (ast.Expr, bool) {
	if recv, name := analysis.ReceiverOf(call); recv != nil && name == "Put" && isPool(pass.TypesInfo.TypeOf(recv)) {
		if len(call.Args) == 1 {
			return call.Args[0], true
		}
		return nil, false
	}
	if idx, ok := putWrappers[calleeOf(pass, call)]; ok && idx < len(call.Args) {
		return call.Args[idx], true
	}
	return nil, false
}

// deferredNodes marks every node inside a defer statement (the deferred
// call and, for a deferred closure, its whole body).
func deferredNodes(fd *ast.FuncDecl) map[ast.Node]bool {
	marked := make(map[ast.Node]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if m != nil {
				marked[m] = true
			}
			return true
		})
		return true
	})
	return marked
}

// normalize strips leading dereferences and parentheses from an
// expression string so *buf matches a kill of buf.
func normalize(s string) string {
	for strings.HasPrefix(s, "*") || strings.HasPrefix(s, "(") {
		s = strings.TrimPrefix(s, "*")
		s = strings.TrimPrefix(s, "(")
		s = strings.TrimSuffix(s, ")")
	}
	return s
}

// matchesUse reports whether a normalized expression string reads the
// killed buffer: the expression itself, or a path reaching through it.
func matchesUse(use, killed string) bool {
	return use == killed ||
		strings.HasPrefix(use, killed+".") ||
		strings.HasPrefix(use, killed+"[")
}

// isDerivedExprCall helps isDerived see through x.(T) type assertions on
// Get results.
func isDerivedExprCall(pass *analysis.Pass, e ast.Expr, getWrappers map[*types.Func]bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if recv, name := analysis.ReceiverOf(call); recv != nil && name == "Get" && isPool(pass.TypesInfo.TypeOf(recv)) {
		return true
	}
	return getWrappers[calleeOf(pass, call)]
}
