// Package load type-checks the module's packages from source using only
// the standard library, so the fewwvet analyzers (internal/analysis) can
// run without golang.org/x/tools.  It is a miniature go/packages: one
// `go list -export -deps -json` invocation discovers the package graph
// and builds export data for every dependency into the build cache, the
// listed targets are parsed and type-checked from source, and imports
// resolve through the gc export-data importer — exactly how `go vet`
// units see the world.  Dir loads a single directory the go tool ignores
// (an analysistest testdata package) through the same importer, so
// seeded-violation packages type-check against the real module types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the parsed files plus the
// go/types artifacts an analyzer pass consumes.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sizes      types.Sizes
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// loader is the shared process-wide state: the module root, the export
// file index, and the importer cache.  All fewwvet analyzers and all
// analysistest runs in one process share it, so export data is located
// once per import path.
type loader struct {
	mu      sync.Mutex
	root    string            // module root (directory of go.mod)
	exports map[string]string // import path -> export data file
	fset    *token.FileSet
	imp     types.Importer
	sizes   types.Sizes
}

var shared = &loader{
	exports: make(map[string]string),
	fset:    token.NewFileSet(),
	sizes:   types.SizesFor("gc", runtime.GOARCH),
}

func init() {
	shared.imp = importer.ForCompiler(shared.fset, "gc", shared.lookup)
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func (l *loader) moduleRoot() (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.root != "" {
		return l.root, nil
	}
	root, err := moduleRoot(".")
	if err != nil {
		return "", err
	}
	l.root = root
	return root, nil
}

// goList runs `go list -export -json` with the given arguments in dir and
// decodes the concatenated JSON package objects.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		e := new(listEntry)
		if err := dec.Decode(e); err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func (l *loader) record(entries []*listEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
}

// lookup locates export data for one import path, invoking `go list` for
// paths outside the graphs already indexed (a testdata-only import).  It
// is the gc importer's resolver; returning an error surfaces as a type
// error in the importing package.
func (l *loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		root, err := l.moduleRoot()
		if err != nil {
			return nil, err
		}
		entries, err := goList(root, path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %v", path, err)
		}
		l.record(entries)
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("load: go list found no export data for %q", path)
		}
	}
	return os.Open(file)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// check parses files and type-checks them as one package.
func (l *loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l.imp, Sizes: l.sizes}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sizes:      l.sizes,
	}, nil
}

// Packages loads, parses, and type-checks the packages matched by the go
// package patterns (e.g. "./..."), resolved relative to the current
// directory exactly as the go tool would.  Dependencies — including the
// module's own packages when imported — come from gc export data, which
// the single `go list -export -deps` invocation builds as a side effect.
func Packages(patterns ...string) ([]*Package, error) {
	entries, err := goList(".", append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	shared.record(entries)
	var pkgs []*Package
	for _, e := range entries {
		if e.DepOnly || e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := shared.check(e.ImportPath, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Dir loads the single package rooted at dir — a directory the go tool
// does not see, such as an analysistest testdata package.  Every .go file
// in the directory is included; imports resolve through the shared
// export-data importer, so testdata may import the module's real
// packages.  The synthetic import path is "testdata/" plus the directory
// base name.
func Dir(dir string) (*Package, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	return shared.check("testdata/"+filepath.Base(dir), dir, names)
}
