// Package retrysafe checks the client retry policy around the /ingest
// family (docs/ANALYSIS.md §retrysafe).  server.Client retries a request
// once on connection refused (nothing reached the server) and — only for
// idempotent requests — on connection reset, which can strike after the
// server applied part of the request.  Replaying /ingest after a reset
// double-applies updates, and with replicated ranges would silently
// diverge the copies; PR 4 established and PR 7's fault harness proved
// the /ingest-never-reset-retries contract.  The analyzer keeps it true
// structurally:
//
//   - a call that passes a path containing "/ingest" to any function
//     with a bool parameter named "idempotent" must pass the literal
//     false for it (the Client.do plumbing, and any future mirror of it);
//
//   - reset-retry decisions stay centralized: errors.Is(err,
//     syscall.ECONNRESET) anywhere outside a function named "retryable"
//     is flagged — scattered reset checks are how an /ingest replay
//     sneaks in;
//
//   - outside package feww/server, raw net/http requests built against a
//     "/ingest" URL (http.Post, http.NewRequest, ...) are flagged: the
//     gateway and tools must reach /ingest through server.Client, where
//     the no-reset-retry policy lives.  (Tests are not analyzed, so the
//     fault-injection harness's raw requests are unaffected.)
package retrysafe

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"feww/internal/analysis"
)

// Analyzer is the retrysafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "retrysafe",
	Doc:  "keeps the /ingest family out of the connection-reset retry path",
	Run:  run,
}

const serverPath = "feww/server"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var enclosing []*ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = append(enclosing, n)
			case *ast.CallExpr:
				checkIdempotentArg(pass, n)
				checkResetCheck(pass, n, current(enclosing))
				checkRawIngest(pass, n)
			}
			return true
		})
	}
	return nil
}

func current(stack []*ast.FuncDecl) *ast.FuncDecl {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// stringConst returns the constant string value of e, if it has one.
func stringConst(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkIdempotentArg flags calls that mark an /ingest-family request
// idempotent.
func checkIdempotentArg(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeOf(pass, call)
	if fn == nil {
		return
	}
	sig := fn.Signature()
	idx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() == "idempotent" {
			if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
				idx = i
			}
			break
		}
	}
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	ingest := false
	for i, arg := range call.Args {
		if i == idx {
			continue
		}
		if s, ok := stringConst(pass, arg); ok && strings.Contains(s, "/ingest") {
			ingest = true
			break
		}
	}
	if !ingest {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[idx]]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value) {
		return
	}
	pass.Reportf(call.Args[idx].Pos(),
		"/ingest request marked idempotent: a conn-reset retry could double-apply updates; pass false (PR 4 contract)")
}

// checkResetCheck flags decentralized ECONNRESET retry decisions.
func checkResetCheck(pass *analysis.Pass, call *ast.CallExpr, fd *ast.FuncDecl) {
	fn := calleeOf(pass, call)
	if fn == nil || fn.Name() != "Is" || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
		return
	}
	if len(call.Args) != 2 {
		return
	}
	sel, ok := call.Args[1].(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "syscall" || obj.Name() != "ECONNRESET" {
		return
	}
	if fd != nil && fd.Name.Name == "retryable" {
		return
	}
	pass.Reportf(call.Pos(),
		"conn-reset check outside retryable(): reset-retry decisions are centralized so the /ingest family can never replay")
}

// rawHTTPFuncs are the net/http request constructors the raw-ingest rule
// watches.
var rawHTTPFuncs = map[string]bool{"Post": true, "PostForm": true, "NewRequest": true, "NewRequestWithContext": true, "Get": true}

// checkRawIngest flags raw net/http requests aimed at /ingest outside
// the server package.
func checkRawIngest(pass *analysis.Pass, call *ast.CallExpr) {
	if pass.Pkg.Path() == serverPath {
		return
	}
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" || !rawHTTPFuncs[fn.Name()] {
		return
	}
	for _, arg := range call.Args {
		if s, ok := stringConst(pass, arg); ok && strings.Contains(s, "/ingest") {
			pass.Reportf(call.Pos(),
				"raw net/http request to the /ingest family; go through server.Client so the no-reset-retry policy applies")
			return
		}
	}
}

// calleeOf resolves the called function object, if any.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
