// Package retrytest seeds retrysafe violations: /ingest requests marked
// idempotent, scattered conn-reset checks, and raw net/http requests to
// the ingest family.  The legal shapes — false for /ingest, true for
// genuinely idempotent endpoints, the reset check inside retryable —
// must pass unflagged.
package retrytest

import (
	"errors"
	"net/http"
	"syscall"
)

type client struct{}

// do mirrors server.Client's request plumbing.
func (c *client) do(method, path string, idempotent bool) error {
	_ = method
	_ = path
	_ = idempotent
	return nil
}

func sendRequests(c *client) {
	_ = c.do("POST", "/ingest", false)
	_ = c.do("POST", "/ingest/stream", false)
	_ = c.do("POST", "/checkpoint", true)
	_ = c.do("POST", "/ingest", true) // want "marked idempotent"
}

// dynamicIdempotent: a non-constant flag on an /ingest path cannot be
// proven safe, so it is flagged too.
func dynamicIdempotent(c *client, retry bool) {
	_ = c.do("POST", "/ingest", retry) // want "marked idempotent"
}

// retryable is the one place reset-retry policy may live.
func retryable(err error, idempotent bool) bool {
	if errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	return idempotent && errors.Is(err, syscall.ECONNRESET)
}

// scattered re-derives the reset decision away from the policy point.
func scattered(err error) bool {
	return errors.Is(err, syscall.ECONNRESET) // want "outside retryable"
}

// rawIngest bypasses server.Client entirely.
func rawIngest() {
	resp, err := http.Post("http://node0/ingest", "application/octet-stream", nil) // want "raw net/http"
	if err == nil {
		resp.Body.Close()
	}
}

// rawOther: non-ingest endpoints may use net/http freely.
func rawOther() {
	resp, err := http.Get("http://node0/stats")
	if err == nil {
		resp.Body.Close()
	}
}
