package retrysafe_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/retrysafe"
)

func TestRetrySafe(t *testing.T) {
	analysistest.Run(t, retrysafe.Analyzer, "retrytest")
}
