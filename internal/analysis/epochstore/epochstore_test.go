package epochstore_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/epochstore"
)

func TestEpochStore(t *testing.T) {
	analysistest.Run(t, epochstore.Analyzer, "epochtest")
}
