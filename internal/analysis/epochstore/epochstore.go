// Package epochstore checks the single-writer publication protocol of
// atomic.Pointer epoch fields (docs/ANALYSIS.md §epochstore).  The
// runtime's published-view epochs (rtShard.view) rely on three rules the
// type system cannot express:
//
//   - Only plain Store publishes.  Swap and CompareAndSwap imply
//     multiple writers racing for the pointer; the epoch protocol has
//     exactly one writer (the owning shard worker), whose read-modify-
//     write of the epoch counter is only sound because nothing else can
//     intervene.  Both are flagged unconditionally.
//
//   - Store publishes a freshly built value.  Re-storing a pointer that
//     was ever shared (a previous Load, a field, a parameter) republishes
//     memory some reader may hold, resurrecting the aliasing bugs the
//     immutable-view design exists to prevent.  The argument must be a
//     &T{...} literal, directly or through a local bound to one.
//
//   - Stores live beside the field.  The publication path is part of the
//     field's definition: a Store in another file (or package) is a
//     second writer path reviewers will not find.  The analyzer requires
//     every Store of an atomic.Pointer field to sit in the file that
//     declares the field.
//
// Loads are free — that is the point of the design — but a pointer
// obtained from Load is read-only: assignments through it are flagged
// (the generic half of viewimmut's view-specific rule, applied to every
// atomic.Pointer pointee).
package epochstore

import (
	"go/ast"
	"go/types"

	"feww/internal/analysis"
)

// Analyzer is the epochstore checker.
var Analyzer = &analysis.Analyzer{
	Name: "epochstore",
	Doc:  "enforces the single-writer fresh-value protocol on atomic.Pointer epoch fields",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.FuncDecls(func(fd *ast.FuncDecl) {
		check(pass, fd)
	})
	return nil
}

// pointerField resolves the object a Store/Swap/CAS receiver denotes —
// `sh.view` yields the `view` field object — when its type is an
// atomic.Pointer instantiation.
func pointerField(pass *analysis.Pass, recv ast.Expr) types.Object {
	if !analysis.IsNamed(pass.TypesInfo.TypeOf(recv), "sync/atomic", "Pointer") {
		return nil
	}
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.ParenExpr:
		return pointerField(pass, e.X)
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	loaded := make(map[types.Object]bool) // locals holding Load results

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			recv, name := analysis.ReceiverOf(n)
			if recv == nil {
				return true
			}
			switch name {
			case "Swap", "CompareAndSwap":
				if pointerField(pass, recv) != nil {
					pass.Reportf(n.Pos(),
						"%s on atomic.Pointer %s: epoch pointers are single-writer; publish with Store of a fresh value from the owning path",
						name, analysis.ExprString(recv))
				}
			case "Store":
				obj := pointerField(pass, recv)
				if obj == nil {
					return true
				}
				checkLocality(pass, n, recv, obj)
				if len(n.Args) == 1 && !freshPointer(pass, fd, n.Args[0]) {
					pass.Reportf(n.Args[0].Pos(),
						"Store of %s into atomic.Pointer %s: publish a freshly built &T{...}, never a shared or previously loaded pointer",
						analysis.ExprString(n.Args[0]), analysis.ExprString(recv))
				}
			}
		case *ast.AssignStmt:
			// Track locals bound to Load results, and flag writes through
			// them.
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if isPointerLoad(pass, n.Rhs[i]) {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							loaded[obj] = true
						} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
							loaded[obj] = true
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				flagWriteThroughLoad(pass, loaded, lhs)
			}
		case *ast.IncDecStmt:
			flagWriteThroughLoad(pass, loaded, n.X)
		}
		return true
	})
}

// checkLocality requires the Store to sit in the same file that declares
// the pointer field.
func checkLocality(pass *analysis.Pass, call *ast.CallExpr, recv ast.Expr, obj types.Object) {
	if obj.Pkg() != pass.Pkg {
		pass.Reportf(call.Pos(),
			"Store of atomic.Pointer %s outside its declaring package %s: publication paths live beside the field",
			analysis.ExprString(recv), obj.Pkg().Path())
		return
	}
	declFile := pass.Fset.Position(obj.Pos()).Filename
	storeFile := pass.Fset.Position(call.Pos()).Filename
	if declFile != storeFile {
		pass.Reportf(call.Pos(),
			"Store of atomic.Pointer %s outside its declaring file %s: publication paths live beside the field",
			analysis.ExprString(recv), declFile)
	}
}

// isPointerLoad reports whether e is a Load() on an atomic.Pointer.
func isPointerLoad(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, name := analysis.ReceiverOf(call)
	return name == "Load" && recv != nil && pointerField(pass, recv) != nil
}

// flagWriteThroughLoad reports assignments whose target path passes
// through a local holding a Load result.
func flagWriteThroughLoad(pass *analysis.Pass, loaded map[types.Object]bool, lhs ast.Expr) {
	// Reassigning the local itself is fine; only paths through it write
	// into the published pointee.
	if _, isIdent := lhs.(*ast.Ident); isIdent {
		return
	}
	root := analysis.RootIdent(lhs)
	if root == nil {
		return
	}
	if loaded[pass.TypesInfo.Uses[root]] {
		pass.Reportf(lhs.Pos(),
			"write through pointer loaded from an atomic.Pointer (%s); loaded values are read-only",
			analysis.ExprString(lhs))
	}
}

// freshPointer reports whether e is a freshly built &T{...} — directly,
// or via a local every binding of which is one.
func freshPointer(pass *analysis.Pass, fd *ast.FuncDecl, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		_, isLit := e.X.(*ast.CompositeLit)
		return isLit
	case *ast.ParenExpr:
		return freshPointer(pass, fd, e.X)
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return false
		}
		found := false
		ok := true
		ast.Inspect(fd, func(n ast.Node) bool {
			as, isAssign := n.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, isID := lhs.(*ast.Ident)
				if !isID {
					continue
				}
				if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
					found = true
					if !freshPointer(pass, fd, as.Rhs[i]) {
						ok = false
					}
				}
			}
			return true
		})
		return found && ok
	default:
		return false
	}
}
