// Package epochtest seeds epochstore violations: non-Store publication,
// republishing shared pointers, cross-file Stores, and writes through
// loaded values.  The canonical publish idioms must pass unflagged.
package epochtest

import "sync/atomic"

type payload struct {
	n     int
	items []int64
}

type shard struct {
	view atomic.Pointer[payload]
}

// publish is the canonical single-writer idiom: Store of a fresh
// literal, beside the field's declaration.
func (s *shard) publish(n int) {
	s.view.Store(&payload{n: n})
}

// publishVia builds the fresh value through a local first.
func (s *shard) publishVia(n int) {
	p := &payload{n: n}
	p.items = append(p.items, int64(n))
	s.view.Store(p)
}

// republish stores a pointer readers may already hold.
func (s *shard) republish() {
	p := s.view.Load()
	s.view.Store(p) // want "freshly built"
}

// swap implies a second writer racing for the pointer.
func (s *shard) swap(p *payload) *payload {
	return s.view.Swap(p) // want "single-writer"
}

// cas likewise.
func (s *shard) cas(old, next *payload) bool {
	return s.view.CompareAndSwap(old, next) // want "single-writer"
}

// readThenWrite mutates the published pointee.
func (s *shard) readThenWrite() {
	p := s.view.Load()
	p.n = 1 // want "read-only"
}

// readOnly is the whole point of the design: loads are free.
func (s *shard) readOnly() int {
	p := s.view.Load()
	return p.n + len(p.items)
}
