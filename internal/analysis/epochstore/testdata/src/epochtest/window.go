// Window-engine idioms for the epoch checker: a shard whose published
// view ages against a clock it does not own (the engine's accepted
// count, advanced by every shard's traffic).  The barrier republication
// must rebuild the view against the current clock — re-storing the old
// view "because nothing local changed" republishes memory readers hold
// AND freezes the liveness horizon, so idle shards would never age out.
package epochtest

import "sync/atomic"

type windowView struct {
	epoch   uint64
	horizon int64 // oldest live position when the view was built
	served  []int64
}

type windowShard struct {
	clock *atomic.Int64 // engine-owned; advances with other shards' traffic
	view  atomic.Pointer[windowView]
}

// republishIdle is the clean barrier republication: even with no local
// traffic the view is rebuilt fresh, so its horizon tracks the clock.
func (w *windowShard) republishIdle() {
	old := w.view.Load()
	w.view.Store(&windowView{
		epoch:   old.epoch + 1,
		horizon: w.clock.Load(),
		served:  append([]int64(nil), old.served...),
	})
}

// reuseIdle re-stores the loaded view when nothing local changed:
// shared memory, frozen horizon.
func (w *windowShard) reuseIdle() {
	old := w.view.Load()
	w.view.Store(old) // want "freshly built"
}

// ageInPlace advances the horizon through the loaded view instead of
// republishing — a torn read for anyone holding the pointer.
func (w *windowShard) ageInPlace() {
	v := w.view.Load()
	v.horizon = w.clock.Load() // want "read-only"
}

// bumpEpochInPlace increments the epoch of a published view.
func (w *windowShard) bumpEpochInPlace() {
	v := w.view.Load()
	v.epoch++ // want "read-only"
}
