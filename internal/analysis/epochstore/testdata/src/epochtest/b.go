package epochtest

import "sync/atomic"

// crossFile stores into a field declared in a.go: a second publication
// path reviewers will not find next to the field.
func crossFile(s *shard) {
	s.view.Store(&payload{}) // want "declaring file"
}

type local struct {
	cur atomic.Pointer[payload]
}

// set stores beside its own field's declaration — clean.
func (l *local) set() {
	l.cur.Store(&payload{})
}
