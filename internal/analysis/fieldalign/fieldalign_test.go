package fieldalign_test

import (
	"testing"

	"feww/internal/analysis/analysistest"
	"feww/internal/analysis/fieldalign"
)

func TestFieldAlign(t *testing.T) {
	analysistest.Run(t, fieldalign.Analyzer, "aligntest")
}
