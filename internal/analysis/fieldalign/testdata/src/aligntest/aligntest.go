// Package aligntest seeds fieldalign cases: a padded struct that can
// shrink, an already-optimal layout, and a generic struct whose layout
// depends on a type parameter (skipped).
package aligntest

type padded struct { // want "reordering fields"
	a bool
	b int64
	c bool
}

type tight struct {
	b int64
	a bool
	c bool
}

type generic[T any] struct {
	v    T
	flag bool
}

var (
	_ = padded{}
	_ = tight{}
	_ = generic[int]{}
)
