// Package fieldalign reports struct types whose fields could be
// reordered to occupy less memory (docs/ANALYSIS.md §fieldalign).  The
// hot-path structs — the shard's per-edge records, the reservoir slots,
// the published view — are allocated in bulk, so padding wasted per
// value multiplies by millions of elements; PR 6's profiling showed the
// batch buffers dominated by element size.  The analyzer computes the gc
// layout of every struct declared in the package and, when sorting the
// fields largest-alignment-first would shrink the struct, reports the
// current and achievable sizes with a suggested order.
//
// The check is advisory and opt-in (fewwvet -run fieldalign): field
// order can be part of an API (struct literals without keys, cgo,
// serialization) and reordering is a human decision.  Generic structs
// whose layout depends on a type parameter are skipped — there is no
// single answer to report.
package fieldalign

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"feww/internal/analysis"
)

// Analyzer is the fieldalign checker.
var Analyzer = &analysis.Analyzer{
	Name: "fieldalign",
	Doc:  "reports struct field orderings that waste padding (advisory, opt-in)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := pass.TypesInfo.TypeOf(ts.Type).(*types.Struct)
			if !ok {
				return true
			}
			checkStruct(pass, ts, st)
			return true
		})
	}
	return nil
}

// sizable reports whether every field of st has a layout the target's
// Sizes can compute — false for fields involving type parameters.
func sizable(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if dependsOnTypeParam(st.Field(i).Type(), make(map[types.Type]bool)) {
			return false
		}
	}
	return true
}

func dependsOnTypeParam(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Array:
		return dependsOnTypeParam(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if dependsOnTypeParam(t.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Named:
		if t.TypeArgs() != nil {
			for i := 0; i < t.TypeArgs().Len(); i++ {
				if dependsOnTypeParam(t.TypeArgs().At(i), seen) {
					return true
				}
			}
		}
		return dependsOnTypeParam(t.Underlying(), seen)
	case *types.Alias:
		return dependsOnTypeParam(types.Unalias(t), seen)
	}
	return false
}

// layoutSize computes the gc size of a struct with fields in the given
// order, including trailing padding to the struct's alignment.
func layoutSize(sizes types.Sizes, fields []*types.Var) int64 {
	var off, maxAlign int64 = 0, 1
	for _, f := range fields {
		a := sizes.Alignof(f.Type())
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		off += sizes.Sizeof(f.Type())
	}
	return roundUp(off, maxAlign)
}

func roundUp(x, a int64) int64 {
	if a <= 0 {
		return x
	}
	return (x + a - 1) / a * a
}

// optimalOrder returns the fields sorted to minimize padding: descending
// alignment, then descending size, then declaration order for stability.
func optimalOrder(sizes types.Sizes, fields []*types.Var) []*types.Var {
	idx := make(map[*types.Var]int, len(fields))
	for i, f := range fields {
		idx[f] = i
	}
	out := append([]*types.Var(nil), fields...)
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := sizes.Alignof(out[i].Type()), sizes.Alignof(out[j].Type())
		if ai != aj {
			return ai > aj
		}
		si, sj := sizes.Sizeof(out[i].Type()), sizes.Sizeof(out[j].Type())
		if si != sj {
			return si > sj
		}
		return idx[out[i]] < idx[out[j]]
	})
	return out
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *types.Struct) {
	if st.NumFields() < 2 || !sizable(st) {
		return
	}
	sizes := pass.TypesSizes
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	cur := layoutSize(sizes, fields)
	best := optimalOrder(sizes, fields)
	opt := layoutSize(sizes, best)
	if opt >= cur {
		return
	}
	names := make([]string, len(best))
	for i, f := range best {
		names[i] = f.Name()
	}
	pass.Reportf(ts.Pos(),
		"struct %s is %d bytes; reordering fields to [%s] would make it %d",
		ts.Name.Name, cur, strings.Join(names, ", "), opt)
}
