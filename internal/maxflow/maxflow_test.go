package maxflow

import (
	"testing"
	"testing/quick"

	"feww/internal/xrand"
)

func TestSingleArc(t *testing.T) {
	g := New()
	s, v := g.AddNode(), g.AddNode()
	id := g.AddArc(s, v, 7)
	if got := g.Solve(s, v); got != 7 {
		t.Fatalf("flow = %d, want 7", got)
	}
	if got := g.Flow(id); got != 7 {
		t.Fatalf("arc flow = %d, want 7", got)
	}
}

func TestDiamond(t *testing.T) {
	// s -> a -> t and s -> b -> t, plus a cross arc a -> b.
	g := New()
	s, a, b, tt := g.AddNode(), g.AddNode(), g.AddNode(), g.AddNode()
	g.AddArc(s, a, 10)
	g.AddArc(s, b, 3)
	g.AddArc(a, tt, 6)
	g.AddArc(b, tt, 8)
	g.AddArc(a, b, 5)
	if got := g.Solve(s, tt); got != 13 {
		t.Fatalf("flow = %d, want 13", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New()
	s, tt := g.AddNode(), g.AddNode()
	if got := g.Solve(s, tt); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestZeroCapacity(t *testing.T) {
	g := New()
	s, tt := g.AddNode(), g.AddNode()
	g.AddArc(s, tt, 0)
	if got := g.Solve(s, tt); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestBipartiteMatchingComplete(t *testing.T) {
	// Perfect matching in K_{5,5} has size 5.
	g := New()
	s := g.AddNode()
	left := g.AddNodes(5)
	right := g.AddNodes(5)
	tt := g.AddNode()
	for i := 0; i < 5; i++ {
		g.AddArc(s, left+i, 1)
		g.AddArc(right+i, tt, 1)
		for j := 0; j < 5; j++ {
			g.AddArc(left+i, right+j, 1)
		}
	}
	if got := g.Solve(s, tt); got != 5 {
		t.Fatalf("matching = %d, want 5", got)
	}
}

func TestIncrementalResolve(t *testing.T) {
	// Solving, adding an arc, and solving again accumulates flow.
	g := New()
	s, v, tt := g.AddNode(), g.AddNode(), g.AddNode()
	g.AddArc(s, v, 4)
	g.AddArc(v, tt, 2)
	if got := g.Solve(s, tt); got != 2 {
		t.Fatalf("first solve = %d, want 2", got)
	}
	g.AddArc(v, tt, 5)
	if got := g.Solve(s, tt); got != 2 {
		t.Fatalf("second solve = %d, want 2 more", got)
	}
}

func TestAddArcPanicsOnBadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New()
	g.AddArc(0, 1, 1)
}

// TestFlowConservation checks, on random bipartite graphs, that the flow is
// feasible: per-arc flow within capacity, conservation at internal nodes,
// and value consistent at source and sink.
func TestFlowConservation(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		nl := 2 + rng.Intn(6)
		nr := 2 + rng.Intn(6)
		g := New()
		s := g.AddNode()
		left := g.AddNodes(nl)
		right := g.AddNodes(nr)
		tt := g.AddNode()
		type arcRec struct {
			id, from, to int
			cap          int64
		}
		var arcs []arcRec
		for i := 0; i < nl; i++ {
			c := int64(1 + rng.Intn(5))
			arcs = append(arcs, arcRec{g.AddArc(s, left+i, c), s, left + i, c})
		}
		for j := 0; j < nr; j++ {
			c := int64(1 + rng.Intn(5))
			arcs = append(arcs, arcRec{g.AddArc(right+j, tt, c), right + j, tt, c})
		}
		for i := 0; i < nl; i++ {
			for j := 0; j < nr; j++ {
				if rng.Coin(0.5) {
					c := int64(1 + rng.Intn(4))
					arcs = append(arcs, arcRec{g.AddArc(left+i, right+j, c), left + i, right + j, c})
				}
			}
		}
		val := g.Solve(s, tt)
		net := make(map[int]int64)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < 0 || f > a.cap {
				return false
			}
			net[a.from] -= f
			net[a.to] += f
		}
		if net[s] != -val || net[tt] != val {
			return false
		}
		for v, x := range net {
			if v != s && v != tt && x != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDinicBipartite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New()
		s := g.AddNode()
		left := g.AddNodes(50)
		right := g.AddNodes(50)
		tt := g.AddNode()
		for x := 0; x < 50; x++ {
			g.AddArc(s, left+x, 1)
			g.AddArc(right+x, tt, 1)
			for y := 0; y < 50; y++ {
				if (x+y)%3 != 0 {
					g.AddArc(left+x, right+y, 1)
				}
			}
		}
		g.Solve(s, tt)
	}
}
