// Package maxflow provides a small integral maximum-flow solver (Dinic's
// algorithm).  It exists to make Baranyai's theorem executable: the
// constructive proof of the theorem adds one vertex of [n] at a time and
// uses the integrality of maximum flow to round a fractional assignment of
// that vertex to partial hyperedges.  The graphs involved are tiny
// (hundreds of nodes), but the solver is a general-purpose one.
package maxflow

// Graph is a flow network under construction.  Nodes are dense integers
// allocated by AddNode; arcs carry integral capacities.
type Graph struct {
	// arcs is the arena of directed arcs; arc i and its reverse arc i^1 are
	// stored adjacently, so the reverse of arcs[i] is arcs[i^1].
	arcs []arc
	adj  [][]int32 // adj[v] = indices into arcs leaving v
	// scratch for Dinic
	level []int32
	iter  []int32
}

type arc struct {
	to  int32
	cap int64
}

// New returns an empty network.
func New() *Graph {
	return &Graph{}
}

// AddNode allocates and returns a new node id.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddNodes allocates k nodes and returns the id of the first.
func (g *Graph) AddNodes(k int) int {
	first := len(g.adj)
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, nil)
	}
	return first
}

// NumNodes returns the number of allocated nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// AddArc adds a directed arc from -> to with the given capacity and returns
// its id, usable with Flow after solving.
func (g *Graph) AddArc(from, to int, capacity int64) int {
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic("maxflow: AddArc with unallocated node")
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, arc{to: int32(to), cap: capacity})
	g.arcs = append(g.arcs, arc{to: int32(from), cap: 0})
	g.adj[from] = append(g.adj[from], int32(id))
	g.adj[to] = append(g.adj[to], int32(id+1))
	return id
}

// Flow returns the flow pushed through arc id (its residual reverse
// capacity).  Only meaningful after Solve.
func (g *Graph) Flow(id int) int64 {
	return g.arcs[id^1].cap
}

// Solve runs Dinic's algorithm and returns the maximum flow from s to t.
// The graph may be re-solved after adding more arcs; capacities are
// consumed (residual state is kept), matching incremental use.
func (g *Graph) Solve(s, t int) int64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	n := len(g.adj)
	if cap(g.level) < n {
		g.level = make([]int32, n)
		g.iter = make([]int32, n)
	}
	g.level = g.level[:n]
	g.iter = g.iter[:n]

	var total int64
	for g.bfs(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			f := g.dfs(s, t, int64(1)<<62)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// bfs builds the level graph; returns whether t is reachable.
func (g *Graph) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	queue := make([]int32, 0, len(g.adj))
	g.level[s] = 0
	queue = append(queue, int32(s))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[v] {
			a := g.arcs[id]
			if a.cap > 0 && g.level[a.to] < 0 {
				g.level[a.to] = g.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return g.level[t] >= 0
}

// dfs sends one blocking-flow augmenting path.
func (g *Graph) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] < int32(len(g.adj[v])); g.iter[v]++ {
		id := g.adj[v][g.iter[v]]
		a := &g.arcs[id]
		if a.cap <= 0 || g.level[a.to] != g.level[v]+1 {
			continue
		}
		d := g.dfs(int(a.to), t, min64(f, a.cap))
		if d > 0 {
			a.cap -= d
			g.arcs[id^1].cap += d
			return d
		}
	}
	return 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
