package experiments

import (
	"fmt"
	"strings"

	"feww/internal/comm"
)

func init() {
	register("F1", F1BitVectorInstance)
	register("F2", F2ReductionGraph)
	register("F3", F3AMRIInstance)
}

// F1BitVectorInstance reproduces Figure 1: the worked Bit-Vector-
// Learning(3, 4, 5) instance held by Alice, Bob, and Charlie, including the
// concatenated strings Z_1..Z_4 the caption lists.
func F1BitVectorInstance(cfg Config) (*Table, error) {
	inst := comm.Figure1Instance()
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: Bit-Vector-Learning(3, 4, 5) worked instance",
		Claim:   "Z_1 = 1001011011, Z_2 = 01000, Z_3 = 01011, Z_4 = 011110101000011",
		Columns: []string{"index j", "levels", "Z_j", "|Z_j|"},
	}
	wantZ := []string{"1001011011", "01000", "01011", "011110101000011"}
	for j := 0; j < inst.N; j++ {
		z := bitString(inst.Z(j))
		if z != wantZ[j] {
			return nil, fmt.Errorf("F1: Z_%d = %s, want %s (paper)", j+1, z, wantZ[j])
		}
		t.AddRow(j+1, inst.Level(j), z, len(z))
	}
	t.AddNote("party sets: X_1 = {1,2,3,4}, X_2 = {1,4}, X_3 = {4} (paper's 1-based indexing)")
	t.AddNote("Charlie must output >= ceil(1.01*5) = %d positions of one Z_j", inst.RequiredBits())
	return t, nil
}

// F2ReductionGraph reproduces Figure 2: Alice's edges in the Theorem 4.8
// reduction of the Figure 1 instance.  Reading the chosen B-slots of a_4
// left-to-right must spell Y^4_1 = 01111, as the caption states.
func F2ReductionGraph(cfg Config) (*Table, error) {
	inst := comm.Figure1Instance()
	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: reduction of the Figure 1 instance to a FEwW graph",
		Claim:   "Alice's edges on a_4 spell Y^4_1 = 01111 when read left-to-right",
		Columns: []string{"party", "edges", "a_4 spells", "expected"},
	}
	want := []string{"01111", "01010", "00011"} // Y^4_1, Y^4_2, Y^4_3
	for i := 0; i < inst.P; i++ {
		edges := inst.PartyEdges(i)
		// Decode vertex 3 (paper's a_4): collect its bits in column order.
		bits := make([]byte, inst.K)
		for _, e := range edges {
			if e[0] != 3 {
				continue
			}
			level, pos, bit := inst.DecodeWitness(e[1])
			if level != i {
				return nil, fmt.Errorf("F2: edge of party %d decodes to level %d", i, level)
			}
			bits[pos] = bit
		}
		got := bitString(bits)
		if got != want[i] {
			return nil, fmt.Errorf("F2: party %d spells %s for a_4, want %s", i+1, got, want[i])
		}
		t.AddRow(partyName(i), len(edges), got, want[i])
	}
	t.AddNote("vertex a_4 has degree k*p = 15 = d, the unique promise vertex; each party contributes k = 5 edges to it")
	return t, nil
}

func partyName(i int) string {
	switch i {
	case 0:
		return "Alice"
	case 1:
		return "Bob"
	case 2:
		return "Charlie"
	default:
		return fmt.Sprintf("party %d", i+1)
	}
}

// F3AMRIInstance reproduces Figure 3: the Augmented-Matrix-Row-Index
// (4, 6, 2) worked instance — Bob must output row 3 knowing 4 positions of
// every other row — and then actually solves it with the Lemma 6.3
// protocol.
func F3AMRIInstance(cfg Config) (*Table, error) {
	inst := comm.Figure3Instance()
	t := &Table{
		ID:      "F3",
		Title:   "Figure 3: Augmented-Matrix-Row-Index(4, 6, 2) worked instance",
		Claim:   "Bob outputs row 3 = 000010; he knows m-k = 4 positions of each other row",
		Columns: []string{"row", "matrix", "Bob knows", "role"},
	}
	for i := 0; i < inst.N; i++ {
		role := ""
		known := "-"
		if i == inst.J {
			role = "target row J"
		} else {
			known = fmt.Sprintf("%v", inst.Known[i])
			if len(inst.Known[i]) != inst.M-inst.K {
				return nil, fmt.Errorf("F3: row %d reveals %d positions, want %d", i, len(inst.Known[i]), inst.M-inst.K)
			}
		}
		t.AddRow(i+1, bitString(inst.X[i]), known, role)
	}

	// Solve it: alpha = 1 gives k = d - 1 = 2, matching the instance.
	res, err := comm.SolveAMRI(inst, 1, cfg.Seed^0xf3, 0.2, 2)
	if err != nil {
		return nil, err
	}
	if !res.Correct {
		return nil, fmt.Errorf("F3: protocol reconstructed %s, want %s",
			bitString(res.Row), bitString(inst.X[inst.J]))
	}
	t.AddNote("Lemma 6.3 protocol reconstructs row %d exactly: %s", inst.J+1, bitString(res.Row))
	t.AddNote("direct runs found %d ones, inverted runs %d zeros", res.OnesFound, res.ZerosFnd)
	return t, nil
}

func bitString(bits []byte) string {
	var b strings.Builder
	for _, x := range bits {
		b.WriteByte('0' + x)
	}
	return b.String()
}
