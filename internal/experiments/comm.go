package experiments

import (
	"math"

	"feww/internal/comm"
	"feww/internal/xrand"
)

func init() {
	register("E4", E4SetDisjointness)
	register("E5", E5BitVectorLearning)
	register("E7", E7MatrixRowIndex)
}

// E4SetDisjointness validates the Theorem 4.1 reduction: a p/1.01-
// approximation FEwW algorithm distinguishes pairwise-disjoint from
// uniquely-intersecting set families, and the memory state handed between
// parties therefore obeys the Omega(n/p^2) Set-Disjointness bound.  We run
// both instance kinds across p and record the decision accuracy plus the
// measured message size against the n/p^2 model.
func E4SetDisjointness(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Set-Disjointness_p via FEwW (Theorem 4.1 reduction)",
		Claim: "Thm 4.1: the reduction decides disjointness; space Omega(n/alpha^2) follows",
		Columns: []string{
			"p", "n", "k", "acc disjoint", "acc intersect", "max msg words", "n/p^2",
		},
	}
	n := cfg.pick(4000, 40000)
	k := 3
	trials := cfg.trials(10, 50)
	for _, p := range []int{2, 3, 4, 6} {
		okDisj, okInter := 0, 0
		maxMsg := 0
		setSize := n / (2 * p)
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*31 + uint64(p)*1009
			for _, intersect := range []bool{false, true} {
				rng := xrand.New(seed + boolBit(intersect))
				inst, err := comm.NewSetDisjointness(rng, p, n, setSize, intersect)
				if err != nil {
					return nil, err
				}
				ans, stats, err := comm.SolveSetDisjointness(inst, k, seed^0xe4)
				if err != nil {
					return nil, err
				}
				if stats.MaxMsgWords > maxMsg {
					maxMsg = stats.MaxMsgWords
				}
				if ans == intersect {
					if intersect {
						okInter++
					} else {
						okDisj++
					}
				}
			}
		}
		t.AddRow(p, n, k, ratio(okDisj, trials), ratio(okInter, trials), maxMsg, n/(p*p))
	}
	t.AddNote("disjoint accuracy must be 100%% (witnesses are genuine edges, never fabricated)")
	t.AddNote("intersect accuracy is the w.h.p. guarantee of Theorem 3.2 applied at d = k*p")
	return t, nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// E5BitVectorLearning validates the Theorem 4.8 reduction: one FEwW run
// over the p parties' reduction edges recovers >= 1.01k bits of some
// string Z_I, and the memory handed between parties tracks the
// k * n^{1/(p-1)} / p lower-bound model.
func E5BitVectorLearning(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Bit-Vector-Learning(p, n, k) via FEwW (Theorem 4.8 reduction)",
		Claim: "Thm 4.7/4.8: protocol learns >= 1.01k bits; msg size ~ k*n^(1/(p-1))/p",
		Columns: []string{
			"p", "n", "k", "success", "all bits correct", "avg msg words", "model k*n^(1/(p-1))",
		},
	}
	trials := cfg.trials(10, 60)
	type pcase struct{ p, r, k int }
	cases := []pcase{{2, 64, 20}, {3, 16, 20}, {4, 8, 20}}
	if !cfg.Quick {
		cases = []pcase{{2, 256, 40}, {3, 32, 40}, {4, 12, 40}, {5, 8, 40}}
	}
	for _, c := range cases {
		n := ipow(c.r, c.p-1)
		succ, correct, sumMsg := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*8191 + uint64(c.p)
			rng := xrand.New(seed)
			inst, err := comm.NewBitVectorLearning(rng, c.p, n, c.k)
			if err != nil {
				return nil, err
			}
			res, err := comm.SolveBitVectorLearning(inst, seed^0xe5)
			if err != nil {
				return nil, err
			}
			sumMsg += res.Stats.MaxMsgWords
			if res.EnoughBits {
				succ++
				if res.AllCorrect {
					correct++
				}
			}
		}
		model := float64(c.k) * math.Pow(float64(n), 1/float64(c.p-1))
		t.AddRow(c.p, n, c.k, ratio(succ, trials), ratio(correct, succ),
			float64(sumMsg)/float64(trials), model)
	}
	t.AddNote("every learned bit must be correct: witnesses decode to genuine Y-bits by construction")
	t.AddNote("the trivial 0-communication protocol learns only k bits; the reduction reaches 1.01k, the regime the lower bound prices")
	return t, nil
}

func ipow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// E7MatrixRowIndex validates the Lemma 6.3 protocol: Theta(alpha * log n)
// repetitions of an insertion-deletion FEwW run, under public random column
// permutations, reconstruct Bob's entire unknown row.  The repetition count
// and the per-repetition message size multiply into the Theorem 6.4 bound.
func E7MatrixRowIndex(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Augmented-Matrix-Row-Index via insertion-deletion FEwW (Lemma 6.3)",
		Claim: "Lemma 6.3/Thm 6.4: Theta(alpha log n) reps reconstruct row J exactly",
		Columns: []string{
			"n", "m=2d", "alpha", "reps", "row correct", "1s found", "0s found",
		},
	}
	trials := cfg.trials(6, 10)
	nRows := cfg.pick(12, 32)
	for _, alpha := range []int{2, 3} {
		d := 6 * alpha // keep k = d/alpha - 1 integral and small
		m := 2 * d
		k := d/alpha - 1
		// The repetition count SolveAMRI derives internally (repScale = 1).
		reps := int(math.Ceil(2 * float64(alpha) * math.Log(float64(nRows)+2)))
		okRows, sumOnes, sumZeros := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*127 + uint64(alpha)*17
			rng := xrand.New(seed)
			inst, err := comm.NewAMRI(rng, nRows, m, k)
			if err != nil {
				return nil, err
			}
			res, err := comm.SolveAMRI(inst, alpha, seed^0xe7, 0.05, 1)
			if err != nil {
				return nil, err
			}
			if res.Correct {
				okRows++
			}
			sumOnes += res.OnesFound
			sumZeros += res.ZerosFnd
		}
		t.AddRow(nRows, m, alpha, reps, ratio(okRows, trials),
			float64(sumOnes)/float64(trials), float64(sumZeros)/float64(trials))
	}
	t.AddNote("each repetition reveals ~d/alpha uniformly-spread positions; coverage of all 2d columns needs ~alpha*log reps")
	return t, nil
}
