package experiments

import (
	"feww/internal/core"
	"feww/internal/workload"
)

func init() {
	register("E10", E10Ablations)
}

// E10Ablations probes the design decisions docs/EXPERIMENTS.md §2 calls out:
//
//  1. reservoir size — sweeping ScaleFactor below 1 locates where the
//     Theorem 3.2 guarantee starts to erode, showing the paper's
//     s = ln(n) * n^(1/alpha) is not slack;
//  2. staggered thresholds — per-run success of Algorithm 2's alpha
//     parallel Deg-Res-Sampling runs on skewed inputs, showing the
//     geometric n_i/n_{i+1} argument empirically (runs with mid-range
//     thresholds carry the success probability);
//  3. turnstile sampler budget — the same sweep for Algorithm 3.
func E10Ablations(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "ablations: reservoir size, staggered thresholds, sampler budget",
		Claim: "docs/EXPERIMENTS.md §2: the paper's constants sit at the knee of the success curve",
		Columns: []string{
			"component", "scale", "success", "avg words", "per-run success",
		},
	}
	trials := cfg.trials(10, 50)
	n := int64(cfg.pick(2048, 16384))
	d := int64(cfg.pick(60, 200))
	alpha := 3

	// 1+2: insertion-only reservoir scale sweep with per-run profile.
	for _, scale := range []float64{0.02, 0.1, 0.5, 1.0} {
		succ, sumWords := 0, 0
		runHits := make([]int, alpha)
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*6151
			inst, err := workload.NewPlanted(workload.PlantedConfig{
				N: n, M: 4 * n, Heavy: 1, HeavyDeg: d,
				NoiseEdges: int(2 * n), NoiseSkew: 1.5,
				Order: workload.Shuffled, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			algo, err := core.NewInsertOnly(core.InsertOnlyConfig{
				N: n, D: d, Alpha: alpha, Seed: seed ^ 0xa10, ScaleFactor: scale,
			})
			if err != nil {
				return nil, err
			}
			for _, u := range inst.Updates {
				algo.ProcessEdge(u.A, u.B)
			}
			sumWords += algo.SpaceWords()
			if _, err := algo.Result(); err == nil {
				succ++
			}
			for i, ok := range algo.RunSucceeded() {
				if ok {
					runHits[i]++
				}
			}
		}
		t.AddRow("insert-only reservoir", scale, ratio(succ, trials),
			sumWords/trials, perRunString(runHits, trials))
	}

	// 3: turnstile sampler budget sweep.
	trialsID := cfg.trials(6, 12)
	nID := int64(cfg.pick(48, 96))
	dID := int64(cfg.pick(16, 24))
	for _, scale := range []float64{0.005, 0.02, 0.05, 0.2} {
		succ, sumWords := 0, 0
		for trial := 0; trial < trialsID; trial++ {
			seed := cfg.Seed + uint64(trial)*12289
			inst, err := workload.NewChurn(workload.ChurnConfig{
				Planted: workload.PlantedConfig{
					N: nID, M: 4 * nID, Heavy: 1, HeavyDeg: dID,
					NoiseEdges: int(nID), Order: workload.Shuffled, Seed: seed,
				},
				ChurnEdges: int(2 * nID),
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			algo, err := core.NewInsertDelete(core.InsertDeleteConfig{
				N: nID, M: 4 * nID, D: dID, Alpha: 2,
				Seed: seed ^ 0xa10, ScaleFactor: scale,
			})
			if err != nil {
				return nil, err
			}
			for _, u := range inst.Updates {
				if err := algo.ProcessUpdate(u.A, u.B, int(u.Op)); err != nil {
					return nil, err
				}
			}
			sumWords += algo.SpaceWords()
			if _, err := algo.Result(); err == nil {
				succ++
			}
		}
		t.AddRow("turnstile samplers", scale, ratio(succ, trialsID), sumWords/trialsID, "-")
	}
	t.AddNote("success should be monotone in scale and saturate well before scale = 1 (the proofs take generous constants)")
	t.AddNote("per-run column shows hits for thresholds i*d/alpha, i=0..alpha-1: on skewed input the low-threshold run drowns in light vertices while some staggered run always lands — the Theorem 3.2 argument")
	return t, nil
}

func perRunString(hits []int, trials int) string {
	out := ""
	for i, h := range hits {
		if i > 0 {
			out += "/"
		}
		out += ratio(h, trials)
	}
	return out
}
