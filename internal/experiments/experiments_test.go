package experiments

import (
	"strings"
	"testing"
)

const testSeed = 42

func quickCfg() Config { return Config{Seed: testSeed, Quick: true} }

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "F1", "F2", "F3"}
	if len(ids) != len(want) {
		t.Fatalf("got %d ids %v, want %d", len(ids), ids, len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s (all: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", quickCfg()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes the whole quick suite; each experiment
// validates its own invariants internally (verified witnesses, exact figure
// reproduction) and returns an error on violation.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("the quick experiment suite still takes ~1.5 minutes; run without -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			tab, err := Run(id, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Fatalf("table id %s, want %s", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs E1 three times; run without -short")
	}
	a, err := Run("E1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed gave different tables:\n%s\nvs\n%s", a, b)
	}
	c, err := Run("E1", Config{Seed: testSeed + 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Log("different seeds gave identical E1 tables (possible but unlikely)")
	}
}

func TestTableFormat(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Claim:   "none",
		Columns: []string{"a", "long column"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("wide cell value", 0.333333333)
	tab.AddNote("a note with %d arg", 7)
	out := tab.String()
	for _, want := range []string{"== T0: demo", "paper: none", "a note with 7 arg", "wide cell value", "2.5", "0.3333"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Errorf("got %d lines, want 7:\n%s", len(lines), out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:       "1",
		2.5:     "2.5",
		0.33333: "0.3333",
		-4:      "-4",
		1000000: "1000000",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %s, want %s", in, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := ratio(1, 2); got != "50%" {
		t.Errorf("ratio(1,2) = %s", got)
	}
	if got := ratio(3, 0); got != "n/a" {
		t.Errorf("ratio(3,0) = %s", got)
	}
}

func TestChiSquare95(t *testing.T) {
	// Reference values (k, 95th percentile): 7 -> 14.07, 31 -> 44.99.
	for _, c := range []struct {
		k    int
		want float64
	}{{7, 14.07}, {31, 44.99}} {
		got := chiSquare95(c.k)
		if got < c.want*0.95 || got > c.want*1.05 {
			t.Errorf("chiSquare95(%d) = %.2f, want ~%.2f", c.k, got, c.want)
		}
	}
}

func TestLadderGuesses(t *testing.T) {
	gs := ladderGuesses(100, 1.0) // powers of two up to 100
	want := []int64{1, 2, 4, 8, 16, 32, 64}
	if len(gs) != len(want) {
		t.Fatalf("got %v, want %v", gs, want)
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("got %v, want %v", gs, want)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("TestEveryExperimentRuns covers the suite; RunAll re-runs it")
	}
	tabs, err := RunAll(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Fatalf("got %d tables, want %d", len(tabs), len(IDs()))
	}
}
