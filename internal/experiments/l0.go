package experiments

import (
	"math"

	"feww/internal/l0"
	"feww/internal/xrand"
)

func init() {
	register("E9", E9L0Sampler)
}

// E9L0Sampler validates the §5 substrate (Jowhari-Sağlam-Tardos L0
// sampling): after arbitrary insert/delete churn, a sampler returns a
// uniformly random member of the surviving support, with small failure
// probability.  Uniformity is checked with a chi-square statistic over a
// known support; correctness requires every returned index to be live with
// its exact count.
func E9L0Sampler(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "L0 sampler: correctness, success rate, and uniformity under churn",
		Claim: "Jowhari et al. [26]: uniform sample from the non-zero support, failure prob delta",
		Columns: []string{
			"support", "churn", "samplers", "success", "all live", "chi2", "chi2 95% crit",
		},
	}
	universe := uint64(1 << 20)
	for _, support := range []int{8, 32} {
		samplers := cfg.pick(400, 4000)
		churn := cfg.pick(2000, 20000)
		rng := xrand.New(cfg.Seed ^ 0xe9)

		// Fixed support: indices i*31+7; churn inserts/deletes outside it.
		live := make(map[uint64]int64, support)
		for i := 0; i < support; i++ {
			live[uint64(i*31+7)] = 1
		}

		counts := make(map[uint64]int)
		succ, allLive := 0, true
		for sIdx := 0; sIdx < samplers; sIdx++ {
			s := l0.NewSampler(rng.Split(), universe, l0.DefaultParams)
			for idx, c := range live {
				s.Update(idx, c)
			}
			// Churn: random walk of paired insert/delete outside the support.
			for c := 0; c < churn/support; c++ {
				idx := uint64(support*31+100) + rng.Uint64n(universe/2)
				s.Update(idx, 1)
				s.Update(idx, -1)
			}
			idx, cnt, ok := s.Sample()
			if !ok {
				continue
			}
			succ++
			want, isLive := live[idx]
			if !isLive || cnt != want {
				allLive = false
			}
			counts[idx]++
		}

		// Chi-square against uniform over the support.
		expected := float64(succ) / float64(support)
		chi2 := 0.0
		for i := 0; i < support; i++ {
			obs := float64(counts[uint64(i*31+7)])
			chi2 += (obs - expected) * (obs - expected) / expected
		}
		crit := chiSquare95(support - 1)
		t.AddRow(support, churn, samplers, ratio(succ, samplers), allLive, chi2, crit)
	}
	t.AddNote("'all live' must be true: a sampler either fails or returns a genuine surviving index with its exact count")
	t.AddNote("chi2 below the 95%% critical value is consistent with uniformity (a statistical check, not a proof)")
	return t, nil
}

// chiSquare95 approximates the 95th percentile of the chi-square
// distribution with k degrees of freedom via the Wilson-Hilferty cube
// approximation — accurate to a few percent for k >= 3.
func chiSquare95(k int) float64 {
	z := 1.6449 // 95th percentile of the standard normal
	kf := float64(k)
	h := 2.0 / (9.0 * kf)
	return kf * math.Pow(1-h+z*math.Sqrt(h), 3)
}
