package experiments

import (
	"fmt"
	"math"

	"feww/internal/baseline"
	"feww/internal/core"
	"feww/internal/stream"
	"feww/internal/workload"
	"feww/internal/xrand"
)

func init() {
	register("E1", E1DegResSampling)
	register("E2", E2InsertOnly)
	register("E3", E3SpaceVsThreshold)
}

// E1DegResSampling validates Lemma 3.1: Deg-Res-Sampling(d1, d2, s) on a
// graph with n1 vertices of degree >= d1, of which n2 have degree
// >= d1 + d2 - 1, succeeds with probability at least 1 - e^(-s*n2/n1).
// The experiment plants exactly that two-tier degree profile and sweeps the
// reservoir size s across the phase transition at s ~ n1/n2.
func E1DegResSampling(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Deg-Res-Sampling success probability vs reservoir size",
		Claim: "Lemma 3.1: success prob >= 1 - exp(-s*n2/n1)",
		Columns: []string{
			"n1", "n2", "d1", "d2", "s", "bound", "measured", "trials",
		},
	}
	n1 := cfg.pick(200, 1000)
	n2 := cfg.pick(10, 50)
	d1, d2 := int64(4), int64(6)
	trials := cfg.trials(60, 400)

	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		s := int(math.Ceil(mult * float64(n1) / float64(n2)))
		succ := 0
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*7919 + uint64(s)
			ups := twoTierGraph(seed, n1, n2, d1, d2)
			rng := xrand.New(seed ^ 0xe1)
			tracker := core.NewDegreeTracker()
			dr := core.NewDegRes(rng, d1, d2, s)
			for _, u := range ups {
				deg := tracker.Inc(u.A)
				dr.Process(u.A, u.B, deg)
			}
			if _, ok := dr.Result(); ok {
				succ++
			}
		}
		bound := 1 - math.Exp(-float64(s)*float64(n2)/float64(n1))
		t.AddRow(n1, n2, d1, d2, s, bound, float64(succ)/float64(trials), trials)
	}
	t.AddNote("measured success should dominate the bound at every s; the transition sits near s = n1/n2 = %d", n1/n2)
	return t, nil
}

// twoTierGraph builds a bipartite stream with n1 vertices of degree d1, of
// which n2 are upgraded to degree d1 + d2 - 1, delivered in random order.
func twoTierGraph(seed uint64, n1, n2 int, d1, d2 int64) []stream.Update {
	rng := xrand.New(seed)
	var ups []stream.Update
	for v := 0; v < n1; v++ {
		deg := d1
		if v < n2 {
			deg = d1 + d2 - 1
		}
		for b := int64(0); b < deg; b++ {
			ups = append(ups, stream.Ins(int64(v), b))
		}
	}
	rng.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
	return ups
}

// E2InsertOnly validates Theorem 3.2: Algorithm 2 finds a d/alpha-witness
// neighbourhood with probability >= 1 - 1/n, in space whose data-dependent
// part scales like n^(1/alpha) * d.  The sweep covers n and alpha; every
// reported witness set is verified against the ground truth.
func E2InsertOnly(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "insertion-only FEwW: success rate and space scaling",
		Claim: "Theorem 3.2: success >= 1-1/n, space O(n log n + n^(1/alpha) d log^2 n)",
		Columns: []string{
			"n", "d", "alpha", "target", "success", "avg words", "model words", "ratio",
		},
	}
	trials := cfg.trials(12, 60)
	ns := []int{1 << 10, 1 << 12}
	if !cfg.Quick {
		ns = []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	}
	for _, n := range ns {
		d := int64(cfg.pick(60, 200))
		for _, alpha := range []int{1, 2, 3, 4} {
			succ, sumWords := 0, 0
			for trial := 0; trial < trials; trial++ {
				seed := cfg.Seed + uint64(trial)*104729 + uint64(n) + uint64(alpha)
				inst, err := workload.NewPlanted(workload.PlantedConfig{
					N: int64(n), M: int64(4 * n), Heavy: 1, HeavyDeg: d,
					NoiseEdges: 4 * n, Order: workload.Shuffled, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				algo, err := core.NewInsertOnly(core.InsertOnlyConfig{
					N: int64(n), D: d, Alpha: alpha, Seed: seed ^ 0xe2,
				})
				if err != nil {
					return nil, err
				}
				for _, u := range inst.Updates {
					algo.ProcessEdge(u.A, u.B)
				}
				sumWords += algo.SpaceWords()
				nb, err := algo.Result()
				if err != nil {
					continue
				}
				if int64(nb.Size()) < algo.WitnessTarget() {
					return nil, fmt.Errorf("E2: undersized neighbourhood %d < %d", nb.Size(), algo.WitnessTarget())
				}
				if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
					return nil, fmt.Errorf("E2: %w", err)
				}
				succ++
			}
			lnN := math.Log(float64(n))
			model := float64(n) + math.Pow(float64(n), 1/float64(alpha))*float64(d)*lnN
			avg := float64(sumWords) / float64(trials)
			t.AddRow(n, d, alpha, core.CeilDiv(d, int64(alpha)), ratio(succ, trials), avg, model, avg/model)
		}
	}
	t.AddNote("space ratio should stay roughly constant across rows (the model captures the scaling)")
	t.AddNote("alpha=1 stores the full degree table plus d witnesses; larger alpha shrinks the n^(1/alpha) term")
	return t, nil
}

// E3SpaceVsThreshold validates the §1.3 observation that witness reporting
// inverts the space/threshold relationship: classical FE algorithms use
// space proportional to m/d (easier for larger d), while FEwW must store at
// least d/alpha witnesses (harder for larger d).
func E3SpaceVsThreshold(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "space vs frequency threshold d: FE (m/d) against FEwW (d/alpha)",
		Claim: "§1.3: FE space ~ m/d, FEwW space trivially Omega(d/alpha)",
		Columns: []string{
			"d", "stream m", "MG words", "SS words", "FEwW words (data)", "witnesses",
		},
	}
	total := cfg.pick(20000, 200000)
	n := int64(cfg.pick(2000, 20000))
	alpha := 2
	for _, dFrac := range []int{100, 50, 20, 10, 5} {
		d := int64(total / dFrac)
		inst := workload.ZipfItems(cfg.Seed+uint64(dFrac), n, total, 1.3, d)
		if len(inst.HeavyA) == 0 {
			t.AddRow(d, total, "-", "-", "-", "no heavy item at this d")
			continue
		}
		// Classical FE: k = m/d counters guarantee catching items with
		// frequency >= d (Misra-Gries error bound m/(k+1) < d).
		k := total / int(d)
		mg := baseline.NewMisraGries(k)
		ss := baseline.NewSpaceSaving(k + 1)
		for _, u := range inst.Updates {
			mg.Process(u.A)
			ss.Process(u.A)
		}
		algo, err := core.NewInsertOnly(core.InsertOnlyConfig{
			N: n, D: d, Alpha: alpha, Seed: cfg.Seed ^ 0xe3,
		})
		if err != nil {
			return nil, err
		}
		for _, u := range inst.Updates {
			algo.ProcessEdge(u.A, u.B)
		}
		// Subtract the degree-table term (paid regardless of d) to expose
		// the d-dependent witness storage.
		dataWords := algo.SpaceWords() - algo.DegreeTableWords()
		witnesses := int64(0)
		if nb, err := algo.Result(); err == nil {
			witnesses = int64(nb.Size())
		}
		t.AddRow(d, total, mg.SpaceWords(), ss.SpaceWords(), dataWords, witnesses)
	}
	t.AddNote("as d grows, MG/SS words shrink (~m/d) while FEwW data words grow (~ n^(1/2) d term + witnesses)")
	return t, nil
}
