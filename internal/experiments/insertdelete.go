package experiments

import (
	"fmt"
	"math"

	"feww/internal/core"
	"feww/internal/workload"
)

func init() {
	register("E6", E6InsertDelete)
}

// E6InsertDelete validates Theorem 5.4 and its two lemmas: the
// insertion-deletion algorithm succeeds w.h.p. on both dense inputs (many
// vertices at the d/alpha threshold — Lemma 5.2, vertex sampling) and
// sparse inputs (few such vertices — Lemma 5.3, edge sampling), under heavy
// insert-then-delete churn that would bury an insertion-only sampler.
// The winning strategy is recorded to expose the density crossover.
func E6InsertDelete(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "insertion-deletion FEwW: dense vs sparse regimes under churn",
		Claim: "Thm 5.4 + Lemmas 5.2/5.3: vertex sampling wins on dense graphs, edge sampling on sparse; space ~O(d n/alpha^2)",
		Columns: []string{
			"regime", "n", "d", "alpha", "success", "vertex wins", "edge wins", "space words",
		},
	}
	trials := cfg.trials(6, 24)
	n := int64(cfg.pick(96, 192))
	d := int64(cfg.pick(24, 32))
	scale := 0.02

	for _, regime := range []string{"sparse", "dense"} {
		for _, alpha := range []int{2, 4} {
			succ, vertexWins, edgeWins, sumWords := 0, 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				seed := cfg.Seed + uint64(trial)*2053 + uint64(alpha)
				inst, err := e6Instance(regime, n, d, alpha, seed)
				if err != nil {
					return nil, err
				}
				algo, err := core.NewInsertDelete(core.InsertDeleteConfig{
					N: n, M: 4 * n, D: d, Alpha: alpha,
					Seed: seed ^ 0xe6, ScaleFactor: scale,
				})
				if err != nil {
					return nil, err
				}
				for _, u := range inst.Updates {
					if err := algo.ProcessUpdate(u.A, u.B, int(u.Op)); err != nil {
						return nil, err
					}
				}
				sumWords += algo.SpaceWords()
				nb, strat, err := algo.ResultWithStrategy()
				if err != nil {
					continue
				}
				if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
					return nil, fmt.Errorf("E6: %w", err)
				}
				succ++
				switch strat {
				case core.StrategyVertex:
					vertexWins++
				case core.StrategyEdge:
					edgeWins++
				}
			}
			t.AddRow(regime, n, d, alpha, ratio(succ, trials),
				vertexWins, edgeWins, sumWords/trials)
		}
	}
	t.AddNote("dense instances plant ~n/x vertices at the d/alpha threshold (x = max(n/alpha, sqrt n)); sparse plant a single heavy vertex")
	t.AddNote("ScaleFactor %.2f keeps laptop-size runs; the strategy split, not the constant, is the claim", scale)
	return t, nil
}

// e6Instance builds a churned instance for the requested density regime.
func e6Instance(regime string, n, d int64, alpha int, seed uint64) (*workload.Planted, error) {
	x := math.Max(float64(n)/float64(alpha), math.Sqrt(float64(n)))
	heavy := 1
	if regime == "dense" {
		heavy = int(math.Ceil(float64(n)/x)) * 4
		if int64(heavy) > n/2 {
			heavy = int(n / 2)
		}
	}
	return workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: n, M: 4 * n, Heavy: heavy, HeavyDeg: d,
			NoiseEdges: int(n), Order: workload.Shuffled, Seed: seed,
		},
		ChurnEdges: int(2 * n),
		Seed:       seed,
	})
}
