package experiments

import (
	"strings"
	"testing"

	"feww/internal/stream"
)

func TestTwoTierGraphShape(t *testing.T) {
	const n1, n2 = 50, 5
	const d1, d2 = 4, 6
	ups := twoTierGraph(1, n1, n2, d1, d2)
	deg := stream.Degrees(ups)
	if len(deg) != n1 {
		t.Fatalf("%d vertices with edges, want %d", len(deg), n1)
	}
	upgraded, base := 0, 0
	for _, d := range deg {
		switch d {
		case d1:
			base++
		case d1 + d2 - 1:
			upgraded++
		default:
			t.Fatalf("unexpected degree %d", d)
		}
	}
	if upgraded != n2 || base != n1-n2 {
		t.Fatalf("upgraded=%d base=%d, want %d and %d", upgraded, base, n2, n1-n2)
	}
}

func TestE6InstanceRegimes(t *testing.T) {
	sparse, err := e6Instance("sparse", 96, 24, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sparse.HeavyA) != 1 {
		t.Fatalf("sparse regime planted %d heavy vertices, want 1", len(sparse.HeavyA))
	}
	dense, err := e6Instance("dense", 96, 24, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense.HeavyA) <= 1 {
		t.Fatalf("dense regime planted %d heavy vertices, want > 1", len(dense.HeavyA))
	}
	// Churn must cancel: final live edges far below stream length.
	st := stream.Summarize(dense.Updates)
	if st.Deletes == 0 {
		t.Fatal("churn instance has no deletions")
	}
	if st.LiveEdges >= st.Updates {
		t.Fatalf("live %d of %d updates: churn did not cancel", st.LiveEdges, st.Updates)
	}
}

func TestMaxDegreeUndirected(t *testing.T) {
	ups := []stream.Update{
		stream.Ins(1, 2), stream.Ins(1, 3), stream.Ins(1, 4), stream.Ins(2, 3),
	}
	v, d := maxDegreeUndirected(ups)
	if v != 1 || d != 3 {
		t.Fatalf("got vertex %d degree %d, want 1 and 3", v, d)
	}
}

func TestBitString(t *testing.T) {
	if got := bitString([]byte{1, 0, 1, 1}); got != "1011" {
		t.Fatalf("bitString = %q", got)
	}
	if got := bitString(nil); got != "" {
		t.Fatalf("bitString(nil) = %q", got)
	}
}

func TestPartyName(t *testing.T) {
	names := []string{partyName(0), partyName(1), partyName(2), partyName(3)}
	want := []string{"Alice", "Bob", "Charlie", "party 4"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("partyName(%d) = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestPerRunString(t *testing.T) {
	if got := perRunString([]int{5, 10}, 10); got != "50%/100%" {
		t.Fatalf("perRunString = %q", got)
	}
}

func TestIpow(t *testing.T) {
	cases := map[[2]int]int{{2, 10}: 1024, {3, 0}: 1, {5, 3}: 125}
	for in, want := range cases {
		if got := ipow(in[0], in[1]); got != want {
			t.Fatalf("ipow(%d, %d) = %d, want %d", in[0], in[1], got, want)
		}
	}
}

// Semantic assertions on quick-mode outputs: these parse the tables the
// suite prints and check the claims that must hold at ANY scale.
func TestE4DisjointNeverMisclassified(t *testing.T) {
	tab, err := Run("E4", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	col := indexOf(tab.Columns, "acc disjoint")
	for _, row := range tab.Rows {
		if row[col] != "100%" {
			t.Fatalf("disjoint accuracy %s in row %v — a fabricated witness slipped through", row[col], row)
		}
	}
}

func TestE2AlwaysSucceeds(t *testing.T) {
	tab, err := Run("E2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	col := indexOf(tab.Columns, "success")
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[col], "%") {
			t.Fatalf("bad success cell %q", row[col])
		}
		if row[col] < "90%" && row[col] != "100%" { // lexical compare is fine for NN%
			t.Fatalf("success %s below 90%% in row %v", row[col], row)
		}
	}
}

func TestF1HasFourRows(t *testing.T) {
	tab, err := Run("F1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Figure 1 table has %d rows, want 4 (Z_1..Z_4)", len(tab.Rows))
	}
}

func indexOf(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}
