package experiments

import (
	"fmt"
	"math"

	"feww/internal/core"
	"feww/internal/stream"
	"feww/internal/workload"
)

func init() {
	register("E8", E8StarDetection)
}

// E8StarDetection validates Lemma 3.3 and Corollaries 3.4/5.5: the (1+eps)
// guess ladder lifts FEwW to Star Detection with approximation
// (1+eps)*alpha, at a log_{1+eps}(n) space factor.  On preferential-
// attachment social graphs (the paper's influencer example), the detected
// star's size is compared to the true maximum degree, and the
// semi-streaming space bound is checked.
func E8StarDetection(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Star Detection on social graphs via the (1+eps) guess ladder",
		Claim: "Lemma 3.3 + Cor 3.4: (1+eps)*alpha-approx, O~(n) space at alpha = O(log n)",
		Columns: []string{
			"vertices", "edges", "Delta", "star size", "approx ratio", "guarantee", "space words",
		},
	}
	trials := cfg.trials(5, 20)
	sizes := []int{500, 2000}
	if !cfg.Quick {
		sizes = []int{500, 2000, 8000, 32000}
	}
	eps := 0.5
	alpha := 2
	for _, v := range sizes {
		worst := 0.0
		sumSpace := 0
		var lastDelta, lastStar int64
		var lastEdges int
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*37 + uint64(v)
			ups := workload.SocialGraph(seed, v, 4)
			sd, err := newStarDetector(int64(v), eps, alpha, seed^0xe8)
			if err != nil {
				return nil, err
			}
			// One call per undirected edge; the detector builds the
			// bipartite double cover H = (V, V, E') internally.
			for _, u := range ups {
				if err := sd.ProcessEdge(u.A, u.B); err != nil {
					return nil, err
				}
			}
			sumSpace += sd.SpaceWords()
			_, delta := maxDegreeUndirected(ups)
			nb, err := sd.Result()
			if err != nil {
				return nil, fmt.Errorf("E8: star detection failed on %d-vertex graph: %w", v, err)
			}
			approx := float64(delta) / float64(nb.Size())
			if approx > worst {
				worst = approx
			}
			lastDelta, lastStar, lastEdges = delta, int64(nb.Size()), len(ups)
		}
		guarantee := (1 + eps) * float64(alpha)
		t.AddRow(v, lastEdges, lastDelta, lastStar, worst, guarantee, sumSpace/trials)
	}
	t.AddNote("approx ratio is the worst over %d trials and must stay <= the (1+eps)*alpha guarantee", trials)
	t.AddNote("space grows near-linearly in n: the ladder multiplies the FEwW space by log_{1+eps} n")
	return t, nil
}

// newStarDetector wires an insertion-only FEwW factory into the guess
// ladder, mirroring the public feww.NewStarDetector but staying inside
// internal packages.
func newStarDetector(n int64, eps float64, alpha int, seed uint64) (*core.StarDetector, error) {
	factory := func(d int64) (core.Algorithm, error) {
		seed++
		return core.NewInsertOnly(core.InsertOnlyConfig{N: n, D: d, Alpha: alpha, Seed: seed})
	}
	return core.NewStarDetector(n, eps, factory)
}

// maxDegreeUndirected computes the maximum degree of the undirected graph
// described by the updates (each update is one undirected edge).
func maxDegreeUndirected(ups []stream.Update) (vertex int64, degree int64) {
	deg := make(map[int64]int64)
	for _, u := range ups {
		deg[u.A]++
		deg[u.B]++
	}
	for v, d := range deg {
		if d > degree {
			vertex, degree = v, d
		}
	}
	return vertex, degree
}

// ladderGuesses returns the Lemma 3.3 guess set {1, (1+eps), (1+eps)^2,
// ...} up to n, for documentation in docs/EXPERIMENTS.md.
func ladderGuesses(n int64, eps float64) []int64 {
	var out []int64
	for g := 1.0; g <= float64(n); g *= 1 + eps {
		out = append(out, int64(math.Ceil(g)))
	}
	return out
}
