// Package experiments regenerates every artefact of the paper's
// evaluation.  The paper is pure theory — its "evaluation" is a set of
// theorems plus three worked figures — so each experiment here validates
// the *shape* of one theorem empirically (success probabilities, space
// scaling exponents, crossovers, model separations) or reproduces one
// figure as an executable construction.
//
// The experiment IDs E1-E10 and F1-F3 are indexed in docs/EXPERIMENTS.md
// §3; measured outcomes are recorded against the paper's claims there
// too.  Every experiment is deterministic in Config.Seed.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config controls every experiment run.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed uint64
	// Quick shrinks instance sizes and trial counts so the full suite runs
	// in seconds (used by tests and -short benchmarks).  The recorded
	// docs/EXPERIMENTS.md numbers use Quick = false.
	Quick bool
}

// trials returns the number of repetitions to average over.
func (c Config) trials(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// pick returns size parameters for quick vs full runs.
func (c Config) pick(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Table is one regenerated artefact: a titled grid of rows mirroring what
// the paper's evaluation would report.
type Table struct {
	ID      string // experiment id, e.g. "E2"
	Title   string // one-line description
	Claim   string // the paper claim being validated (theorem/figure ref)
	Columns []string
	Rows    [][]string
	Notes   []string // free-form observations appended below the grid
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted observation below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// trimFloat renders floats compactly: integers without a decimal point,
// others with up to 4 significant decimals.
func trimFloat(x float64) string {
	if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table (for error messages and logs).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Format(&b)
	return b.String()
}

// Runner is one experiment.
type Runner func(cfg Config) (*Table, error)

// registry maps experiment ids to runners; populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all registered experiment ids in order (E1..E10, F1..F3).
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i][0], out[j][0]
		if pi != pj {
			return pi < pj // E before F
		}
		var ni, nj int
		fmt.Sscanf(out[i][1:], "%d", &ni)
		fmt.Sscanf(out[j][1:], "%d", &nj)
		return ni < nj
	})
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// RunAll executes every experiment in order, stopping at the first error.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ratio formats a/b as a percentage string.
func ratio(a, b int) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(a)/float64(b))
}
