package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// zipfStream draws `total` items Zipf(skew) over [0, n) and returns them
// with their exact frequencies.
func zipfStream(seed uint64, n, total int, skew float64) ([]int64, map[int64]int64) {
	rng := xrand.New(seed)
	z := xrand.NewZipf(rng, skew, n)
	items := make([]int64, total)
	freq := make(map[int64]int64)
	for i := range items {
		items[i] = int64(z.Next())
		freq[items[i]]++
	}
	return items, freq
}

func TestMisraGriesGuarantee(t *testing.T) {
	// Property: for every item, freq - total/(k+1) <= estimate <= freq.
	items, freq := zipfStream(1, 100, 20000, 1.3)
	const k = 20
	mg := NewMisraGries(k)
	for _, it := range items {
		mg.Process(it)
	}
	bound := mg.ErrorBound()
	for it, f := range freq {
		est := mg.Estimate(it)
		if est > f {
			t.Fatalf("item %d overestimated: est %d > freq %d", it, est, f)
		}
		if est < f-bound {
			t.Fatalf("item %d underestimated beyond bound: est %d, freq %d, bound %d", it, est, f, bound)
		}
	}
}

func TestMisraGriesFindsHeavyItems(t *testing.T) {
	items, freq := zipfStream(2, 1000, 50000, 1.5)
	const k = 100
	mg := NewMisraGries(k)
	for _, it := range items {
		mg.Process(it)
	}
	// Every item with freq > total/(k+1) must survive.
	threshold := mg.Total() / int64(k+1)
	surviving := make(map[int64]bool)
	for _, c := range mg.Candidates() {
		surviving[c] = true
	}
	for it, f := range freq {
		if f > threshold && !surviving[it] {
			t.Fatalf("heavy item %d (freq %d > %d) evicted", it, f, threshold)
		}
	}
}

func TestMisraGriesSpaceBound(t *testing.T) {
	mg := NewMisraGries(10)
	for i := int64(0); i < 10000; i++ {
		mg.Process(i % 997)
	}
	if mg.SpaceWords() > 2*10 {
		t.Fatalf("space %d exceeds 2k", mg.SpaceWords())
	}
}

func TestMisraGriesQuick(t *testing.T) {
	// Property over random small streams: estimates never exceed truth.
	f := func(itemsRaw []uint8, kRaw uint8) bool {
		if len(itemsRaw) == 0 {
			return true
		}
		k := int(kRaw%10) + 1
		mg := NewMisraGries(k)
		freq := make(map[int64]int64)
		for _, raw := range itemsRaw {
			it := int64(raw % 16)
			mg.Process(it)
			freq[it]++
		}
		for it, f0 := range freq {
			if mg.Estimate(it) > f0 {
				return false
			}
			if mg.Estimate(it) < f0-mg.ErrorBound() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	items, freq := zipfStream(3, 100, 20000, 1.3)
	const k = 25
	ss := NewSpaceSaving(k)
	for _, it := range items {
		ss.Process(it)
	}
	// Estimates never undercount, and guaranteed counts never overcount.
	for it, f := range freq {
		if est := ss.Estimate(it); est != 0 && est < f {
			t.Fatalf("item %d undercounted: est %d < freq %d", it, est, f)
		}
		if g := ss.GuaranteedCount(it); g > f {
			t.Fatalf("item %d guaranteed %d > freq %d", it, g, f)
		}
	}
	// Every item with freq > total/k is monitored.
	for it, f := range freq {
		if f > ss.Total()/int64(k) && ss.Estimate(it) == 0 {
			t.Fatalf("heavy item %d (freq %d) unmonitored", it, f)
		}
	}
}

func TestSpaceSavingCapacity(t *testing.T) {
	ss := NewSpaceSaving(5)
	for i := int64(0); i < 1000; i++ {
		ss.Process(i)
	}
	if got := len(ss.Candidates()); got > 5 {
		t.Fatalf("monitoring %d items, cap 5", got)
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	items, freq := zipfStream(4, 500, 20000, 1.2)
	cm := NewCountMin(xrand.New(5), 4, 256)
	for _, it := range items {
		cm.Process(it)
	}
	for it, f := range freq {
		if est := cm.Estimate(it); est < f {
			t.Fatalf("CountMin undercounted item %d: %d < %d", it, est, f)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	items, freq := zipfStream(6, 500, 20000, 1.2)
	const width = 512
	cm := NewCountMin(xrand.New(7), 5, width)
	for _, it := range items {
		cm.Process(it)
	}
	// Expected error e*total/width; check a loose 10x envelope.
	budget := 10 * cm.Total() / int64(width)
	bad := 0
	for it, f := range freq {
		if cm.Estimate(it)-f > budget {
			bad++
		}
	}
	if bad > len(freq)/20 {
		t.Fatalf("%d/%d items exceed the CountMin error envelope", bad, len(freq))
	}
}

func TestCountMinTurnstile(t *testing.T) {
	cm := NewCountMin(xrand.New(8), 4, 64)
	cm.Update(7, 5)
	cm.Update(7, -3)
	if est := cm.Estimate(7); est < 2 {
		t.Fatalf("turnstile estimate %d < 2", est)
	}
	if cm.Total() != 2 {
		t.Fatalf("total %d != 2", cm.Total())
	}
}

func TestCountSketchAccuracy(t *testing.T) {
	items, freq := zipfStream(9, 500, 30000, 1.4)
	cs := NewCountSketch(xrand.New(10), 5, 512)
	for _, it := range items {
		cs.Process(it)
	}
	// The heaviest items should be estimated within a small relative error.
	var heavy int64
	var heavyF int64
	for it, f := range freq {
		if f > heavyF {
			heavy, heavyF = it, f
		}
	}
	est := cs.Estimate(heavy)
	if est < heavyF*8/10 || est > heavyF*12/10 {
		t.Fatalf("CountSketch estimate %d for frequency %d (item %d)", est, heavyF, heavy)
	}
}

func TestCountSketchTurnstileCancel(t *testing.T) {
	cs := NewCountSketch(xrand.New(11), 5, 64)
	for i := int64(0); i < 50; i++ {
		cs.Update(i, 3)
	}
	for i := int64(0); i < 50; i++ {
		cs.Update(i, -3)
	}
	for i := int64(0); i < 50; i++ {
		if est := cs.Estimate(i); est != 0 {
			t.Fatalf("cancelled item %d estimates %d", i, est)
		}
	}
}

func TestExactBaseline(t *testing.T) {
	e := NewExact()
	e.Process(1, 100)
	e.Process(1, 101)
	e.Process(2, 200)
	if e.Count(1) != 2 || e.Count(2) != 1 || e.Count(3) != 0 {
		t.Fatal("wrong counts")
	}
	if got := e.Witnesses(1); len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("witnesses = %v", got)
	}
	if it, c := e.Heaviest(); it != 1 || c != 2 {
		t.Fatalf("heaviest = (%d, %d)", it, c)
	}
	if got := e.ItemsAtLeast(1); len(got) != 2 {
		t.Fatalf("ItemsAtLeast(1) = %v", got)
	}
	if got := e.ItemsAtLeast(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ItemsAtLeast(2) = %v", got)
	}
	if e.SpaceWords() < 5 {
		t.Fatalf("space %d implausibly small", e.SpaceWords())
	}
}

func TestExactHeaviestEmpty(t *testing.T) {
	e := NewExact()
	if it, c := e.Heaviest(); it != -1 || c != 0 {
		t.Fatalf("empty heaviest = (%d, %d)", it, c)
	}
}

func TestTwoPassCollectsWitnesses(t *testing.T) {
	var ups []stream.Update
	for i := int64(0); i < 50; i++ {
		ups = append(ups, stream.Ins(7, 1000+i)) // heavy item 7
	}
	for i := int64(0); i < 200; i++ {
		ups = append(ups, stream.Ins(i%40, i))
	}
	tp := NewTwoPass(50, 25, 30)
	tp.Pass1(ups)
	tp.Pass2(ups)
	item, witnesses, err := tp.Result()
	if err != nil {
		t.Fatal(err)
	}
	if item != 7 {
		t.Fatalf("item = %d, want 7", item)
	}
	if len(witnesses) != 25 {
		t.Fatalf("witnesses = %d, want 25", len(witnesses))
	}
}

func TestTwoPassNoCandidate(t *testing.T) {
	var ups []stream.Update
	for i := int64(0); i < 100; i++ {
		ups = append(ups, stream.Ins(i, i))
	}
	tp := NewTwoPass(50, 25, 10)
	tp.Pass1(ups)
	tp.Pass2(ups)
	if _, _, err := tp.Result(); !errors.Is(err, ErrNoCandidate) {
		t.Fatalf("got %v, want ErrNoCandidate", err)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MisraGries(0)":       func() { NewMisraGries(0) },
		"SpaceSaving(0)":      func() { NewSpaceSaving(0) },
		"CountMin depth 0":    func() { NewCountMin(xrand.New(1), 0, 4) },
		"CountSketch width 0": func() { NewCountSketch(xrand.New(1), 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
