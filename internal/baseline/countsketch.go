package baseline

import (
	"sort"

	"feww/internal/hashing"
	"feww/internal/xrand"
)

// CountSketch is the sketch of Charikar, Chen and Farach-Colton [15]:
// depth x width counters with 4-wise independent bucket and sign hashes;
// the estimate is the median over rows of sign * counter, giving two-sided
// error O(sqrt(F2 / width)) per row.
type CountSketch struct {
	depth, width int
	rows         [][]int64
	bucket       []*hashing.Poly
	sign         []*hashing.Poly
	scratch      []int64
}

// NewCountSketch returns a depth x width sketch.
func NewCountSketch(rng *xrand.RNG, depth, width int) *CountSketch {
	if depth < 1 || width < 1 {
		panic("baseline: NewCountSketch with depth < 1 or width < 1")
	}
	cs := &CountSketch{depth: depth, width: width, scratch: make([]int64, depth)}
	cs.rows = make([][]int64, depth)
	cs.bucket = make([]*hashing.Poly, depth)
	cs.sign = make([]*hashing.Poly, depth)
	for r := 0; r < depth; r++ {
		cs.rows[r] = make([]int64, width)
		cs.bucket[r] = hashing.NewPoly(rng, 4)
		cs.sign[r] = hashing.NewPoly(rng, 4)
	}
	return cs
}

// Update applies count[item] += delta (turnstile supported).
func (cs *CountSketch) Update(item int64, delta int64) {
	for r := 0; r < cs.depth; r++ {
		c := cs.bucket[r].HashRange(uint64(item), uint64(cs.width))
		cs.rows[r][c] += cs.sign[r].Sign(uint64(item)) * delta
	}
}

// Process consumes one stream item (delta = 1).
func (cs *CountSketch) Process(item int64) { cs.Update(item, 1) }

// Estimate returns the median-over-rows frequency estimate.
func (cs *CountSketch) Estimate(item int64) int64 {
	for r := 0; r < cs.depth; r++ {
		c := cs.bucket[r].HashRange(uint64(item), uint64(cs.width))
		cs.scratch[r] = cs.sign[r].Sign(uint64(item)) * cs.rows[r][c]
	}
	sort.Slice(cs.scratch, func(i, j int) bool { return cs.scratch[i] < cs.scratch[j] })
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return cs.scratch[mid]
	}
	return (cs.scratch[mid-1] + cs.scratch[mid]) / 2
}

// SpaceWords counts the counter array plus hash coefficients.
func (cs *CountSketch) SpaceWords() int {
	words := cs.depth * cs.width
	for r := 0; r < cs.depth; r++ {
		words += cs.bucket[r].SpaceWords() + cs.sign[r].SpaceWords()
	}
	return words
}
