// Package baseline implements the classic frequent-elements (heavy
// hitters) algorithms the paper positions FEwW against (§1.3): Misra-Gries
// [37], SpaceSaving [35/36], CountMin [17], CountSketch [15], an exact
// counter, and a two-pass FE-then-witness-replay scheme.
//
// None of the one-pass baselines can report witnesses — that is the paper's
// point — and their space behaves *inversely* in the threshold d: detecting
// items of frequency >= d = eps*m takes O(m/d) counters, whereas FEwW is
// trivially Omega(d/alpha) because the witnesses themselves must be output.
// Experiment E3 exhibits this inversion.
package baseline

import "sort"

// MisraGries is the deterministic frequent-elements summary of Misra and
// Gries (1982) with k counters: after a stream of length total, every item
// of true frequency f has estimate in [f - total/(k+1), f], so every item
// with frequency > total/(k+1) survives as a candidate.
type MisraGries struct {
	k        int
	counters map[int64]int64
	total    int64
}

// NewMisraGries returns a summary with k counters (k >= 1).
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("baseline: NewMisraGries with k < 1")
	}
	return &MisraGries{k: k, counters: make(map[int64]int64, k+1)}
}

// Process consumes one stream item.
func (mg *MisraGries) Process(item int64) {
	mg.total++
	if _, ok := mg.counters[item]; ok {
		mg.counters[item]++
		return
	}
	if len(mg.counters) < mg.k {
		mg.counters[item] = 1
		return
	}
	// Decrement-all step: every counter drops by one; zeros are evicted.
	for it, c := range mg.counters {
		if c == 1 {
			delete(mg.counters, it)
		} else {
			mg.counters[it] = c - 1
		}
	}
}

// Estimate returns the (under-)estimate of item's frequency.
func (mg *MisraGries) Estimate(item int64) int64 { return mg.counters[item] }

// Candidates returns the surviving items sorted by decreasing estimate.
func (mg *MisraGries) Candidates() []int64 {
	out := make([]int64, 0, len(mg.counters))
	for it := range mg.counters {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := mg.counters[out[i]], mg.counters[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// Total returns the stream length consumed so far.
func (mg *MisraGries) Total() int64 { return mg.total }

// ErrorBound returns the maximum possible undercount, total/(k+1).
func (mg *MisraGries) ErrorBound() int64 { return mg.total / int64(mg.k+1) }

// SpaceWords counts two words (item, counter) per live counter.
func (mg *MisraGries) SpaceWords() int { return 2 * len(mg.counters) }
