package baseline

import (
	"feww/internal/hashing"
	"feww/internal/xrand"
)

// CountMin is the Count-Min sketch of Cormode and Muthukrishnan [17]:
// depth x width counters, estimate = min over rows, one-sided error
// <= e * total / width with probability 1 - e^-depth per query.  It
// supports turnstile updates (deletions), unlike Misra-Gries/SpaceSaving.
type CountMin struct {
	depth, width int
	rows         [][]int64
	hash         []*hashing.Poly
	total        int64
}

// NewCountMin returns a depth x width sketch.
func NewCountMin(rng *xrand.RNG, depth, width int) *CountMin {
	if depth < 1 || width < 1 {
		panic("baseline: NewCountMin with depth < 1 or width < 1")
	}
	cm := &CountMin{depth: depth, width: width}
	cm.rows = make([][]int64, depth)
	cm.hash = make([]*hashing.Poly, depth)
	for r := 0; r < depth; r++ {
		cm.rows[r] = make([]int64, width)
		cm.hash[r] = hashing.NewPoly(rng, 2)
	}
	return cm
}

// Update applies count[item] += delta.
func (cm *CountMin) Update(item int64, delta int64) {
	cm.total += delta
	for r := 0; r < cm.depth; r++ {
		c := cm.hash[r].HashRange(uint64(item), uint64(cm.width))
		cm.rows[r][c] += delta
	}
}

// Process consumes one stream item (delta = 1).
func (cm *CountMin) Process(item int64) { cm.Update(item, 1) }

// Estimate returns the min-over-rows frequency estimate (never an
// undercount for insertion-only streams).
func (cm *CountMin) Estimate(item int64) int64 {
	est := int64(1)<<62 - 1
	for r := 0; r < cm.depth; r++ {
		c := cm.hash[r].HashRange(uint64(item), uint64(cm.width))
		if cm.rows[r][c] < est {
			est = cm.rows[r][c]
		}
	}
	return est
}

// Total returns the net stream weight consumed.
func (cm *CountMin) Total() int64 { return cm.total }

// SpaceWords counts the counter array plus hash coefficients.
func (cm *CountMin) SpaceWords() int {
	words := cm.depth * cm.width
	for _, h := range cm.hash {
		words += h.SpaceWords()
	}
	return words
}
