package baseline

import (
	"container/heap"
	"sort"

	"feww/internal/xrand"
)

// TopK tracks the (approximately) k most frequent items of a turnstile
// item stream using a CountSketch for frequency estimates and a min-heap
// of candidates — the classical sketch+heap heavy-hitters construction
// [15].  Unlike Misra-Gries or SpaceSaving it survives deletions, but like
// every classical FE structure it reports items only, no witnesses — the
// contrast experiment E3 quantifies.
type TopK struct {
	k      int
	sketch *CountSketch
	h      topkHeap
	pos    map[int64]int // item -> heap index
}

// NewTopK returns a tracker for the k most frequent items, backed by a
// CountSketch of the given dimensions.
func NewTopK(rng *xrand.RNG, k, depth, width int) *TopK {
	if k < 1 {
		panic("baseline: NewTopK with k < 1")
	}
	return &TopK{
		k:      k,
		sketch: NewCountSketch(rng, depth, width),
		pos:    make(map[int64]int, k),
	}
}

// Update processes a signed occurrence of item.
func (t *TopK) Update(item int64, delta int64) {
	t.sketch.Update(item, delta)
	est := t.sketch.Estimate(item)

	if i, ok := t.pos[item]; ok {
		t.h.entries[i].est = est
		heap.Fix(&t.h, i)
		if est <= 0 { // deleted below zero: drop from candidates
			heap.Remove(&t.h, t.pos[item])
			delete(t.pos, item)
		}
		return
	}
	if est <= 0 {
		return
	}
	if t.h.Len() < t.k {
		heap.Push(&t.h, topkEntry{item: item, est: est})
		t.pos[item] = t.h.Len() - 1
		t.fixPositions()
		return
	}
	if est > t.h.entries[0].est {
		evicted := t.h.entries[0].item
		t.h.entries[0] = topkEntry{item: item, est: est}
		delete(t.pos, evicted)
		t.pos[item] = 0
		heap.Fix(&t.h, 0)
		t.fixPositions()
	}
}

// Process is shorthand for a single insertion.
func (t *TopK) Process(item int64) { t.Update(item, 1) }

// fixPositions rebuilds the item -> index map after heap movement.
func (t *TopK) fixPositions() {
	for i, e := range t.h.entries {
		t.pos[e.item] = i
	}
}

// Item is one tracked candidate with its estimated frequency.
type Item struct {
	ID  int64
	Est int64
}

// Top returns the tracked candidates, most frequent first.
func (t *TopK) Top() []Item {
	out := make([]Item, 0, t.h.Len())
	for _, e := range t.h.entries {
		out = append(out, Item{ID: e.item, Est: t.sketch.Estimate(e.item)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Est != out[j].Est {
			return out[i].Est > out[j].Est
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Estimate returns the sketch's frequency estimate for item.
func (t *TopK) Estimate(item int64) int64 { return t.sketch.Estimate(item) }

// SpaceWords reports sketch plus heap state.
func (t *TopK) SpaceWords() int {
	return t.sketch.SpaceWords() + 2*t.h.Len() + 2*len(t.pos)
}

type topkEntry struct {
	item int64
	est  int64
}

// topkHeap is a min-heap on estimated frequency, so the root is the
// eviction candidate.
type topkHeap struct {
	entries []topkEntry
}

func (h *topkHeap) Len() int           { return len(h.entries) }
func (h *topkHeap) Less(i, j int) bool { return h.entries[i].est < h.entries[j].est }
func (h *topkHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *topkHeap) Push(x interface{}) { h.entries = append(h.entries, x.(topkEntry)) }
func (h *topkHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}
