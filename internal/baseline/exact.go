package baseline

import "sort"

// Exact is the trivial store-everything baseline: exact per-item counters
// plus the full witness list for every item.  It answers FEwW perfectly at
// Theta(stream length) space and anchors the space comparisons in
// experiment E3.
type Exact struct {
	counts    map[int64]int64
	witnesses map[int64][]int64
	total     int64
}

// NewExact returns an empty exact counter.
func NewExact() *Exact {
	return &Exact{counts: make(map[int64]int64), witnesses: make(map[int64][]int64)}
}

// Process consumes one (item, witness) pair.
func (e *Exact) Process(item, witness int64) {
	e.total++
	e.counts[item]++
	e.witnesses[item] = append(e.witnesses[item], witness)
}

// Count returns item's exact frequency.
func (e *Exact) Count(item int64) int64 { return e.counts[item] }

// Witnesses returns all witnesses recorded for item.
func (e *Exact) Witnesses(item int64) []int64 { return e.witnesses[item] }

// Heaviest returns the item of maximum frequency (smallest id on ties) and
// that frequency; (-1, 0) on an empty stream.
func (e *Exact) Heaviest() (int64, int64) {
	best, bestC := int64(-1), int64(0)
	for it, c := range e.counts {
		if c > bestC || (c == bestC && best != -1 && it < best) {
			best, bestC = it, c
		}
	}
	return best, bestC
}

// ItemsAtLeast returns all items with frequency >= d, sorted by id.
func (e *Exact) ItemsAtLeast(d int64) []int64 {
	var out []int64
	for it, c := range e.counts {
		if c >= d {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the stream length consumed.
func (e *Exact) Total() int64 { return e.total }

// SpaceWords counts counters plus all stored witnesses.
func (e *Exact) SpaceWords() int {
	words := 2 * len(e.counts)
	for _, w := range e.witnesses {
		words += 1 + len(w)
	}
	return words
}
