package baseline

import (
	"testing"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// TestSpaceWordsAccounting checks every baseline reports plausible live
// state, and that counter-based structures really are bounded by their k
// while the exact counter grows with the input.
func TestSpaceWordsAccounting(t *testing.T) {
	rng := xrand.New(1)
	const k = 16
	mg := NewMisraGries(k)
	ss := NewSpaceSaving(k)
	cm := NewCountMin(rng.Split(), 4, 64)
	cs := NewCountSketch(rng.Split(), 4, 64)
	ex := NewExact()
	zipf := xrand.NewZipf(rng, 1.2, 4096)
	for i := 0; i < 20000; i++ {
		item := int64(zipf.Next())
		mg.Process(item)
		ss.Process(item)
		cm.Process(item)
		cs.Process(item)
		ex.Process(item, int64(i))
	}
	if w := mg.SpaceWords(); w <= 0 || w > 2*k {
		t.Fatalf("MisraGries space %d, want in (0, %d]", w, 2*k)
	}
	if w := ss.SpaceWords(); w <= 0 || w > 5*k {
		t.Fatalf("SpaceSaving space %d, want in (0, %d]", w, 5*k)
	}
	// Sketches are input-independent: depth*width plus hash state.
	if w := cm.SpaceWords(); w < 4*64 {
		t.Fatalf("CountMin space %d, want >= %d", w, 4*64)
	}
	if w := cs.SpaceWords(); w < 4*64 {
		t.Fatalf("CountSketch space %d, want >= %d", w, 4*64)
	}
	// Exact stores everything: far bigger than the summaries.
	if ex.SpaceWords() < 10*mg.SpaceWords() {
		t.Fatalf("Exact space %d not dominating MG's %d", ex.SpaceWords(), mg.SpaceWords())
	}
	if ex.Total() != 20000 {
		t.Fatalf("Exact.Total = %d, want 20000", ex.Total())
	}
}

func TestTwoPassSpaceWords(t *testing.T) {
	ups := []stream.Update{stream.Ins(1, 10), stream.Ins(1, 11), stream.Ins(2, 12)}
	tp := NewTwoPass(2, 2, 4)
	tp.Pass1(ups)
	tp.Pass2(ups)
	if tp.SpaceWords() <= 0 {
		t.Fatal("TwoPass SpaceWords not positive")
	}
	item, wits, err := tp.Result()
	if err != nil {
		t.Fatal(err)
	}
	if item != 1 || len(wits) < 2 {
		t.Fatalf("TwoPass found item %d with %d witnesses", item, len(wits))
	}
}
