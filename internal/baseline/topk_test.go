package baseline

import (
	"testing"

	"feww/internal/xrand"
)

func TestTopKFindsHeavyItems(t *testing.T) {
	rng := xrand.New(1)
	tk := NewTopK(rng.Split(), 5, 5, 512)
	// Items 0..4 appear 100+10*i times; 1000 background items once each.
	for i := int64(0); i < 5; i++ {
		for c := int64(0); c < 100+10*i; c++ {
			tk.Process(i)
		}
	}
	for i := int64(100); i < 1100; i++ {
		tk.Process(i)
	}
	top := tk.Top()
	if len(top) != 5 {
		t.Fatalf("got %d candidates, want 5", len(top))
	}
	want := map[int64]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	for _, it := range top {
		if !want[it.ID] {
			t.Fatalf("background item %d in top-5: %v", it.ID, top)
		}
	}
	// Most frequent first: item 4 (140 occurrences) leads.
	if top[0].ID != 4 {
		t.Fatalf("top item = %d, want 4 (order: %v)", top[0].ID, top)
	}
}

func TestTopKSurvivesDeletions(t *testing.T) {
	rng := xrand.New(2)
	tk := NewTopK(rng.Split(), 3, 5, 256)
	// Item 7 inserted 50 times then fully deleted; item 9 stays at 30.
	for i := 0; i < 50; i++ {
		tk.Update(7, 1)
	}
	for i := 0; i < 30; i++ {
		tk.Update(9, 1)
	}
	for i := 0; i < 50; i++ {
		tk.Update(7, -1)
	}
	for _, it := range tk.Top() {
		if it.ID == 7 && it.Est > 5 {
			t.Fatalf("fully-deleted item 7 still ranked with est %d", it.Est)
		}
	}
	if est := tk.Estimate(9); est < 25 || est > 35 {
		t.Fatalf("Estimate(9) = %d, want ~30", est)
	}
}

func TestTopKHeapConsistency(t *testing.T) {
	rng := xrand.New(3)
	tk := NewTopK(rng.Split(), 4, 4, 128)
	zipf := xrand.NewZipf(rng, 1.3, 500)
	for i := 0; i < 5000; i++ {
		tk.Process(int64(zipf.Next()))
	}
	// pos map and heap must agree.
	for item, idx := range tk.pos {
		if idx < 0 || idx >= tk.h.Len() || tk.h.entries[idx].item != item {
			t.Fatalf("pos[%d] = %d inconsistent with heap %v", item, idx, tk.h.entries)
		}
	}
	if tk.h.Len() > 4 {
		t.Fatalf("heap grew past k: %d", tk.h.Len())
	}
	if tk.SpaceWords() <= 0 {
		t.Fatal("SpaceWords not positive")
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(xrand.New(1), 0, 4, 128)
}

func BenchmarkTopKProcess(b *testing.B) {
	rng := xrand.New(1)
	tk := NewTopK(rng.Split(), 100, 5, 1024)
	zipf := xrand.NewZipf(rng, 1.2, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Process(int64(zipf.Next()))
	}
}
