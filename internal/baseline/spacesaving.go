package baseline

import (
	"container/heap"
	"sort"
)

// SpaceSaving is the stream-summary algorithm of Metwally, Agrawal and El
// Abbadi (ICDT 2005): k counters; an unmonitored item replaces the minimum
// counter, inheriting its count plus one.  Every item's estimate
// overcounts by at most its recorded error, and every item with frequency
// > total/k is guaranteed to be monitored.
type SpaceSaving struct {
	k     int
	total int64
	h     ssHeap
}

type ssEntry struct {
	item  int64
	count int64
	err   int64 // overestimate bound inherited at takeover
}

// ssHeap is a min-heap on count that keeps a position index up to date
// through Swap, so updates are O(log k).
type ssHeap struct {
	entries []ssEntry
	pos     map[int64]int // item -> index in entries
}

func (h *ssHeap) Len() int           { return len(h.entries) }
func (h *ssHeap) Less(i, j int) bool { return h.entries[i].count < h.entries[j].count }
func (h *ssHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.pos[h.entries[i].item] = i
	h.pos[h.entries[j].item] = j
}
func (h *ssHeap) Push(x interface{}) {
	e := x.(ssEntry)
	h.pos[e.item] = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *ssHeap) Pop() interface{} {
	n := len(h.entries)
	e := h.entries[n-1]
	delete(h.pos, e.item)
	h.entries = h.entries[:n-1]
	return e
}

// NewSpaceSaving returns a summary with k counters (k >= 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("baseline: NewSpaceSaving with k < 1")
	}
	return &SpaceSaving{k: k, h: ssHeap{pos: make(map[int64]int, k)}}
}

// Process consumes one stream item.
func (ss *SpaceSaving) Process(item int64) {
	ss.total++
	if i, ok := ss.h.pos[item]; ok {
		ss.h.entries[i].count++
		heap.Fix(&ss.h, i)
		return
	}
	if len(ss.h.entries) < ss.k {
		heap.Push(&ss.h, ssEntry{item: item, count: 1})
		return
	}
	// Replace the minimum counter.
	minE := ss.h.entries[0]
	delete(ss.h.pos, minE.item)
	ss.h.entries[0] = ssEntry{item: item, count: minE.count + 1, err: minE.count}
	ss.h.pos[item] = 0
	heap.Fix(&ss.h, 0)
}

// Estimate returns the (over-)estimate of item's frequency, 0 if
// unmonitored.
func (ss *SpaceSaving) Estimate(item int64) int64 {
	if i, ok := ss.h.pos[item]; ok {
		return ss.h.entries[i].count
	}
	return 0
}

// GuaranteedCount returns a lower bound on item's true frequency
// (estimate minus inherited error).
func (ss *SpaceSaving) GuaranteedCount(item int64) int64 {
	if i, ok := ss.h.pos[item]; ok {
		return ss.h.entries[i].count - ss.h.entries[i].err
	}
	return 0
}

// Candidates returns monitored items by decreasing estimate.
func (ss *SpaceSaving) Candidates() []int64 {
	entries := make([]ssEntry, len(ss.h.entries))
	copy(entries, ss.h.entries)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].item < entries[j].item
	})
	out := make([]int64, len(entries))
	for i, e := range entries {
		out[i] = e.item
	}
	return out
}

// Total returns the stream length consumed so far.
func (ss *SpaceSaving) Total() int64 { return ss.total }

// SpaceWords counts three words per counter plus the index map.
func (ss *SpaceSaving) SpaceWords() int { return 3*len(ss.h.entries) + 2*len(ss.h.pos) }
