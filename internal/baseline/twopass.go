package baseline

import (
	"errors"

	"feww/internal/stream"
)

// ErrNoCandidate is returned by TwoPass when the first pass surfaces no
// candidate of the requested frequency.
var ErrNoCandidate = errors.New("baseline: no frequent candidate found in pass 1")

// TwoPass is the witness-reporting scheme that becomes possible when the
// stream can be read twice: pass 1 runs Misra-Gries to find candidate
// frequent items; pass 2 replays the stream collecting witnesses only for
// the candidates.  The paper's setting is strictly one-pass, so this
// baseline marks what the single-pass lower bounds rule out rather than a
// competitor — its pass-2 space is the same Theta(d/alpha) witness store,
// but it cheats by seeing the input twice.
type TwoPass struct {
	d       int64
	target  int64
	mg      *MisraGries
	collect map[int64][]int64
}

// NewTwoPass prepares a two-pass run for threshold d collecting target
// witnesses per candidate, with k Misra-Gries counters for pass 1.
func NewTwoPass(d, target int64, k int) *TwoPass {
	return &TwoPass{d: d, target: target, mg: NewMisraGries(k)}
}

// Pass1 consumes the stream once, building candidates.
func (tp *TwoPass) Pass1(ups []stream.Update) {
	for _, u := range ups {
		tp.mg.Process(u.A)
	}
}

// Pass2 replays the stream, collecting up to target witnesses for every
// pass-1 candidate whose Misra-Gries estimate is consistent with
// frequency >= d.
func (tp *TwoPass) Pass2(ups []stream.Update) {
	tp.collect = make(map[int64][]int64)
	bound := tp.mg.ErrorBound()
	for _, c := range tp.mg.Candidates() {
		if tp.mg.Estimate(c)+bound >= tp.d {
			tp.collect[c] = make([]int64, 0, tp.target)
		}
	}
	for _, u := range ups {
		if w, ok := tp.collect[u.A]; ok && int64(len(w)) < tp.target {
			tp.collect[u.A] = append(w, u.B)
		}
	}
}

// Result returns any candidate that accumulated target witnesses.
func (tp *TwoPass) Result() (item int64, witnesses []int64, err error) {
	for it, w := range tp.collect {
		if int64(len(w)) >= tp.target {
			return it, w, nil
		}
	}
	return -1, nil, ErrNoCandidate
}

// SpaceWords counts the pass-1 summary plus the pass-2 witness store.
func (tp *TwoPass) SpaceWords() int {
	words := tp.mg.SpaceWords()
	for _, w := range tp.collect {
		words += 1 + len(w)
	}
	return words
}
