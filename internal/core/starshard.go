package core

import (
	"fmt"
	"io"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// StarShard is one shard's slice of a sharded Star Detection ladder: the
// full (1+eps) guess ladder of Lemma 3.3 instantiated over a sub-universe
// of star centers.  Where the single-threaded StarDetector owns the whole
// vertex set and mirrors each undirected edge itself, a StarShard consumes
// already-directed half-edges (a, b) — "center candidate a gained
// neighbour b" — whose center ids have been remapped into [0, N) by the
// engine's shard router; the bipartite double cover is materialised
// upstream (by the stream producer or the engine's undirected feed), so a
// half-edge lands in exactly the one shard owning its center.
//
// Every rung is an unmodified InsertOnly instance with threshold
// D = Guesses[rung] on the shard's sub-universe.  The per-item degree
// promise transfers exactly as for the flat engines, and the ladder is
// shared (StarGuesses over the *global* degree ceiling), so merging shard
// answers is a max over rung indices — the sharded analogue of the
// StarDetector's scan from the largest guess down.
type StarShard struct {
	cfg  StarShardConfig
	runs []*InsertOnly
}

// StarShardConfig parameterises one shard of a sharded star ladder.
type StarShardConfig struct {
	// N is the shard's star-center sub-universe size.
	N int64
	// Guesses is the global ladder, from StarGuesses(maxDeg, eps); it is
	// identical across all shards of one engine (and all members of one
	// cluster), which is what makes rung indices comparable in the merge.
	Guesses []int64
	// Alpha is the per-guess FEwW approximation factor (>= 1).
	Alpha int
	// Seed derives the per-rung seeds; distinct shards get distinct seeds
	// from their engine.
	Seed uint64
	// ScaleFactor scales every rung's reservoir (see InsertOnlyConfig).
	ScaleFactor float64
}

func (cfg *StarShardConfig) validate() error {
	if cfg.N < 1 {
		return fmt.Errorf("core: StarShard config: N = %d, want >= 1", cfg.N)
	}
	if len(cfg.Guesses) == 0 {
		return fmt.Errorf("core: StarShard config: empty guess ladder")
	}
	prev := int64(0)
	for i, g := range cfg.Guesses {
		if g <= prev {
			return fmt.Errorf("core: StarShard config: guess[%d] = %d not ascending from %d", i, g, prev)
		}
		prev = g
	}
	return nil
}

// rungConfig derives rung i's InsertOnly configuration; restore verifies
// shard snapshots against exactly this derivation.
func (cfg *StarShardConfig) rungConfig(i int, seed uint64) InsertOnlyConfig {
	return InsertOnlyConfig{
		N:           cfg.N,
		D:           cfg.Guesses[i],
		Alpha:       cfg.Alpha,
		Seed:        seed,
		ScaleFactor: cfg.ScaleFactor,
	}
}

// NewStarShard builds the ladder: one InsertOnly run per guess, seeds
// derived from cfg.Seed.
func NewStarShard(cfg StarShardConfig) (*StarShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	seeds := xrand.New(cfg.Seed)
	ss := &StarShard{cfg: cfg, runs: make([]*InsertOnly, len(cfg.Guesses))}
	for i := range ss.runs {
		run, err := NewInsertOnly(cfg.rungConfig(i, seeds.Uint64()))
		if err != nil {
			return nil, fmt.Errorf("core: StarShard rung %d (guess %d): %w", i, cfg.Guesses[i], err)
		}
		ss.runs[i] = run
	}
	return ss, nil
}

// Config returns the configuration the shard was built (or restored) with.
func (ss *StarShard) Config() StarShardConfig { return ss.cfg }

// Guesses returns the ladder, for reporting.
func (ss *StarShard) Guesses() []int64 { return ss.cfg.Guesses }

// ProcessEdges feeds a batch of directed half-edges, in order, to every
// rung.  The rungs are mutually independent, so iterating rung-major
// commutes with the edge order exactly as in InsertOnly.ProcessEdges.
func (ss *StarShard) ProcessEdges(edges []stream.Edge) {
	for _, run := range ss.runs {
		run.ProcessEdges(edges)
	}
}

// EdgesProcessed returns the number of half-edges consumed.
func (ss *StarShard) EdgesProcessed() int64 { return ss.runs[0].EdgesProcessed() }

// WitnessTarget returns the topmost rung's target ceil(maxGuess/alpha) —
// the static upper bound on any answer's guaranteed size, identical on
// every shard (and every cluster member) built over the same ladder.
func (ss *StarShard) WitnessTarget() int64 { return ss.runs[len(ss.runs)-1].WitnessTarget() }

// View builds the shard's immutable query surface: the scan from the
// largest guess down, stopping at the first rung with a full-target
// result.  Results then holds every neighbourhood that rung certified
// (sorted by center id — each of size exactly the rung's target), Best
// its first (smallest center id), and Rung/Guess/Target identify the
// rung so cross-shard and cross-member merges can compare ladders.  An
// untouched shard publishes Rung == -1 with BestOK false.
func (ss *StarShard) View() View {
	v := ss.QueryResults()
	v.SpaceWords = ss.SpaceWords()
	v.SnapshotBytes = ss.SnapshotSize()
	v.Elements = ss.EdgesProcessed()
	return v
}

// QueryResults is the barrier-read form of View — the same winning-rung
// scan without the size accounting; see (*InsertOnly).QueryBest for the
// contract.  The winning rung is probed with the cheap Result (first
// success) before its full Results set is aggregated.
func (ss *StarShard) QueryResults() View {
	v := View{Rung: -1}
	for i := len(ss.runs) - 1; i >= 0; i-- {
		if _, err := ss.runs[i].Result(); err != nil {
			continue
		}
		results := ss.runs[i].Results()
		v.Rung, v.Guess, v.Target = i, ss.cfg.Guesses[i], ss.runs[i].WitnessTarget()
		v.Results = results
		v.Best, v.BestOK = results[0], true
		break
	}
	return v
}

// QueryBest is the Best half of the barrier read.  The shard's best is
// its winning rung's smallest-id center — Results[0] of that rung — so
// the winning rung's result set is aggregated either way; only the
// Results field is dropped.
func (ss *StarShard) QueryBest() View {
	v := ss.QueryResults()
	v.Results = nil
	return v
}

// SpaceWords sums the live state of every rung.
func (ss *StarShard) SpaceWords() int {
	words := 0
	for _, run := range ss.runs {
		words += run.SpaceWords()
	}
	return words
}

// Snapshot writes the shard's complete state: each rung's InsertOnly
// snapshot, length-prefixed, in ladder order.  The ladder itself is not
// serialised — it is derived from the restoring container's configuration
// and cross-checked against every rung snapshot.
func (ss *StarShard) Snapshot(w io.Writer) error {
	enc := &encoder{w: w}
	for _, run := range ss.runs {
		enc.i64(int64(run.SnapshotSize()))
		if enc.err == nil {
			enc.err = run.Snapshot(w)
		}
	}
	return enc.err
}

// SnapshotSize returns the exact byte length Snapshot would write.
func (ss *StarShard) SnapshotSize() int {
	size := 0
	for _, run := range ss.runs {
		size += 8 + run.SnapshotSize()
	}
	return size
}

// RestoreStarShard reads a snapshot written by Snapshot and returns a
// shard that continues exactly where the snapshotted one stopped.  cfg
// must be the configuration the restoring container derived for this
// shard; every rung snapshot is verified against it, so a snapshot from a
// different ladder, universe slice or seed fails as ErrBadSnapshot
// instead of silently corrupting the rung/center mapping.
func RestoreStarShard(r io.Reader, cfg StarShardConfig) (*StarShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	seeds := xrand.New(cfg.Seed)
	dec := &decoder{r: r}
	ss := &StarShard{cfg: cfg, runs: make([]*InsertOnly, len(cfg.Guesses))}
	for i := range ss.runs {
		size := dec.i64()
		if dec.err != nil {
			return nil, dec.err
		}
		if size < 0 {
			return nil, fmt.Errorf("%w: rung %d snapshot length %d", ErrBadSnapshot, i, size)
		}
		lr := io.LimitReader(r, size)
		run, err := RestoreInsertOnly(lr)
		if err != nil {
			return nil, fmt.Errorf("rung %d: %w", i, err)
		}
		if left, _ := io.Copy(io.Discard, lr); left != 0 {
			return nil, fmt.Errorf("%w: rung %d snapshot has %d trailing bytes", ErrBadSnapshot, i, left)
		}
		if got, want := run.Config(), cfg.rungConfig(i, seeds.Uint64()); got != want {
			return nil, fmt.Errorf("%w: rung %d config %+v does not match ladder derivation %+v",
				ErrBadSnapshot, i, got, want)
		}
		ss.runs[i] = run
	}
	// The ladder length is derived from cfg, not the bytes: a snapshot of
	// a longer ladder must fail here rather than leave rungs unread.
	if n, _ := r.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("%w: trailing bytes after %d rungs", ErrBadSnapshot, len(cfg.Guesses))
	}
	return ss, nil
}
