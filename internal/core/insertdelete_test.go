package core

import (
	"errors"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

// idConfig returns a laptop-sized insertion-deletion config; ScaleFactor
// keeps the sampler count tractable while preserving the algorithm's
// structure (see docs/EXPERIMENTS.md §2 substitutions).
func idConfig(n, m, d int64, alpha int, seed uint64) InsertDeleteConfig {
	return InsertDeleteConfig{
		N: n, M: m, D: d, Alpha: alpha, Seed: seed,
		ScaleFactor: 0.02,
	}
}

func runInsertDelete(t *testing.T, cfg InsertDeleteConfig, ups []stream.Update) (*InsertDelete, Neighbourhood, Strategy, error) {
	t.Helper()
	algo, err := NewInsertDelete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		algo.Update(u.A, u.B, int(u.Op))
	}
	nb, strat, resErr := algo.ResultWithStrategy()
	return algo, nb, strat, resErr
}

func TestInsertDeletePlainInsertions(t *testing.T) {
	p, err := workload.NewPlanted(workload.PlantedConfig{
		N: 60, M: 200, Heavy: 1, HeavyDeg: 30,
		NoiseEdges: 100, Order: workload.Shuffled, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, nb, _, resErr := runInsertDelete(t, idConfig(60, 200, 30, 2, 8), p.Updates)
	if resErr != nil {
		t.Fatalf("failed: %v", resErr)
	}
	if int64(nb.Size()) < algo.WitnessTarget() {
		t.Fatalf("%d witnesses, want >= %d", nb.Size(), algo.WitnessTarget())
	}
	if err := p.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteWithChurn(t *testing.T) {
	// Insert noise then delete it: the final graph keeps only the planted
	// star, and reported witnesses must be live edges of the final graph.
	p, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: 50, M: 150, Heavy: 1, HeavyDeg: 24,
			NoiseEdges: 40, Order: workload.Shuffled, Seed: 5,
		},
		ChurnEdges: 400,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, nb, _, resErr := runInsertDelete(t, idConfig(50, 150, 24, 2, 9), p.Updates)
	if resErr != nil {
		t.Fatalf("failed under churn: %v", resErr)
	}
	if int64(nb.Size()) < algo.WitnessTarget() {
		t.Fatalf("%d witnesses, want >= %d", nb.Size(), algo.WitnessTarget())
	}
	if err := p.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatalf("witness not in final graph: %v", err)
	}
}

func TestInsertDeleteEmptyAfterChurn(t *testing.T) {
	// Everything inserted is deleted: the algorithm must fail cleanly.
	ups := workload.EmptyAfterChurn(7, 40, 100, 300)
	_, _, _, resErr := runInsertDelete(t, idConfig(40, 100, 10, 2, 10), ups)
	if !errors.Is(resErr, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness on an empty final graph", resErr)
	}
}

func TestInsertDeleteDenseRegimeUsesVertexSampling(t *testing.T) {
	// Lemma 5.2's regime: many vertices of degree >= d/alpha.  With every
	// vertex heavy, the fixed vertex sample must contain one, so vertex
	// sampling succeeds.
	p, err := workload.NewDense(workload.DenseConfig{
		N: 40, M: 120, Dense: 40, Deg: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, nb, strat, resErr := runInsertDelete(t, idConfig(40, 120, 20, 2, 12), p.Updates)
	if resErr != nil {
		t.Fatalf("dense regime failed: %v", resErr)
	}
	if strat != StrategyVertex {
		t.Fatalf("dense regime solved by %v, want vertex sampling", strat)
	}
	if int64(nb.Size()) < algo.WitnessTarget() {
		t.Fatalf("%d witnesses, want >= %d", nb.Size(), algo.WitnessTarget())
	}
	if err := p.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteSamplerBudget(t *testing.T) {
	// Default constants on a non-trivial instance must exceed any small
	// sampler cap and be reported as a config error, not an OOM.
	cfg := InsertDeleteConfig{N: 1000, M: 10000, D: 100, Alpha: 2, MaxSamplers: 1000}
	if _, err := NewInsertDelete(cfg); err == nil {
		t.Fatal("sampler budget violation not reported")
	}
}

func TestInsertDeleteConfigValidation(t *testing.T) {
	bad := []InsertDeleteConfig{
		{N: 0, M: 1, D: 1, Alpha: 1},
		{N: 1, M: 0, D: 1, Alpha: 1},
		{N: 1, M: 1, D: 0, Alpha: 1},
		{N: 1, M: 1, D: 1, Alpha: 0},
		{N: 1, M: 1, D: 1, Alpha: 1, ScaleFactor: -0.5},
	}
	for i, cfg := range bad {
		if _, err := NewInsertDelete(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestInsertDeleteUpdatePanicsOnBadDelta(t *testing.T) {
	algo, err := NewInsertDelete(idConfig(10, 10, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Update with delta=2 did not panic")
		}
	}()
	algo.Update(0, 0, 2)
}

func TestInsertDeleteProcessUpdateInterface(t *testing.T) {
	algo, err := NewInsertDelete(idConfig(10, 10, 2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := algo.ProcessUpdate(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := algo.ProcessUpdate(0, 0, -1); err != nil {
		t.Fatal(err)
	}
	if err := algo.ProcessUpdate(0, 0, 3); err == nil {
		t.Fatal("bad delta accepted")
	}
	if algo.UpdatesProcessed() != 2 {
		t.Fatalf("UpdatesProcessed = %d, want 2", algo.UpdatesProcessed())
	}
}

func TestInsertDeleteSizingMonotone(t *testing.T) {
	// More aggressive alpha shrinks the per-vertex battery and the edge
	// battery (the d/alpha and 1/alpha^2 factors of Theorem 5.4).
	small := InsertDeleteConfig{N: 400, M: 400, D: 80, Alpha: 8, ScaleFactor: 1}
	big := InsertDeleteConfig{N: 400, M: 400, D: 80, Alpha: 2, ScaleFactor: 1}
	if small.Sizing().TotalSamplers() >= big.Sizing().TotalSamplers() {
		t.Fatalf("sampler count did not shrink with alpha: alpha=8 %d, alpha=2 %d",
			small.Sizing().TotalSamplers(), big.Sizing().TotalSamplers())
	}
}

func TestInsertDeleteSpaceWordsPositive(t *testing.T) {
	algo, err := NewInsertDelete(idConfig(10, 10, 2, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if algo.SpaceWords() <= 0 {
		t.Fatal("SpaceWords not positive")
	}
	if algo.SizingInfo().TotalSamplers() < 1 {
		t.Fatal("no samplers allocated")
	}
}
