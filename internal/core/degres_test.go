package core

import (
	"math"
	"testing"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// feedDegRes replays updates into a single Deg-Res-Sampling run with its
// own degree tracker.
func feedDegRes(dr *DegRes, ups []stream.Update) {
	tracker := NewDegreeTracker()
	for _, u := range ups {
		if u.Op != stream.Insert {
			panic("DegRes is insertion-only")
		}
		dr.Process(u.A, u.B, tracker.Inc(u.A))
	}
}

// star returns d distinct edges rooted at vertex a.
func star(a int64, d int64) []stream.Update {
	ups := make([]stream.Update, d)
	for i := int64(0); i < d; i++ {
		ups[i] = stream.Ins(a, i)
	}
	return ups
}

func TestDegResAllStorePath(t *testing.T) {
	// Lemma 3.1's first case: when the number of candidates never exceeds
	// s, every vertex of degree >= d1 is stored, so success is certain.
	rng := xrand.New(1)
	dr := NewDegRes(rng, 3, 4, 100)
	var ups []stream.Update
	for v := int64(0); v < 10; v++ {
		ups = append(ups, star(v, 6)...)
	}
	feedDegRes(dr, ups)
	nb, ok := dr.Result()
	if !ok {
		t.Fatal("all-store path failed")
	}
	if len(nb.Witnesses) != 4 {
		t.Fatalf("got %d witnesses, want 4", len(nb.Witnesses))
	}
}

func TestDegResWitnessesAreRealEdges(t *testing.T) {
	rng := xrand.New(2)
	dr := NewDegRes(rng, 2, 3, 10)
	ups := star(5, 8)
	feedDegRes(dr, ups)
	nb, ok := dr.Result()
	if !ok {
		t.Fatal("single-star instance failed")
	}
	if nb.A != 5 {
		t.Fatalf("reported vertex %d, want 5", nb.A)
	}
	truth := stream.Materialize(ups)
	seen := make(map[int64]bool)
	for _, b := range nb.Witnesses {
		if seen[b] {
			t.Fatalf("duplicate witness %d", b)
		}
		seen[b] = true
		if _, ok := truth[stream.Edge{A: 5, B: b}]; !ok {
			t.Fatalf("fabricated witness %d", b)
		}
	}
}

func TestDegResCollectsTriggeringEdge(t *testing.T) {
	// A vertex of degree exactly d1 + d2 - 1 must be able to supply d2
	// witnesses (edges number d1 .. d1+d2-1), per min(d2, deg - d1 + 1).
	rng := xrand.New(3)
	d1, d2 := int64(4), int64(3)
	dr := NewDegRes(rng, d1, d2, 10)
	feedDegRes(dr, star(0, d1+d2-1))
	if _, ok := dr.Result(); !ok {
		t.Fatalf("vertex of degree d1+d2-1 = %d did not yield d2 = %d witnesses", d1+d2-1, d2)
	}
}

func TestDegResFailsBelowThreshold(t *testing.T) {
	// A vertex of degree d1 + d2 - 2 collects only d2 - 1 witnesses.
	rng := xrand.New(4)
	d1, d2 := int64(4), int64(3)
	dr := NewDegRes(rng, d1, d2, 10)
	feedDegRes(dr, star(0, d1+d2-2))
	if _, ok := dr.Result(); ok {
		t.Fatal("run succeeded although no vertex reaches d1+d2-1")
	}
	nb, ok := dr.Best()
	if !ok || int64(len(nb.Witnesses)) != d2-1 {
		t.Fatalf("Best = %v, want %d witnesses", nb, d2-1)
	}
}

func TestDegResEmptyStream(t *testing.T) {
	rng := xrand.New(5)
	dr := NewDegRes(rng, 1, 1, 5)
	if _, ok := dr.Result(); ok {
		t.Fatal("empty stream produced a result")
	}
	if _, ok := dr.Best(); ok {
		t.Fatal("empty stream produced a Best")
	}
}

// TestDegResSuccessProbability measures the empirical success rate on the
// Lemma 3.1 regime (n1 candidates, n2 full-degree vertices) against the
// bound 1 - (1 - s/n1)^n2.
func TestDegResSuccessProbability(t *testing.T) {
	const n1, n2, s = 100, 10, 20
	d1, d2 := int64(2), int64(3)
	const trials = 400
	rng := xrand.New(6)
	successes := 0
	for trial := 0; trial < trials; trial++ {
		trialRNG := rng.Split()
		dr := NewDegRes(trialRNG, d1, d2, s)
		var ups []stream.Update
		for v := int64(0); v < n1; v++ {
			deg := d1 // a candidate but not full
			if v < n2 {
				deg = d1 + d2 - 1 // full
			}
			ups = append(ups, star(v, deg)...)
		}
		// Shuffle to exercise arbitrary arrival order.
		trialRNG.Shuffle(len(ups), func(i, j int) { ups[i], ups[j] = ups[j], ups[i] })
		feedDegRes(dr, ups)
		if _, ok := dr.Result(); ok {
			successes++
		}
	}
	rate := float64(successes) / trials
	bound := 1 - math.Pow(1-float64(s)/n1, n2) // ~0.89 for these parameters
	// The bound is a lower bound on success; allow statistical slack.
	if rate < bound-0.08 {
		t.Fatalf("success rate %.3f below Lemma 3.1 bound %.3f", rate, bound)
	}
}

func TestDegResSpaceBounded(t *testing.T) {
	// Space must stay O(s * d2): at most s candidates, each with <= d2
	// witnesses.
	rng := xrand.New(7)
	const s = 8
	d2 := int64(5)
	dr := NewDegRes(rng, 2, d2, s)
	var ups []stream.Update
	for v := int64(0); v < 500; v++ {
		ups = append(ups, star(v, 30)...)
	}
	feedDegRes(dr, ups)
	limit := s * (2 + int(d2) + 2) // per-candidate words + pos map entries
	if got := dr.SpaceWords(); got > limit {
		t.Fatalf("SpaceWords = %d, want <= %d", got, limit)
	}
}

func TestDegResPanicsOnBadParams(t *testing.T) {
	rng := xrand.New(8)
	for name, f := range map[string]func(){
		"d1=0": func() { NewDegRes(rng, 0, 1, 1) },
		"d2=0": func() { NewDegRes(rng, 1, 0, 1) },
		"s=0":  func() { NewDegRes(rng, 1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDegreeTracker(t *testing.T) {
	tr := NewDegreeTracker()
	if tr.Degree(5) != 0 {
		t.Fatal("fresh tracker has non-zero degree")
	}
	for i := 1; i <= 4; i++ {
		if got := tr.Inc(5); got != int64(i) {
			t.Fatalf("Inc #%d = %d", i, got)
		}
	}
	if tr.SpaceWords() != 2 {
		t.Fatalf("SpaceWords = %d, want 2", tr.SpaceWords())
	}
}
