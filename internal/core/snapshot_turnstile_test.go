package core

import (
	"bytes"
	"errors"
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

func turnstileSnapCfg() InsertDeleteConfig {
	return InsertDeleteConfig{N: 32, M: 64, D: 8, Alpha: 2, Seed: 11, ScaleFactor: 0.02}
}

func turnstileSnapStream(t testing.TB) (*workload.Planted, []stream.Update) {
	t.Helper()
	inst, err := workload.NewChurn(workload.ChurnConfig{
		Planted: workload.PlantedConfig{
			N: 32, M: 64, Heavy: 1, HeavyDeg: 8,
			NoiseEdges: 40, MaxNoise: 2, Order: workload.Shuffled, Seed: 5,
		},
		ChurnEdges: 100,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, inst.Updates
}

func TestTurnstileSnapshotRoundTrip(t *testing.T) {
	algo, err := NewInsertDelete(turnstileSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	_, ups := turnstileSnapStream(t)
	algo.ApplyUpdates(ups[:len(ups)/3])

	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := algo.SnapshotSize(), buf.Len(); got != want {
		t.Fatalf("SnapshotSize = %d, actual = %d", got, want)
	}
	restored, err := RestoreInsertDelete(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.UpdatesProcessed() != algo.UpdatesProcessed() {
		t.Fatalf("updates %d, want %d", restored.UpdatesProcessed(), algo.UpdatesProcessed())
	}
	if restored.SpaceWords() != algo.SpaceWords() {
		t.Fatalf("space %d, want %d", restored.SpaceWords(), algo.SpaceWords())
	}
	var buf2 bytes.Buffer
	if err := restored.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot of restored state differs from original snapshot")
	}
}

// TestTurnstileSnapshotContinuation: restoring mid-stream and feeding the
// identical suffix yields the exact same final state as the uninterrupted
// run — deletions of edges inserted before the checkpoint must cancel in
// the restored sketches too.
func TestTurnstileSnapshotContinuation(t *testing.T) {
	inst, ups := turnstileSnapStream(t)

	full, err := NewInsertDelete(turnstileSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	full.ApplyUpdates(ups)

	half, err := NewInsertDelete(turnstileSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(ups) / 2
	half.ApplyUpdates(ups[:cut])
	var buf bytes.Buffer
	if err := half.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreInsertDelete(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed.ApplyUpdates(ups[cut:])

	var a, b bytes.Buffer
	if err := full.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}

	nb, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
	nbFull, err := full.Result()
	if err != nil {
		t.Fatal(err)
	}
	if nb.A != nbFull.A {
		t.Fatalf("resumed found vertex %d, uninterrupted found %d", nb.A, nbFull.A)
	}
}

func TestTurnstileSnapshotEmpty(t *testing.T) {
	algo, err := NewInsertDelete(turnstileSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInsertDelete(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.UpdatesProcessed() != 0 {
		t.Fatalf("restored empty algorithm has %d updates", restored.UpdatesProcessed())
	}
	if _, err := restored.Result(); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
}

func TestTurnstileRestoreRejectsCorruption(t *testing.T) {
	algo, err := NewInsertDelete(turnstileSnapCfg())
	if err != nil {
		t.Fatal(err)
	}
	_, ups := turnstileSnapStream(t)
	algo.ApplyUpdates(ups[:100])
	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("empty", func(t *testing.T) {
		if _, err := RestoreInsertDelete(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := RestoreInsertDelete(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("insert-only magic", func(t *testing.T) {
		if _, err := RestoreInsertDelete(bytes.NewReader(append(snapMagic[:], good[8:]...))); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []int{2, 3, 10} {
			if _, err := RestoreInsertDelete(bytes.NewReader(good[:len(good)/frac])); err == nil {
				t.Fatalf("truncation to 1/%d accepted", frac)
			}
		}
	})
	t.Run("zeroed N", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		for i := 8; i < 16; i++ {
			bad[i] = 0
		}
		if _, err := RestoreInsertDelete(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
}
