package core

import (
	"fmt"
	"io"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// WindowShard is one shard's slice of a sliding-window FEwW instance: the
// insertion-only algorithm (Algorithm 2) answering "which of my items is
// frequent with witnesses over the last Window updates of the stream",
// instead of "frequent ever".
//
// # Construction: a ladder of suffix instances
//
// The stream of accepted updates is cut into buckets of
// width = ceil(Window/Buckets) positions.  At every bucket boundary
// k*width a fresh InsertOnly instance is (lazily) started; every update
// then feeds all retained instances, so instance k holds exactly the
// shard's updates with global position >= k*width — the suffix of the
// stream starting at that boundary.  Queries serve the oldest instance
// whose start still lies inside the window (k*width >= S - Window, with S
// the global accepted count): its state covers only in-window updates, so
// every reported witness arrived within the last Window updates — a
// witness can never be stale.  Once an instance's start falls out of the
// window it can never return (S only grows), and the whole instance —
// reservoirs, witness sets, degree table — is dropped in one step: expiry
// costs O(1) amortised per update and never scans state.
//
// # The space/recency trade-off against Algorithm 1/2
//
// The paper's Algorithm 2 stores one run ladder over the whole stream:
// O(n log n + n^(1/alpha) * d * log^2 n) bits (Theorem 3.2).  The window
// variant multiplies that by the number of live suffix instances — at
// most Buckets+1 — because each in-window update is held by every
// instance whose suffix contains it.  What the multiplier buys is
// recency: the served instance starts at most Window updates ago and at
// least Window-width+1 updates ago, so
//
//   - any item with >= D occurrences among the last Window-width+1
//     updates is reported w.h.p. (the served suffix contains all of
//     them, and Theorem 3.2 applies to it verbatim);
//   - no reported witness is older than Window updates.
//
// Larger Buckets sharpens the window (width shrinks) and costs
// proportionally more space; Buckets == 1 degenerates to restarting the
// algorithm every Window updates.  The one-sided slack of a single
// bucket width is the classic sub-window construction's price for O(1)
// expiry — shrinking it to zero would mean evicting individual updates
// from reservoirs, which Deg-Res-Sampling cannot do.
//
// # Positions and the shard clock
//
// Update positions are global: the engine stamps every accepted element
// with its 0-based position in the total stream before routing it, and
// hands the shard a clock reading the global accepted count.  Bucket
// boundaries therefore align across all shards of an engine (and across
// cluster members fed aligned sub-streams), which is what makes
// per-shard answers mergeable and cluster answers reproducible.  The
// clock is read at query/view time only; mutation (instance creation and
// expiry) happens exclusively in Apply, keyed by the positions actually
// observed, so queries never modify state.
type WindowShard struct {
	cfg      WindowShardConfig
	width    int64
	d2       int64
	clock    func() int64     // global accepted count, monotone
	insts    []windowInstance // retained suffix instances, ascending k
	nextK    int64            // next bucket label to create
	consumed int64            // updates consumed by this shard, ever
	scratch  []stream.Edge    // Apply conversion buffer, not part of state
}

// windowInstance is one suffix instance: the InsertOnly run started at
// bucket boundary k*width.
type windowInstance struct {
	k   int64
	run *InsertOnly
}

// WindowUpdate is one element of a windowed stream: the inserted edge
// plus its 0-based position in the global accepted stream.  The position
// is assigned by the engine under its producer lock, so it is unique,
// dense and arrival-ordered across all shards.
type WindowUpdate struct {
	stream.Edge
	Pos int64
}

// WindowShardConfig parameterises one shard of a sharded sliding-window
// engine.
type WindowShardConfig struct {
	// N is the shard's item sub-universe size.
	N int64
	// D is the frequency threshold: an item with >= D in-window
	// occurrences is reported with ceil(D/Alpha) witnesses.
	D int64
	// Alpha is the approximation factor (>= 1), as in InsertOnlyConfig.
	Alpha int
	// Window is the sliding window length W in global stream updates.
	Window int64
	// Buckets is the number of sub-windows B (1 <= B <= Window): expiry
	// granularity is width = ceil(W/B) and live space is multiplied by at
	// most B+1.
	Buckets int64
	// Seed derives the per-instance seeds; distinct shards get distinct
	// seeds from their engine.
	Seed uint64
	// ScaleFactor scales every instance's reservoir (see InsertOnlyConfig).
	ScaleFactor float64
}

func (cfg *WindowShardConfig) validate() error {
	if cfg.N < 1 {
		return fmt.Errorf("core: WindowShard config: N = %d, want >= 1", cfg.N)
	}
	if cfg.D < 1 {
		return fmt.Errorf("core: WindowShard config: D = %d, want >= 1", cfg.D)
	}
	if cfg.Alpha < 1 {
		return fmt.Errorf("core: WindowShard config: Alpha = %d, want >= 1", cfg.Alpha)
	}
	if cfg.Window < 1 {
		return fmt.Errorf("core: WindowShard config: Window = %d, want >= 1", cfg.Window)
	}
	if cfg.Buckets < 1 || cfg.Buckets > cfg.Window {
		return fmt.Errorf("core: WindowShard config: Buckets = %d, want 1 <= Buckets <= Window = %d",
			cfg.Buckets, cfg.Window)
	}
	if cfg.ScaleFactor < 0 {
		return fmt.Errorf("core: WindowShard config: ScaleFactor = %f, want >= 0", cfg.ScaleFactor)
	}
	return nil
}

// WindowBucketWidth returns the sub-window width ceil(window/buckets) —
// the expiry granularity shared by every shard of an engine.
func WindowBucketWidth(window, buckets int64) int64 {
	return (window + buckets - 1) / buckets
}

// WindowStart returns the global position the served window begins at
// after accepted updates: 0 while the stream is shorter than the window,
// then the smallest bucket boundary still inside it.  The served span is
// [WindowStart, accepted); its length is in (window-width, window] once
// the stream is long enough.  Engines surface this on /stats.
func WindowStart(accepted, window, buckets int64) int64 {
	if accepted <= window {
		return 0
	}
	width := WindowBucketWidth(window, buckets)
	k := (accepted - window + width - 1) / width
	return k * width
}

// instanceSeed derives the suffix instance k's seed from the shard seed,
// independent of when the instance is (lazily) created, so restore can
// re-derive and cross-check it.
func (cfg *WindowShardConfig) instanceSeed(k int64) uint64 {
	return xrand.New(cfg.Seed + 0x9e3779b97f4a7c15*uint64(k+1)).Uint64()
}

// instanceConfig derives suffix instance k's InsertOnly configuration;
// restore verifies instance snapshots against exactly this derivation.
func (cfg *WindowShardConfig) instanceConfig(k int64) InsertOnlyConfig {
	return InsertOnlyConfig{
		N:           cfg.N,
		D:           cfg.D,
		Alpha:       cfg.Alpha,
		Seed:        cfg.instanceSeed(k),
		ScaleFactor: cfg.ScaleFactor,
	}
}

// NewWindowShard builds an empty shard.  clock must return the global
// number of accepted updates (across all shards of the engine); it is
// read at query and view time to decide which suffix instances are still
// inside the window.
func NewWindowShard(cfg WindowShardConfig, clock func() int64) (*WindowShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("core: WindowShard: nil clock")
	}
	return &WindowShard{
		cfg:   cfg,
		width: WindowBucketWidth(cfg.Window, cfg.Buckets),
		d2:    witnessTarget(cfg.D, cfg.Alpha),
		clock: clock,
	}, nil
}

// Config returns the configuration the shard was built (or restored) with.
func (ws *WindowShard) Config() WindowShardConfig { return ws.cfg }

// minLive returns the smallest bucket label whose suffix instance is
// still inside the window after `accepted` global updates.
func (ws *WindowShard) minLive(accepted int64) int64 {
	return WindowStart(accepted, ws.cfg.Window, ws.cfg.Buckets) / ws.width
}

// Apply consumes one batch of position-stamped updates in stream order.
// Positions within a batch are strictly ascending (the engine stamps them
// under one lock); the batch is split into segments sharing a bucket so
// instance creation and expiry happen at most once per bucket crossed.
func (ws *WindowShard) Apply(batch []WindowUpdate) {
	if len(batch) == 0 {
		return
	}
	ws.consumed += int64(len(batch))
	start := 0
	bucket := batch[0].Pos / ws.width
	for i := 1; i <= len(batch); i++ {
		if i < len(batch) && batch[i].Pos/ws.width == bucket {
			continue
		}
		ws.applySegment(batch[start:i], bucket)
		if i < len(batch) {
			start, bucket = i, batch[i].Pos/ws.width
		}
	}
}

// applySegment feeds one same-bucket run of updates.  Order matters:
// expired instances are dropped and the bucket's instance is created
// before feeding, so no update ever reaches an instance whose suffix
// does not contain it.
func (ws *WindowShard) applySegment(seg []WindowUpdate, bucket int64) {
	// Expire: any instance whose start precedes the window of the first
	// position's stream prefix is dead for every later query too (the
	// clock only grows), so dropping it whole here is safe and final.
	min := ws.minLive(seg[0].Pos + 1)
	cut := 0
	for cut < len(ws.insts) && ws.insts[cut].k < min {
		cut++
	}
	if cut > 0 {
		n := copy(ws.insts, ws.insts[cut:])
		for i := n; i < len(ws.insts); i++ {
			ws.insts[i] = windowInstance{} // release the dropped instance
		}
		ws.insts = ws.insts[:n]
	}
	// Create: every label up to this bucket that could still serve a
	// query.  Labels below min would be expired before ever being served;
	// skipping them keeps a long-idle shard's catch-up O(Buckets), not
	// O(gap/width).  A skipped label stays skipped — nextK is monotone —
	// which is exactly the lazy-creation invariant restore relies on.
	from := ws.nextK
	if from < min {
		from = min
	}
	for k := from; k <= bucket; k++ {
		run, err := NewInsertOnly(ws.cfg.instanceConfig(k))
		if err != nil {
			// The per-instance config differs from the validated shard
			// config only in its derived seed; it cannot fail.
			panic(fmt.Sprintf("core: WindowShard instance %d: %v", k, err))
		}
		ws.insts = append(ws.insts, windowInstance{k: k, run: run})
	}
	if bucket+1 > ws.nextK {
		ws.nextK = bucket + 1
	}
	// Feed every retained instance the segment: each retained instance's
	// start is <= bucket*width <= every position in the segment.
	edges := ws.scratch[:0]
	for _, u := range seg {
		edges = append(edges, u.Edge)
	}
	ws.scratch = edges
	for _, inst := range ws.insts {
		inst.run.ProcessEdges(edges)
	}
}

// served returns the suffix instance queries answer from — the oldest
// retained instance still inside the window — or nil when the shard holds
// nothing in-window (no traffic yet, or everything aged out).
func (ws *WindowShard) served() *InsertOnly {
	min := ws.minLive(ws.clock())
	for i := range ws.insts {
		if ws.insts[i].k >= min {
			return ws.insts[i].run
		}
	}
	return nil
}

// QueryBest is the Best half of the barrier read: the largest (possibly
// below-target) in-window neighbourhood; see (*InsertOnly).QueryBest.
func (ws *WindowShard) QueryBest() View {
	if run := ws.served(); run != nil {
		return run.QueryBest()
	}
	return View{Rung: -1}
}

// QueryResults is the Results half of the barrier read: every item with a
// full ceil(D/Alpha)-witness in-window neighbourhood, sorted by item id.
func (ws *WindowShard) QueryResults() View {
	if run := ws.served(); run != nil {
		return run.QueryResults()
	}
	return View{Rung: -1}
}

// View builds the shard's immutable published query surface from the
// served suffix instance, with size accounting over the whole retained
// ladder (what the shard actually holds, not just what it serves).
func (ws *WindowShard) View() View {
	var v View
	if run := ws.served(); run != nil {
		v = run.View()
	} else {
		v = View{Rung: -1}
	}
	v.SpaceWords = ws.SpaceWords()
	v.SnapshotBytes = ws.SnapshotSize()
	v.Elements = ws.consumed
	return v
}

// WitnessTarget returns ceil(D/Alpha), identical on every shard.
func (ws *WindowShard) WitnessTarget() int64 { return ws.d2 }

// EdgesProcessed returns the number of updates the shard has consumed
// over its lifetime (not just in-window).
func (ws *WindowShard) EdgesProcessed() int64 { return ws.consumed }

// Instances returns the retained suffix-instance count, for diagnostics.
func (ws *WindowShard) Instances() int { return len(ws.insts) }

// SpaceWords reports the live state summed over every retained instance
// — the B+1 multiplier of the godoc trade-off, measured.
func (ws *WindowShard) SpaceWords() int {
	words := 4 // cfg bookkeeping: width, nextK, consumed, instance count
	for _, inst := range ws.insts {
		words += inst.run.SpaceWords()
	}
	return words
}

// Snapshot writes the shard's complete window state: the consumed
// counter, then every *live* suffix instance (label, length-prefixed
// InsertOnly snapshot) in ascending label order.  Retained-but-expired
// instances are filtered out — they can never be served again, and
// filtering makes a snapshot taken before and after their lazy pruning
// byte-identical.  Liveness is judged by the engine's clock under the
// snapshot barrier, where it is exact.
func (ws *WindowShard) Snapshot(w io.Writer) error {
	min := ws.minLive(ws.clock())
	enc := &encoder{w: w}
	enc.i64(ws.consumed)
	live := 0
	for _, inst := range ws.insts {
		if inst.k >= min {
			live++
		}
	}
	enc.i64(int64(live))
	for _, inst := range ws.insts {
		if inst.k < min {
			continue
		}
		enc.i64(inst.k)
		enc.i64(int64(inst.run.SnapshotSize()))
		if enc.err == nil {
			enc.err = inst.run.Snapshot(w)
		}
	}
	return enc.err
}

// SnapshotSize returns the exact byte length Snapshot would write, under
// the same liveness filter.
func (ws *WindowShard) SnapshotSize() int {
	min := ws.minLive(ws.clock())
	size := 16 // consumed + live count
	for _, inst := range ws.insts {
		if inst.k >= min {
			size += 16 + inst.run.SnapshotSize()
		}
	}
	return size
}

// RestoreWindowShard reads a snapshot written by Snapshot and returns a
// shard that continues exactly where the snapshotted one stopped.  cfg
// must be the configuration the restoring container derived for this
// shard; every instance snapshot is cross-checked against the
// label-derived configuration, so a snapshot from a different window
// geometry, universe slice or seed fails as ErrBadSnapshot.  nextK is
// re-derived from the newest restored instance: a live instance set is
// never newer than the shard's newest-created label, and when the set is
// empty the creation lower bound is dominated by the window anyway.
func RestoreWindowShard(r io.Reader, cfg WindowShardConfig, clock func() int64) (*WindowShard, error) {
	ws, err := NewWindowShard(cfg, clock)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	dec := &decoder{r: r}
	ws.consumed = dec.i64()
	ninsts := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if ws.consumed < 0 || ninsts < 0 || ninsts > cfg.Buckets+1 {
		return nil, fmt.Errorf("%w: window shard consumed %d with %d instances (Buckets = %d)",
			ErrBadSnapshot, ws.consumed, ninsts, cfg.Buckets)
	}
	prev := int64(-1)
	for i := int64(0); i < ninsts; i++ {
		k := dec.i64()
		size := dec.i64()
		if dec.err != nil {
			return nil, dec.err
		}
		if k <= prev {
			return nil, fmt.Errorf("%w: instance label %d not ascending from %d", ErrBadSnapshot, k, prev)
		}
		if size < 0 {
			return nil, fmt.Errorf("%w: instance %d snapshot length %d", ErrBadSnapshot, k, size)
		}
		lr := io.LimitReader(r, size)
		run, err := RestoreInsertOnly(lr)
		if err != nil {
			return nil, fmt.Errorf("window instance %d: %w", k, err)
		}
		if left, _ := io.Copy(io.Discard, lr); left != 0 {
			return nil, fmt.Errorf("%w: instance %d snapshot has %d trailing bytes", ErrBadSnapshot, k, left)
		}
		if got, want := run.Config(), cfg.instanceConfig(k); got != want {
			return nil, fmt.Errorf("%w: instance %d config %+v does not match window derivation %+v",
				ErrBadSnapshot, k, got, want)
		}
		ws.insts = append(ws.insts, windowInstance{k: k, run: run})
		prev = k
	}
	if len(ws.insts) > 0 {
		ws.nextK = ws.insts[len(ws.insts)-1].k + 1
	}
	return ws, nil
}
