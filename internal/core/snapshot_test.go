package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"feww/internal/workload"
)

func snapCfg() InsertOnlyConfig {
	return InsertOnlyConfig{N: 512, D: 40, Alpha: 2, Seed: 7}
}

func feedPlanted(t testing.TB, algo *InsertOnly, seed uint64, upTo int) *workload.Planted {
	t.Helper()
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: 512, M: 2048, Heavy: 1, HeavyDeg: 40,
		NoiseEdges: 512, Order: workload.Shuffled, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ups := inst.Updates
	if upTo > len(ups) {
		upTo = len(ups)
	}
	for _, u := range ups[:upTo] {
		algo.ProcessEdge(u.A, u.B)
	}
	return inst
}

func TestSnapshotRoundTrip(t *testing.T) {
	algo, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedPlanted(t, algo, 3, 400)

	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInsertOnly(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if restored.EdgesProcessed() != algo.EdgesProcessed() {
		t.Fatalf("edges %d, want %d", restored.EdgesProcessed(), algo.EdgesProcessed())
	}
	if restored.SpaceWords() != algo.SpaceWords() {
		t.Fatalf("space %d, want %d", restored.SpaceWords(), algo.SpaceWords())
	}
	// Both must produce byte-identical snapshots (deterministic encoding).
	var buf2 bytes.Buffer
	if err := restored.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot of restored state differs from original snapshot")
	}
}

// TestSnapshotContinuation is the crucial property: restoring mid-stream
// and feeding the identical suffix yields the exact same final state as the
// uninterrupted run (the RNG streams must line up).
func TestSnapshotContinuation(t *testing.T) {
	full, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	inst := feedPlanted(t, full, 3, 1<<30) // full stream

	half, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	cut := len(inst.Updates) / 2
	for _, u := range inst.Updates[:cut] {
		half.ProcessEdge(u.A, u.B)
	}
	var buf bytes.Buffer
	if err := half.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreInsertOnly(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates[cut:] {
		resumed.ProcessEdge(u.A, u.B)
	}

	var a, b bytes.Buffer
	if err := full.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
	// And the resumed algorithm still solves the instance.
	nb, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSizeExact(t *testing.T) {
	algo, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedPlanted(t, algo, 5, 300)
	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := algo.SnapshotSize(), buf.Len(); got != want {
		t.Fatalf("SnapshotSize = %d, actual = %d", got, want)
	}
}

func TestSnapshotEmptyAlgorithm(t *testing.T) {
	algo, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInsertOnly(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.EdgesProcessed() != 0 {
		t.Fatalf("restored empty algorithm has %d edges", restored.EdgesProcessed())
	}
	if _, err := restored.Result(); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("got %v, want ErrNoWitness", err)
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	algo, err := NewInsertOnly(snapCfg())
	if err != nil {
		t.Fatal(err)
	}
	feedPlanted(t, algo, 9, 200)
	var buf bytes.Buffer
	if err := algo.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("empty", func(t *testing.T) {
		if _, err := RestoreInsertOnly(bytes.NewReader(nil)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := RestoreInsertOnly(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, frac := range []int{2, 3, 10} {
			if _, err := RestoreInsertOnly(bytes.NewReader(good[:len(good)/frac])); err == nil {
				t.Fatalf("truncation to 1/%d accepted", frac)
			}
		}
	})
	t.Run("zeroed header field", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		for i := 8; i < 16; i++ { // N = 0 is an invalid config
			bad[i] = 0
		}
		if _, err := RestoreInsertOnly(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestSnapshotPropertyRoundTrip: round-tripping at a random cut point of a
// random instance always reproduces the remaining run exactly.
func TestSnapshotPropertyRoundTrip(t *testing.T) {
	check := func(seed uint64, cutPct uint8) bool {
		cfg := InsertOnlyConfig{N: 128, D: 16, Alpha: 2, Seed: seed}
		inst, err := workload.NewPlanted(workload.PlantedConfig{
			N: 128, M: 512, Heavy: 1, HeavyDeg: 16,
			NoiseEdges: 128, Order: workload.Shuffled, Seed: seed,
		})
		if err != nil {
			return false
		}
		full, err := NewInsertOnly(cfg)
		if err != nil {
			return false
		}
		for _, u := range inst.Updates {
			full.ProcessEdge(u.A, u.B)
		}

		part, err := NewInsertOnly(cfg)
		if err != nil {
			return false
		}
		cut := len(inst.Updates) * int(cutPct%101) / 100
		for _, u := range inst.Updates[:cut] {
			part.ProcessEdge(u.A, u.B)
		}
		var buf bytes.Buffer
		if err := part.Snapshot(&buf); err != nil {
			return false
		}
		resumed, err := RestoreInsertOnly(&buf)
		if err != nil {
			return false
		}
		for _, u := range inst.Updates[cut:] {
			resumed.ProcessEdge(u.A, u.B)
		}
		var a, b bytes.Buffer
		if full.Snapshot(&a) != nil || resumed.Snapshot(&b) != nil {
			return false
		}
		return bytes.Equal(a.Bytes(), b.Bytes())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	algo, err := NewInsertOnly(InsertOnlyConfig{N: 1 << 14, D: 200, Alpha: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	feedPlanted(b, algo, 3, 1<<30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := algo.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
