package core

// View is an immutable summary of an algorithm instance's query surface,
// exported so a concurrent container (the sharded engines) can publish it
// through an atomic pointer and serve queries without quiescing the
// instance's owner.  Everything inside is deep-copied from the live state:
// witness slices in particular are cloned, because DegRes hands out
// neighbourhoods that alias its reservoir candidates, which the owning
// goroutine keeps appending to.  A View therefore never changes after it
// is built — readers may hold it indefinitely and share it freely.
type View struct {
	// Best is the largest neighbourhood collected so far, possibly below
	// the witness target; BestOK is false when nothing was collected.
	Best   Neighbourhood
	BestOK bool
	// Results holds every full-target neighbourhood, sorted by vertex id.
	Results []Neighbourhood
	// SpaceWords and SnapshotBytes are the live-state size and the exact
	// Snapshot length at the time the view was built.
	SpaceWords    int
	SnapshotBytes int
	// Elements is the number of stream elements applied when the view was
	// built (edges for InsertOnly, updates for InsertDelete).
	Elements int64
}

// cloneNeighbourhood deep-copies a neighbourhood so the returned value
// shares no memory with live algorithm state.
func cloneNeighbourhood(nb Neighbourhood) Neighbourhood {
	w := make([]int64, len(nb.Witnesses))
	copy(w, nb.Witnesses)
	return Neighbourhood{A: nb.A, Witnesses: w}
}

// View builds an immutable snapshot of the instance's query surface.  It
// must be called by the goroutine that owns the instance (or under the
// same synchronisation as mutations); the returned value is then safe to
// hand to any number of concurrent readers.
func (io_ *InsertOnly) View() View {
	v := View{
		SpaceWords:    io_.SpaceWords(),
		SnapshotBytes: io_.SnapshotSize(),
		Elements:      io_.edges,
	}
	if nb, ok := io_.Best(); ok {
		v.Best, v.BestOK = cloneNeighbourhood(nb), true
	}
	if results := io_.Results(); len(results) > 0 {
		v.Results = make([]Neighbourhood, len(results))
		for i, nb := range results {
			v.Results[i] = cloneNeighbourhood(nb)
		}
	}
	return v
}

// View builds an immutable snapshot of the instance's query surface; see
// (*InsertOnly).View.  The turnstile algorithm only certifies full-target
// neighbourhoods (its L0-sampler queries have no meaningful "largest
// partial"), so Best and Results both carry the Result neighbourhood when
// one exists.  Result already allocates fresh witness slices, so no extra
// copy is needed.
func (id *InsertDelete) View() View {
	v := View{
		SpaceWords:    id.SpaceWords(),
		SnapshotBytes: id.SnapshotSize(),
		Elements:      id.updates,
	}
	if nb, err := id.Result(); err == nil {
		v.Best, v.BestOK = nb, true
		v.Results = []Neighbourhood{nb}
	}
	return v
}
