package core

// View is an immutable summary of an algorithm instance's query surface,
// exported so a concurrent container (the sharded engines) can publish it
// through an atomic pointer and serve queries without quiescing the
// instance's owner.  Everything inside shares no memory with live state:
// the algorithms' query methods copy witness slices out of their
// reservoirs (DegRes recycles evicted buffers in place, so nothing may
// alias them).  A View therefore never changes after it is built —
// readers may hold it indefinitely and share it freely.
type View struct {
	// Best is the largest neighbourhood collected so far, possibly below
	// the witness target; BestOK is false when nothing was collected.
	Best   Neighbourhood
	BestOK bool
	// Results holds every full-target neighbourhood, sorted by vertex id.
	Results []Neighbourhood
	// SpaceWords and SnapshotBytes are the live-state size and the exact
	// Snapshot length at the time the view was built.
	SpaceWords    int
	SnapshotBytes int
	// Elements is the number of stream elements applied when the view was
	// built (edges for InsertOnly, updates for InsertDelete).
	Elements int64
	// Rung, Guess and Target describe a star-ladder view (StarShard): Rung
	// is the index of the highest ladder rung holding a full-target result
	// (-1 when none has one yet), Guess the rung's degree guess Delta', and
	// Target its witness target ceil(Guess/Alpha) — the size every
	// neighbourhood in Results then has.  Non-ladder views (InsertOnly,
	// InsertDelete) always carry Rung == -1, Guess == 0, Target == 0.
	Rung   int
	Guess  int64
	Target int64
}

// QueryBest and QueryResults build the two halves of a View's query
// surface — Best/BestOK and Results respectively, plus the star rung
// fields — without the snapshot-size/space accounting View performs,
// and without computing the half the caller did not ask for.  They are
// what the runtime's fresh (barrier) queries read; the neighbourhoods
// are copies the caller owns (see DegRes), so they stay valid after the
// barrier releases, and the skipped fields stay zero.
func (io_ *InsertOnly) QueryBest() View {
	v := View{Rung: -1}
	if nb, ok := io_.Best(); ok {
		v.Best, v.BestOK = nb, true
	}
	return v
}

// QueryResults is the Results half of the barrier read; see QueryBest.
func (io_ *InsertOnly) QueryResults() View {
	return View{Rung: -1, Results: io_.Results()}
}

// QueryBest is the barrier-read form of View's Best half; the turnstile
// algorithm only certifies full-target neighbourhoods, so both halves
// derive from Result.
func (id *InsertDelete) QueryBest() View {
	v := View{Rung: -1}
	if nb, err := id.Result(); err == nil {
		v.Best, v.BestOK = nb, true
	}
	return v
}

// QueryResults is the Results half of the barrier read; see QueryBest.
func (id *InsertDelete) QueryResults() View {
	v := View{Rung: -1}
	if nb, err := id.Result(); err == nil {
		v.Results = []Neighbourhood{nb}
	}
	return v
}

// View builds an immutable snapshot of the instance's query surface.  It
// must be called by the goroutine that owns the instance (or under the
// same synchronisation as mutations); the returned value is then safe to
// hand to any number of concurrent readers.
func (io_ *InsertOnly) View() View {
	v := View{
		SpaceWords:    io_.SpaceWords(),
		SnapshotBytes: io_.SnapshotSize(),
		Elements:      io_.edges,
		Rung:          -1,
	}
	if nb, ok := io_.Best(); ok {
		v.Best, v.BestOK = nb, true
	}
	if results := io_.Results(); len(results) > 0 {
		v.Results = results
	}
	return v
}

// View builds an immutable snapshot of the instance's query surface; see
// (*InsertOnly).View.  The turnstile algorithm only certifies full-target
// neighbourhoods (its L0-sampler queries have no meaningful "largest
// partial"), so Best and Results both carry the Result neighbourhood when
// one exists.  Result already allocates fresh witness slices, so no extra
// copy is needed.
func (id *InsertDelete) View() View {
	v := View{
		SpaceWords:    id.SpaceWords(),
		SnapshotBytes: id.SnapshotSize(),
		Elements:      id.updates,
		Rung:          -1,
	}
	if nb, err := id.Result(); err == nil {
		v.Best, v.BestOK = nb, true
		v.Results = []Neighbourhood{nb}
	}
	return v
}
