package core

import (
	"fmt"
	"math"
	"sort"

	"feww/internal/l0"
	"feww/internal/stream"
	"feww/internal/xrand"
)

// InsertDeleteConfig parameterises the insertion-deletion algorithm.
type InsertDeleteConfig struct {
	N     int64 // |A|
	M     int64 // |B| (needed to define the edge universe [0, n*m))
	D     int64 // degree threshold d
	Alpha int   // approximation factor alpha >= 1
	Seed  uint64

	// ScaleFactor multiplies the theoretical sampler counts (the "10 ... ln"
	// terms of Algorithm 3).  1.0 (default when 0) is the paper's setting;
	// experiments use smaller values to keep the constant-factor-free
	// shape measurable on a laptop.  See docs/EXPERIMENTS.md §2 (substitutions).
	ScaleFactor float64

	// Sampler selects the internal L0 sampler dimensions; zero value uses
	// l0.DefaultParams.
	Sampler l0.Params

	// MaxSamplers caps the total number of L0 samplers the construction may
	// allocate (vertex samplers + edge samplers); 0 means the default of
	// 1 << 20.  Exceeding the cap is a configuration error: lower
	// ScaleFactor or the instance size.
	MaxSamplers int
}

func (c *InsertDeleteConfig) validate() error {
	if c.N < 1 || c.M < 1 {
		return fmt.Errorf("core: InsertDelete config: N = %d, M = %d, want >= 1", c.N, c.M)
	}
	if c.D < 1 {
		return fmt.Errorf("core: InsertDelete config: D = %d, want >= 1", c.D)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("core: InsertDelete config: Alpha = %d, want >= 1", c.Alpha)
	}
	if c.ScaleFactor < 0 {
		return fmt.Errorf("core: InsertDelete config: ScaleFactor = %f, want >= 0", c.ScaleFactor)
	}
	return nil
}

// Sizing reports the derived dimensions of Algorithm 3 for a config:
// x = max(n/alpha, sqrt(n)), the vertex sample size 10*x*ln(n), the number
// of L0 samplers per sampled vertex 10*(d/alpha)*ln(n), and the number of
// edge samplers 10*(n*d/alpha)*(1/x + 1/alpha)*ln(n*m) — all multiplied by
// ScaleFactor and floored at 1.
//
// Battery sizes are additionally floored at the coupon-collector minimum
// ~2*d2*ln(d2): sampling with repetition needs about d2*ln(d2) draws to see
// d2 distinct witnesses, so scaling a battery below that can never succeed
// and would only distort the ablation curves.
type Sizing struct {
	X                 int64
	VertexSampleSize  int
	SamplersPerVertex int
	EdgeSamplers      int
}

// TotalSamplers returns the total L0 sampler count the sizing implies.
func (s Sizing) TotalSamplers() int {
	return s.VertexSampleSize*s.SamplersPerVertex + s.EdgeSamplers
}

// Sizing computes the derived dimensions without allocating anything, so
// callers can budget before construction.
func (c *InsertDeleteConfig) Sizing() Sizing {
	scale := c.ScaleFactor
	if scale == 0 {
		scale = 1
	}
	n := float64(c.N)
	alpha := float64(c.Alpha)
	x := math.Max(n/alpha, math.Sqrt(n))
	lnN := math.Log(math.Max(n, 2))
	lnNM := math.Log(math.Max(n*float64(c.M), 2))
	dOverAlpha := float64(c.D) / alpha

	ceil1 := func(v float64) int {
		iv := int(math.Ceil(v))
		if iv < 1 {
			return 1
		}
		return iv
	}
	vs := ceil1(10 * x * lnN * scale)
	if int64(vs) > c.N {
		vs = int(c.N)
	}
	d2 := float64(witnessTarget(c.D, c.Alpha))
	minBattery := ceil1(2 * d2 * math.Log(d2+2))
	spv := ceil1(10 * dOverAlpha * lnN * scale)
	if spv < minBattery {
		spv = minBattery
	}
	es := ceil1(10 * n * dOverAlpha * (1/x + 1/alpha) * lnNM * scale)
	if es < minBattery {
		es = minBattery
	}
	return Sizing{
		X:                 int64(math.Ceil(x)),
		VertexSampleSize:  vs,
		SamplersPerVertex: spv,
		EdgeSamplers:      es,
	}
}

// InsertDelete is Algorithm 3: the one-pass alpha-approximation algorithm
// for FEwW in insertion-deletion streams.  It combines two sampling
// strategies, both implemented with L0 samplers:
//
//   - Vertex sampling: a uniform random subset A' of the A-vertices is
//     fixed before the stream; each sampled vertex gets its own battery of
//     L0 samplers over its incident-edge substream.  This succeeds w.h.p.
//     when at least n/x vertices have degree >= d/alpha (Lemma 5.2).
//   - Edge sampling: a battery of L0 samplers over the whole edge universe.
//     This succeeds w.h.p. when at most n/x vertices have degree >= d/alpha
//     (Lemma 5.3).
//
// Together they give space ~O(d n / alpha^2) for alpha <= sqrt(n)
// (Theorem 5.4).
type InsertDelete struct {
	cfg    InsertDeleteConfig
	sizing Sizing
	d2     int64

	vertexSamplers map[int64][]*l0.Sampler // sampled A-vertex -> its samplers
	edgeSamplers   []*l0.Sampler
	updates        int64
}

// NewInsertDelete constructs the algorithm, allocating all samplers up
// front (the sampled vertex set must be fixed before the stream starts).
func NewInsertDelete(cfg InsertDeleteConfig) (*InsertDelete, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sizing := cfg.Sizing()
	maxSamplers := cfg.MaxSamplers
	if maxSamplers == 0 {
		maxSamplers = 1 << 20
	}
	if total := sizing.TotalSamplers(); total > maxSamplers {
		return nil, fmt.Errorf("core: InsertDelete would allocate %d L0 samplers (cap %d); lower ScaleFactor or the instance size", total, maxSamplers)
	}
	params := cfg.Sampler
	if params == (l0.Params{}) {
		params = l0.DefaultParams
	}

	rng := xrand.New(cfg.Seed)
	algo := &InsertDelete{
		cfg:            cfg,
		sizing:         sizing,
		d2:             witnessTarget(cfg.D, cfg.Alpha),
		vertexSamplers: make(map[int64][]*l0.Sampler, sizing.VertexSampleSize),
	}

	// Fix A' := a uniform random subset of A of size VertexSampleSize.
	for _, v := range rng.Subset(int(cfg.N), sizing.VertexSampleSize) {
		batt := make([]*l0.Sampler, sizing.SamplersPerVertex)
		for i := range batt {
			batt[i] = l0.NewSampler(rng.Split(), uint64(cfg.M), params)
		}
		algo.vertexSamplers[int64(v)] = batt
	}

	algo.edgeSamplers = make([]*l0.Sampler, sizing.EdgeSamplers)
	edgeUniverse := uint64(cfg.N) * uint64(cfg.M)
	for i := range algo.edgeSamplers {
		algo.edgeSamplers[i] = l0.NewSampler(rng.Split(), edgeUniverse, params)
	}
	return algo, nil
}

// Update feeds one stream update: delta = +1 for an insertion of edge
// (a, b), delta = -1 for a deletion.
func (id *InsertDelete) Update(a, b int64, delta int) {
	if delta != 1 && delta != -1 {
		panic("core: InsertDelete.Update with delta not in {-1, +1}")
	}
	id.updates++
	if batt, ok := id.vertexSamplers[a]; ok {
		for _, s := range batt {
			s.Update(uint64(b), int64(delta))
		}
	}
	key := uint64(a)*uint64(id.cfg.M) + uint64(b)
	for _, s := range id.edgeSamplers {
		s.Update(key, int64(delta))
	}
}

// ApplyUpdates feeds a batch of stream updates in order.  It is equivalent
// to calling Update once per element; the batched form is the turnstile
// engine's shard hand-off unit.
func (id *InsertDelete) ApplyUpdates(ups []stream.Update) {
	for _, u := range ups {
		id.Update(u.A, u.B, int(u.Op))
	}
}

// ProcessUpdate implements the Algorithm interface used by StarDetector.
func (id *InsertDelete) ProcessUpdate(a, b int64, delta int) error {
	if delta != 1 && delta != -1 {
		return fmt.Errorf("core: InsertDelete.ProcessUpdate with delta %d", delta)
	}
	id.Update(a, b, delta)
	return nil
}

// Strategy identifies which of Algorithm 3's two sampling strategies
// produced a result.
type Strategy int

const (
	// StrategyNone means no strategy found a large enough neighbourhood.
	StrategyNone Strategy = iota
	// StrategyVertex is the dense-regime vertex-sampling strategy (Lemma 5.2).
	StrategyVertex
	// StrategyEdge is the sparse-regime edge-sampling strategy (Lemma 5.3).
	StrategyEdge
)

func (s Strategy) String() string {
	switch s {
	case StrategyVertex:
		return "vertex"
	case StrategyEdge:
		return "edge"
	default:
		return "none"
	}
}

// Result returns any stored neighbourhood of size >= ceil(d/alpha), per
// step 4 of Algorithm 3, or ErrNoWitness.
func (id *InsertDelete) Result() (Neighbourhood, error) {
	nb, _, err := id.ResultWithStrategy()
	return nb, err
}

// ResultWithStrategy is Result plus which strategy succeeded — used by
// experiment E6 to exhibit the dense/sparse crossover of Lemmas 5.2/5.3.
//
// Candidate vertices and witness sets are consulted in sorted order, not
// map order, so identical sampler state always yields the identical
// neighbourhood.  The engines rely on this: a published result epoch and
// a barrier read of the same state must agree byte for byte.
func (id *InsertDelete) ResultWithStrategy() (Neighbourhood, Strategy, error) {
	// Vertex strategy: each sampled vertex's battery yields up to
	// SamplersPerVertex (near-uniform, with repetition) incident edges.
	for _, a := range sortedKeys(id.vertexSamplers) {
		seen := make(map[int64]struct{})
		for _, s := range id.vertexSamplers[a] {
			if b, cnt, ok := s.Sample(); ok && cnt > 0 {
				seen[int64(b)] = struct{}{}
			}
		}
		if int64(len(seen)) >= id.d2 {
			return Neighbourhood{A: a, Witnesses: takeWitnesses(seen, id.d2)}, StrategyVertex, nil
		}
	}
	// Edge strategy: group sampled edges by their A-endpoint.
	byVertex := make(map[int64]map[int64]struct{})
	for _, s := range id.edgeSamplers {
		key, cnt, ok := s.Sample()
		if !ok || cnt <= 0 {
			continue
		}
		a := int64(key / uint64(id.cfg.M))
		b := int64(key % uint64(id.cfg.M))
		if byVertex[a] == nil {
			byVertex[a] = make(map[int64]struct{})
		}
		byVertex[a][b] = struct{}{}
	}
	for _, a := range sortedKeys(byVertex) {
		if seen := byVertex[a]; int64(len(seen)) >= id.d2 {
			return Neighbourhood{A: a, Witnesses: takeWitnesses(seen, id.d2)}, StrategyEdge, nil
		}
	}
	return Neighbourhood{}, StrategyNone, ErrNoWitness
}

// sortedKeys returns a map's keys in ascending order, for deterministic
// candidate iteration.
func sortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// takeWitnesses extracts the d2 smallest witnesses from a set — a
// deterministic choice, so the same state always reports the same proof.
func takeWitnesses(set map[int64]struct{}, d2 int64) []int64 {
	out := make([]int64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out[:d2]
}

// WitnessTarget returns d2 = ceil(d/alpha).
func (id *InsertDelete) WitnessTarget() int64 { return id.d2 }

// Config returns the configuration the instance was built (or restored)
// with; engine restore uses it to cross-check shard snapshots against
// their container.
func (id *InsertDelete) Config() InsertDeleteConfig { return id.cfg }

// SizingInfo returns the derived dimensions in use.
func (id *InsertDelete) SizingInfo() Sizing { return id.sizing }

// UpdatesProcessed returns the number of stream updates consumed.
func (id *InsertDelete) UpdatesProcessed() int64 { return id.updates }

// SpaceWords reports the live state across all L0 samplers.
func (id *InsertDelete) SpaceWords() int {
	words := 0
	for _, batt := range id.vertexSamplers {
		words++ // the sampled vertex id
		for _, s := range batt {
			words += s.SpaceWords()
		}
	}
	for _, s := range id.edgeSamplers {
		words += s.SpaceWords()
	}
	return words
}
