package core

import (
	"sort"
	"testing"

	"feww/internal/workload"
)

// TestResultsFindsMultipleHeavyVertices plants several vertices at the
// promise threshold and checks Results reports (a subset of) them, each
// with a full verified witness set and no vertex repeated.
func TestResultsFindsMultipleHeavyVertices(t *testing.T) {
	const n, d, heavy = 2048, 60, 5
	inst, err := workload.NewPlanted(workload.PlantedConfig{
		N: n, M: 4 * n, Heavy: heavy, HeavyDeg: d,
		NoiseEdges: n, Order: workload.Shuffled, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, err := NewInsertOnly(InsertOnlyConfig{N: n, D: d, Alpha: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range inst.Updates {
		algo.ProcessEdge(u.A, u.B)
	}
	results := algo.Results()
	if len(results) == 0 {
		t.Fatal("no results despite 5 planted heavy vertices")
	}
	if !sort.SliceIsSorted(results, func(i, j int) bool { return results[i].A < results[j].A }) {
		t.Fatal("Results not sorted by vertex id")
	}
	heavySet := make(map[int64]bool, heavy)
	for _, a := range inst.HeavyA {
		heavySet[a] = true
	}
	seen := make(map[int64]bool)
	for _, nb := range results {
		if seen[nb.A] {
			t.Fatalf("vertex %d reported twice", nb.A)
		}
		seen[nb.A] = true
		if int64(nb.Size()) < algo.WitnessTarget() {
			t.Fatalf("vertex %d has %d witnesses, want >= %d", nb.A, nb.Size(), algo.WitnessTarget())
		}
		if err := inst.Verify(nb.A, nb.Witnesses); err != nil {
			t.Fatal(err)
		}
		// With MaxNoise = d/2 < d/alpha... not guaranteed; but with the
		// alpha = 2 target d/2 = 30 and noise capped at d/2 - ... noise
		// vertices below the cap cannot assemble 30 witnesses unless at
		// the cap. Only assert heavy vertices dominate:
		if !heavySet[nb.A] && int64(nb.Size()) < algo.WitnessTarget() {
			t.Fatalf("non-heavy vertex %d reported with too few witnesses", nb.A)
		}
	}
	// Result (singular) agrees with Results (plural): its vertex appears.
	nb, err := algo.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !seen[nb.A] {
		t.Fatalf("Result vertex %d missing from Results", nb.A)
	}
}

func TestResultsEmptyWithoutPromise(t *testing.T) {
	algo, err := NewInsertOnly(InsertOnlyConfig{N: 64, D: 32, Alpha: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		algo.ProcessEdge(i, i)
	}
	if got := algo.Results(); len(got) != 0 {
		t.Fatalf("Results = %v on promise-violating input", got)
	}
}
