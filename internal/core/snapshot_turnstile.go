package core

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"feww/internal/l0"
)

// Snapshot / RestoreInsertDelete serialise the insertion-deletion
// algorithm.  Unlike the insertion-only snapshot, which must carry every
// sampled witness, the turnstile state is almost entirely *derived*: the
// sampled vertex set, every level/row hash function and every fingerprint
// evaluation point are deterministic functions of cfg.Seed, replayed by the
// constructor.  The snapshot therefore stores only the configuration plus
// the three mutable words of each 1-sparse cell (delta sum, index-weighted
// sum, fingerprint accumulator), and restore re-runs the constructor and
// overwrites cell state in the fixed visitation order of l0.Sampler.Cells.
//
// The format is versioned, little-endian, and deterministic: two snapshots
// of identical states are byte-identical (the vertex-sampler map is
// emitted in sorted key order).

var snapTurnstileMagic = [8]byte{'F', 'E', 'W', 'W', 'S', 'N', 'T', '1'}

// Snapshot writes the algorithm's complete state to w.
func (id *InsertDelete) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := &encoder{w: bw}
	enc.bytes(snapTurnstileMagic[:])
	enc.i64(id.cfg.N)
	enc.i64(id.cfg.M)
	enc.i64(id.cfg.D)
	enc.i64(int64(id.cfg.Alpha))
	enc.u64(id.cfg.Seed)
	enc.u64(math.Float64bits(id.cfg.ScaleFactor))
	enc.i64(int64(id.cfg.Sampler.Sparsity))
	enc.i64(int64(id.cfg.Sampler.Rows))
	enc.i64(int64(id.cfg.MaxSamplers))
	enc.i64(id.updates)

	enc.i64(int64(len(id.vertexSamplers)))
	for _, a := range id.sortedVertexSample() {
		enc.i64(a)
		for _, s := range id.vertexSamplers[a] {
			encodeCells(enc, s)
		}
	}
	enc.i64(int64(len(id.edgeSamplers)))
	for _, s := range id.edgeSamplers {
		encodeCells(enc, s)
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// RestoreInsertDelete reads a snapshot written by (*InsertDelete).Snapshot
// and returns an algorithm that continues exactly where the snapshotted one
// stopped: the constructor replays every random choice from the stored
// seed, then the stored cell states overwrite the fresh cells.
func RestoreInsertDelete(r io.Reader) (*InsertDelete, error) {
	dec := &decoder{r: bufio.NewReader(r)}
	var magic [8]byte
	dec.bytes(magic[:])
	if dec.err == nil && magic != snapTurnstileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	cfg := InsertDeleteConfig{
		N:     dec.i64(),
		M:     dec.i64(),
		D:     dec.i64(),
		Alpha: int(dec.i64()),
		Seed:  dec.u64(),
	}
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	cfg.Sampler = l0.Params{Sparsity: int(dec.i64()), Rows: int(dec.i64())}
	cfg.MaxSamplers = int(dec.i64())
	updates := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if (cfg.Sampler.Sparsity == 0) != (cfg.Sampler.Rows == 0) ||
		cfg.Sampler.Sparsity < 0 || cfg.Sampler.Rows < 0 {
		return nil, fmt.Errorf("%w: sampler params %+v", ErrBadSnapshot, cfg.Sampler)
	}
	if updates < 0 {
		return nil, fmt.Errorf("%w: %d updates", ErrBadSnapshot, updates)
	}
	// The constructor's only allocation guard compares the derived sizing
	// against cfg.MaxSamplers — which here comes from the same untrusted
	// header.  Bound both before allocating anything on the header's
	// behalf: a corrupt snapshot must fail as ErrBadSnapshot, not as an
	// OOM.  The cap is far above any real configuration (2^26 samplers is
	// already tens of GiB of cells) and negative sizing components catch
	// integer overflow in the derivation.
	const maxRestoreSamplers = 1 << 26
	if cfg.MaxSamplers < 0 || cfg.MaxSamplers > maxRestoreSamplers {
		return nil, fmt.Errorf("%w: MaxSamplers = %d", ErrBadSnapshot, cfg.MaxSamplers)
	}
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	sizing := cfg.Sizing()
	if sizing.VertexSampleSize < 0 || sizing.SamplersPerVertex < 0 || sizing.EdgeSamplers < 0 ||
		sizing.TotalSamplers() < 0 || sizing.TotalSamplers() > maxRestoreSamplers {
		return nil, fmt.Errorf("%w: sizing %+v out of range", ErrBadSnapshot, sizing)
	}
	algo, err := NewInsertDelete(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	algo.updates = updates

	nVertex := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if nVertex != int64(len(algo.vertexSamplers)) {
		return nil, fmt.Errorf("%w: %d vertex samplers, config derives %d",
			ErrBadSnapshot, nVertex, len(algo.vertexSamplers))
	}
	for _, want := range algo.sortedVertexSample() {
		a := dec.i64()
		if dec.err != nil {
			return nil, dec.err
		}
		if a != want {
			return nil, fmt.Errorf("%w: sampled vertex %d, seed derives %d", ErrBadSnapshot, a, want)
		}
		for _, s := range algo.vertexSamplers[a] {
			decodeCells(dec, s)
		}
	}
	nEdge := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if nEdge != int64(len(algo.edgeSamplers)) {
		return nil, fmt.Errorf("%w: %d edge samplers, config derives %d",
			ErrBadSnapshot, nEdge, len(algo.edgeSamplers))
	}
	for _, s := range algo.edgeSamplers {
		decodeCells(dec, s)
	}
	if dec.err != nil {
		return nil, dec.err
	}
	return algo, nil
}

// SnapshotSize returns the exact byte length Snapshot would write.
func (id *InsertDelete) SnapshotSize() int {
	size := 8 + 10*8 // magic + fixed header fields
	size += 8        // vertex sampler count
	for _, batt := range id.vertexSamplers {
		size += 8 // vertex id
		for _, s := range batt {
			size += 24 * s.NumCells()
		}
	}
	size += 8 // edge sampler count
	for _, s := range id.edgeSamplers {
		size += 24 * s.NumCells()
	}
	return size
}

// sortedVertexSample returns the sampled vertex set A' in increasing order —
// the snapshot's canonical battery order.
func (id *InsertDelete) sortedVertexSample() []int64 {
	keys := make([]int64, 0, len(id.vertexSamplers))
	for a := range id.vertexSamplers {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func encodeCells(enc *encoder, s *l0.Sampler) {
	s.Cells(func(o *l0.OneSparse) {
		count, sum, acc := o.State()
		enc.i64(count)
		enc.i64(sum)
		enc.u64(acc)
	})
}

func decodeCells(dec *decoder, s *l0.Sampler) {
	s.Cells(func(o *l0.OneSparse) {
		count := dec.i64()
		sum := dec.i64()
		acc := dec.u64()
		if dec.err != nil {
			return
		}
		o.SetState(count, sum, acc)
	})
}
