package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"feww/internal/reservoir"
	"feww/internal/xrand"
)

// Snapshot / RestoreInsertOnly serialise the full state of the
// insertion-only algorithm: degree table, every run's reservoir (sampled
// vertices with their collected witnesses, the candidate counter) and the
// exact RNG states, so the restored instance continues the *same* random
// stream.  Two uses:
//
//   - checkpointing a long-running stream processor;
//   - the paper's communication protocols, where party i literally sends
//     its memory state to party i+1 — Snapshot is that message, and its
//     byte length is the quantity the lower bounds constrain (up to the
//     word/bit conversion).
//
// The format is a versioned little-endian binary encoding.  It is
// deterministic: two snapshots of identical states are byte-identical
// (maps are emitted in sorted key order).

var snapMagic = [8]byte{'F', 'E', 'W', 'W', 'S', 'N', 'P', '1'}

// ErrBadSnapshot is returned when restoring from corrupt or incompatible
// bytes.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// Snapshot writes the algorithm's complete state to w.
func (io_ *InsertOnly) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := &encoder{w: bw}
	enc.bytes(snapMagic[:])
	enc.i64(io_.cfg.N)
	enc.i64(io_.cfg.D)
	enc.i64(int64(io_.cfg.Alpha))
	enc.u64(io_.cfg.Seed)
	enc.u64(math.Float64bits(io_.cfg.ScaleFactor))
	enc.i64(io_.d2)
	enc.i64(io_.edges)

	// Degree table, sorted for deterministic output.
	keys := make([]int64, 0, len(io_.tracker.deg))
	for k := range io_.tracker.deg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.i64(int64(len(keys)))
	for _, k := range keys {
		enc.i64(k)
		enc.i64(io_.tracker.deg[k])
	}

	enc.i64(int64(len(io_.runs)))
	for _, run := range io_.runs {
		enc.i64(run.d1)
		enc.i64(run.d2)
		enc.i64(int64(run.res.Cap()))
		enc.i64(run.res.Seen())
		for _, s := range run.res.RNG().State() {
			enc.u64(s)
		}
		items := run.res.Items()
		enc.i64(int64(len(items)))
		for _, cand := range items {
			enc.i64(cand.a)
			enc.i64(int64(len(cand.witnesses)))
			for _, b := range cand.witnesses {
				enc.i64(b)
			}
		}
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// RestoreInsertOnly reads a snapshot written by Snapshot and returns an
// algorithm that continues exactly where the snapshotted one stopped:
// feeding both the same suffix of a stream produces identical outputs.
func RestoreInsertOnly(r io.Reader) (*InsertOnly, error) {
	dec := &decoder{r: bufio.NewReader(r)}
	var magic [8]byte
	dec.bytes(magic[:])
	if dec.err == nil && magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, magic[:])
	}
	cfg := InsertOnlyConfig{
		N:     dec.i64(),
		D:     dec.i64(),
		Alpha: int(dec.i64()),
		Seed:  dec.u64(),
	}
	cfg.ScaleFactor = math.Float64frombits(dec.u64())
	d2 := dec.i64()
	edges := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}

	algo := &InsertOnly{
		cfg:     cfg,
		d2:      d2,
		tracker: NewDegreeTracker(),
		edges:   edges,
	}

	nDeg := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if nDeg < 0 || nDeg > cfg.N {
		return nil, fmt.Errorf("%w: %d tracked degrees with N = %d", ErrBadSnapshot, nDeg, cfg.N)
	}
	for i := int64(0); i < nDeg; i++ {
		k, v := dec.i64(), dec.i64()
		if dec.err != nil {
			return nil, dec.err
		}
		if v < 1 {
			return nil, fmt.Errorf("%w: degree %d for vertex %d", ErrBadSnapshot, v, k)
		}
		algo.tracker.deg[k] = v
	}

	nRuns := dec.i64()
	if dec.err != nil {
		return nil, dec.err
	}
	if nRuns != int64(cfg.Alpha) {
		return nil, fmt.Errorf("%w: %d runs with alpha = %d", ErrBadSnapshot, nRuns, cfg.Alpha)
	}
	algo.runs = make([]*DegRes, nRuns)
	for ri := range algo.runs {
		d1 := dec.i64()
		runD2 := dec.i64()
		capS := dec.i64()
		seen := dec.i64()
		var state [4]uint64
		for i := range state {
			state[i] = dec.u64()
		}
		nItems := dec.i64()
		if dec.err != nil {
			return nil, dec.err
		}
		if d1 < 1 || runD2 < 1 || capS < 1 || nItems < 0 || nItems > capS || seen < nItems {
			return nil, fmt.Errorf("%w: run %d has d1=%d d2=%d s=%d seen=%d items=%d",
				ErrBadSnapshot, ri, d1, runD2, capS, seen, nItems)
		}
		items := make([]*candidate, nItems)
		pos := make(map[int64]*candidate, nItems)
		for i := range items {
			a := dec.i64()
			nw := dec.i64()
			if dec.err != nil {
				return nil, dec.err
			}
			if nw < 0 || nw > runD2 {
				return nil, fmt.Errorf("%w: %d witnesses with d2 = %d", ErrBadSnapshot, nw, runD2)
			}
			cand := &candidate{a: a, witnesses: make([]int64, nw)}
			for j := range cand.witnesses {
				cand.witnesses[j] = dec.i64()
			}
			if _, dup := pos[a]; dup {
				return nil, fmt.Errorf("%w: vertex %d sampled twice in run %d", ErrBadSnapshot, a, ri)
			}
			items[i] = cand
			pos[a] = cand
		}
		rng := xrand.New(0)
		rng.SetState(state)
		algo.runs[ri] = &DegRes{
			d1:  d1,
			d2:  runD2,
			res: reservoir.Restore(rng, int(capS), items, seen),
			pos: pos,
		}
	}
	if dec.err != nil {
		return nil, dec.err
	}
	return algo, nil
}

// SnapshotSize returns the exact byte length Snapshot would write — the
// "message size" of the communication protocols, without allocating the
// buffer.
func (io_ *InsertOnly) SnapshotSize() int {
	size := 8 + 7*8 // magic + fixed header fields
	size += 8 + 16*len(io_.tracker.deg)
	size += 8
	for _, run := range io_.runs {
		size += 8 * (4 + 4) // d1, d2, cap, seen + rng state
		size += 8
		for _, cand := range run.res.Items() {
			size += 16 + 8*len(cand.witnesses)
		}
	}
	return size
}

// encoder writes fixed-width little-endian values with a sticky error.
type encoder struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (e *encoder) bytes(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.bytes(e.buf[:])
}

func (e *encoder) i64(v int64) { e.u64(uint64(v)) }

// decoder reads fixed-width little-endian values with a sticky error.
type decoder struct {
	r   io.Reader
	buf [8]byte
	err error
}

func (d *decoder) bytes(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
}

func (d *decoder) u64() uint64 {
	d.bytes(d.buf[:])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:])
}

func (d *decoder) i64() int64 { return int64(d.u64()) }
