package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"feww/internal/stream"
)

// starShardConfig builds a small deterministic shard: alpha = 1 keeps
// every rung in the all-candidates regime, so the view depends only on
// the half-edge sub-streams.
func starShardConfig(t *testing.T, n, maxDeg int64) StarShardConfig {
	t.Helper()
	guesses, err := StarGuesses(maxDeg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return StarShardConfig{N: n, Guesses: guesses, Alpha: 1, Seed: 7}
}

// directedStar returns the half-edges of a planted star: center c gains
// neighbours base..base+deg-1.
func directedStar(c int64, deg int64, base int64) []stream.Edge {
	out := make([]stream.Edge, 0, deg)
	for j := int64(0); j < deg; j++ {
		out = append(out, stream.Edge{A: c, B: base + j})
	}
	return out
}

func TestStarGuessesLadder(t *testing.T) {
	guesses, err := StarGuesses(20, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 4, 6, 8, 12, 18}
	if !reflect.DeepEqual(guesses, want) {
		t.Fatalf("StarGuesses(20, 0.5) = %v, want %v", guesses, want)
	}
	if _, err := StarGuesses(0, 0.5); err == nil {
		t.Fatal("StarGuesses(0, ...) accepted")
	}
	// Every non-positive, non-finite or vanishingly small eps must be
	// rejected: NaN passes naive `eps <= 0` checks, Inf stalls the ladder
	// at its first rung, and eps below the floor makes the derivation
	// itself unbounded work (below ~2^-52 the float product never grows
	// at all) — each would hang the loop instead of erroring (a hostile
	// snapshot header reaches this code via RestoreStarEngine).
	for _, eps := range []float64{0, -1, 1e-17, 1e-9, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := StarGuesses(10, eps); err == nil {
			t.Fatalf("StarGuesses(10, %g) accepted", eps)
		}
	}
	// A ceiling near MaxInt64 (a hostile header's M) must terminate: the
	// conversion-overflow region is capped away, and a huge eps that
	// sends the float product to +Inf breaks out before converting.
	for _, tc := range []struct {
		maxDeg int64
		eps    float64
	}{
		{math.MaxInt64, 0.5},
		{math.MaxInt64, 1e300},
		{1 << 62, 0.5},
	} {
		guesses, err := StarGuesses(tc.maxDeg, tc.eps)
		if err != nil || len(guesses) == 0 {
			t.Fatalf("StarGuesses(%d, %g) = %d rungs, %v", tc.maxDeg, tc.eps, len(guesses), err)
		}
		if top := guesses[len(guesses)-1]; top < 1 || top > tc.maxDeg {
			t.Fatalf("StarGuesses(%d, %g) top rung %d out of range", tc.maxDeg, tc.eps, top)
		}
	}
}

func TestStarShardViewPicksHighestRung(t *testing.T) {
	cfg := starShardConfig(t, 8, 20)
	ss, err := NewStarShard(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Empty shard: no rung has anything.
	if v := ss.View(); v.Rung != -1 || v.BestOK || len(v.Results) != 0 {
		t.Fatalf("empty shard view = %+v, want rung -1 and no results", v)
	}

	// Center 3 reaches degree 13: the winning rung is the largest guess
	// <= 13, i.e. guess 12 at rung index 6, certified with 12 witnesses
	// (alpha = 1).  Center 5 reaches degree 4 — certified at rung 3 only,
	// so it must NOT appear in the winning rung's results.
	ss.ProcessEdges(directedStar(3, 13, 100))
	ss.ProcessEdges(directedStar(5, 4, 300))

	v := ss.View()
	if v.Rung != 6 || v.Guess != 12 || v.Target != 12 {
		t.Fatalf("view rung/guess/target = %d/%d/%d, want 6/12/12", v.Rung, v.Guess, v.Target)
	}
	if !v.BestOK || v.Best.A != 3 || v.Best.Size() != 12 {
		t.Fatalf("view best = %+v, want center 3 with 12 witnesses", v.Best)
	}
	if len(v.Results) != 1 || v.Results[0].A != 3 {
		t.Fatalf("view results = %+v, want exactly center 3", v.Results)
	}
	for i, w := range v.Best.Witnesses {
		if w != 100+int64(i) {
			t.Fatalf("witnesses = %v, want the first 12 in arrival order", v.Best.Witnesses)
		}
	}
}

func TestStarShardSnapshotRoundTrip(t *testing.T) {
	cfg := starShardConfig(t, 8, 20)
	ss, err := NewStarShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre := directedStar(2, 7, 50)
	post := directedStar(2, 6, 57)
	ss.ProcessEdges(pre)

	var snap bytes.Buffer
	if err := ss.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != ss.SnapshotSize() {
		t.Fatalf("snapshot wrote %d bytes, SnapshotSize said %d", snap.Len(), ss.SnapshotSize())
	}

	restored, err := RestoreStarShard(bytes.NewReader(snap.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Continue both and compare the full view byte-for-byte.
	ss.ProcessEdges(post)
	restored.ProcessEdges(post)
	if got, want := restored.View(), ss.View(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored continuation diverged:\n got %+v\nwant %+v", got, want)
	}

	// A snapshot restored against a different ladder must be refused.
	other := cfg
	other.Guesses = other.Guesses[:len(other.Guesses)-1]
	if _, err := RestoreStarShard(bytes.NewReader(snap.Bytes()), other); err == nil {
		t.Fatal("RestoreStarShard accepted a mismatched ladder")
	}
	wrongSeed := cfg
	wrongSeed.Seed++
	if _, err := RestoreStarShard(bytes.NewReader(snap.Bytes()), wrongSeed); err == nil {
		t.Fatal("RestoreStarShard accepted a mismatched seed derivation")
	}
}
