// Package core implements the paper's primary contribution: streaming
// algorithms for Frequent Elements with Witnesses, FEwW(n, d) (Problem 1).
//
// Input is a bipartite graph G = (A, B, E), |A| = n, |B| = m = poly(n),
// streamed as edge insertions (insertion-only model) or insertions and
// deletions (insertion-deletion model), with the promise that at least one
// A-vertex has degree >= d.  The output is a neighbourhood (a, S): an
// A-vertex a together with S, a set of at least ceil(d/alpha) of its
// B-neighbours ("witnesses"), for an approximation factor alpha >= 1.
//
// Three algorithms are provided:
//
//   - DegRes — Algorithm 1, Deg-Res-Sampling(d1, d2, s): a degree-triggered
//     reservoir sampler over the A-vertices of degree >= d1 that collects up
//     to d2 witnesses per sampled vertex (Lemma 3.1).
//   - InsertOnly — Algorithm 2: alpha parallel Deg-Res-Sampling runs with
//     staggered thresholds i*d/alpha, reservoir size s = ceil(ln n *
//     n^(1/alpha)); space O(n log n + n^(1/alpha) d log^2 n), success
//     probability >= 1 - 1/n (Theorem 3.2).
//   - InsertDelete — Algorithm 3: a vertex-sampling strategy (succeeds on
//     dense inputs, Lemma 5.2) combined with an edge-sampling strategy
//     (succeeds on sparse inputs, Lemma 5.3), both built on L0 samplers;
//     space ~O(d n / alpha^2) for alpha <= sqrt(n) (Theorem 5.4).
//
// StarDetector lifts any FEwW algorithm to the Star Detection problem
// (Problem 2) on general graphs via a (1+eps) guess ladder on the maximum
// degree (Lemma 3.3).
package core

import (
	"errors"
	"fmt"
)

// Neighbourhood is the output of a FEwW algorithm: an A-vertex together
// with a set of distinct witnesses (B-neighbours) proving its degree.
type Neighbourhood struct {
	A         int64   // the reported frequent element / high-degree vertex
	Witnesses []int64 // distinct B-vertices adjacent to A
}

// Size returns |(a, S)| = |S|, the neighbourhood size as defined in §2.
func (nb Neighbourhood) Size() int { return len(nb.Witnesses) }

func (nb Neighbourhood) String() string {
	return fmt.Sprintf("vertex %d with %d witnesses", nb.A, len(nb.Witnesses))
}

// ErrNoWitness is returned when an algorithm cannot produce a neighbourhood
// of the required size — either the input violated the degree-d promise or
// the algorithm's random choices failed (probability <= 1/n under the
// promise).
var ErrNoWitness = errors.New("core: no neighbourhood of the required size found")

// SpaceReporter is implemented by every streaming structure in this
// repository: SpaceWords returns the number of machine words of live state,
// the unit in which the paper's bounds and the communication lower bounds
// are stated.  It deliberately counts semantic state (counters, stored
// edges, hash coefficients) rather than Go allocator overhead.
type SpaceReporter interface {
	SpaceWords() int
}

// witnessTarget returns d2 = ceil(d/alpha), the number of witnesses the
// algorithms must output.
func witnessTarget(d int64, alpha int) int64 {
	return (d + int64(alpha) - 1) / int64(alpha)
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 { return (a + b - 1) / b }
