package core

import (
	"fmt"
	"math"
	"sort"

	"feww/internal/stream"
	"feww/internal/xrand"
)

// InsertOnlyConfig parameterises the insertion-only algorithm.
type InsertOnlyConfig struct {
	N     int64 // |A|: the item universe size n
	D     int64 // the degree/frequency threshold d, 1 <= D
	Alpha int   // the approximation factor alpha >= 1 (integral, per Thm 3.2)
	Seed  uint64

	// ScaleFactor multiplies the theoretical reservoir size
	// s = ceil(ln n * n^(1/alpha)).  1.0 (the default when 0) reproduces the
	// paper's constants; the ablation experiment E10 sweeps it downward to
	// locate where the w.h.p. guarantee starts to erode.
	ScaleFactor float64
}

func (c *InsertOnlyConfig) validate() error {
	if c.N < 1 {
		return fmt.Errorf("core: InsertOnly config: N = %d, want >= 1", c.N)
	}
	if c.D < 1 {
		return fmt.Errorf("core: InsertOnly config: D = %d, want >= 1", c.D)
	}
	if c.Alpha < 1 {
		return fmt.Errorf("core: InsertOnly config: Alpha = %d, want >= 1", c.Alpha)
	}
	if c.ScaleFactor < 0 {
		return fmt.Errorf("core: InsertOnly config: ScaleFactor = %f, want >= 0", c.ScaleFactor)
	}
	return nil
}

// ReservoirSize returns s = ceil(ln n * n^(1/alpha) * scale), the reservoir
// size Algorithm 2 passes to every Deg-Res-Sampling run (at least 1).
func (c *InsertOnlyConfig) ReservoirSize() int {
	scale := c.ScaleFactor
	if scale == 0 {
		scale = 1
	}
	n := float64(c.N)
	s := math.Ceil(math.Log(math.Max(n, 2)) * math.Pow(n, 1/float64(c.Alpha)) * scale)
	if s < 1 {
		return 1
	}
	return int(s)
}

// InsertOnly is Algorithm 2: the alpha-approximation streaming algorithm
// for FEwW in insertion-only streams.  It runs alpha Deg-Res-Sampling
// instances in parallel with thresholds d1 = max(1, floor(i*d/alpha)) for
// i = 0..alpha-1, fixed witness target d2 = ceil(d/alpha), and shared
// degree tracking.  By Theorem 3.2, if some A-vertex has degree >= d then
// at least one run succeeds with probability >= 1 - 1/n, and the total
// space is O(n log n + n^(1/alpha) d log^2 n) bits.
type InsertOnly struct {
	cfg     InsertOnlyConfig
	d2      int64
	tracker *DegreeTracker
	runs    []*DegRes
	edges   int64
	degs    []int64 // scratch for ProcessEdges, not part of the state
}

// NewInsertOnly constructs the algorithm.  The zero ScaleFactor means 1.0.
func NewInsertOnly(cfg InsertOnlyConfig) (*InsertOnly, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	s := cfg.ReservoirSize()
	d2 := witnessTarget(cfg.D, cfg.Alpha)
	algo := &InsertOnly{
		cfg:     cfg,
		d2:      d2,
		tracker: NewDegreeTracker(),
		runs:    make([]*DegRes, cfg.Alpha),
	}
	for i := 0; i < cfg.Alpha; i++ {
		d1 := int64(i) * cfg.D / int64(cfg.Alpha)
		if d1 < 1 {
			d1 = 1
		}
		algo.runs[i] = NewDegRes(rng.Split(), d1, d2, s)
	}
	return algo, nil
}

// ProcessEdge feeds one inserted edge (a, b) to all parallel runs.
func (io *InsertOnly) ProcessEdge(a, b int64) {
	io.edges++
	deg := io.tracker.Inc(a)
	for _, run := range io.runs {
		run.Process(a, b, deg)
	}
}

// ProcessEdges feeds a batch of inserted edges.  The final state is
// identical to calling ProcessEdge once per edge (the alpha runs are
// mutually independent, so iterating run-major instead of edge-major
// commutes); the batched form updates the shared degree tracker once per
// edge and then hands each run the whole slice, amortising the per-edge
// dispatch that dominates the single-edge path.
func (io *InsertOnly) ProcessEdges(edges []stream.Edge) {
	if len(edges) == 0 {
		return
	}
	io.edges += int64(len(edges))
	if cap(io.degs) < len(edges) {
		io.degs = make([]int64, len(edges))
	}
	degs := io.degs[:len(edges)]
	for i, e := range edges {
		degs[i] = io.tracker.Inc(e.A)
	}
	for _, run := range io.runs {
		run.ProcessEdges(edges, degs)
	}
}

// Result returns any neighbourhood of size ceil(d/alpha) found by a
// successful run, or ErrNoWitness if every run failed.
func (io *InsertOnly) Result() (Neighbourhood, error) {
	for _, run := range io.runs {
		if nb, ok := run.Result(); ok {
			return nb, nil
		}
	}
	return Neighbourhood{}, ErrNoWitness
}

// Results returns every distinct frequent element found, each with a full
// ceil(d/alpha)-witness neighbourhood, across all parallel runs.  When the
// input contains several vertices of degree >= d (e.g. several machines
// under attack at once), one call reports all that were sampled.  The
// returned slice is sorted by vertex id; it is empty when Result would
// return ErrNoWitness.
func (io *InsertOnly) Results() []Neighbourhood {
	var byVertex map[int64]Neighbourhood // lazily: most calls find nothing
	for _, run := range io.runs {
		for _, nb := range run.Results() {
			if byVertex == nil {
				byVertex = make(map[int64]Neighbourhood)
			}
			if _, dup := byVertex[nb.A]; !dup {
				byVertex[nb.A] = nb
			}
		}
	}
	if len(byVertex) == 0 {
		return nil
	}
	out := make([]Neighbourhood, 0, len(byVertex))
	for _, nb := range byVertex {
		out = append(out, nb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].A < out[j].A })
	return out
}

// Best returns the largest neighbourhood stored by any run even if no run
// reached the d2 target; used by the Star Detection ladder and diagnostics.
func (io *InsertOnly) Best() (Neighbourhood, bool) {
	var best Neighbourhood
	found := false
	for _, run := range io.runs {
		if nb, ok := run.Best(); ok && (!found || nb.Size() > best.Size()) {
			best, found = nb, true
		}
	}
	return best, found
}

// RunSucceeded reports per-run success, exposing the geometric n_i/n_{i+1}
// argument in the proof of Theorem 3.2 to the ablation experiments.
func (io *InsertOnly) RunSucceeded() []bool {
	out := make([]bool, len(io.runs))
	for i, run := range io.runs {
		_, out[i] = run.Result()
	}
	return out
}

// WitnessTarget returns d2 = ceil(d/alpha).
func (io *InsertOnly) WitnessTarget() int64 { return io.d2 }

// Config returns the configuration the instance was built (or restored)
// with; engine restore uses it to cross-check shard snapshots against
// their container.
func (io *InsertOnly) Config() InsertOnlyConfig { return io.cfg }

// EdgesProcessed returns the number of stream edges consumed so far.
func (io *InsertOnly) EdgesProcessed() int64 { return io.edges }

// DegreeTableWords reports the degree-tracker share of SpaceWords — the
// O(n log n) term of Theorem 3.2 that is paid independently of d and alpha.
// Experiment E3 subtracts it to expose the d-dependent witness storage.
func (io *InsertOnly) DegreeTableWords() int { return io.tracker.SpaceWords() }

// SpaceWords reports the live state: the shared degree tracker plus every
// run's reservoir and collected witnesses.
func (io *InsertOnly) SpaceWords() int {
	words := io.tracker.SpaceWords()
	for _, run := range io.runs {
		words += run.SpaceWords()
	}
	return words
}

// ProcessUpdate implements the Algorithm interface used by StarDetector.
// Insertion-only algorithms reject deletions.
func (io *InsertOnly) ProcessUpdate(a, b int64, delta int) error {
	if delta != 1 {
		return fmt.Errorf("core: InsertOnly received a deletion; use InsertDelete for turnstile streams")
	}
	io.ProcessEdge(a, b)
	return nil
}
