package core

import (
	"fmt"
	"math"
)

// Algorithm is the streaming interface shared by InsertOnly and
// InsertDelete, letting StarDetector lift either to general graphs.
type Algorithm interface {
	// ProcessUpdate consumes one edge update; delta is +1 or -1.
	ProcessUpdate(a, b int64, delta int) error
	// Result returns a neighbourhood of the target size or ErrNoWitness.
	Result() (Neighbourhood, error)
	SpaceReporter
}

// AlgorithmFactory builds a FEwW algorithm instance for threshold d over a
// bipartite universe with |A| = |B| = n (the doubled general graph).
type AlgorithmFactory func(d int64) (Algorithm, error)

// StarDetector solves the Star Detection problem (Problem 2): given a
// general graph G = (V, E) with maximum degree Delta, output a vertex
// together with at least Delta / ((1+eps) * alpha) of its neighbours.
//
// Per Lemma 3.3, it runs O(log_{1+eps} n) guesses Delta' in {1, (1+eps),
// (1+eps)^2, ...} in parallel; guess Delta' runs a FEwW algorithm with
// threshold d = Delta' on the bipartite double cover (each undirected edge
// uv is fed as both (u, v) and (v, u)).  The run with the largest
// Delta' <= Delta finds a neighbourhood of size >= Delta'/alpha >=
// Delta/((1+eps) alpha).
type StarDetector struct {
	n       int64
	guesses []int64
	runs    []Algorithm
}

// MinStarEps is the smallest accepted ladder density.  The ladder loop
// runs ~log_{1+eps}(maxDeg) iterations, so a vanishingly small eps makes
// the *derivation itself* unbounded work (and below ~2^-52 the float
// product 1*(1+eps) rounds to 1 and never terminates at all) — and eps
// values that small buy nothing: the approximation ratio (1+eps)*alpha
// is indistinguishable from alpha long before this floor.  Validation
// enforces the floor so a hostile snapshot header cannot stall a
// restoring server.
const MinStarEps = 1e-4

// StarGuesses returns the (1+eps) guess ladder of Lemma 3.3 for maximum
// degrees up to maxDeg: the distinct values ceil((1+eps)^i) in [1, maxDeg],
// ascending.  Every star-detection container — the single-threaded
// StarDetector and the sharded StarShard alike — derives its rungs from
// this one function, so a cluster of shards over the same maxDeg agrees on
// the ladder no matter how the vertex universe is partitioned.
func StarGuesses(maxDeg int64, eps float64) ([]int64, error) {
	if maxDeg < 1 {
		return nil, fmt.Errorf("core: StarGuesses with maxDeg = %d", maxDeg)
	}
	// The comparison is written so NaN fails it (NaN >= x is false), and
	// Inf is rejected explicitly: either would keep the ladder loop below
	// from ever reaching its exit condition — a corrupt snapshot header
	// must fail validation, not hang the restorer.
	if !(eps >= MinStarEps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("core: StarGuesses with eps = %g, want a finite value >= %g", eps, MinStarEps)
	}
	// Cap the ceiling at 2^62: degrees beyond it are unreachable in any
	// stream, and the cap keeps every float-to-int64 conversion below
	// exact in-range values — a maxDeg near MaxInt64 (e.g. a hostile
	// snapshot header's M) would otherwise overflow the conversion into
	// implementation-specific garbage and stall the loop.  All callers
	// over one graph derive the ladder through this same cap, so shards
	// and members stay consistent.
	if maxDeg > 1<<62 {
		maxDeg = 1 << 62
	}
	var guesses []int64
	prev := int64(0)
	for g := 1.0; ; g *= 1 + eps {
		// Compare in float space first: g may be far above the int64
		// range (huge eps sends it to +Inf), where converting would be
		// undefined; once past the ceiling the ladder is done either way.
		if g > float64(maxDeg) {
			break
		}
		guess := int64(math.Ceil(g))
		if guess <= prev {
			continue
		}
		if guess > maxDeg {
			break
		}
		guesses = append(guesses, guess)
		prev = guess
	}
	return guesses, nil
}

// NewStarDetector builds the guess ladder for an n-vertex general graph.
// eps > 0 controls the ladder density (and the extra (1+eps) approximation
// loss); factory builds the per-guess FEwW algorithm.
func NewStarDetector(n int64, eps float64, factory AlgorithmFactory) (*StarDetector, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: NewStarDetector with n = %d", n)
	}
	guesses, err := StarGuesses(n, eps)
	if err != nil {
		return nil, fmt.Errorf("core: NewStarDetector: %w", err)
	}
	sd := &StarDetector{n: n}
	for _, guess := range guesses {
		algo, err := factory(guess)
		if err != nil {
			return nil, fmt.Errorf("core: StarDetector guess %d: %w", guess, err)
		}
		sd.guesses = append(sd.guesses, guess)
		sd.runs = append(sd.runs, algo)
	}
	return sd, nil
}

// ProcessUpdate consumes one undirected edge update {u, v}: both
// orientations are fed to every guess's algorithm (the bipartite double
// cover of Lemma 3.3).
func (sd *StarDetector) ProcessUpdate(u, v int64, delta int) error {
	for _, run := range sd.runs {
		if err := run.ProcessUpdate(u, v, delta); err != nil {
			return err
		}
		if err := run.ProcessUpdate(v, u, delta); err != nil {
			return err
		}
	}
	return nil
}

// ProcessEdge inserts the undirected edge {u, v}.
func (sd *StarDetector) ProcessEdge(u, v int64) error { return sd.ProcessUpdate(u, v, 1) }

// Result returns the best star found: scanning guesses from the largest
// down, the first successful run's neighbourhood is the Lemma 3.3 output.
func (sd *StarDetector) Result() (Neighbourhood, error) {
	for i := len(sd.runs) - 1; i >= 0; i-- {
		if nb, err := sd.runs[i].Result(); err == nil {
			return nb, nil
		}
	}
	return Neighbourhood{}, ErrNoWitness
}

// Guesses returns the Delta' ladder, for reporting.
func (sd *StarDetector) Guesses() []int64 { return sd.guesses }

// SpaceWords sums the space of all ladder runs.
func (sd *StarDetector) SpaceWords() int {
	words := 0
	for _, run := range sd.runs {
		words += run.SpaceWords()
	}
	return words
}
