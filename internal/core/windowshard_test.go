package core

import (
	"bytes"
	"testing"

	"feww/internal/stream"
)

// windowFeeder drives a WindowShard the way the engine does: it stamps
// global positions, advances the shared clock, and feeds batches.
type windowFeeder struct {
	ws  *WindowShard
	pos int64
}

func newWindowFeeder(t *testing.T, cfg WindowShardConfig) *windowFeeder {
	t.Helper()
	f := &windowFeeder{}
	ws, err := NewWindowShard(cfg, func() int64 { return f.pos })
	if err != nil {
		t.Fatalf("NewWindowShard: %v", err)
	}
	f.ws = ws
	return f
}

// feed stamps and applies edges as one batch, each advancing the clock.
func (f *windowFeeder) feed(edges ...stream.Edge) {
	batch := make([]WindowUpdate, len(edges))
	for i, e := range edges {
		batch[i] = WindowUpdate{Edge: e, Pos: f.pos + int64(i)}
	}
	f.pos += int64(len(edges))
	f.ws.Apply(batch)
}

// occurrences builds one edge per call position: item a witnessed by the
// global timestamp, the classical frequent-elements rendering.
func (f *windowFeeder) occur(items ...int64) {
	edges := make([]stream.Edge, len(items))
	for i, a := range items {
		edges[i] = stream.Edge{A: a, B: f.pos + int64(i)}
	}
	f.feed(edges...)
}

func resultIDs(v View) []int64 {
	ids := make([]int64, 0, len(v.Results))
	for _, nb := range v.Results {
		ids = append(ids, nb.A)
	}
	return ids
}

func TestWindowBucketMath(t *testing.T) {
	cases := []struct {
		accepted, window, buckets, start int64
	}{
		{0, 12, 3, 0},
		{12, 12, 3, 0},
		{13, 12, 3, 4}, // ceil(1/4)*4
		{16, 12, 3, 4}, // ceil(4/4)*4
		{17, 12, 3, 8}, // ceil(5/4)*4
		{100, 10, 10, 90},
		{100, 10, 1, 90},
		{7, 100, 4, 0},
	}
	for _, c := range cases {
		if got := WindowStart(c.accepted, c.window, c.buckets); got != c.start {
			t.Errorf("WindowStart(%d, %d, %d) = %d, want %d", c.accepted, c.window, c.buckets, got, c.start)
		}
	}
	if got := WindowBucketWidth(12, 3); got != 4 {
		t.Errorf("WindowBucketWidth(12, 3) = %d, want 4", got)
	}
	if got := WindowBucketWidth(10, 3); got != 4 {
		t.Errorf("WindowBucketWidth(10, 3) = %d, want 4", got)
	}
}

// TestWindowShardRotatesOut plants a heavy item, lets it age out of the
// window, and checks the reported set tracks the transition: reported
// while its occurrences are in-window, gone once the served suffix no
// longer holds D of them.  Alpha = 1 keeps every run deterministic
// (sample-everything), so the assertions are exact, not w.h.p.
func TestWindowShardRotatesOut(t *testing.T) {
	f := newWindowFeeder(t, WindowShardConfig{
		N: 16, D: 3, Alpha: 1, Window: 12, Buckets: 3, Seed: 7,
	})

	// Positions 0..5: item 1 occurs 3 times among noise.
	f.occur(1, 2, 1, 3, 1, 4)
	if got := resultIDs(f.ws.QueryResults()); len(got) != 1 || got[0] != 1 {
		t.Fatalf("in-window heavy item: results = %v, want [1]", got)
	}
	if v := f.ws.QueryBest(); !v.BestOK || v.Best.A != 1 {
		t.Fatalf("QueryBest = %+v, want item 1", v)
	}

	// Push the stream to position 18.  The served suffix starts at bucket
	// boundary 8 (WindowStart(18, 12, 3)), which holds positions 8..17:
	// items 7 and 8 occur 3 times there, items 5 and 6 only twice, and
	// item 1 has aged out entirely.
	f.occur(5, 6, 7, 8, 5, 6, 7, 8, 5, 6, 7, 8)
	if got := resultIDs(f.ws.QueryResults()); len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("after rotation: results = %v, want [7 8] (item 1 aged out)", got)
	}

	// Every witness of every result must be in-window: witnesses are the
	// global positions the occurrences arrived at.
	start := WindowStart(f.pos, 12, 3)
	for _, nb := range f.ws.QueryResults().Results {
		for _, b := range nb.Witnesses {
			if b < start || b >= f.pos {
				t.Fatalf("witness %d of item %d outside served window [%d, %d)", b, nb.A, start, f.pos)
			}
		}
	}
}

// TestWindowShardEmptyAfterSilence checks whole-state expiry: once every
// occurrence of a shard's items has aged out, the shard serves nothing —
// and a later burst starts clean.
func TestWindowShardEmptyAfterSilence(t *testing.T) {
	f := newWindowFeeder(t, WindowShardConfig{
		N: 8, D: 2, Alpha: 1, Window: 8, Buckets: 4, Seed: 3,
	})
	f.occur(1, 1, 1)
	if got := resultIDs(f.ws.QueryResults()); len(got) != 1 {
		t.Fatalf("results = %v, want [1]", got)
	}

	// The clock advances without this shard seeing traffic (other shards'
	// elements): everything ages out even though Apply never ran.
	f.pos += 20
	if v := f.ws.QueryResults(); len(v.Results) != 0 {
		t.Fatalf("after silence: results = %v, want none", resultIDs(v))
	}
	if v := f.ws.QueryBest(); v.BestOK {
		t.Fatalf("after silence: QueryBest = %+v, want none", v)
	}

	// A burst after the long gap must not replay history or create an
	// instance per skipped bucket.
	f.occur(2, 2, 2)
	if got := resultIDs(f.ws.QueryResults()); len(got) != 1 || got[0] != 2 {
		t.Fatalf("after burst: results = %v, want [2]", got)
	}
	if n := f.ws.Instances(); n > int(f.ws.Config().Buckets)+1 {
		t.Fatalf("retained %d instances, want <= Buckets+1 = %d", n, f.ws.Config().Buckets+1)
	}
}

// TestWindowShardSnapshotRoundTrip snapshots mid-window, restores, feeds
// both shards the identical suffix, and requires byte-identical snapshots
// and identical answers — the continuation contract the engine container
// builds on.
func TestWindowShardSnapshotRoundTrip(t *testing.T) {
	cfg := WindowShardConfig{N: 32, D: 3, Alpha: 2, Window: 20, Buckets: 5, Seed: 99}
	f := newWindowFeeder(t, cfg)
	f.occur(1, 2, 1, 3, 1, 4, 5, 1, 2, 6, 7, 2, 2)

	var snap bytes.Buffer
	if err := f.ws.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got, want := snap.Len(), f.ws.SnapshotSize(); got != want {
		t.Fatalf("snapshot length %d, SnapshotSize %d", got, want)
	}

	g := &windowFeeder{pos: f.pos}
	restored, err := RestoreWindowShard(bytes.NewReader(snap.Bytes()), cfg, func() int64 { return g.pos })
	if err != nil {
		t.Fatalf("RestoreWindowShard: %v", err)
	}
	g.ws = restored

	suffix := []int64{8, 9, 1, 8, 9, 8, 9, 8, 3, 3, 3, 9}
	f.occur(suffix...)
	g.occur(suffix...)

	var a, b bytes.Buffer
	if err := f.ws.Snapshot(&a); err != nil {
		t.Fatalf("original re-snapshot: %v", err)
	}
	if err := g.ws.Snapshot(&b); err != nil {
		t.Fatalf("restored re-snapshot: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots diverge after identical suffix: %d vs %d bytes", a.Len(), b.Len())
	}
	ra, rb := resultIDs(f.ws.QueryResults()), resultIDs(g.ws.QueryResults())
	if len(ra) != len(rb) {
		t.Fatalf("results diverge: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("results diverge: %v vs %v", ra, rb)
		}
	}
}

// TestWindowShardRestoreRejects checks the restore cross-checks: wrong
// geometry and corrupt labels must fail as ErrBadSnapshot, not corrupt
// the instance ladder silently.
func TestWindowShardRestoreRejects(t *testing.T) {
	cfg := WindowShardConfig{N: 8, D: 2, Alpha: 1, Window: 8, Buckets: 4, Seed: 5}
	f := newWindowFeeder(t, cfg)
	f.occur(1, 2, 1, 2, 3, 1) // three live suffix instances at clock 6
	var snap bytes.Buffer
	if err := f.ws.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	clock := func() int64 { return 6 }
	bad := cfg
	bad.Seed = 6
	if _, err := RestoreWindowShard(bytes.NewReader(snap.Bytes()), bad, clock); err == nil {
		t.Fatal("restore with wrong seed succeeded")
	}
	bad = cfg
	bad.Buckets = 1 // ninsts = 3 exceeds the Buckets+1 liveness bound
	if _, err := RestoreWindowShard(bytes.NewReader(snap.Bytes()), bad, clock); err == nil {
		t.Fatal("restore with wrong bucket count succeeded")
	}
	if _, err := RestoreWindowShard(bytes.NewReader(snap.Bytes()[:snap.Len()-3]), cfg, clock); err == nil {
		t.Fatal("restore from truncated snapshot succeeded")
	}
}
