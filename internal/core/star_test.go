package core

import (
	"testing"

	"feww/internal/stream"
	"feww/internal/workload"
)

func insertOnlyFactory(n int64, seed uint64) AlgorithmFactory {
	return func(d int64) (Algorithm, error) {
		seed++
		return NewInsertOnly(InsertOnlyConfig{N: n, D: d, Alpha: 2, Seed: seed})
	}
}

func TestStarDetectionOnSocialGraph(t *testing.T) {
	const n = 300
	ups := workload.SocialGraph(31, n, 3)
	trueMax, trueDeg := generalMaxDegree(ups)

	sd, err := NewStarDetector(n, 0.5, insertOnlyFactory(n, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if err := sd.ProcessEdge(u.A, u.B); err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatalf("star detection failed (true max degree %d at %d): %v", trueDeg, trueMax, err)
	}
	// Approximation guarantee: >= Delta / ((1+eps) * alpha) witnesses.
	want := float64(trueDeg) / (1.5 * 2)
	if float64(nb.Size()) < want {
		t.Fatalf("star of size %d, want >= %.1f (Delta = %d)", nb.Size(), want, trueDeg)
	}
	// Witnesses must be genuine neighbours of the reported vertex.
	adj := adjacency(ups)
	for _, w := range nb.Witnesses {
		if !adj[stream.Edge{A: nb.A, B: w}] {
			t.Fatalf("fabricated neighbour %d of %d", w, nb.A)
		}
	}
}

func TestStarDetectionTinyGraph(t *testing.T) {
	// A single triangle: every vertex has degree 2.
	ups := []stream.Update{stream.Ins(0, 1), stream.Ins(1, 2), stream.Ins(0, 2)}
	sd, err := NewStarDetector(3, 0.5, insertOnlyFactory(3, 2000))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		if err := sd.ProcessEdge(u.A, u.B); err != nil {
			t.Fatal(err)
		}
	}
	nb, err := sd.Result()
	if err != nil {
		t.Fatalf("failed on triangle: %v", err)
	}
	if nb.Size() < 1 {
		t.Fatalf("star of size %d on a triangle", nb.Size())
	}
}

func TestStarDetectorGuessLadder(t *testing.T) {
	sd, err := NewStarDetector(1000, 0.5, insertOnlyFactory(1000, 3000))
	if err != nil {
		t.Fatal(err)
	}
	guesses := sd.Guesses()
	if len(guesses) == 0 {
		t.Fatal("empty guess ladder")
	}
	if guesses[0] != 1 {
		t.Fatalf("ladder starts at %d, want 1", guesses[0])
	}
	for i := 1; i < len(guesses); i++ {
		if guesses[i] <= guesses[i-1] {
			t.Fatalf("ladder not increasing: %v", guesses)
		}
		if guesses[i] > 1000 {
			t.Fatalf("guess %d exceeds n", guesses[i])
		}
	}
	// Ladder must be logarithmic, not linear.
	if len(guesses) > 30 {
		t.Fatalf("ladder too dense: %d guesses", len(guesses))
	}
}

func TestStarDetectorValidation(t *testing.T) {
	if _, err := NewStarDetector(0, 0.5, insertOnlyFactory(1, 1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewStarDetector(10, 0, insertOnlyFactory(10, 1)); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestStarDetectorEmptyGraph(t *testing.T) {
	sd, err := NewStarDetector(10, 0.5, insertOnlyFactory(10, 4000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sd.Result(); err == nil {
		t.Fatal("empty graph produced a star")
	}
}

// generalMaxDegree computes the max degree treating updates as undirected
// edges.
func generalMaxDegree(ups []stream.Update) (int64, int64) {
	deg := make(map[int64]int64)
	for _, u := range ups {
		deg[u.A] += int64(u.Op)
		deg[u.B] += int64(u.Op)
	}
	v, best := int64(-1), int64(0)
	for k, d := range deg {
		if d > best {
			v, best = k, d
		}
	}
	return v, best
}

// adjacency returns the undirected live-edge set in both orientations.
func adjacency(ups []stream.Update) map[stream.Edge]bool {
	adj := make(map[stream.Edge]bool)
	for _, u := range ups {
		on := u.Op == stream.Insert
		adj[stream.Edge{A: u.A, B: u.B}] = on
		adj[stream.Edge{A: u.B, B: u.A}] = on
	}
	return adj
}
